// Package repro's root benchmark harness: one testing.B benchmark per
// paper table/figure (the E*/F2 experiments — see EXPERIMENTS.md for
// the index) plus micro-benchmarks of the library's hot paths. Key
// shape numbers are emitted via b.ReportMetric so `go test -bench .`
// regenerates the evaluation's headline figures.
package repro

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/papi"
	"repro/workload"
)

// benchExperiment runs one experiment per iteration and reports the
// metrics the paper's claim hangs on.
func benchExperiment(b *testing.B, run func(b *testing.B)) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		run(b)
	}
}

// BenchmarkE1Calibrate regenerates E1 (§4): sampling-substrate counts
// converge at 1–2% overhead vs up to ~30% for direct counting.
func BenchmarkE1Calibrate(b *testing.B) {
	benchExperiment(b, func(b *testing.B) {
		r, err := experiments.E1()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.N == 96 {
				if row.Mode == "hw-sampling" {
					b.ReportMetric(row.Overhead*100, "sampling-overhead-%")
					b.ReportMetric(row.RelErr*100, "sampling-err-%")
				} else {
					b.ReportMetric(row.Overhead*100, "direct-overhead-%")
				}
			}
		}
	})
}

// BenchmarkE2Multiplex regenerates E2 (§2): multiplex estimate error
// versus runtime.
func BenchmarkE2Multiplex(b *testing.B) {
	benchExperiment(b, func(b *testing.B) {
		r, err := experiments.E2()
		if err != nil {
			b.Fatal(err)
		}
		first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
		b.ReportMetric(float64(first.Unmeasured), "short-run-unmeasured")
		b.ReportMetric(last.MeanRelErr*100, "long-run-err-%")
	})
}

// BenchmarkE3ReadOverhead regenerates E3 (§4): per-read overhead vs
// instrumentation granularity.
func BenchmarkE3ReadOverhead(b *testing.B) {
	benchExperiment(b, func(b *testing.B) {
		r, err := experiments.E3()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Granularity == 48 {
				switch row.Platform {
				case papi.PlatformLinuxX86:
					b.ReportMetric(row.Overhead*100, "x86-fine-overhead-%")
				case papi.PlatformCrayT3E:
					b.ReportMetric(row.Overhead*100, "t3e-fine-overhead-%")
				}
			}
		}
	})
}

// BenchmarkE4Allocation regenerates E4 (§5): optimal matching vs
// first-fit counter allocation.
func BenchmarkE4Allocation(b *testing.B) {
	benchExperiment(b, func(b *testing.B) {
		r, err := experiments.E4()
		if err != nil {
			b.Fatal(err)
		}
		recovered := 0
		for _, row := range r.Rows {
			recovered += row.Recovered
		}
		b.ReportMetric(float64(recovered), "sets-recovered-by-matching")
	})
}

// BenchmarkE5Attribution regenerates E5 (§4): skidded interrupt PCs vs
// exact hardware sampling.
func BenchmarkE5Attribution(b *testing.B) {
	benchExperiment(b, func(b *testing.B) {
		r, err := experiments.E5()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			switch row.Platform {
			case papi.PlatformLinuxX86:
				b.ReportMetric(row.PctCorrect*100, "x86-correct-%")
			case papi.PlatformTru64Alpha:
				b.ReportMetric(row.PctCorrect*100, "alpha-correct-%")
			}
		}
	})
}

// BenchmarkE6FPDiscrepancy regenerates E6 (§4): the POWER3 rounding-
// instruction over-count.
func BenchmarkE6FPDiscrepancy(b *testing.B) {
	benchExperiment(b, func(b *testing.B) {
		r, err := experiments.E6()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Platform == papi.PlatformAIXPower3 {
				b.ReportMetric(row.OverPct*100, "power3-overcount-%")
			}
		}
	})
}

// BenchmarkE7FlopsNormalization regenerates E7 (§4): FMA counted as
// two operations by PAPI_flops.
func BenchmarkE7FlopsNormalization(b *testing.B) {
	benchExperiment(b, func(b *testing.B) {
		r, err := experiments.E7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].Ratio, "fpops-per-fma")
	})
}

// BenchmarkE8Timers regenerates E8 (§3): portable timer resolution,
// cost and the real/virtual split.
func BenchmarkE8Timers(b *testing.B) {
	benchExperiment(b, func(b *testing.B) {
		r, err := experiments.E8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].RealOverVirt, "real-over-virt")
	})
}

// BenchmarkE9OverlapAblation regenerates E9 (§5): the cost of v2
// overlapping EventSets.
func BenchmarkE9OverlapAblation(b *testing.B) {
	benchExperiment(b, func(b *testing.B) {
		r, err := experiments.E9()
		if err != nil {
			b.Fatal(err)
		}
		v3, v2 := r.Rows[0], r.Rows[1]
		b.ReportMetric(float64(v2.MgmtCycles)/float64(v3.MgmtCycles), "v2-over-v3-cycles")
		b.ReportMetric(float64(v2.FootprintBytes), "v2-footprint-B")
		b.ReportMetric(float64(v3.FootprintBytes), "v3-footprint-B")
	})
}

// BenchmarkE10Cost regenerates E10 (§2): papi_cost per substrate.
func BenchmarkE10Cost(b *testing.B) {
	benchExperiment(b, func(b *testing.B) {
		r, err := experiments.E10()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			switch row.Platform {
			case papi.PlatformCrayT3E:
				b.ReportMetric(float64(row.Read), "t3e-read-cyc")
			case papi.PlatformLinuxX86:
				b.ReportMetric(float64(row.Read), "x86-read-cyc")
			}
		}
	})
}

// BenchmarkE11Memory regenerates E11 (§5): the memory-utilization
// extensions.
func BenchmarkE11Memory(b *testing.B) {
	benchExperiment(b, func(b *testing.B) {
		r, err := experiments.E11()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Proc.SwapOuts), "swap-outs")
	})
}

// BenchmarkF2Perfometer regenerates Figure 2: the real-time FLOP-rate
// trace with its memory-phase dip.
func BenchmarkF2Perfometer(b *testing.B) {
	benchExperiment(b, func(b *testing.B) {
		r, err := experiments.F2()
		if err != nil {
			b.Fatal(err)
		}
		rates := r.Front.SectionMeanRate()
		if rates["gather"] > 0 {
			b.ReportMetric(rates["compute_a"]/rates["gather"], "compute-over-gather-rate")
		}
	})
}

// BenchmarkE12Correlation regenerates E12 (§3): multi-metric profiles
// exposing per-region correlations.
func BenchmarkE12Correlation(b *testing.B) {
	benchExperiment(b, func(b *testing.B) {
		r, err := experiments.E12()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Region == "mem_kernel" {
				b.ReportMetric(row.MissRate, "mem-kernel-miss-per-us")
			}
			if row.Region == "fp_kernel" {
				b.ReportMetric(row.FPRate, "fp-kernel-flop-per-us")
			}
		}
	})
}

// BenchmarkA1MultiplexInterval regenerates the multiplex slice-length
// ablation.
func BenchmarkA1MultiplexInterval(b *testing.B) {
	benchExperiment(b, func(b *testing.B) {
		r, err := experiments.A1()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.IntervalCycles == 400_000 {
				b.ReportMetric(row.Overhead*100, "default-ish-overhead-%")
			}
		}
	})
}

// BenchmarkA2SamplingPeriod regenerates the sampling-period ablation.
func BenchmarkA2SamplingPeriod(b *testing.B) {
	benchExperiment(b, func(b *testing.B) {
		r, err := experiments.A2()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Period == 512 {
				b.ReportMetric(row.Overhead*100, "default-overhead-%")
				b.ReportMetric(row.RelErr*100, "default-err-%")
			}
		}
	})
}

// --- Library micro-benchmarks -------------------------------------

// BenchmarkSimulatedExecution measures raw simulator throughput in
// retired instructions per second of host time.
func BenchmarkSimulatedExecution(b *testing.B) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformLinuxX86})
	th := sys.Main()
	prog := workload.Triad(workload.TriadConfig{N: 4096, Reps: 4})
	perRun := prog.Expected().Instrs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog.Reset()
		th.Run(prog)
	}
	b.ReportMetric(float64(perRun*uint64(b.N))/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkEventSetReadHostCost measures the host-side (Go) cost of a
// counter read through the full stack.
func BenchmarkEventSetReadHostCost(b *testing.B) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformCrayT3E})
	th := sys.Main()
	es := th.NewEventSet()
	if err := es.AddAll(papi.FP_INS, papi.TOT_CYC); err != nil {
		b.Fatal(err)
	}
	if err := es.Start(); err != nil {
		b.Fatal(err)
	}
	vals := make([]int64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := es.Read(vals); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocationMatching measures the Hopcroft–Karp allocator on
// POWER3-sized problems.
func BenchmarkAllocationMatching(b *testing.B) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformAIXPower3})
	th := sys.Main()
	es := th.NewEventSet()
	evs := []papi.Event{papi.TOT_CYC, papi.TOT_INS, papi.FP_INS, papi.FMA_INS,
		papi.LD_INS, papi.SR_INS, papi.BR_INS, papi.L1_DCM}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ev := range evs {
			if err := es.Add(ev); err != nil {
				b.Fatal(err)
			}
		}
		for _, ev := range evs {
			if err := es.Remove(ev); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkOverflowDispatch measures end-to-end overflow interrupt
// delivery through the simulated PMU and core dispatch.
func BenchmarkOverflowDispatch(b *testing.B) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformCrayT3E})
	th := sys.Main()
	es := th.NewEventSet()
	if err := es.Add(papi.FP_INS); err != nil {
		b.Fatal(err)
	}
	fires := 0
	if err := es.SetOverflow(papi.FP_INS, 64, func(*papi.EventSet, uint64, papi.Event) {
		fires++
	}); err != nil {
		b.Fatal(err)
	}
	if err := es.Start(); err != nil {
		b.Fatal(err)
	}
	prog := workload.MatMul(workload.MatMulConfig{N: 16})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog.Reset()
		th.Run(prog)
	}
	b.StopTimer()
	if fires == 0 {
		b.Fatal("no overflows delivered")
	}
}

// BenchmarkServerThroughput measures papid READ round-trips per second
// over loopback with 1, 8 and 64 snapshot subscribers attached, plus
// the allocation cache's hit rate — every session asks for the same
// event pair, so all CREATE_SESSIONs after the first replay the
// memoized matching instead of re-running Hopcroft–Karp.
func BenchmarkServerThroughput(b *testing.B) {
	for _, nsubs := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("subscribers=%d", nsubs), func(b *testing.B) {
			benchServerThroughput(b, nsubs, false, "")
		})
	}
}

// BenchmarkServerThroughputBinary is the same workload on the v3
// binary codec: every client negotiates "binary" at HELLO, so the
// snapshot fan-out and READ replies ride the compact frames.
func BenchmarkServerThroughputBinary(b *testing.B) {
	for _, nsubs := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("subscribers=%d", nsubs), func(b *testing.B) {
			benchServerThroughput(b, nsubs, true, "")
		})
	}
}

// BenchmarkServerThroughputDurable pairs with BenchmarkServerThroughput:
// the identical READ workload with the WAL journaling every tick under
// the interval fsync policy. The delta between the two is the price of
// durability on the serving path — the acceptance bar keeps the
// 64-subscriber case within 10% of the RAM baseline.
func BenchmarkServerThroughputDurable(b *testing.B) {
	for _, nsubs := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("subscribers=%d", nsubs), func(b *testing.B) {
			benchServerThroughput(b, nsubs, false, b.TempDir())
		})
	}
}

func benchServerThroughput(b *testing.B, nsubs int, binary bool, dataDir string) {
	b.ReportAllocs()
	srv := server.New(server.Config{TickInterval: time.Millisecond,
		DataDir: dataDir, Fsync: "interval"})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	events := []string{"PAPI_FP_INS", "PAPI_TOT_CYC"}
	dial := func() *server.Client {
		cl, err := server.Dial(addr.String())
		if err != nil {
			b.Fatal(err)
		}
		if binary {
			cl.PreferBinary = true
			hello, err := cl.Hello()
			if err != nil {
				b.Fatal(err)
			}
			if hello.Codec != wire.CodecNameBinary {
				b.Fatalf("binary upgrade refused: %+v", hello)
			}
		}
		return cl
	}
	mkSession := func(cl *server.Client) uint64 {
		created, err := cl.Do(wire.Request{Op: wire.OpCreate,
			Events: events, Workload: "dot", N: 8})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cl.Do(wire.Request{Op: wire.OpStart, Session: created.Session}); err != nil {
			b.Fatal(err)
		}
		return created.Session
	}

	// The feed session is what subscribers watch; each tick
	// advances its workload and fans a snapshot out.
	ctl := dial()
	defer ctl.Close()
	feed := mkSession(ctl)

	var wg sync.WaitGroup
	subs := make([]*server.Client, nsubs)
	for i := range subs {
		sc := dial()
		subs[i] = sc
		if _, err := sc.Do(wire.Request{Op: wire.OpSubscribe, Session: feed}); err != nil {
			b.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, err := sc.Next(); err != nil {
					return
				}
			}
		}()
	}

	// The reader drives b.N synchronous READs through a session
	// of its own while the fan-out churns in the background.
	rd := dial()
	defer rd.Close()
	mine := mkSession(rd)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rd.Do(wire.Request{Op: wire.OpRead, Session: mine}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/s")
	st := srv.Stats()
	b.ReportMetric(st.CacheHitRate(), "cache-hit-rate")
	if st.CacheHits == 0 {
		b.Fatal("allocation cache saw no hits")
	}
	for _, sc := range subs {
		sc.Close()
	}
	wg.Wait()
}
