package papi_test

import (
	"fmt"

	"repro/papi"
	"repro/workload"
)

// The high-level interface: three calls around the code to measure.
func Example() {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformCrayT3E})
	th := sys.Main()

	if err := th.StartCounters(papi.FP_INS, papi.TOT_INS); err != nil {
		panic(err)
	}
	th.Run(workload.Triad(workload.TriadConfig{N: 1000}))
	vals := make([]int64, 2)
	if err := th.StopCounters(vals); err != nil {
		panic(err)
	}
	fmt.Println("FP instructions:", vals[0])
	// Output:
	// FP instructions: 2000
}

// The low-level interface: explicit EventSet control with Accum.
func ExampleEventSet() {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformCrayT3E})
	th := sys.Main()

	es := th.NewEventSet()
	if err := es.AddAll(papi.FP_INS, papi.LD_INS); err != nil {
		panic(err)
	}
	if err := es.Start(); err != nil {
		panic(err)
	}
	totals := make([]int64, 2)
	for i := 0; i < 3; i++ {
		th.Run(workload.Triad(workload.TriadConfig{N: 100}))
		// Accum folds the counts into totals and zeroes the counters,
		// leaving them running.
		if err := es.Accum(totals); err != nil {
			panic(err)
		}
	}
	if err := es.Stop(nil); err != nil {
		panic(err)
	}
	fmt.Println("FP over three phases:", totals[0])
	// Output:
	// FP over three phases: 600
}

// Overflow dispatch: a callback every N occurrences of an event.
func ExampleEventSet_SetOverflow() {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformCrayT3E})
	th := sys.Main()

	es := th.NewEventSet()
	if err := es.Add(papi.FP_INS); err != nil {
		panic(err)
	}
	fires := 0
	if err := es.SetOverflow(papi.FP_INS, 500, func(_ *papi.EventSet, addr uint64, _ papi.Event) {
		fires++
	}); err != nil {
		panic(err)
	}
	if err := es.Start(); err != nil {
		panic(err)
	}
	th.Run(workload.Triad(workload.TriadConfig{N: 1000})) // 2000 FP instrs
	if err := es.Stop(nil); err != nil {
		panic(err)
	}
	fmt.Println("overflow callbacks:", fires)
	// Output:
	// overflow callbacks: 4
}

// Multiplexing: more events than counters, explicitly opted in.
func ExampleEventSet_SetMultiplex() {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformLinuxX86})
	th := sys.Main()

	es := th.NewEventSet()
	if err := es.SetMultiplex(0); err != nil {
		panic(err)
	}
	// Six events on a two-counter machine.
	err := es.AddAll(papi.TOT_CYC, papi.TOT_INS, papi.FP_INS,
		papi.L1_DCM, papi.BR_INS, papi.LST_INS)
	if err != nil {
		panic(err)
	}
	if err := es.Start(); err != nil {
		panic(err)
	}
	th.Run(workload.MatMul(workload.MatMulConfig{N: 96}))
	vals := make([]int64, 6)
	if err := es.Stop(vals); err != nil {
		panic(err)
	}
	// Estimates, not exact counts: check the FP estimate is within 10%
	// of the analytic truth on this long run.
	truth := int64(workload.MatMul(workload.MatMulConfig{N: 96}).Expected().FPInstrs())
	err10 := vals[2] > truth-truth/10 && vals[2] < truth+truth/10
	fmt.Println("FP estimate within 10% of truth:", err10)
	// Output:
	// FP estimate within 10% of truth: true
}

// SVR4-compatible statistical profiling: hash overflow PCs into a
// histogram over the program text (PAPI_profil).
func ExampleEventSet_Profil() {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformCrayT3E})
	th := sys.Main()

	prog := workload.HotColdLoop(workload.HotColdConfig{Iters: 10_000, Hot: 4, Cold: 16})
	regions := prog.Regions()
	hist, err := papi.NewProfileCovering(regions[0].Lo, regions[len(regions)-1].Hi, 4)
	if err != nil {
		panic(err)
	}
	es := th.NewEventSet()
	if err := es.Add(papi.FP_INS); err != nil {
		panic(err)
	}
	if err := es.Profil(hist, papi.FP_INS, 1000); err != nil {
		panic(err)
	}
	if err := es.Start(); err != nil {
		panic(err)
	}
	th.Run(prog)
	if err := es.Stop(nil); err != nil {
		panic(err)
	}
	// On the in-order T3E every hit lands inside the hot FP region.
	hot := uint64(0)
	for i, h := range hist.Buckets {
		lo, _ := hist.AddrRange(i)
		if regions[0].Contains(lo) {
			hot += h
		}
	}
	fmt.Println("hits:", hist.Total(), "in hot region:", hot)
	// Output:
	// hits: 40 in hot region: 40
}

// Attaching a set to another thread (PAPI_attach): a tool thread
// measures a worker it did not create.
func ExampleEventSet_Attach() {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformCrayT3E})
	controller := sys.Main()
	worker, err := sys.NewThread()
	if err != nil {
		panic(err)
	}
	es := controller.NewEventSet()
	if err := es.Add(papi.FP_INS); err != nil {
		panic(err)
	}
	if err := es.Attach(worker); err != nil {
		panic(err)
	}
	if err := es.Start(); err != nil {
		panic(err)
	}
	worker.Run(workload.Triad(workload.TriadConfig{N: 250}))
	vals := make([]int64, 1)
	if err := es.Stop(vals); err != nil {
		panic(err)
	}
	fmt.Println("worker FP instructions:", vals[0])
	// Output:
	// worker FP instructions: 500
}
