// Package papi is a Go reproduction of PAPI, the Performance API: a
// portable interface to hardware performance counters (Dongarra et al.,
// "Experiences and Lessons Learned with a Portable Interface to
// Hardware Performance Counters", 2003).
//
// The package mirrors the C library's two-level design:
//
//   - the high-level interface — Thread.StartCounters, ReadCounters,
//     AccumCounters, StopCounters, Flops and IPC — for simple, accurate
//     measurements with no bookkeeping; and
//   - the low-level interface — EventSets with explicit Add/Start/
//     Read/Accum/Reset/Stop control, native event access, opt-in
//     multiplexing (SetMultiplex), counter-overflow callbacks
//     (SetOverflow) and SVR4-compatible statistical profiling (Profil)
//     — for tool developers.
//
// Counters are provided by simulated machines: seven architecture
// models reproducing the paper's platforms (Linux/x86, AIX POWER3,
// Tru64 Alpha with DADD/ProfileMe sampling, Linux/IA-64 with EARs,
// Cray T3E, Solaris UltraSPARC, IRIX R10000), each with its documented
// counter constraints, access costs, interrupt skid and quirks. The
// portable layer — preset tables, derived events, counter allocation by
// bipartite matching, 64-bit extension of narrow counters, multiplex
// estimation, overflow dispatch, portable timers, the PAPI 3 memory
// introspection — is implemented in full and identical across
// platforms, which is the paper's point.
//
// A minimal session:
//
//	sys, err := papi.Init(papi.Options{Platform: papi.PlatformAIXPower3})
//	th := sys.Main()
//	es := th.NewEventSet()
//	es.AddAll(papi.FP_OPS, papi.TOT_CYC)
//	es.Start()
//	th.Run(program) // a workload.Stream executing on the simulated core
//	values := make([]int64, 2)
//	es.Stop(values)
package papi

import (
	"repro/internal/core"
	"repro/internal/hwsim"
	"repro/internal/profil"
)

// Core types, re-exported. The engine lives in internal/core; these
// aliases are the public surface, like papi.h over papi_internal.h.
type (
	// System is an initialized library instance bound to one simulated
	// machine (PAPI_library_init).
	System = core.System
	// Options configures Init.
	Options = core.Options
	// Thread is one thread of execution with private counters.
	Thread = core.Thread
	// EventSet is the low-level unit of measurement.
	EventSet = core.EventSet
	// Event is a preset (PAPI_*) or native event code.
	Event = core.Event
	// State is an EventSet lifecycle state.
	State = core.State
	// Errno is a PAPI error code; use IsErr to test wrapped errors.
	Errno = core.Errno
	// OverflowHandler receives counter-overflow notifications.
	OverflowHandler = core.OverflowHandler
	// RateResult is returned by the Flops and IPC convenience calls.
	RateResult = core.RateResult
	// PresetAvail describes preset availability (papi_avail).
	PresetAvail = core.PresetAvail
	// Profile is an SVR4-compatible profiling histogram (PAPI_profil).
	Profile = profil.Profile
	// MemNodeInfo, MemProcessInfo, MemThreadInfo and MemObjectInfo are
	// the PAPI 3 memory-utilization reports.
	MemNodeInfo    = core.MemNodeInfo
	MemProcessInfo = core.MemProcessInfo
	MemThreadInfo  = core.MemThreadInfo
	MemObjectInfo  = core.MemObjectInfo
)

// Stream is an instruction stream runnable on a simulated core; the
// workload package provides implementations.
type Stream = hwsim.Stream

// Init initializes the library (PAPI_library_init).
func Init(opts Options) (*System, error) { return core.NewSystem(opts) }

// MustInit is Init that panics on error, for examples and tests.
func MustInit(opts Options) *System { return core.MustNewSystem(opts) }

// The standard preset events.
const (
	TOT_CYC = core.TOT_CYC
	TOT_INS = core.TOT_INS
	LD_INS  = core.LD_INS
	SR_INS  = core.SR_INS
	LST_INS = core.LST_INS
	FP_INS  = core.FP_INS
	FP_OPS  = core.FP_OPS
	FMA_INS = core.FMA_INS
	FDV_INS = core.FDV_INS
	L1_DCA  = core.L1_DCA
	L1_DCM  = core.L1_DCM
	L1_ICM  = core.L1_ICM
	L2_TCA  = core.L2_TCA
	L2_TCM  = core.L2_TCM
	TLB_DM  = core.TLB_DM
	BR_INS  = core.BR_INS
	BR_TKN  = core.BR_TKN
	BR_MSP  = core.BR_MSP
	RES_STL = core.RES_STL
)

// PAPI error codes.
const (
	EINVAL     = core.EINVAL
	ENOMEM     = core.ENOMEM
	ESYS       = core.ESYS
	ESBSTR     = core.ESBSTR
	ECLOST     = core.ECLOST
	EBUG       = core.EBUG
	ENOEVNT    = core.ENOEVNT
	ECNFLCT    = core.ECNFLCT
	ENOTRUN    = core.ENOTRUN
	EISRUN     = core.EISRUN
	ENOEVST    = core.ENOEVST
	ENOTPRESET = core.ENOTPRESET
	ENOCNTR    = core.ENOCNTR
	EMISC      = core.EMISC
	ENOSUPP    = core.ENOSUPP
)

// EventSet states.
const (
	StateStopped = core.StateStopped
	StateRunning = core.StateRunning
)

// Domain selects which execution modes counters observe
// (PAPI_set_domain); see EventSet.SetDomain.
type Domain = hwsim.Domain

// Counting domains.
const (
	DOM_USER   = hwsim.DomainUser
	DOM_KERNEL = hwsim.DomainKernel
	DOM_ALL    = hwsim.DomainAll
)

// Supported platform keys.
const (
	PlatformLinuxX86   = hwsim.PlatformLinuxX86
	PlatformAIXPower3  = hwsim.PlatformAIXPower3
	PlatformTru64Alpha = hwsim.PlatformTru64Alpha
	PlatformLinuxIA64  = hwsim.PlatformLinuxIA64
	PlatformCrayT3E    = hwsim.PlatformCrayT3E
	PlatformSolaris    = hwsim.PlatformSolaris
	PlatformIRIXMips   = hwsim.PlatformIRIXMips
	PlatformWindows    = hwsim.PlatformWindows
)

// Platforms lists all supported platform keys.
func Platforms() []string { return hwsim.Platforms() }

// Presets returns all standard preset events.
func Presets() []Event { return core.Presets() }

// EventName returns the canonical event name (PAPI_* for presets).
func EventName(e Event) string { return core.EventName(e) }

// EventDescription returns a preset's description.
func EventDescription(e Event) string { return core.EventDescription(e) }

// PresetByName resolves a "PAPI_TOT_INS"-style name.
func PresetByName(name string) (Event, bool) { return core.PresetByName(name) }

// ResolveEvent resolves a preset or platform-native event name on an
// initialized System (sugar over PresetByName + System.NativeByName).
// Session-facing services — cmd/papirun and the papid daemon — accept
// either kind of name and resolve them through this single entry point.
func ResolveEvent(sys *System, name string) (Event, bool) { return sys.ResolveEvent(name) }

// IsErr reports whether err wraps the given PAPI error code.
func IsErr(err error, code Errno) bool { return core.IsErr(err, code) }

// NewProfile builds an SVR4 profiling histogram of nbuckets buckets
// starting at text offset with the given fixed-point scale (65536 = one
// bucket per two bytes). Attach it with EventSet.Profil.
func NewProfile(offset uint64, nbuckets int, scale uint32) (*Profile, error) {
	return profil.New(offset, nbuckets, scale)
}

// NewProfileCovering builds a profile spanning [lo, hi) at the given
// bytes-per-bucket granularity.
func NewProfileCovering(lo, hi uint64, bytesPerBucket int) (*Profile, error) {
	return profil.Covering(lo, hi, bytesPerBucket)
}

// ProfileScaleUnit is the fixed-point unit of profile scales.
const ProfileScaleUnit = profil.ScaleUnit
