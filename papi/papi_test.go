package papi_test

import (
	"testing"

	"repro/papi"
	"repro/workload"
)

// These tests exercise the public facade exactly as a downstream user
// would, on top of the full engine tests in internal/core.

func TestInitAllPlatforms(t *testing.T) {
	for _, p := range papi.Platforms() {
		sys, err := papi.Init(papi.Options{Platform: p})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if sys.Info().Platform != p {
			t.Errorf("%s: info mismatch", p)
		}
	}
	if _, err := papi.Init(papi.Options{Platform: "nonesuch"}); err == nil {
		t.Error("bad platform accepted")
	}
}

func TestEndToEndCountingThroughFacade(t *testing.T) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformCrayT3E})
	th := sys.Main()
	es := th.NewEventSet()
	if err := es.AddAll(papi.FP_INS, papi.TOT_CYC); err != nil {
		t.Fatal(err)
	}
	prog := workload.Triad(workload.TriadConfig{N: 1000})
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	th.Run(prog)
	vals := make([]int64, 2)
	if err := es.Stop(vals); err != nil {
		t.Fatal(err)
	}
	want := int64(prog.Expected().FPInstrs())
	if vals[0] != want {
		t.Errorf("FP_INS = %d, want %d", vals[0], want)
	}
}

func TestErrnoRoundTrip(t *testing.T) {
	sys := papi.MustInit(papi.Options{})
	es := sys.Main().NewEventSet()
	err := es.Add(papi.LD_INS) // unavailable on x86
	if err == nil {
		t.Fatal("expected ENOEVNT")
	}
	if !papi.IsErr(err, papi.ENOEVNT) {
		t.Errorf("expected ENOEVNT, got %v", err)
	}
	if papi.IsErr(err, papi.ECNFLCT) {
		t.Error("wrong code matched")
	}
	if papi.ENOEVNT.Error() == "" {
		t.Error("empty error text")
	}
}

func TestPresetMetadata(t *testing.T) {
	if len(papi.Presets()) < 19 {
		t.Errorf("only %d presets", len(papi.Presets()))
	}
	if papi.EventName(papi.FP_OPS) != "PAPI_FP_OPS" {
		t.Error("name mismatch")
	}
	if papi.EventDescription(papi.FP_OPS) == "" {
		t.Error("missing description")
	}
	ev, ok := papi.PresetByName("PAPI_TLB_DM")
	if !ok || ev != papi.TLB_DM {
		t.Error("lookup failed")
	}
}

func TestProfileConstruction(t *testing.T) {
	p, err := papi.NewProfile(0x1000, 64, papi.ProfileScaleUnit)
	if err != nil || len(p.Buckets) != 64 {
		t.Fatalf("NewProfile: %v", err)
	}
	p2, err := papi.NewProfileCovering(0x1000, 0x2000, 64)
	if err != nil || len(p2.Buckets) != 64 {
		t.Fatalf("NewProfileCovering: %v", err)
	}
	if _, err := papi.NewProfile(0, 0, 1); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestQueryAndAvail(t *testing.T) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformIRIXMips})
	avail := sys.AvailPresets()
	availCount := 0
	for _, pa := range avail {
		if pa.Avail {
			availCount++
			if !sys.QueryEvent(pa.Event) {
				t.Errorf("%s: avail but not queryable", pa.Name)
			}
		} else if sys.QueryEvent(pa.Event) {
			t.Errorf("%s: unavailable but queryable", pa.Name)
		}
	}
	// R10K genuinely lacks some presets.
	if availCount == len(avail) {
		t.Error("R10K should not map every preset")
	}
	if availCount < 10 {
		t.Errorf("R10K maps only %d presets", availCount)
	}
}

func TestSeedDeterminism(t *testing.T) {
	run := func(seed uint64) int64 {
		sys := papi.MustInit(papi.Options{Platform: papi.PlatformLinuxX86, Seed: seed})
		th := sys.Main()
		es := th.NewEventSet()
		es.AddAll(papi.L1_DCM, papi.TOT_CYC)
		es.Start()
		th.Run(workload.PointerChase(workload.ChaseConfig{Nodes: 2048, Steps: 20000}))
		vals := make([]int64, 2)
		es.Stop(vals)
		return vals[1]
	}
	if run(7) != run(7) {
		t.Error("same seed must reproduce identical cycle counts")
	}
}
