// mpirun executes a canned message-passing benchmark (ring halo
// exchange) on simulated ranks with per-rank hardware counting, then
// prints the per-rank profile, the Vampir-style FLOP-rate/activity
// correlation, and optionally the merged node-context-thread trace (§3).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
	"repro/papi"
	"repro/tools/mpisim"
	"repro/workload"
)

func main() {
	platform := flag.String("platform", papi.PlatformAIXPower3, "platform key")
	ranks := flag.Int("np", 4, "number of ranks")
	n := flag.Int("n", 40, "per-rank matmul size (rank r computes n+4r)")
	bytes := flag.Uint64("bytes", 256<<10, "halo message size")
	traceFile := flag.String("trace", "", "write the merged VTF trace to this file")
	flag.Parse()

	if err := run(*platform, *ranks, *n, *bytes, *traceFile); err != nil {
		fmt.Fprintln(os.Stderr, "mpirun:", err)
		os.Exit(1)
	}
}

func run(platform string, ranks, n int, bytes uint64, traceFile string) error {
	sys, err := papi.Init(papi.Options{Platform: platform})
	if err != nil {
		return err
	}
	comm, err := mpisim.NewComm(sys, mpisim.Config{
		Ranks:   ranks,
		Metrics: []papi.Event{papi.FP_OPS},
		Trace:   true,
	})
	if err != nil {
		return err
	}
	scripts := make([]mpisim.Script, ranks)
	for r := 0; r < ranks; r++ {
		right, left := (r+1)%ranks, (r+ranks-1)%ranks
		scripts[r] = mpisim.Script{
			mpisim.Compute{Prog: workload.MatMul(workload.MatMulConfig{N: n + 4*r, UseFMA: true})},
			mpisim.Send{To: right, Bytes: bytes},
			mpisim.Recv{From: left},
			mpisim.Compute{Prog: workload.MatMul(workload.MatMulConfig{N: n, UseFMA: true})},
			mpisim.Barrier{},
		}
	}
	if err := comm.Run(scripts); err != nil {
		return err
	}
	fmt.Printf("mpirun: ring exchange, %d ranks on %s\n\n", ranks, platform)
	fmt.Print(comm.Report())
	rates, err := comm.RegionRates(0)
	if err != nil {
		return err
	}
	fmt.Println("\nFLOP rate by activity:")
	for _, region := range []string{"compute", "send", "recv", "barrier"} {
		fmt.Printf("  %-8s %10.2f FP ops/us\n", region, rates[region])
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteVTF(f, comm.MergedTrace()); err != nil {
			return err
		}
		fmt.Println("\nmerged trace written to", traceFile)
	}
	return nil
}
