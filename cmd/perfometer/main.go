// perfometer runs the real-time monitoring pipeline of §2/Figure 2: a
// backend executing a phased application streams FLOP-rate samples over
// TCP to a frontend, which renders the trace and optionally saves it
// for off-line analysis.
//
// With -papid it instead runs in history mode: query a running papid's
// embedded time-series store for a session's past counter data and
// render the downsampled range — the view a tool gets when it attaches
// after the interesting phase already happened:
//
//	perfometer -papid 127.0.0.1:6117 -session 1 -last 1m -step 10s
//
// With -papid -derive the history query answers in finished derived
// metrics (IPC, miss ratios, MB/s) instead of raw counter buckets, and
// with -watch it subscribes live and streams the server's DERIVED
// frames as they are evaluated:
//
//	perfometer -papid 127.0.0.1:6117 -session 1 -derive ipc,l2miss
//	perfometer -papid 127.0.0.1:6117 -session 1 -derive ipc -watch 5s
//
// With -papid -stats it instead asks the server for its lifetime
// counters and per-op latency quantiles (papid's self-telemetry):
//
//	perfometer -papid 127.0.0.1:6117 -stats
//
// With -tracez it fetches the pipeline flight recorder's retained
// traces from a papid admin (-http) endpoint and prints them slowest
// first — each row's ID plugs into /debug/trace?id= for the full span
// tree, or &format=chrome for a Perfetto-loadable export:
//
//	perfometer -tracez 127.0.0.1:6118
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"slices"
	"strconv"
	"strings"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
	"repro/papi"
	"repro/tools/dynaprof"
	"repro/tools/perfometer"
	"repro/workload"
)

func main() {
	platform := flag.String("platform", papi.PlatformAIXPower3, "platform key")
	metric := flag.String("metric", "PAPI_FP_OPS", "preset event to trace")
	traceFile := flag.String("trace", "", "save the trace to this file")
	width := flag.Int("width", 72, "sparkline width")
	papid := flag.String("papid", "", "history mode: query this papid instead of tracing live")
	session := flag.Uint64("session", 0, "history mode: papid session to query")
	event := flag.String("event", "", "history mode: restrict the query to one event")
	last := flag.Duration("last", time.Minute, "history mode: how far back to query")
	step := flag.Duration("step", 10*time.Second, "history mode: output window width")
	timeout := flag.Duration("timeout", 5*time.Second, "history mode: per-request deadline against papid")
	binary := flag.Bool("binary", false, "history mode: negotiate the compact binary wire codec (falls back to JSON against older papid)")
	stats := flag.Bool("stats", false, "with -papid: print the server's counters and per-op latency quantiles instead of querying history")
	tracez := flag.String("tracez", "", "print a papid flight-recorder view fetched from this admin (-http) address's /tracez endpoint")
	derive := flag.String("derive", "", "with -papid: comma-separated derived-metric groups — query history in finished metrics, or stream them live with -watch")
	watch := flag.Duration("watch", 0, "with -papid -derive: subscribe and stream live DERIVED frames for this long instead of querying history")
	follow := flag.Duration("follow", 0, "with -papid: subscribe and stream live snapshot frames for this long (v4 server)")
	sessions := flag.String("sessions", "", "follow mode: comma-separated session IDs for a wildcard SUBSCRIBE (default: the one -session)")
	labels := flag.String("labels", "", "follow mode: comma-separated session-label globs for a wildcard SUBSCRIBE")
	filterEvents := flag.String("filter-events", "", "follow mode: comma-separated event names to limit frames to")
	delta := flag.Bool("delta", false, "follow mode: delta subscription — keyframes plus changed-counter DELTA frames, reassembled locally")
	flag.Parse()

	groups := splitList(*derive)
	var err error
	switch {
	case *tracez != "":
		err = runTracez(*tracez, *timeout)
	case *papid != "" && *stats:
		err = runStats(*papid, *timeout, *binary)
	case *papid != "" && *follow > 0:
		err = runFollow(*papid, followOpts{
			session: *session, sessions: *sessions, labels: splitList(*labels),
			events: splitList(*filterEvents), delta: *delta,
			dur: *follow, timeout: *timeout, binary: *binary,
		})
	case *papid != "" && *watch > 0:
		if len(groups) == 0 {
			err = fmt.Errorf("-watch needs -derive to name the groups to stream")
		} else {
			err = runWatch(*papid, *session, groups, *watch, *width, *timeout, *binary)
		}
	case *papid != "":
		err = runHistory(*papid, *session, *event, groups, *last, *step, *width, *timeout, *binary)
	case len(groups) > 0 || *watch > 0 || *follow > 0:
		err = fmt.Errorf("-derive, -watch and -follow need -papid to name the server")
	default:
		err = run(*platform, *metric, *traceFile, *width)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfometer:", err)
		os.Exit(1)
	}
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// runHistory is the -papid mode: handshake, QUERY, render. The
// reconnecting client retries the dial with backoff, bounds every
// request, and transparently redials (QUERY is idempotent) if the
// connection drops mid-conversation.
func runHistory(addr string, session uint64, event string, groups []string, last, step time.Duration, width int, timeout time.Duration, binary bool) error {
	cl, err := server.DialReconn(addr, server.RetryConfig{Timeout: timeout, PreferBinary: binary})
	if err != nil {
		return fmt.Errorf("dialing papid at %s: %w", addr, err)
	}
	defer cl.Close()
	hello := cl.Hello()
	if hello.Protocol < wire.MinProtocolQuery {
		return fmt.Errorf("papid at %s speaks protocol %d; QUERY needs >= %d (upgrade the server)",
			addr, hello.Protocol, wire.MinProtocolQuery)
	}
	if len(groups) > 0 && hello.Protocol < wire.MinProtocolDerived {
		return fmt.Errorf("papid at %s speaks protocol %d; derive needs >= %d (upgrade the server)",
			addr, hello.Protocol, wire.MinProtocolDerived)
	}
	to := time.Now().UnixMicro()
	req := wire.Request{Op: wire.OpQuery, Session: session, Derive: groups,
		From: to - last.Microseconds(), To: to, Step: step.Microseconds()}
	if event != "" {
		req.Events = []string{event}
	}
	resp, err := cl.Do(req)
	if err != nil {
		return err
	}
	if len(groups) > 0 {
		if len(resp.Derived) == 0 {
			return fmt.Errorf("session %d has no derivable history in the last %s at %s steps (deltas need two buckets; try a smaller -step or -step 0 for raw)",
				session, last, step)
		}
		fmt.Printf("perfometer derived history: session %d, groups %s, last %s at %s steps (papid %s)\n",
			session, strings.Join(groups, ","), last, step, addr)
		perfometer.RenderDerived(os.Stdout, resp.Derived, width)
		_, err = cl.Do(wire.Request{Op: wire.OpBye})
		return err
	}
	if len(resp.Series) == 0 {
		return fmt.Errorf("session %d has no history in the last %s", session, last)
	}
	fmt.Printf("perfometer history: session %d, last %s at %s steps (papid %s)\n",
		session, last, step, addr)
	perfometer.RenderHistory(os.Stdout, resp.Series, width)
	_, err = cl.Do(wire.Request{Op: wire.OpBye})
	return err
}

// runWatch is -papid -derive -watch: subscribe to the session with the
// named groups and stream the server-evaluated DERIVED frames as they
// arrive, then summarize each metric as a sparkline. The subscription
// rides a plain (non-reconnecting) client on purpose: a redial would
// silently restart the stream's delta baseline, and for a bounded watch
// an honest "connection lost" beats a seamless-looking gap.
func runWatch(addr string, session uint64, groups []string, watch time.Duration, width int, timeout time.Duration, binary bool) error {
	cl, err := server.DialRetry(addr, server.RetryConfig{Timeout: timeout, PreferBinary: binary})
	if err != nil {
		return fmt.Errorf("dialing papid at %s: %w", addr, err)
	}
	defer cl.Close()
	hello, err := cl.Hello()
	if err != nil {
		return err
	}
	if hello.Protocol < wire.MinProtocolDerived {
		return fmt.Errorf("papid at %s speaks protocol %d; DERIVED needs >= %d (upgrade the server)",
			addr, hello.Protocol, wire.MinProtocolDerived)
	}
	if _, err := cl.Do(wire.Request{Op: wire.OpSubscribe, Session: session, Derive: groups}); err != nil {
		return err
	}
	fmt.Printf("perfometer watch: session %d, groups %s for %s (papid %s)\n",
		session, strings.Join(groups, ","), watch, addr)

	// The watch timer ends the stream by closing the connection, which
	// unblocks the read loop; `done` distinguishes that planned close
	// from a real transport failure.
	done := make(chan struct{})
	timer := time.AfterFunc(watch, func() { close(done); cl.Close() })
	defer timer.Stop()
	history := make(map[string][]float64)
	units := make(map[string]string)
	var order []string
	frames := 0
	for {
		resp, err := cl.Next()
		if err != nil {
			select {
			case <-done:
				err = nil
			default:
			}
			if err != nil {
				return err
			}
			break
		}
		if resp.Op != wire.OpDerived {
			continue
		}
		frames++
		fmt.Println(perfometer.FormatDerivedFrame(resp))
		for i, v := range resp.DValues {
			if i >= len(resp.Metrics) {
				break
			}
			m := resp.Metrics[i]
			if _, ok := history[m]; !ok {
				order = append(order, m)
				if i < len(resp.Units) {
					units[m] = resp.Units[i]
				}
			}
			history[m] = append(history[m], v)
		}
	}
	if frames == 0 {
		return fmt.Errorf("no DERIVED frames within %s: is session %d publishing ticks?", watch, session)
	}
	fmt.Printf("%d frames in %s\n", frames, watch)
	for _, m := range order {
		fmt.Printf("  %-20s [%s] %s\n", m, units[m], perfometer.SparklineValues(history[m], width))
	}
	return nil
}

// followOpts carries the -follow mode's flag values.
type followOpts struct {
	session  uint64
	sessions string // raw -sessions value; parsed into IDs
	labels   []string
	events   []string
	delta    bool
	dur      time.Duration
	timeout  time.Duration
	binary   bool
}

// runFollow is -papid -follow: subscribe live — optionally to several
// sessions by ID or label glob, narrowed to chosen events, in delta
// mode — and stream the snapshot frames for the given duration. DELTA
// frames are reassembled into full snapshots locally; a frame for a
// session outside the subscribed set is a server bug and fails loudly.
func runFollow(addr string, o followOpts) error {
	ids, err := parseIDs(o.sessions)
	if err != nil {
		return err
	}
	wildcard := len(ids) > 0 || len(o.labels) > 0
	if !wildcard && o.session == 0 {
		return fmt.Errorf("-follow needs -session, -sessions or -labels to pick what to stream")
	}
	cl, err := server.DialRetry(addr, server.RetryConfig{Timeout: o.timeout, PreferBinary: o.binary})
	if err != nil {
		return fmt.Errorf("dialing papid at %s: %w", addr, err)
	}
	defer cl.Close()
	hello, err := cl.Hello()
	if err != nil {
		return err
	}
	if filtered := wildcard || len(o.events) > 0 || o.delta; filtered && hello.Protocol < wire.MinProtocolFilter {
		return fmt.Errorf("papid at %s speaks protocol %d; filtered/delta subscriptions need >= %d (upgrade the server)",
			addr, hello.Protocol, wire.MinProtocolFilter)
	}
	req := wire.Request{Op: wire.OpSubscribe, Events: o.events, Delta: o.delta}
	if wildcard {
		req.Sessions, req.Labels = ids, o.labels
	} else {
		req.Session = o.session
	}
	sub, err := cl.Do(req)
	if err != nil {
		return err
	}
	subscribed := sub.Sessions
	if !wildcard {
		subscribed = []uint64{o.session}
	}
	fmt.Printf("perfometer follow: sessions %v for %s (papid %s, delta=%v)\n",
		subscribed, o.dur, addr, o.delta)

	// Like runWatch: the timer ends the stream by closing the
	// connection, and `done` distinguishes that from a real failure.
	done := make(chan struct{})
	timer := time.AfterFunc(o.dur, func() { close(done); cl.Close() })
	defer timer.Stop()
	var tracker wire.DeltaTracker
	var keyframes, deltas, skipped int
	for {
		resp, err := cl.Next()
		if err != nil {
			select {
			case <-done:
			default:
				return err
			}
			break
		}
		if resp.Op != wire.OpSnapshot && resp.Op != wire.OpDelta {
			continue
		}
		if !slices.Contains(subscribed, resp.Session) {
			return fmt.Errorf("papid sent a frame for session %d, outside the subscribed set %v",
				resp.Session, subscribed)
		}
		if resp.Op == wire.OpDelta {
			deltas++
		} else {
			keyframes++
		}
		snap, err := tracker.Apply(resp)
		if err != nil {
			// A missed keyframe (e.g. frames raced the subscribe reply)
			// self-heals at the next keyframe; count it and keep reading.
			skipped++
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "s%d seq=%d", snap.Session, snap.Seq)
		for i, ev := range snap.Events {
			if i < len(snap.Values) {
				fmt.Fprintf(&b, " %s=%d", ev, snap.Values[i])
			}
		}
		fmt.Println(b.String())
	}
	fmt.Printf("follow summary: %d frames (keyframes=%d deltas=%d skipped=%d) in %s\n",
		keyframes+deltas, keyframes, deltas, skipped, o.dur)
	return nil
}

// parseIDs parses a comma-separated list of session IDs.
func parseIDs(s string) ([]uint64, error) {
	var ids []uint64
	for _, f := range splitList(s) {
		id, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -sessions entry %q: %v", f, err)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// runStats is -papid -stats: one STATS round-trip, rendered. A v3
// papid answers with latency histograms attached; an older one sends
// the counter map alone and the renderer says so.
func runStats(addr string, timeout time.Duration, binary bool) error {
	cl, err := server.DialReconn(addr, server.RetryConfig{Timeout: timeout, PreferBinary: binary})
	if err != nil {
		return fmt.Errorf("dialing papid at %s: %w", addr, err)
	}
	defer cl.Close()
	resp, err := cl.Do(wire.Request{Op: wire.OpStats})
	if err != nil {
		return err
	}
	fmt.Printf("perfometer stats: papid %s (protocol %d)\n", addr, cl.Hello().Protocol)
	perfometer.RenderStats(os.Stdout, resp.Stats, resp.Hists)
	perfometer.RenderSlow(os.Stdout, resp.Slow)
	_, err = cl.Do(wire.Request{Op: wire.OpBye})
	return err
}

// runTracez is -tracez: fetch the flight recorder's retained-trace
// list from papid's admin endpoint (the same document /tracez serves
// in HTML) and render it as a table. Unlike the other modes this
// talks HTTP to -http, not the wire protocol to -addr.
func runTracez(addr string, timeout time.Duration) error {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	url := strings.TrimRight(base, "/") + "/tracez?format=json"
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("fetching %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s answered %s (is this the admin -http address, with tracing on?)", url, resp.Status)
	}
	var doc perfometer.TracezDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("decoding %s: %w", url, err)
	}
	fmt.Printf("perfometer tracez: papid admin %s\n", addr)
	perfometer.RenderTracez(os.Stdout, doc)
	return nil
}

func run(platform, metric, traceFile string, width int) error {
	sys, err := papi.Init(papi.Options{Platform: platform})
	if err != nil {
		return err
	}
	th := sys.Main()
	ev, ok := papi.PresetByName(metric)
	if !ok {
		return fmt.Errorf("unknown metric %q", metric)
	}

	// Frontend listens; backend dials — the paper's two-process shape,
	// here wired through the loopback in one process.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()

	front := &perfometer.Frontend{}
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		done <- front.Consume(conn)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return err
	}

	backend := perfometer.NewBackend(th, ev, 200_000)
	exe, err := phasedExecutable()
	if err != nil {
		return err
	}
	prof := dynaprof.Attach(exe)
	if err := prof.Instrument("*", &perfometer.SectionProbe{Backend: backend}); err != nil {
		return err
	}
	if err := backend.RunInstrumented(conn, func() error { return prof.Run(th) }); err != nil {
		return err
	}
	conn.Close()
	if err := <-done; err != nil {
		return err
	}

	fmt.Printf("perfometer: %s on %s (%d samples)\n", metric, platform, len(front.Points))
	fmt.Printf("peak rate: %.2f M%s/s\n", front.MaxRate()/1e6, metric)
	fmt.Println(front.Sparkline(width))
	fmt.Println("sections:", front.Sections())
	for sec, rate := range front.SectionMeanRate() {
		fmt.Printf("  %-12s mean %.2f M/s\n", sec, rate/1e6)
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := front.SaveTrace(f); err != nil {
			return err
		}
		fmt.Println("trace saved to", traceFile)
	}
	return nil
}

func phasedExecutable() (*dynaprof.Executable, error) {
	return dynaprof.NewExecutable("phased", "main",
		&dynaprof.Func{Name: "main", Body: []dynaprof.Stmt{
			dynaprof.CallStmt{Callee: "compute_a"},
			dynaprof.CallStmt{Callee: "gather"},
			dynaprof.CallStmt{Callee: "compute_b"},
		}},
		&dynaprof.Func{Name: "compute_a", Body: []dynaprof.Stmt{
			dynaprof.RunStmt{Prog: workload.MatMul(workload.MatMulConfig{N: 64, UseFMA: true})},
		}},
		&dynaprof.Func{Name: "gather", Body: []dynaprof.Stmt{
			dynaprof.RunStmt{Prog: workload.PointerChase(workload.ChaseConfig{Nodes: 1 << 14, Steps: 500_000})},
		}},
		&dynaprof.Func{Name: "compute_b", Body: []dynaprof.Stmt{
			dynaprof.RunStmt{Prog: workload.MatMul(workload.MatMulConfig{N: 64, UseFMA: true})},
		}},
	)
}
