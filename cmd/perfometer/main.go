// perfometer runs the real-time monitoring pipeline of §2/Figure 2: a
// backend executing a phased application streams FLOP-rate samples over
// TCP to a frontend, which renders the trace and optionally saves it
// for off-line analysis.
//
// With -papid it instead runs in history mode: query a running papid's
// embedded time-series store for a session's past counter data and
// render the downsampled range — the view a tool gets when it attaches
// after the interesting phase already happened:
//
//	perfometer -papid 127.0.0.1:6117 -session 1 -last 1m -step 10s
//
// With -papid -stats it instead asks the server for its lifetime
// counters and per-op latency quantiles (papid's self-telemetry):
//
//	perfometer -papid 127.0.0.1:6117 -stats
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
	"repro/papi"
	"repro/tools/dynaprof"
	"repro/tools/perfometer"
	"repro/workload"
)

func main() {
	platform := flag.String("platform", papi.PlatformAIXPower3, "platform key")
	metric := flag.String("metric", "PAPI_FP_OPS", "preset event to trace")
	traceFile := flag.String("trace", "", "save the trace to this file")
	width := flag.Int("width", 72, "sparkline width")
	papid := flag.String("papid", "", "history mode: query this papid instead of tracing live")
	session := flag.Uint64("session", 0, "history mode: papid session to query")
	event := flag.String("event", "", "history mode: restrict the query to one event")
	last := flag.Duration("last", time.Minute, "history mode: how far back to query")
	step := flag.Duration("step", 10*time.Second, "history mode: output window width")
	timeout := flag.Duration("timeout", 5*time.Second, "history mode: per-request deadline against papid")
	binary := flag.Bool("binary", false, "history mode: negotiate the compact binary wire codec (falls back to JSON against older papid)")
	stats := flag.Bool("stats", false, "with -papid: print the server's counters and per-op latency quantiles instead of querying history")
	flag.Parse()

	var err error
	if *papid != "" && *stats {
		err = runStats(*papid, *timeout, *binary)
	} else if *papid != "" {
		err = runHistory(*papid, *session, *event, *last, *step, *width, *timeout, *binary)
	} else {
		err = run(*platform, *metric, *traceFile, *width)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfometer:", err)
		os.Exit(1)
	}
}

// runHistory is the -papid mode: handshake, QUERY, render. The
// reconnecting client retries the dial with backoff, bounds every
// request, and transparently redials (QUERY is idempotent) if the
// connection drops mid-conversation.
func runHistory(addr string, session uint64, event string, last, step time.Duration, width int, timeout time.Duration, binary bool) error {
	cl, err := server.DialReconn(addr, server.RetryConfig{Timeout: timeout, PreferBinary: binary})
	if err != nil {
		return fmt.Errorf("dialing papid at %s: %w", addr, err)
	}
	defer cl.Close()
	hello := cl.Hello()
	if hello.Protocol < wire.MinProtocolQuery {
		return fmt.Errorf("papid at %s speaks protocol %d; QUERY needs >= %d (upgrade the server)",
			addr, hello.Protocol, wire.MinProtocolQuery)
	}
	to := time.Now().UnixMicro()
	req := wire.Request{Op: wire.OpQuery, Session: session,
		From: to - last.Microseconds(), To: to, Step: step.Microseconds()}
	if event != "" {
		req.Events = []string{event}
	}
	resp, err := cl.Do(req)
	if err != nil {
		return err
	}
	if len(resp.Series) == 0 {
		return fmt.Errorf("session %d has no history in the last %s", session, last)
	}
	fmt.Printf("perfometer history: session %d, last %s at %s steps (papid %s)\n",
		session, last, step, addr)
	perfometer.RenderHistory(os.Stdout, resp.Series, width)
	_, err = cl.Do(wire.Request{Op: wire.OpBye})
	return err
}

// runStats is -papid -stats: one STATS round-trip, rendered. A v3
// papid answers with latency histograms attached; an older one sends
// the counter map alone and the renderer says so.
func runStats(addr string, timeout time.Duration, binary bool) error {
	cl, err := server.DialReconn(addr, server.RetryConfig{Timeout: timeout, PreferBinary: binary})
	if err != nil {
		return fmt.Errorf("dialing papid at %s: %w", addr, err)
	}
	defer cl.Close()
	resp, err := cl.Do(wire.Request{Op: wire.OpStats})
	if err != nil {
		return err
	}
	fmt.Printf("perfometer stats: papid %s (protocol %d)\n", addr, cl.Hello().Protocol)
	perfometer.RenderStats(os.Stdout, resp.Stats, resp.Hists)
	_, err = cl.Do(wire.Request{Op: wire.OpBye})
	return err
}

func run(platform, metric, traceFile string, width int) error {
	sys, err := papi.Init(papi.Options{Platform: platform})
	if err != nil {
		return err
	}
	th := sys.Main()
	ev, ok := papi.PresetByName(metric)
	if !ok {
		return fmt.Errorf("unknown metric %q", metric)
	}

	// Frontend listens; backend dials — the paper's two-process shape,
	// here wired through the loopback in one process.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()

	front := &perfometer.Frontend{}
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		done <- front.Consume(conn)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return err
	}

	backend := perfometer.NewBackend(th, ev, 200_000)
	exe, err := phasedExecutable()
	if err != nil {
		return err
	}
	prof := dynaprof.Attach(exe)
	if err := prof.Instrument("*", &perfometer.SectionProbe{Backend: backend}); err != nil {
		return err
	}
	if err := backend.RunInstrumented(conn, func() error { return prof.Run(th) }); err != nil {
		return err
	}
	conn.Close()
	if err := <-done; err != nil {
		return err
	}

	fmt.Printf("perfometer: %s on %s (%d samples)\n", metric, platform, len(front.Points))
	fmt.Printf("peak rate: %.2f M%s/s\n", front.MaxRate()/1e6, metric)
	fmt.Println(front.Sparkline(width))
	fmt.Println("sections:", front.Sections())
	for sec, rate := range front.SectionMeanRate() {
		fmt.Printf("  %-12s mean %.2f M/s\n", sec, rate/1e6)
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := front.SaveTrace(f); err != nil {
			return err
		}
		fmt.Println("trace saved to", traceFile)
	}
	return nil
}

func phasedExecutable() (*dynaprof.Executable, error) {
	return dynaprof.NewExecutable("phased", "main",
		&dynaprof.Func{Name: "main", Body: []dynaprof.Stmt{
			dynaprof.CallStmt{Callee: "compute_a"},
			dynaprof.CallStmt{Callee: "gather"},
			dynaprof.CallStmt{Callee: "compute_b"},
		}},
		&dynaprof.Func{Name: "compute_a", Body: []dynaprof.Stmt{
			dynaprof.RunStmt{Prog: workload.MatMul(workload.MatMulConfig{N: 64, UseFMA: true})},
		}},
		&dynaprof.Func{Name: "gather", Body: []dynaprof.Stmt{
			dynaprof.RunStmt{Prog: workload.PointerChase(workload.ChaseConfig{Nodes: 1 << 14, Steps: 500_000})},
		}},
		&dynaprof.Func{Name: "compute_b", Body: []dynaprof.Stmt{
			dynaprof.RunStmt{Prog: workload.MatMul(workload.MatMulConfig{N: 64, UseFMA: true})},
		}},
	)
}
