// papi-cost measures the cycle cost of the counter operations on every
// simulated platform — the reproduction of the papi_cost utility
// (experiment E10).
package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	out, err := experiments.Render("E10")
	if err != nil {
		fmt.Fprintln(os.Stderr, "papi-cost:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
