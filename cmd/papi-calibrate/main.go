// papi-calibrate runs known-FLOP kernels and compares measured counts
// against expected values across substrates — the calibrate utility §4
// describes, and the harness behind experiment E1.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/papi"
	"repro/workload"
)

func main() {
	platform := flag.String("platform", "", "calibrate a single platform (default: run the full E1 sweep)")
	n := flag.Int("n", 64, "matmul dimension for single-platform mode")
	flag.Parse()

	if *platform == "" {
		out, err := experiments.Render("E1")
		if err != nil {
			fmt.Fprintln(os.Stderr, "papi-calibrate:", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}
	if err := one(*platform, *n); err != nil {
		fmt.Fprintln(os.Stderr, "papi-calibrate:", err)
		os.Exit(1)
	}
}

func one(platform string, n int) error {
	sys, err := papi.Init(papi.Options{Platform: platform})
	if err != nil {
		return err
	}
	th := sys.Main()
	prog := workload.MatMul(workload.MatMulConfig{N: n})
	expected := prog.Expected().FLOPs()
	es := th.NewEventSet()
	if err := es.Add(papi.FP_OPS); err != nil {
		return err
	}
	if err := es.Start(); err != nil {
		return err
	}
	th.Run(prog)
	vals := make([]int64, 1)
	if err := es.Stop(vals); err != nil {
		return err
	}
	rel := 0.0
	if expected > 0 {
		d := float64(vals[0]) - float64(expected)
		if d < 0 {
			d = -d
		}
		rel = d / float64(expected)
	}
	fmt.Printf("papi-calibrate: %s, matmul N=%d\n", platform, n)
	fmt.Printf("expected FP ops : %d\n", expected)
	fmt.Printf("measured FP ops : %d\n", vals[0])
	fmt.Printf("relative error  : %.4f%%\n", rel*100)
	return nil
}
