// benchjson runs `go test -bench` and writes the results as JSON, so
// benchmark trajectories (compression ratios, throughput, query
// latency) are machine-readable instead of buried in test logs:
//
//	benchjson -out BENCH_tsdb.json -bench TSDB ./internal/tsdb
//
// The output records the environment (goos/goarch/cpu), the exact
// command, and one entry per benchmark with every metric Go reported —
// standard ones (ns/op, MB/s, B/op) and custom ReportMetric units
// (x-compression, B/sample) alike.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line.
type Result struct {
	Package    string             `json:"package"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is the emitted document.
type File struct {
	Generated string   `json:"generated"`
	Command   string   `json:"command"`
	GOOS      string   `json:"goos,omitempty"`
	GOARCH    string   `json:"goarch,omitempty"`
	CPU       string   `json:"cpu,omitempty"`
	Results   []Result `json:"results"`
}

// benchLine matches e.g.
//
//	BenchmarkTSDBQuery/queriers-8-4   12  94888 ns/op  5.5 x-compression
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+(.+)$`)

func main() {
	out := flag.String("out", "", "output JSON file (required)")
	bench := flag.String("bench", ".", "benchmark regexp passed to go test")
	benchtime := flag.String("benchtime", "", "benchtime passed to go test (default go's 1s)")
	count := flag.Int("count", 1, "count passed to go test")
	benchmem := flag.Bool("benchmem", false, "pass -benchmem to go test, recording B/op and allocs/op")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}

	args := []string{"test", "-run=^$", "-bench=" + *bench, "-count=" + strconv.Itoa(*count)}
	if *benchtime != "" {
		args = append(args, "-benchtime="+*benchtime)
	}
	if *benchmem {
		args = append(args, "-benchmem")
	}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fail(err)
	}
	if err := cmd.Start(); err != nil {
		fail(err)
	}

	doc := File{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Command:   "go " + strings.Join(args, " "),
	}
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // keep the human-readable stream visible
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if r, ok := parseBench(line, pkg); ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
	if err := cmd.Wait(); err != nil {
		fail(fmt.Errorf("go test: %w", err))
	}
	if len(doc.Results) == 0 {
		fail(fmt.Errorf("no benchmark results matched -bench %q in %s", *bench, strings.Join(pkgs, " ")))
	}

	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("benchjson: %d results -> %s\n", len(doc.Results), *out)
}

// parseBench turns one "BenchmarkX-P  N  v unit  v unit..." line into
// a Result.
func parseBench(line, pkg string) (Result, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return Result{}, false
	}
	r := Result{
		Package: pkg,
		Name:    strings.TrimPrefix(m[1], "Benchmark"),
		Procs:   1,
		Metrics: map[string]float64{},
	}
	if m[2] != "" {
		r.Procs, _ = strconv.Atoi(m[2])
	}
	r.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
	fields := strings.Fields(m[4])
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
