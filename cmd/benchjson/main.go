// benchjson runs `go test -bench` and writes the results as JSON, so
// benchmark trajectories (compression ratios, throughput, query
// latency) are machine-readable instead of buried in test logs:
//
//	benchjson -out BENCH_tsdb.json -bench TSDB ./internal/tsdb
//
// The output records the environment (goos/goarch/cpu), the exact
// command, and one entry per benchmark with every metric Go reported —
// standard ones (ns/op, MB/s, B/op) and custom ReportMetric units
// (x-compression, B/sample) alike.
//
// -diff compares two such files — the regression gate behind
// tools/bench.sh compare and the CI smoke check:
//
//	benchjson -diff -gate 'ServerQuery' -max-regress 25 old.json new.json
//
// It prints a per-benchmark, per-metric delta table — ns/op first,
// then every other recorded metric including allocs/op and B/op when
// the runs used -benchmem — and exits non-zero when any benchmark
// matching the -gate regexp regressed its ns/op by more than
// -max-regress percent. -gate-allocs additionally gates allocs/op and
// B/op regressions for the same benchmarks (opt-in: allocation counts
// are stable, but byte sizes can shift with Go releases). The regexp
// matches the procs-qualified label (e.g. "ServerQuery/queriers-8"),
// so one parallelism level can be gated alone. Benchmarks present in
// only one file are reported but never gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line.
type Result struct {
	Package    string             `json:"package"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is the emitted document.
type File struct {
	Generated string   `json:"generated"`
	Command   string   `json:"command"`
	GOOS      string   `json:"goos,omitempty"`
	GOARCH    string   `json:"goarch,omitempty"`
	CPU       string   `json:"cpu,omitempty"`
	Results   []Result `json:"results"`
}

// benchLine matches e.g.
//
//	BenchmarkTSDBQuery/queriers-8-4   12  94888 ns/op  5.5 x-compression
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+(.+)$`)

func main() {
	out := flag.String("out", "", "output JSON file (required)")
	bench := flag.String("bench", ".", "benchmark regexp passed to go test")
	benchtime := flag.String("benchtime", "", "benchtime passed to go test (default go's 1s)")
	count := flag.Int("count", 1, "count passed to go test")
	benchmem := flag.Bool("benchmem", false, "pass -benchmem to go test, recording B/op and allocs/op")
	diff := flag.Bool("diff", false, "compare two result files: benchjson -diff [-gate re] [-max-regress pct] old.json new.json")
	gate := flag.String("gate", "", "with -diff, regexp of benchmark names whose ns/op regressions gate the exit code (empty gates nothing)")
	maxRegress := flag.Float64("max-regress", 25, "with -diff, max allowed ns/op regression percent for gated benchmarks")
	gateAllocs := flag.Bool("gate-allocs", false, "with -diff, also gate allocs/op and B/op regressions for -gate benchmarks")
	flag.Parse()
	if *diff {
		os.Exit(runDiff(flag.Args(), *gate, *maxRegress, *gateAllocs))
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}

	args := []string{"test", "-run=^$", "-bench=" + *bench, "-count=" + strconv.Itoa(*count)}
	if *benchtime != "" {
		args = append(args, "-benchtime="+*benchtime)
	}
	if *benchmem {
		args = append(args, "-benchmem")
	}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fail(err)
	}
	if err := cmd.Start(); err != nil {
		fail(err)
	}

	doc := File{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Command:   "go " + strings.Join(args, " "),
	}
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // keep the human-readable stream visible
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if r, ok := parseBench(line, pkg); ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
	if err := cmd.Wait(); err != nil {
		fail(fmt.Errorf("go test: %w", err))
	}
	if len(doc.Results) == 0 {
		fail(fmt.Errorf("no benchmark results matched -bench %q in %s", *bench, strings.Join(pkgs, " ")))
	}

	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("benchjson: %d results -> %s\n", len(doc.Results), *out)
}

// parseBench turns one "BenchmarkX-P  N  v unit  v unit..." line into
// a Result.
func parseBench(line, pkg string) (Result, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return Result{}, false
	}
	r := Result{
		Package: pkg,
		Name:    strings.TrimPrefix(m[1], "Benchmark"),
		Procs:   1,
		Metrics: map[string]float64{},
	}
	if m[2] != "" {
		r.Procs, _ = strconv.Atoi(m[2])
	}
	r.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
	fields := strings.Fields(m[4])
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// runDiff implements -diff: load two result files, align them by
// (package, name, procs), print every metric's delta, and return the
// process exit code — non-zero when a gated benchmark's ns/op (or,
// with -gate-allocs, allocs/op or B/op) regressed past the threshold.
func runDiff(args []string, gate string, maxRegress float64, gateAllocs bool) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two files: old.json new.json")
		return 2
	}
	var gateRe *regexp.Regexp
	if gate != "" {
		re, err := regexp.Compile(gate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad -gate %q: %v\n", gate, err)
			return 2
		}
		gateRe = re
	}
	oldDoc, err := loadFile(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	newDoc, err := loadFile(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}

	type key struct {
		pkg, name string
		procs     int
	}
	keyOf := func(r Result) key { return key{r.Package, r.Name, r.Procs} }
	oldBy := make(map[key]Result, len(oldDoc.Results))
	for _, r := range oldDoc.Results {
		oldBy[keyOf(r)] = r
	}
	seen := make(map[key]bool, len(newDoc.Results))

	fmt.Printf("benchjson diff: %s -> %s\n", args[0], args[1])
	failures := 0
	// Iterate the new file in order so the table reads like its source.
	for _, nr := range newDoc.Results {
		k := keyOf(nr)
		seen[k] = true
		label := nr.Name
		if nr.Procs != 1 {
			label = fmt.Sprintf("%s-%d", nr.Name, nr.Procs)
		}
		or, ok := oldBy[k]
		if !ok {
			fmt.Printf("  %-52s (new benchmark; no baseline)\n", label)
			continue
		}
		// The gate matches the procs-qualified label ("Query/queriers-8"),
		// so a gate can single out one parallelism level.
		gated := gateRe != nil && gateRe.MatchString(label)
		for _, metric := range sortedMetricNames(or.Metrics, nr.Metrics) {
			ov, haveOld := or.Metrics[metric]
			nv, haveNew := nr.Metrics[metric]
			switch {
			case !haveOld:
				fmt.Printf("  %-52s %-14s %14s -> %12.4g\n", label, metric, "(none)", nv)
			case !haveNew:
				fmt.Printf("  %-52s %-14s %12.4g -> %14s\n", label, metric, ov, "(gone)")
			default:
				pct := 0.0
				if ov != 0 {
					pct = (nv - ov) / ov * 100
				}
				gating := metric == "ns/op" ||
					(gateAllocs && (metric == "allocs/op" || metric == "B/op"))
				verdict := ""
				if gated && gating && pct > maxRegress {
					verdict = fmt.Sprintf("  REGRESSION (> %.0f%%)", maxRegress)
					failures++
				}
				fmt.Printf("  %-52s %-14s %12.4g -> %12.4g  %+7.1f%%%s\n",
					label, metric, ov, nv, pct, verdict)
			}
		}
	}
	for _, or := range oldDoc.Results {
		if k := keyOf(or); !seen[k] {
			fmt.Printf("  %-52s (dropped; present only in baseline)\n", or.Name)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d gated regression(s) beyond %.0f%%\n",
			failures, maxRegress)
		return 1
	}
	fmt.Println("benchjson: no gated regressions")
	return 0
}

func loadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc File
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Results) == 0 {
		return nil, fmt.Errorf("%s: no results", path)
	}
	return &doc, nil
}

// sortedMetricNames merges both sides' metric names, ns/op first so
// the gated number leads each benchmark's block.
func sortedMetricNames(a, b map[string]float64) []string {
	set := make(map[string]bool, len(a)+len(b))
	for m := range a {
		set[m] = true
	}
	for m := range b {
		set[m] = true
	}
	names := make([]string, 0, len(set))
	for m := range set {
		if m != "ns/op" {
			names = append(names, m)
		}
	}
	sort.Strings(names)
	if set["ns/op"] {
		names = append([]string{"ns/op"}, names...)
	}
	return names
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
