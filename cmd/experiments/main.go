// experiments regenerates every table and figure of the paper's
// evaluation (see EXPERIMENTS.md for the index).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("e", "", "run a single experiment by ID (e1..e11, f2); default all")
	flag.Parse()

	runners := experiments.All()
	if *only != "" {
		id := strings.ToUpper(*only)
		out, err := experiments.Render(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}
	for _, r := range runners {
		tab, err := r.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Println(tab.String())
	}
}
