// papirun executes a workload on a simulated platform and reports
// hardware counter values plus timing — the utility §5 announces as
// under development ("a papirun utility that will allow users to
// execute a program and easily collect basic timing and hardware
// counter data").
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/papi"
	"repro/workload"
)

func main() {
	platform := flag.String("platform", papi.PlatformLinuxX86, "platform key")
	events := flag.String("events", "PAPI_TOT_CYC,PAPI_FP_OPS", "comma-separated preset or native event names")
	prog := flag.String("workload", "matmul", "workload: matmul|triad|chase|stencil|branchy|mixedprec|lu|gups|dot")
	n := flag.Int("n", 64, "workload size parameter")
	multiplex := flag.Bool("multiplex", false, "enable software multiplexing (low-level opt-in)")
	flag.Parse()

	if err := run(*platform, *events, *prog, *n, *multiplex); err != nil {
		fmt.Fprintln(os.Stderr, "papirun:", err)
		os.Exit(1)
	}
}

func buildWorkload(name string, n int) (workload.Program, error) {
	switch name {
	case "matmul":
		return workload.MatMul(workload.MatMulConfig{N: n}), nil
	case "triad":
		return workload.Triad(workload.TriadConfig{N: n, Reps: 8}), nil
	case "chase":
		return workload.PointerChase(workload.ChaseConfig{Nodes: n, Steps: n * 8}), nil
	case "stencil":
		return workload.Stencil(workload.StencilConfig{N: n, Sweeps: 4}), nil
	case "branchy":
		return workload.Branchy(workload.BranchyConfig{N: n * n}), nil
	case "mixedprec":
		return workload.MixedPrecision(workload.MixedPrecisionConfig{N: n * n}), nil
	case "lu":
		return workload.LU(workload.LUConfig{N: n}), nil
	case "gups":
		return workload.GUPS(workload.GUPSConfig{TableWords: n * n, Updates: n * n}), nil
	case "dot":
		return workload.Dot(workload.DotConfig{N: n * n}), nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

func run(platform, events, progName string, n int, multiplex bool) error {
	sys, err := papi.Init(papi.Options{Platform: platform})
	if err != nil {
		return err
	}
	th := sys.Main()
	prog, err := buildWorkload(progName, n)
	if err != nil {
		return err
	}

	es := th.NewEventSet()
	if multiplex {
		if err := es.SetMultiplex(0); err != nil {
			return err
		}
	}
	var evs []papi.Event
	for _, name := range strings.Split(events, ",") {
		name = strings.TrimSpace(name)
		ev, ok := papi.PresetByName(name)
		if !ok {
			ev, ok = sys.NativeByName(name)
		}
		if !ok {
			return fmt.Errorf("unknown event %q on %s", name, platform)
		}
		if err := es.Add(ev); err != nil {
			if papi.IsErr(err, papi.ECNFLCT) && !multiplex {
				return fmt.Errorf("adding %s: %w\n(more events than counters? re-run with -multiplex)", name, err)
			}
			return fmt.Errorf("adding %s: %w", name, err)
		}
		evs = append(evs, ev)
	}

	r0, v0 := th.RealUsec(), th.VirtUsec()
	if err := es.Start(); err != nil {
		return err
	}
	th.Run(prog)
	vals := make([]int64, len(evs))
	if err := es.Stop(vals); err != nil {
		return err
	}
	r1, v1 := th.RealUsec(), th.VirtUsec()

	fmt.Printf("papirun: %s on %s\n", prog.Name(), platform)
	fmt.Printf("%-16s %20s\n", "EVENT", "COUNT")
	for i, ev := range evs {
		fmt.Printf("%-16s %20d\n", sys.EventName(ev), vals[i])
	}
	fmt.Printf("%-16s %17d us\n", "real time", r1-r0)
	fmt.Printf("%-16s %17d us\n", "virtual time", v1-v0)
	if multiplex {
		fmt.Println("note: counts are multiplexed estimates; ensure the run is long enough to converge")
	}
	return nil
}
