// papirun executes a workload on a simulated platform and reports
// hardware counter values plus timing — the utility §5 announces as
// under development ("a papirun utility that will allow users to
// execute a program and easily collect basic timing and hardware
// counter data").
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/wire"
	"repro/papi"
	"repro/workload"
)

func main() {
	platform := flag.String("platform", papi.PlatformLinuxX86, "platform key")
	events := flag.String("events", "PAPI_TOT_CYC,PAPI_FP_OPS", "comma-separated preset or native event names")
	prog := flag.String("workload", "matmul", "workload: "+strings.Join(workload.Names(), "|"))
	n := flag.Int("n", 64, "workload size parameter")
	reps := flag.Int("reps", 1, "run the workload this many times; with -serve each repetition publishes a cumulative snapshot, so papid sees a live trajectory it can derive metrics over")
	multiplex := flag.Bool("multiplex", false, "enable software multiplexing (low-level opt-in)")
	serve := flag.String("serve", "", "also publish the counter snapshot(s) to a running papid at this address")
	serveTimeout := flag.Duration("serve-timeout", 5*time.Second, "per-request deadline when publishing to papid")
	serveBinary := flag.Bool("serve-binary", false, "negotiate the compact binary wire codec when publishing (falls back to JSON against older papid)")
	serveStats := flag.Bool("serve-stats", false, "after publishing, print papid's per-op latency quantiles (needs a protocol 3 server)")
	serveLabel := flag.String("serve-label", "papirun", "session label when publishing; label globs in wildcard SUBSCRIBE requests match it")
	flag.Parse()

	if *serveStats && *serve == "" {
		fmt.Fprintln(os.Stderr, "papirun: -serve-stats needs -serve")
		os.Exit(2)
	}
	if *reps < 1 {
		fmt.Fprintln(os.Stderr, "papirun: -reps must be >= 1")
		os.Exit(2)
	}
	if err := run(*platform, *events, *prog, *n, *reps, *multiplex, *serve, *serveLabel, *serveTimeout, *serveBinary, *serveStats); err != nil {
		fmt.Fprintln(os.Stderr, "papirun:", err)
		os.Exit(1)
	}
}

func run(platform, events, progName string, n, reps int, multiplex bool, serve, serveLabel string, serveTimeout time.Duration, serveBinary, serveStats bool) error {
	sys, err := papi.Init(papi.Options{Platform: platform})
	if err != nil {
		return err
	}
	th := sys.Main()
	prog, err := workload.ByName(progName, n)
	if err != nil {
		return err
	}

	es := th.NewEventSet()
	if multiplex {
		if err := es.SetMultiplex(0); err != nil {
			return err
		}
	}
	var evs []papi.Event
	var names []string
	for _, name := range strings.Split(events, ",") {
		name = strings.TrimSpace(name)
		ev, ok := papi.ResolveEvent(sys, name)
		if !ok {
			return fmt.Errorf("unknown event %q on %s", name, platform)
		}
		names = append(names, name)
		if err := es.Add(ev); err != nil {
			if papi.IsErr(err, papi.ECNFLCT) && !multiplex {
				return fmt.Errorf("adding %s: %w\n(more events than counters? re-run with -multiplex)", name, err)
			}
			return fmt.Errorf("adding %s: %w", name, err)
		}
		evs = append(evs, ev)
	}

	// Dial papid before the run so the session exists for the whole
	// trajectory: with -reps each repetition publishes its cumulative
	// counts, giving the server a stream of real deltas to derive over
	// instead of one opaque final total.
	var pub *publisher
	if serve != "" {
		var err error
		if pub, err = dialPublisher(serve, platform, serveLabel, serveTimeout, serveBinary); err != nil {
			return fmt.Errorf("publishing to papid at %s: %w", serve, err)
		}
		defer pub.close()
	}

	r0, v0 := th.RealUsec(), th.VirtUsec()
	if err := es.Start(); err != nil {
		return err
	}
	vals := make([]int64, len(evs))
	for rep := 0; rep < reps; rep++ {
		if rep > 0 {
			prog.Reset() // programs are one-shot iterators; rewind between reps
		}
		th.Run(prog)
		if pub != nil && rep < reps-1 {
			if err := es.Read(vals); err != nil {
				return err
			}
			if err := pub.publish(names, vals); err != nil {
				return fmt.Errorf("publishing to papid at %s: %w", serve, err)
			}
		}
	}
	if err := es.Stop(vals); err != nil {
		return err
	}
	r1, v1 := th.RealUsec(), th.VirtUsec()

	fmt.Printf("papirun: %s on %s", prog.Name(), platform)
	if reps > 1 {
		fmt.Printf(" x%d", reps)
	}
	fmt.Println()
	fmt.Printf("%-16s %20s\n", "EVENT", "COUNT")
	for i, ev := range evs {
		fmt.Printf("%-16s %20d\n", sys.EventName(ev), vals[i])
	}
	fmt.Printf("%-16s %17d us\n", "real time", r1-r0)
	fmt.Printf("%-16s %17d us\n", "virtual time", v1-v0)
	if multiplex {
		fmt.Println("note: counts are multiplexed estimates; ensure the run is long enough to converge")
	}
	if pub != nil {
		if err := pub.publish(names, vals); err != nil {
			return fmt.Errorf("publishing to papid at %s: %w", serve, err)
		}
		fmt.Printf("%d snapshot(s) published to papid session %d at %s\n",
			reps, pub.session, serve)
		if serveStats {
			if err := pub.stats(); err != nil {
				return err
			}
		}
		if err := pub.bye(); err != nil {
			return err
		}
	}
	return nil
}

// publisher posts counter snapshots into a fresh publish-only papid
// session, where subscribers (dashboards, other tools) can read them —
// the one-shot papirun feeding the long-running service. The
// reconnecting client retries unreachable dials with backoff and
// bounds every request, so a dead or wedged papid yields the
// documented one-line non-zero exit instead of a hang.
type publisher struct {
	cl      *server.ReconnClient
	session uint64
}

func dialPublisher(addr, platform, label string, timeout time.Duration, binary bool) (*publisher, error) {
	cl, err := server.DialReconn(addr, server.RetryConfig{
		Attempts: 3, Timeout: timeout, PreferBinary: binary,
	})
	if err != nil {
		return nil, err
	}
	created, err := cl.Do(wire.Request{Op: wire.OpCreate, Platform: platform,
		Workload: "none", Label: label})
	if err != nil {
		cl.Close()
		return nil, err
	}
	return &publisher{cl: cl, session: created.Session}, nil
}

func (p *publisher) publish(events []string, vals []int64) error {
	_, err := p.cl.Do(wire.Request{Op: wire.OpPublish, Session: p.session,
		Events: events, Values: vals})
	return err
}

func (p *publisher) stats() error {
	resp, err := p.cl.Do(wire.Request{Op: wire.OpStats})
	if err != nil {
		return err
	}
	if t := telemetry.FormatSummaryTable(resp.Hists, nil); t != "" {
		fmt.Printf("papid latency quantiles:\n%s", t)
	} else {
		fmt.Println("papid sent no latency histograms (protocol < 3 server)")
	}
	return nil
}

func (p *publisher) bye() error {
	_, err := p.cl.Do(wire.Request{Op: wire.OpBye})
	return err
}

func (p *publisher) close() error { return p.cl.Close() }
