package main

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
)

// TestServeUnreachable: -serve against a dead address must fail with a
// clear one-line error (main prints it and exits non-zero).
func TestServeUnreachable(t *testing.T) {
	// Bind-then-close yields a port that refuses connections.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	err = run("linux-x86", "PAPI_TOT_CYC", "dot", 8, false, addr, time.Second, false, false)
	if err == nil {
		t.Fatal("-serve against a dead papid succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, "publishing to papid") || !strings.Contains(msg, "unreachable") {
		t.Errorf("error %q does not name the publish failure", msg)
	}
	if strings.Contains(msg, "\n") {
		t.Errorf("error is not one line: %q", msg)
	}
}

// TestServeSilentServer: a papid that accepts the connection but
// never replies must trip the request deadline and fail with a
// one-line error — the regression test for the era when Client.Do had
// no timeout and a dead server hung papirun forever.
func TestServeSilentServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			defer nc.Close() // accept, then say nothing
		}
	}()

	start := time.Now()
	err = run("linux-x86", "PAPI_TOT_CYC", "dot", 8, false,
		ln.Addr().String(), 100*time.Millisecond, false, false)
	if err == nil {
		t.Fatal("-serve against a silent papid succeeded")
	}
	// One redial is allowed (the reconnecting client re-tries HELLO),
	// but the overall failure must arrive promptly, not hang.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("silent server took %v to fail; request deadline not applied", elapsed)
	}
	msg := err.Error()
	if !strings.Contains(msg, "publishing to papid") {
		t.Errorf("error %q does not name the publish failure", msg)
	}
	if strings.Contains(msg, "\n") {
		t.Errorf("error is not one line: %q", msg)
	}
}

// rejectingServer speaks just enough of the papid protocol to accept
// the handshake and session creation, then reject PUBLISH.
func rejectingServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				dec, enc := wire.NewDecoder(nc), wire.NewEncoder(nc)
				for {
					var req wire.Request
					if dec.Decode(&req) != nil {
						return
					}
					resp := wire.Response{Op: req.Op, OK: true, Session: 1,
						Protocol: wire.ProtocolVersion}
					if req.Op == wire.OpPublish {
						resp = wire.Response{Op: req.Op, OK: false,
							Error: "publish rejected by policy"}
					}
					if enc.Encode(&resp) != nil {
						return
					}
				}
			}(nc)
		}
	}()
	return ln.Addr().String()
}

// TestServeRejectedPublish: a papid that refuses the PUBLISH must
// surface the server's reason in a one-line error.
func TestServeRejectedPublish(t *testing.T) {
	addr := rejectingServer(t)
	err := run("linux-x86", "PAPI_TOT_CYC", "dot", 8, false, addr, time.Second, false, false)
	if err == nil {
		t.Fatal("rejected PUBLISH reported success")
	}
	msg := err.Error()
	if !strings.Contains(msg, "publish rejected by policy") {
		t.Errorf("error %q does not carry the server's reason", msg)
	}
	if strings.Contains(msg, "\n") {
		t.Errorf("error is not one line: %q", msg)
	}
}

// TestServePublishes: the happy path against a real papid lands the
// final snapshot in a queryable session.
func TestServePublishes(t *testing.T) {
	srv := server.New(server.Config{TickInterval: time.Hour})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	if err := run("aix-power3", "PAPI_FP_OPS,PAPI_TOT_CYC", "dot", 8, false, addr.String(), 10*time.Second, true, true); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.TSDB.Samples != 2 {
		t.Errorf("published snapshot recorded %d tsdb samples, want 2", st.TSDB.Samples)
	}
	// The published values are queryable history.
	cl, err := server.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Do(wire.Request{Op: wire.OpQuery, Session: 1,
		From: 0, To: 1<<63 - 1, Step: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Series) != 2 || resp.Series[0].Buckets[0].Count != 1 {
		t.Errorf("QUERY after papirun -serve: %+v", resp.Series)
	}
}
