package main

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
)

// TestServeUnreachable: -serve against a dead address must fail with a
// clear one-line error (main prints it and exits non-zero).
func TestServeUnreachable(t *testing.T) {
	// Bind-then-close yields a port that refuses connections.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	err = run("linux-x86", "PAPI_TOT_CYC", "dot", 8, 1, false, addr, "papirun", time.Second, false, false)
	if err == nil {
		t.Fatal("-serve against a dead papid succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, "publishing to papid") || !strings.Contains(msg, "unreachable") {
		t.Errorf("error %q does not name the publish failure", msg)
	}
	if strings.Contains(msg, "\n") {
		t.Errorf("error is not one line: %q", msg)
	}
}

// TestServeSilentServer: a papid that accepts the connection but
// never replies must trip the request deadline and fail with a
// one-line error — the regression test for the era when Client.Do had
// no timeout and a dead server hung papirun forever.
func TestServeSilentServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			defer nc.Close() // accept, then say nothing
		}
	}()

	start := time.Now()
	err = run("linux-x86", "PAPI_TOT_CYC", "dot", 8, 1, false,
		ln.Addr().String(), "papirun", 100*time.Millisecond, false, false)
	if err == nil {
		t.Fatal("-serve against a silent papid succeeded")
	}
	// One redial is allowed (the reconnecting client re-tries HELLO),
	// but the overall failure must arrive promptly, not hang.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("silent server took %v to fail; request deadline not applied", elapsed)
	}
	msg := err.Error()
	if !strings.Contains(msg, "publishing to papid") {
		t.Errorf("error %q does not name the publish failure", msg)
	}
	if strings.Contains(msg, "\n") {
		t.Errorf("error is not one line: %q", msg)
	}
}

// rejectingServer speaks just enough of the papid protocol to accept
// the handshake and session creation, then reject PUBLISH.
func rejectingServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				dec, enc := wire.NewDecoder(nc), wire.NewEncoder(nc)
				for {
					var req wire.Request
					if dec.Decode(&req) != nil {
						return
					}
					resp := wire.Response{Op: req.Op, OK: true, Session: 1,
						Protocol: wire.ProtocolVersion}
					if req.Op == wire.OpPublish {
						resp = wire.Response{Op: req.Op, OK: false,
							Error: "publish rejected by policy"}
					}
					if enc.Encode(&resp) != nil {
						return
					}
				}
			}(nc)
		}
	}()
	return ln.Addr().String()
}

// TestServeRejectedPublish: a papid that refuses the PUBLISH must
// surface the server's reason in a one-line error.
func TestServeRejectedPublish(t *testing.T) {
	addr := rejectingServer(t)
	err := run("linux-x86", "PAPI_TOT_CYC", "dot", 8, 1, false, addr, "papirun", time.Second, false, false)
	if err == nil {
		t.Fatal("rejected PUBLISH reported success")
	}
	msg := err.Error()
	if !strings.Contains(msg, "publish rejected by policy") {
		t.Errorf("error %q does not carry the server's reason", msg)
	}
	if strings.Contains(msg, "\n") {
		t.Errorf("error is not one line: %q", msg)
	}
}

// TestServePublishes: the happy path against a real papid lands the
// final snapshot in a queryable session.
func TestServePublishes(t *testing.T) {
	srv := server.New(server.Config{TickInterval: time.Hour})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	if err := run("aix-power3", "PAPI_FP_OPS,PAPI_TOT_CYC", "dot", 8, 1, false, addr.String(), "papirun", 10*time.Second, true, true); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.TSDB.Samples != 2 {
		t.Errorf("published snapshot recorded %d tsdb samples, want 2", st.TSDB.Samples)
	}
	// The published values are queryable history.
	cl, err := server.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Do(wire.Request{Op: wire.OpQuery, Session: 1,
		From: 0, To: 1<<63 - 1, Step: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Series) != 2 || resp.Series[0].Buckets[0].Count != 1 {
		t.Errorf("QUERY after papirun -serve: %+v", resp.Series)
	}
}

// TestServeTrajectoryDerives: -reps publishes one cumulative snapshot
// per repetition, which gives papid real deltas — enough for a derived
// QUERY to answer in IPC instead of instruction counts. This is the
// end-to-end demo flow: papid -groups ipc, papirun -serve -reps,
// derived history out the other side.
func TestServeTrajectoryDerives(t *testing.T) {
	srv := server.New(server.Config{TickInterval: time.Hour, Groups: []string{"ipc"}})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	const reps = 5
	if err := run("aix-power3", "PAPI_TOT_INS,PAPI_TOT_CYC", "dot", 8, reps, false,
		addr.String(), "papirun", 10*time.Second, false, false); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if want := uint64(2 * reps); st.TSDB.Samples != want {
		t.Errorf("trajectory recorded %d tsdb samples, want %d", st.TSDB.Samples, want)
	}

	cl, err := server.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Hello(); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Do(wire.Request{Op: wire.OpQuery, Session: 1,
		From: 0, To: 1<<63 - 1, Step: 0, Derive: []string{"ipc"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Derived) != 2 {
		t.Fatalf("derived QUERY returned %d series, want 2 (ipc, mips): %+v",
			len(resp.Derived), resp.Derived)
	}
	for _, d := range resp.Derived {
		// reps cumulative snapshots yield up to reps-1 delta points;
		// loopback round-trips make the publish timestamps distinct, but
		// only the count floor is load-bearing here.
		if len(d.Points) == 0 || len(d.Points) > reps-1 {
			t.Errorf("%s: %d points, want 1..%d", d.Metric, len(d.Points), reps-1)
		}
		for _, p := range d.Points {
			if p.Value <= 0 || p.Value > 1e12 {
				t.Errorf("%s @%d = %v, want positive and finite", d.Metric, p.Start, p.Value)
			}
		}
	}
}
