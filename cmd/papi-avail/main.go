// papi-avail lists the preset events and how each simulated platform
// realizes them — the reproduction of the papi_avail utility. With
// -native it also dumps the platform's native event table, the raw
// material of the substrate's preset mappings. With -groups it instead
// lists the derived-metric group library (internal/derive): each
// group's formulas, the preset events they need, and on which
// substrates those events are all available.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/derive"
	"repro/papi"
)

func main() {
	platform := flag.String("platform", "", "platform key (default: all platforms)")
	native := flag.Bool("native", false, "also list native events")
	groups := flag.Bool("groups", false, "list derived-metric performance groups instead of preset events")
	flag.Parse()

	platforms := papi.Platforms()
	if *platform != "" {
		platforms = []string{*platform}
	}
	if *groups {
		if err := showGroups(platforms); err != nil {
			fmt.Fprintln(os.Stderr, "papi-avail:", err)
			os.Exit(1)
		}
		return
	}
	for _, p := range platforms {
		if err := show(p, *native); err != nil {
			fmt.Fprintln(os.Stderr, "papi-avail:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

// showGroups prints the derive group library with per-substrate
// availability: a group is available where every event it references is
// an available preset; where the events outnumber the hardware
// counters, counting them needs software multiplexing and the column
// says so.
func showGroups(platforms []string) error {
	type sub struct {
		name     string
		avail    map[string]bool
		counters int
	}
	subs := make([]sub, 0, len(platforms))
	for _, p := range platforms {
		sys, err := papi.Init(papi.Options{Platform: p})
		if err != nil {
			return err
		}
		avail := make(map[string]bool)
		for _, pa := range sys.AvailPresets() {
			if pa.Avail {
				avail[pa.Name] = true
			}
		}
		subs = append(subs, sub{name: p, avail: avail, counters: sys.Info().NumCounters})
	}

	reg := derive.NewRegistry()
	fmt.Println("Derived-metric groups (papid -groups, SUBSCRIBE/QUERY derive):")
	for _, name := range reg.Names() {
		g := reg.Lookup(name)
		fmt.Printf("\n%-8s %s\n", g.Name, g.Desc)
		fmt.Printf("  events: %s\n", strings.Join(g.Events(), " "))
		for _, m := range g.Metrics {
			fmt.Printf("  %-20s = %-42s [%s]\n", m.Name, m.Formula, m.Unit)
		}
		marks := make([]string, 0, len(subs))
		for _, s := range subs {
			mark := "yes"
			for _, ev := range g.Events() {
				if !s.avail[ev] {
					mark = "no"
					break
				}
			}
			if mark == "yes" && len(g.Events()) > s.counters {
				mark = "multiplex" // more events than counters
			}
			marks = append(marks, fmt.Sprintf("%s=%s", s.name, mark))
		}
		fmt.Printf("  avail : %s\n", strings.Join(marks, " "))
	}
	return nil
}

func show(platform string, native bool) error {
	sys, err := papi.Init(papi.Options{Platform: platform})
	if err != nil {
		return err
	}
	info := sys.Info()
	fmt.Printf("Platform : %s (%s)\n", info.Platform, info.Model)
	fmt.Printf("Clock    : %d MHz\n", info.ClockMHz)
	fmt.Printf("Counters : %d x %d-bit", info.NumCounters, info.CounterWidth)
	if info.HasGroups {
		fmt.Printf(" (group-constrained)")
	}
	if info.HWSampling {
		fmt.Printf(" (hardware sampling)")
	}
	fmt.Println()
	fmt.Printf("%-14s %-5s %-18s %-34s %s\n", "PRESET", "AVAIL", "DERIVED", "NATIVE EVENTS", "NOTE")
	avail := 0
	for _, pa := range sys.AvailPresets() {
		mark := "no"
		derived, natives := "-", "-"
		if pa.Avail {
			avail++
			mark = "yes"
			derived = pa.Derived
			natives = join(pa.Natives)
		}
		fmt.Printf("%-14s %-5s %-18s %-34s %s\n", pa.Name, mark, derived, natives, pa.Note)
	}
	fmt.Printf("%d of %d presets available\n", avail, len(sys.AvailPresets()))
	if native {
		fmt.Printf("\n%-24s %-10s %s\n", "NATIVE EVENT", "COUNTERS", "DESCRIPTION")
		for _, ev := range sys.Arch().Events {
			fmt.Printf("%-24s %#010b %s\n", ev.Name, ev.CounterMask, ev.Desc)
		}
	}
	return nil
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "+"
		}
		out += s
	}
	return out
}
