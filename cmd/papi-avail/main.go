// papi-avail lists the preset events and how each simulated platform
// realizes them — the reproduction of the papi_avail utility. With
// -native it also dumps the platform's native event table, the raw
// material of the substrate's preset mappings.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/papi"
)

func main() {
	platform := flag.String("platform", "", "platform key (default: all platforms)")
	native := flag.Bool("native", false, "also list native events")
	flag.Parse()

	platforms := papi.Platforms()
	if *platform != "" {
		platforms = []string{*platform}
	}
	for _, p := range platforms {
		if err := show(p, *native); err != nil {
			fmt.Fprintln(os.Stderr, "papi-avail:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func show(platform string, native bool) error {
	sys, err := papi.Init(papi.Options{Platform: platform})
	if err != nil {
		return err
	}
	info := sys.Info()
	fmt.Printf("Platform : %s (%s)\n", info.Platform, info.Model)
	fmt.Printf("Clock    : %d MHz\n", info.ClockMHz)
	fmt.Printf("Counters : %d x %d-bit", info.NumCounters, info.CounterWidth)
	if info.HasGroups {
		fmt.Printf(" (group-constrained)")
	}
	if info.HWSampling {
		fmt.Printf(" (hardware sampling)")
	}
	fmt.Println()
	fmt.Printf("%-14s %-5s %-18s %-34s %s\n", "PRESET", "AVAIL", "DERIVED", "NATIVE EVENTS", "NOTE")
	avail := 0
	for _, pa := range sys.AvailPresets() {
		mark := "no"
		derived, natives := "-", "-"
		if pa.Avail {
			avail++
			mark = "yes"
			derived = pa.Derived
			natives = join(pa.Natives)
		}
		fmt.Printf("%-14s %-5s %-18s %-34s %s\n", pa.Name, mark, derived, natives, pa.Note)
	}
	fmt.Printf("%d of %d presets available\n", avail, len(sys.AvailPresets()))
	if native {
		fmt.Printf("\n%-24s %-10s %s\n", "NATIVE EVENT", "COUNTERS", "DESCRIPTION")
		for _, ev := range sys.Arch().Events {
			fmt.Printf("%-24s %#010b %s\n", ev.Name, ev.CounterMask, ev.Desc)
		}
	}
	return nil
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "+"
		}
		out += s
	}
	return out
}
