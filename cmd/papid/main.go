// papid is the counter-collection daemon: a long-running service that
// accepts many concurrent TCP clients speaking the wire protocol of
// internal/wire — JSON lines by default, with v3 clients able to
// negotiate the compact binary codec at HELLO — each session owning an
// EventSet on a simulated machine of any supported architecture. It is the serving-scale
// successor to the one-process perfometer pipeline of §2 — many tools,
// one shared monitoring surface.
//
//	papid -addr 127.0.0.1:6117 &
//	printf '%s\n' '{"op":"HELLO"}' | nc 127.0.0.1 6117
//
// Every tick's snapshot is also recorded in an embedded time-series
// store (internal/tsdb), bounded by -tsdb-mem bytes and -retention
// age, and served back through the QUERY op as downsampled
// min/max/sum/count windows.
//
// With -groups papid evaluates derived-metric performance groups
// (internal/derive) on every tick of each session whose event set
// covers them, streaming the values to protocol >= 3 subscribers as
// DERIVED frames; -derive-rules arms threshold alerts on the derived
// values:
//
//	papid -groups ipc,l2miss -derive-rules 'ipc<0.5:3'
//
// With -http papid additionally serves an admin endpoint: Prometheus
// text at /metrics, a JSON status dump at /statusz, and the standard
// pprof profiles under /debug/pprof/:
//
//	papid -addr 127.0.0.1:6117 -http 127.0.0.1:6118 &
//	curl -s 127.0.0.1:6118/metrics | grep papid_op_latency
//
// A pipeline flight recorder (-trace-sample, on by default at 1/64)
// traces sampled ticks, requests and WAL batches with per-stage spans,
// always retains slow or errored units, and serves the ring on the
// admin endpoint: /tracez lists retained traces slowest-first and
// /debug/trace?id=<hex>&format=chrome exports one as Chrome
// trace-event JSON loadable in Perfetto. -trace-sample 0 turns the
// recorder off entirely.
//
// SIGINT/SIGTERM trigger a graceful drain: running sessions fold their
// final counts, subscribers are detached, and the process exits after
// reporting its lifetime stats and per-op latency quantiles.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/papi"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6117", "listen address")
	platform := flag.String("platform", papi.PlatformLinuxX86, "default platform for sessions that do not name one")
	shards := flag.Int("shards", 16, "session-registry shard count")
	cacheSize := flag.Int("cache", 256, "allocation-cache entries")
	tick := flag.Duration("tick", 50*time.Millisecond, "snapshot fan-out interval")
	queue := flag.Int("queue", 32, "per-subscriber queue depth (oldest snapshot dropped when full)")
	tickWorkers := flag.Int("tick-workers", 0, "parallel tick sweep width; 0 picks min(GOMAXPROCS, shards), 1 runs the serial pipeline")
	keyframeEvery := flag.Int("keyframe-every", 10, "full keyframe cadence for delta-mode subscribers, in fan-outs per view")
	readIdle := flag.Duration("read-idle", 2*time.Minute, "evict a connection idle this long with no subscription (0 disables)")
	writeTimeout := flag.Duration("write-timeout", 10*time.Second, "per-frame write deadline; a trip evicts the connection (0 disables)")
	writeQueue := flag.Int("write-queue", 64, "per-connection outbound frame queue depth (snapshots dropped oldest-first when full)")
	retention := flag.Duration("retention", 15*time.Minute, "history age limit for QUERY (0 keeps until -tsdb-mem evicts)")
	tsdbMem := flag.Int64("tsdb-mem", 8<<20, "history store memory budget in bytes (0 disables QUERY history)")
	dataDir := flag.String("data-dir", "", "directory for durable history (WAL + sealed segments); empty keeps history RAM-only")
	fsync := flag.String("fsync", "interval", "WAL fsync policy: always, interval or off")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "period of the interval fsync policy")
	walSegBytes := flag.Int64("wal-segment-bytes", 4<<20, "WAL/segment file rotation size in bytes")
	walDiskBytes := flag.Int64("wal-disk-bytes", 64<<20, "raw segment byte budget before compaction to rollup resolution (0 disables)")
	walRetain := flag.Duration("wal-retain", 0, "delete segments wholly older than this (0 keeps until compaction)")
	walCompactAfter := flag.Duration("wal-compact-after", 0, "compact raw segments older than this into rollups (0 = budget-driven only)")
	groups := flag.String("groups", "", "comma-separated derived-metric groups evaluated on every session whose events cover them (see papi-avail -groups)")
	deriveRules := flag.String("derive-rules", "", "comma-separated threshold rules metric<bound[:N] or metric>bound[:N] firing a warning after N consecutive breaches")
	httpAddr := flag.String("http", "", "admin listen address serving /metrics, /statusz, /tracez and /debug/pprof/ (empty disables)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	slowOp := flag.Duration("slow-op", 250*time.Millisecond, "warn when handling one request takes this long (0 disables)")
	traceSample := flag.Int("trace-sample", 64, "flight recorder: head-sample 1 in N ticks/requests into /tracez with detailed stage spans (0 disables tracing)")
	traceSlow := flag.Duration("trace-slow", 0, "flight recorder: tail-retain any trace at least this slow regardless of sampling (0 inherits -slow-op, negative disables latency retention)")
	traceRing := flag.Int("trace-ring", 64, "flight recorder: retained-trace ring size")
	quiet := flag.Bool("quiet", false, "log warnings only (suppress per-session and per-connection lines)")
	flag.Parse()

	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelWarn
	}
	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	case "text":
		handler = slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	default:
		fmt.Fprintf(os.Stderr, "papid: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)
	// The Config zero values mean "default", so the flag's explicit
	// zeros map to the negative "disabled" sentinels.
	mem, age := *tsdbMem, *retention
	if mem == 0 {
		mem = -1
	}
	if age == 0 {
		age = -1
	}
	idle, wt := *readIdle, *writeTimeout
	if idle == 0 {
		idle = -1
	}
	if wt == 0 {
		wt = -1
	}
	slow := *slowOp
	if slow == 0 {
		slow = -1
	}
	walDisk := *walDiskBytes
	if walDisk == 0 {
		walDisk = -1
	}
	srv := server.New(server.Config{
		DefaultPlatform: *platform,
		Groups:          splitList(*groups),
		DeriveRules:     splitList(*deriveRules),
		Shards:          *shards,
		CacheSize:       *cacheSize,
		TickInterval:    *tick,
		TickWorkers:     *tickWorkers,
		QueueDepth:      *queue,
		KeyframeEvery:   *keyframeEvery,
		ReadIdleTimeout: idle,
		WriteTimeout:    wt,
		WriteQueueDepth: *writeQueue,
		TSDBMaxBytes:    mem,
		TSDBRetention:   age,
		DataDir:         *dataDir,
		Fsync:           *fsync,
		FsyncInterval:   *fsyncInterval,
		WALSegmentBytes: *walSegBytes,
		WALDiskBytes:    walDisk,
		WALRetainAge:    *walRetain,
		WALCompactAfter: *walCompactAfter,
		SlowOp:          slow,
		TraceSample:     *traceSample,
		TraceSlow:       *traceSlow,
		TraceRing:       *traceRing,
		Logger:          logger,
	})
	if _, err := srv.Listen(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "papid:", err)
		os.Exit(1)
	}
	if *httpAddr != "" {
		aaddr, err := srv.ListenAdmin(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "papid: admin:", err)
			os.Exit(1)
		}
		logger.Info("papid: admin endpoint up", "addr", aaddr.String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "papid: shutdown:", err)
		os.Exit(1)
	}
	st := srv.Stats()
	log.Printf("papid: %d ticks, %d snapshots sent (%d dropped), alloc cache %.0f%% hits",
		st.Ticks, st.SnapshotsSent, st.SnapshotsDropped, 100*st.CacheHitRate())
	log.Printf("papid: %d evictions (%d deadline trips), %d resyncs, %d write drops",
		st.Evictions, st.DeadlineTrips, st.Resyncs, st.WriteDrops)
	log.Printf("papid: %d keyframes, %d deltas sent (%d dropped), %d derived sent (%d dropped), %d encode failures",
		st.Keyframes, st.DeltasSent, st.DeltasDropped, st.DerivedSent, st.DerivedDropped, st.EncodeFailures)
	log.Printf("papid: wire json %d frames / %d bytes, binary %d frames / %d bytes",
		st.FramesSentJSON, st.BytesSentJSON, st.FramesSentBinary, st.BytesSentBinary)
	log.Printf("papid: tsdb %d bytes across %d series, %d samples, %d evictions",
		st.TSDB.Bytes, st.TSDB.Series, st.TSDB.Samples, st.TSDB.Evictions)
	if st.Durable {
		// The WAL closed inside Shutdown, before this report: the active
		// segment is sealed and the clean marker written by now.
		log.Printf("papid: wal %d rows, %d sealed blocks, %d fsyncs, %d segments, %d bytes on disk, %d compactions",
			st.WAL.Rows, st.WAL.SealedBlocks, st.WAL.Fsyncs, st.WAL.Segments,
			st.WAL.DiskBytes, st.WAL.Compactions)
	}
	if table := telemetry.FormatSummaryTable(srv.Telemetry().Summaries(), nil); table != "" {
		log.Printf("papid: latency quantiles:\n%s", strings.TrimRight(table, "\n"))
	}
}

// splitList splits a comma-separated flag value, trimming blanks, so
// `-groups "ipc, l2miss"` and `-groups ""` both do the obvious thing.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
