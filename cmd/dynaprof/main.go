// dynaprof drives the dynamic-instrumentation tool against a bundled
// demo executable: list its internal structure, select instrumentation
// points, insert a PAPI or wallclock probe, run, and print per-function
// inclusive/exclusive metrics — the workflow of §2.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/papi"
	"repro/tools/dynaprof"
	"repro/workload"
)

func main() {
	platform := flag.String("platform", papi.PlatformAIXPower3, "platform key")
	list := flag.Bool("list", false, "list the executable's functions and exit")
	pattern := flag.String("instrument", "*", "function name pattern to instrument")
	probeSpec := flag.String("probe", "papi:PAPI_FP_INS", `probe: "papi:<EVENT>" or "wallclock"`)
	flag.Parse()

	if err := run(*platform, *list, *pattern, *probeSpec); err != nil {
		fmt.Fprintln(os.Stderr, "dynaprof:", err)
		os.Exit(1)
	}
}

// demoExecutable is the application dynaprof attaches to: an init
// phase, a triple-nested solver and an output phase.
func demoExecutable() (*dynaprof.Executable, error) {
	return dynaprof.NewExecutable("demo", "main",
		&dynaprof.Func{Name: "main", Body: []dynaprof.Stmt{
			dynaprof.CallStmt{Callee: "init_arrays"},
			dynaprof.LoopStmt{Count: 4, Body: []dynaprof.Stmt{
				dynaprof.CallStmt{Callee: "solve_step"},
			}},
			dynaprof.CallStmt{Callee: "write_output"},
		}},
		&dynaprof.Func{Name: "init_arrays", Body: []dynaprof.Stmt{
			dynaprof.RunStmt{Prog: workload.Triad(workload.TriadConfig{N: 8192})},
		}},
		&dynaprof.Func{Name: "solve_step", Body: []dynaprof.Stmt{
			dynaprof.CallStmt{Callee: "smooth"},
			dynaprof.CallStmt{Callee: "residual"},
		}},
		&dynaprof.Func{Name: "smooth", Body: []dynaprof.Stmt{
			dynaprof.RunStmt{Prog: workload.Stencil(workload.StencilConfig{N: 96})},
		}},
		&dynaprof.Func{Name: "residual", Body: []dynaprof.Stmt{
			dynaprof.RunStmt{Prog: workload.MatMul(workload.MatMulConfig{N: 40})},
		}},
		&dynaprof.Func{Name: "write_output", Body: []dynaprof.Stmt{
			dynaprof.RunStmt{Prog: workload.Triad(workload.TriadConfig{N: 4096})},
		}},
	)
}

func run(platform string, list bool, pattern, probeSpec string) error {
	exe, err := demoExecutable()
	if err != nil {
		return err
	}
	prof := dynaprof.Attach(exe)
	if list {
		fmt.Println("functions in", exe.Name+":")
		for _, fn := range prof.List() {
			fmt.Println(" ", fn)
		}
		return nil
	}

	sys, err := papi.Init(papi.Options{Platform: platform})
	if err != nil {
		return err
	}
	th := sys.Main()

	var report func() string
	switch {
	case probeSpec == "wallclock":
		probe := dynaprof.NewWallclockProbe()
		if err := prof.Instrument(pattern, probe); err != nil {
			return err
		}
		report = probe.Report
	case strings.HasPrefix(probeSpec, "papi:"):
		name := strings.TrimPrefix(probeSpec, "papi:")
		ev, ok := papi.PresetByName(name)
		if !ok {
			ev, ok = sys.NativeByName(name)
		}
		if !ok {
			return fmt.Errorf("unknown event %q", name)
		}
		probe, err := dynaprof.NewPAPIProbe(th, ev)
		if err != nil {
			return err
		}
		defer probe.Close()
		if err := prof.Instrument(pattern, probe); err != nil {
			return err
		}
		report = probe.Report
	default:
		return fmt.Errorf("unknown probe %q", probeSpec)
	}

	if err := prof.Run(th); err != nil {
		return err
	}
	fmt.Printf("dynaprof: %s on %s, pattern %q\n\n", probeSpec, platform, pattern)
	fmt.Print(report())
	return nil
}
