// papiprof is the end-user face of the §3 profiler stack: it runs a
// workload several times, once per requested metric, collects vprof
// source-line profiles via PAPI_profil, combines them in an
// HPCView-style database with derived ratio columns, and prints the
// hottest lines.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/papi"
	"repro/tools/hpcview"
	"repro/tools/vprof"
	"repro/workload"
)

func main() {
	platform := flag.String("platform", papi.PlatformCrayT3E, "platform key")
	metrics := flag.String("metrics", "PAPI_FP_INS,PAPI_L1_DCM", "comma-separated metrics, one profile each")
	derived := flag.String("derived", "", `derived column, e.g. "MISSRATE=PAPI_L1_DCM/PAPI_L1_DCA"`)
	threshold := flag.Uint64("threshold", 512, "profil overflow threshold")
	prog := flag.String("workload", "stencil", "workload: matmul|triad|stencil|mixedprec|dot")
	n := flag.Int("n", 96, "workload size")
	top := flag.Int("top", 12, "lines to print")
	flag.Parse()

	if err := run(*platform, *metrics, *derived, *threshold, *prog, *n, *top); err != nil {
		fmt.Fprintln(os.Stderr, "papiprof:", err)
		os.Exit(1)
	}
}

func buildProg(name string, n int) (workload.Program, error) {
	switch name {
	case "matmul":
		return workload.MatMul(workload.MatMulConfig{N: n}), nil
	case "triad":
		return workload.Triad(workload.TriadConfig{N: n * n}), nil
	case "stencil":
		return workload.Stencil(workload.StencilConfig{N: n, Sweeps: 4}), nil
	case "mixedprec":
		return workload.MixedPrecision(workload.MixedPrecisionConfig{N: n * n}), nil
	case "dot":
		return workload.Dot(workload.DotConfig{N: n * n}), nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

func run(platform, metrics, derived string, threshold uint64, progName string, n, top int) error {
	prog, err := buildProg(progName, n)
	if err != nil {
		return err
	}
	// The "debug info": one synthetic source line per instruction.
	newMap := func() (*vprof.SourceMap, error) {
		var sm vprof.SourceMap
		line := 1
		for _, r := range prog.Regions() {
			if err := sm.Add(r, progName+".c", line, 1); err != nil {
				return nil, err
			}
			line += 100
		}
		return &sm, nil
	}

	db := hpcview.New()
	for _, name := range strings.Split(metrics, ",") {
		name = strings.TrimSpace(name)
		ev, ok := papi.PresetByName(name)
		if !ok {
			return fmt.Errorf("unknown preset %q", name)
		}
		sys, err := papi.Init(papi.Options{Platform: platform})
		if err != nil {
			return err
		}
		sm, err := newMap()
		if err != nil {
			return err
		}
		p, err := vprof.New(sys.Main(), ev, threshold, sm)
		if err != nil {
			return err
		}
		prog.Reset()
		if err := p.Run(prog); err != nil {
			return err
		}
		if err := db.AddProfile(name, float64(threshold), p.Lines()); err != nil {
			return err
		}
	}
	sortBy := db.Metrics()[0]
	if derived != "" {
		name, expr, ok := strings.Cut(derived, "=")
		if !ok {
			return fmt.Errorf("derived must look like NAME=METRIC_A/METRIC_B")
		}
		numer, denom, ok := strings.Cut(expr, "/")
		if !ok {
			return fmt.Errorf("derived must look like NAME=METRIC_A/METRIC_B")
		}
		if err := db.AddDerived(strings.TrimSpace(name), strings.TrimSpace(numer), strings.TrimSpace(denom)); err != nil {
			return err
		}
		sortBy = strings.TrimSpace(name)
	}
	rep, err := db.Report(sortBy, top)
	if err != nil {
		return err
	}
	fmt.Printf("papiprof: %s on %s, %d-event profiles (threshold %d)\n\n",
		prog.Name(), platform, len(db.Metrics()), threshold)
	fmt.Print(rep)
	return nil
}
