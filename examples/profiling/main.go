// Profiling: SVR4-compatible statistical profiling via PAPI_profil,
// and the §4 attribution story — overflow-interrupt PCs skid past the
// true instruction on out-of-order CPUs, while hardware sampling
// (ProfileMe/EARs) attributes events exactly.
package main

import (
	"fmt"
	"log"

	"repro/papi"
	"repro/workload"
)

func profile(platform string, samplingPeriod int) error {
	sys, err := papi.Init(papi.Options{Platform: platform, SamplingPeriod: samplingPeriod})
	if err != nil {
		return err
	}
	th := sys.Main()
	prog := workload.HotColdLoop(workload.HotColdConfig{Iters: 40_000, Hot: 4, Cold: 16})
	regions := prog.Regions()

	// One histogram bucket per instruction across the whole kernel.
	hist, err := papi.NewProfileCovering(regions[0].Lo, regions[len(regions)-1].Hi, 4)
	if err != nil {
		return err
	}
	es := th.NewEventSet()
	if err := es.Add(papi.FP_INS); err != nil {
		return err
	}
	// Every 499 FP instructions (co-prime with the loop shape, so hits
	// spread over the kernel), hash the reported PC into the buckets.
	if err := es.Profil(hist, papi.FP_INS, 499); err != nil {
		return err
	}
	if err := es.Start(); err != nil {
		return err
	}
	th.Run(prog)
	if err := es.Stop(nil); err != nil {
		return err
	}

	mech := "overflow interrupts"
	if samplingPeriod > 0 {
		mech = "hardware sampling"
	}
	fmt.Printf("\n%s (%s): %d hits\n", platform, mech, hist.Total())
	var hotHits uint64
	for i, h := range hist.Buckets {
		lo, _ := hist.AddrRange(i)
		marker := " "
		for _, r := range regions {
			if r.Contains(lo) && r.Name == "hot_fp" {
				marker = "*" // the instructions that actually caused the events
				hotHits += h
			}
		}
		bar := ""
		for j := uint64(0); j < h*40/(hist.Total()+1); j++ {
			bar += "#"
		}
		fmt.Printf("  %#06x %s %6d %s\n", lo, marker, h, bar)
	}
	fmt.Printf("  attribution: %.1f%% of hits on the true FP instructions (*)\n",
		float64(hotHits)/float64(hist.Total())*100)
	return nil
}

func main() {
	// In-order machine: interrupts are precise.
	if err := profile(papi.PlatformCrayT3E, 0); err != nil {
		log.Fatal(err)
	}
	// Deep out-of-order machine: the PC skids into the cold region.
	if err := profile(papi.PlatformLinuxX86, 0); err != nil {
		log.Fatal(err)
	}
	// ProfileMe-style sampling: exact again, at far lower overhead.
	if err := profile(papi.PlatformTru64Alpha, 256); err != nil {
		log.Fatal(err)
	}
}
