// Dynaprof: attach to an executable, browse its structure, insert PAPI
// and wallclock probes at function boundaries without source changes,
// and read back per-function inclusive/exclusive metrics (§2).
package main

import (
	"fmt"
	"log"

	"repro/papi"
	"repro/tools/dynaprof"
	"repro/workload"
)

func main() {
	// The "application": an iterative solver with a setup phase.
	exe, err := dynaprof.NewExecutable("solver", "main",
		&dynaprof.Func{Name: "main", Body: []dynaprof.Stmt{
			dynaprof.CallStmt{Callee: "setup"},
			dynaprof.LoopStmt{Count: 5, Body: []dynaprof.Stmt{
				dynaprof.CallStmt{Callee: "relax"},
				dynaprof.CallStmt{Callee: "norm"},
			}},
		}},
		&dynaprof.Func{Name: "setup", Body: []dynaprof.Stmt{
			dynaprof.RunStmt{Prog: workload.Triad(workload.TriadConfig{N: 16384})},
		}},
		&dynaprof.Func{Name: "relax", Body: []dynaprof.Stmt{
			dynaprof.RunStmt{Prog: workload.Stencil(workload.StencilConfig{N: 128})},
		}},
		&dynaprof.Func{Name: "norm", Body: []dynaprof.Stmt{
			dynaprof.RunStmt{Prog: workload.Triad(workload.TriadConfig{N: 2048})},
		}},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Attach and list the internal structure, as a user would before
	// choosing instrumentation points.
	prof := dynaprof.Attach(exe)
	fmt.Println("functions:", prof.List())

	sys, err := papi.Init(papi.Options{Platform: papi.PlatformAIXPower3})
	if err != nil {
		log.Fatal(err)
	}
	th := sys.Main()

	// Two probes on every function: hardware FP counts and wallclock.
	fp, err := dynaprof.NewPAPIProbe(th, papi.FP_OPS)
	if err != nil {
		log.Fatal(err)
	}
	defer fp.Close()
	wall := dynaprof.NewWallclockProbe()
	if err := prof.Instrument("*", fp); err != nil {
		log.Fatal(err)
	}
	if err := prof.Instrument("*", wall); err != nil {
		log.Fatal(err)
	}

	if err := prof.Run(th); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(fp.Report())
	fmt.Println()
	fmt.Print(wall.Report())
	fmt.Println("\nthe relax kernel dominates both FP work and wall time —")
	fmt.Println("the coarse answer dynaprof exists to give quickly")
}
