// Parallel: per-thread measurement of an SPMD program — PAPI's
// per-thread counter model plus the TAU-style toolkit's merged
// node-context-thread traces and cross-metric correlation (§3).
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/trace"
	"repro/papi"
	"repro/tools/tau"
	"repro/workload"
)

func main() {
	sys, err := papi.Init(papi.Options{Platform: papi.PlatformAIXPower3})
	if err != nil {
		log.Fatal(err)
	}

	// A TAU-style session: two hardware metrics beside wall time, with
	// tracing enabled. (Metric choice respects the POWER3 group
	// constraint: FP_OPS's natives and TOT_CYC share the FPU group.)
	prof, err := tau.New(sys, tau.Config{
		Metrics: []papi.Event{papi.FP_OPS, papi.TOT_CYC},
		Tracing: true,
		Node:    0,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Four simulated worker threads, each with private counters; the
	// SPMD work is deliberately imbalanced so the profile shows it.
	const workers = 4
	for w := 0; w < workers; w++ {
		var th *papi.Thread
		if w == 0 {
			th = sys.Main()
		} else {
			if th, err = sys.NewThread(); err != nil {
				log.Fatal(err)
			}
		}
		tp, err := prof.Thread(th)
		if err != nil {
			log.Fatal(err)
		}
		size := 24 + 8*w // imbalance: thread 3 does ~3.4x thread 0's flops
		must(tp.Start("worker"))
		must(tp.Start("compute"))
		th.Run(workload.MatMul(workload.MatMulConfig{N: size, UseFMA: true}))
		must(tp.Stop("compute"))
		must(tp.Start("exchange"))
		th.Run(workload.PointerChase(workload.ChaseConfig{Nodes: 4096, Steps: 40_000}))
		must(tp.Stop("exchange"))
		must(tp.Stop("worker"))
	}
	if err := prof.Close(); err != nil {
		log.Fatal(err)
	}

	// Per-thread profiles: the imbalance is visible in FP_OPS.
	fmt.Print(prof.Report())

	// Merged trace, validated and exported.
	merged := prof.MergedTrace()
	if err := trace.Validate(merged); err != nil {
		log.Fatal(err)
	}
	var vtf bytes.Buffer
	if err := prof.WriteTrace(&vtf, "vtf"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmerged trace: %d events from %d threads, %d bytes of VTF\n",
		len(merged), workers, vtf.Len())
	ivs, err := trace.Intervals(merged)
	if err != nil {
		log.Fatal(err)
	}
	var longest trace.Interval
	for _, iv := range ivs {
		if iv.Region == "compute" && iv.DurationUsec() > longest.DurationUsec() {
			longest = iv
		}
	}
	fmt.Printf("slowest compute phase: thread %d, %d us — the straggler a timeline view exposes\n",
		longest.Thread, longest.DurationUsec())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
