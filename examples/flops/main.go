// Flops: the perfometer workflow of Figure 2 as library code — stream
// a real-time FLOP-rate trace of a phased application to a frontend
// and render it, showing the memory-bound bottleneck as a dip.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/papi"
	"repro/tools/perfometer"
	"repro/workload"
)

func main() {
	sys, err := papi.Init(papi.Options{Platform: papi.PlatformLinuxIA64})
	if err != nil {
		log.Fatal(err)
	}
	th := sys.Main()

	// A program with a visible bottleneck: compute, gather, compute.
	prog := workload.NewConcat("phased",
		workload.MatMul(workload.MatMulConfig{N: 56, UseFMA: true}),
		workload.PointerChase(workload.ChaseConfig{Nodes: 1 << 14, Steps: 400_000}),
		workload.MatMul(workload.MatMulConfig{N: 56, UseFMA: true}),
	)

	backend := perfometer.NewBackend(th, papi.FP_OPS, 250_000)
	var wire bytes.Buffer
	if err := backend.Run(&wire, prog); err != nil {
		log.Fatal(err)
	}

	front := &perfometer.Frontend{}
	if err := front.Consume(&wire); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d samples, peak %.1f MFLOP/s\n", len(front.Points), front.MaxRate()/1e6)
	fmt.Println(front.Sparkline(72))
	fmt.Println("the flat-line middle is the pointer chase: almost no FP retirement")

	// Save the trace for off-line analysis, perfometer's second mode.
	var trace bytes.Buffer
	if err := front.SaveTrace(&trace); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d bytes of JSON lines ready for off-line analysis\n", trace.Len())
}
