// Tuning: the use case the paper's introduction leads with —
// "application performance analysis and tuning". A naive matrix
// multiply is measured with PAPI, the counters point at the L1 data
// cache, the loop is blocked, and the counters verify the fix: same
// FLOPs, a fraction of the misses, fewer cycles.
package main

import (
	"fmt"
	"log"

	"repro/papi"
	"repro/workload"
)

func measure(sys *papi.System, prog workload.Program) (vals []int64, usec uint64, err error) {
	th := sys.Main()
	es := th.NewEventSet()
	// 4 metrics on 2 counters: opt into multiplexing; the kernels run
	// long enough for the estimates to converge (§2's condition).
	if err := es.SetMultiplex(0); err != nil {
		return nil, 0, err
	}
	if err := es.AddAll(papi.TOT_CYC, papi.FP_OPS, papi.L1_DCM, papi.L1_DCA); err != nil {
		return nil, 0, err
	}
	t0 := th.VirtUsec()
	if err := es.Start(); err != nil {
		return nil, 0, err
	}
	prog.Reset()
	th.Run(prog)
	vals = make([]int64, 4)
	if err := es.Stop(vals); err != nil {
		return nil, 0, err
	}
	return vals, th.VirtUsec() - t0, nil
}

func main() {
	const n, block = 128, 16
	naive, blocked := workload.BlockedVsNaive(n, block, false)

	report := func(label string, prog workload.Program) []int64 {
		sys, err := papi.Init(papi.Options{Platform: papi.PlatformLinuxX86})
		if err != nil {
			log.Fatal(err)
		}
		vals, usec, err := measure(sys, prog)
		if err != nil {
			log.Fatal(err)
		}
		missRate := float64(vals[2]) / float64(vals[3]) * 100
		mflops := float64(vals[1]) / float64(usec)
		fmt.Printf("%-22s %8d us  %6.1f MFLOP/s  L1 miss rate %5.1f%%  (%d misses)\n",
			label, usec, mflops, missRate, vals[2])
		return vals
	}

	fmt.Printf("dense matmul N=%d on linux-x86 (16 KiB L1):\n\n", n)
	nv := report("naive (ijk)", naive)
	bv := report(fmt.Sprintf("blocked (B=%d)", block), blocked)

	fmt.Printf("\nsame work: %d vs %d FP operations (counters agree within multiplex error)\n", nv[1], bv[1])
	fmt.Printf("the fix, verified by hardware counters: %.1fx fewer L1 misses, %.2fx faster\n",
		float64(nv[2])/float64(bv[2]), float64(nv[0])/float64(bv[0]))
}
