// Memory: the PAPI 3 memory-utilization extensions (§5) — node and
// process usage with high-water marks, per-thread usage, swapping,
// NUMA locality and per-object location — against a workload whose
// arrays are allocated in the simulated address space.
package main

import (
	"fmt"
	"log"

	"repro/internal/memsim"
	"repro/papi"
)

func main() {
	sys, err := papi.Init(papi.Options{
		Platform: papi.PlatformAIXPower3,
		// A deliberately small node so the example can show swapping.
		MemNode: memsim.NodeConfig{TotalBytes: 96 << 20, SwapBytes: 256 << 20, Domains: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	proc := sys.Process()

	// The application's data structures, placed across NUMA domains.
	for _, obj := range []struct {
		name   string
		mb     uint64
		domain int
	}{
		{"grid", 40, 0},
		{"coefficients", 24, 1},
		{"workspace", 40, 0}, // pushes past physical memory: swap
	} {
		if _, err := proc.Alloc(obj.name, obj.mb<<20, obj.domain); err != nil {
			log.Fatal(err)
		}
	}
	// Thread-private scratch space.
	if _, err := sys.Main().Arena().Alloc(2 << 20); err != nil {
		log.Fatal(err)
	}

	node := sys.MemNodeInfo()
	fmt.Printf("node:    %d MiB total, %d used, %d available, high-water %d (page %d B, %d NUMA domains)\n",
		node.TotalBytes>>20, node.UsedBytes>>20, node.AvailBytes>>20, node.HighWaterBytes>>20,
		node.PageBytes, node.Domains)

	p := sys.MemProcessInfo()
	fmt.Printf("process: %d MiB resident (high-water %d), %d swap-outs, %d MiB on swap\n",
		p.UsedBytes>>20, p.HighWaterBytes>>20, p.SwapOuts, p.SwappedBytes>>20)

	t := sys.Main().MemThreadInfo()
	fmt.Printf("thread:  %d KiB (high-water %d)\n", t.UsedBytes>>10, t.HighWaterBytes>>10)

	for d, b := range sys.MemLocality() {
		fmt.Printf("domain %d: %d MiB resident\n", d, b>>20)
	}

	for _, name := range []string{"grid", "coefficients", "workspace"} {
		o, ok := sys.MemObjectInfo(name)
		if !ok {
			log.Fatalf("object %s missing", name)
		}
		state := "resident"
		if !o.Resident {
			state = "swapped out"
		}
		fmt.Printf("object %-13s [%#x,%#x) %3d MiB on domain %d, %s\n",
			o.Name, o.Addr, o.EndAddr, o.Bytes>>20, o.Domain, state)
	}
}
