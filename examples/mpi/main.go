// MPI: per-rank hardware counting of a message-passing program, and
// the §3 Vampir correlation — event frequencies displayed alongside the
// message-passing timeline, so communication phases show up as FLOP-
// rate collapses.
package main

import (
	"fmt"
	"log"

	"repro/internal/trace"
	"repro/papi"
	"repro/tools/mpisim"
	"repro/workload"
)

func main() {
	sys, err := papi.Init(papi.Options{Platform: papi.PlatformAIXPower3})
	if err != nil {
		log.Fatal(err)
	}

	comm, err := mpisim.NewComm(sys, mpisim.Config{
		Ranks:         4,
		LatencyCycles: 40_000,
		BytesPerCycle: 4,
		Metrics:       []papi.Event{papi.FP_OPS},
		Trace:         true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A ring exchange: compute, pass a halo to the right neighbour,
	// receive from the left, compute again, synchronize.
	compute := func(n int) mpisim.Compute {
		return mpisim.Compute{Name: "compute", Prog: workload.MatMul(workload.MatMulConfig{N: n, UseFMA: true})}
	}
	const ranks = 4
	scripts := make([]mpisim.Script, ranks)
	for r := 0; r < ranks; r++ {
		right := (r + 1) % ranks
		left := (r + ranks - 1) % ranks
		scripts[r] = mpisim.Script{
			compute(28 + 6*r), // imbalanced compute
			mpisim.Send{To: right, Bytes: 512 << 10},
			mpisim.Recv{From: left},
			compute(28),
			mpisim.Barrier{},
		}
	}
	if err := comm.Run(scripts); err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-rank profile:")
	fmt.Print(comm.Report())

	// The Vampir view, reduced to numbers: FLOP rate per region kind.
	rates, err := comm.RegionRates(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFLOP rate by activity (the Vampir correlation):")
	for _, region := range []string{"compute", "send", "recv", "barrier"} {
		fmt.Printf("  %-8s %10.2f FP ops/us\n", region, rates[region])
	}

	merged := comm.MergedTrace()
	if err := trace.Validate(merged); err != nil {
		log.Fatal(err)
	}
	ivs, _ := trace.Intervals(merged)
	fmt.Printf("\nmerged timeline: %d events, %d intervals across %d ranks\n",
		len(merged), len(ivs), ranks)
	fmt.Println("communication phases carry ~zero FP rate: the dips a Vampir")
	fmt.Println("timeline shows next to its message lines")
}
