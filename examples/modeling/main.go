// Modeling: the paper's §5 plan to "collaborate with performance
// modeling projects … in using PAPI to collect data for parameterizing
// predictive performance models". Counter measurements of training
// kernels fit a linear cycle model; the model then predicts the
// runtime of programs it has never seen from their counters alone.
package main

import (
	"fmt"
	"log"

	"repro/papi"
	"repro/tools/model"
	"repro/workload"
)

func main() {
	collector := &model.Collector{
		Platform: papi.PlatformAIXPower3,
		Events: []papi.Event{
			papi.TOT_INS, papi.FP_INS, papi.FDV_INS, papi.LD_INS,
			papi.L1_DCM, papi.L2_TCM, papi.TLB_DM, papi.BR_MSP, papi.L1_ICM,
		},
		Response: papi.TOT_CYC,
	}

	training := []workload.Program{
		workload.Triad(workload.TriadConfig{N: 8192, Reps: 2}),
		workload.Dot(workload.DotConfig{N: 30_000}),
		workload.Stencil(workload.StencilConfig{N: 96, Sweeps: 2}),
		workload.Branchy(workload.BranchyConfig{N: 40_000}),
		workload.GUPS(workload.GUPSConfig{TableWords: 1 << 16, Updates: 80_000}),
		workload.MixedPrecision(workload.MixedPrecisionConfig{N: 30_000}),
		workload.PointerChase(workload.ChaseConfig{Nodes: 1 << 13, Steps: 60_000}),
		workload.Triad(workload.TriadConfig{N: 512, Reps: 40}),
		workload.Stencil(workload.StencilConfig{N: 24, Sweeps: 30}),
		workload.LU(workload.LUConfig{N: 28}),
		workload.MatMul(workload.MatMulConfig{N: 20, UseFMA: true}),
		workload.Dot(workload.DotConfig{N: 3_000}),
	}
	var samples []model.Sample
	fmt.Println("collecting counters for", len(training), "training kernels...")
	for _, prog := range training {
		s, err := collector.Measure(prog)
		if err != nil {
			log.Fatal(err)
		}
		samples = append(samples, s)
	}

	m, err := model.Fit(collector.Events, samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfitted model:")
	fmt.Println(" ", m)

	fmt.Println("\npredicting held-out programs:")
	for _, prog := range []workload.Program{
		workload.MatMul(workload.MatMulConfig{N: 48}),
		workload.LU(workload.LUConfig{N: 40}),
		workload.BlockedMatMul(workload.BlockedMatMulConfig{N: 64, Block: 16}),
	} {
		s, err := collector.Measure(prog)
		if err != nil {
			log.Fatal(err)
		}
		pred, err := m.Predict(s.Features)
		if err != nil {
			log.Fatal(err)
		}
		rel := (pred/s.Response - 1) * 100
		fmt.Printf("  %-32s actual %10.0f cyc   predicted %10.0f cyc   (%+.1f%%)\n",
			s.Name, s.Response, pred, rel)
	}
	fmt.Println("\npredictions land within a few percent from counters alone;")
	fmt.Println("(individual coefficients are not physical latencies — correlated")
	fmt.Println("counters share credit — but the predictions are what models need)")
}
