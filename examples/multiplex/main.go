// Multiplexing: measuring ten events on a two-counter machine by
// explicitly opting into software multiplexing — and the lesson the
// paper encodes in that explicitness (§2): estimates from a run too
// short to rotate through all time slices are silently wrong.
package main

import (
	"fmt"
	"log"

	"repro/papi"
	"repro/workload"
)

var events = []papi.Event{
	papi.TOT_CYC, papi.TOT_INS, papi.FP_INS, papi.LST_INS, papi.L1_DCM,
	papi.L2_TCM, papi.TLB_DM, papi.BR_INS, papi.BR_MSP, papi.L2_TCA,
}

func measure(n int) ([]int64, error) {
	sys, err := papi.Init(papi.Options{Platform: papi.PlatformLinuxX86})
	if err != nil {
		return nil, err
	}
	th := sys.Main()
	es := th.NewEventSet()
	// The opt-in: without this, the third Add returns ECNFLCT because
	// the P6 has only two counters.
	if err := es.SetMultiplex(0); err != nil {
		return nil, err
	}
	if err := es.AddAll(events...); err != nil {
		return nil, err
	}
	if err := es.Start(); err != nil {
		return nil, err
	}
	th.Run(workload.MatMul(workload.MatMulConfig{N: n}))
	vals := make([]int64, len(events))
	if err := es.Stop(vals); err != nil {
		return nil, err
	}
	return vals, nil
}

func main() {
	sys, _ := papi.Init(papi.Options{Platform: papi.PlatformLinuxX86})
	es := sys.Main().NewEventSet()
	es.AddAll(papi.TOT_CYC, papi.TOT_INS)
	if err := es.Add(papi.FP_INS); papi.IsErr(err, papi.ECNFLCT) {
		fmt.Println("without multiplexing, a third event conflicts:", err)
	}

	short, err := measure(16) // a few hundred microseconds: too short
	if err != nil {
		log.Fatal(err)
	}
	long, err := measure(128) // many slice rotations: converged
	if err != nil {
		log.Fatal(err)
	}
	expShort := workload.MatMul(workload.MatMulConfig{N: 16}).Expected()
	expLong := workload.MatMul(workload.MatMulConfig{N: 128}).Expected()

	fmt.Printf("\n%-14s %15s %15s\n", "EVENT", "short run", "long run")
	for i, ev := range events {
		fmt.Printf("%-14s %15d %15d\n", papi.EventName(ev), short[i], long[i])
	}
	fmt.Printf("\nFP_INS expected: short %d, long %d\n", expShort.FPInstrs(), expLong.FPInstrs())
	fmt.Println("the short run's zeros and wild values are the paper's warning about")
	fmt.Println("naive multiplexing; the long run's estimates converge to the truth")
}
