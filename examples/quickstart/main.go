// Quickstart: the high-level PAPI interface — start, read and stop a
// small list of preset events around a kernel, with no EventSet
// bookkeeping, then get a FLOP rate from the one-call PAPI_flops
// equivalent.
package main

import (
	"fmt"
	"log"

	"repro/papi"
	"repro/workload"
)

func main() {
	// Initialize the library for a simulated platform (the default is
	// Linux/x86; any of papi.Platforms() works).
	sys, err := papi.Init(papi.Options{Platform: papi.PlatformAIXPower3})
	if err != nil {
		log.Fatal(err)
	}
	th := sys.Main()

	// High-level interface: start counting three presets. (On the
	// POWER3 the choice matters: events must share a hardware group —
	// FP_OPS's three natives plus a cache event would conflict.)
	if err := th.StartCounters(papi.TOT_INS, papi.FP_OPS, papi.TOT_CYC); err != nil {
		log.Fatal(err)
	}

	// Run the application kernel on the simulated core.
	prog := workload.MatMul(workload.MatMulConfig{N: 64})
	th.Run(prog)

	// Read (and implicitly reset) the counters mid-flight...
	vals := make([]int64, 3)
	if err := th.ReadCounters(vals); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after matmul:   TOT_INS=%d  FP_OPS=%d  TOT_CYC=%d\n", vals[0], vals[1], vals[2])
	fmt.Printf("expected FLOPs: %d\n", prog.Expected().FLOPs())

	// ...run a second phase and stop.
	th.Run(workload.Triad(workload.TriadConfig{N: 8192}))
	if err := th.StopCounters(vals); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after triad:    TOT_INS=%d  FP_OPS=%d  TOT_CYC=%d\n", vals[0], vals[1], vals[2])

	// The one-call rate interface: PAPI_flops.
	if _, err := th.Flops(); err != nil {
		log.Fatal(err)
	}
	th.Run(workload.MatMul(workload.MatMulConfig{N: 64, UseFMA: true}))
	r, err := th.Flops()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PAPI_flops:     %d FP operations in %d us -> %.1f MFLOP/s (FMA counted twice)\n",
		r.Count, r.VirtUsec, r.Rate)
}
