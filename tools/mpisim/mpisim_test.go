package mpisim

import (
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/papi"
	"repro/workload"
)

func small() workload.Program {
	return workload.Triad(workload.TriadConfig{N: 2000})
}

func TestPingPong(t *testing.T) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformAIXPower3})
	comm, err := NewComm(sys, Config{Ranks: 2, Metrics: []papi.Event{papi.FP_INS}, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	scripts := []Script{
		{Compute{Prog: small()}, Send{To: 1, Bytes: 8192}, Recv{From: 1}},
		{Recv{From: 0}, Compute{Prog: small()}, Send{To: 0, Bytes: 8192}},
	}
	if err := comm.Run(scripts); err != nil {
		t.Fatal(err)
	}
	stats := comm.Stats()
	if stats[0].MessagesSent != 1 || stats[0].MessagesRecv != 1 {
		t.Errorf("rank0 stats %+v", stats[0])
	}
	if stats[1].BytesRecv != 8192 || stats[1].BytesSent != 8192 {
		t.Errorf("rank1 bytes %+v", stats[1])
	}
	// Rank 1 had nothing to do until rank 0's message arrived: it must
	// have idle-waited.
	if stats[1].WaitUsec == 0 {
		t.Error("rank1 should have waited for the first message")
	}
	// The merged trace is well-nested and contains both ranks.
	merged := comm.MergedTrace()
	if err := trace.Validate(merged); err != nil {
		t.Fatal(err)
	}
	nodes := map[int]bool{}
	for _, ev := range merged {
		nodes[ev.Node] = true
	}
	if !nodes[0] || !nodes[1] {
		t.Errorf("trace missing ranks: %v", nodes)
	}
	rep := comm.Report()
	if !strings.Contains(rep, "COMPUTE_US") {
		t.Error("report header missing")
	}
}

func TestRecvCompletesAfterSendPlusLatency(t *testing.T) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformCrayT3E})
	const latency = 50_000
	comm, err := NewComm(sys, Config{Ranks: 2, LatencyCycles: latency})
	if err != nil {
		t.Fatal(err)
	}
	scripts := []Script{
		{Compute{Prog: small()}, Send{To: 1, Bytes: 64}},
		{Recv{From: 0}},
	}
	if err := comm.Run(scripts); err != nil {
		t.Fatal(err)
	}
	th0, _ := comm.Thread(0)
	th1, _ := comm.Thread(1)
	// Receiver's clock must be at least sender's send-completion time
	// plus the wire latency.
	if th1.CPU().Cycles() < th0.CPU().Cycles() {
		t.Errorf("receiver finished at %d, before sender at %d plus latency",
			th1.CPU().Cycles(), th0.CPU().Cycles())
	}
	if th1.CPU().Cycles() < latency {
		t.Errorf("receiver clock %d below the wire latency", th1.CPU().Cycles())
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformCrayT3E})
	comm, err := NewComm(sys, Config{Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	big := workload.Triad(workload.TriadConfig{N: 20_000})
	scripts := []Script{
		{Compute{Prog: big}, Barrier{}},
		{Compute{Prog: small()}, Barrier{}},
		{Barrier{}},
	}
	if err := comm.Run(scripts); err != nil {
		t.Fatal(err)
	}
	var clocks []uint64
	for i := 0; i < 3; i++ {
		th, _ := comm.Thread(i)
		clocks = append(clocks, th.CPU().Cycles())
	}
	if clocks[0] != clocks[1] || clocks[1] != clocks[2] {
		t.Errorf("barrier left clocks unsynchronized: %v", clocks)
	}
	// The fast ranks waited.
	stats := comm.Stats()
	if stats[2].WaitUsec == 0 || stats[1].WaitUsec == 0 {
		t.Errorf("fast ranks should report wait time: %+v", stats)
	}
	if stats[0].WaitUsec != 0 {
		t.Errorf("slowest rank waited %d us", stats[0].WaitUsec)
	}
}

func TestDeadlockDetection(t *testing.T) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformCrayT3E})
	comm, _ := NewComm(sys, Config{Ranks: 2})
	// Both ranks receive first: classic deadlock.
	scripts := []Script{
		{Recv{From: 1}, Send{To: 1, Bytes: 8}},
		{Recv{From: 0}, Send{To: 0, Bytes: 8}},
	}
	err := comm.Run(scripts)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("expected deadlock, got %v", err)
	}
}

func TestValidation(t *testing.T) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformCrayT3E})
	if _, err := NewComm(sys, Config{Ranks: 0}); err == nil {
		t.Error("zero ranks accepted")
	}
	comm, _ := NewComm(sys, Config{Ranks: 2})
	if err := comm.Run([]Script{{}}); err == nil {
		t.Error("script-count mismatch accepted")
	}
	if err := comm.Run([]Script{{Send{To: 9, Bytes: 1}}, {}}); err == nil {
		t.Error("invalid send target accepted")
	}
	if err := comm.Run([]Script{{Recv{From: -1}}, {}}); err == nil {
		t.Error("invalid recv source accepted")
	}
	if _, err := comm.Thread(9); err == nil {
		t.Error("invalid rank lookup accepted")
	}
	if _, err := comm.RegionRates(0); err == nil {
		t.Error("metric index without metrics accepted")
	}
}

func TestVampirCorrelation(t *testing.T) {
	// The §3 claim: FLOP rate correlates with message-passing phases —
	// high during compute intervals, ~zero inside send/recv intervals.
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformAIXPower3})
	comm, err := NewComm(sys, Config{
		Ranks:   2,
		Metrics: []papi.Event{papi.FP_OPS},
		Trace:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	compute := func() workload.Program {
		return workload.MatMul(workload.MatMulConfig{N: 32, UseFMA: true})
	}
	scripts := []Script{
		{Compute{Prog: compute()}, Send{To: 1, Bytes: 1 << 20}, Recv{From: 1}, Compute{Prog: compute()}},
		{Compute{Prog: compute()}, Recv{From: 0}, Send{To: 0, Bytes: 1 << 20}, Compute{Prog: compute()}},
	}
	if err := comm.Run(scripts); err != nil {
		t.Fatal(err)
	}
	rates, err := comm.RegionRates(0)
	if err != nil {
		t.Fatal(err)
	}
	if rates["compute"] <= 0 {
		t.Fatalf("no compute rate: %v", rates)
	}
	if rates["send"] >= rates["compute"]/10 {
		t.Errorf("send-phase FLOP rate %.2f not ≪ compute rate %.2f", rates["send"], rates["compute"])
	}
	if rates["recv"] >= rates["compute"]/10 {
		t.Errorf("recv-phase FLOP rate %.2f not ≪ compute rate %.2f", rates["recv"], rates["compute"])
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() string {
		sys := papi.MustInit(papi.Options{Platform: papi.PlatformCrayT3E, Seed: 5})
		comm, err := NewComm(sys, Config{Ranks: 3})
		if err != nil {
			t.Fatal(err)
		}
		scripts := []Script{
			{Compute{Prog: small()}, Send{To: 1, Bytes: 512}, Recv{From: 2}},
			{Recv{From: 0}, Compute{Prog: small()}, Send{To: 2, Bytes: 512}},
			{Recv{From: 1}, Send{To: 0, Bytes: 512}},
		}
		if err := comm.Run(scripts); err != nil {
			t.Fatal(err)
		}
		return comm.Report()
	}
	if run() != run() {
		t.Error("schedule is not deterministic")
	}
}
