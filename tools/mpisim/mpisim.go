// Package mpisim simulates a message-passing program over simulated
// threads, the missing piece of the paper's §3 parallel-tools story:
// TAU's MPI wrapper and the Vampir integration exist to "correlate
// various event frequencies with message passing behavior". Each rank
// runs a script of compute/send/recv/barrier actions on its own
// simulated core; sends and receives carry latency and bandwidth costs,
// receivers idle-wait for late messages, and the whole run emits a
// merged node-context-thread trace whose events carry hardware counter
// values — exactly what a Vampir timeline correlates.
//
// The scheduler is deterministic: ranks execute round-robin, one action
// at a time, with per-rank cycle clocks serving as positions on a
// shared timeline (all ranks run the same simulated machine from cycle
// zero).
package mpisim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
	"repro/papi"
	"repro/workload"
)

// Action is one step of a rank's script.
type Action interface{ isAction() }

// Compute runs a workload kernel.
type Compute struct {
	Name string
	Prog workload.Program
}

// Send transmits Bytes to rank To (asynchronous buffered send: the
// sender pays overhead plus copy time and continues).
type Send struct {
	To    int
	Bytes uint64
}

// Recv blocks until a message from rank From arrives.
type Recv struct {
	From int
}

// Barrier blocks until every rank reaches its barrier.
type Barrier struct{}

func (Compute) isAction() {}
func (Send) isAction()    {}
func (Recv) isAction()    {}
func (Barrier) isAction() {}

// Script is one rank's program.
type Script []Action

// Config parameterizes the communication fabric and instrumentation.
type Config struct {
	Ranks         int
	LatencyCycles uint64 // wire latency per message
	BytesPerCycle uint64 // link bandwidth (default 8)
	SendOverhead  uint64 // cycles of sender-side software overhead
	RecvOverhead  uint64 // cycles of receiver-side software overhead
	Metrics       []papi.Event
	Trace         bool
}

func (c *Config) fill() error {
	if c.Ranks <= 0 {
		return fmt.Errorf("mpisim: need at least one rank")
	}
	if c.LatencyCycles == 0 {
		c.LatencyCycles = 2000
	}
	if c.BytesPerCycle == 0 {
		c.BytesPerCycle = 8
	}
	if c.SendOverhead == 0 {
		c.SendOverhead = 600
	}
	if c.RecvOverhead == 0 {
		c.RecvOverhead = 600
	}
	return nil
}

// message is in flight between two ranks.
type message struct {
	availableAt uint64 // receiver-timeline cycle the payload arrives
	bytes       uint64
}

// RankStats summarizes one rank's run.
type RankStats struct {
	Rank         int
	ComputeUsec  uint64
	SendUsec     uint64
	RecvUsec     uint64 // includes idle wait
	WaitUsec     uint64 // idle-wait portion of recv/barrier
	BytesSent    uint64
	BytesRecv    uint64
	MessagesSent uint64
	MessagesRecv uint64
}

type rank struct {
	id      int
	th      *papi.Thread
	es      *papi.EventSet
	buf     []int64
	tbuf    *trace.Buffer
	stats   RankStats
	pc      int // next action index
	blocked bool
}

// Comm is a simulated communicator.
type Comm struct {
	sys    *papi.System
	cfg    Config
	ranks  []*rank
	queues map[[2]int][]message // {from,to} → fifo
}

// NewComm builds a communicator of cfg.Ranks ranks over the System:
// rank 0 is the main thread, the rest are created.
func NewComm(sys *papi.System, cfg Config) (*Comm, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	c := &Comm{sys: sys, cfg: cfg, queues: map[[2]int][]message{}}
	for i := 0; i < cfg.Ranks; i++ {
		var th *papi.Thread
		var err error
		if i == 0 {
			th = sys.Main()
		} else if th, err = sys.NewThread(); err != nil {
			return nil, err
		}
		r := &rank{id: i, th: th, buf: make([]int64, len(cfg.Metrics))}
		r.stats.Rank = i
		if len(cfg.Metrics) > 0 {
			es := th.NewEventSet()
			if err := es.AddAll(cfg.Metrics...); err != nil {
				return nil, fmt.Errorf("mpisim: rank %d metrics: %w", i, err)
			}
			if err := es.Start(); err != nil {
				return nil, err
			}
			r.es = es
		}
		if cfg.Trace {
			r.tbuf = trace.NewBuffer(i, 0) // node = rank, thread 0
		}
		c.ranks = append(c.ranks, r)
	}
	return c, nil
}

// Thread exposes a rank's simulated thread.
func (c *Comm) Thread(rankID int) (*papi.Thread, error) {
	if rankID < 0 || rankID >= len(c.ranks) {
		return nil, fmt.Errorf("mpisim: rank %d out of range", rankID)
	}
	return c.ranks[rankID].th, nil
}

func (r *rank) now() uint64 { return r.th.CPU().Cycles() }

func (r *rank) usec() uint64 {
	return r.th.CPU().Cycles() / uint64(r.th.System().Arch().ClockMHz)
}

func (r *rank) values() []int64 {
	if r.es == nil {
		return nil
	}
	if err := r.es.Read(r.buf); err != nil {
		return nil
	}
	return append([]int64(nil), r.buf...)
}

func (r *rank) mark(kind trace.Kind, region string) {
	if r.tbuf == nil {
		return
	}
	r.tbuf.Append(r.usec(), kind, region, r.values())
}

// Run executes one script per rank to completion. It returns an error
// on rank-count mismatch, invalid peers, or deadlock.
func (c *Comm) Run(scripts []Script) error {
	if len(scripts) != len(c.ranks) {
		return fmt.Errorf("mpisim: %d scripts for %d ranks", len(scripts), len(c.ranks))
	}
	for _, sc := range scripts {
		for _, a := range sc {
			switch act := a.(type) {
			case Send:
				if act.To < 0 || act.To >= len(c.ranks) {
					return fmt.Errorf("mpisim: send to invalid rank %d", act.To)
				}
			case Recv:
				if act.From < 0 || act.From >= len(c.ranks) {
					return fmt.Errorf("mpisim: recv from invalid rank %d", act.From)
				}
			}
		}
	}
	for {
		progress := false
		done := true
		for _, r := range c.ranks {
			if r.pc >= len(scripts[r.id]) {
				continue
			}
			done = false
			if c.step(r, scripts[r.id][r.pc]) {
				r.pc++
				progress = true
			}
		}
		if done {
			break
		}
		if progress {
			continue
		}
		// No rank advanced: either every unfinished rank sits at a
		// barrier (release it) or the program is deadlocked.
		if !c.tryBarrier(scripts) {
			return fmt.Errorf("mpisim: deadlock: %s", c.blockedReport(scripts))
		}
	}
	for _, r := range c.ranks {
		if r.es != nil {
			if err := r.es.Stop(nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// step attempts one action; returns true when the action completed.
func (c *Comm) step(r *rank, a Action) bool {
	switch act := a.(type) {
	case Compute:
		name := "compute"
		if act.Name != "" {
			name = act.Name
		}
		r.mark(trace.KindEnter, name)
		t0 := r.usec()
		act.Prog.Reset()
		r.th.Run(act.Prog)
		r.stats.ComputeUsec += r.usec() - t0
		r.mark(trace.KindExit, name)
		return true

	case Send:
		r.mark(trace.KindEnter, "send")
		t0 := r.usec()
		copyCycles := act.Bytes / c.cfg.BytesPerCycle
		r.th.CPU().Charge(c.cfg.SendOverhead+copyCycles, c.cfg.SendOverhead/2)
		key := [2]int{r.id, act.To}
		c.queues[key] = append(c.queues[key], message{
			availableAt: r.now() + c.cfg.LatencyCycles,
			bytes:       act.Bytes,
		})
		r.stats.SendUsec += r.usec() - t0
		r.stats.BytesSent += act.Bytes
		r.stats.MessagesSent++
		r.mark(trace.KindExit, "send")
		return true

	case Recv:
		key := [2]int{act.From, r.id}
		q := c.queues[key]
		if len(q) == 0 {
			r.blocked = true
			return false // sender has not posted yet; retry
		}
		msg := q[0]
		c.queues[key] = q[1:]
		r.blocked = false
		r.mark(trace.KindEnter, "recv")
		t0 := r.usec()
		if msg.availableAt > r.now() {
			wait := msg.availableAt - r.now()
			r.stats.WaitUsec += wait / uint64(c.sys.Arch().ClockMHz)
			r.th.CPU().Charge(wait, 0) // idle wait: cycles, no instructions
		}
		r.th.CPU().Charge(c.cfg.RecvOverhead, c.cfg.RecvOverhead/2)
		r.stats.RecvUsec += r.usec() - t0
		r.stats.BytesRecv += msg.bytes
		r.stats.MessagesRecv++
		r.mark(trace.KindExit, "recv")
		return true

	case Barrier:
		// Completed collectively by tryBarrier once all ranks arrive.
		r.blocked = true
		return false
	}
	return false
}

// tryBarrier releases a complete barrier: every unfinished rank must be
// sitting on one. Ranks advance to the latest arrival time.
func (c *Comm) tryBarrier(scripts []Script) bool {
	var waiting []*rank
	var latest uint64
	for _, r := range c.ranks {
		if r.pc >= len(scripts[r.id]) {
			continue
		}
		if _, ok := scripts[r.id][r.pc].(Barrier); !ok {
			return false // someone is blocked on something else
		}
		waiting = append(waiting, r)
		if r.now() > latest {
			latest = r.now()
		}
	}
	if len(waiting) == 0 {
		return false
	}
	for _, r := range waiting {
		r.mark(trace.KindEnter, "barrier")
		if latest > r.now() {
			wait := latest - r.now()
			r.stats.WaitUsec += wait / uint64(c.sys.Arch().ClockMHz)
			r.th.CPU().Charge(wait, 0)
		}
		r.mark(trace.KindExit, "barrier")
		r.blocked = false
		r.pc++
	}
	return true
}

func (c *Comm) blockedReport(scripts []Script) string {
	var parts []string
	for _, r := range c.ranks {
		if r.pc >= len(scripts[r.id]) {
			continue
		}
		parts = append(parts, fmt.Sprintf("rank %d blocked at action %d (%T)",
			r.id, r.pc, scripts[r.id][r.pc]))
	}
	return strings.Join(parts, "; ")
}

// Stats returns per-rank statistics, by rank.
func (c *Comm) Stats() []RankStats {
	out := make([]RankStats, len(c.ranks))
	for i, r := range c.ranks {
		out[i] = r.stats
	}
	return out
}

// MergedTrace merges all ranks' traces into one timeline, the input a
// Vampir-style viewer renders.
func (c *Comm) MergedTrace() []trace.Event {
	bufs := make([]*trace.Buffer, 0, len(c.ranks))
	for _, r := range c.ranks {
		if r.tbuf != nil {
			bufs = append(bufs, r.tbuf)
		}
	}
	return trace.Merge(bufs...)
}

// RegionRates computes, per region kind, the mean rate of metric m
// (counts per usec) across all trace intervals — the §3 correlation of
// event frequencies with message-passing behaviour.
func (c *Comm) RegionRates(metricIndex int) (map[string]float64, error) {
	if metricIndex < 0 || metricIndex >= len(c.cfg.Metrics) {
		return nil, fmt.Errorf("mpisim: metric index %d out of range", metricIndex)
	}
	ivs, err := trace.Intervals(c.MergedTrace())
	if err != nil {
		return nil, err
	}
	sum := map[string]float64{}
	dur := map[string]float64{}
	for _, iv := range ivs {
		if iv.DurationUsec() == 0 || len(iv.EnterVals) <= metricIndex || len(iv.ExitVals) <= metricIndex {
			continue
		}
		sum[iv.Region] += float64(iv.ExitVals[metricIndex] - iv.EnterVals[metricIndex])
		dur[iv.Region] += float64(iv.DurationUsec())
	}
	out := map[string]float64{}
	for k := range sum {
		if dur[k] > 0 {
			out[k] = sum[k] / dur[k]
		}
	}
	return out, nil
}

// Report renders per-rank statistics as a table.
func (c *Comm) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %12s %10s %10s %10s %10s %6s %6s\n",
		"RANK", "COMPUTE_US", "SEND_US", "RECV_US", "WAIT_US", "BYTES_TX", "MSG_TX", "MSG_RX")
	stats := c.Stats()
	sort.Slice(stats, func(i, j int) bool { return stats[i].Rank < stats[j].Rank })
	for _, s := range stats {
		fmt.Fprintf(&b, "%-5d %12d %10d %10d %10d %10d %6d %6d\n",
			s.Rank, s.ComputeUsec, s.SendUsec, s.RecvUsec, s.WaitUsec, s.BytesSent, s.MessagesSent, s.MessagesRecv)
	}
	return b.String()
}
