// Package vprof reproduces the role of VProf in the paper (§2, §3): an
// end-user statistical profiler that uses PAPI_profil to collect
// histogram data "which can then be correlated with application source
// code". Any hardware counter metric can drive the profile, not just
// time — the paper's point about monotonically increasing resource
// functions.
package vprof

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/hwsim"
	"repro/papi"
	"repro/workload"
)

// SourceLoc is a source coordinate.
type SourceLoc struct {
	File string
	Line int
}

func (s SourceLoc) String() string { return fmt.Sprintf("%s:%d", s.File, s.Line) }

type mapEntry struct {
	region        workload.Region
	file          string
	startLine     int
	instrsPerLine int
}

// SourceMap relates text addresses to source lines — the debug
// information a real vprof reads from the executable.
type SourceMap struct {
	entries []mapEntry
}

// Add registers a text region as file's lines starting at startLine,
// with instrsPerLine instructions mapping to each line.
func (m *SourceMap) Add(region workload.Region, file string, startLine, instrsPerLine int) error {
	if instrsPerLine <= 0 {
		return fmt.Errorf("vprof: instrsPerLine must be positive")
	}
	for _, e := range m.entries {
		if region.Lo < e.region.Hi && e.region.Lo < region.Hi {
			return fmt.Errorf("vprof: region %q overlaps %q", region.Name, e.region.Name)
		}
	}
	m.entries = append(m.entries, mapEntry{region, file, startLine, instrsPerLine})
	sort.Slice(m.entries, func(i, j int) bool { return m.entries[i].region.Lo < m.entries[j].region.Lo })
	return nil
}

// Locate maps a text address to its source line.
func (m *SourceMap) Locate(addr uint64) (SourceLoc, bool) {
	for _, e := range m.entries {
		if e.region.Contains(addr) {
			instr := int(addr-e.region.Lo) / hwsim.InstrBytes
			return SourceLoc{File: e.file, Line: e.startLine + instr/e.instrsPerLine}, true
		}
	}
	return SourceLoc{}, false
}

// Bounds returns the address range covering all mapped regions.
func (m *SourceMap) Bounds() (lo, hi uint64, ok bool) {
	if len(m.entries) == 0 {
		return 0, 0, false
	}
	lo = m.entries[0].region.Lo
	hi = m.entries[len(m.entries)-1].region.Hi
	return lo, hi, true
}

// LineHits is one source line's share of the profile.
type LineHits struct {
	Loc  SourceLoc
	Hits uint64
	Pct  float64
}

// Profiler is one vprof session: a metric, an overflow threshold, and
// a source map to correlate against.
type Profiler struct {
	th        *papi.Thread
	event     papi.Event
	threshold uint64
	smap      *SourceMap
	hist      *papi.Profile
	unmapped  uint64
}

// New prepares a profiler for the metric on the thread.
func New(th *papi.Thread, event papi.Event, threshold uint64, smap *SourceMap) (*Profiler, error) {
	lo, hi, ok := smap.Bounds()
	if !ok {
		return nil, fmt.Errorf("vprof: empty source map")
	}
	hist, err := papi.NewProfileCovering(lo, hi, hwsim.InstrBytes)
	if err != nil {
		return nil, err
	}
	return &Profiler{th: th, event: event, threshold: threshold, smap: smap, hist: hist}, nil
}

// Run profiles one execution of the program.
func (p *Profiler) Run(prog workload.Program) error {
	es := p.th.NewEventSet()
	if err := es.Add(p.event); err != nil {
		return err
	}
	if err := es.Profil(p.hist, p.event, p.threshold); err != nil {
		return err
	}
	if err := es.Start(); err != nil {
		return err
	}
	p.th.Run(prog)
	return es.Stop(nil)
}

// Lines returns per-line hit counts, by descending hits.
func (p *Profiler) Lines() []LineHits {
	byLoc := map[SourceLoc]uint64{}
	total := uint64(0)
	p.unmapped = p.hist.Outside
	for i, h := range p.hist.Buckets {
		if h == 0 {
			continue
		}
		addr, _ := p.hist.AddrRange(i)
		loc, ok := p.smap.Locate(addr)
		if !ok {
			p.unmapped += h
			continue
		}
		byLoc[loc] += h
		total += h
	}
	out := make([]LineHits, 0, len(byLoc))
	for loc, h := range byLoc {
		lh := LineHits{Loc: loc, Hits: h}
		if total > 0 {
			lh.Pct = float64(h) / float64(total)
		}
		out = append(out, lh)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		if out[i].Loc.File != out[j].Loc.File {
			return out[i].Loc.File < out[j].Loc.File
		}
		return out[i].Loc.Line < out[j].Loc.Line
	})
	return out
}

// Unmapped returns hits that fell outside the source map.
func (p *Profiler) Unmapped() uint64 {
	p.Lines()
	return p.unmapped
}

// Report renders the top-k line profile.
func (p *Profiler) Report(k int) string {
	lines := p.Lines()
	if k > 0 && len(lines) > k {
		lines = lines[:k]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "vprof: %s every %d events\n", papi.EventName(p.event), p.threshold)
	fmt.Fprintf(&b, "%-24s %10s %7s\n", "SOURCE LINE", "HITS", "PCT")
	for _, lh := range lines {
		fmt.Fprintf(&b, "%-24s %10d %6.1f%%\n", lh.Loc, lh.Hits, lh.Pct*100)
	}
	return b.String()
}
