package vprof

import (
	"strings"
	"testing"

	"repro/internal/hwsim"
	"repro/papi"
	"repro/workload"
)

func TestSourceMapLocate(t *testing.T) {
	var sm SourceMap
	r1 := workload.Region{Name: "f", Lo: 0x1000, Hi: 0x1020} // 8 instrs
	r2 := workload.Region{Name: "g", Lo: 0x1020, Hi: 0x1040}
	if err := sm.Add(r1, "solver.f90", 10, 2); err != nil {
		t.Fatal(err)
	}
	if err := sm.Add(r2, "io.f90", 50, 4); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr uint64
		want string
	}{
		{0x1000, "solver.f90:10"},
		{0x1004, "solver.f90:10"}, // 2 instrs per line
		{0x1008, "solver.f90:11"},
		{0x101c, "solver.f90:13"},
		{0x1020, "io.f90:50"},
		{0x1030, "io.f90:51"},
	}
	for _, c := range cases {
		loc, ok := sm.Locate(c.addr)
		if !ok || loc.String() != c.want {
			t.Errorf("Locate(%#x) = %v,%v want %s", c.addr, loc, ok, c.want)
		}
	}
	if _, ok := sm.Locate(0x2000); ok {
		t.Error("unmapped address located")
	}
	// Overlap rejected.
	if err := sm.Add(workload.Region{Name: "h", Lo: 0x1010, Hi: 0x1050}, "x", 1, 1); err == nil {
		t.Error("overlapping region accepted")
	}
	if err := sm.Add(workload.Region{Name: "h", Lo: 0x2000, Hi: 0x2010}, "x", 1, 0); err == nil {
		t.Error("zero instrsPerLine accepted")
	}
}

func TestLineProfileFindsHotLine(t *testing.T) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformCrayT3E})
	th := sys.Main()
	prog := workload.HotColdLoop(workload.HotColdConfig{Iters: 50_000, Hot: 4, Cold: 16})
	regions := prog.Regions()

	var sm SourceMap
	// Hot FP region: one source line per 4 instructions → one line.
	if err := sm.Add(regions[0], "kernel.c", 100, 4); err != nil {
		t.Fatal(err)
	}
	if err := sm.Add(regions[1], "kernel.c", 120, 4); err != nil {
		t.Fatal(err)
	}
	p, err := New(th, papi.FP_INS, 997, &sm)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(prog); err != nil {
		t.Fatal(err)
	}
	lines := p.Lines()
	if len(lines) == 0 {
		t.Fatal("no line hits")
	}
	// On the zero-skid T3E every hit lands on kernel.c:100.
	if lines[0].Loc.String() != "kernel.c:100" {
		t.Errorf("hottest line = %s, want kernel.c:100", lines[0].Loc)
	}
	if lines[0].Pct < 0.99 {
		t.Errorf("hot line share = %.2f, want ~1.0", lines[0].Pct)
	}
	if p.Unmapped() != 0 {
		t.Errorf("unmapped hits = %d", p.Unmapped())
	}
	rep := p.Report(5)
	if !strings.Contains(rep, "kernel.c:100") || !strings.Contains(rep, "PAPI_FP_INS") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestAnyMetricDrivesProfile(t *testing.T) {
	// The paper: any monotonically increasing counter works as the
	// profiling metric — profile L1 misses instead of FP.
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformCrayT3E})
	th := sys.Main()
	prog := workload.Triad(workload.TriadConfig{N: 65536})
	var sm SourceMap
	if err := sm.Add(prog.Regions()[0], "triad.c", 1, 1); err != nil {
		t.Fatal(err)
	}
	p, err := New(th, papi.L1_DCM, 256, &sm)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(prog); err != nil {
		t.Fatal(err)
	}
	lines := p.Lines()
	if len(lines) == 0 {
		t.Fatal("no miss-profile hits")
	}
	// Misses come from loads/stores: lines 1, 2 (loads) and 5 (store).
	for _, lh := range lines {
		if lh.Loc.File != "triad.c" {
			t.Errorf("hit outside triad.c: %v", lh)
		}
	}
}

func TestNewValidation(t *testing.T) {
	sys := papi.MustInit(papi.Options{})
	var empty SourceMap
	if _, err := New(sys.Main(), papi.FP_INS, 100, &empty); err == nil {
		t.Error("empty source map accepted")
	}
}

func TestSourceMapInstrGranularity(t *testing.T) {
	// One bucket per instruction must be representable: the histogram
	// granularity equals hwsim.InstrBytes.
	if hwsim.InstrBytes != 4 {
		t.Skip("instruction size changed")
	}
	var sm SourceMap
	sm.Add(workload.Region{Name: "r", Lo: 0, Hi: 40}, "f", 0, 1)
	lo, hi, ok := sm.Bounds()
	if !ok || lo != 0 || hi != 40 {
		t.Errorf("bounds = %d,%d,%v", lo, hi, ok)
	}
}
