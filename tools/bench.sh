#!/bin/sh
# Regenerate the committed benchmark baselines. Runs the tsdb
# micro-benchmarks (encode/decode throughput, compression ratio, query
# latency at 1/8/64 queriers) and the server-level benchmarks (papid
# READ throughput, QUERY round-trips), writing machine-readable JSON
# via cmd/benchjson.
set -eu
cd "$(dirname "$0")/.."
go run ./cmd/benchjson -out BENCH_tsdb.json -bench 'TSDB' ./internal/tsdb
go run ./cmd/benchjson -out BENCH_server.json -bench 'Server' ./internal/server .
