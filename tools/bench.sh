#!/bin/sh
# Regenerate the committed benchmark baselines. Runs the tsdb
# micro-benchmarks (encode/decode throughput, compression ratio, query
# latency at 1/8/64 queriers) and the server-level benchmarks (papid
# READ throughput on both wire codecs, QUERY round-trips), writing
# machine-readable JSON via cmd/benchjson. -benchmem records B/op and
# allocs/op so allocation regressions on the serving path are tracked
# alongside latency.
#
# `tools/bench.sh compare` runs the server benchmarks against the
# committed BENCH_server.json instead of overwriting it: a fresh
# measurement goes to a temp file and `benchjson -diff` gates on the
# serving-path benchmarks, failing when any gated ns/op regressed more
# than 25% against the baseline. Use it before regenerating baselines
# so a regression is a loud diff, not a silently re-baselined number.
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "compare" ]; then
    tmp=$(mktemp /tmp/bench-server-compare.XXXXXX.json)
    trap 'rm -f "$tmp"' EXIT
    go run ./cmd/benchjson -benchmem -benchtime 3s -out "$tmp" \
        -bench 'Server|TickParallel' ./internal/server .
    go run ./cmd/benchjson -diff \
        -gate 'ServerQuery|ServerFanout|ServerThroughput' -max-regress 25 \
        BENCH_server.json "$tmp"
    exit 0
fi
go run ./cmd/benchjson -benchmem -out BENCH_tsdb.json -bench 'TSDB' ./internal/tsdb
# Durability costs: per-row WAL append under each fsync policy and
# crash-recovery replay speed (both report rows/s).
go run ./cmd/benchjson -benchmem -out BENCH_wal.json -bench 'WAL|Replay' ./internal/tsdb/wal
# The throughput benchmark races synchronous READs against the 1ms
# snapshot fan-out, so short windows are noisy at 64 subscribers; 3s
# per benchmark keeps the committed numbers representative. The
# FanoutInterest benchmark rides along, tracking bytes/sub-tick for
# the v4 subscription shapes (broadcast vs interest-filtered vs
# event-projected vs delta) so a regression in the filtered fan-out's
# frame sizes shows up in the committed baseline.
go run ./cmd/benchjson -benchmem -benchtime 3s -out BENCH_server.json -bench 'Server|TickParallel' ./internal/server .
# Derived-metric engine costs: compiled-formula evaluation (the
# per-metric per-tick unit), the full engine tick, and the server's
# derived fan-out (evaluate + encode-once DERIVED frame across v3
# subscriber queues) — the numbers behind the "sub-microsecond per
# group, allocation-bounded" claim in DESIGN.md S29.
go run ./cmd/benchjson -benchmem -out BENCH_derive.json -bench 'DeriveEval|EngineTick|DerivedFanout' ./internal/derive ./internal/server
# Telemetry instrument costs: counter increment and histogram Observe
# (the per-request overhead added to every wire op), summary
# extraction, and a full Prometheus scrape.
go run ./cmd/benchjson -benchmem -out BENCH_telemetry.json -bench 'Telemetry|PrometheusScrape' ./internal/telemetry
# Flight-recorder costs: the raw span-engine operations (trace
# start/finish, span open/close, annotate, retention-ring insert) and
# the paired traced-vs-untraced 256-session tick sweep — the overhead
# evidence behind DESIGN.md S32's claim that default 1/64 sampling
# stays within run-to-run noise.
go run ./cmd/benchjson -benchmem -benchtime 3s -out BENCH_trace.json -bench 'Trace' ./internal/telemetry/tracing ./internal/server
