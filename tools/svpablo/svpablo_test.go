package svpablo

import (
	"strings"
	"testing"

	"repro/papi"
	"repro/workload"
)

func TestPerProcessorStatistics(t *testing.T) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformAIXPower3})
	b := New(papi.FP_OPS, papi.TOT_CYC)
	if err := b.Define(Construct{Name: "solve_loop", File: "solver.f90", Line: 42}); err != nil {
		t.Fatal(err)
	}
	if err := b.Define(Construct{Name: "io_loop", File: "io.f90", Line: 17}); err != nil {
		t.Fatal(err)
	}
	if err := b.Define(Construct{Name: "solve_loop"}); err == nil {
		t.Error("duplicate construct accepted")
	}
	if err := b.Define(Construct{}); err == nil {
		t.Error("unnamed construct accepted")
	}

	// Three "processors" with imbalanced work in solve_loop.
	sizes := []int{16, 16, 32}
	for p, size := range sizes {
		var th *papi.Thread
		var err error
		if p == 0 {
			th = sys.Main()
		} else if th, err = sys.NewThread(); err != nil {
			t.Fatal(err)
		}
		ins, err := b.Instrument(th)
		if err != nil {
			t.Fatal(err)
		}
		if err := ins.Enter("solve_loop"); err != nil {
			t.Fatal(err)
		}
		th.Run(workload.MatMul(workload.MatMulConfig{N: size, UseFMA: true}))
		if err := ins.Exit("solve_loop"); err != nil {
			t.Fatal(err)
		}
		if err := ins.Enter("io_loop"); err != nil {
			t.Fatal(err)
		}
		th.Run(workload.Triad(workload.TriadConfig{N: 1000}))
		if err := ins.Exit("io_loop"); err != nil {
			t.Fatal(err)
		}
		if err := ins.Close(); err != nil {
			t.Fatal(err)
		}
	}

	cells, err := b.Cells("solve_loop")
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("%d cells", len(cells))
	}
	// 2·N³ FLOPs per processor.
	for i, want := range []int64{8192, 8192, 65536} {
		if cells[i].Values[0] != want {
			t.Errorf("proc %d solve FP_OPS = %d, want %d", i, cells[i].Values[0], want)
		}
		if cells[i].Count != 1 || cells[i].Usec == 0 {
			t.Errorf("proc %d cell %+v", i, cells[i])
		}
	}

	aggs, err := b.Summarize(0)
	if err != nil {
		t.Fatal(err)
	}
	if aggs[0].Construct.Name != "solve_loop" {
		t.Errorf("hottest construct %q", aggs[0].Construct.Name)
	}
	a := aggs[0]
	if a.Min != 8192 || a.Max != 65536 {
		t.Errorf("min/max %d/%d", a.Min, a.Max)
	}
	wantMean := float64(8192+8192+65536) / 3
	if a.Mean != wantMean {
		t.Errorf("mean %.1f, want %.1f", a.Mean, wantMean)
	}
	if a.Imbalance < 2.0 || a.Imbalance > 2.5 {
		t.Errorf("imbalance %.2f, want ~2.4 (one processor does 4x the work)", a.Imbalance)
	}
	// io_loop is balanced.
	for _, agg := range aggs {
		if agg.Construct.Name == "io_loop" && (agg.Imbalance < 0.99 || agg.Imbalance > 1.01) {
			t.Errorf("io imbalance %.3f, want 1.0", agg.Imbalance)
		}
	}
	rep, err := b.Report(0)
	if err != nil || !strings.Contains(rep, "solver.f90:42") || !strings.Contains(rep, "IMBALANCE") {
		t.Errorf("report:\n%s err=%v", rep, err)
	}
}

func TestConstructDiscipline(t *testing.T) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformCrayT3E})
	b := New(papi.FP_INS)
	b.Define(Construct{Name: "a", File: "f", Line: 1})
	b.Define(Construct{Name: "b", File: "f", Line: 2})
	ins, err := b.Instrument(sys.Main())
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.Enter("ghost"); err == nil {
		t.Error("undefined construct accepted")
	}
	if err := ins.Exit("a"); err == nil {
		t.Error("exit without enter accepted")
	}
	if err := ins.Enter("a"); err != nil {
		t.Fatal(err)
	}
	if err := ins.Enter("a"); err == nil {
		t.Error("re-enter accepted")
	}
	// Overlapping different constructs is fine (SvPablo constructs are
	// independent statements/loops, not a call stack).
	if err := ins.Enter("b"); err != nil {
		t.Fatal(err)
	}
	if err := ins.Close(); err == nil {
		t.Error("close with open constructs accepted")
	}
	ins.Exit("a")
	ins.Exit("b")
	if err := ins.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Cells("ghost"); err == nil {
		t.Error("cells of undefined construct accepted")
	}
	if _, err := b.Summarize(5); err == nil {
		t.Error("bad metric index accepted")
	}
}

func TestMultipleEntriesAccumulate(t *testing.T) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformCrayT3E})
	b := New(papi.FP_INS)
	b.Define(Construct{Name: "body", File: "k.c", Line: 9})
	ins, err := b.Instrument(sys.Main())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		ins.Enter("body")
		sys.Main().Run(workload.Triad(workload.TriadConfig{N: 100}))
		ins.Exit("body")
	}
	ins.Close()
	cells, _ := b.Cells("body")
	if cells[0].Count != 4 {
		t.Errorf("count = %d", cells[0].Count)
	}
	if cells[0].Values[0] != 800 { // 4 × 200 FP
		t.Errorf("FP = %d, want 800", cells[0].Values[0])
	}
}
