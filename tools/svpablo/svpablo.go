// Package svpablo reproduces the role of SvPablo in the paper's §3: a
// source-code-oriented performance browser whose library "maintains
// statistics on the execution of each instrumented event on each
// processor and maps these statistics to constructs in the original
// source code", with hardware event counts obtained through PAPI.
//
// Constructs (loops, statements, routine bodies) are registered with
// source coordinates; each processor (rank/thread) records per-
// construct counter statistics; the browser view aggregates across
// processors into min/mean/max — the load-balance summary SvPablo
// colours source lines with.
package svpablo

import (
	"fmt"
	"sort"
	"strings"

	"repro/papi"
)

// Construct is one instrumented source construct.
type Construct struct {
	Name string
	File string
	Line int
}

// Instrumenter records statistics for one processor (one thread).
type Instrumenter struct {
	b   *Browser
	th  *papi.Thread
	es  *papi.EventSet
	buf []int64
	pid int

	open map[string]snapshot
}

type snapshot struct {
	usec uint64
	vals []int64
}

// stat accumulates one (construct, processor) cell.
type stat struct {
	count uint64
	usec  uint64
	vals  []int64
}

// Browser owns the constructs, the per-processor statistics, and the
// aggregated views.
type Browser struct {
	metrics    []papi.Event
	constructs map[string]Construct
	cells      map[string]map[int]*stat // construct → processor → stat
	nextPID    int
}

// New creates a browser profiling the given metrics per construct.
func New(metrics ...papi.Event) *Browser {
	return &Browser{
		metrics:    metrics,
		constructs: map[string]Construct{},
		cells:      map[string]map[int]*stat{},
	}
}

// Define registers an instrumentable construct.
func (b *Browser) Define(c Construct) error {
	if c.Name == "" {
		return fmt.Errorf("svpablo: construct needs a name")
	}
	if _, dup := b.constructs[c.Name]; dup {
		return fmt.Errorf("svpablo: construct %q already defined", c.Name)
	}
	b.constructs[c.Name] = c
	b.cells[c.Name] = map[int]*stat{}
	return nil
}

// Instrument binds a processor (thread) to the browser, starting its
// counters.
func (b *Browser) Instrument(th *papi.Thread) (*Instrumenter, error) {
	ins := &Instrumenter{
		b:    b,
		th:   th,
		buf:  make([]int64, len(b.metrics)),
		pid:  b.nextPID,
		open: map[string]snapshot{},
	}
	b.nextPID++
	if len(b.metrics) > 0 {
		es := th.NewEventSet()
		if err := es.AddAll(b.metrics...); err != nil {
			return nil, err
		}
		if err := es.Start(); err != nil {
			return nil, err
		}
		ins.es = es
	}
	return ins, nil
}

// Close stops the processor's counters.
func (ins *Instrumenter) Close() error {
	if len(ins.open) != 0 {
		return fmt.Errorf("svpablo: %d constructs still open", len(ins.open))
	}
	if ins.es != nil {
		return ins.es.Stop(nil)
	}
	return nil
}

func (ins *Instrumenter) read() (uint64, []int64, error) {
	t := ins.th.VirtUsec()
	if ins.es == nil {
		return t, nil, nil
	}
	if err := ins.es.Read(ins.buf); err != nil {
		return 0, nil, err
	}
	return t, append([]int64(nil), ins.buf...), nil
}

// Enter marks the start of one execution of a construct. Unlike TAU's
// stack discipline, SvPablo constructs are independent: overlapping
// enters of *different* constructs are fine, re-entering the same one
// is not.
func (ins *Instrumenter) Enter(name string) error {
	if _, ok := ins.b.constructs[name]; !ok {
		return fmt.Errorf("svpablo: construct %q not defined", name)
	}
	if _, open := ins.open[name]; open {
		return fmt.Errorf("svpablo: construct %q already open on processor %d", name, ins.pid)
	}
	t, vals, err := ins.read()
	if err != nil {
		return err
	}
	ins.open[name] = snapshot{usec: t, vals: vals}
	return nil
}

// Exit marks the end of one execution of a construct.
func (ins *Instrumenter) Exit(name string) error {
	snap, open := ins.open[name]
	if !open {
		return fmt.Errorf("svpablo: construct %q not open on processor %d", name, ins.pid)
	}
	delete(ins.open, name)
	t, vals, err := ins.read()
	if err != nil {
		return err
	}
	cell := ins.b.cells[name][ins.pid]
	if cell == nil {
		cell = &stat{vals: make([]int64, len(ins.b.metrics))}
		ins.b.cells[name][ins.pid] = cell
	}
	cell.count++
	cell.usec += t - snap.usec
	for i := range vals {
		cell.vals[i] += vals[i] - snap.vals[i]
	}
	return nil
}

// Cell is one (construct, processor) statistic.
type Cell struct {
	Processor int
	Count     uint64
	Usec      uint64
	Values    []int64
}

// Cells returns a construct's per-processor statistics, by processor.
func (b *Browser) Cells(name string) ([]Cell, error) {
	cells, ok := b.cells[name]
	if !ok {
		return nil, fmt.Errorf("svpablo: construct %q not defined", name)
	}
	out := make([]Cell, 0, len(cells))
	for pid, st := range cells {
		out = append(out, Cell{Processor: pid, Count: st.count, Usec: st.usec,
			Values: append([]int64(nil), st.vals...)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Processor < out[j].Processor })
	return out, nil
}

// Aggregate is a construct's cross-processor summary for one metric:
// SvPablo's load-balance colouring data.
type Aggregate struct {
	Construct  Construct
	Processors int
	Min, Max   int64
	Mean       float64
	Imbalance  float64 // max/mean; 1.0 = perfectly balanced
}

// Summarize aggregates one metric (by index) across processors for
// every construct, sorted by mean descending.
func (b *Browser) Summarize(metricIndex int) ([]Aggregate, error) {
	if metricIndex < 0 || metricIndex >= len(b.metrics) {
		return nil, fmt.Errorf("svpablo: metric index %d out of range", metricIndex)
	}
	var out []Aggregate
	for name, c := range b.constructs {
		cells := b.cells[name]
		if len(cells) == 0 {
			continue
		}
		agg := Aggregate{Construct: c, Processors: len(cells)}
		var sum int64
		first := true
		for _, st := range cells {
			v := st.vals[metricIndex]
			if first {
				agg.Min, agg.Max = v, v
				first = false
			}
			if v < agg.Min {
				agg.Min = v
			}
			if v > agg.Max {
				agg.Max = v
			}
			sum += v
		}
		agg.Mean = float64(sum) / float64(len(cells))
		if agg.Mean != 0 {
			agg.Imbalance = float64(agg.Max) / agg.Mean
		}
		out = append(out, agg)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Mean != out[j].Mean {
			return out[i].Mean > out[j].Mean
		}
		return out[i].Construct.Name < out[j].Construct.Name
	})
	return out, nil
}

// Report renders the browser view for one metric: construct, source
// coordinate, processor spread.
func (b *Browser) Report(metricIndex int) (string, error) {
	aggs, err := b.Summarize(metricIndex)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "metric: %s\n", papi.EventName(b.metrics[metricIndex]))
	fmt.Fprintf(&sb, "%-16s %-18s %6s %12s %12s %12s %9s\n",
		"CONSTRUCT", "SOURCE", "PROCS", "MIN", "MEAN", "MAX", "IMBALANCE")
	for _, a := range aggs {
		fmt.Fprintf(&sb, "%-16s %-18s %6d %12d %12.1f %12d %9.2f\n",
			a.Construct.Name, fmt.Sprintf("%s:%d", a.Construct.File, a.Construct.Line),
			a.Processors, a.Min, a.Mean, a.Max, a.Imbalance)
	}
	return sb.String(), nil
}
