// Package hpcview reproduces the role of HPCView in the paper's §3: it
// combines several source-line profiles — each collected with a
// different hardware metric — into one database, computes derived
// columns (event-based ratios such as misses per access or FLOPs per
// cycle), and reports the lines and files that dominate, because
// "correlations between profiles based on different events, as well as
// event-based ratios, provide derived information [used] to quickly
// identify and diagnose performance problems".
package hpcview

import (
	"fmt"
	"sort"
	"strings"

	"repro/tools/vprof"
)

// Database accumulates per-line values across metrics.
type Database struct {
	metrics []string
	derived map[string][2]string // name → numerator, denominator
	lines   map[vprof.SourceLoc][]float64
}

// New creates an empty profile database.
func New() *Database {
	return &Database{derived: map[string][2]string{}, lines: map[vprof.SourceLoc][]float64{}}
}

// Metrics returns the metric column names, base then derived, in add
// order.
func (d *Database) Metrics() []string {
	out := append([]string(nil), d.metrics...)
	for _, name := range d.derivedNames() {
		out = append(out, name)
	}
	return out
}

func (d *Database) derivedNames() []string {
	names := make([]string, 0, len(d.derived))
	for name := range d.derived {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// AddProfile ingests one metric's line profile (typically a vprof run;
// the values are overflow hits scaled by the profiling threshold, so
// pass the per-hit weight to keep columns comparable).
func (d *Database) AddProfile(metric string, weightPerHit float64, lines []vprof.LineHits) error {
	for _, m := range d.metrics {
		if m == metric {
			return fmt.Errorf("hpcview: metric %q already loaded", metric)
		}
	}
	idx := len(d.metrics)
	d.metrics = append(d.metrics, metric)
	for loc := range d.lines {
		d.lines[loc] = append(d.lines[loc], 0)
	}
	for _, lh := range lines {
		row, ok := d.lines[lh.Loc]
		if !ok {
			row = make([]float64, idx+1)
			d.lines[lh.Loc] = row
		} else if len(row) <= idx {
			row = append(row, 0)
			d.lines[lh.Loc] = row
		}
		row[idx] += float64(lh.Hits) * weightPerHit
	}
	return nil
}

// AddDerived registers a ratio column numer/denom over base metrics.
func (d *Database) AddDerived(name, numer, denom string) error {
	if d.indexOf(numer) < 0 || d.indexOf(denom) < 0 {
		return fmt.Errorf("hpcview: derived %q needs loaded metrics %q and %q", name, numer, denom)
	}
	if _, dup := d.derived[name]; dup {
		return fmt.Errorf("hpcview: derived %q already defined", name)
	}
	d.derived[name] = [2]string{numer, denom}
	return nil
}

func (d *Database) indexOf(metric string) int {
	for i, m := range d.metrics {
		if m == metric {
			return i
		}
	}
	return -1
}

// Row is one source line with all metric and derived values.
type Row struct {
	Loc    vprof.SourceLoc
	Values []float64 // base metrics then derived, in Metrics() order
}

// Rows returns per-line rows sorted descending by the named column,
// truncated to k (k <= 0 keeps everything).
func (d *Database) Rows(sortBy string, k int) ([]Row, error) {
	cols := d.Metrics()
	sortIdx := -1
	for i, c := range cols {
		if c == sortBy {
			sortIdx = i
		}
	}
	if sortIdx < 0 {
		return nil, fmt.Errorf("hpcview: unknown sort column %q (have %v)", sortBy, cols)
	}
	out := make([]Row, 0, len(d.lines))
	for loc, base := range d.lines {
		vals := make([]float64, 0, len(cols))
		for i := range d.metrics {
			if i < len(base) {
				vals = append(vals, base[i])
			} else {
				vals = append(vals, 0)
			}
		}
		for _, name := range d.derivedNames() {
			nd := d.derived[name]
			n, m := vals[d.indexOf(nd[0])], vals[d.indexOf(nd[1])]
			if m != 0 {
				vals = append(vals, n/m)
			} else {
				vals = append(vals, 0)
			}
		}
		out = append(out, Row{Loc: loc, Values: vals})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Values[sortIdx] != out[j].Values[sortIdx] {
			return out[i].Values[sortIdx] > out[j].Values[sortIdx]
		}
		if out[i].Loc.File != out[j].Loc.File {
			return out[i].Loc.File < out[j].Loc.File
		}
		return out[i].Loc.Line < out[j].Loc.Line
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// FileRow is a per-file rollup.
type FileRow struct {
	File   string
	Values []float64
}

// Files aggregates line rows to files (the top of HPCView's
// file→procedure→line hierarchy), sorted by the named column.
func (d *Database) Files(sortBy string) ([]FileRow, error) {
	rows, err := d.Rows(sortBy, 0)
	if err != nil {
		return nil, err
	}
	cols := d.Metrics()
	sums := map[string][]float64{}
	for _, r := range rows {
		acc, ok := sums[r.Loc.File]
		if !ok {
			acc = make([]float64, len(d.metrics))
			sums[r.Loc.File] = acc
		}
		for i := range d.metrics {
			acc[i] += r.Values[i]
		}
	}
	out := make([]FileRow, 0, len(sums))
	for file, base := range sums {
		vals := append([]float64(nil), base...)
		for _, name := range d.derivedNames() {
			nd := d.derived[name]
			n, m := vals[d.indexOf(nd[0])], vals[d.indexOf(nd[1])]
			if m != 0 {
				vals = append(vals, n/m)
			} else {
				vals = append(vals, 0)
			}
		}
		out = append(out, FileRow{File: file, Values: vals})
	}
	sortIdx := -1
	for i, c := range cols {
		if c == sortBy {
			sortIdx = i
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Values[sortIdx] != out[j].Values[sortIdx] {
			return out[i].Values[sortIdx] > out[j].Values[sortIdx]
		}
		return out[i].File < out[j].File
	})
	return out, nil
}

// Report renders the top-k lines sorted by a column.
func (d *Database) Report(sortBy string, k int) (string, error) {
	rows, err := d.Rows(sortBy, k)
	if err != nil {
		return "", err
	}
	cols := d.Metrics()
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s", "SOURCE LINE")
	for _, c := range cols {
		fmt.Fprintf(&b, " %14s", c)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s", r.Loc)
		for _, v := range r.Values {
			fmt.Fprintf(&b, " %14.2f", v)
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}
