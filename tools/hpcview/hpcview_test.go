package hpcview

import (
	"strings"
	"testing"

	"repro/papi"
	"repro/tools/vprof"
	"repro/workload"
)

func loc(file string, line int) vprof.SourceLoc { return vprof.SourceLoc{File: file, Line: line} }

func TestDatabaseAndDerived(t *testing.T) {
	d := New()
	if err := d.AddProfile("FP_OPS", 1, []vprof.LineHits{
		{Loc: loc("a.c", 10), Hits: 100},
		{Loc: loc("a.c", 11), Hits: 50},
		{Loc: loc("b.c", 5), Hits: 10},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddProfile("CYCLES", 1, []vprof.LineHits{
		{Loc: loc("a.c", 10), Hits: 200},
		{Loc: loc("a.c", 11), Hits: 400},
		{Loc: loc("c.c", 1), Hits: 30}, // line with no FP profile
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddProfile("FP_OPS", 1, nil); err == nil {
		t.Error("duplicate metric accepted")
	}
	if err := d.AddDerived("FLOP/CYC", "FP_OPS", "CYCLES"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddDerived("FLOP/CYC", "FP_OPS", "CYCLES"); err == nil {
		t.Error("duplicate derived accepted")
	}
	if err := d.AddDerived("x", "NOPE", "CYCLES"); err == nil {
		t.Error("derived over unknown metric accepted")
	}
	cols := d.Metrics()
	if len(cols) != 3 || cols[2] != "FLOP/CYC" {
		t.Fatalf("columns %v", cols)
	}
	rows, err := d.Rows("FLOP/CYC", 0)
	if err != nil {
		t.Fatal(err)
	}
	// a.c:10 has ratio 0.5, a.c:11 has 0.125; c.c:1 has 0.
	if rows[0].Loc != loc("a.c", 10) {
		t.Errorf("hottest by ratio = %v", rows[0].Loc)
	}
	if rows[0].Values[2] != 0.5 {
		t.Errorf("ratio = %v", rows[0].Values)
	}
	// Sorting by a base metric.
	rows, _ = d.Rows("CYCLES", 2)
	if len(rows) != 2 || rows[0].Loc != loc("a.c", 11) {
		t.Errorf("by cycles: %v", rows)
	}
	if _, err := d.Rows("BOGUS", 0); err == nil {
		t.Error("unknown sort column accepted")
	}
	// File rollup: a.c has 150 FP / 600 cycles → 0.25 ratio.
	files, err := d.Files("FP_OPS")
	if err != nil {
		t.Fatal(err)
	}
	if files[0].File != "a.c" || files[0].Values[0] != 150 {
		t.Errorf("file rollup %v", files)
	}
	if files[0].Values[2] != 0.25 {
		t.Errorf("file ratio %v", files[0].Values)
	}
	rep, err := d.Report("FP_OPS", 2)
	if err != nil || !strings.Contains(rep, "a.c:10") || !strings.Contains(rep, "FLOP/CYC") {
		t.Errorf("report:\n%s err=%v", rep, err)
	}
}

func TestEndToEndWithVprof(t *testing.T) {
	// Two vprof runs over the same deterministic kernel with different
	// metrics, combined into miss-per-access derived data.
	prog := workload.Triad(workload.TriadConfig{N: 65536})
	buildMap := func() *vprof.SourceMap {
		var sm vprof.SourceMap
		if err := sm.Add(prog.Regions()[0], "triad.c", 1, 1); err != nil {
			t.Fatal(err)
		}
		return &sm
	}
	profile := func(ev papi.Event, threshold uint64) []vprof.LineHits {
		sys := papi.MustInit(papi.Options{Platform: papi.PlatformCrayT3E})
		p, err := vprof.New(sys.Main(), ev, threshold, buildMap())
		if err != nil {
			t.Fatal(err)
		}
		prog.Reset()
		if err := p.Run(prog); err != nil {
			t.Fatal(err)
		}
		return p.Lines()
	}
	d := New()
	if err := d.AddProfile("L1_DCA", 64, profile(papi.L1_DCA, 64)); err != nil {
		t.Fatal(err)
	}
	if err := d.AddProfile("L1_DCM", 64, profile(papi.L1_DCM, 64)); err != nil {
		t.Fatal(err)
	}
	if err := d.AddDerived("MISS_RATE", "L1_DCM", "L1_DCA"); err != nil {
		t.Fatal(err)
	}
	rows, err := d.Rows("MISS_RATE", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Triad misses every 4th element (32B lines / 8B stride): the
	// hottest miss-rate line should be a load/store line with rate
	// in a plausible band.
	top := rows[0]
	if top.Values[2] <= 0.05 || top.Values[2] > 1.0 {
		t.Errorf("top miss rate %.3f implausible (row %+v)", top.Values[2], top)
	}
	if top.Loc.File != "triad.c" {
		t.Errorf("top line %v", top.Loc)
	}
}
