package model

import (
	"strings"
	"testing"

	"repro/papi"
	"repro/workload"
)

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] < 0.999 || x[0] > 1.001 || x[1] < 2.999 || x[1] > 3.001 {
		t.Errorf("solve = %v, want [1 3]", x)
	}
	// Singular system.
	if _, err := solve([][]float64{{1, 1}, {2, 2}}, []float64{1, 2}); err == nil {
		t.Error("singular matrix accepted")
	}
}

func TestFitRecoversExactLinearModel(t *testing.T) {
	// Synthetic data generated from known coefficients.
	events := []papi.Event{papi.TOT_INS, papi.L1_DCM}
	truth := []float64{1.5, 60}
	var samples []Sample
	for i := 1; i <= 6; i++ {
		f := []float64{float64(1000 * i), float64(10 * i * i)}
		samples = append(samples, Sample{
			Name:     "synthetic",
			Features: f,
			Response: truth[0]*f[0] + truth[1]*f[1],
		})
	}
	m, err := Fit(events, samples)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range truth {
		if m.Coef[i] < want*0.999 || m.Coef[i] > want*1.001 {
			t.Errorf("coef %d = %.4f, want %.4f", i, m.Coef[i], want)
		}
	}
	if !strings.Contains(m.String(), "TOT_INS") {
		t.Errorf("String() = %q", m.String())
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, nil); err == nil {
		t.Error("no events accepted")
	}
	if _, err := Fit([]papi.Event{papi.TOT_INS}, nil); err == nil {
		t.Error("no samples accepted")
	}
	bad := []Sample{{Features: []float64{1, 2}, Response: 3}}
	if _, err := Fit([]papi.Event{papi.TOT_INS}, bad); err == nil {
		t.Error("feature-length mismatch accepted")
	}
	m := &Model{Events: []papi.Event{papi.TOT_INS}, Coef: []float64{1}}
	if _, err := m.Predict([]float64{1, 2}); err == nil {
		t.Error("predict length mismatch accepted")
	}
}

// TestPredictHeldOutWorkloads is the §5 scenario end to end: fit a
// cycle model on counter measurements of training kernels, then
// predict the runtime of programs the model never saw.
func TestPredictHeldOutWorkloads(t *testing.T) {
	// POWER3 exposes every instruction-class counter the simulator's
	// cost model uses, so a linear model is well-specified.
	col := &Collector{
		Platform: papi.PlatformAIXPower3,
		Events: []papi.Event{
			papi.TOT_INS, papi.FP_INS, papi.FDV_INS, papi.LD_INS,
			papi.L1_DCM, papi.L2_TCM, papi.TLB_DM, papi.BR_MSP, papi.L1_ICM,
		},
		Response: papi.TOT_CYC,
	}
	training := []workload.Program{
		workload.Triad(workload.TriadConfig{N: 8192, Reps: 2}),
		workload.Dot(workload.DotConfig{N: 30_000}),
		workload.Stencil(workload.StencilConfig{N: 96, Sweeps: 2}),
		workload.Branchy(workload.BranchyConfig{N: 40_000}),
		workload.GUPS(workload.GUPSConfig{TableWords: 1 << 16, Updates: 80_000}),
		workload.MixedPrecision(workload.MixedPrecisionConfig{N: 30_000}),
		workload.PointerChase(workload.ChaseConfig{Nodes: 1 << 13, Steps: 60_000}),
		workload.Triad(workload.TriadConfig{N: 512, Reps: 40}),
		workload.Stencil(workload.StencilConfig{N: 24, Sweeps: 30}),
		workload.Dot(workload.DotConfig{N: 3_000}),
		// Cover the divide and FMA dimensions, otherwise those
		// coefficients are undetermined (singular design).
		workload.LU(workload.LUConfig{N: 28}),
		workload.MatMul(workload.MatMulConfig{N: 20, UseFMA: true}),
	}
	var samples []Sample
	for _, prog := range training {
		s, err := col.Measure(prog)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, s)
	}
	m, err := Fit(col.Events, samples)
	if err != nil {
		t.Fatal(err)
	}

	// In-sample fit should be tight.
	evs, err := m.Evaluate(samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evs {
		if e.RelErr > 0.10 {
			t.Errorf("training %s: rel err %.3f", e.Name, e.RelErr)
		}
	}

	// Held-out programs with very different shapes.
	heldOut := []workload.Program{
		workload.MatMul(workload.MatMulConfig{N: 48}),
		workload.LU(workload.LUConfig{N: 40}),
	}
	for _, prog := range heldOut {
		s, err := col.Measure(prog)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := m.Predict(s.Features)
		if err != nil {
			t.Fatal(err)
		}
		rel := pred/s.Response - 1
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.15 {
			t.Errorf("%s: predicted %.0f cycles, actual %.0f (rel err %.1f%%)",
				s.Name, pred, s.Response, rel*100)
		}
	}
}
