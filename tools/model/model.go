// Package model implements the §5 future-work collaboration: "using
// PAPI to collect data for parameterizing predictive performance
// models" (the Snavely et al. framework the paper cites). A Model is a
// linear predictor of a response counter (typically cycles) from a set
// of explanatory counters (instruction classes, cache and TLB misses,
// mispredicts): fit it on counter measurements of training kernels,
// then predict the runtime of unseen programs from their counters
// alone.
package model

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/papi"
	"repro/workload"
)

// Sample is one program's measurement: explanatory counter values and
// the observed response.
type Sample struct {
	Name     string
	Features []float64
	Response float64
}

// Model is a fitted linear predictor.
type Model struct {
	Events []papi.Event // explanatory counters, in coefficient order
	Coef   []float64    // one per event; no intercept (zero work = zero cycles)
}

// Fit solves the least-squares problem over the samples. It needs at
// least as many samples as features and a non-singular design.
func Fit(events []papi.Event, samples []Sample) (*Model, error) {
	n := len(events)
	if n == 0 {
		return nil, fmt.Errorf("model: no explanatory events")
	}
	if len(samples) < n {
		return nil, fmt.Errorf("model: %d samples cannot determine %d coefficients", len(samples), n)
	}
	// Normal equations: (AᵀA) x = Aᵀb.
	ata := make([][]float64, n)
	for i := range ata {
		ata[i] = make([]float64, n)
	}
	atb := make([]float64, n)
	for _, s := range samples {
		if len(s.Features) != n {
			return nil, fmt.Errorf("model: sample %q has %d features, want %d", s.Name, len(s.Features), n)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				ata[i][j] += s.Features[i] * s.Features[j]
			}
			atb[i] += s.Features[i] * s.Response
		}
	}
	coef, err := solve(ata, atb)
	if err != nil {
		return nil, err
	}
	return &Model{Events: append([]papi.Event(nil), events...), Coef: coef}, nil
}

// solve performs Gaussian elimination with partial pivoting.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot.
		best, bestAbs := col, math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(a[r][col]); abs > bestAbs {
				best, bestAbs = r, abs
			}
		}
		if bestAbs < 1e-9 {
			return nil, fmt.Errorf("model: singular design matrix (collinear or missing counters)")
		}
		a[col], a[best] = a[best], a[col]
		b[col], b[best] = b[best], b[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// Predict evaluates the model on a feature vector.
func (m *Model) Predict(features []float64) (float64, error) {
	if len(features) != len(m.Coef) {
		return 0, fmt.Errorf("model: %d features, want %d", len(features), len(m.Coef))
	}
	var y float64
	for i, f := range features {
		y += m.Coef[i] * f
	}
	return y, nil
}

// String renders the fitted coefficients.
func (m *Model) String() string {
	var b strings.Builder
	b.WriteString("cycles ≈")
	for i, ev := range m.Events {
		if i > 0 {
			b.WriteString(" +")
		}
		fmt.Fprintf(&b, " %.3f·%s", m.Coef[i], strings.TrimPrefix(papi.EventName(ev), "PAPI_"))
	}
	return b.String()
}

// Collector measures programs' counters for model building. Counter
// sets that exceed the hardware are split across repeated runs of the
// deterministic program — the multiple-run methodology tools of the
// era used for exactly this.
type Collector struct {
	Platform string
	Events   []papi.Event
	Response papi.Event // typically papi.TOT_CYC
}

// Measure runs the program (repeatedly, one run per event) and returns
// its feature vector and response.
func (c *Collector) Measure(prog workload.Program) (Sample, error) {
	all := append(append([]papi.Event(nil), c.Events...), c.Response)
	values := make([]float64, len(all))
	for i, ev := range all {
		sys, err := papi.Init(papi.Options{Platform: c.Platform})
		if err != nil {
			return Sample{}, err
		}
		th := sys.Main()
		es := th.NewEventSet()
		if err := es.Add(ev); err != nil {
			return Sample{}, fmt.Errorf("model: measuring %s: %w", papi.EventName(ev), err)
		}
		// Exclude the library's own overhead: the model describes the
		// application, not the instrumentation.
		if err := es.SetDomain(papi.DOM_USER); err != nil {
			return Sample{}, err
		}
		prog.Reset()
		if err := es.Start(); err != nil {
			return Sample{}, err
		}
		th.Run(prog)
		vals := make([]int64, 1)
		if err := es.Stop(vals); err != nil {
			return Sample{}, err
		}
		values[i] = float64(vals[0])
	}
	return Sample{
		Name:     prog.Name(),
		Features: values[:len(c.Events)],
		Response: values[len(c.Events)],
	}, nil
}

// Evaluation is a per-program prediction assessment.
type Evaluation struct {
	Name      string
	Actual    float64
	Predicted float64
	RelErr    float64
}

// Evaluate predicts each sample and reports the relative errors,
// sorted by name.
func (m *Model) Evaluate(samples []Sample) ([]Evaluation, error) {
	out := make([]Evaluation, 0, len(samples))
	for _, s := range samples {
		p, err := m.Predict(s.Features)
		if err != nil {
			return nil, err
		}
		ev := Evaluation{Name: s.Name, Actual: s.Response, Predicted: p}
		if s.Response != 0 {
			ev.RelErr = math.Abs(p-s.Response) / s.Response
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
