package perfometer

import (
	"fmt"
	"io"

	"repro/internal/tsdb"
)

// History mode: instead of watching live ticks, the frontend renders a
// range queried from papid's embedded time-series store — the viewer a
// late-attaching tool uses when the interesting phase already happened.
// The papid QUERY op returns per-event bucket series
// (min/max/sum/count/last per window, see tsdb.Query); ConsumeHistory
// folds one such series into the frontend's point stream so the whole
// live-mode rendering surface (Sparkline, MaxRate, SectionMeanRate)
// works unchanged on history.

// ConsumeHistory appends a queried series to the frontend as points.
// Each bucket becomes one point: Total is the counter's last value in
// the window, Rate the per-second increase since the previous window,
// and Section the event name — so multi-event history renders like a
// sectioned live trace. It returns the number of points added.
func (f *Frontend) ConsumeHistory(sr tsdb.Series) int {
	var prev *tsdb.Bucket
	for i := range sr.Buckets {
		bk := &sr.Buckets[i]
		var rate float64
		switch {
		case prev != nil && bk.Start > prev.Start:
			rate = float64(bk.Last-prev.Last) / float64(bk.Start-prev.Start) * 1e6
		case sr.Width > 0 && bk.Count > 1:
			// First bucket: only the within-window rise is known.
			rate = float64(bk.Last-bk.Min) / float64(sr.Width) * 1e6
		}
		f.Points = append(f.Points, Point{
			Seq:      len(f.Points),
			RealUsec: uint64(bk.Start),
			Total:    bk.Last,
			Rate:     rate,
			Section:  sr.Event,
		})
		prev = bk
	}
	return len(sr.Buckets)
}

// RenderHistory writes the standard history report for a set of
// queried series: per-event sparkline, peak and mean rates, and the
// window count — the terminal stand-in for scrolling back through
// Figure 2's trace.
func RenderHistory(w io.Writer, series []tsdb.Series, width int) {
	for _, sr := range series {
		f := &Frontend{}
		f.ConsumeHistory(sr)
		res := "raw"
		if sr.Width > 0 {
			res = fmt.Sprintf("%gs rollup", float64(sr.Width)/1e6)
		}
		fmt.Fprintf(w, "%s: %d windows (%s)\n", sr.Event, len(sr.Buckets), res)
		fmt.Fprintf(w, "  %s\n", f.Sparkline(width))
		fmt.Fprintf(w, "  peak %.3g M/s, mean %.3g M/s, last total %d\n",
			f.MaxRate()/1e6, f.SectionMeanRate()[sr.Event]/1e6,
			sr.Buckets[len(sr.Buckets)-1].Last)
	}
}
