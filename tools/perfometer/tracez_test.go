package perfometer

import (
	"strings"
	"testing"

	"repro/internal/telemetry/tracing"
)

func TestRenderTracez(t *testing.T) {
	var sb strings.Builder
	RenderTracez(&sb, TracezDoc{
		Stats: tracing.Stats{Started: 100, Retained: 3, KeptSlow: 1, KeptErr: 1,
			Ring: 64, Sample: 64, SlowNS: 250_000_000},
		Traces: []tracing.Summary{
			{ID: "00000000000000ff", Kind: "tick", Name: "tick",
				DurNS: 3_000_000, Spans: 40, Retained: "slow"},
			{ID: "0000000000000a01", Kind: "request", Name: "PUBLISH",
				DurNS: 900_000, Spans: 5, Retained: "error", Err: "bad payload"},
		},
	})
	out := sb.String()
	for _, want := range []string{
		"100 started", "3 retained", "sampling 1/64", "ring 64", "250ms",
		"00000000000000ff", "tick", "slow",
		"0000000000000a01", "PUBLISH", "error", "bad payload",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tracez view lacks %q:\n%s", want, out)
		}
	}
	// Slowest first, as served: the 3ms tick row precedes the 900µs
	// request row.
	if strings.Index(out, "00000000000000ff") > strings.Index(out, "0000000000000a01") {
		t.Errorf("rows not slowest-first:\n%s", out)
	}
}

func TestRenderTracezDisabled(t *testing.T) {
	var sb strings.Builder
	RenderTracez(&sb, TracezDoc{})
	if !strings.Contains(sb.String(), "tracing disabled") {
		t.Errorf("no hint for -trace-sample 0 servers:\n%s", sb.String())
	}
}

func TestRenderTracezEmptyRing(t *testing.T) {
	var sb strings.Builder
	RenderTracez(&sb, TracezDoc{Stats: tracing.Stats{Sample: 64, Ring: 64}})
	if !strings.Contains(sb.String(), "no retained traces yet") {
		t.Errorf("no hint for an empty ring:\n%s", sb.String())
	}
}
