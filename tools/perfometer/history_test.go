package perfometer

import (
	"strings"
	"testing"

	"repro/internal/tsdb"
)

func historySeries() tsdb.Series {
	// A counter rising 1M/s for three 10s windows, then stalling.
	return tsdb.Series{
		Event: "PAPI_FP_OPS",
		Width: 10_000_000,
		Buckets: []tsdb.Bucket{
			{Start: 0, Count: 200, Min: 50_000, Max: 10_000_000, Sum: 1e9, Last: 10_000_000},
			{Start: 10_000_000, Count: 200, Min: 10_050_000, Max: 20_000_000, Sum: 3e9, Last: 20_000_000},
			{Start: 20_000_000, Count: 200, Min: 20_050_000, Max: 30_000_000, Sum: 5e9, Last: 30_000_000},
			{Start: 30_000_000, Count: 200, Min: 30_000_000, Max: 30_000_000, Sum: 6e9, Last: 30_000_000},
		},
	}
}

func TestConsumeHistory(t *testing.T) {
	f := &Frontend{}
	if n := f.ConsumeHistory(historySeries()); n != 4 {
		t.Fatalf("consumed %d points, want 4", n)
	}
	if len(f.Points) != 4 {
		t.Fatalf("%d points", len(f.Points))
	}
	// Steady windows rate at ~1M/s; the stalled window drops to 0.
	for i := 1; i <= 2; i++ {
		if r := f.Points[i].Rate; r < 0.9e6 || r > 1.1e6 {
			t.Errorf("point %d rate %.0f, want ~1M/s", i, r)
		}
	}
	if r := f.Points[3].Rate; r != 0 {
		t.Errorf("stalled window rate %.0f, want 0", r)
	}
	// First bucket estimates rate from its own rise.
	if r := f.Points[0].Rate; r < 0.9e6 || r > 1.1e6 {
		t.Errorf("first-window rate %.0f, want ~1M/s", r)
	}
	if f.Points[2].Total != 30_000_000 || f.Points[2].Section != "PAPI_FP_OPS" {
		t.Errorf("point 2 = %+v", f.Points[2])
	}
	// The live-mode surface works on history points.
	if f.MaxRate() == 0 || f.Sparkline(10) == "" {
		t.Error("frontend rendering broken on history points")
	}
	if secs := f.Sections(); len(secs) != 1 || secs[0] != "PAPI_FP_OPS" {
		t.Errorf("sections %v", secs)
	}
}

func TestRenderHistory(t *testing.T) {
	var b strings.Builder
	RenderHistory(&b, []tsdb.Series{historySeries()}, 20)
	out := b.String()
	for _, want := range []string{"PAPI_FP_OPS", "4 windows", "10s rollup", "last total 30000000"} {
		if !strings.Contains(out, want) {
			t.Errorf("history report missing %q:\n%s", want, out)
		}
	}
}

func TestConsumeHistoryRaw(t *testing.T) {
	f := &Frontend{}
	f.ConsumeHistory(tsdb.Series{Event: "E", Width: 0, Buckets: []tsdb.Bucket{
		{Start: 1_000_000, Count: 1, Min: 10, Max: 10, Sum: 10, Last: 10},
		{Start: 2_000_000, Count: 1, Min: 30, Max: 30, Sum: 30, Last: 30},
	}})
	if f.Points[0].Rate != 0 {
		t.Errorf("first raw point rate %.0f, want 0 (no window to estimate from)", f.Points[0].Rate)
	}
	if f.Points[1].Rate != 20 {
		t.Errorf("raw rate %.0f, want 20/s", f.Points[1].Rate)
	}
}
