package perfometer

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/wire"
)

// Derived-metric rendering: papid's QUERY derive mode and the live
// DERIVED stream answer in finished metrics (IPC, MB/s, miss ratios)
// rather than raw counter totals, so unlike ConsumeHistory there is no
// counter-to-rate folding here — the values themselves are the trace.

// SparklineValues renders values as a max-scaled unicode sparkline of
// at most width glyphs, downsampling by averaging fixed-size windows
// exactly like Frontend.Sparkline does for rates.
func SparklineValues(vals []float64, width int) string {
	if len(vals) == 0 || width <= 0 {
		return ""
	}
	if len(vals) > width {
		out := make([]float64, width)
		for i := 0; i < width; i++ {
			lo, hi := i*len(vals)/width, (i+1)*len(vals)/width
			if hi == lo {
				hi = lo + 1
			}
			var sum float64
			for _, v := range vals[lo:hi] {
				sum += v
			}
			out[i] = sum / float64(hi-lo)
		}
		vals = out
	}
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	for _, v := range vals {
		lvl := int(math.Round(v / max * float64(len(sparkLevels)-1)))
		if lvl < 0 {
			lvl = 0
		}
		if lvl >= len(sparkLevels) {
			lvl = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[lvl])
	}
	return b.String()
}

// RenderDerived writes the derived-history report: per metric a
// sparkline plus min/mean/max/last in the metric's own unit — the
// answer-in-IPC view of the same range RenderHistory shows in raw
// counter buckets.
func RenderDerived(w io.Writer, series []wire.DerivedSeries, width int) {
	for _, sr := range series {
		vals := make([]float64, len(sr.Points))
		min, max, sum := math.Inf(1), math.Inf(-1), 0.0
		for i, p := range sr.Points {
			vals[i] = p.Value
			sum += p.Value
			min = math.Min(min, p.Value)
			max = math.Max(max, p.Value)
		}
		fmt.Fprintf(w, "%s [%s]: %d points\n", sr.Metric, sr.Unit, len(sr.Points))
		if len(sr.Points) == 0 {
			continue
		}
		fmt.Fprintf(w, "  %s\n", SparklineValues(vals, width))
		fmt.Fprintf(w, "  min %.4g, mean %.4g, max %.4g, last %.4g %s\n",
			min, sum/float64(len(vals)), max, vals[len(vals)-1], sr.Unit)
	}
}

// FormatDerivedFrame renders one live DERIVED frame as a single line
// for the watch mode: "seq 17: ipc 0.5 instr/cycle | mips 5.43 Minstr/s".
// The frame's parallel Metrics/Units/DValues arrays come straight off
// the wire; a length mismatch (a hostile or buggy server) degrades to
// printing what is there rather than panicking.
func FormatDerivedFrame(resp wire.Response) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seq %d:", resp.Seq)
	for i, v := range resp.DValues {
		name, unit := "?", ""
		if i < len(resp.Metrics) {
			name = resp.Metrics[i]
		}
		if i < len(resp.Units) {
			unit = " " + resp.Units[i]
		}
		if i > 0 {
			b.WriteString(" |")
		}
		fmt.Fprintf(&b, " %s %.4g%s", name, v, unit)
	}
	return b.String()
}
