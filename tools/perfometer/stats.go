package perfometer

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/tracing"
	"repro/internal/wire"
)

// RenderStats prints a papid STATS reply: the lifetime counter map,
// then — when the server is new enough to send them (protocol >= 3) —
// the latency-quantile table for the wire ops, fan-out tick, and tsdb.
// Per-op keys arrive as "op/<OP>/<codec>"; the single-word keys
// ("tick", "tsdb/append", "tsdb/query") are internal stages.
func RenderStats(w io.Writer, stats map[string]uint64, hists map[string]telemetry.Summary) {
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintln(w, "counters:")
	for _, k := range keys {
		fmt.Fprintf(w, "  %-24s %d\n", k, stats[k])
	}
	if len(hists) == 0 {
		fmt.Fprintln(w, "no latency histograms (papid predates protocol 3)")
		return
	}
	if t := telemetry.FormatSummaryTable(hists, func(k string) bool {
		return strings.HasPrefix(k, "op/")
	}); t != "" {
		fmt.Fprintf(w, "per-op wire latency:\n%s", t)
	}
	if t := telemetry.FormatSummaryTable(hists, func(k string) bool {
		return !strings.HasPrefix(k, "op/")
	}); t != "" {
		fmt.Fprintf(w, "internal stages:\n%s", t)
	}
}

// RenderSlow prints the server's recent SlowOp breaches (STATS
// resp.Slow, protocol >= 4), newest first. When the server runs the
// flight recorder each sample carries the trace ID its warn line
// logged — the handle /debug/trace?id= (or perfometer -tracez) takes.
// Silent for older servers and clean runs alike.
func RenderSlow(w io.Writer, slow []wire.SlowSample) {
	if len(slow) == 0 {
		return
	}
	fmt.Fprintln(w, "recent slow ops (newest first):")
	for _, s := range slow {
		fmt.Fprintf(w, "  %-12s session=%-6d %12s", s.Op, s.Session, time.Duration(s.NS))
		if s.TraceID != 0 {
			fmt.Fprintf(w, "  trace=%s", tracing.FormatID(s.TraceID))
		}
		fmt.Fprintln(w)
	}
}
