package perfometer

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/telemetry"
)

// RenderStats prints a papid STATS reply: the lifetime counter map,
// then — when the server is new enough to send them (protocol >= 3) —
// the latency-quantile table for the wire ops, fan-out tick, and tsdb.
// Per-op keys arrive as "op/<OP>/<codec>"; the single-word keys
// ("tick", "tsdb/append", "tsdb/query") are internal stages.
func RenderStats(w io.Writer, stats map[string]uint64, hists map[string]telemetry.Summary) {
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintln(w, "counters:")
	for _, k := range keys {
		fmt.Fprintf(w, "  %-24s %d\n", k, stats[k])
	}
	if len(hists) == 0 {
		fmt.Fprintln(w, "no latency histograms (papid predates protocol 3)")
		return
	}
	if t := telemetry.FormatSummaryTable(hists, func(k string) bool {
		return strings.HasPrefix(k, "op/")
	}); t != "" {
		fmt.Fprintf(w, "per-op wire latency:\n%s", t)
	}
	if t := telemetry.FormatSummaryTable(hists, func(k string) bool {
		return !strings.HasPrefix(k, "op/")
	}); t != "" {
		fmt.Fprintf(w, "internal stages:\n%s", t)
	}
}
