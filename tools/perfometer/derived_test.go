package perfometer

import (
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/wire"
)

func TestSparklineValues(t *testing.T) {
	if s := SparklineValues(nil, 10); s != "" {
		t.Errorf("empty input rendered %q", s)
	}
	if s := SparklineValues([]float64{1, 2}, 0); s != "" {
		t.Errorf("zero width rendered %q", s)
	}
	// A ramp fills the glyph range: blank-ish at the left, full block
	// at the right.
	ramp := make([]float64, 100)
	for i := range ramp {
		ramp[i] = float64(i)
	}
	s := SparklineValues(ramp, 20)
	if utf8.RuneCountInString(s) != 20 {
		t.Errorf("width 20 rendered %d runes: %q", utf8.RuneCountInString(s), s)
	}
	if !strings.HasSuffix(s, "█") {
		t.Errorf("ramp does not peak at full block: %q", s)
	}
	// All-zero values must not divide by zero.
	if s := SparklineValues([]float64{0, 0, 0}, 10); utf8.RuneCountInString(s) != 3 {
		t.Errorf("flat-zero sparkline: %q", s)
	}
	// Fewer values than width: one glyph per value, no padding.
	if s := SparklineValues([]float64{1, 2, 3}, 72); utf8.RuneCountInString(s) != 3 {
		t.Errorf("short series sparkline: %q", s)
	}
}

func TestRenderDerived(t *testing.T) {
	series := []wire.DerivedSeries{
		{Metric: "ipc", Unit: "instr/cycle", Points: []wire.DerivedPoint{
			{Start: 1_000_000, Value: 0.5},
			{Start: 2_000_000, Value: 0.75},
			{Start: 3_000_000, Value: 0.25},
		}},
		{Metric: "mips", Unit: "Minstr/s"}, // no points: header only
	}
	var b strings.Builder
	RenderDerived(&b, series, 40)
	out := b.String()
	for _, want := range []string{
		"ipc [instr/cycle]: 3 points",
		"min 0.25", "mean 0.5", "max 0.75", "last 0.25 instr/cycle",
		"mips [Minstr/s]: 0 points",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderDerived output lacks %q:\n%s", want, out)
		}
	}
}

func TestFormatDerivedFrame(t *testing.T) {
	line := FormatDerivedFrame(wire.Response{Op: wire.OpDerived, Seq: 17,
		Metrics: []string{"ipc", "mips"}, Units: []string{"instr/cycle", "Minstr/s"},
		DValues: []float64{0.5, 5.43}})
	want := "seq 17: ipc 0.5 instr/cycle | mips 5.43 Minstr/s"
	if line != want {
		t.Errorf("FormatDerivedFrame = %q, want %q", line, want)
	}
	// A hostile frame with more values than names degrades, not panics.
	line = FormatDerivedFrame(wire.Response{Seq: 1,
		Metrics: []string{"ipc"}, DValues: []float64{1, 2}})
	if !strings.Contains(line, "?") {
		t.Errorf("mismatched frame line %q does not mark the unnamed value", line)
	}
}
