package perfometer

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

func TestRenderStats(t *testing.T) {
	var sb strings.Builder
	RenderStats(&sb,
		map[string]uint64{"ticks": 42, "evictions": 1,
			"tick_stalls": 7, "encode_failures": 3},
		map[string]telemetry.Summary{
			"op/READ/json":  {Count: 10, P50: 30_000, P90: 60_000, P99: 90_000, Max: 95_000},
			"op/STATS/json": {Count: 2, P50: 10_000, P90: 12_000, P99: 12_000, Max: 12_500},
			"tick":          {Count: 5, P50: 1_000, P90: 2_000, P99: 2_000, Max: 2_100},
			"tsdb/append":   {Count: 5, P50: 500, P90: 800, P99: 800, Max: 900},
		})
	out := sb.String()
	// Counters come first, sorted. tick_stalls and encode_failures
	// (PRs 8-9) must reach the remote table like any other counter.
	if !strings.Contains(out, "evictions") || !strings.Contains(out, "42") {
		t.Errorf("counters missing:\n%s", out)
	}
	if !strings.Contains(out, "tick_stalls") || !strings.Contains(out, "7") ||
		!strings.Contains(out, "encode_failures") || !strings.Contains(out, "3") {
		t.Errorf("tick_stalls/encode_failures not rendered:\n%s", out)
	}
	if strings.Index(out, "evictions") > strings.Index(out, "ticks") {
		t.Errorf("counters not sorted:\n%s", out)
	}
	// Per-op table and internal-stage table are split.
	opIdx := strings.Index(out, "per-op wire latency:")
	inIdx := strings.Index(out, "internal stages:")
	if opIdx < 0 || inIdx < 0 || opIdx > inIdx {
		t.Fatalf("section order wrong:\n%s", out)
	}
	if !strings.Contains(out[opIdx:inIdx], "op/READ/json") ||
		strings.Contains(out[opIdx:inIdx], "tick") {
		t.Errorf("per-op section contents wrong:\n%s", out)
	}
	if !strings.Contains(out[inIdx:], "tsdb/append") {
		t.Errorf("internal section lacks tsdb/append:\n%s", out)
	}
	// µs scaling: 30_000ns p50 renders as 30.0.
	if !strings.Contains(out, "30.0") {
		t.Errorf("missing µs-scaled quantile:\n%s", out)
	}
}

func TestRenderStatsOldServer(t *testing.T) {
	var sb strings.Builder
	RenderStats(&sb, map[string]uint64{"ticks": 1}, nil)
	if !strings.Contains(sb.String(), "predates protocol 3") {
		t.Errorf("no hint for pre-v3 servers:\n%s", sb.String())
	}
}

func TestRenderSlow(t *testing.T) {
	var sb strings.Builder
	RenderSlow(&sb, nil) // pre-v4 servers and clean runs: silent
	if sb.Len() != 0 {
		t.Errorf("RenderSlow(nil) printed:\n%s", sb.String())
	}
	RenderSlow(&sb, []wire.SlowSample{
		{Op: "QUERY", Session: 3, NS: 400_000_000, TraceID: 0xbeef},
		{Op: "PUBLISH", Session: 1, NS: 300_000_000}, // untraced server
	})
	out := sb.String()
	for _, want := range []string{
		"recent slow ops", "QUERY", "session=3", "400ms",
		"trace=000000000000beef", "PUBLISH", "300ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-op table lacks %q:\n%s", want, out)
		}
	}
	// The untraced sample must not render a zero trace ID.
	if strings.Count(out, "trace=") != 1 {
		t.Errorf("zero trace ID rendered:\n%s", out)
	}
}
