// Package perfometer reproduces the paper's perfometer tool (§2,
// Figure 2): real-time monitoring of a PAPI metric. A backend linked
// with the monitored application samples a counter at regular
// intervals and streams (time, value, rate, section) points to a
// frontend over a socket; the frontend displays the running trace —
// Figure 2's FLOPS-versus-time view — and can save it for off-line
// analysis. The intent, per the paper, is "a fast coarse-grained easy
// way for a developer to find out where a bottleneck exists".
//
// The Java GUI becomes a terminal renderer; the wire protocol is
// newline-delimited JSON (internal/wire framing, shared with the papid
// counter service) over any io.Writer/io.Reader pair (TCP in the
// cmd/perfometer tool, net.Pipe in tests).
package perfometer

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/wire"
	"repro/papi"
)

// Point is one sample on the wire.
type Point struct {
	Seq      int     `json:"seq"`
	RealUsec uint64  `json:"real_usec"`
	Total    int64   `json:"total"`   // cumulative metric count
	Rate     float64 `json:"rate"`    // metric per second over the last window
	Section  string  `json:"section"` // current color/section label
}

// Backend samples one PAPI metric on one thread and streams points.
type Backend struct {
	th       *papi.Thread
	event    papi.Event
	interval uint64 // cycles between samples

	section  string
	seq      int
	lastVal  int64
	lastUsec uint64
	buf      [1]int64
	enc      *wire.Encoder
	encErr   error
}

// NewBackend prepares a backend sampling ev every intervalCycles
// (0 selects ~a millisecond of simulated time).
func NewBackend(th *papi.Thread, ev papi.Event, intervalCycles uint64) *Backend {
	if intervalCycles == 0 {
		intervalCycles = 500_000
	}
	return &Backend{th: th, event: ev, interval: intervalCycles, section: "main"}
}

// SetSection changes the section (color) label attached to subsequent
// points. The dynaprof perfometer probe calls this on function entry,
// so a running application can be attached to and monitored without
// source changes.
func (b *Backend) SetSection(name string) { b.section = name }

// Section returns the current section label.
func (b *Backend) Section() string { return b.section }

// Run executes the program on the backend's thread, streaming samples
// to w. It returns after the final sample is written.
func (b *Backend) Run(w io.Writer, prog papi.Stream) error {
	return b.RunInstrumented(w, func() error {
		b.th.Run(prog)
		return nil
	})
}

// RunInstrumented executes run() — typically a dynaprof-instrumented
// program driving the backend's thread — under sampling. This is how a
// running application is attached to and monitored "without requiring
// any source code changes or recompilation" (§2).
func (b *Backend) RunInstrumented(w io.Writer, run func() error) error {
	es := b.th.NewEventSet()
	if err := es.Add(b.event); err != nil {
		return err
	}
	b.enc = wire.NewEncoder(w)
	b.seq = 0
	b.lastVal = 0
	b.lastUsec = b.th.RealUsec()
	if err := es.Start(); err != nil {
		return err
	}
	cpu := b.th.CPU()
	cpu.SetTimer(b.interval, func() { b.sample(es) })
	runErr := run()
	cpu.SetTimer(0, nil)
	b.sample(es) // final point
	if err := es.Stop(nil); err != nil {
		return err
	}
	if runErr != nil {
		return runErr
	}
	return b.encErr
}

func (b *Backend) sample(es *papi.EventSet) {
	if b.encErr != nil {
		return
	}
	if err := es.Read(b.buf[:]); err != nil {
		b.encErr = err
		return
	}
	usec := b.th.RealUsec()
	val := b.buf[0]
	var rate float64
	if du := usec - b.lastUsec; du > 0 {
		rate = float64(val-b.lastVal) / float64(du) * 1e6
	}
	p := Point{
		Seq:      b.seq,
		RealUsec: usec,
		Total:    val,
		Rate:     rate,
		Section:  b.section,
	}
	b.seq++
	b.lastVal = val
	b.lastUsec = usec
	if err := b.enc.Encode(&p); err != nil {
		b.encErr = err
	}
}

// SectionProbe adapts a Backend into a dynaprof probe: entering an
// instrumented function switches the perfometer section, which the
// frontend shows as a color change.
type SectionProbe struct {
	Backend *Backend
	stack   []string
}

// Enter implements the dynaprof Probe interface.
func (p *SectionProbe) Enter(fn string, _ *papi.Thread) {
	p.stack = append(p.stack, p.Backend.Section())
	p.Backend.SetSection(fn)
}

// Exit implements the dynaprof Probe interface.
func (p *SectionProbe) Exit(_ string, _ *papi.Thread) {
	if n := len(p.stack); n > 0 {
		p.Backend.SetSection(p.stack[n-1])
		p.stack = p.stack[:n-1]
	}
}

// Frontend consumes a point stream and renders/saves it.
type Frontend struct {
	Points []Point
}

// Consume reads newline-delimited JSON points until EOF.
func (f *Frontend) Consume(r io.Reader) error {
	dec := wire.NewDecoder(r)
	for {
		var p Point
		if err := dec.Decode(&p); err != nil {
			if wire.IsEOF(err) {
				return nil
			}
			return fmt.Errorf("perfometer: decoding stream: %w", err)
		}
		f.Points = append(f.Points, p)
	}
}

// MaxRate returns the peak sampled rate.
func (f *Frontend) MaxRate() float64 {
	m := 0.0
	for _, p := range f.Points {
		if p.Rate > m {
			m = p.Rate
		}
	}
	return m
}

var sparkLevels = []rune(" ▁▂▃▄▅▆▇█")

// Sparkline renders the rate trace as a unicode sparkline of at most
// width points — the terminal stand-in for Figure 2's scrolling graph.
func (f *Frontend) Sparkline(width int) string {
	if len(f.Points) == 0 || width <= 0 {
		return ""
	}
	pts := f.Points
	if len(pts) > width {
		// Downsample by averaging fixed-size windows.
		out := make([]Point, width)
		for i := 0; i < width; i++ {
			lo, hi := i*len(pts)/width, (i+1)*len(pts)/width
			if hi == lo {
				hi = lo + 1
			}
			var sum float64
			for _, p := range pts[lo:hi] {
				sum += p.Rate
			}
			out[i] = Point{Rate: sum / float64(hi-lo)}
		}
		pts = out
	}
	max := f.MaxRate()
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	for _, p := range pts {
		lvl := int(math.Round(p.Rate / max * float64(len(sparkLevels)-1)))
		if lvl < 0 {
			lvl = 0
		}
		if lvl >= len(sparkLevels) {
			lvl = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[lvl])
	}
	return b.String()
}

// Sections returns the distinct section labels in arrival order.
func (f *Frontend) Sections() []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range f.Points {
		if !seen[p.Section] {
			seen[p.Section] = true
			out = append(out, p.Section)
		}
	}
	return out
}

// SectionMeanRate returns the mean sampled rate per section label.
func (f *Frontend) SectionMeanRate() map[string]float64 {
	sum := map[string]float64{}
	n := map[string]int{}
	for _, p := range f.Points {
		sum[p.Section] += p.Rate
		n[p.Section]++
	}
	out := make(map[string]float64, len(sum))
	for k, s := range sum {
		out[k] = s / float64(n[k])
	}
	return out
}

// SaveTrace writes the collected points as JSON lines for off-line
// analysis, perfometer's trace-file mode.
func (f *Frontend) SaveTrace(w io.Writer) error {
	enc := wire.NewEncoder(w)
	for i := range f.Points {
		if err := enc.Encode(&f.Points[i]); err != nil {
			return fmt.Errorf("perfometer: saving trace: %w", err)
		}
	}
	return nil
}

// LoadTrace reads a saved trace back.
func (f *Frontend) LoadTrace(r io.Reader) error { return f.Consume(r) }
