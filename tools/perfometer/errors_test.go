package perfometer

import (
	"errors"
	"testing"

	"repro/papi"
	"repro/workload"
)

// failingWriter errors after n writes, driving the backend's stream
// error path.
type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("wire broke")
	}
	w.n--
	return len(p), nil
}

func TestBackendSurfacesWireErrors(t *testing.T) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformLinuxX86})
	b := NewBackend(sys.Main(), papi.FP_OPS, 100_000)
	err := b.Run(&failingWriter{n: 2}, workload.MatMul(workload.MatMulConfig{N: 48}))
	if err == nil || err.Error() != "wire broke" {
		t.Errorf("expected wire error, got %v", err)
	}
}

func TestBackendRejectsUnavailableMetric(t *testing.T) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformLinuxX86})
	b := NewBackend(sys.Main(), papi.LD_INS, 0) // LD_INS unavailable on x86
	var sink failingWriter
	if err := b.Run(&sink, workload.Triad(workload.TriadConfig{N: 10})); err == nil {
		t.Error("unavailable metric accepted")
	}
}

func TestFrontendRejectsGarbage(t *testing.T) {
	f := &Frontend{}
	if err := f.Consume(garbageReader{}); err == nil {
		t.Error("garbage stream accepted")
	}
}

type garbageReader struct{}

func (garbageReader) Read(p []byte) (int, error) {
	copy(p, "not json\n")
	return 9, nil
}

func TestSectionProbeUnderflowIsSafe(t *testing.T) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformLinuxX86})
	b := NewBackend(sys.Main(), papi.FP_OPS, 0)
	p := &SectionProbe{Backend: b}
	p.Exit("never-entered", nil) // must not panic
	p.Enter("f", nil)
	if b.Section() != "f" {
		t.Error("enter did not switch section")
	}
	p.Exit("f", nil)
	if b.Section() != "main" {
		t.Errorf("exit restored %q", b.Section())
	}
}

func TestDefaultInterval(t *testing.T) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformLinuxX86})
	b := NewBackend(sys.Main(), papi.FP_OPS, 0)
	if b.interval != 500_000 {
		t.Errorf("default interval = %d", b.interval)
	}
}
