package perfometer

import (
	"bytes"
	"net"
	"strings"
	"testing"

	"repro/papi"
	"repro/tools/dynaprof"
	"repro/workload"
)

// phased builds the Figure 2 style workload: FP-heavy, then
// memory-bound, then FP-heavy again.
func phased() workload.Program {
	return workload.NewConcat("phased",
		workload.MatMul(workload.MatMulConfig{N: 48}),
		workload.PointerChase(workload.ChaseConfig{Nodes: 1 << 14, Steps: 200_000}),
		workload.MatMul(workload.MatMulConfig{N: 48}),
	)
}

func TestBackendFrontendOverPipe(t *testing.T) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformLinuxX86})
	th := sys.Main()
	b := NewBackend(th, papi.FP_OPS, 200_000)
	cli, srv := net.Pipe()
	f := &Frontend{}
	done := make(chan error, 1)
	go func() { done <- f.Consume(srv) }()
	if err := b.Run(cli, phased()); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(f.Points) < 10 {
		t.Fatalf("only %d points sampled", len(f.Points))
	}
	// Sequence numbers are contiguous and time is monotone.
	for i, p := range f.Points {
		if p.Seq != i {
			t.Fatalf("point %d has seq %d", i, p.Seq)
		}
		if i > 0 && p.RealUsec < f.Points[i-1].RealUsec {
			t.Fatal("time went backwards")
		}
	}
	// Figure 2's shape: the FLOP rate dips during the memory phase.
	// Compare the first-quarter mean rate to the middle mean rate.
	q := len(f.Points) / 4
	mean := func(pts []Point) float64 {
		var s float64
		for _, p := range pts {
			s += p.Rate
		}
		return s / float64(len(pts))
	}
	head := mean(f.Points[:q])
	mid := mean(f.Points[q : 3*q])
	if head <= mid {
		t.Errorf("FLOP rate should dip in the memory phase: head %.0f vs mid %.0f", head, mid)
	}
	if f.MaxRate() <= 0 {
		t.Error("max rate zero")
	}
}

func TestSparklineAndTrace(t *testing.T) {
	f := &Frontend{Points: []Point{
		{Seq: 0, Rate: 10}, {Seq: 1, Rate: 0}, {Seq: 2, Rate: 5}, {Seq: 3, Rate: 10},
	}}
	sl := f.Sparkline(4)
	if len([]rune(sl)) != 4 {
		t.Errorf("sparkline %q has wrong width", sl)
	}
	if !strings.ContainsRune(sl, '█') {
		t.Errorf("sparkline %q missing peak", sl)
	}
	// Downsampling path.
	if w := len([]rune(f.Sparkline(2))); w != 2 {
		t.Errorf("downsampled width = %d", w)
	}
	if f.Sparkline(0) != "" {
		t.Error("zero width should be empty")
	}
	// Trace round trip.
	var buf bytes.Buffer
	if err := f.SaveTrace(&buf); err != nil {
		t.Fatal(err)
	}
	g := &Frontend{}
	if err := g.LoadTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if len(g.Points) != len(f.Points) {
		t.Errorf("trace round trip lost points: %d vs %d", len(g.Points), len(f.Points))
	}
}

func TestSectionProbeColorsTrace(t *testing.T) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformAIXPower3})
	th := sys.Main()
	b := NewBackend(th, papi.FP_OPS, 100_000)

	exe, err := dynaprof.NewExecutable("app", "main",
		&dynaprof.Func{Name: "main", Body: []dynaprof.Stmt{
			dynaprof.CallStmt{Callee: "compute"},
			dynaprof.CallStmt{Callee: "drain"},
		}},
		&dynaprof.Func{Name: "compute", Body: []dynaprof.Stmt{
			dynaprof.RunStmt{Prog: workload.MatMul(workload.MatMulConfig{N: 40, UseFMA: true})},
		}},
		&dynaprof.Func{Name: "drain", Body: []dynaprof.Stmt{
			dynaprof.RunStmt{Prog: workload.PointerChase(workload.ChaseConfig{Nodes: 1 << 13, Steps: 150_000})},
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	prof := dynaprof.Attach(exe)
	if err := prof.Instrument("*", &SectionProbe{Backend: b}); err != nil {
		t.Fatal(err)
	}

	// The dynaprof run drives the program; the backend samples via the
	// CPU timer around the instrumented execution.
	var wire bytes.Buffer
	if err := b.RunInstrumented(&wire, func() error { return prof.Run(th) }); err != nil {
		t.Fatal(err)
	}
	f := &Frontend{}
	if err := f.Consume(bytes.NewReader(wire.Bytes())); err != nil {
		t.Fatal(err)
	}
	secs := f.Sections()
	joined := strings.Join(secs, ",")
	if !strings.Contains(joined, "compute") || !strings.Contains(joined, "drain") {
		t.Errorf("sections = %v, want compute and drain", secs)
	}
	rates := f.SectionMeanRate()
	if rates["compute"] <= rates["drain"] {
		t.Errorf("compute section rate %.0f should exceed drain %.0f", rates["compute"], rates["drain"])
	}
}
