package perfometer

import (
	"fmt"
	"io"
	"time"

	"repro/internal/telemetry/tracing"
)

// TracezDoc mirrors the JSON document papid's /tracez?format=json
// endpoint serves: the flight recorder's lifetime stats plus the
// retained traces, slowest first.
type TracezDoc struct {
	Stats  tracing.Stats     `json:"stats"`
	Traces []tracing.Summary `json:"traces"`
}

// RenderTracez prints a remote flight-recorder view — the terminal
// twin of the /tracez HTML table. Each row is one retained trace; the
// ID column is what /debug/trace?id= (and ?format=chrome for
// Perfetto) takes.
func RenderTracez(w io.Writer, doc TracezDoc) {
	st := doc.Stats
	if st.Sample <= 0 {
		fmt.Fprintln(w, "tracing disabled (papid -trace-sample 0)")
		return
	}
	fmt.Fprintf(w, "flight recorder: %d started, %d retained (%d slow, %d err), sampling 1/%d, ring %d, slow threshold %s\n",
		st.Started, st.Retained, st.KeptSlow, st.KeptErr, st.Sample, st.Ring,
		time.Duration(st.SlowNS))
	if len(doc.Traces) == 0 {
		fmt.Fprintln(w, "no retained traces yet")
		return
	}
	fmt.Fprintf(w, "%-16s %-8s %-14s %12s %6s %-8s %s\n",
		"trace", "kind", "name", "duration", "spans", "kept", "err")
	for _, t := range doc.Traces {
		fmt.Fprintf(w, "%-16s %-8s %-14s %12s %6d %-8s %s\n",
			t.ID, t.Kind, t.Name, tracing.FormatDur(t.DurNS), t.Spans, t.Retained, t.Err)
	}
}
