#!/bin/sh
# The repo's verification gate: formatting, vet, then the full test
# suite under the race detector (the papid stress tests put 64+
# concurrent clients through the server, so -race is what actually
# certifies the service).
set -eu
cd "$(dirname "$0")/.."
# Formatting gate: gofmt -l prints offending files; any output fails.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi
go build ./...
go vet ./...
go test -race -timeout 10m ./...
# The connection-lifecycle chaos suite, isolated with a short -timeout:
# 32 pathological clients against tight deadlines must converge in
# seconds, and a reintroduced hang (eviction that never fires, writer
# that never drains) should fail here fast instead of eating the
# 10-minute budget above.
go test -race -timeout 2m -run 'TestChaos|TestDoTimeout|TestReconn|TestDialRetry' -count=2 ./internal/server/
# One-iteration benchmark smoke: catches benchmarks that no longer
# compile or crash, without paying for a real measurement run.
go test -run='^$' -bench=. -benchtime=1x ./...
# Server benches once with -benchmem: the encode-once fan-out's
# allocation profile is a correctness property here — this catches a
# reintroduced per-subscriber serialization as an allocs/op jump even
# when wall-clock noise hides it.
go test -run='^$' -bench='ServerThroughput' -benchtime=1x -benchmem .
# Regression-gate smoke: one-iteration ServerQuery numbers through the
# full benchjson pipeline — emit JSON, then -diff against the committed
# baseline. Single-iteration runs pay every cold-start cost (first
# QUERY allocates, caches fault in), landing ~10x over the 3s-averaged
# baseline, so the 2900% threshold is a 30x tripwire: what this
# certifies is the tooling (parse, align, gate, exit code) plus a
# catastrophic query collapse. Real measurement runs happen via
# `tools/bench.sh compare`.
smoke_json=$(mktemp /tmp/papid-ci-bench.XXXXXX.json)
go run ./cmd/benchjson -out "$smoke_json" -benchtime 1x \
    -bench 'ServerQuery' ./internal/server >/dev/null
go run ./cmd/benchjson -diff -gate 'ServerQuery' -max-regress 2900 \
    BENCH_server.json "$smoke_json"
rm -f "$smoke_json"
echo "bench regression gate OK"
# Telemetry-endpoint smoke: a real papid with -http up, scraped over
# real HTTP. Asserts the metric families observability depends on —
# per-op latency histograms, queue-depth gauge, cache counters — and
# that /statusz is valid JSON. The race-enabled telemetry tests above
# already cover concurrent recording; this covers the binary + flag
# wiring end to end.
go build -o /tmp/papid-ci-smoke ./cmd/papid
/tmp/papid-ci-smoke -addr 127.0.0.1:0 -http 127.0.0.1:61780 -quiet &
papid_pid=$!
trap 'kill $papid_pid 2>/dev/null || true' EXIT
ok=""
for i in $(seq 1 50); do
    if metrics=$(curl -sf http://127.0.0.1:61780/metrics 2>/dev/null); then
        ok=yes
        break
    fi
    sleep 0.1
done
[ -n "$ok" ] || { echo "papid -http never came up" >&2; exit 1; }
for family in papid_sessions papid_connections papid_write_queue_frames \
    papid_alloc_cache_hits_total papid_uptime_seconds \
    papid_tick_duration_seconds papid_goroutines; do
    echo "$metrics" | grep -q "$family" || {
        echo "/metrics lacks $family" >&2; exit 1; }
done
statusz=$(curl -sf http://127.0.0.1:61780/statusz)
echo "$statusz" | grep -q '"stats"' || { echo "/statusz lacks stats" >&2; exit 1; }
echo "$statusz" | grep -q '"hists"' || { echo "/statusz lacks hists" >&2; exit 1; }
echo "$statusz" | grep -q '"build"' || { echo "/statusz lacks build info" >&2; exit 1; }
echo "$statusz" | grep -q '"tick_workers"' || { echo "/statusz lacks tick_workers" >&2; exit 1; }
kill $papid_pid
wait $papid_pid 2>/dev/null || true
echo "telemetry smoke OK"
# Durability smoke: a papid with -data-dir killed with SIGKILL under
# fsync=always must come back with every acked row. papirun publishes a
# real snapshot over the wire (the PUBLISH ack implies the row was
# fsynced), the process dies hard, a restart on the same directory
# replays the WAL, and perfometer's history mode must still see
# session 1 — it exits non-zero when the answer is empty.
wal_dir=$(mktemp -d /tmp/papid-ci-wal.XXXXXX)
go build -o /tmp/papirun-ci-smoke ./cmd/papirun
go build -o /tmp/perfometer-ci-smoke ./cmd/perfometer
/tmp/papid-ci-smoke -addr 127.0.0.1:61781 -data-dir "$wal_dir" -fsync always -quiet &
wal_pid=$!
trap 'kill -9 $papid_pid $wal_pid 2>/dev/null || true; rm -rf "$wal_dir"' EXIT
published=""
for i in $(seq 1 50); do
    if /tmp/papirun-ci-smoke -serve 127.0.0.1:61781 -workload dot -n 64 >/dev/null 2>&1; then
        published=yes
        break
    fi
    sleep 0.1
done
[ -n "$published" ] || { echo "papirun never published to durable papid" >&2; exit 1; }
kill -9 $wal_pid
wait $wal_pid 2>/dev/null || true
/tmp/papid-ci-smoke -addr 127.0.0.1:61781 -data-dir "$wal_dir" -fsync always -quiet &
wal_pid=$!
recovered=""
for i in $(seq 1 50); do
    if /tmp/perfometer-ci-smoke -papid 127.0.0.1:61781 -session 1 -last 1h -step 1s >/dev/null 2>&1; then
        recovered=yes
        break
    fi
    sleep 0.1
done
[ -n "$recovered" ] || { echo "history did not survive kill -9" >&2; exit 1; }
kill $wal_pid
wait $wal_pid 2>/dev/null || true
echo "durability smoke OK"
# Derived-metric smoke: the group library must list and validate
# (papi-avail -groups), and a live papid with -groups/-derive-rules
# must answer a derived-history QUERY in finished metrics and count
# fired threshold alerts on /metrics — the end-to-end path of the
# internal/derive engine through flags, wire, tsdb and telemetry.
go build -o /tmp/papi-avail-ci-smoke ./cmd/papi-avail
groups_out=$(/tmp/papi-avail-ci-smoke -groups)
for g in ipc cpi brmiss l1miss l2miss flops membw; do
    echo "$groups_out" | grep -q "^$g " || {
        echo "papi-avail -groups lacks group $g" >&2; exit 1; }
done
/tmp/papid-ci-smoke -addr 127.0.0.1:61782 -http 127.0.0.1:61783 \
    -groups ipc,l2miss -derive-rules 'ipc>0.01:2' -quiet &
derive_pid=$!
trap 'kill -9 $papid_pid $wal_pid $derive_pid 2>/dev/null || true; rm -rf "$wal_dir"' EXIT
published=""
for i in $(seq 1 50); do
    if /tmp/papirun-ci-smoke -serve 127.0.0.1:61782 -platform aix-power3 \
        -events PAPI_TOT_INS,PAPI_TOT_CYC -workload dot -n 64 -reps 8 >/dev/null 2>&1; then
        published=yes
        break
    fi
    sleep 0.1
done
[ -n "$published" ] || { echo "papirun never published to derive papid" >&2; exit 1; }
# The trajectory above gives 7 raw deltas: the derived QUERY must
# answer in IPC (perfometer exits non-zero on an empty reply).
derived_out=$(/tmp/perfometer-ci-smoke -papid 127.0.0.1:61782 -session 1 \
    -derive ipc -last 1h -step 0s)
echo "$derived_out" | grep -q 'ipc \[instr/cycle\]' || {
    echo "derived QUERY did not answer in ipc:" >&2
    echo "$derived_out" >&2
    exit 1
}
# The always-true threshold rule must have fired and be visible as a
# non-zero counter on the admin endpoint.
alerts=$(curl -sf http://127.0.0.1:61783/metrics | grep '^papid_derive_alerts_total')
case "$alerts" in
    *" 0") echo "papid_derive_alerts_total never fired: $alerts" >&2; exit 1 ;;
    papid_derive_alerts_total*) ;;
    *) echo "/metrics lacks papid_derive_alerts_total" >&2; exit 1 ;;
esac
kill $derive_pid
wait $derive_pid 2>/dev/null || true
echo "derived-metric smoke OK"
# Filtered/delta subscription smoke: a papid with a short keyframe
# cadence, a papirun publisher streaming a long trajectory under the
# label app-a, and perfometer following it live through a label-glob
# wildcard SUBSCRIBE in delta mode. runFollow reassembles DELTA frames
# against keyframes locally, self-heals across queue-full drops at the
# next keyframe, and exits non-zero on any frame outside the
# subscribed set — so a green run certifies the v4 filter + delta +
# resync path end to end. The summary line must show both keyframes
# and DELTA frames on the wire.
/tmp/papid-ci-smoke -addr 127.0.0.1:61784 -keyframe-every 3 -quiet &
delta_pid=$!
# Enough repetitions to outlast the follow window on any machine; the
# publisher is killed once the follow has its verdict.
/tmp/papirun-ci-smoke -serve 127.0.0.1:61784 -serve-label app-a \
    -workload dot -n 64 -reps 100000 >/dev/null 2>&1 &
pub_pid=$!
follow_log=$(mktemp /tmp/papid-ci-follow.XXXXXX)
trap 'kill -9 $papid_pid $wal_pid $derive_pid $delta_pid $pub_pid 2>/dev/null || true; rm -rf "$wal_dir" "$follow_log"' EXIT
followed=""
for i in $(seq 1 50); do
    # Retries until the publisher's CREATE lands: a wildcard SUBSCRIBE
    # that matches no live session is a documented error.
    if /tmp/perfometer-ci-smoke -papid 127.0.0.1:61784 \
        -follow 2s -labels 'app-*' -delta >"$follow_log" 2>/dev/null; then
        followed=yes
        break
    fi
    sleep 0.1
done
[ -n "$followed" ] || { echo "perfometer -follow never streamed" >&2; exit 1; }
summary=$(grep '^follow summary:' "$follow_log" || true)
[ -n "$summary" ] || { echo "follow printed no summary line" >&2; exit 1; }
case "$summary" in
    *"keyframes=0 "*) echo "follow saw no keyframes: $summary" >&2; exit 1 ;;
esac
case "$summary" in
    *"deltas=0 "*) echo "follow saw no DELTA frames: $summary" >&2; exit 1 ;;
esac
kill -9 $pub_pid 2>/dev/null || true
wait $pub_pid 2>/dev/null || true
kill $delta_pid
wait $delta_pid 2>/dev/null || true
echo "filtered/delta subscription smoke OK"
# Flight-recorder smoke: a papid tracing every unit (-trace-sample 1)
# with a hair-trigger -slow-op, driven by a real publisher. Certifies
# the pipeline tracer end to end: the SlowOp warn line names a trace
# ID whose trace is retrievable from /debug/trace?id= (tail
# retention), /tracez lists the ring, and the Chrome trace-event
# export Perfetto loads carries the pipeline's stage span names —
# request stages on a PUBLISH trace, sweep stages on a tick trace.
trace_log=$(mktemp /tmp/papid-ci-trace.XXXXXX)
/tmp/papid-ci-smoke -addr 127.0.0.1:61785 -http 127.0.0.1:61786 \
    -trace-sample 1 -slow-op 1ns -tick-workers 2 -quiet 2>"$trace_log" &
trace_pid=$!
trap 'kill -9 $papid_pid $wal_pid $derive_pid $delta_pid $pub_pid $trace_pid 2>/dev/null || true; rm -rf "$wal_dir" "$follow_log" "$trace_log"' EXIT
published=""
for i in $(seq 1 50); do
    if /tmp/papirun-ci-smoke -serve 127.0.0.1:61785 -workload dot -n 64 -reps 4 >/dev/null 2>&1; then
        published=yes
        break
    fi
    sleep 0.1
done
[ -n "$published" ] || { echo "papirun never published to tracing papid" >&2; exit 1; }
# Every op breached -slow-op 1ns, so the log holds warn lines naming
# their traces; a named trace must still be in the ring, request
# stages intact.
warn_id=$(sed -n 's/.*trace=\([0-9a-f]\{16\}\).*/\1/p' "$trace_log" | head -1)
[ -n "$warn_id" ] || {
    echo "no slow-op warn line carries a trace ID" >&2
    cat "$trace_log" >&2
    exit 1
}
curl -sf "http://127.0.0.1:61786/debug/trace?id=$warn_id" | grep -q '"dispatch"' || {
    echo "warned trace $warn_id not retrievable with a dispatch span" >&2; exit 1; }
tracez=$(curl -sf "http://127.0.0.1:61786/tracez?format=json")
pub_id=$(printf '%s' "$tracez" | sed -n 's/.*"id":"\([0-9a-f]\{16\}\)","kind":"request","name":"PUBLISH".*/\1/p')
[ -n "$pub_id" ] || { echo "/tracez lists no PUBLISH trace" >&2; exit 1; }
pub_chrome=$(curl -sf "http://127.0.0.1:61786/debug/trace?id=$pub_id&format=chrome")
for span in dispatch tsdb.append fanout derive write; do
    printf '%s' "$pub_chrome" | grep -q "\"$span\"" || {
        echo "PUBLISH chrome export lacks stage span $span" >&2; exit 1; }
done
tick_id=$(printf '%s' "$tracez" | sed -n 's/.*"id":"\([0-9a-f]\{16\}\)","kind":"tick".*/\1/p')
[ -n "$tick_id" ] || { echo "/tracez lists no tick trace" >&2; exit 1; }
tick_chrome=$(curl -sf "http://127.0.0.1:61786/debug/trace?id=$tick_id&format=chrome")
for span in shard tsdb.sweep; do
    printf '%s' "$tick_chrome" | grep -q "\"$span\"" || {
        echo "tick chrome export lacks sweep span $span" >&2; exit 1; }
done
# The remote views ride the same data: perfometer -tracez renders the
# ring over the admin endpoint, and -stats carries the slow-op samples
# with their trace IDs over the wire protocol.
/tmp/perfometer-ci-smoke -tracez 127.0.0.1:61786 | grep -q 'flight recorder:' || {
    echo "perfometer -tracez rendered no flight-recorder view" >&2; exit 1; }
/tmp/perfometer-ci-smoke -papid 127.0.0.1:61785 -stats | grep -q 'trace=' || {
    echo "perfometer -stats shows no slow-op trace IDs" >&2; exit 1; }
kill $trace_pid
wait $trace_pid 2>/dev/null || true
echo "flight-recorder smoke OK"
