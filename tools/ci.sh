#!/bin/sh
# The repo's verification gate: vet plus the full test suite under the
# race detector (the papid stress tests put 64+ concurrent clients
# through the server, so -race is what actually certifies the service).
set -eu
cd "$(dirname "$0")/.."
go vet ./...
go test -race ./...
