#!/bin/sh
# The repo's verification gate: formatting, vet, then the full test
# suite under the race detector (the papid stress tests put 64+
# concurrent clients through the server, so -race is what actually
# certifies the service).
set -eu
cd "$(dirname "$0")/.."
# Formatting gate: gofmt -l prints offending files; any output fails.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi
go build ./...
go vet ./...
go test -race -timeout 10m ./...
# The connection-lifecycle chaos suite, isolated with a short -timeout:
# 32 pathological clients against tight deadlines must converge in
# seconds, and a reintroduced hang (eviction that never fires, writer
# that never drains) should fail here fast instead of eating the
# 10-minute budget above.
go test -race -timeout 2m -run 'TestChaos|TestDoTimeout|TestReconn|TestDialRetry' -count=2 ./internal/server/
# One-iteration benchmark smoke: catches benchmarks that no longer
# compile or crash, without paying for a real measurement run.
go test -run='^$' -bench=. -benchtime=1x ./...
# Server benches once with -benchmem: the encode-once fan-out's
# allocation profile is a correctness property here — this catches a
# reintroduced per-subscriber serialization as an allocs/op jump even
# when wall-clock noise hides it.
go test -run='^$' -bench='ServerThroughput' -benchtime=1x -benchmem .
