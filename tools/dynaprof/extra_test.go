package dynaprof

import (
	"testing"

	"repro/papi"
	"repro/workload"
)

func TestNestedLoopsAndRecursionBudget(t *testing.T) {
	// Nested LoopStmts multiply call counts; bounded recursion works.
	exe, err := NewExecutable("nest", "main",
		&Func{Name: "main", Body: []Stmt{
			LoopStmt{Count: 3, Body: []Stmt{
				LoopStmt{Count: 4, Body: []Stmt{CallStmt{Callee: "leaf"}}},
			}},
			CallStmt{Callee: "rec3"},
		}},
		&Func{Name: "leaf", Body: []Stmt{
			RunStmt{Prog: workload.Triad(workload.TriadConfig{N: 50})},
		}},
		// Three-deep self-recursion via a loop guard is not expressible
		// without data flow, so chain three functions instead.
		&Func{Name: "rec3", Body: []Stmt{CallStmt{Callee: "rec2"}}},
		&Func{Name: "rec2", Body: []Stmt{CallStmt{Callee: "rec1"}}},
		&Func{Name: "rec1", Body: []Stmt{
			RunStmt{Prog: workload.Triad(workload.TriadConfig{N: 10})},
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformCrayT3E})
	th := sys.Main()
	probe, err := NewPAPIProbe(th, papi.FP_INS)
	if err != nil {
		t.Fatal(err)
	}
	p := Attach(exe)
	if err := p.Instrument("*", probe); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(th); err != nil {
		t.Fatal(err)
	}
	probe.Close()
	stats := map[string]FuncStat{}
	for _, st := range probe.Stats() {
		stats[st.Name] = st
	}
	if stats["leaf"].Calls != 12 {
		t.Errorf("leaf called %d times, want 12", stats["leaf"].Calls)
	}
	// 12 × 100 FP in leaf; 20 FP in rec1.
	if stats["leaf"].Exclusive != 1200 || stats["rec1"].Exclusive != 20 {
		t.Errorf("exclusive: leaf=%d rec1=%d", stats["leaf"].Exclusive, stats["rec1"].Exclusive)
	}
	// Chained inclusive: rec3 includes rec2 includes rec1.
	if stats["rec3"].Inclusive < stats["rec1"].Exclusive {
		t.Errorf("rec3 inclusive %d too small", stats["rec3"].Inclusive)
	}
	if stats["main"].Inclusive < 1220 {
		t.Errorf("main inclusive %d", stats["main"].Inclusive)
	}
}

func TestMultipleProbesStack(t *testing.T) {
	// Two probes on the same function both see the work; exit order is
	// reversed (LIFO) so each probe's enter/exit pair brackets the body.
	exe, _ := NewExecutable("app", "f",
		&Func{Name: "f", Body: []Stmt{
			RunStmt{Prog: workload.Dot(workload.DotConfig{N: 500})},
		}},
	)
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformCrayT3E})
	th := sys.Main()
	p := Attach(exe)
	fp, err := NewPAPIProbe(th, papi.FP_INS)
	if err != nil {
		t.Fatal(err)
	}
	wall := NewWallclockProbe()
	p.Instrument("f", fp)
	p.Instrument("f", wall)
	if err := p.Run(th); err != nil {
		t.Fatal(err)
	}
	fp.Close()
	if fp.Stats()[0].Exclusive != 1000 {
		t.Errorf("fp probe saw %d", fp.Stats()[0].Exclusive)
	}
	if wall.Stats()[0].Inclusive <= 0 {
		t.Error("wall probe saw nothing")
	}
}

func TestExitWithoutEnterIsIgnored(t *testing.T) {
	// A probe attached mid-run (exit fires with an empty stack) must
	// not panic or corrupt stats.
	probe := NewWallclockProbe()
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformCrayT3E})
	probe.Exit("orphan", sys.Main())
	if len(probe.Stats()) != 0 {
		t.Error("orphan exit created stats")
	}
}
