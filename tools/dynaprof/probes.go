package dynaprof

import (
	"fmt"
	"sort"
	"strings"

	"repro/papi"
)

// FuncStat accumulates one function's metric on one thread.
type FuncStat struct {
	Name      string
	Calls     uint64
	Inclusive int64 // metric consumed by the function and its callees
	Exclusive int64 // metric consumed by the function itself
}

type frame struct {
	fn       string
	start    int64
	children int64
}

// metricProbe implements inclusive/exclusive bookkeeping over any
// monotonically increasing per-thread metric — the paper's observation
// that "any monotonically increasing resource function may be used".
type metricProbe struct {
	read  func(th *papi.Thread) int64
	stack []frame
	stats map[string]*FuncStat
}

func newMetricProbe(read func(*papi.Thread) int64) *metricProbe {
	return &metricProbe{read: read, stats: map[string]*FuncStat{}}
}

// Enter implements Probe.
func (m *metricProbe) Enter(fn string, th *papi.Thread) {
	m.stack = append(m.stack, frame{fn: fn, start: m.read(th)})
}

// Exit implements Probe.
func (m *metricProbe) Exit(fn string, th *papi.Thread) {
	if len(m.stack) == 0 {
		return
	}
	fr := m.stack[len(m.stack)-1]
	m.stack = m.stack[:len(m.stack)-1]
	delta := m.read(th) - fr.start
	st := m.stats[fn]
	if st == nil {
		st = &FuncStat{Name: fn}
		m.stats[fn] = st
	}
	st.Calls++
	st.Inclusive += delta
	st.Exclusive += delta - fr.children
	if len(m.stack) > 0 {
		m.stack[len(m.stack)-1].children += delta
	}
}

// Stats returns per-function statistics sorted by exclusive metric,
// descending.
func (m *metricProbe) Stats() []FuncStat {
	out := make([]FuncStat, 0, len(m.stats))
	for _, st := range m.stats {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Exclusive != out[j].Exclusive {
			return out[i].Exclusive > out[j].Exclusive
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Report renders the statistics as an aligned text table.
func (m *metricProbe) Report(metric string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %10s %16s %16s\n", "FUNCTION", "CALLS", "EXCL "+metric, "INCL "+metric)
	for _, st := range m.Stats() {
		fmt.Fprintf(&b, "%-24s %10d %16d %16d\n", st.Name, st.Calls, st.Exclusive, st.Inclusive)
	}
	return b.String()
}

// PAPIProbe collects one hardware counter metric per function per
// thread — dynaprof's "papiprobe".
type PAPIProbe struct {
	*metricProbe
	event papi.Event
	es    *papi.EventSet
}

// NewPAPIProbe starts a hidden EventSet counting ev on the thread and
// returns the probe. Close it (or stop the set) when done.
func NewPAPIProbe(th *papi.Thread, ev papi.Event) (*PAPIProbe, error) {
	es := th.NewEventSet()
	if err := es.Add(ev); err != nil {
		return nil, err
	}
	if err := es.Start(); err != nil {
		return nil, err
	}
	p := &PAPIProbe{event: ev, es: es}
	buf := make([]int64, 1)
	p.metricProbe = newMetricProbe(func(*papi.Thread) int64 {
		if err := es.Read(buf); err != nil {
			return 0
		}
		return buf[0]
	})
	return p, nil
}

// Event returns the probed event.
func (p *PAPIProbe) Event() papi.Event { return p.event }

// Close stops the probe's EventSet.
func (p *PAPIProbe) Close() error { return p.es.Stop(nil) }

// Report renders the per-function table.
func (p *PAPIProbe) Report() string {
	return p.metricProbe.Report(papi.EventName(p.event))
}

// WallclockProbe measures elapsed real time per function — dynaprof's
// wallclock probe.
type WallclockProbe struct {
	*metricProbe
}

// NewWallclockProbe builds a wallclock probe.
func NewWallclockProbe() *WallclockProbe {
	return &WallclockProbe{newMetricProbe(func(th *papi.Thread) int64 {
		return int64(th.RealUsec())
	})}
}

// Report renders the per-function table.
func (w *WallclockProbe) Report() string {
	return w.metricProbe.Report("REAL_USEC")
}
