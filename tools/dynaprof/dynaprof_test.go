package dynaprof

import (
	"strings"
	"testing"

	"repro/papi"
	"repro/workload"
)

func testExe(t *testing.T) *Executable {
	t.Helper()
	exe, err := NewExecutable("app", "main",
		&Func{Name: "main", Body: []Stmt{
			CallStmt{Callee: "init_data"},
			LoopStmt{Count: 3, Body: []Stmt{CallStmt{Callee: "compute"}}},
			CallStmt{Callee: "write_back"},
		}},
		&Func{Name: "init_data", Body: []Stmt{
			RunStmt{Prog: workload.Triad(workload.TriadConfig{N: 200})},
		}},
		&Func{Name: "compute", Body: []Stmt{
			RunStmt{Prog: workload.MatMul(workload.MatMulConfig{N: 12})},
		}},
		&Func{Name: "write_back", Body: []Stmt{
			RunStmt{Prog: workload.Triad(workload.TriadConfig{N: 100})},
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

func TestListStructure(t *testing.T) {
	p := Attach(testExe(t))
	got := p.List()
	want := []string{"compute", "init_data", "main", "write_back"}
	if len(got) != len(want) {
		t.Fatalf("List() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List() = %v, want %v", got, want)
		}
	}
}

func TestPAPIProbeProfile(t *testing.T) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformAIXPower3})
	th := sys.Main()
	p := Attach(testExe(t))
	probe, err := NewPAPIProbe(th, papi.FP_INS)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Instrument("*", probe); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(th); err != nil {
		t.Fatal(err)
	}
	if err := probe.Close(); err != nil {
		t.Fatal(err)
	}
	stats := map[string]FuncStat{}
	for _, st := range probe.Stats() {
		stats[st.Name] = st
	}
	if stats["compute"].Calls != 3 {
		t.Errorf("compute called %d times, want 3", stats["compute"].Calls)
	}
	if stats["main"].Calls != 1 {
		t.Errorf("main called %d times", stats["main"].Calls)
	}
	// matmul n=12, 3 calls: 3 × 2·12³ FP instrs = 10368 exclusive in
	// compute; triads contribute 2 FP per element.
	if got := stats["compute"].Exclusive; got != 3*2*12*12*12 {
		t.Errorf("compute exclusive FP = %d, want %d", got, 3*2*12*12*12)
	}
	if got := stats["init_data"].Exclusive; got != 400 {
		t.Errorf("init_data exclusive FP = %d, want 400", got)
	}
	// main's exclusive FP is ~0; its inclusive covers everything.
	if stats["main"].Exclusive > 10 {
		t.Errorf("main exclusive FP = %d, want ~0", stats["main"].Exclusive)
	}
	wantIncl := stats["compute"].Inclusive + stats["init_data"].Inclusive + stats["write_back"].Inclusive
	if stats["main"].Inclusive < wantIncl {
		t.Errorf("main inclusive %d < children sum %d", stats["main"].Inclusive, wantIncl)
	}
	rep := probe.Report()
	if !strings.Contains(rep, "compute") || !strings.Contains(rep, "PAPI_FP_INS") {
		t.Errorf("report missing fields:\n%s", rep)
	}
	if probe.Event() != papi.FP_INS {
		t.Error("probe event mismatch")
	}
}

func TestWallclockProbe(t *testing.T) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformCrayT3E})
	th := sys.Main()
	p := Attach(testExe(t))
	probe := NewWallclockProbe()
	if err := p.Instrument("*", probe); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(th); err != nil {
		t.Fatal(err)
	}
	var mainIncl int64
	for _, st := range probe.Stats() {
		if st.Name == "main" {
			mainIncl = st.Inclusive
		}
		if st.Inclusive < st.Exclusive {
			t.Errorf("%s: inclusive %d < exclusive %d", st.Name, st.Inclusive, st.Exclusive)
		}
	}
	if mainIncl <= 0 {
		t.Error("main consumed no wallclock time")
	}
	if !strings.Contains(probe.Report(), "REAL_USEC") {
		t.Error("wallclock report header missing")
	}
}

func TestSelectiveInstrumentation(t *testing.T) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformCrayT3E})
	th := sys.Main()
	p := Attach(testExe(t))
	probe, err := NewPAPIProbe(th, papi.TOT_INS)
	if err != nil {
		t.Fatal(err)
	}
	// Only functions starting with "c".
	if err := p.Instrument("c*", probe); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(th); err != nil {
		t.Fatal(err)
	}
	probe.Close()
	stats := probe.Stats()
	if len(stats) != 1 || stats[0].Name != "compute" {
		t.Errorf("stats = %+v, want only compute", stats)
	}
}

func TestErrors(t *testing.T) {
	if _, err := NewExecutable("x", "missing", &Func{Name: "a"}); err == nil {
		t.Error("missing entry accepted")
	}
	if _, err := NewExecutable("x", "a", &Func{Name: "a"}, &Func{Name: "a"}); err == nil {
		t.Error("duplicate function accepted")
	}
	exe, _ := NewExecutable("x", "a", &Func{Name: "a", Body: []Stmt{CallStmt{Callee: "ghost"}}})
	p := Attach(exe)
	sys := papi.MustInit(papi.Options{})
	if err := p.Run(sys.Main()); err == nil {
		t.Error("undefined callee accepted")
	}
	if err := p.Instrument("zzz*", NewWallclockProbe()); err == nil {
		t.Error("unmatched pattern accepted")
	}
	// Unbounded recursion is caught.
	rec, _ := NewExecutable("r", "f", &Func{Name: "f", Body: []Stmt{CallStmt{Callee: "f"}}})
	if err := Attach(rec).Run(sys.Main()); err == nil {
		t.Error("infinite recursion not caught")
	}
}
