// Package dynaprof reproduces the paper's dynaprof tool (§2): dynamic
// instrumentation of a running executable without source changes,
// recompilation or restart. The user lists the internal structure of
// the application, selects instrumentation points, and dynaprof inserts
// probes at function entry and exit — a PAPI probe for hardware counter
// data and a wallclock probe for elapsed time, both per thread. Users
// may write their own probes.
//
// Where the C dynaprof patches machine code through Dyninst or DPCL,
// this version instruments the function table of a simulated
// executable: the observable behaviour (attach, list, instrument, run,
// per-thread metrics, probe overhead charged to the program) is the
// same.
package dynaprof

import (
	"fmt"
	"sort"
	"strings"

	"repro/papi"
	"repro/workload"
)

// Stmt is one statement in a simulated function body.
type Stmt interface{ isStmt() }

// RunStmt executes a workload program inline.
type RunStmt struct{ Prog workload.Program }

// CallStmt calls another function by name.
type CallStmt struct{ Callee string }

// LoopStmt repeats a body Count times.
type LoopStmt struct {
	Count int
	Body  []Stmt
}

func (RunStmt) isStmt()  {}
func (CallStmt) isStmt() {}
func (LoopStmt) isStmt() {}

// Func is one function of the simulated executable.
type Func struct {
	Name string
	Body []Stmt
}

// Executable is the simulated program dynaprof attaches to.
type Executable struct {
	Name  string
	Entry string
	Funcs map[string]*Func
}

// NewExecutable builds an executable from functions; the first is the
// entry point unless entry names another.
func NewExecutable(name, entry string, funcs ...*Func) (*Executable, error) {
	e := &Executable{Name: name, Entry: entry, Funcs: map[string]*Func{}}
	for _, f := range funcs {
		if _, dup := e.Funcs[f.Name]; dup {
			return nil, fmt.Errorf("dynaprof: duplicate function %q", f.Name)
		}
		e.Funcs[f.Name] = f
	}
	if _, ok := e.Funcs[entry]; !ok {
		return nil, fmt.Errorf("dynaprof: entry function %q not defined", entry)
	}
	return e, nil
}

// Probe is an instrumentation point handler. Enter/Exit run on the
// instrumented thread; whatever they do to the thread (reading
// counters, timers) costs simulated time, exactly like real probes.
type Probe interface {
	Enter(fn string, th *papi.Thread)
	Exit(fn string, th *papi.Thread)
}

// Profiler is one attachment of dynaprof to an executable.
type Profiler struct {
	exe    *Executable
	probes map[string][]Probe
}

// Attach connects dynaprof to an executable (load or attach — the
// simulated executable does not distinguish).
func Attach(exe *Executable) *Profiler {
	return &Profiler{exe: exe, probes: map[string][]Probe{}}
}

// List returns the executable's internal structure: its function
// names, sorted — what the user browses to select instrumentation
// points.
func (p *Profiler) List() []string {
	out := make([]string, 0, len(p.exe.Funcs))
	for name := range p.exe.Funcs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Instrument inserts a probe at entry and exit of every function whose
// name matches pattern ("*" instruments everything; a trailing "*"
// matches a prefix).
func (p *Profiler) Instrument(pattern string, probe Probe) error {
	matched := 0
	for name := range p.exe.Funcs {
		if matchPattern(pattern, name) {
			p.probes[name] = append(p.probes[name], probe)
			matched++
		}
	}
	if matched == 0 {
		return fmt.Errorf("dynaprof: pattern %q matches no function", pattern)
	}
	return nil
}

func matchPattern(pattern, name string) bool {
	if pattern == "*" || pattern == name {
		return true
	}
	if prefix, ok := strings.CutSuffix(pattern, "*"); ok {
		return strings.HasPrefix(name, prefix)
	}
	return false
}

// Run executes the instrumented program on a thread. Probe entry/exit
// hooks fire around every instrumented call, including the entry
// function.
func (p *Profiler) Run(th *papi.Thread) error {
	return p.call(th, p.exe.Entry, 0)
}

const maxCallDepth = 256

func (p *Profiler) call(th *papi.Thread, fn string, depth int) error {
	if depth > maxCallDepth {
		return fmt.Errorf("dynaprof: call depth exceeds %d (recursion in %q?)", maxCallDepth, fn)
	}
	f, ok := p.exe.Funcs[fn]
	if !ok {
		return fmt.Errorf("dynaprof: call to undefined function %q", fn)
	}
	// Call overhead: a couple of instructions, like a real call/ret.
	th.CPU().Charge(2, 2)
	for _, probe := range p.probes[fn] {
		probe.Enter(fn, th)
	}
	if err := p.runBody(th, f.Body, depth); err != nil {
		return err
	}
	for i := len(p.probes[fn]) - 1; i >= 0; i-- {
		p.probes[fn][i].Exit(fn, th)
	}
	th.CPU().Charge(2, 2)
	return nil
}

func (p *Profiler) runBody(th *papi.Thread, body []Stmt, depth int) error {
	for _, st := range body {
		switch s := st.(type) {
		case RunStmt:
			s.Prog.Reset()
			th.Run(s.Prog)
		case CallStmt:
			if err := p.call(th, s.Callee, depth+1); err != nil {
				return err
			}
		case LoopStmt:
			for i := 0; i < s.Count; i++ {
				if err := p.runBody(th, s.Body, depth); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("dynaprof: unknown statement %T", st)
		}
	}
	return nil
}
