package tau

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/papi"
	"repro/workload"
)

func newProfiler(t *testing.T, cfg Config) (*papi.System, *Profiler) {
	t.Helper()
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformAIXPower3})
	p, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys, p
}

func TestProfileInclusiveExclusive(t *testing.T) {
	sys, p := newProfiler(t, Config{Metrics: []papi.Event{papi.FP_INS, papi.TOT_INS}})
	tp, err := p.Thread(sys.Main())
	if err != nil {
		t.Fatal(err)
	}
	th := sys.Main()

	if err := tp.Start("main"); err != nil {
		t.Fatal(err)
	}
	if err := tp.Start("compute"); err != nil {
		t.Fatal(err)
	}
	th.Run(workload.MatMul(workload.MatMulConfig{N: 16}))
	if err := tp.Stop("compute"); err != nil {
		t.Fatal(err)
	}
	if err := tp.Start("io"); err != nil {
		t.Fatal(err)
	}
	th.Run(workload.Triad(workload.TriadConfig{N: 512}))
	if err := tp.Stop("io"); err != nil {
		t.Fatal(err)
	}
	if err := tp.Stop("main"); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	stats := map[string]RegionStat{}
	for _, st := range tp.Stats() {
		stats[st.Region] = st
	}
	// matmul 16: 2·16³ = 8192 FP; triad 512: 1024 FP.
	if stats["compute"].Excl[0] != 8192 {
		t.Errorf("compute excl FP = %d, want 8192", stats["compute"].Excl[0])
	}
	if stats["io"].Excl[0] != 1024 {
		t.Errorf("io excl FP = %d, want 1024", stats["io"].Excl[0])
	}
	if stats["main"].Excl[0] > 10 {
		t.Errorf("main excl FP = %d, want ~0", stats["main"].Excl[0])
	}
	if stats["main"].Incl[0] < 9216 {
		t.Errorf("main incl FP = %d, want >= 9216", stats["main"].Incl[0])
	}
	if stats["main"].InclUsec < stats["compute"].InclUsec+stats["io"].InclUsec {
		t.Error("main inclusive time below children")
	}
	if stats["compute"].Calls != 1 || stats["main"].Calls != 1 {
		t.Error("call counts wrong")
	}
	rep := p.Report()
	if !strings.Contains(rep, "compute") || !strings.Contains(rep, "FP_INS") {
		t.Errorf("report missing columns:\n%s", rep)
	}
}

func TestNestingDiscipline(t *testing.T) {
	sys, p := newProfiler(t, Config{})
	tp, err := p.Thread(sys.Main())
	if err != nil {
		t.Fatal(err)
	}
	if err := tp.Stop("ghost"); err == nil {
		t.Error("Stop with empty stack accepted")
	}
	tp.Start("a")
	if err := tp.Stop("b"); err == nil {
		t.Error("mismatched Stop accepted")
	}
	// Close with open regions must fail.
	if err := p.Close(); err == nil {
		t.Error("Close with open region accepted")
	}
	tp.Stop("a")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMetricValidation(t *testing.T) {
	sys := papi.MustInit(papi.Options{Platform: papi.PlatformLinuxX86})
	if _, err := New(sys, Config{Metrics: []papi.Event{papi.LD_INS}}); err == nil {
		t.Error("unavailable metric accepted")
	}
	tooMany := make([]papi.Event, MaxMetrics+1)
	for i := range tooMany {
		tooMany[i] = papi.TOT_INS
	}
	if _, err := New(sys, Config{Metrics: tooMany}); err == nil {
		t.Error("26 metrics accepted")
	}
	// Three metrics on a 2-counter machine need multiplexing.
	cfg := Config{Metrics: []papi.Event{papi.TOT_CYC, papi.TOT_INS, papi.FP_INS}}
	p, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Thread(sys.Main()); err == nil {
		t.Error("3 metrics without multiplex should conflict on the P6")
	}
	cfg.Multiplex = true
	p2, _ := New(sys, cfg)
	if _, err := p2.Thread(sys.Main()); err != nil {
		t.Errorf("multiplexed metrics rejected: %v", err)
	}
}

func TestTracingAndMerge(t *testing.T) {
	sys, p := newProfiler(t, Config{Metrics: []papi.Event{papi.FP_INS}, Tracing: true, Node: 3})
	t0, err := p.Thread(sys.Main())
	if err != nil {
		t.Fatal(err)
	}
	th1, err := sys.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	t1, err := p.Thread(th1)
	if err != nil {
		t.Fatal(err)
	}

	t0.Start("phase")
	sys.Main().Run(workload.Triad(workload.TriadConfig{N: 256}))
	t0.Marker("checkpoint")
	t0.Stop("phase")
	t1.Start("phase")
	th1.Run(workload.Triad(workload.TriadConfig{N: 128}))
	t1.Stop("phase")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	merged := p.MergedTrace()
	if err := trace.Validate(merged); err != nil {
		t.Fatal(err)
	}
	if len(merged) != 5 { // 2×(enter+exit) + marker
		t.Fatalf("merged %d events", len(merged))
	}
	ivs, err := trace.Intervals(merged)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 2 {
		t.Fatalf("%d intervals", len(ivs))
	}
	// Counter values ride on the trace: FP delta for thread 0's phase
	// is the triad's 512 FP instructions.
	for _, iv := range ivs {
		if iv.Thread == 0 {
			if d := iv.ExitVals[0] - iv.EnterVals[0]; d != 512 {
				t.Errorf("trace FP delta = %d, want 512", d)
			}
		}
	}
	var vtf bytes.Buffer
	if err := p.WriteTrace(&vtf, "vtf"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vtf.String(), "MARKER\tcheckpoint") {
		t.Error("marker missing from VTF trace")
	}
	var js bytes.Buffer
	if err := p.WriteTrace(&js, "json"); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadJSON(&js)
	if err != nil || len(back) != 5 {
		t.Errorf("json trace round trip: %d events, %v", len(back), err)
	}
	if err := p.WriteTrace(&js, "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestCorrelate(t *testing.T) {
	sys, p := newProfiler(t, Config{Metrics: []papi.Event{papi.FP_INS, papi.TOT_CYC}})
	tp, err := p.Thread(sys.Main())
	if err != nil {
		t.Fatal(err)
	}
	tp.Start("fp_heavy")
	sys.Main().Run(workload.MatMul(workload.MatMulConfig{N: 16}))
	tp.Stop("fp_heavy")
	tp.Start("mem_heavy")
	sys.Main().Run(workload.PointerChase(workload.ChaseConfig{Nodes: 4096, Steps: 30_000}))
	tp.Stop("mem_heavy")
	p.Close()

	corr, err := tp.Correlate(papi.FP_INS, papi.TOT_CYC)
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]float64{}
	for _, c := range corr {
		rates[c.Region] = c.Ratio
	}
	if rates["fp_heavy"] <= rates["mem_heavy"] {
		t.Errorf("FP-per-cycle must be higher in the FP region: %v", rates)
	}
	if _, err := tp.Correlate(papi.L1_DCM, papi.TOT_CYC); err == nil {
		t.Error("unconfigured metric accepted")
	}
}

func TestTimeOnlyProfilingAndMarkers(t *testing.T) {
	// TAU configured without counters profiles wall time only; markers
	// without tracing are a no-op.
	sys, p := newProfiler(t, Config{})
	tp, err := p.Thread(sys.Main())
	if err != nil {
		t.Fatal(err)
	}
	tp.Marker("ignored") // no trace buffer: must not panic
	tp.Start("only_time")
	sys.Main().Run(workload.Triad(workload.TriadConfig{N: 4096}))
	tp.Stop("only_time")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	st := tp.Stats()
	if len(st) != 1 || st[0].ExclUsec == 0 {
		t.Errorf("stats %+v", st)
	}
	if len(st[0].Incl) != 0 {
		t.Error("metric columns present without metrics")
	}
	if len(p.MergedTrace()) != 0 {
		t.Error("trace events without tracing enabled")
	}
	rep := p.Report()
	if !strings.Contains(rep, "only_time") {
		t.Errorf("report:\n%s", rep)
	}
}
