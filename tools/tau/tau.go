// Package tau reproduces the role of the TAU toolkit in the paper's §3:
// a portable profiling *and* tracing framework for threaded programs
// layered on PAPI. Source regions are instrumented with Start/Stop
// calls (the manual-instrumentation mode of TAU's API); the framework
// keeps per-thread profiles — inclusive/exclusive wall time plus one
// column per configured hardware metric, "up to 25 metrics … and a
// separate profile generated for each" — and, when tracing is enabled,
// per-thread event traces that can be merged and converted, TAU's
// node-context-thread model.
package tau

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/trace"
	"repro/papi"
)

// MaxMetrics mirrors TAU's 25-metric ceiling.
const MaxMetrics = 25

// Config configures a Profiler.
type Config struct {
	// Metrics are the hardware events profiled alongside time. Empty
	// is valid: TAU configured without counters profiles time only.
	Metrics []papi.Event
	// Multiplex opts the metric EventSet into software multiplexing
	// when the platform cannot count all metrics at once. Per the
	// paper, tools do this "but take care of ensuring that runtimes
	// are sufficiently long to yield accurate results".
	Multiplex bool
	// Tracing additionally records per-thread event traces.
	Tracing bool
	// Node identifies this process in merged traces.
	Node int
}

// RegionStat is one region's profile on one thread.
type RegionStat struct {
	Region   string
	Calls    uint64
	InclUsec uint64
	ExclUsec uint64
	Incl     []int64 // per metric
	Excl     []int64 // per metric
}

type frame struct {
	region    string
	startUsec uint64
	startVals []int64
	childUsec uint64
	childVals []int64
}

// ThreadProfiler instruments one thread.
type ThreadProfiler struct {
	p     *Profiler
	th    *papi.Thread
	tid   int
	es    *papi.EventSet
	buf   []int64
	stack []frame
	stats map[string]*RegionStat
	tbuf  *trace.Buffer
}

// Profiler is one TAU-style measurement session over a System.
type Profiler struct {
	sys     *papi.System
	cfg     Config
	threads []*ThreadProfiler
}

// New builds a profiler. The metric list is validated against the
// platform immediately, like TAU's configuration step.
func New(sys *papi.System, cfg Config) (*Profiler, error) {
	if len(cfg.Metrics) > MaxMetrics {
		return nil, fmt.Errorf("tau: %d metrics exceeds the %d-metric limit", len(cfg.Metrics), MaxMetrics)
	}
	for _, m := range cfg.Metrics {
		if !sys.QueryEvent(m) {
			return nil, fmt.Errorf("tau: metric %s unavailable on %s", papi.EventName(m), sys.Info().Platform)
		}
	}
	return &Profiler{sys: sys, cfg: cfg}, nil
}

// Thread registers a thread for measurement, starting its counters.
func (p *Profiler) Thread(th *papi.Thread) (*ThreadProfiler, error) {
	tp := &ThreadProfiler{
		p:     p,
		th:    th,
		tid:   th.Index(),
		buf:   make([]int64, len(p.cfg.Metrics)),
		stats: map[string]*RegionStat{},
	}
	if len(p.cfg.Metrics) > 0 {
		es := th.NewEventSet()
		if p.cfg.Multiplex {
			if err := es.SetMultiplex(0); err != nil {
				return nil, err
			}
		}
		if err := es.AddAll(p.cfg.Metrics...); err != nil {
			return nil, fmt.Errorf("tau: thread %d: %w (enable Multiplex?)", tp.tid, err)
		}
		if err := es.Start(); err != nil {
			return nil, err
		}
		tp.es = es
	}
	if p.cfg.Tracing {
		tp.tbuf = trace.NewBuffer(p.cfg.Node, tp.tid)
	}
	p.threads = append(p.threads, tp)
	return tp, nil
}

// read snapshots time and counters.
func (tp *ThreadProfiler) read() (uint64, []int64, error) {
	t := tp.th.VirtUsec()
	if tp.es == nil {
		return t, nil, nil
	}
	if err := tp.es.Read(tp.buf); err != nil {
		return 0, nil, err
	}
	return t, append([]int64(nil), tp.buf...), nil
}

// Start enters an instrumented region.
func (tp *ThreadProfiler) Start(region string) error {
	t, vals, err := tp.read()
	if err != nil {
		return err
	}
	tp.stack = append(tp.stack, frame{
		region: region, startUsec: t, startVals: vals,
		childVals: make([]int64, len(tp.buf)),
	})
	if tp.tbuf != nil {
		tp.tbuf.Append(t, trace.KindEnter, region, vals)
	}
	return nil
}

// Stop exits the innermost region, which must match by name — the
// nesting discipline TAU's compiler instrumentation guarantees and
// manual instrumentation must respect.
func (tp *ThreadProfiler) Stop(region string) error {
	if len(tp.stack) == 0 {
		return fmt.Errorf("tau: Stop(%q) with no open region", region)
	}
	fr := tp.stack[len(tp.stack)-1]
	if fr.region != region {
		return fmt.Errorf("tau: Stop(%q) but innermost region is %q", region, fr.region)
	}
	tp.stack = tp.stack[:len(tp.stack)-1]
	t, vals, err := tp.read()
	if err != nil {
		return err
	}
	st := tp.stats[region]
	if st == nil {
		st = &RegionStat{
			Region: region,
			Incl:   make([]int64, len(tp.buf)),
			Excl:   make([]int64, len(tp.buf)),
		}
		tp.stats[region] = st
	}
	st.Calls++
	dUsec := t - fr.startUsec
	st.InclUsec += dUsec
	st.ExclUsec += dUsec - fr.childUsec
	for i := range vals {
		d := vals[i] - fr.startVals[i]
		st.Incl[i] += d
		st.Excl[i] += d - fr.childVals[i]
	}
	if len(tp.stack) > 0 {
		parent := &tp.stack[len(tp.stack)-1]
		parent.childUsec += dUsec
		for i := range vals {
			parent.childVals[i] += vals[i] - fr.startVals[i]
		}
	}
	if tp.tbuf != nil {
		tp.tbuf.Append(t, trace.KindExit, region, vals)
	}
	return nil
}

// Marker drops a point annotation into the trace.
func (tp *ThreadProfiler) Marker(label string) {
	if tp.tbuf == nil {
		return
	}
	t := tp.th.VirtUsec()
	tp.tbuf.Append(t, trace.KindMarker, label, nil)
}

// Thread returns the underlying papi thread.
func (tp *ThreadProfiler) Thread() *papi.Thread { return tp.th }

// Stats returns the thread's region profiles sorted by exclusive time,
// descending.
func (tp *ThreadProfiler) Stats() []RegionStat {
	out := make([]RegionStat, 0, len(tp.stats))
	for _, st := range tp.stats {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ExclUsec != out[j].ExclUsec {
			return out[i].ExclUsec > out[j].ExclUsec
		}
		return out[i].Region < out[j].Region
	})
	return out
}

// Close stops all thread counters. Open regions are an error.
func (p *Profiler) Close() error {
	for _, tp := range p.threads {
		if len(tp.stack) != 0 {
			return fmt.Errorf("tau: thread %d has %d open regions at Close", tp.tid, len(tp.stack))
		}
		if tp.es != nil {
			if err := tp.es.Stop(nil); err != nil {
				return err
			}
			tp.es = nil
		}
	}
	return nil
}

// MergedTrace merges all threads' traces into one time-ordered log.
func (p *Profiler) MergedTrace() []trace.Event {
	bufs := make([]*trace.Buffer, 0, len(p.threads))
	for _, tp := range p.threads {
		if tp.tbuf != nil {
			bufs = append(bufs, tp.tbuf)
		}
	}
	return trace.Merge(bufs...)
}

// WriteTrace writes the merged trace in the requested format
// ("json" or "vtf").
func (p *Profiler) WriteTrace(w io.Writer, format string) error {
	events := p.MergedTrace()
	switch format {
	case "json":
		return trace.WriteJSON(w, events)
	case "vtf":
		return trace.WriteVTF(w, events)
	}
	return fmt.Errorf("tau: unknown trace format %q", format)
}

// Report renders per-thread profile tables: one column for wall time
// plus one per metric — TAU's separate-profile-per-metric view flattened
// for the terminal.
func (p *Profiler) Report() string {
	var b strings.Builder
	for _, tp := range p.threads {
		fmt.Fprintf(&b, "node %d, thread %d:\n", p.cfg.Node, tp.tid)
		fmt.Fprintf(&b, "%-20s %8s %12s %12s", "REGION", "CALLS", "EXCL_USEC", "INCL_USEC")
		for _, m := range p.cfg.Metrics {
			fmt.Fprintf(&b, " %14s", strings.TrimPrefix(papi.EventName(m), "PAPI_"))
		}
		b.WriteByte('\n')
		for _, st := range tp.Stats() {
			fmt.Fprintf(&b, "%-20s %8d %12d %12d", st.Region, st.Calls, st.ExclUsec, st.InclUsec)
			for i := range p.cfg.Metrics {
				fmt.Fprintf(&b, " %14d", st.Excl[i])
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Correlation is a derived per-region ratio between two metrics — the
// paper's "profiles for the same run can then be compared to see
// important correlations, such as … the correlation of time with
// operation counts and cache or TLB misses".
type Correlation struct {
	Region string
	Ratio  float64
}

// Correlate returns exclusive metric-A over metric-B per region for a
// thread (e.g. L1 misses per load, FLOPs per cycle).
func (tp *ThreadProfiler) Correlate(a, b papi.Event) ([]Correlation, error) {
	ia, ib := -1, -1
	for i, m := range tp.p.cfg.Metrics {
		if m == a {
			ia = i
		}
		if m == b {
			ib = i
		}
	}
	if ia < 0 || ib < 0 {
		return nil, fmt.Errorf("tau: correlate: metrics %s/%s not configured",
			papi.EventName(a), papi.EventName(b))
	}
	var out []Correlation
	for _, st := range tp.Stats() {
		if st.Excl[ib] == 0 {
			continue
		}
		out = append(out, Correlation{Region: st.Region, Ratio: float64(st.Excl[ia]) / float64(st.Excl[ib])})
	}
	return out, nil
}
