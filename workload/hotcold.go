package workload

import (
	"fmt"

	"repro/internal/hwsim"
)

// HotColdConfig parameterizes the attribution kernel.
type HotColdConfig struct {
	Iters int
	Hot   int // FP instructions per iteration, in the "hot" region
	Cold  int // integer instructions per iteration, in the "cold" region
}

// HotColdLoop builds the profiling-attribution kernel of experiment E5:
// every floating-point instruction lives in a compact "hot" text
// region, immediately followed by a run of integer instructions in a
// separate "cold" region. A profiler with exact attribution puts every
// FP-event hit inside the hot region; an out-of-order overflow
// interrupt skids several instructions downstream and lands in the
// cold region instead — the paper's §4 inaccuracy.
func HotColdLoop(cfg HotColdConfig) Program {
	iters := cfg.Iters
	if iters <= 0 {
		iters = 10_000
	}
	hot := cfg.Hot
	if hot <= 0 {
		hot = 4
	}
	cold := cfg.Cold
	if cold <= 0 {
		cold = 16
	}
	hotLo := TextBase
	hotHi := hotLo + uint64(hot)*hwsim.InstrBytes
	coldLo := hotHi
	coldHi := coldLo + uint64(cold+1)*hwsim.InstrBytes // ints + loop branch
	p := &iterProgram{
		name:  fmt.Sprintf("hotcold(iters=%d,hot=%d,cold=%d)", iters, hot, cold),
		iters: iters,
		expected: Expected{
			Instrs:   uint64(iters) * uint64(hot+cold+1),
			FPAdd:    uint64(iters) * uint64(hot),
			Branches: uint64(iters),
		},
	}
	p.regions = []Region{
		{Name: "hot_fp", Lo: hotLo, Hi: hotHi},
		{Name: "cold_int", Lo: coldLo, Hi: coldHi},
	}
	p.gen = func(iter int, q []hwsim.Instr) []hwsim.Instr {
		e := emitter{pc: hotLo, q: q}
		for i := 0; i < hot; i++ {
			e.op(hwsim.OpFPAdd)
		}
		for i := 0; i < cold; i++ {
			e.op(hwsim.OpInt)
		}
		e.branch(iter != iters-1)
		return e.q
	}
	return p
}
