// Package workload provides synthetic instruction-stream programs for
// the simulated machines: dense matrix multiply, the STREAM triad, a
// pointer chase, a 5-point stencil, a branchy reducer, a mixed-
// precision kernel and a phased program. Each workload knows its
// analytically expected operation counts, which is what calibration
// experiments (papi_calibrate, E1, E6) measure against — the same role
// the paper's micro-benchmarks with "expected counts" play in §4.
//
// Programs implement papi.Stream (hwsim.Stream) and generate
// instructions lazily, so arbitrarily long runs execute in constant
// memory. All programs are deterministic.
package workload

import (
	"fmt"

	"repro/internal/hwsim"
)

// TextBase is the text address where workload code is laid out.
const TextBase uint64 = 0x400000

// DataBase is the heap address where workloads place their arrays when
// not bound to a simulated allocator.
const DataBase uint64 = 0x20000000

// Region is a contiguous text range with a name — the simulated
// equivalent of a function symbol, used by profiling tools to correlate
// addresses back to "source".
type Region struct {
	Name string
	Lo   uint64 // first instruction address
	Hi   uint64 // one past the last instruction address
}

// Contains reports whether pc falls inside the region.
func (r Region) Contains(pc uint64) bool { return pc >= r.Lo && pc < r.Hi }

// Expected holds a workload's analytically known event counts. A zero
// field means "not predicted" rather than "zero occurrences" — check
// the workload's documentation.
type Expected struct {
	Instrs   uint64
	FPAdd    uint64
	FPMul    uint64
	FPDiv    uint64
	FMA      uint64
	FPRound  uint64
	Loads    uint64
	Stores   uint64
	Branches uint64
}

// FPInstrs returns the expected floating-point arithmetic instruction
// count (FMA counts once; rounding/conversions excluded).
func (e Expected) FPInstrs() uint64 { return e.FPAdd + e.FPMul + e.FPDiv + e.FMA }

// FLOPs returns the expected floating-point operation count (FMA
// counts twice).
func (e Expected) FLOPs() uint64 { return e.FPAdd + e.FPMul + e.FPDiv + 2*e.FMA }

// Program is a runnable workload.
type Program interface {
	hwsim.Stream
	// Name identifies the workload and its parameters.
	Name() string
	// Regions lists the program's text regions, in address order.
	Regions() []Region
	// Expected returns the analytic operation counts for a full run.
	Expected() Expected
	// Reset rewinds the program so it can be run again.
	Reset()
}

// iterProgram drives a per-iteration generator: gen appends iteration
// i's instructions to the queue; iterations are pure functions of their
// index, so Reset is just a rewind.
type iterProgram struct {
	name     string
	regions  []Region
	expected Expected
	iters    int
	gen      func(i int, q []hwsim.Instr) []hwsim.Instr

	done  int
	queue []hwsim.Instr
	qpos  int
}

func (p *iterProgram) Name() string       { return p.name }
func (p *iterProgram) Regions() []Region  { return p.regions }
func (p *iterProgram) Expected() Expected { return p.expected }

func (p *iterProgram) Reset() {
	p.done = 0
	p.queue = p.queue[:0]
	p.qpos = 0
}

func (p *iterProgram) Next(buf []hwsim.Instr) int {
	n := 0
	for n < len(buf) {
		if p.qpos == len(p.queue) {
			if p.done >= p.iters {
				break
			}
			p.queue = p.gen(p.done, p.queue[:0])
			p.qpos = 0
			p.done++
		}
		c := copy(buf[n:], p.queue[p.qpos:])
		p.qpos += c
		n += c
	}
	return n
}

// emitter lays out instructions at sequential text addresses.
type emitter struct {
	pc uint64
	q  []hwsim.Instr
}

func (e *emitter) op(op hwsim.Op) {
	e.q = append(e.q, hwsim.Instr{Op: op, Addr: e.pc})
	e.pc += hwsim.InstrBytes
}

func (e *emitter) mem(op hwsim.Op, addr uint64) {
	e.q = append(e.q, hwsim.Instr{Op: op, Addr: e.pc, Mem: addr})
	e.pc += hwsim.InstrBytes
}

func (e *emitter) branch(taken bool) {
	e.q = append(e.q, hwsim.Instr{Op: hwsim.OpBranch, Addr: e.pc, Taken: taken})
	e.pc += hwsim.InstrBytes
}

// MatMulConfig parameterizes the dense matrix multiply.
type MatMulConfig struct {
	N      int    // matrix dimension
	UseFMA bool   // fuse multiply-add (FMA hardware)
	BaseA  uint64 // array base addresses; zero selects defaults
	BaseB  uint64
	BaseC  uint64
}

// MatMul builds a naive dense N×N matrix multiply, the canonical
// FLOP-calibration kernel: 2·N³ floating-point operations.
func MatMul(cfg MatMulConfig) Program {
	n := cfg.N
	if n <= 0 {
		n = 32
	}
	elems := uint64(n) * uint64(n) * 8
	baseA, baseB, baseC := cfg.BaseA, cfg.BaseB, cfg.BaseC
	if baseA == 0 {
		baseA = DataBase
	}
	if baseB == 0 {
		baseB = baseA + elems
	}
	if baseC == 0 {
		baseC = baseB + elems
	}
	un := uint64(n)
	// One iteration = one (i,j) output element: n×(2 loads + mul/add or
	// fma) + 1 store + 1 loop branch.
	perIter := 0
	if cfg.UseFMA {
		perIter = 3*n + 2
	} else {
		perIter = 4*n + 2
	}
	p := &iterProgram{
		name:  fmt.Sprintf("matmul(n=%d,fma=%v)", n, cfg.UseFMA),
		iters: n * n,
	}
	p.regions = []Region{{Name: "matmul_kernel", Lo: TextBase, Hi: TextBase + uint64(perIter)*hwsim.InstrBytes}}
	nn := uint64(n) * uint64(n)
	exp := Expected{
		Loads:    2 * nn * un,
		Stores:   nn,
		Branches: nn,
	}
	if cfg.UseFMA {
		exp.FMA = nn * un
		exp.Instrs = nn * (3*un + 2)
	} else {
		exp.FPMul = nn * un
		exp.FPAdd = nn * un
		exp.Instrs = nn * (4*un + 2)
	}
	p.expected = exp
	p.gen = func(iter int, q []hwsim.Instr) []hwsim.Instr {
		i := uint64(iter) / un
		j := uint64(iter) % un
		e := emitter{pc: TextBase, q: q}
		for k := uint64(0); k < un; k++ {
			e.mem(hwsim.OpLoad, baseA+(i*un+k)*8)
			e.mem(hwsim.OpLoad, baseB+(k*un+j)*8)
			if cfg.UseFMA {
				e.op(hwsim.OpFMA)
			} else {
				e.op(hwsim.OpFPMul)
				e.op(hwsim.OpFPAdd)
			}
		}
		e.mem(hwsim.OpStore, baseC+(i*un+j)*8)
		e.branch(iter != n*n-1)
		return e.q
	}
	return p
}

// TriadConfig parameterizes the STREAM triad.
type TriadConfig struct {
	N    int // vector length
	Base uint64
	Reps int // repetitions over the vectors
}

// Triad builds the STREAM triad a[i] = b[i] + s·c[i]: a bandwidth-bound
// kernel with 2 loads, 1 store, 1 mul and 1 add per element.
func Triad(cfg TriadConfig) Program {
	n := cfg.N
	if n <= 0 {
		n = 4096
	}
	reps := cfg.Reps
	if reps <= 0 {
		reps = 1
	}
	base := cfg.Base
	if base == 0 {
		base = DataBase
	}
	un := uint64(n)
	baseB := base + un*8
	baseC := base + 2*un*8
	total := uint64(n) * uint64(reps)
	p := &iterProgram{
		name:  fmt.Sprintf("triad(n=%d,reps=%d)", n, reps),
		iters: n * reps,
		expected: Expected{
			Instrs:   6 * total,
			FPAdd:    total,
			FPMul:    total,
			Loads:    2 * total,
			Stores:   total,
			Branches: total,
		},
	}
	p.regions = []Region{{Name: "triad_kernel", Lo: TextBase, Hi: TextBase + 6*hwsim.InstrBytes}}
	p.gen = func(iter int, q []hwsim.Instr) []hwsim.Instr {
		i := uint64(iter) % un
		e := emitter{pc: TextBase, q: q}
		e.mem(hwsim.OpLoad, baseB+i*8)
		e.mem(hwsim.OpLoad, baseC+i*8)
		e.op(hwsim.OpFPMul)
		e.op(hwsim.OpFPAdd)
		e.mem(hwsim.OpStore, base+i*8)
		e.branch(iter != p.iters-1)
		return e.q
	}
	return p
}

// ChaseConfig parameterizes the pointer chase.
type ChaseConfig struct {
	Nodes int // linked-list length (each node one cache line apart)
	Steps int // dereferences to perform
	Base  uint64
	Seed  uint64
}

// PointerChase builds a dependent-load random walk: the classic
// latency-bound, TLB- and cache-hostile kernel.
func PointerChase(cfg ChaseConfig) Program {
	nodes := cfg.Nodes
	if nodes <= 0 {
		nodes = 1 << 14
	}
	steps := cfg.Steps
	if steps <= 0 {
		steps = nodes * 4
	}
	base := cfg.Base
	if base == 0 {
		base = DataBase
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x5eed
	}
	// A Sattolo-style cycle through all nodes, from a deterministic
	// xorshift, so every dereference is a cold-ish random line.
	perm := make([]uint32, nodes)
	for i := range perm {
		perm[i] = uint32(i)
	}
	x := seed
	next := func(n int) int {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int(x % uint64(n))
	}
	for i := nodes - 1; i > 0; i-- {
		j := next(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	order := make([]uint32, nodes)
	for i := 0; i < nodes; i++ {
		order[perm[i]] = perm[(i+1)%nodes]
	}
	p := &iterProgram{
		name:  fmt.Sprintf("chase(nodes=%d,steps=%d)", nodes, steps),
		iters: steps,
		expected: Expected{
			Instrs:   2 * uint64(steps),
			Loads:    uint64(steps),
			Branches: uint64(steps),
		},
	}
	p.regions = []Region{{Name: "chase_kernel", Lo: TextBase, Hi: TextBase + 2*hwsim.InstrBytes}}
	cur := uint32(0)
	p.gen = func(iter int, q []hwsim.Instr) []hwsim.Instr {
		if iter == 0 {
			cur = 0
		}
		e := emitter{pc: TextBase, q: q}
		e.mem(hwsim.OpLoad, base+uint64(cur)*64)
		e.branch(iter != steps-1)
		cur = order[cur]
		return e.q
	}
	return p
}

// StencilConfig parameterizes the 2-D stencil sweep.
type StencilConfig struct {
	N      int // grid dimension
	Sweeps int
	Base   uint64
}

// Stencil builds a 5-point Jacobi sweep over an N×N grid: 5 loads,
// 4 adds, 1 mul, 1 store per interior point.
func Stencil(cfg StencilConfig) Program {
	n := cfg.N
	if n <= 2 {
		n = 64
	}
	sweeps := cfg.Sweeps
	if sweeps <= 0 {
		sweeps = 1
	}
	base := cfg.Base
	if base == 0 {
		base = DataBase
	}
	un := uint64(n)
	out := base + un*un*8
	inner := uint64(n-2) * uint64(n-2) * uint64(sweeps)
	p := &iterProgram{
		name:  fmt.Sprintf("stencil(n=%d,sweeps=%d)", n, sweeps),
		iters: (n - 2) * (n - 2) * sweeps,
		expected: Expected{
			Instrs:   12 * inner,
			FPAdd:    4 * inner,
			FPMul:    inner,
			Loads:    5 * inner,
			Stores:   inner,
			Branches: inner,
		},
	}
	p.regions = []Region{{Name: "stencil_kernel", Lo: TextBase, Hi: TextBase + 12*hwsim.InstrBytes}}
	per := n - 2
	p.gen = func(iter int, q []hwsim.Instr) []hwsim.Instr {
		k := iter % (per * per)
		i := uint64(k/per) + 1
		j := uint64(k%per) + 1
		e := emitter{pc: TextBase, q: q}
		e.mem(hwsim.OpLoad, base+(i*un+j)*8)
		e.mem(hwsim.OpLoad, base+((i-1)*un+j)*8)
		e.mem(hwsim.OpLoad, base+((i+1)*un+j)*8)
		e.mem(hwsim.OpLoad, base+(i*un+j-1)*8)
		e.mem(hwsim.OpLoad, base+(i*un+j+1)*8)
		e.op(hwsim.OpFPAdd)
		e.op(hwsim.OpFPAdd)
		e.op(hwsim.OpFPAdd)
		e.op(hwsim.OpFPAdd)
		e.op(hwsim.OpFPMul)
		e.mem(hwsim.OpStore, out+(i*un+j)*8)
		e.branch(iter != p.iters-1)
		return e.q
	}
	return p
}

// BranchyConfig parameterizes the data-dependent branch kernel.
type BranchyConfig struct {
	N    int
	Seed uint64
	Base uint64
}

// Branchy builds a reducer whose inner branch depends on pseudo-random
// data — a mispredict generator for BR_MSP experiments.
func Branchy(cfg BranchyConfig) Program {
	n := cfg.N
	if n <= 0 {
		n = 1 << 14
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0xb4a2c
	}
	base := cfg.Base
	if base == 0 {
		base = DataBase
	}
	p := &iterProgram{
		name:  fmt.Sprintf("branchy(n=%d)", n),
		iters: n,
		expected: Expected{
			Instrs:   4 * uint64(n),
			Loads:    uint64(n),
			Branches: 2 * uint64(n),
		},
	}
	p.regions = []Region{{Name: "branchy_kernel", Lo: TextBase, Hi: TextBase + 4*hwsim.InstrBytes}}
	p.gen = func(iter int, q []hwsim.Instr) []hwsim.Instr {
		h := (uint64(iter) + seed) * 0x9e3779b97f4a7c15
		e := emitter{pc: TextBase, q: q}
		e.mem(hwsim.OpLoad, base+uint64(iter%4096)*8)
		e.branch(h>>63 == 1) // data-dependent: ~50% taken
		e.op(hwsim.OpInt)
		e.branch(iter != n-1) // loop branch: predictable
		return e.q
	}
	return p
}

// MixedPrecisionConfig parameterizes the rounding-instruction kernel.
type MixedPrecisionConfig struct {
	N int
}

// MixedPrecision builds the kernel behind the paper's POWER3
// discrepancy (§4): code converting between single and double precision
// executes extra rounding instructions, which some platforms' FP events
// count as floating-point instructions. Per iteration: 1 load, 1 add,
// 1 mul, 1 round/convert, 1 store.
func MixedPrecision(cfg MixedPrecisionConfig) Program {
	n := cfg.N
	if n <= 0 {
		n = 1 << 14
	}
	p := &iterProgram{
		name:  fmt.Sprintf("mixedprec(n=%d)", n),
		iters: n,
		expected: Expected{
			Instrs:   6 * uint64(n),
			FPAdd:    uint64(n),
			FPMul:    uint64(n),
			FPRound:  uint64(n),
			Loads:    uint64(n),
			Stores:   uint64(n),
			Branches: uint64(n),
		},
	}
	p.regions = []Region{{Name: "mixedprec_kernel", Lo: TextBase, Hi: TextBase + 6*hwsim.InstrBytes}}
	p.gen = func(iter int, q []hwsim.Instr) []hwsim.Instr {
		e := emitter{pc: TextBase, q: q}
		e.mem(hwsim.OpLoad, DataBase+uint64(iter%8192)*8)
		e.op(hwsim.OpFPAdd)
		e.op(hwsim.OpFPMul)
		e.op(hwsim.OpFPRound) // double → single conversion
		e.mem(hwsim.OpStore, DataBase+(1<<20)+uint64(iter%8192)*4)
		e.branch(iter != n-1)
		return e.q
	}
	return p
}

// Concat runs programs back to back, concatenating their streams. The
// phased program behind the perfometer trace (Figure 2) is a Concat of
// compute-bound and memory-bound phases: the FLOP rate visibly dips in
// the memory phases.
type Concat struct {
	Label    string
	Programs []Program
	cur      int
}

// NewConcat builds a sequential composition of programs.
func NewConcat(label string, progs ...Program) *Concat {
	return &Concat{Label: label, Programs: progs}
}

// Name implements Program.
func (c *Concat) Name() string { return c.Label }

// Regions implements Program: the union of phase regions.
func (c *Concat) Regions() []Region {
	var out []Region
	seen := map[string]bool{}
	for _, p := range c.Programs {
		for _, r := range p.Regions() {
			if !seen[r.Name] {
				seen[r.Name] = true
				out = append(out, r)
			}
		}
	}
	return out
}

// Expected implements Program: the sum over phases.
func (c *Concat) Expected() Expected {
	var e Expected
	for _, p := range c.Programs {
		pe := p.Expected()
		e.Instrs += pe.Instrs
		e.FPAdd += pe.FPAdd
		e.FPMul += pe.FPMul
		e.FPDiv += pe.FPDiv
		e.FMA += pe.FMA
		e.FPRound += pe.FPRound
		e.Loads += pe.Loads
		e.Stores += pe.Stores
		e.Branches += pe.Branches
	}
	return e
}

// Reset implements Program.
func (c *Concat) Reset() {
	c.cur = 0
	for _, p := range c.Programs {
		p.Reset()
	}
}

// Next implements hwsim.Stream.
func (c *Concat) Next(buf []hwsim.Instr) int {
	for c.cur < len(c.Programs) {
		if n := c.Programs[c.cur].Next(buf); n > 0 {
			return n
		}
		c.cur++
	}
	return 0
}
