package workload

import (
	"testing"

	"repro/internal/hwsim"
)

func TestLUExpectedCounts(t *testing.T) {
	checkExpected(t, LU(LUConfig{N: 12}))
	checkExpected(t, LU(LUConfig{N: 9, UseFMA: true}))
}

func TestLUDivideCount(t *testing.T) {
	n := 10
	p := LU(LUConfig{N: n})
	want := uint64(n * (n - 1) / 2)
	if got := p.Expected().FPDiv; got != want {
		t.Errorf("LU divides = %d, want %d", got, want)
	}
}

func TestGUPSExpectedCounts(t *testing.T) {
	checkExpected(t, GUPS(GUPSConfig{TableWords: 1 << 10, Updates: 5000}))
}

func TestGUPSRoundsTableToPowerOfTwo(t *testing.T) {
	p := GUPS(GUPSConfig{TableWords: 1000, Updates: 10})
	if p.Name() != "gups(words=1024,updates=10)" {
		t.Errorf("name = %s", p.Name())
	}
}

func TestGUPSMissesHard(t *testing.T) {
	// A table far beyond cache: most updates miss L1.
	p := GUPS(GUPSConfig{TableWords: 1 << 18, Updates: 50_000}) // 2 MiB table
	cpu := runTruth(t, p)
	accesses := cpu.Truth(hwsim.SigL1DAccess)
	misses := cpu.Truth(hwsim.SigL1DMiss)
	// Each update is a load (miss) followed by a store to the same
	// just-loaded line (hit): the asymptotic miss rate is 1/2.
	if rate := float64(misses) / float64(accesses); rate < 0.45 {
		t.Errorf("GUPS miss rate %.2f, want ~0.5", rate)
	}
}

func TestDotExpectedCounts(t *testing.T) {
	checkExpected(t, Dot(DotConfig{N: 4000}))
	checkExpected(t, Dot(DotConfig{N: 4000, UseFMA: true}))
}

func TestExtraReplayAndRegions(t *testing.T) {
	progs := []Program{
		LU(LUConfig{N: 8}),
		GUPS(GUPSConfig{TableWords: 256, Updates: 300}),
		Dot(DotConfig{N: 200, UseFMA: true}),
	}
	for _, p := range progs {
		var first, second []hwsim.Instr
		var buf [64]hwsim.Instr
		for {
			n := p.Next(buf[:])
			if n == 0 {
				break
			}
			first = append(first, buf[:n]...)
		}
		p.Reset()
		for {
			n := p.Next(buf[:])
			if n == 0 {
				break
			}
			second = append(second, buf[:n]...)
		}
		if len(first) != len(second) {
			t.Fatalf("%s: replay length mismatch", p.Name())
		}
		regions := p.Regions()
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("%s: replay diverges at %d", p.Name(), i)
			}
			inside := false
			for _, r := range regions {
				if r.Contains(first[i].Addr) {
					inside = true
				}
			}
			if !inside {
				t.Fatalf("%s: instr at %#x outside regions", p.Name(), first[i].Addr)
			}
		}
	}
}

func TestExtraDefaults(t *testing.T) {
	if LU(LUConfig{}).Expected().FPDiv == 0 {
		t.Error("LU default")
	}
	if GUPS(GUPSConfig{}).Expected().Stores == 0 {
		t.Error("GUPS default")
	}
	if Dot(DotConfig{}).Expected().FPMul == 0 {
		t.Error("Dot default")
	}
}

func TestBlockedMatMulExpectedCounts(t *testing.T) {
	checkExpected(t, BlockedMatMul(BlockedMatMulConfig{N: 16, Block: 8}))
	checkExpected(t, BlockedMatMul(BlockedMatMulConfig{N: 12, Block: 4, UseFMA: true}))
}

func TestBlockedMatMulSameFLOPsAsNaive(t *testing.T) {
	naive, blocked := BlockedVsNaive(32, 8, false)
	if naive.Expected().FLOPs() != blocked.Expected().FLOPs() {
		t.Errorf("FLOPs differ: naive %d, blocked %d",
			naive.Expected().FLOPs(), blocked.Expected().FLOPs())
	}
	if naive.Expected().Loads != blocked.Expected().Loads {
		t.Errorf("loads differ: naive %d, blocked %d",
			naive.Expected().Loads, blocked.Expected().Loads)
	}
}

func TestBlockedMatMulReducesMisses(t *testing.T) {
	// The point of the transformation: on a machine whose L1 cannot
	// hold the full matrices, the blocked version misses far less.
	run := func(p Program) (misses, cycles uint64) {
		a, _ := hwsim.ArchByPlatform(hwsim.PlatformLinuxX86) // 16K L1
		cpu := hwsim.MustNewCPU(a, 31)
		cpu.Run(p)
		return cpu.Truth(hwsim.SigL1DMiss), cpu.Cycles()
	}
	naive, blocked := BlockedVsNaive(96, 16, false) // 3×72K matrices >> 16K L1
	nm, nc := run(naive)
	bm, bc := run(blocked)
	if bm*2 > nm {
		t.Errorf("blocked misses %d not well below naive %d", bm, nm)
	}
	if bc >= nc {
		t.Errorf("blocked cycles %d not below naive %d", bc, nc)
	}
}

func TestBlockedMatMulRoundsUpToTiles(t *testing.T) {
	p := BlockedMatMul(BlockedMatMulConfig{N: 50, Block: 16})
	if p.Name() != "blockedmatmul(n=64,b=16,fma=false)" {
		t.Errorf("name = %s", p.Name())
	}
}
