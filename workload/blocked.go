package workload

import (
	"fmt"

	"repro/internal/hwsim"
)

// BlockedMatMulConfig parameterizes the cache-blocked matrix multiply.
type BlockedMatMulConfig struct {
	N      int // matrix dimension (multiple of Block)
	Block  int // tile size
	UseFMA bool
	BaseA  uint64
	BaseB  uint64
	BaseC  uint64
}

// BlockedMatMul is the tiled variant of MatMul: same floating-point
// work, drastically fewer cache misses when the working tile fits L1 —
// the textbook transformation performance counters exist to validate
// (§1: counters serve "application performance analysis and tuning").
// Compare against MatMul with PAPI_L1_DCM to watch the optimization
// land; see examples/tuning.
func BlockedMatMul(cfg BlockedMatMulConfig) Program {
	n := cfg.N
	if n <= 0 {
		n = 48
	}
	blk := cfg.Block
	if blk <= 0 {
		blk = 16
	}
	if n%blk != 0 {
		n = (n/blk + 1) * blk // round up to a whole number of tiles
	}
	elems := uint64(n) * uint64(n) * 8
	baseA, baseB, baseC := cfg.BaseA, cfg.BaseB, cfg.BaseC
	if baseA == 0 {
		baseA = DataBase
	}
	if baseB == 0 {
		baseB = baseA + elems
	}
	if baseC == 0 {
		baseC = baseB + elems
	}
	un := uint64(n)
	nb := n / blk

	// One iteration = one (ii,jj,kk,i) tile row: for each j in the jj
	// tile, accumulate over k in the kk tile, then store c[i][j].
	iters := nb * nb * nb * blk
	nn := uint64(n) * uint64(n)
	un3 := nn * un
	exp := Expected{
		Loads:    2 * un3,
		Stores:   nn * uint64(nb), // c stored once per kk tile
		Branches: uint64(iters),
	}
	perIter := 0
	if cfg.UseFMA {
		exp.FMA = un3
		exp.Instrs = 3*un3 + exp.Stores + exp.Branches
		perIter = blk*(3*blk+1) + 1
	} else {
		exp.FPMul = un3
		exp.FPAdd = un3
		exp.Instrs = 4*un3 + exp.Stores + exp.Branches
		perIter = blk*(4*blk+1) + 1
	}
	p := &iterProgram{
		name:     fmt.Sprintf("blockedmatmul(n=%d,b=%d,fma=%v)", n, blk, cfg.UseFMA),
		iters:    iters,
		expected: exp,
	}
	p.regions = []Region{{Name: "blockedmatmul_kernel", Lo: TextBase, Hi: TextBase + uint64(perIter)*hwsim.InstrBytes}}
	p.gen = func(iter int, q []hwsim.Instr) []hwsim.Instr {
		// Decompose iter into (ii, jj, kk, i-within-tile).
		t := iter
		i0 := t % blk
		t /= blk
		kk := t % nb
		t /= nb
		jj := t % nb
		ii := t / nb
		i := uint64(ii*blk + i0)
		e := emitter{pc: TextBase, q: q}
		for j0 := 0; j0 < blk; j0++ {
			j := uint64(jj*blk + j0)
			for k0 := 0; k0 < blk; k0++ {
				k := uint64(kk*blk + k0)
				e.mem(hwsim.OpLoad, baseA+(i*un+k)*8)
				e.mem(hwsim.OpLoad, baseB+(k*un+j)*8)
				if cfg.UseFMA {
					e.op(hwsim.OpFMA)
				} else {
					e.op(hwsim.OpFPMul)
					e.op(hwsim.OpFPAdd)
				}
			}
			e.mem(hwsim.OpStore, baseC+(i*un+j)*8)
		}
		e.branch(iter != iters-1)
		return e.q
	}
	return p
}

// BlockedVsNaive returns a matched pair of programs (same N, same FLOP
// count) for tuning comparisons.
func BlockedVsNaive(n, block int, fma bool) (naive, blocked Program) {
	return MatMul(MatMulConfig{N: n, UseFMA: fma}),
		BlockedMatMul(BlockedMatMulConfig{N: n, Block: block, UseFMA: fma})
}
