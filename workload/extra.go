package workload

import (
	"fmt"

	"repro/internal/hwsim"
)

// LUConfig parameterizes the LU decomposition kernel.
type LUConfig struct {
	N      int
	UseFMA bool
	Base   uint64
}

// LU builds an in-place LU decomposition without pivoting (the kji
// textbook loop): ~2/3·N³ floating-point operations with an N(N-1)/2
// divide count — the divide-heavy profile that distinguishes it from
// matmul in FDV_INS measurements.
func LU(cfg LUConfig) Program {
	n := cfg.N
	if n <= 1 {
		n = 32
	}
	base := cfg.Base
	if base == 0 {
		base = DataBase
	}
	un := uint64(n)

	// One iteration = one (k,i) elimination row: a divide to form the
	// multiplier plus an update across columns j>k.
	type kiPair struct{ k, i int }
	var pairs []kiPair
	var exp Expected
	for k := 0; k < n-1; k++ {
		for i := k + 1; i < n; i++ {
			pairs = append(pairs, kiPair{k, i})
			cols := uint64(n - k - 1)
			// load a[i][k], load a[k][k], div, store multiplier,
			// then per column: load a[k][j], load a[i][j], fma (or
			// mul+add), store a[i][j]; plus the loop branch.
			exp.Loads += 2 + 2*cols
			exp.Stores += 1 + cols
			exp.FPDiv++
			if cfg.UseFMA {
				exp.FMA += cols
				exp.Instrs += 4 + 4*cols + 1
			} else {
				exp.FPMul += cols
				exp.FPAdd += cols
				exp.Instrs += 4 + 5*cols + 1
			}
			exp.Branches++
		}
	}

	perIterMax := 4 + 5*(n-1) + 1
	p := &iterProgram{
		name:     fmt.Sprintf("lu(n=%d,fma=%v)", n, cfg.UseFMA),
		iters:    len(pairs),
		expected: exp,
	}
	p.regions = []Region{{Name: "lu_kernel", Lo: TextBase, Hi: TextBase + uint64(perIterMax)*hwsim.InstrBytes}}
	p.gen = func(iter int, q []hwsim.Instr) []hwsim.Instr {
		pr := pairs[iter]
		k, i := uint64(pr.k), uint64(pr.i)
		e := emitter{pc: TextBase, q: q}
		e.mem(hwsim.OpLoad, base+(i*un+k)*8)
		e.mem(hwsim.OpLoad, base+(k*un+k)*8)
		e.op(hwsim.OpFPDiv)
		e.mem(hwsim.OpStore, base+(i*un+k)*8)
		for j := k + 1; j < un; j++ {
			e.mem(hwsim.OpLoad, base+(k*un+j)*8)
			e.mem(hwsim.OpLoad, base+(i*un+j)*8)
			if cfg.UseFMA {
				e.op(hwsim.OpFMA)
			} else {
				e.op(hwsim.OpFPMul)
				e.op(hwsim.OpFPAdd)
			}
			e.mem(hwsim.OpStore, base+(i*un+j)*8)
		}
		e.branch(iter != len(pairs)-1)
		return e.q
	}
	return p
}

// GUPSConfig parameterizes the random-access update kernel.
type GUPSConfig struct {
	TableWords int // table size in 8-byte words (power of two)
	Updates    int
	Base       uint64
	Seed       uint64
}

// GUPS builds the HPCC RandomAccess-style kernel: read-modify-write at
// pseudo-random table locations. It is the TLB/cache antagonist:
// virtually every update misses.
func GUPS(cfg GUPSConfig) Program {
	words := cfg.TableWords
	if words <= 0 {
		words = 1 << 16
	}
	if words&(words-1) != 0 {
		// Round up to a power of two so index masking is exact.
		p := 1
		for p < words {
			p <<= 1
		}
		words = p
	}
	updates := cfg.Updates
	if updates <= 0 {
		updates = words
	}
	base := cfg.Base
	if base == 0 {
		base = DataBase
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9f5
	}
	p := &iterProgram{
		name:  fmt.Sprintf("gups(words=%d,updates=%d)", words, updates),
		iters: updates,
		expected: Expected{
			Instrs:   4 * uint64(updates),
			Loads:    uint64(updates),
			Stores:   uint64(updates),
			Branches: uint64(updates),
		},
	}
	p.regions = []Region{{Name: "gups_kernel", Lo: TextBase, Hi: TextBase + 4*hwsim.InstrBytes}}
	mask := uint64(words - 1)
	p.gen = func(iter int, q []hwsim.Instr) []hwsim.Instr {
		// The HPCC LCG-ish index stream, derived purely from iter so
		// Reset replays identically.
		x := (uint64(iter) + seed) * 0x2545f4914f6cdd1d
		x ^= x >> 29
		addr := base + (x&mask)*8
		e := emitter{pc: TextBase, q: q}
		e.mem(hwsim.OpLoad, addr)
		e.op(hwsim.OpInt) // the xor
		e.mem(hwsim.OpStore, addr)
		e.branch(iter != updates-1)
		return e.q
	}
	return p
}

// DotConfig parameterizes the dot-product reduction.
type DotConfig struct {
	N      int
	UseFMA bool
	Base   uint64
}

// Dot builds the inner-product reduction sum += x[i]·y[i]: the
// 2-FLOPs-per-2-loads kernel whose balance sits between matmul and
// triad.
func Dot(cfg DotConfig) Program {
	n := cfg.N
	if n <= 0 {
		n = 1 << 15
	}
	base := cfg.Base
	if base == 0 {
		base = DataBase
	}
	un := uint64(n)
	baseY := base + un*8
	exp := Expected{
		Loads:    2 * un,
		Branches: un,
	}
	perIter := 0
	if cfg.UseFMA {
		exp.FMA = un
		exp.Instrs = 4 * un
		perIter = 4
	} else {
		exp.FPMul = un
		exp.FPAdd = un
		exp.Instrs = 5 * un
		perIter = 5
	}
	p := &iterProgram{
		name:     fmt.Sprintf("dot(n=%d,fma=%v)", n, cfg.UseFMA),
		iters:    n,
		expected: exp,
	}
	p.regions = []Region{{Name: "dot_kernel", Lo: TextBase, Hi: TextBase + uint64(perIter)*hwsim.InstrBytes}}
	p.gen = func(iter int, q []hwsim.Instr) []hwsim.Instr {
		i := uint64(iter)
		e := emitter{pc: TextBase, q: q}
		e.mem(hwsim.OpLoad, base+i*8)
		e.mem(hwsim.OpLoad, baseY+i*8)
		if cfg.UseFMA {
			e.op(hwsim.OpFMA)
		} else {
			e.op(hwsim.OpFPMul)
			e.op(hwsim.OpFPAdd)
		}
		e.branch(iter != n-1)
		return e.q
	}
	return p
}
