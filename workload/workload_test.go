package workload

import (
	"testing"

	"repro/internal/hwsim"
)

// runTruth executes a program on a T3E core (in-order, exact) and
// returns the CPU's ground-truth signal totals.
func runTruth(t *testing.T, p Program) *hwsim.CPU {
	t.Helper()
	a, ok := hwsim.ArchByPlatform(hwsim.PlatformCrayT3E)
	if !ok {
		t.Fatal("no t3e arch")
	}
	cpu := hwsim.MustNewCPU(a, 99)
	cpu.Run(p)
	return cpu
}

func checkExpected(t *testing.T, p Program) {
	t.Helper()
	cpu := runTruth(t, p)
	e := p.Expected()
	checks := []struct {
		name string
		sig  hwsim.Signal
		want uint64
	}{
		{"instrs", hwsim.SigInstrs, e.Instrs},
		{"fpadd", hwsim.SigFPAdd, e.FPAdd},
		{"fpmul", hwsim.SigFPMul, e.FPMul},
		{"fpdiv", hwsim.SigFPDiv, e.FPDiv},
		{"fma", hwsim.SigFMA, e.FMA},
		{"fpround", hwsim.SigFPRound, e.FPRound},
		{"loads", hwsim.SigLoads, e.Loads},
		{"stores", hwsim.SigStores, e.Stores},
		{"branches", hwsim.SigBranch, e.Branches},
	}
	for _, c := range checks {
		if got := cpu.Truth(c.sig); got != c.want {
			t.Errorf("%s: %s = %d, expected %d", p.Name(), c.name, got, c.want)
		}
	}
}

func TestMatMulExpectedCounts(t *testing.T) {
	checkExpected(t, MatMul(MatMulConfig{N: 12}))
	checkExpected(t, MatMul(MatMulConfig{N: 8, UseFMA: true}))
}

func TestTriadExpectedCounts(t *testing.T) {
	checkExpected(t, Triad(TriadConfig{N: 500, Reps: 3}))
}

func TestChaseExpectedCounts(t *testing.T) {
	checkExpected(t, PointerChase(ChaseConfig{Nodes: 256, Steps: 1000}))
}

func TestStencilExpectedCounts(t *testing.T) {
	checkExpected(t, Stencil(StencilConfig{N: 20, Sweeps: 2}))
}

func TestBranchyExpectedCounts(t *testing.T) {
	checkExpected(t, Branchy(BranchyConfig{N: 2000}))
}

func TestMixedPrecisionExpectedCounts(t *testing.T) {
	checkExpected(t, MixedPrecision(MixedPrecisionConfig{N: 3000}))
}

func TestConcatExpectedCounts(t *testing.T) {
	c := NewConcat("phased",
		MatMul(MatMulConfig{N: 8}),
		Triad(TriadConfig{N: 200}),
	)
	checkExpected(t, c)
	if c.Name() != "phased" {
		t.Error("concat name")
	}
	if len(c.Regions()) != 2 {
		t.Errorf("concat regions = %v", c.Regions())
	}
}

func TestResetReplaysIdentically(t *testing.T) {
	progs := []Program{
		MatMul(MatMulConfig{N: 10}),
		PointerChase(ChaseConfig{Nodes: 128, Steps: 500}),
		Branchy(BranchyConfig{N: 500}),
		NewConcat("c", Triad(TriadConfig{N: 100}), Stencil(StencilConfig{N: 10})),
	}
	for _, p := range progs {
		collect := func() []hwsim.Instr {
			var out []hwsim.Instr
			var buf [64]hwsim.Instr
			for {
				n := p.Next(buf[:])
				if n == 0 {
					return out
				}
				out = append(out, buf[:n]...)
			}
		}
		first := collect()
		p.Reset()
		second := collect()
		if len(first) != len(second) {
			t.Fatalf("%s: replay length %d vs %d", p.Name(), len(first), len(second))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("%s: replay diverges at %d: %+v vs %+v", p.Name(), i, first[i], second[i])
			}
		}
		p.Reset()
	}
}

func TestRegionsCoverInstructions(t *testing.T) {
	// Every generated instruction address must fall inside a declared
	// region — profiling tools depend on this.
	progs := []Program{
		MatMul(MatMulConfig{N: 6}),
		Triad(TriadConfig{N: 50}),
		PointerChase(ChaseConfig{Nodes: 64, Steps: 100}),
		Stencil(StencilConfig{N: 8}),
		Branchy(BranchyConfig{N: 100}),
		MixedPrecision(MixedPrecisionConfig{N: 100}),
	}
	for _, p := range progs {
		regions := p.Regions()
		var buf [64]hwsim.Instr
		for {
			n := p.Next(buf[:])
			if n == 0 {
				break
			}
			for _, in := range buf[:n] {
				inside := false
				for _, r := range regions {
					if r.Contains(in.Addr) {
						inside = true
						break
					}
				}
				if !inside {
					t.Fatalf("%s: instruction at %#x outside all regions %v", p.Name(), in.Addr, regions)
				}
			}
		}
	}
}

func TestChaseHitsManyDistinctLines(t *testing.T) {
	p := PointerChase(ChaseConfig{Nodes: 512, Steps: 512})
	seen := map[uint64]bool{}
	var buf [64]hwsim.Instr
	for {
		n := p.Next(buf[:])
		if n == 0 {
			break
		}
		for _, in := range buf[:n] {
			if in.Op == hwsim.OpLoad {
				seen[in.Mem] = true
			}
		}
	}
	if len(seen) < 500 {
		t.Errorf("chase touched only %d distinct lines, want ~512", len(seen))
	}
}

func TestBranchyMispredicts(t *testing.T) {
	p := Branchy(BranchyConfig{N: 20_000})
	cpu := runTruth(t, p)
	miss := cpu.Truth(hwsim.SigBranchMiss)
	br := cpu.Truth(hwsim.SigBranch)
	// Half the branches are coin flips: overall mispredict rate must be
	// substantial (> 10%) unlike a predictable loop.
	if float64(miss)/float64(br) < 0.10 {
		t.Errorf("mispredict rate %.3f too low for data-dependent branches", float64(miss)/float64(br))
	}
}

func TestDefaultsApplied(t *testing.T) {
	if MatMul(MatMulConfig{}).Name() != "matmul(n=32,fma=false)" {
		t.Error("matmul default")
	}
	if PointerChase(ChaseConfig{}).Expected().Loads == 0 {
		t.Error("chase default")
	}
	if Triad(TriadConfig{}).Expected().FPMul == 0 {
		t.Error("triad default")
	}
	if Stencil(StencilConfig{}).Expected().FPAdd == 0 {
		t.Error("stencil default")
	}
	if Branchy(BranchyConfig{}).Expected().Branches == 0 {
		t.Error("branchy default")
	}
	if MixedPrecision(MixedPrecisionConfig{}).Expected().FPRound == 0 {
		t.Error("mixedprec default")
	}
}
