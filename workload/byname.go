package workload

import "fmt"

// ByName constructs a named workload with size parameter n — the
// single factory behind cmd/papirun's -workload flag and papid's
// CREATE_SESSION workload field, so the two surfaces accept the same
// vocabulary. The n parameter scales each kernel the same way the
// papirun flag always did (e.g. matmul is n×n, dot is n²-element).
func ByName(name string, n int) (Program, error) {
	switch name {
	case "matmul":
		return MatMul(MatMulConfig{N: n}), nil
	case "triad":
		return Triad(TriadConfig{N: n, Reps: 8}), nil
	case "chase":
		return PointerChase(ChaseConfig{Nodes: n, Steps: n * 8}), nil
	case "stencil":
		return Stencil(StencilConfig{N: n, Sweeps: 4}), nil
	case "branchy":
		return Branchy(BranchyConfig{N: n * n}), nil
	case "mixedprec":
		return MixedPrecision(MixedPrecisionConfig{N: n * n}), nil
	case "lu":
		return LU(LUConfig{N: n}), nil
	case "gups":
		return GUPS(GUPSConfig{TableWords: n * n, Updates: n * n}), nil
	case "dot":
		return Dot(DotConfig{N: n * n}), nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

// Names lists the workloads ByName accepts.
func Names() []string {
	return []string{"matmul", "triad", "chase", "stencil", "branchy", "mixedprec", "lu", "gups", "dot"}
}
