package substrate

import (
	"fmt"
	"math"

	"repro/internal/hwsim"
)

// samplingContext implements the Context interface on top of hardware
// sampling (Tru64 DADD/ProfileMe, Itanium EARs): the engine samples an
// in-flight instruction every ~period instructions, recording its exact
// address and the events it incurred. Aggregate counts are *estimated*
// as hits × period; overflow dispatch fires on sampled instructions, so
// the reported PC is exact — no skid. The cost is the occasional
// buffer-drain interrupt, which is why this substrate profiles at 1–2 %
// overhead where direct counting costs up to 30 % (§4, experiment E1).
type samplingContext struct {
	sub    *archSubstrate
	cpu    *hwsim.CPU
	period int

	codes []uint32
	sigs  []hwsim.SignalMask

	hits    []uint64 // per code: matching samples
	cycles  []uint64 // per code: summed sample costs (cycle events)
	stalls  []uint64 // per code: summed stall cycles (stall events)
	running bool

	ovf     []ovfConfig
	ovfNext []uint64 // parallel to ovf: next estimate threshold
}

// SetDomain implements Context. The sampling engine observes retired
// user instructions only, so kernel-only counting is unimplementable on
// this substrate kind.
func (c *samplingContext) SetDomain(d hwsim.Domain) error {
	if c.running {
		return fmt.Errorf("substrate: cannot change domain while running")
	}
	if d == hwsim.DomainKernel {
		return fmt.Errorf("substrate: %s: sampling interface cannot count kernel-only", c.sub.arch.Platform)
	}
	return nil
}

func (c *samplingContext) CPU() *hwsim.CPU   { return c.cpu }
func (c *samplingContext) Running() bool     { return c.running }
func (c *samplingContext) WidthMask() uint64 { return math.MaxUint64 }

// Allocate: the sampling interface observes retirement, not counter
// registers, so any set of native events can be measured together (the
// paper notes DADD exposed *all* ProfileMe events). Positions map to
// themselves.
func (c *samplingContext) Allocate(codes []uint32) ([]int, error) {
	assign := make([]int, len(codes))
	for i, code := range codes {
		if _, ok := c.sub.arch.EventByCode(code); !ok {
			return nil, fmt.Errorf("substrate: %s: unknown native event %#x", c.sub.arch.Platform, code)
		}
		assign[i] = i
	}
	return assign, nil
}

func (c *samplingContext) install(codes []uint32) error {
	c.codes = append(c.codes[:0], codes...)
	c.sigs = c.sigs[:0]
	for _, code := range codes {
		ev, ok := c.sub.arch.EventByCode(code)
		if !ok {
			return fmt.Errorf("substrate: unknown native event %#x", code)
		}
		c.sigs = append(c.sigs, ev.Signals)
	}
	c.hits = make([]uint64, len(codes))
	c.cycles = make([]uint64, len(codes))
	c.stalls = make([]uint64, len(codes))
	return nil
}

func (c *samplingContext) Start(codes []uint32, assign []int) error {
	if c.running {
		return fmt.Errorf("substrate: context already running")
	}
	if err := c.install(codes); err != nil {
		return err
	}
	c.ovfNext = make([]uint64, len(c.ovf))
	for i, o := range c.ovf {
		if o.pos < 0 || o.pos >= len(codes) {
			return fmt.Errorf("substrate: overflow position %d out of range", o.pos)
		}
		c.ovfNext[i] = o.threshold
	}
	cost := c.sub.arch.StartCost
	c.cpu.Charge(cost, chargedInstrs(cost))
	if err := c.cpu.ConfigureSampling(c.period, c.consume); err != nil {
		return err
	}
	c.running = true
	return nil
}

// consume folds a drained sample batch into the per-event estimators
// and fires emulated overflow dispatch with exact PCs.
func (c *samplingContext) consume(batch []hwsim.Sample) {
	lat := &c.sub.arch.Latency
	for _, s := range batch {
		for i, mask := range c.sigs {
			if mask.Has(hwsim.SigCycles) {
				c.cycles[i] += uint64(s.Cost)
			}
			if mask.Has(hwsim.SigStallCycles) {
				c.stalls[i] += uint64(s.Cost) - uint64(lat[s.Op])
			}
			// Per-instruction flag signals.
			if mask&s.Signals&^hwsim.Mask(hwsim.SigCycles, hwsim.SigStallCycles) != 0 {
				c.hits[i]++
				c.fireOverflow(i, s.PC)
			}
		}
	}
}

// fireOverflow dispatches emulated overflow for event position pos when
// its estimated count crosses the armed threshold. The PC is the
// sampled instruction's exact address.
func (c *samplingContext) fireOverflow(pos int, pc uint64) {
	for i, o := range c.ovf {
		if o.pos != pos || o.threshold == 0 || o.h == nil {
			continue
		}
		est := c.estimate(pos)
		for est >= c.ovfNext[i] {
			c.ovfNext[i] += o.threshold
			o.h(pc, pos)
		}
	}
}

// estimate scales the sampled statistics back to full-run counts.
func (c *samplingContext) estimate(pos int) uint64 {
	p := uint64(c.period)
	return c.hits[pos]*p + c.cycles[pos]*p + c.stalls[pos]*p
}

func (c *samplingContext) readInto(dst []uint64) error {
	if len(dst) < len(c.codes) {
		return fmt.Errorf("substrate: destination holds %d values, need %d", len(dst), len(c.codes))
	}
	for i := range c.codes {
		dst[i] = c.estimate(i)
	}
	return nil
}

func (c *samplingContext) Read(dst []uint64) error {
	if len(c.codes) == 0 {
		return fmt.Errorf("substrate: nothing programmed")
	}
	cost := c.sub.arch.ReadCost
	c.cpu.Charge(cost, chargedInstrs(cost))
	c.cpu.FlushSamples()
	return c.readInto(dst)
}

func (c *samplingContext) Stop(dst []uint64) error {
	if !c.running {
		return fmt.Errorf("substrate: context not running")
	}
	cost := c.sub.arch.StopCost
	c.cpu.Charge(cost, chargedInstrs(cost))
	c.cpu.FlushSamples()
	c.cpu.DisableSampling()
	c.running = false
	if dst != nil {
		return c.readInto(dst)
	}
	return nil
}

func (c *samplingContext) Reset() error {
	cost := c.sub.arch.ResetCost
	c.cpu.Charge(cost, chargedInstrs(cost))
	c.cpu.FlushSamples()
	clear(c.hits)
	clear(c.cycles)
	clear(c.stalls)
	for i, o := range c.ovf {
		if i < len(c.ovfNext) {
			c.ovfNext[i] = o.threshold
		}
	}
	return nil
}

func (c *samplingContext) Switch(codes []uint32, assign []int) error {
	if !c.running {
		return fmt.Errorf("substrate: switch on stopped context")
	}
	c.cpu.FlushSamples()
	if err := c.install(codes); err != nil {
		return err
	}
	cost := c.sub.arch.SwitchCost
	c.cpu.Charge(cost, chargedInstrs(cost))
	return nil
}

func (c *samplingContext) SetOverflow(pos int, threshold uint64, h OverflowFunc) error {
	if c.running {
		return fmt.Errorf("substrate: cannot arm overflow while running")
	}
	for i := range c.ovf {
		if c.ovf[i].pos == pos {
			if threshold == 0 {
				c.ovf = append(c.ovf[:i], c.ovf[i+1:]...)
				return nil
			}
			c.ovf[i].threshold = threshold
			c.ovf[i].h = h
			return nil
		}
	}
	if threshold == 0 {
		return nil
	}
	c.ovf = append(c.ovf, ovfConfig{pos: pos, threshold: threshold, h: h})
	return nil
}
