package substrate

import (
	"testing"

	"repro/internal/hwsim"
)

// kernel builds a loop body with the given per-iteration op mix.
func kernel(iters int, ops []hwsim.Op) []hwsim.Instr {
	var out []hwsim.Instr
	base := uint64(0x20000000)
	mem := 0
	for it := 0; it < iters; it++ {
		pc := uint64(0x400000)
		for _, op := range ops {
			in := hwsim.Instr{Op: op, Addr: pc}
			if op == hwsim.OpLoad || op == hwsim.OpStore {
				in.Mem = base + uint64(mem)*8
				mem++
			}
			pc += hwsim.InstrBytes
			out = append(out, in)
		}
		out = append(out, hwsim.Instr{Op: hwsim.OpBranch, Addr: pc, Taken: it != iters-1})
	}
	return out
}

func codesByName(t *testing.T, a *hwsim.Arch, names ...string) []uint32 {
	t.Helper()
	out := make([]uint32, len(names))
	for i, n := range names {
		ev, ok := a.EventByName(n)
		if !ok {
			t.Fatalf("event %s not on %s", n, a.Platform)
		}
		out[i] = ev.Code
	}
	return out
}

func TestForPlatformAll(t *testing.T) {
	for _, p := range Platforms() {
		s, err := ForPlatform(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		info := s.Info()
		if info.Platform != p || info.NumCounters <= 0 || info.NumNative == 0 {
			t.Errorf("%s: bad info %+v", p, info)
		}
	}
	if _, err := ForPlatform("beos-hobbit"); err == nil {
		t.Error("expected error for unknown platform")
	}
}

func TestDirectContextCountsMatchTruth(t *testing.T) {
	s, _ := ForPlatform(hwsim.PlatformLinuxX86)
	cpu := hwsim.MustNewCPU(s.Arch(), 1)
	ctx := s.NewContext(cpu)
	codes := codesByName(t, s.Arch(), "FLOPS", "INST_RETIRED")
	assign, err := ctx.Allocate(codes)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Start(codes, assign); err != nil {
		t.Fatal(err)
	}
	fpBefore := cpu.Truth(hwsim.SigFPAdd) + cpu.Truth(hwsim.SigFPMul) + cpu.Truth(hwsim.SigFPDiv)
	cpu.Run(&hwsim.SliceStream{Instrs: kernel(100, []hwsim.Op{hwsim.OpFPAdd, hwsim.OpFPMul, hwsim.OpLoad})})
	vals := make([]uint64, 2)
	if err := ctx.Stop(vals); err != nil {
		t.Fatal(err)
	}
	fpTruth := cpu.Truth(hwsim.SigFPAdd) + cpu.Truth(hwsim.SigFPMul) + cpu.Truth(hwsim.SigFPDiv) - fpBefore
	if vals[0] != fpTruth {
		t.Errorf("FLOPS = %d, truth %d", vals[0], fpTruth)
	}
	if vals[0] != 200 {
		t.Errorf("FLOPS = %d, want 200", vals[0])
	}
	// INST_RETIRED includes the library's own instructions (charge),
	// so it must be at least the program's 301 instructions.
	if vals[1] < 301 {
		t.Errorf("INST_RETIRED = %d, want >= 301", vals[1])
	}
}

func TestDirectContextAllocationConflict(t *testing.T) {
	// R10K: graduated instruction and FP events both live only on
	// counter 1 — a classic two-event conflict.
	s, _ := ForPlatform(hwsim.PlatformIRIXMips)
	cpu := hwsim.MustNewCPU(s.Arch(), 2)
	ctx := s.NewContext(cpu)
	codes := codesByName(t, s.Arch(), "Instr_graduated", "FP_graduated")
	if _, err := ctx.Allocate(codes); err == nil {
		t.Error("expected conflict: both events require counter 1 on R10K")
	}
	// The issued-side event coexists with the graduated FP event.
	codes = codesByName(t, s.Arch(), "Instr_issued", "FP_graduated")
	if _, err := ctx.Allocate(codes); err != nil {
		t.Errorf("unexpected conflict: %v", err)
	}
}

func TestGroupedAllocationPower3(t *testing.T) {
	s, _ := ForPlatform(hwsim.PlatformAIXPower3)
	cpu := hwsim.MustNewCPU(s.Arch(), 3)
	ctx := s.NewContext(cpu)
	// FPU-detail group members: fine together.
	codes := codesByName(t, s.Arch(), "PM_FPU_FADD", "PM_FPU_FMUL", "PM_FPU_FMA", "PM_CYC")
	if _, err := ctx.Allocate(codes); err != nil {
		t.Errorf("in-group allocation failed: %v", err)
	}
	// FPU detail + branch mispredict: no single group holds both.
	codes = codesByName(t, s.Arch(), "PM_FPU_FADD", "PM_BR_MPRED")
	if _, err := ctx.Allocate(codes); err == nil {
		t.Error("expected group conflict on POWER3")
	}
}

func TestDirectContextReadResetSwitch(t *testing.T) {
	s, _ := ForPlatform(hwsim.PlatformCrayT3E)
	cpu := hwsim.MustNewCPU(s.Arch(), 4)
	ctx := s.NewContext(cpu)
	codes := codesByName(t, s.Arch(), "CYCLES", "FP_INST")
	assign, err := ctx.Allocate(codes)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Start(codes, assign); err != nil {
		t.Fatal(err)
	}
	cpu.Run(&hwsim.SliceStream{Instrs: kernel(10, []hwsim.Op{hwsim.OpFPAdd})})
	vals := make([]uint64, 2)
	if err := ctx.Read(vals); err != nil {
		t.Fatal(err)
	}
	if vals[1] != 10 {
		t.Errorf("FP_INST = %d, want 10", vals[1])
	}
	if err := ctx.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Read(vals); err != nil {
		t.Fatal(err)
	}
	if vals[1] != 0 {
		t.Errorf("after reset FP_INST = %d", vals[1])
	}
	// Switch to a different event list while running.
	codes2 := codesByName(t, s.Arch(), "CYCLES", "LOADS")
	assign2, err := ctx.Allocate(codes2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Switch(codes2, assign2); err != nil {
		t.Fatal(err)
	}
	cpu.Run(&hwsim.SliceStream{Instrs: kernel(5, []hwsim.Op{hwsim.OpLoad})})
	if err := ctx.Read(vals); err != nil {
		t.Fatal(err)
	}
	if vals[1] != 5 {
		t.Errorf("after switch LOADS = %d, want 5", vals[1])
	}
	if err := ctx.Stop(nil); err != nil {
		t.Fatal(err)
	}
}

func TestDirectContextStateErrors(t *testing.T) {
	s, _ := ForPlatform(hwsim.PlatformLinuxX86)
	cpu := hwsim.MustNewCPU(s.Arch(), 5)
	ctx := s.NewContext(cpu)
	if err := ctx.Stop(nil); err == nil {
		t.Error("Stop on idle context should fail")
	}
	codes := codesByName(t, s.Arch(), "INST_RETIRED")
	assign, _ := ctx.Allocate(codes)
	if err := ctx.Start(codes, assign); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Start(codes, assign); err == nil {
		t.Error("double Start should fail")
	}
	if err := ctx.SetOverflow(0, 100, nil); err == nil {
		t.Error("SetOverflow while running should fail")
	}
	if !ctx.Running() {
		t.Error("context should be running")
	}
}

func TestDirectContextOverflowDispatch(t *testing.T) {
	s, _ := ForPlatform(hwsim.PlatformCrayT3E)
	cpu := hwsim.MustNewCPU(s.Arch(), 6)
	ctx := s.NewContext(cpu)
	codes := codesByName(t, s.Arch(), "FP_INST")
	var fires int
	if err := ctx.SetOverflow(0, 50, func(pc uint64, pos int) {
		if pos != 0 {
			t.Errorf("overflow pos = %d", pos)
		}
		fires++
	}); err != nil {
		t.Fatal(err)
	}
	assign, _ := ctx.Allocate(codes)
	if err := ctx.Start(codes, assign); err != nil {
		t.Fatal(err)
	}
	cpu.Run(&hwsim.SliceStream{Instrs: kernel(500, []hwsim.Op{hwsim.OpFPAdd})})
	ctx.Stop(nil)
	if fires != 10 {
		t.Errorf("overflow fired %d times for 500 FP ops at threshold 50, want 10", fires)
	}
}

func TestSamplingContextEstimatesConverge(t *testing.T) {
	s, _ := ForPlatform(hwsim.PlatformTru64Alpha)
	cpu := hwsim.MustNewCPU(s.Arch(), 7)
	ctx, err := s.NewSamplingContext(cpu, 128)
	if err != nil {
		t.Fatal(err)
	}
	codes := codesByName(t, s.Arch(), "RET_FLOPS", "RET_INST", "CYCLES")
	assign, err := ctx.Allocate(codes)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Start(codes, assign); err != nil {
		t.Fatal(err)
	}
	fp0 := cpu.Truth(hwsim.SigFPAdd)
	ins0 := cpu.Truth(hwsim.SigInstrs)
	cyc0 := cpu.Truth(hwsim.SigCycles)
	cpu.Run(&hwsim.SliceStream{Instrs: kernel(200_000, []hwsim.Op{hwsim.OpFPAdd, hwsim.OpFPAdd, hwsim.OpLoad, hwsim.OpInt})})
	vals := make([]uint64, 3)
	if err := ctx.Stop(vals); err != nil {
		t.Fatal(err)
	}
	// Cycle estimates converge more slowly than instruction-count
	// estimates: per-sample cost has heavy-tailed variance (cache-miss
	// outliers) and the drain-interrupt overhead itself is invisible to
	// the sampler, so allow a wider band there.
	checks := []struct {
		name  string
		est   uint64
		truth uint64
		tol   float64
	}{
		{"RET_FLOPS", vals[0], cpu.Truth(hwsim.SigFPAdd) - fp0, 0.05},
		{"RET_INST", vals[1], cpu.Truth(hwsim.SigInstrs) - ins0, 0.05},
		{"CYCLES", vals[2], cpu.Truth(hwsim.SigCycles) - cyc0, 0.10},
	}
	for _, c := range checks {
		rel := relErr(c.est, c.truth)
		if rel > c.tol {
			t.Errorf("%s estimate %d vs truth %d (rel err %.1f%%)", c.name, c.est, c.truth, rel*100)
		}
	}
}

func TestSamplingContextUnconstrainedAllocation(t *testing.T) {
	// DADD exposes all events regardless of the 2 physical counters.
	s, _ := ForPlatform(hwsim.PlatformTru64Alpha)
	cpu := hwsim.MustNewCPU(s.Arch(), 8)
	ctx, _ := s.NewSamplingContext(cpu, 256)
	a := s.Arch()
	codes := make([]uint32, 0, len(a.Events))
	for _, ev := range a.Events {
		codes = append(codes, ev.Code)
	}
	if _, err := ctx.Allocate(codes); err != nil {
		t.Errorf("sampling context rejected %d events: %v", len(codes), err)
	}
}

func TestSamplingContextExactOverflowPC(t *testing.T) {
	s, _ := ForPlatform(hwsim.PlatformTru64Alpha)
	cpu := hwsim.MustNewCPU(s.Arch(), 9)
	ctx, _ := s.NewSamplingContext(cpu, 64)
	codes := codesByName(t, s.Arch(), "RET_FLOPS")
	instrs := kernel(30_000, []hwsim.Op{hwsim.OpFPAdd, hwsim.OpLoad, hwsim.OpInt, hwsim.OpInt})
	fpAddrs := map[uint64]bool{}
	for _, in := range instrs {
		if in.Op == hwsim.OpFPAdd {
			fpAddrs[in.Addr] = true
		}
	}
	var fires, wrong int
	ctx.SetOverflow(0, 1000, func(pc uint64, pos int) {
		fires++
		if !fpAddrs[pc] {
			wrong++
		}
	})
	assign, _ := ctx.Allocate(codes)
	if err := ctx.Start(codes, assign); err != nil {
		t.Fatal(err)
	}
	cpu.Run(&hwsim.SliceStream{Instrs: instrs})
	ctx.Stop(nil)
	if fires == 0 {
		t.Fatal("no emulated overflows fired")
	}
	if wrong != 0 {
		t.Errorf("%d/%d overflow PCs were not FP instructions; sampling attribution must be exact", wrong, fires)
	}
}

func TestSamplingOverheadIsLow(t *testing.T) {
	// The E1 claim, at substrate level: sampled run costs only ~1-2%
	// more cycles than an unmonitored run.
	run := func(monitor bool) uint64 {
		s, _ := ForPlatform(hwsim.PlatformTru64Alpha)
		cpu := hwsim.MustNewCPU(s.Arch(), 10)
		var ctx Context
		if monitor {
			ctx = s.NewContext(cpu) // DADD default
			codes := codesByName(t, s.Arch(), "RET_FLOPS")
			assign, _ := ctx.Allocate(codes)
			if err := ctx.Start(codes, assign); err != nil {
				t.Fatal(err)
			}
		}
		cpu.Run(&hwsim.SliceStream{Instrs: kernel(100_000, []hwsim.Op{hwsim.OpFPAdd, hwsim.OpLoad, hwsim.OpInt})})
		if monitor {
			ctx.Stop(make([]uint64, 1))
		}
		return cpu.Cycles()
	}
	base := run(false)
	mon := run(true)
	overhead := float64(mon-base) / float64(base)
	if overhead > 0.03 {
		t.Errorf("sampling overhead %.2f%%, want <= 3%%", overhead*100)
	}
	if overhead <= 0 {
		t.Error("monitoring should cost something")
	}
}

func TestNewSamplingContextErrors(t *testing.T) {
	s, _ := ForPlatform(hwsim.PlatformLinuxX86)
	cpu := hwsim.MustNewCPU(s.Arch(), 11)
	if _, err := s.NewSamplingContext(cpu, 128); err == nil {
		t.Error("x86 must not offer a sampling context")
	}
	s2, _ := ForPlatform(hwsim.PlatformTru64Alpha)
	if _, err := s2.NewSamplingContext(cpu, 0); err == nil {
		t.Error("period 0 must be rejected")
	}
}

func relErr(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	d := float64(a) - float64(b)
	if d < 0 {
		d = -d
	}
	return d / float64(b)
}
