package substrate

import (
	"fmt"

	"repro/internal/hwsim"
)

// ovfConfig is a pending overflow arm request, keyed by position in the
// next programmed code list.
type ovfConfig struct {
	pos       int
	threshold uint64
	h         OverflowFunc
}

// directContext is the classic substrate kind: counts are live hardware
// registers, overflow interrupts come from the PMU with the
// architecture's skid, and every access charges the platform's
// syscall/library cost.
type directContext struct {
	sub     *archSubstrate
	cpu     *hwsim.CPU
	codes   []uint32
	assign  []int // codes[i] lives on physical counter assign[i]
	domain  hwsim.Domain
	running bool
	ovf     []ovfConfig
}

func (c *directContext) CPU() *hwsim.CPU   { return c.cpu }
func (c *directContext) Running() bool     { return c.running }
func (c *directContext) WidthMask() uint64 { return c.cpu.PMU().WidthMask() }

func (c *directContext) Allocate(codes []uint32) ([]int, error) {
	return c.sub.allocate(codes)
}

// chargedInstrs approximates the instruction footprint of a library
// call of the given cycle cost; the counters see the perturbation.
func chargedInstrs(cycles uint64) uint64 { return cycles / 2 }

func (c *directContext) program(codes []uint32, assign []int) error {
	if len(codes) != len(assign) {
		return fmt.Errorf("substrate: %d codes but %d assignments", len(codes), len(assign))
	}
	m := make(map[int]hwsim.NativeEvent, len(codes))
	for i, code := range codes {
		ev, ok := c.sub.arch.EventByCode(code)
		if !ok {
			return fmt.Errorf("substrate: unknown native event %#x", code)
		}
		m[assign[i]] = *ev
	}
	if err := c.cpu.PMU().Program(m); err != nil {
		return err
	}
	if c.domain != 0 {
		c.cpu.PMU().SetDomain(c.domain)
	}
	c.codes = append(c.codes[:0], codes...)
	c.assign = append(c.assign[:0], assign...)
	return nil
}

// SetDomain implements Context.
func (c *directContext) SetDomain(d hwsim.Domain) error {
	if c.running {
		return fmt.Errorf("substrate: cannot change domain while running")
	}
	c.domain = d
	return nil
}

func (c *directContext) Start(codes []uint32, assign []int) error {
	if c.running {
		return fmt.Errorf("substrate: context already running")
	}
	if err := c.program(codes, assign); err != nil {
		return err
	}
	pmu := c.cpu.PMU()
	pmu.Reset()
	// Arm overflow dispatch: translate positions to physical counters.
	handlers := make(map[int]OverflowFunc)
	posByCounter := make(map[int]int)
	for i, ctr := range c.assign {
		posByCounter[ctr] = i
	}
	for _, o := range c.ovf {
		if o.pos < 0 || o.pos >= len(c.codes) {
			return fmt.Errorf("substrate: overflow position %d out of range", o.pos)
		}
		ctr := c.assign[o.pos]
		if err := pmu.SetOverflow(ctr, o.threshold); err != nil {
			return err
		}
		handlers[ctr] = o.h
	}
	if len(handlers) > 0 {
		pmu.SetHandler(func(pc uint64, reg int) {
			if h, ok := handlers[reg]; ok && h != nil {
				h(pc, posByCounter[reg])
			}
		})
	} else {
		pmu.SetHandler(nil)
	}
	cost := c.sub.arch.StartCost
	c.cpu.Charge(cost, chargedInstrs(cost))
	pmu.Start()
	c.running = true
	return nil
}

func (c *directContext) readInto(dst []uint64) error {
	if len(dst) < len(c.codes) {
		return fmt.Errorf("substrate: destination holds %d values, need %d", len(dst), len(c.codes))
	}
	pmu := c.cpu.PMU()
	for i, ctr := range c.assign {
		v, err := pmu.Read(ctr)
		if err != nil {
			return err
		}
		dst[i] = v
	}
	return nil
}

func (c *directContext) Read(dst []uint64) error {
	if len(c.codes) == 0 {
		return fmt.Errorf("substrate: nothing programmed")
	}
	cost := c.sub.arch.ReadCost
	c.cpu.Charge(cost, chargedInstrs(cost))
	return c.readInto(dst)
}

func (c *directContext) Stop(dst []uint64) error {
	if !c.running {
		return fmt.Errorf("substrate: context not running")
	}
	cost := c.sub.arch.StopCost
	c.cpu.Charge(cost, chargedInstrs(cost))
	c.cpu.PMU().Stop()
	c.running = false
	if dst != nil {
		return c.readInto(dst)
	}
	return nil
}

func (c *directContext) Reset() error {
	cost := c.sub.arch.ResetCost
	c.cpu.Charge(cost, chargedInstrs(cost))
	c.cpu.PMU().Reset()
	return nil
}

func (c *directContext) Switch(codes []uint32, assign []int) error {
	if !c.running {
		return fmt.Errorf("substrate: switch on stopped context")
	}
	pmu := c.cpu.PMU()
	pmu.Stop()
	if err := c.program(codes, assign); err != nil {
		pmu.Start() // restore old set on failure
		return err
	}
	cost := c.sub.arch.SwitchCost
	c.cpu.Charge(cost, chargedInstrs(cost))
	pmu.Start()
	return nil
}

func (c *directContext) SetOverflow(pos int, threshold uint64, h OverflowFunc) error {
	if c.running {
		return fmt.Errorf("substrate: cannot arm overflow while running")
	}
	for i := range c.ovf {
		if c.ovf[i].pos == pos {
			if threshold == 0 {
				c.ovf = append(c.ovf[:i], c.ovf[i+1:]...)
				return nil
			}
			c.ovf[i].threshold = threshold
			c.ovf[i].h = h
			return nil
		}
	}
	if threshold == 0 {
		return nil
	}
	c.ovf = append(c.ovf, ovfConfig{pos: pos, threshold: threshold, h: h})
	return nil
}
