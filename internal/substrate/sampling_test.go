package substrate

import (
	"testing"

	"repro/internal/hwsim"
)

// Focused tests for the sampling (DADD/EAR) context paths: switch,
// reset, overflow arm/disarm, domain rules, and the error surface.

func samplingCtx(t *testing.T, period int) (Context, *hwsim.CPU, *hwsim.Arch) {
	t.Helper()
	s, _ := ForPlatform(hwsim.PlatformTru64Alpha)
	cpu := hwsim.MustNewCPU(s.Arch(), 21)
	ctx, err := s.NewSamplingContext(cpu, period)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, cpu, s.Arch()
}

func TestSamplingContextSwitchAndReset(t *testing.T) {
	ctx, cpu, a := samplingCtx(t, 64)
	codes := codesByName(t, a, "RET_FLOPS")
	assign, _ := ctx.Allocate(codes)
	if err := ctx.Start(codes, assign); err != nil {
		t.Fatal(err)
	}
	cpu.Run(&hwsim.SliceStream{Instrs: kernel(30_000, []hwsim.Op{hwsim.OpFPAdd})})
	vals := make([]uint64, 1)
	if err := ctx.Read(vals); err != nil {
		t.Fatal(err)
	}
	if vals[0] == 0 {
		t.Fatal("no FP estimate")
	}
	// Reset zeroes the estimators.
	if err := ctx.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Read(vals); err != nil {
		t.Fatal(err)
	}
	if vals[0] > 5000 {
		t.Errorf("estimate after reset = %d, want ~0", vals[0])
	}
	// Switch to a different event list while running.
	codes2 := codesByName(t, a, "RET_LOADS", "RET_INST")
	assign2, _ := ctx.Allocate(codes2)
	if err := ctx.Switch(codes2, assign2); err != nil {
		t.Fatal(err)
	}
	cpu.Run(&hwsim.SliceStream{Instrs: kernel(30_000, []hwsim.Op{hwsim.OpLoad})})
	vals2 := make([]uint64, 2)
	if err := ctx.Stop(vals2); err != nil {
		t.Fatal(err)
	}
	if relErr(vals2[0], 30_000) > 0.10 {
		t.Errorf("loads estimate after switch = %d, want ~30000", vals2[0])
	}
}

func TestSamplingContextStateErrors(t *testing.T) {
	ctx, _, a := samplingCtx(t, 128)
	codes := codesByName(t, a, "RET_FLOPS")
	if err := ctx.Stop(nil); err == nil {
		t.Error("stop before start accepted")
	}
	if err := ctx.Switch(codes, []int{0}); err == nil {
		t.Error("switch before start accepted")
	}
	if err := ctx.Read(nil); err == nil {
		t.Error("read before install accepted")
	}
	if _, err := ctx.Allocate([]uint32{0xdeadbeef}); err == nil {
		t.Error("unknown code accepted")
	}
	assign, _ := ctx.Allocate(codes)
	if err := ctx.Start(codes, assign); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Start(codes, assign); err == nil {
		t.Error("double start accepted")
	}
	if err := ctx.SetOverflow(0, 100, nil); err == nil {
		t.Error("overflow arm while running accepted")
	}
	if err := ctx.SetDomain(hwsim.DomainUser); err == nil {
		t.Error("domain change while running accepted")
	}
	short := make([]uint64, 0)
	if err := ctx.Read(short); err == nil {
		t.Error("short destination accepted")
	}
	if !ctx.Running() {
		t.Error("should be running")
	}
	if err := ctx.Stop(nil); err != nil {
		t.Fatal(err)
	}
}

func TestSamplingContextOverflowDisarm(t *testing.T) {
	ctx, cpu, a := samplingCtx(t, 64)
	codes := codesByName(t, a, "RET_FLOPS")
	fires := 0
	if err := ctx.SetOverflow(0, 2000, func(pc uint64, pos int) { fires++ }); err != nil {
		t.Fatal(err)
	}
	// Re-arm with a new threshold, then disarm entirely.
	if err := ctx.SetOverflow(0, 1000, func(pc uint64, pos int) { fires++ }); err != nil {
		t.Fatal(err)
	}
	if err := ctx.SetOverflow(0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := ctx.SetOverflow(1, 0, nil); err != nil {
		t.Fatal(err) // disarming something never armed is a no-op
	}
	assign, _ := ctx.Allocate(codes)
	if err := ctx.Start(codes, assign); err != nil {
		t.Fatal(err)
	}
	cpu.Run(&hwsim.SliceStream{Instrs: kernel(20_000, []hwsim.Op{hwsim.OpFPAdd})})
	ctx.Stop(nil)
	if fires != 0 {
		t.Errorf("disarmed overflow fired %d times", fires)
	}
}

func TestSamplingContextBadOverflowPosition(t *testing.T) {
	ctx, _, a := samplingCtx(t, 64)
	codes := codesByName(t, a, "RET_FLOPS")
	if err := ctx.SetOverflow(5, 100, func(uint64, int) {}); err != nil {
		t.Fatal(err) // config is lazy...
	}
	assign, _ := ctx.Allocate(codes)
	if err := ctx.Start(codes, assign); err == nil { // ...start validates
		t.Error("out-of-range overflow position accepted at start")
	}
}

func TestSamplingContextKernelDomainRejected(t *testing.T) {
	ctx, _, _ := samplingCtx(t, 64)
	if err := ctx.SetDomain(hwsim.DomainKernel); err == nil {
		t.Error("kernel-only domain must be rejected on a sampling substrate")
	}
	if err := ctx.SetDomain(hwsim.DomainUser); err != nil {
		t.Errorf("user domain rejected: %v", err)
	}
	if err := ctx.SetDomain(hwsim.DomainAll); err != nil {
		t.Errorf("all domain rejected: %v", err)
	}
}

func TestSamplingContextStallEstimate(t *testing.T) {
	// The stall-cycle estimator path: REPLAY_TRAP (stall cycles) on a
	// memory-bound kernel must estimate a nonzero stall total.
	ctx, cpu, a := samplingCtx(t, 64)
	codes := codesByName(t, a, "REPLAY_TRAP")
	assign, _ := ctx.Allocate(codes)
	if err := ctx.Start(codes, assign); err != nil {
		t.Fatal(err)
	}
	// Strided loads through 8 MiB: systematic cache misses = stalls.
	var instrs []hwsim.Instr
	for i := 0; i < 60_000; i++ {
		instrs = append(instrs, hwsim.Instr{Op: hwsim.OpLoad, Addr: 0x400000, Mem: 0x40000000 + uint64(i)*128})
	}
	cpu.Run(&hwsim.SliceStream{Instrs: instrs})
	vals := make([]uint64, 1)
	if err := ctx.Stop(vals); err != nil {
		t.Fatal(err)
	}
	stallTruth := cpu.Truth(hwsim.SigStallCycles)
	if vals[0] == 0 {
		t.Fatal("no stall estimate")
	}
	if relErr(vals[0], stallTruth) > 0.20 {
		t.Errorf("stall estimate %d vs truth %d", vals[0], stallTruth)
	}
}

func TestDirectContextErrorSurface(t *testing.T) {
	s, _ := ForPlatform(hwsim.PlatformLinuxX86)
	cpu := hwsim.MustNewCPU(s.Arch(), 22)
	ctx := s.NewContext(cpu)
	codes := codesByName(t, s.Arch(), "INST_RETIRED")
	if err := ctx.Read(make([]uint64, 1)); err == nil {
		t.Error("read before program accepted")
	}
	if err := ctx.Switch(codes, []int{0}); err == nil {
		t.Error("switch before start accepted")
	}
	if err := ctx.Start(codes, []int{0, 1}); err == nil {
		t.Error("mismatched assignment length accepted")
	}
	if err := ctx.Start([]uint32{0xbad}, []int{0}); err == nil {
		t.Error("unknown code accepted")
	}
	// Arm then fully disarm overflow; also disarm a never-armed pos.
	if err := ctx.SetOverflow(0, 10, func(uint64, int) {}); err != nil {
		t.Fatal(err)
	}
	if err := ctx.SetOverflow(0, 20, func(uint64, int) {}); err != nil {
		t.Fatal(err)
	}
	if err := ctx.SetOverflow(0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := ctx.SetOverflow(3, 0, nil); err != nil {
		t.Fatal(err)
	}
	// Out-of-range overflow position caught at Start.
	ctx2 := s.NewContext(hwsim.MustNewCPU(s.Arch(), 23))
	ctx2.SetOverflow(7, 10, func(uint64, int) {})
	if err := ctx2.Start(codes, []int{0}); err == nil {
		t.Error("out-of-range overflow position accepted")
	}
	// Short destination on read.
	ctx3 := s.NewContext(hwsim.MustNewCPU(s.Arch(), 24))
	both := codesByName(t, s.Arch(), "INST_RETIRED", "CPU_CLK_UNHALTED")
	assign, _ := ctx3.Allocate(both)
	ctx3.Start(both, assign)
	if err := ctx3.Read(make([]uint64, 1)); err == nil {
		t.Error("short destination accepted")
	}
	if err := ctx3.Stop(make([]uint64, 1)); err == nil {
		t.Error("short stop destination accepted")
	}
}

func TestSamplingOverheadScalesWithPeriod(t *testing.T) {
	run := func(period int) uint64 {
		ctx, cpu, a := samplingCtx(t, period)
		codes := codesByName(t, a, "RET_FLOPS")
		assign, _ := ctx.Allocate(codes)
		if err := ctx.Start(codes, assign); err != nil {
			t.Fatal(err)
		}
		cpu.Run(&hwsim.SliceStream{Instrs: kernel(80_000, []hwsim.Op{hwsim.OpFPAdd, hwsim.OpInt})})
		ctx.Stop(make([]uint64, 1))
		return cpu.Cycles()
	}
	dense, sparse := run(32), run(1024)
	if dense <= sparse {
		t.Errorf("denser sampling (%d cycles) should cost more than sparser (%d)", dense, sparse)
	}
}
