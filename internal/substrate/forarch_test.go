package substrate

import (
	"testing"

	"repro/internal/hwsim"
)

func TestForArchCustomPort(t *testing.T) {
	// The porting story: a brand-new machine is one Arch table away.
	custom := *mustArch(t, hwsim.PlatformCrayT3E)
	custom.Platform = "research-riscy"
	custom.Name = "Research RISC-Y"
	custom.NumCounters = 3
	s, err := ForArch(&custom)
	if err != nil {
		t.Fatal(err)
	}
	if s.Info().Model != "Research RISC-Y" {
		t.Errorf("info %+v", s.Info())
	}
	cpu := hwsim.MustNewCPU(&custom, 1)
	ctx := s.NewContext(cpu)
	codes := codesByName(t, &custom, "FP_INST")
	assign, err := ctx.Allocate(codes)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Start(codes, assign); err != nil {
		t.Fatal(err)
	}
	cpu.Run(&hwsim.SliceStream{Instrs: kernel(25, []hwsim.Op{hwsim.OpFPAdd})})
	vals := make([]uint64, 1)
	if err := ctx.Stop(vals); err != nil {
		t.Fatal(err)
	}
	if vals[0] != 25 {
		t.Errorf("custom port counted %d", vals[0])
	}
}

func TestForArchRejectsInvalid(t *testing.T) {
	bad := *mustArch(t, hwsim.PlatformCrayT3E)
	bad.NumCounters = 0
	if _, err := ForArch(&bad); err == nil {
		t.Error("invalid arch accepted")
	}
}

func TestSamplingDefaultOnlyOnTru64(t *testing.T) {
	// The DADD default-context path is specific to tru64; ia64 (which
	// also has sampling hardware) defaults to direct counting.
	s, _ := ForPlatform(hwsim.PlatformLinuxIA64)
	cpu := hwsim.MustNewCPU(s.Arch(), 2)
	ctx := s.NewContext(cpu)
	if ctx.WidthMask() == ^uint64(0) {
		t.Error("ia64 default context should be direct counting (width-masked)")
	}
	s2, _ := ForPlatform(hwsim.PlatformTru64Alpha)
	cpu2 := hwsim.MustNewCPU(s2.Arch(), 3)
	ctx2 := s2.NewContext(cpu2)
	if ctx2.WidthMask() != ^uint64(0) {
		t.Error("tru64 default context should be the DADD sampling kind")
	}
}

func mustArch(t *testing.T, platform string) *hwsim.Arch {
	t.Helper()
	a, ok := hwsim.ArchByPlatform(platform)
	if !ok {
		t.Fatalf("no arch %s", platform)
	}
	return a
}
