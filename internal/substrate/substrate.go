// Package substrate implements the machine-dependent layer of the PAPI
// architecture (Figure 1 of the paper): one substrate per platform,
// each translating the portable layer's requests into operations on
// that platform's native counter interface. Porting PAPI to a new
// machine means writing exactly one new substrate.
//
// Two context kinds exist, mirroring the paper:
//
//   - the direct-counting context, used by most platforms, where reads
//     return live hardware register values and overflow interrupts
//     carry (possibly skidded) program counters; and
//   - the sampling context (Tru64 DADD/ProfileMe, Itanium EARs), where
//     aggregate counts are *estimated* from hardware samples and
//     overflow dispatch carries exact instruction addresses.
//
// Every operation charges its platform's access cost, in cycles, to the
// simulated CPU — the measurement perturbs the measured program exactly
// as the paper discusses in §4.
package substrate

import (
	"fmt"
	"sort"

	"repro/internal/alloc"
	"repro/internal/hwsim"
)

// Info summarizes a substrate for papi_avail-style queries.
type Info struct {
	Platform     string
	Model        string
	ClockMHz     int
	NumCounters  int
	CounterWidth uint
	HWSampling   bool
	HasGroups    bool
	NumNative    int
}

// OverflowFunc receives overflow notifications: pc is the reported
// program counter (skidded on OOO direct-counting substrates, exact on
// sampling substrates) and pos is the index of the overflowed event in
// the programmed code list.
type OverflowFunc func(pc uint64, pos int)

// Context is a per-thread counter context. At most one event list is
// programmed at a time (the PAPI 3 model; the portable layer emulates
// v2 overlapping EventSets on top when asked to, see the E9 ablation).
type Context interface {
	// CPU returns the simulated core the context is bound to.
	CPU() *hwsim.CPU
	// Allocate maps native event codes onto physical counters without
	// touching hardware. It returns one physical counter index per
	// code, or an error naming the conflict.
	Allocate(codes []uint32) ([]int, error)
	// Start programs the given codes/assignment and enables counting.
	Start(codes []uint32, assign []int) error
	// Stop disables counting and writes the final raw values into dst.
	Stop(dst []uint64) error
	// Read writes current raw values into dst (wrapped to counter
	// width on direct-counting substrates).
	Read(dst []uint64) error
	// Reset zeroes the programmed counters.
	Reset() error
	// Switch reprograms the context to a new code list while counting,
	// at the platform's counter-switch cost. Used by multiplexing.
	Switch(codes []uint32, assign []int) error
	// SetOverflow arms overflow dispatch for the event at position pos
	// of the *next* Start's code list. threshold 0 disarms.
	SetOverflow(pos int, threshold uint64, h OverflowFunc) error
	// SetDomain selects the execution modes counted from the next
	// Start on (PAPI_set_domain). Zero selects DomainAll.
	SetDomain(d hwsim.Domain) error
	// Running reports whether counting is enabled.
	Running() bool
	// WidthMask is the wrap mask of raw values returned by Read/Stop;
	// the portable layer uses it to extend counters to 64 bits.
	WidthMask() uint64
}

// Substrate is one platform's machine-dependent implementation.
type Substrate interface {
	Info() Info
	Arch() *hwsim.Arch
	// NewContext returns the platform's default context kind bound to
	// the CPU.
	NewContext(cpu *hwsim.CPU) Context
	// NewSamplingContext returns a hardware-sampling context with the
	// given mean sampling period in instructions. Errors on platforms
	// without sampling hardware.
	NewSamplingContext(cpu *hwsim.CPU, period int) (Context, error)
}

// ForPlatform returns the substrate for a platform key.
func ForPlatform(platform string) (Substrate, error) {
	a, ok := hwsim.ArchByPlatform(platform)
	if !ok {
		return nil, fmt.Errorf("substrate: unknown platform %q (known: %v)", platform, hwsim.Platforms())
	}
	return &archSubstrate{arch: a}, nil
}

// ForArch wraps an arbitrary (possibly experimental) architecture in a
// substrate. Ports to new machines start here: define the Arch tables
// and the generic substrate takes care of the rest.
func ForArch(a *hwsim.Arch) (Substrate, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &archSubstrate{arch: a}, nil
}

// Platforms lists all supported platform keys.
func Platforms() []string { return hwsim.Platforms() }

// archSubstrate serves every simulated architecture: the per-platform
// differences live entirely in the hwsim.Arch tables (event lists,
// masks, groups, costs, sampling support), which is the point of the
// layered design.
type archSubstrate struct {
	arch *hwsim.Arch
}

func (s *archSubstrate) Arch() *hwsim.Arch { return s.arch }

func (s *archSubstrate) Info() Info {
	return Info{
		Platform:     s.arch.Platform,
		Model:        s.arch.Name,
		ClockMHz:     s.arch.ClockMHz,
		NumCounters:  s.arch.NumCounters,
		CounterWidth: s.arch.CounterWidth,
		HWSampling:   s.arch.HWSampling,
		HasGroups:    len(s.arch.Groups) > 0,
		NumNative:    len(s.arch.Events),
	}
}

func (s *archSubstrate) NewContext(cpu *hwsim.CPU) Context {
	if s.arch.Platform == hwsim.PlatformTru64Alpha {
		// Tru64's counter access goes through DADD: aggregate counts
		// are estimated from ProfileMe samples (the paper's §4).
		ctx, err := s.NewSamplingContext(cpu, defaultSamplePeriod)
		if err == nil {
			return ctx
		}
	}
	return &directContext{sub: s, cpu: cpu}
}

func (s *archSubstrate) NewSamplingContext(cpu *hwsim.CPU, period int) (Context, error) {
	if !s.arch.HWSampling {
		return nil, fmt.Errorf("substrate: %s has no hardware sampling interface", s.arch.Platform)
	}
	if period <= 0 {
		return nil, fmt.Errorf("substrate: sampling period must be positive, got %d", period)
	}
	return &samplingContext{sub: s, cpu: cpu, period: period}, nil
}

// allocate is the hardware-dependent half of the PAPI 3 allocation
// split: translate this platform's counter scheme (masks + optional
// groups) into the hardware-independent matching problem and solve it.
func (s *archSubstrate) allocate(codes []uint32) ([]int, error) {
	items := make([]alloc.Item, len(codes))
	for i, code := range codes {
		ev, ok := s.arch.EventByCode(code)
		if !ok {
			return nil, fmt.Errorf("substrate: %s: unknown native event %#x", s.arch.Platform, code)
		}
		items[i] = alloc.Item{ID: code, Mask: ev.CounterMask, Weight: 1}
	}
	if len(s.arch.Groups) > 0 {
		res, _, ok := alloc.AssignGrouped(items, s.arch.NumCounters, s.arch.Groups)
		if !ok {
			return nil, conflictError(s.arch, codes, true)
		}
		return res.Counter, nil
	}
	res, ok := alloc.Assign(items, s.arch.NumCounters)
	if !ok {
		return nil, conflictError(s.arch, codes, false)
	}
	return res.Counter, nil
}

func conflictError(a *hwsim.Arch, codes []uint32, grouped bool) error {
	names := make([]string, 0, len(codes))
	for _, c := range codes {
		if ev, ok := a.EventByCode(c); ok {
			names = append(names, ev.Name)
		}
	}
	sort.Strings(names)
	kind := "counter-conflict"
	if grouped {
		kind = "group/counter-conflict"
	}
	return fmt.Errorf("substrate: %s: %s: events %v cannot be counted simultaneously on %d counters",
		a.Platform, kind, names, a.NumCounters)
}

const defaultSamplePeriod = 512
