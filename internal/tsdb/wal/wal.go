// Package wal makes the tsdb store crash-safe. It journals every
// appended tick row into an append-only, CRC-framed write-ahead log,
// persists blocks the store seals into segment files whose payload is
// the delta-of-delta encoding verbatim, memory-maps finalized segments
// so sealed history is served zero-copy straight from the page cache,
// replays both on startup (tolerating a torn final record), and
// compacts old raw segments into rollup-resolution segments under an
// age/byte budget.
//
// The store knows nothing about files: it exposes the tsdb.Storage
// hook interface plus replay-side install APIs, and this package is
// the only implementation. Wiring order matters — Open the log first,
// hand it to tsdb.New as Config.Storage, then call Start(store) to
// replay before the first append:
//
//	log, _ := wal.Open(dir, wal.Options{...})
//	store := tsdb.New(tsdb.Config{Storage: log, ...})
//	replay, _ := log.Start(store)
package wal

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/tracing"
	"repro/internal/tsdb"
)

// Fsync policies.
const (
	// FsyncAlways syncs the WAL on every append — every acked row
	// survives machine crash; slowest.
	FsyncAlways = "always"
	// FsyncInterval syncs on a timer (Options.FsyncInterval) — bounded
	// loss window on machine crash, no loss on process crash.
	FsyncInterval = "interval"
	// FsyncOff never syncs explicitly — still survives SIGKILL (the
	// kernel has the writes), loses the page cache on machine crash.
	FsyncOff = "off"
)

// Options configures a Log. Zero values select the defaults noted.
type Options struct {
	Fsync         string        // fsync policy; default FsyncInterval
	FsyncInterval time.Duration // interval policy period; default 100ms
	SegmentBytes  int64         // WAL/segment rotation size; default 4 MiB
	DiskBytes     int64         // raw-segment byte budget before compaction; default 64 MiB; <0 unlimited
	CompactAfter  time.Duration // compact raw segments older than this; 0 = budget-only
	RetainAge     time.Duration // delete segments wholly older than this; 0 = keep forever
	CompactEvery  time.Duration // background compaction period; default 30s; <0 disables
	Registry      *telemetry.Registry
	Logger        *slog.Logger
	// Now returns the current time in µs, matching the store's sample
	// timestamps; compaction ages segments against it. Defaults to
	// wall-clock µs. Injectable for tests.
	Now func() int64

	// wrapWAL, when set (tests), wraps the WAL file writer — fault
	// injection for torn-write coverage.
	wrapWAL func(io.Writer) io.Writer
	// wrapSeg, when set (tests), wraps each new segment file writer —
	// fault injection for failed sealed-block persistence.
	wrapSeg func(io.Writer) io.Writer
}

func (o *Options) fill() {
	if o.Fsync == "" {
		o.Fsync = FsyncInterval
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.DiskBytes == 0 {
		o.DiskBytes = 64 << 20
	}
	if o.CompactEvery == 0 {
		o.CompactEvery = 30 * time.Second
	}
	if o.Logger == nil {
		o.Logger = telemetry.Discard()
	}
	if o.Now == nil {
		o.Now = func() int64 { return time.Now().UnixMicro() }
	}
}

// ValidFsync reports whether s names a known fsync policy.
func ValidFsync(s string) bool {
	return s == FsyncAlways || s == FsyncInterval || s == FsyncOff
}

// ErrClosed is returned by appends after Close.
var ErrClosed = errors.New("wal: closed")

const cleanMarker = "CLEAN"

// seriesState is the per-series replay bookkeeping.
type seriesState struct {
	// sealedThrough is the highest WAL row sequence known to be inside
	// a persisted sealed block (or compacted rollup); replay skips rows
	// at or below it.
	sealedThrough uint64
	// pinned is a lower bound on the oldest row sequence this series
	// has outside any sealed block; 0 when none. WAL files whose newest
	// row is older than every pin are deletable.
	pinned uint64
	// lastRow is the newest row sequence appended for this series.
	lastRow uint64
}

type walFileMeta struct {
	path   string
	seq    uint64
	maxSeq uint64 // newest row sequence the file holds
	size   int64
	// unreadable marks a file replay could not read (bad header, IO
	// error). Its contents are unknown, so truncation must never treat
	// its maxSeq of 0 as "older than every pin" and delete what might
	// become readable again; it is kept for manual recovery.
	unreadable bool
}

// ReplayStats describes what Start reconstructed.
type ReplayStats struct {
	CleanStart  bool   `json:"clean_start"` // sealed-marker fast path, nothing replayed
	Blocks      int    `json:"blocks"`      // raw blocks installed from segments
	RollupRuns  int    `json:"rollup_runs"` // rollup runs installed from segments
	Rows        uint64 `json:"rows"`        // WAL rows re-appended
	Samples     uint64 `json:"samples"`     // samples from re-appended rows
	TornRecords int    `json:"torn_records"`
	WALFiles    int    `json:"wal_files"`
	Segments    int    `json:"segments"`
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	Rows              uint64 `json:"rows"`
	Fsyncs            uint64 `json:"fsyncs"`
	SealedBlocks      uint64 `json:"sealed_blocks"`
	Compactions       uint64 `json:"compactions"`
	TruncatedWALFiles uint64 `json:"truncated_wal_files"`
	WriteErrors       uint64 `json:"write_errors"`
	WALFiles          int    `json:"wal_files"`
	Segments          int    `json:"segments"`
	PendingBlocks     int    `json:"pending_blocks"` // sealed blocks awaiting a segment-write retry
	DiskBytes         int64  `json:"disk_bytes"`
	Replay            ReplayStats
}

// Log is the durability layer: tsdb.Storage implementation plus the
// WAL writer. One Log owns one data directory.
type Log struct {
	dir   string
	opts  Options
	store *tsdb.Store

	// mu serializes WAL appends end-to-end, including the store append
	// inside AppendBatch — row sequence order is store insertion order,
	// which replay relies on. Lock order: mu → stateMu, mu → segMu,
	// mu → store shard locks; segMu → shard locks (Remap, compaction);
	// stateMu is a leaf.
	mu       sync.Mutex
	wf       *os.File
	wwr      io.Writer // wf, possibly wrapped by opts.wrapWAL
	wfSeq    uint64
	wfBytes  int64
	wfMaxSeq uint64
	walDirty bool
	lastSeq  uint64
	oldWALs  []walFileMeta
	scratch  []byte

	stateMu sync.Mutex
	state   map[tsdb.SeriesKey]*seriesState

	segMu      sync.Mutex
	sw         *segmentWriter
	segs       []*segment
	nextSegSeq uint64
	// pending holds sealed blocks whose segment write failed, in seal
	// order. They are retried before any newer block is written, so
	// each series' persisted blocks remain a gap-free sequence prefix —
	// the invariant that lets replay treat sealedThrough as a single
	// watermark. Bounded by maxPending; overflow blocks stay WAL-only
	// (their rows stay pinned, so replay recovers them after a crash).
	pending   []tsdb.SealedBlock
	compactMu sync.Mutex // serializes compaction passes

	closed  atomic.Bool
	started atomic.Bool
	stopCh  chan struct{}
	bg      sync.WaitGroup

	rows         atomic.Uint64
	fsyncs       atomic.Uint64
	sealed       atomic.Uint64
	compactions  atomic.Uint64
	truncated    atomic.Uint64
	writeErrs    atomic.Uint64
	replay       ReplayStats
	fsyncHist    *telemetry.Histogram
	logger       *slog.Logger
	hadClean     bool // CLEAN marker present at Open
	loadedWALs   []walFileMeta
	loadErrs     []string
	totalSegTorn int
}

// Open scans dir (creating it if needed), maps every existing segment
// and parses its records, and lists existing WAL files. No store
// interaction happens until Start.
func Open(dir string, opts Options) (*Log, error) {
	opts.fill()
	if !ValidFsync(opts.Fsync) {
		return nil, fmt.Errorf("wal: unknown fsync policy %q", opts.Fsync)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{
		dir:        dir,
		opts:       opts,
		state:      make(map[tsdb.SeriesKey]*seriesState),
		stopCh:     make(chan struct{}),
		logger:     opts.Logger.With("component", "wal"),
		nextSegSeq: 1, // seq 0 is reserved so "replaced through 0" means none
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if name == cleanMarker {
			l.hadClean = true
			continue
		}
		if seq, ok := parseSeq(name, "seg-", ".seg"); ok {
			seg, err := loadSegment(filepath.Join(dir, name), seq)
			if err != nil {
				// A segment that cannot even be opened or mapped is
				// skipped, not fatal: the data it held is lost either
				// way, and refusing to start would lose everything else.
				l.loadErrs = append(l.loadErrs, fmt.Sprintf("%s: %v", name, err))
				continue
			}
			l.totalSegTorn += seg.torn
			l.segs = append(l.segs, seg)
			if seq >= l.nextSegSeq {
				l.nextSegSeq = seq + 1
			}
			continue
		}
		if seq, ok := parseSeq(name, "wal-", ".log"); ok {
			info, err := e.Info()
			var size int64
			if err == nil {
				size = info.Size()
			}
			l.loadedWALs = append(l.loadedWALs, walFileMeta{
				path: filepath.Join(dir, name), seq: seq, size: size,
			})
		}
	}
	sortSegments(l.segs)
	l.pruneStaleSegments()
	sortWALMetas(l.loadedWALs)
	l.registerTelemetry(opts.Registry)
	return l, nil
}

// pruneStaleSegments discards segments superseded by a finalized
// compaction output, and torn compaction outputs themselves (their
// inputs are still live). Runs at Open, before any install.
func (l *Log) pruneStaleSegments() {
	var maxReplaced uint64
	for _, s := range l.segs {
		if s.finalized && s.replacedThrough > maxReplaced {
			maxReplaced = s.replacedThrough
		}
	}
	keep := l.segs[:0]
	for _, s := range l.segs {
		stale := maxReplaced > 0 && s.seq <= maxReplaced
		tornCompact := s.replacedThrough != 0 && !s.finalized
		if !stale && !tornCompact {
			keep = append(keep, s)
			continue
		}
		if err := os.Remove(s.path); err != nil {
			l.logger.Error("stale segment remove failed", "err", err, "path", s.path)
		}
	}
	l.segs = append([]*segment(nil), keep...)
}

func (l *Log) registerTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	l.fsyncHist = reg.NewLatencyHistogram(telemetry.Opts{
		Name: "papid_wal_fsync_seconds",
		Help: "Latency of WAL and segment fsync calls.",
		Key:  "wal/fsync",
	})
	reg.NewCounterFunc(telemetry.Opts{
		Name: "papid_wal_rows_total",
		Help: "Tick rows appended to the write-ahead log.",
	}, l.rows.Load)
	reg.NewCounterFunc(telemetry.Opts{
		Name: "papid_wal_fsyncs_total",
		Help: "fsync calls issued by the durability layer.",
	}, l.fsyncs.Load)
	reg.NewCounterFunc(telemetry.Opts{
		Name: "papid_wal_sealed_blocks_total",
		Help: "Sealed blocks persisted into segment files.",
	}, l.sealed.Load)
	reg.NewCounterFunc(telemetry.Opts{
		Name: "papid_wal_compactions_total",
		Help: "Segment compaction passes that rewrote data.",
	}, l.compactions.Load)
	reg.NewCounterFunc(telemetry.Opts{
		Name: "papid_wal_truncated_files_total",
		Help: "WAL files deleted after their rows were sealed.",
	}, l.truncated.Load)
	reg.NewCounterFunc(telemetry.Opts{
		Name: "papid_wal_write_errors_total",
		Help: "WAL or segment write failures (appends continue in RAM).",
	}, l.writeErrs.Load)
	reg.NewCounterFunc(telemetry.Opts{
		Name: "papid_wal_replayed_rows_total",
		Help: "WAL rows re-appended during startup replay.",
	}, func() uint64 { return l.replay.Rows })
	reg.NewCounterFunc(telemetry.Opts{
		Name: "papid_wal_torn_records_total",
		Help: "Records discarded as torn or corrupt during replay.",
	}, func() uint64 { return uint64(l.replay.TornRecords) })
	reg.NewGaugeFunc(telemetry.Opts{
		Name: "papid_wal_segments",
		Help: "Live sealed segment files.",
	}, func() float64 {
		l.segMu.Lock()
		defer l.segMu.Unlock()
		n := len(l.segs)
		if l.sw != nil {
			n++
		}
		return float64(n)
	})
	reg.NewGaugeFunc(telemetry.Opts{
		Name: "papid_wal_pending_blocks",
		Help: "Sealed blocks whose segment write failed, awaiting retry.",
	}, func() float64 {
		l.segMu.Lock()
		defer l.segMu.Unlock()
		return float64(len(l.pending))
	})
	reg.NewGaugeFunc(telemetry.Opts{
		Name: "papid_wal_disk_bytes",
		Help: "Bytes on disk across WAL and segment files.",
	}, func() float64 { return float64(l.diskBytes()) })
}

func sortWALMetas(ms []walFileMeta) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].seq < ms[j-1].seq; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

// AppendBatch journals one tick row and applies it to the store. The
// WAL write happens first (write-ahead); the store append runs under
// the same lock so sequence order equals store insertion order. A WAL
// write failure degrades to RAM-only for that row — availability over
// durability — and is counted and logged.
func (l *Log) AppendBatch(session uint64, ts int64, events []string, vals []int64) error {
	if len(events) > len(vals) {
		events = events[:len(vals)]
	}
	if len(events) == 0 {
		return nil
	}
	if l.closed.Load() {
		return ErrClosed
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lastSeq++
	seq := l.lastSeq
	payload := appendRow(l.scratch[:0], seq, session, ts, events, vals)
	rec := appendFrame(payload[len(payload):], payload)
	l.scratch = payload[:0]
	var werr error
	if l.wf != nil {
		if _, werr = l.wwr.Write(rec); werr == nil {
			l.wfBytes += int64(len(rec))
			l.wfMaxSeq = seq
			l.rows.Add(1)
			if l.opts.Fsync == FsyncAlways {
				l.fsyncWALLocked()
			} else {
				l.walDirty = true
			}
		} else {
			l.writeErrs.Add(1)
			l.logger.Error("wal append failed; row is RAM-only", "err", werr, "seq", seq)
		}
	}
	l.noteRows(session, ts, events, seq)
	l.store.AppendBatchSeq(session, ts, events, vals, seq)
	if l.wf != nil && werr == nil && l.wfBytes >= l.opts.SegmentBytes {
		l.rotateWALLocked()
	}
	return werr
}

// Row is one tick row for AppendRows: the (session, timestamp, events,
// values) tuple AppendBatch takes as arguments.
type Row struct {
	Session uint64
	TS      int64
	Events  []string
	Vals    []int64
}

// AppendRows journals a batch of tick rows under one lock acquisition
// and — under FsyncAlways — at most one fsync for the whole batch,
// instead of one per row. papid's async WAL appender drains its
// handoff queue through here so one tick's rows cost one lock/fsync
// round regardless of session count. Semantics match len(rows)
// sequential AppendBatch calls: every row hits the journal before the
// store sees it (write-ahead order, which is also what keeps
// seal/truncate bookkeeping honest — a row is journaled before any
// seal it lands in can mark it covered), a failed journal write leaves
// exactly that row RAM-only (counted and logged), and the first write
// error is returned. The only divergence is fsync timing: rows early
// in a batch are synced with the batch, not individually — acceptable
// because tick rows are never acked to a client, unlike PUBLISH rows,
// which keep using AppendBatch's per-row sync.
func (l *Log) AppendRows(rows []Row) error { return l.AppendRowsTraced(rows, nil) }

// AppendRowsTraced is AppendRows with flight-recorder spans: a
// "wal.append" span over the journal writes and store applies, and —
// when the batch syncs (FsyncAlways) — a "wal.fsync" span over the
// sync itself, so a retained trace shows whether a slow batch spent
// its time writing or waiting on the disk. A nil trace records
// nothing.
func (l *Log) AppendRowsTraced(rows []Row, t *tracing.Trace) error {
	if l.closed.Load() {
		return ErrClosed
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	sp := t.StartSpan(tracing.NoSpan, "wal.append")
	var firstErr error
	wrote := false
	for i := range rows {
		r := &rows[i]
		events, vals := r.Events, r.Vals
		if len(events) > len(vals) {
			events = events[:len(vals)]
		}
		if len(events) == 0 {
			continue
		}
		l.lastSeq++
		seq := l.lastSeq
		payload := appendRow(l.scratch[:0], seq, r.Session, r.TS, events, vals)
		rec := appendFrame(payload[len(payload):], payload)
		l.scratch = payload[:0]
		if l.wf != nil {
			if _, werr := l.wwr.Write(rec); werr == nil {
				l.wfBytes += int64(len(rec))
				l.wfMaxSeq = seq
				l.rows.Add(1)
				wrote = true
			} else {
				l.writeErrs.Add(1)
				l.logger.Error("wal append failed; row is RAM-only", "err", werr, "seq", seq)
				if firstErr == nil {
					firstErr = werr
				}
			}
		}
		l.noteRows(r.Session, r.TS, events, seq)
		l.store.AppendBatchSeq(r.Session, r.TS, events, vals, seq)
	}
	if t != nil {
		t.AnnotateInt(sp, "rows", int64(len(rows)))
		t.EndSpan(sp)
	}
	if wrote {
		if l.opts.Fsync == FsyncAlways {
			fs := t.StartSpan(tracing.NoSpan, "wal.fsync")
			l.fsyncWALLocked()
			t.EndSpan(fs)
		} else {
			l.walDirty = true
		}
		if firstErr == nil && l.wfBytes >= l.opts.SegmentBytes {
			l.rotateWALLocked()
		}
	}
	return firstErr
}

// noteRows updates per-series pins before the store append.
func (l *Log) noteRows(session uint64, ts int64, events []string, seq uint64) {
	l.stateMu.Lock()
	for _, ev := range events {
		key := tsdb.SeriesKey{Session: session, Event: ev}
		st := l.state[key]
		if st == nil {
			st = &seriesState{}
			l.state[key] = st
		}
		st.lastRow = seq
		if st.pinned == 0 {
			st.pinned = seq
		}
	}
	l.stateMu.Unlock()
	_ = ts
}

// maxPending bounds the segment-write retry queue. Beyond it, newly
// sealed blocks are not queued: they stay WAL-only (rows pinned, so
// the WAL retains their only durable copy and replay recovers them),
// instead of holding an unbounded number of block buffers alive while
// the disk stays broken.
const maxPending = 256

// OnSeal implements tsdb.Storage: persist newly sealed blocks into the
// active segment, rotating and finalizing it when full. An empty call
// just retries queued blocks.
//
// Only blocks whose segment write actually succeeded advance the
// replay bookkeeping below — a failed block stays RAM-only with its
// WAL rows pinned (truncation must not delete their only durable
// copy), the writer is abandoned (its tracked offsets no longer match
// the file), and the block is queued for retry ahead of any newer
// seal so a series' persisted blocks never develop a gap that the
// sealedThrough watermark would silently skip over at replay.
func (l *Log) OnSeal(blocks []tsdb.SealedBlock) {
	var finalized *segment
	l.segMu.Lock()
	if len(blocks) == 0 && len(l.pending) == 0 {
		l.segMu.Unlock()
		return
	}
	queue := make([]tsdb.SealedBlock, 0, len(l.pending)+len(blocks))
	queue = append(append(queue, l.pending...), blocks...)
	var written []tsdb.SealedBlock
	idx := 0
	for ; idx < len(queue); idx++ {
		sb := queue[idx]
		if err := l.ensureWriterLocked(); err != nil {
			l.writeErrs.Add(1)
			l.logger.Error("segment create failed; sealed block queued for retry", "err", err)
			break
		}
		if err := l.sw.writeBlock(sb); err != nil {
			l.writeErrs.Add(1)
			l.logger.Error("segment append failed; sealed block queued for retry",
				"err", err, "path", l.sw.path)
			l.abandonWriterLocked()
			break
		}
		l.sealed.Add(1)
		written = append(written, sb)
	}
	rest := queue[idx:]
	if len(rest) > maxPending {
		l.logger.Error("segment retry queue full; newest sealed blocks stay WAL-only",
			"unqueued", len(rest)-maxPending)
		rest = rest[:maxPending]
	}
	l.pending = append(l.pending[:0], rest...)
	if l.sw != nil && l.opts.Fsync == FsyncAlways {
		l.fsyncSegLocked()
	}
	if l.sw != nil && l.sw.size >= l.opts.SegmentBytes {
		finalized = l.finalizeWriterLocked()
	}
	l.segMu.Unlock()

	l.stateMu.Lock()
	for _, sb := range written {
		st := l.state[sb.Key]
		if st == nil {
			st = &seriesState{}
			l.state[sb.Key] = st
		}
		if sb.LastSeq > st.sealedThrough {
			st.sealedThrough = sb.LastSeq
		}
		switch {
		case st.lastRow <= sb.LastSeq:
			// Every row of this series is inside a sealed block now.
			st.pinned = 0
		case st.pinned != 0 && st.pinned <= sb.LastSeq:
			// Rows newer than the seal exist; conservatively pin just
			// past the seal (the true oldest unsealed row is ≥ this).
			st.pinned = sb.LastSeq + 1
		}
	}
	l.stateMu.Unlock()

	if l.store != nil {
		for _, sb := range written {
			// Compaction's DropSealedUpTo only evicts blocks the store
			// knows are on disk; everything else is memory's only copy.
			l.store.MarkPersisted(sb.Key, sb.MinTS, sb.N)
		}
	}

	if finalized != nil {
		l.remapFinalized(finalized)
	}
}

// OnDropSeries implements tsdb.Storage: forget replay bookkeeping for
// series the store expired entirely.
func (l *Log) OnDropSeries(keys []tsdb.SeriesKey) {
	l.stateMu.Lock()
	for _, k := range keys {
		delete(l.state, k)
	}
	l.stateMu.Unlock()
}

// ensureWriterLocked opens the active segment writer; segMu held.
func (l *Log) ensureWriterLocked() error {
	if l.sw != nil {
		return nil
	}
	sw, err := createSegment(l.dir, l.nextSegSeq)
	if err != nil {
		return err
	}
	if l.opts.wrapSeg != nil {
		sw.wr = l.opts.wrapSeg(sw.f)
	}
	l.nextSegSeq++
	l.sw = sw
	return nil
}

// abandonWriterLocked retires the active segment writer after a record
// write error: partial bytes may be on disk, so the writer's tracked
// size/offsets no longer match the file, and appending more records
// would produce a finalize index pointing mid-record — losing every
// block in the segment at the next load, not just the failed one. The
// file is closed and left footerless (the torn-tail scan recovers its
// intact prefix) and reloaded into the live segment list; the next
// seal starts a fresh segment. segMu held.
func (l *Log) abandonWriterLocked() {
	sw := l.sw
	if sw == nil {
		return
	}
	l.sw = nil
	// Best effort: the intact prefix holds blocks whose WAL pins are
	// about to be released, so push it to disk before relying on it.
	if err := sw.f.Sync(); err != nil {
		l.logger.Error("abandoned segment sync failed", "err", err, "path", sw.path)
	}
	sw.f.Close()
	if seg, err := loadSegment(sw.path, sw.seq); err == nil {
		l.segs = append(l.segs, seg)
		sortSegments(l.segs)
	} else {
		l.logger.Error("abandoned segment reload failed", "err", err, "path", sw.path)
	}
}

// finalizeWriterLocked finalizes the active segment; segMu held.
// Returns the new immutable segment (nil on error) for remapping
// outside the lock.
func (l *Log) finalizeWriterLocked() *segment {
	sw := l.sw
	l.sw = nil
	seg, err := sw.finalize()
	if err != nil {
		l.writeErrs.Add(1)
		l.logger.Error("segment finalize failed", "err", err, "path", sw.path)
		sw.f.Close() // finalize's early error paths leave the handle open
		// The data written so far is still scannable without a footer;
		// reload it so queries after restart (and compaction now) see it.
		if seg2, lerr := loadSegment(sw.path, sw.seq); lerr == nil {
			l.segs = append(l.segs, seg2)
			sortSegments(l.segs)
		}
		return nil
	}
	l.segs = append(l.segs, seg)
	sortSegments(l.segs)
	return seg
}

// remapFinalized swaps the store's heap copies of a just-finalized
// segment's blocks for slices of its mapping. Outside segMu: Remap
// takes shard locks.
func (l *Log) remapFinalized(seg *segment) {
	if !seg.mapped || l.store == nil {
		return
	}
	for _, ref := range seg.blocks {
		sb := ref.sb
		l.store.Remap(sb.Key, sb.MinTS, sb.N, sb.Buf)
	}
}

// rotateWALLocked starts a fresh WAL file and deletes any rotated
// files whose rows are all sealed. mu held.
func (l *Log) rotateWALLocked() {
	f, err := os.OpenFile(walPath(l.dir, l.wfSeq+1), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		l.writeErrs.Add(1)
		l.logger.Error("wal rotate failed; continuing on current file", "err", err)
		return
	}
	if _, err := f.Write(fileHeader(walMagic)); err != nil {
		f.Close()
		// Remove the header-less leftover: wfSeq was not advanced, so
		// every later rotation would retry this same path and wedge on
		// O_CREATE|O_EXCL EEXIST forever, growing the active WAL
		// without bound and never truncating old rows.
		if rmErr := os.Remove(walPath(l.dir, l.wfSeq+1)); rmErr != nil {
			l.logger.Error("wal rotate leftover remove failed", "err", rmErr)
		}
		l.writeErrs.Add(1)
		l.logger.Error("wal rotate header write failed", "err", err)
		return
	}
	if l.opts.Fsync != FsyncOff {
		l.fsyncWALLocked() // old file is complete and durable before we move on
	}
	old := l.wf
	l.oldWALs = append(l.oldWALs, walFileMeta{
		path: walPath(l.dir, l.wfSeq), seq: l.wfSeq, maxSeq: l.wfMaxSeq, size: l.wfBytes,
	})
	l.wfSeq++
	l.wf = f
	l.wwr = l.wrapWriter(f)
	l.wfBytes = int64(len(walMagic))
	l.wfMaxSeq = 0
	l.walDirty = true
	old.Close()
	l.truncateWALsLocked()
}

func (l *Log) wrapWriter(w io.Writer) io.Writer {
	if l.opts.wrapWAL != nil {
		return l.opts.wrapWAL(w)
	}
	return w
}

// truncateWALsLocked deletes rotated WAL files whose newest row is
// older than every live pin. mu held. Before deleting anything it
// syncs the active segment so the sealed blocks that supersede those
// rows are actually on disk.
func (l *Log) truncateWALsLocked() {
	if len(l.oldWALs) == 0 {
		return
	}
	minPinned := uint64(0)
	l.stateMu.Lock()
	for _, st := range l.state {
		if st.pinned != 0 && (minPinned == 0 || st.pinned < minPinned) {
			minPinned = st.pinned
		}
	}
	l.stateMu.Unlock()
	keep := l.oldWALs[:0]
	synced := false
	for _, m := range l.oldWALs {
		if m.unreadable || (minPinned != 0 && m.maxSeq >= minPinned) {
			keep = append(keep, m)
			continue
		}
		if !synced {
			l.segMu.Lock()
			l.fsyncSegLocked()
			l.segMu.Unlock()
			synced = true
		}
		if err := os.Remove(m.path); err != nil {
			l.logger.Error("wal truncate failed", "err", err, "path", m.path)
			keep = append(keep, m)
			continue
		}
		l.truncated.Add(1)
	}
	l.oldWALs = append([]walFileMeta(nil), keep...)
}

func (l *Log) fsyncWALLocked() {
	if l.wf == nil {
		return
	}
	t0 := time.Now()
	if err := l.wf.Sync(); err != nil {
		l.writeErrs.Add(1)
		l.logger.Error("wal fsync failed", "err", err)
		return
	}
	l.walDirty = false
	l.fsyncs.Add(1)
	if l.fsyncHist != nil {
		l.fsyncHist.Observe(telemetry.Since(t0))
	}
}

// fsyncSegLocked syncs the active segment writer; segMu held.
func (l *Log) fsyncSegLocked() {
	if l.sw == nil || !l.sw.dirty {
		return
	}
	t0 := time.Now()
	if err := l.sw.f.Sync(); err != nil {
		l.writeErrs.Add(1)
		l.logger.Error("segment fsync failed", "err", err)
		return
	}
	l.sw.dirty = false
	l.fsyncs.Add(1)
	if l.fsyncHist != nil {
		l.fsyncHist.Observe(telemetry.Since(t0))
	}
}

// Sync forces WAL and segment data to disk now, regardless of policy.
func (l *Log) Sync() {
	l.mu.Lock()
	if l.walDirty {
		l.fsyncWALLocked()
	}
	l.mu.Unlock()
	l.segMu.Lock()
	l.fsyncSegLocked()
	l.segMu.Unlock()
}

// run is the background loop: interval fsync and periodic compaction.
func (l *Log) run() {
	defer l.bg.Done()
	var syncC, compactC <-chan time.Time
	if l.opts.Fsync == FsyncInterval {
		t := time.NewTicker(l.opts.FsyncInterval)
		defer t.Stop()
		syncC = t.C
	}
	if l.opts.CompactEvery > 0 {
		t := time.NewTicker(l.opts.CompactEvery)
		defer t.Stop()
		compactC = t.C
	}
	for {
		select {
		case <-l.stopCh:
			return
		case <-syncC:
			l.OnSeal(nil) // retry RAM-only sealed blocks on the interval tick
			l.Sync()
		case <-compactC:
			if _, err := l.Compact(l.opts.Now()); err != nil {
				l.logger.Error("compaction failed", "err", err)
			}
		}
	}
}

// diskBytes totals every live file.
func (l *Log) diskBytes() int64 {
	var n int64
	l.mu.Lock()
	n += l.wfBytes
	for _, m := range l.oldWALs {
		n += m.size
	}
	l.mu.Unlock()
	l.segMu.Lock()
	for _, s := range l.segs {
		n += s.size
	}
	if l.sw != nil {
		n += l.sw.size
	}
	l.segMu.Unlock()
	return n
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	st := Stats{
		Rows:              l.rows.Load(),
		Fsyncs:            l.fsyncs.Load(),
		SealedBlocks:      l.sealed.Load(),
		Compactions:       l.compactions.Load(),
		TruncatedWALFiles: l.truncated.Load(),
		WriteErrors:       l.writeErrs.Load(),
		Replay:            l.replay,
		DiskBytes:         l.diskBytes(),
	}
	l.mu.Lock()
	st.WALFiles = len(l.oldWALs)
	if l.wf != nil {
		st.WALFiles++
	}
	l.mu.Unlock()
	l.segMu.Lock()
	st.Segments = len(l.segs)
	if l.sw != nil {
		st.Segments++
	}
	st.PendingBlocks = len(l.pending)
	l.segMu.Unlock()
	return st
}

// Close drains the log gracefully: every active block is sealed and
// persisted, the active segment is finalized, the WAL (now fully
// superseded) is deleted, and a clean-shutdown marker is written so
// the next start replays nothing.
func (l *Log) Close() error {
	if !l.closed.CompareAndSwap(false, true) {
		return nil
	}
	if l.started.Load() {
		close(l.stopCh)
		l.bg.Wait()
	}
	if l.store != nil {
		l.store.SealAllActive() // fires OnSeal → segment writes
	}
	l.OnSeal(nil) // drain the retry queue for blocks SealAllActive did not cover
	var finalized *segment
	l.segMu.Lock()
	if l.sw != nil {
		finalized = l.finalizeWriterLocked()
	}
	l.segMu.Unlock()
	if finalized != nil {
		l.remapFinalized(finalized)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// All rows are sealed now, so every WAL file is deletable — unless
	// some write failed along the way, in which case keep the WAL (the
	// next start replays it; replay is self-deduplicating).
	l.truncateWALsLocked()
	clean := len(l.oldWALs) == 0 && l.writeErrs.Load() == 0
	if l.wf != nil {
		err := l.wf.Sync()
		l.wf.Close()
		if err == nil && clean {
			if rmErr := os.Remove(walPath(l.dir, l.wfSeq)); rmErr != nil {
				clean = false
			}
		} else {
			clean = false
		}
		l.wf = nil
		l.wwr = nil
	}
	if clean {
		if err := os.WriteFile(filepath.Join(l.dir, cleanMarker),
			[]byte(fmt.Sprintf("clean shutdown, last seq %d\n", l.lastSeq)), 0o644); err != nil {
			l.logger.Error("clean marker write failed", "err", err)
		} else if d, err := os.Open(l.dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	return nil
}

// Abandon closes file handles without sealing, truncating or marking
// clean — the moral equivalent of kill -9, for crash-recovery tests.
func (l *Log) Abandon() {
	if !l.closed.CompareAndSwap(false, true) {
		return
	}
	if l.started.Load() {
		close(l.stopCh)
		l.bg.Wait()
	}
	l.mu.Lock()
	if l.wf != nil {
		l.wf.Close()
		l.wf = nil
		l.wwr = nil
	}
	l.mu.Unlock()
	l.segMu.Lock()
	if l.sw != nil {
		l.sw.f.Close()
		l.sw = nil
	}
	l.segMu.Unlock()
}
