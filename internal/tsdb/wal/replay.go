package wal

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/tsdb"
)

// Start attaches the log to its store and reconstructs the store's
// state from disk: rollup runs first (coarsest history), then raw
// sealed blocks (folded into the rollup levels exactly as live appends
// would have), then any WAL rows newer than each series' persisted
// sealed-through sequence. It must be called exactly once, after
// tsdb.New and before the first append; only then does the background
// fsync/compaction loop start.
//
// A clean shutdown leaves no WAL files and a CLEAN marker, so restart
// installs segments and replays nothing — the fast path.
func (l *Log) Start(store *tsdb.Store) (ReplayStats, error) {
	if !l.started.CompareAndSwap(false, true) {
		return ReplayStats{}, fmt.Errorf("wal: Start called twice")
	}
	l.store = store
	rs := ReplayStats{
		Segments:    len(l.segs),
		WALFiles:    len(l.loadedWALs),
		TornRecords: l.totalSegTorn,
	}
	for _, msg := range l.loadErrs {
		l.logger.Error("segment skipped at startup", "detail", msg)
	}
	rs.CleanStart = l.hadClean && len(l.loadedWALs) == 0 && l.totalSegTorn == 0 &&
		len(l.loadErrs) == 0
	// The marker only ever vouches for the state it was written over;
	// remove it before any new writes.
	os.Remove(filepath.Join(l.dir, cleanMarker))

	// Pass 1: rollup runs and watermarks. Segments are in file-sequence
	// order, which is oldest-data-first for rollup outputs.
	for _, seg := range l.segs {
		for _, rr := range seg.rollups {
			if !store.InstallRollup(rr.key, rr.width, rr.buckets) {
				l.logger.Warn("rollup width no longer configured; run skipped",
					"width_us", rr.width, "event", rr.key.Event)
				continue
			}
			rs.RollupRuns++
		}
		for _, w := range seg.marks {
			st := l.stateFor(w.key)
			if w.seq > st.sealedThrough {
				st.sealedThrough = w.seq
			}
			if w.seq > l.lastSeq {
				l.lastSeq = w.seq
			}
		}
	}
	// Pass 2: raw blocks, folded into rollup levels on top of the
	// installed runs.
	for _, seg := range l.segs {
		for _, ref := range seg.blocks {
			sb := ref.sb
			store.InstallSealed(sb, seg.mapped, true)
			rs.Blocks++
			st := l.stateFor(sb.Key)
			if sb.LastSeq > st.sealedThrough {
				st.sealedThrough = sb.LastSeq
			}
			if sb.LastSeq > l.lastSeq {
				l.lastSeq = sb.LastSeq
			}
		}
	}
	// Pass 3: WAL rows not yet inside a sealed block.
	for i := range l.loadedWALs {
		m := &l.loadedWALs[i]
		torn, err := l.replayWALFile(m, &rs)
		if err != nil {
			// Never replayed, so never safe to truncate: keep the file
			// (marked so truncation skips it) for manual recovery — a
			// transient IO error would otherwise get its rows deleted.
			m.unreadable = true
			l.logger.Error("wal file unreadable; kept for manual recovery", "err", err, "path", m.path)
			continue
		}
		if torn && i < len(l.loadedWALs)-1 {
			// A torn tail is expected only in the newest file; anywhere
			// else means real corruption, not a crash artifact.
			l.logger.Warn("torn record in non-final wal file", "path", m.path)
		}
	}
	l.replay = rs
	l.oldWALs = append(l.oldWALs, l.loadedWALs...)
	l.loadedWALs = nil

	// Fresh WAL file for new rows.
	next := uint64(1)
	if n := len(l.oldWALs); n > 0 {
		next = l.oldWALs[n-1].seq + 1
	}
	f, err := os.OpenFile(walPath(l.dir, next), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return rs, err
	}
	if _, err := f.Write(fileHeader(walMagic)); err != nil {
		f.Close()
		return rs, err
	}
	l.wfSeq = next
	l.wf = f
	l.wwr = l.wrapWriter(f)
	l.wfBytes = int64(len(walMagic))
	l.walDirty = true

	store.EnforceBudget()
	l.bg.Add(1)
	go l.run()
	return rs, nil
}

func (l *Log) stateFor(key tsdb.SeriesKey) *seriesState {
	st := l.state[key]
	if st == nil {
		st = &seriesState{}
		l.state[key] = st
	}
	return st
}

// replayWALFile re-appends every row of one WAL file whose samples are
// not already inside persisted sealed blocks. Returns whether the file
// ended in a torn record.
func (l *Log) replayWALFile(m *walFileMeta, rs *ReplayStats) (torn bool, err error) {
	data, err := os.ReadFile(m.path)
	if err != nil {
		return false, err
	}
	if err := checkHeader(data, walMagic); err != nil {
		return false, err
	}
	var keepEv []string
	var keepVals []int64
	off := len(walMagic)
	for off < len(data) {
		payload, next, ferr := readFrame(data, off)
		if ferr != nil {
			rs.TornRecords++
			return true, nil
		}
		off = next
		if len(payload) == 0 || payload[0] != recRow {
			rs.TornRecords++
			return true, nil
		}
		row, derr := decodeRow(payload)
		if derr != nil {
			rs.TornRecords++
			return true, nil
		}
		if row.seq > l.lastSeq {
			l.lastSeq = row.seq
		}
		if row.seq > m.maxSeq {
			m.maxSeq = row.seq
		}
		keepEv = keepEv[:0]
		keepVals = keepVals[:0]
		for i, ev := range row.events {
			if i >= len(row.vals) {
				break
			}
			key := tsdb.SeriesKey{Session: row.session, Event: ev}
			st := l.stateFor(key)
			if row.seq <= st.sealedThrough {
				continue // already inside a persisted sealed block
			}
			st.lastRow = row.seq
			if st.pinned == 0 {
				st.pinned = row.seq
			}
			keepEv = append(keepEv, ev)
			keepVals = append(keepVals, row.vals[i])
		}
		if len(keepEv) == 0 {
			continue
		}
		// Can seal blocks mid-replay; OnSeal then persists them to a
		// fresh segment and updates sealedThrough/pins as usual.
		l.store.AppendBatchSeq(row.session, row.ts, keepEv, keepVals, row.seq)
		rs.Rows++
		rs.Samples += uint64(len(keepEv))
	}
	return false, nil
}
