package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/tsdb"
)

// On-disk record framing, shared by WAL and segment files:
//
//	[u32le payload length][u32le CRC-32C of payload][payload]
//
// The CRC is Castagnoli (hardware-accelerated on every platform we
// care about) over the payload only; the length field is implicitly
// validated by the CRC failing when a torn write corrupts it, plus an
// explicit sanity cap so a garbage length cannot force a huge read.
// The first payload byte is the record type; the rest is the same
// zigzag-varint vocabulary the in-memory delta-of-delta blocks use —
// sealed block records embed the block's encoded buffer verbatim, so
// sealing persists bytes without re-encoding.
const (
	recHeaderLen = 8
	// maxRecordLen caps one record: a sealed block is at most
	// BlockSamples * ~20 bytes, rollup runs a few KiB; 16 MiB is far
	// beyond anything legitimate and small enough to reject garbage.
	maxRecordLen = 16 << 20
)

// Record types (first payload byte).
const (
	recRow       = 'T' // one appended tick row (WAL files)
	recBlock     = 'B' // one sealed delta-of-delta block (segment files)
	recRollup    = 'R' // one run of rollup buckets (compacted segments)
	recWatermark = 'W' // per-series sealed-through sequence (compacted segments)
	recCompact   = 'C' // compaction provenance: which segments this one replaces
	recIndex     = 'I' // segment footer index (finalized segments)
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks a record that is short, oversized or CRC-corrupt —
// the expected shape of a torn tail, where scanning stops.
var errTorn = errors.New("wal: torn or corrupt record")

// appendFrame wraps payload in the record framing.
func appendFrame(dst, payload []byte) []byte {
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// readFrame extracts the record at buf[off:], returning the payload
// (aliasing buf) and the offset of the next record. errTorn covers
// every torn-tail shape: truncated header, truncated payload, absurd
// length, CRC mismatch.
func readFrame(buf []byte, off int) (payload []byte, next int, err error) {
	if off+recHeaderLen > len(buf) {
		return nil, 0, errTorn
	}
	n := int(binary.LittleEndian.Uint32(buf[off : off+4]))
	crc := binary.LittleEndian.Uint32(buf[off+4 : off+8])
	if n > maxRecordLen || off+recHeaderLen+n > len(buf) {
		return nil, 0, errTorn
	}
	payload = buf[off+recHeaderLen : off+recHeaderLen+n]
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, 0, errTorn
	}
	return payload, off + recHeaderLen + n, nil
}

// zigzag varint helpers — the same mapping tsdb's block encoding uses.
func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }
func appendZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64((v<<1)^(v>>63)))
}

// reader decodes one payload sequentially.
type reader struct {
	buf []byte
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = errTorn
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) zigzag() int64 {
	u := r.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

func (r *reader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)) {
		r.err = errTorn
		return nil
	}
	b := r.buf[:n:n]
	r.buf = r.buf[n:]
	return b
}

func (r *reader) str() string { return string(r.bytes()) }

// rowRecord is one appended tick row: every event of one session at
// one timestamp, exactly the shape papid's tick loop produces.
type rowRecord struct {
	seq     uint64
	session uint64
	ts      int64
	events  []string
	vals    []int64
}

func appendRow(dst []byte, seq, session uint64, ts int64, events []string, vals []int64) []byte {
	dst = append(dst, recRow)
	dst = appendUvarint(dst, seq)
	dst = appendUvarint(dst, session)
	dst = appendZigzag(dst, ts)
	dst = appendUvarint(dst, uint64(len(events)))
	for i, ev := range events {
		dst = appendUvarint(dst, uint64(len(ev)))
		dst = append(dst, ev...)
		dst = appendZigzag(dst, vals[i])
	}
	return dst
}

func decodeRow(payload []byte) (rowRecord, error) {
	r := reader{buf: payload[1:]}
	var row rowRecord
	row.seq = r.uvarint()
	row.session = r.uvarint()
	row.ts = r.zigzag()
	n := r.uvarint()
	if r.err == nil && n > 1<<16 {
		return row, errTorn
	}
	row.events = make([]string, 0, n)
	row.vals = make([]int64, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		row.events = append(row.events, r.str())
		row.vals = append(row.vals, r.zigzag())
	}
	return row, r.err
}

// blockRecord persists one sealed block; buf is the delta-of-delta
// encoding verbatim, so a mapped segment serves it zero-copy.
func appendBlock(dst []byte, sb tsdb.SealedBlock) (out []byte, bufOff int) {
	dst = append(dst, recBlock)
	dst = appendUvarint(dst, sb.Key.Session)
	dst = appendUvarint(dst, uint64(len(sb.Key.Event)))
	dst = append(dst, sb.Key.Event...)
	dst = appendZigzag(dst, sb.MinTS)
	dst = appendZigzag(dst, sb.MaxTS)
	dst = appendUvarint(dst, uint64(sb.N))
	dst = appendUvarint(dst, sb.LastSeq)
	dst = appendUvarint(dst, uint64(len(sb.Buf)))
	bufOff = len(dst)
	return append(dst, sb.Buf...), bufOff
}

func decodeBlock(payload []byte) (tsdb.SealedBlock, error) {
	r := reader{buf: payload[1:]}
	var sb tsdb.SealedBlock
	sb.Key.Session = r.uvarint()
	sb.Key.Event = r.str()
	sb.MinTS = r.zigzag()
	sb.MaxTS = r.zigzag()
	sb.N = int(r.uvarint())
	sb.LastSeq = r.uvarint()
	sb.Buf = r.bytes()
	if r.err == nil && (sb.N < 0 || sb.N > 1<<24) {
		return sb, errTorn
	}
	return sb, r.err
}

// rollupRecord persists one run of grid-aligned buckets of one width —
// what compaction distills evicted raw blocks into.
type rollupRecord struct {
	key     tsdb.SeriesKey
	width   int64
	buckets []tsdb.Bucket
}

func appendRollup(dst []byte, rec rollupRecord) []byte {
	dst = append(dst, recRollup)
	dst = appendUvarint(dst, rec.key.Session)
	dst = appendUvarint(dst, uint64(len(rec.key.Event)))
	dst = append(dst, rec.key.Event...)
	dst = appendZigzag(dst, rec.width)
	dst = appendUvarint(dst, uint64(len(rec.buckets)))
	for _, bk := range rec.buckets {
		dst = appendZigzag(dst, bk.Start)
		dst = appendUvarint(dst, bk.Count)
		dst = appendZigzag(dst, bk.Min)
		dst = appendZigzag(dst, bk.Max)
		dst = appendZigzag(dst, bk.Sum)
		dst = appendZigzag(dst, bk.Last)
	}
	return dst
}

func decodeRollup(payload []byte) (rollupRecord, error) {
	r := reader{buf: payload[1:]}
	var rec rollupRecord
	rec.key.Session = r.uvarint()
	rec.key.Event = r.str()
	rec.width = r.zigzag()
	n := r.uvarint()
	if r.err == nil && n > 1<<24 {
		return rec, errTorn
	}
	rec.buckets = make([]tsdb.Bucket, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		var bk tsdb.Bucket
		bk.Start = r.zigzag()
		bk.Count = r.uvarint()
		bk.Min = r.zigzag()
		bk.Max = r.zigzag()
		bk.Sum = r.zigzag()
		bk.Last = r.zigzag()
		rec.buckets = append(rec.buckets, bk)
	}
	return rec, r.err
}

// watermarkRecord preserves a series' sealed-through sequence when
// compaction discards the raw blocks that carried it: replay must
// still skip WAL rows whose samples now exist only at rollup
// resolution.
type watermarkRecord struct {
	key tsdb.SeriesKey
	seq uint64
}

func appendWatermark(dst []byte, w watermarkRecord) []byte {
	dst = append(dst, recWatermark)
	dst = appendUvarint(dst, w.key.Session)
	dst = appendUvarint(dst, uint64(len(w.key.Event)))
	dst = append(dst, w.key.Event...)
	dst = appendUvarint(dst, w.seq)
	return dst
}

func decodeWatermark(payload []byte) (watermarkRecord, error) {
	r := reader{buf: payload[1:]}
	var w watermarkRecord
	w.key.Session = r.uvarint()
	w.key.Event = r.str()
	w.seq = r.uvarint()
	return w, r.err
}

// compactRecord declares a compacted segment's provenance: every
// segment whose file sequence is at or below replacedThrough has been
// folded into this one. Loading honors it only from a cleanly
// finalized segment — a torn compaction output is discarded and its
// inputs stay live, so a crash mid-compaction never loses data, and a
// crash after finalize but before the inputs were unlinked never
// double-counts it.
func appendCompactMeta(dst []byte, replacedThrough uint64) []byte {
	dst = append(dst, recCompact)
	return appendUvarint(dst, replacedThrough)
}

func decodeCompactMeta(payload []byte) (uint64, error) {
	r := reader{buf: payload[1:]}
	v := r.uvarint()
	return v, r.err
}

// fileHeader opens every WAL and segment file; version bumps here
// rather than silently misparsing.
func fileHeader(magic string) []byte { return []byte(magic) }

func checkHeader(buf []byte, magic string) error {
	if len(buf) < len(magic) || string(buf[:len(magic)]) != magic {
		return fmt.Errorf("wal: bad file header (want %q)", magic)
	}
	return nil
}

const (
	walMagic = "PWAL0001"
	segMagic = "PSEG0001"
	idxMagic = "PSEGIDX1"
)
