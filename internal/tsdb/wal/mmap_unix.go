//go:build unix

package wal

import (
	"os"
	"syscall"
)

// mmapFile maps the first size bytes of f read-only. mapped reports
// whether the returned slice really is a file mapping (as opposed to
// the heap fallback on other platforms): callers charge mapped buffers
// at fixed overhead in the store budget and skip Remap for heap ones.
//
// Mappings are deliberately never unmapped before process exit — the
// store decodes sealed blocks lock-free, so a munmap while any reader
// might still hold a reference would turn a stale read into a SIGSEGV.
// Retired segment files are unlinked instead; the mapping keeps the
// pages alive until exit, and the file's disk space is reclaimed as
// soon as the process ends (or immediately, for pages never touched
// again, once the kernel drops them from the page cache).
func mmapFile(f *os.File, size int) (data []byte, mapped bool, err error) {
	if size <= 0 {
		return nil, false, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}
