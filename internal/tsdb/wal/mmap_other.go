//go:build !unix

package wal

import (
	"io"
	"os"
)

// mmapFile on platforms without syscall.Mmap falls back to reading the
// file into the heap. mapped=false tells callers to charge the buffer
// at full size and skip the heap→mmap Remap (there is nothing to gain).
func mmapFile(f *os.File, size int) (data []byte, mapped bool, err error) {
	if size <= 0 {
		return nil, false, nil
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, int64(size)), buf); err != nil {
		return nil, false, err
	}
	return buf, false, nil
}
