package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/tsdb"
)

// openPair builds a Log+Store wired the way the server wires them.
func openPair(t *testing.T, dir string, opts Options, cfg tsdb.Config) (*Log, *tsdb.Store, ReplayStats) {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	cfg.Storage = l
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = 256 << 20
	}
	if cfg.MaxAge == 0 {
		cfg.MaxAge = -1
	}
	store := tsdb.New(cfg)
	rs, err := l.Start(store)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	return l, store, rs
}

// noCompact disables background work so tests control every mutation.
func noCompact(opts Options) Options {
	opts.CompactEvery = -1
	return opts
}

// appendTicks writes n tick rows of the given events, one row per
// tick, timestamps stepping by stepUS from startUS. Values are a
// deterministic function of (event index, tick).
func appendTicks(t *testing.T, l *Log, session uint64, events []string, n int, startUS, stepUS int64) {
	t.Helper()
	vals := make([]int64, len(events))
	for i := 0; i < n; i++ {
		ts := startUS + int64(i)*stepUS
		for j := range events {
			vals[j] = int64(i)*10 + int64(j) // monotone-ish counters
		}
		if err := l.AppendBatch(session, ts, events, vals); err != nil {
			t.Fatalf("AppendBatch tick %d: %v", i, err)
		}
	}
}

// queryAll captures every view of a session the server can serve: raw
// plus each rollup step, JSON-encoded for exact comparison.
func queryAll(t *testing.T, store *tsdb.Store, session uint64, from, to int64) string {
	t.Helper()
	var sb strings.Builder
	for _, step := range []int64{0, 10_000_000, 60_000_000} {
		res := store.Query(session, tsdb.Query{From: from, To: to, Step: step})
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		fmt.Fprintf(&sb, "step=%d %s\n", step, b)
	}
	return sb.String()
}

func TestRoundTripAfterCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	events := []string{"PAPI_TOT_CYC", "PAPI_TOT_INS"}
	opts := noCompact(Options{Fsync: FsyncOff})

	l, store, _ := openPair(t, dir, opts, tsdb.Config{BlockSamples: 64})
	appendTicks(t, l, 7, events, 1000, 0, 50_000)
	want := queryAll(t, store, 7, 0, 1<<60)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Clean shutdown leaves no WAL and a CLEAN marker.
	walFiles, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(walFiles) != 0 {
		t.Fatalf("wal files survive clean shutdown: %v", walFiles)
	}
	if _, err := os.Stat(filepath.Join(dir, cleanMarker)); err != nil {
		t.Fatalf("no CLEAN marker after clean shutdown: %v", err)
	}

	l2, store2, rs := openPair(t, dir, opts, tsdb.Config{BlockSamples: 64})
	defer l2.Close()
	if !rs.CleanStart {
		t.Errorf("restart after clean shutdown: CleanStart=false, stats %+v", rs)
	}
	if rs.Rows != 0 {
		t.Errorf("clean restart replayed %d rows, want 0", rs.Rows)
	}
	if got := queryAll(t, store2, 7, 0, 1<<60); got != want {
		t.Errorf("query mismatch after clean restart:\nbefore: %s\nafter:  %s", want, got)
	}
}

func TestCrashRecoveryReplaysWAL(t *testing.T) {
	for _, policy := range []string{FsyncAlways, FsyncInterval, FsyncOff} {
		t.Run(policy, func(t *testing.T) {
			dir := t.TempDir()
			events := []string{"PAPI_TOT_CYC", "PAPI_L1_DCM"}
			opts := noCompact(Options{Fsync: policy})

			l, store, _ := openPair(t, dir, opts, tsdb.Config{BlockSamples: 128})
			appendTicks(t, l, 3, events, 700, 1_000_000, 25_000)
			want := queryAll(t, store, 3, 0, 1<<60)
			l.Abandon() // kill -9: no seal, no truncate, no marker

			l2, store2, rs := openPair(t, dir, opts, tsdb.Config{BlockSamples: 128})
			defer l2.Close()
			if rs.CleanStart {
				t.Fatal("crash restart took the clean fast path")
			}
			if rs.Rows == 0 && rs.Blocks == 0 {
				t.Fatalf("nothing recovered: %+v", rs)
			}
			if got := queryAll(t, store2, 3, 0, 1<<60); got != want {
				t.Errorf("query mismatch after crash recovery:\nbefore: %s\nafter:  %s", want, got)
			}
		})
	}
}

func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	events := []string{"PAPI_TOT_CYC"}
	opts := noCompact(Options{Fsync: FsyncOff})

	l, store, _ := openPair(t, dir, opts, tsdb.Config{BlockSamples: 1 << 20})
	appendTicks(t, l, 1, events, 100, 0, 1_000_000)
	// Compare only windows strictly before the torn row's: a window
	// starting before To is aggregated whole, so To must stop at the
	// widest rollup boundary (60s) below the final row's timestamp.
	want := queryAll(t, store, 1, 0, 60_000_000)
	l.Abandon()

	// Tear the newest WAL file mid-record: chop half of the last
	// record's bytes off, the shape an interrupted write leaves.
	walFiles, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(walFiles) == 0 {
		t.Fatal("no wal files")
	}
	path := walFiles[len(walFiles)-1]
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	l2, store2, rs := openPair(t, dir, opts, tsdb.Config{BlockSamples: 1 << 20})
	defer l2.Close()
	if rs.TornRecords == 0 {
		t.Error("torn tail not detected")
	}
	if rs.Rows != 99 {
		t.Errorf("replayed %d rows, want 99 (final row torn)", rs.Rows)
	}
	if got := queryAll(t, store2, 1, 0, 60_000_000); got != want {
		t.Errorf("surviving rows mismatch:\nbefore: %s\nafter:  %s", want, got)
	}
}

// failAfterWriter passes writes through until limit bytes, then fails
// everything — an injected disk-full/yanked-disk fault.
type failAfterWriter struct {
	w     io.Writer
	limit int
	n     int
}

var errInjected = errors.New("injected write failure")

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.n+len(p) > f.limit {
		// Tear the write: commit a prefix, then fail.
		keep := f.limit - f.n
		if keep > 0 {
			f.w.Write(p[:keep])
			f.n += keep
		}
		return keep, errInjected
	}
	n, err := f.w.Write(p)
	f.n += n
	return n, err
}

func TestFailingWriterDegradesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	events := []string{"PAPI_TOT_CYC"}
	opts := noCompact(Options{Fsync: FsyncOff})
	opts.wrapWAL = func(w io.Writer) io.Writer { return &failAfterWriter{w: w, limit: 2048} }

	l, store, _ := openPair(t, dir, opts, tsdb.Config{BlockSamples: 1 << 20})
	sawErr := false
	for i := 0; i < 200; i++ {
		err := l.AppendBatch(9, int64(i)*1_000_000, events, []int64{int64(i)})
		if err != nil && errors.Is(err, errInjected) {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("fault never fired")
	}
	if l.Stats().WriteErrors == 0 {
		t.Fatal("write errors not counted")
	}
	// Degraded rows still landed in RAM.
	if res := store.Query(9, tsdb.Query{From: 0, To: 1 << 60}); len(res) != 1 || len(res[0].Buckets) != 200 {
		t.Fatalf("degraded rows missing from store: %+v", res)
	}
	l.Abandon()

	// Recovery: the journaled prefix replays (the torn final record is
	// dropped), with zero decode errors.
	opts.wrapWAL = nil
	l2, store2, rs := openPair(t, dir, opts, tsdb.Config{BlockSamples: 1 << 20})
	defer l2.Close()
	if rs.TornRecords == 0 {
		t.Error("torn record from failed write not detected")
	}
	if rs.Rows == 0 {
		t.Fatal("no rows recovered from journaled prefix")
	}
	res := store2.Query(9, tsdb.Query{From: 0, To: 1 << 60})
	if len(res) != 1 || uint64(len(res[0].Buckets)) != rs.Rows {
		t.Fatalf("recovered %d rows but query returned %+v", rs.Rows, res)
	}
	for i, bk := range res[0].Buckets {
		if bk.Last != int64(i) {
			t.Fatalf("bucket %d holds %d — decode corruption", i, bk.Last)
		}
	}
}

func TestRestartEquivalenceLargeHistory(t *testing.T) {
	// Satellite 3: ~100k ticks, crash, restart; raw and rollup queries
	// must be byte-identical. Small blocks force many seals, small
	// segments force rotation and WAL truncation along the way.
	n := 100_000
	if testing.Short() {
		n = 10_000
	}
	dir := t.TempDir()
	events := []string{"PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_L2_TCM"}
	opts := noCompact(Options{Fsync: FsyncOff, SegmentBytes: 64 << 10})

	cfg := tsdb.Config{BlockSamples: 256}
	l, store, _ := openPair(t, dir, opts, cfg)
	appendTicks(t, l, 42, events, n, 0, 10_000) // 100Hz ticks
	want := queryAll(t, store, 42, 0, 1<<60)
	st := l.Stats()
	if st.SealedBlocks == 0 || st.TruncatedWALFiles == 0 {
		t.Fatalf("test did not exercise sealing+truncation: %+v", st)
	}
	l.Abandon()

	l2, store2, rs := openPair(t, dir, opts, cfg)
	defer l2.Close()
	if rs.Blocks == 0 {
		t.Fatalf("no blocks reinstalled: %+v", rs)
	}
	if got := queryAll(t, store2, 42, 0, 1<<60); got != want {
		t.Errorf("restart changed query results (replay %+v)", rs)
	}
}

func TestCompactionEquivalenceAcrossRestart(t *testing.T) {
	// Rollup queries must answer identically before compaction, after
	// compaction, and after a restart that replays the compacted
	// segments — including windows split across the compaction edge.
	dir := t.TempDir()
	events := []string{"PAPI_TOT_CYC", "PAPI_FP_OPS"}
	opts := noCompact(Options{Fsync: FsyncOff, SegmentBytes: 32 << 10, CompactAfter: time.Minute})

	cfg := tsdb.Config{BlockSamples: 128}
	l, store, _ := openPair(t, dir, opts, cfg)
	// 4000 ticks at 100ms = 400s of history; timestamps start at an
	// offset so windows don't align trivially with zero.
	appendTicks(t, l, 5, events, 4000, 3_333_333, 100_000)
	lastTS := int64(3_333_333 + 3999*100_000)

	rollupsBefore := func(s *tsdb.Store) string {
		var sb strings.Builder
		for _, step := range []int64{10_000_000, 60_000_000} {
			b, _ := json.Marshal(s.Query(5, tsdb.Query{From: 0, To: 1 << 60, Step: step}))
			fmt.Fprintf(&sb, "step=%d %s\n", step, b)
		}
		return sb.String()
	}
	want := rollupsBefore(store)

	// Compact everything older than a minute before the newest sample.
	now := lastTS + time.Minute.Microseconds() + 1
	cs, err := l.Compact(now)
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if cs.Compacted == 0 || cs.RawBlocks == 0 {
		t.Fatalf("compaction did nothing: %+v", cs)
	}
	if got := rollupsBefore(store); got != want {
		t.Errorf("compaction changed live rollup answers:\nbefore: %s\nafter:  %s", want, got)
	}

	// Crash and replay the compacted state.
	l.Abandon()
	l2, store2, rs := openPair(t, dir, opts, cfg)
	defer l2.Close()
	if rs.RollupRuns == 0 {
		t.Fatalf("no rollup runs replayed: %+v", rs)
	}
	if got := rollupsBefore(store2); got != want {
		t.Errorf("restart after compaction changed rollup answers:\nbefore: %s\nafter:  %s", want, got)
	}

	// Raw queries agree too: both stores dropped raw below the horizon.
	wantRaw, _ := json.Marshal(store.Query(5, tsdb.Query{From: 0, To: 1 << 60}))
	gotRaw, _ := json.Marshal(store2.Query(5, tsdb.Query{From: 0, To: 1 << 60}))
	if string(wantRaw) != string(gotRaw) {
		t.Errorf("raw coverage diverged after compaction restart:\nlive:    %s\nreplayed: %s",
			wantRaw, gotRaw)
	}
}

func TestCompactionRetainsReplayDedup(t *testing.T) {
	// After compaction discards raw blocks, the watermarks must still
	// prevent WAL rows from replaying on top of the rollups.
	dir := t.TempDir()
	events := []string{"PAPI_TOT_CYC"}
	opts := noCompact(Options{Fsync: FsyncOff, CompactAfter: time.Second})

	cfg := tsdb.Config{BlockSamples: 64}
	l, store, _ := openPair(t, dir, opts, cfg)
	appendTicks(t, l, 2, events, 640, 0, 100_000) // exactly 10 sealed blocks
	cs, err := l.Compact(64_000_000 + time.Second.Microseconds() + 1)
	if err != nil {
		t.Fatal(err)
	}
	if cs.RawBlocks == 0 {
		t.Fatalf("compaction folded no raw blocks: %+v", cs)
	}
	// The post-compaction store (rollups only, raw dropped) is the
	// state replay must reproduce.
	want := queryAll(t, store, 2, 0, 1<<60)
	l.Abandon() // WAL still holds every row; replay must dedup them all

	l2, store2, rs := openPair(t, dir, opts, cfg)
	defer l2.Close()
	if got := queryAll(t, store2, 2, 0, 1<<60); got != want {
		t.Errorf("replay after compaction double-counted or lost rows (replay %+v)", rs)
	}
}

func TestRetentionDeletesExpiredSegments(t *testing.T) {
	dir := t.TempDir()
	opts := noCompact(Options{Fsync: FsyncOff, SegmentBytes: 16 << 10, RetainAge: time.Minute})
	l, _, _ := openPair(t, dir, opts, tsdb.Config{BlockSamples: 64})
	appendTicks(t, l, 1, []string{"PAPI_TOT_CYC"}, 2000, 0, 10_000) // 20s of data
	if l.Stats().Segments == 0 {
		t.Fatal("no segments written")
	}
	cs, err := l.Compact(20_000_000 + 2*time.Minute.Microseconds())
	if err != nil {
		t.Fatal(err)
	}
	if cs.Deleted == 0 {
		t.Fatalf("retention deleted nothing: %+v", cs)
	}
	l.Close()
}

func TestSegmentIndexRoundTrip(t *testing.T) {
	// A finalized segment reloads through its footer index; one with
	// the footer torn off reloads by scanning; both see every record.
	dir := t.TempDir()
	w, err := createSegment(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		sb := tsdb.SealedBlock{
			Key: tsdb.SeriesKey{Session: 1, Event: "E"},
			Buf: []byte{byte(i), 1, 2, 3},
			N:   4, MinTS: int64(i) * 100, MaxTS: int64(i)*100 + 99, LastSeq: uint64(i + 1),
		}
		if err := w.writeBlock(sb); err != nil {
			t.Fatal(err)
		}
	}
	seg, err := w.finalize()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := loadSegment(seg.path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.finalized || len(loaded.blocks) != 10 {
		t.Fatalf("finalized load: finalized=%v blocks=%d", loaded.finalized, len(loaded.blocks))
	}
	for i, ref := range loaded.blocks {
		if ref.sb.LastSeq != uint64(i+1) || ref.sb.Buf[0] != byte(i) {
			t.Fatalf("block %d corrupted: %+v", i, ref.sb)
		}
	}

	// Chop the footer + index: scan path must still find all 10.
	fi, _ := os.Stat(seg.path)
	if err := os.Truncate(seg.path, fi.Size()-footerLen-20); err != nil {
		t.Fatal(err)
	}
	scanned, err := loadSegment(seg.path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if scanned.finalized {
		t.Fatal("truncated segment claims finalized")
	}
	if len(scanned.blocks) != 10 {
		t.Fatalf("scan found %d blocks, want 10", len(scanned.blocks))
	}
}

func TestRecordFrameTornShapes(t *testing.T) {
	payload := appendRow(nil, 1, 2, 3, []string{"X"}, []int64{4})
	rec := appendFrame(nil, payload)
	if _, next, err := readFrame(rec, 0); err != nil || next != len(rec) {
		t.Fatalf("intact frame rejected: %v", err)
	}
	for cut := 1; cut < len(rec); cut++ {
		if _, _, err := readFrame(rec[:cut], 0); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for i := range rec {
		mut := append([]byte(nil), rec...)
		mut[i] ^= 0x40
		if payload2, _, err := readFrame(mut, 0); err == nil {
			// A flip in the length field could still frame a valid
			// record only if the CRC matches — effectively impossible;
			// a flip elsewhere must fail the CRC.
			if string(payload2) == string(payload) {
				t.Fatalf("bit flip at %d undetected", i)
			}
		}
	}
}

func TestSegmentDiskDeathKeepsWALPinned(t *testing.T) {
	// Segment writes start failing permanently partway through (a disk
	// gone read-only). Every block sealed after that point is RAM-only:
	// its WAL rows must stay pinned — truncation deleting them would
	// destroy the only durable copy — so a crash at any later moment
	// still recovers every row.
	dir := t.TempDir()
	events := []string{"PAPI_TOT_CYC"}
	opts := noCompact(Options{Fsync: FsyncOff, SegmentBytes: 16 << 10})
	// One shared byte budget across all segment writers: once spent,
	// every later segment write fails forever.
	shared := &failAfterWriter{limit: 2 << 10}
	opts.wrapSeg = func(w io.Writer) io.Writer { shared.w = w; return shared }

	cfg := tsdb.Config{BlockSamples: 64}
	l, store, _ := openPair(t, dir, opts, cfg)
	appendTicks(t, l, 13, events, 5000, 0, 100_000)
	st := l.Stats()
	if st.WriteErrors == 0 {
		t.Fatal("segment fault never fired")
	}
	if st.PendingBlocks == 0 {
		t.Fatalf("no blocks left awaiting retry: %+v", st)
	}
	want := queryAll(t, store, 13, 0, 1<<60)
	l.Abandon()

	opts.wrapSeg = nil
	l2, store2, rs := openPair(t, dir, opts, cfg)
	defer l2.Close()
	if got := queryAll(t, store2, 13, 0, 1<<60); got != want {
		t.Errorf("rows lost after segment disk death + crash (replay %+v)", rs)
	}
}

// tearWriter passes writes through except the nth (1-based), which
// commits a partial prefix and fails — a single transient IO error.
type tearWriter struct {
	w    io.Writer
	n    int
	fail int
}

func (t *tearWriter) Write(p []byte) (int, error) {
	t.n++
	if t.n == t.fail {
		keep := len(p) / 2
		t.w.Write(p[:keep])
		return keep, errInjected
	}
	return t.w.Write(p)
}

func TestSegmentTornWriteAbandonsWriter(t *testing.T) {
	// One segment write tears (partial bytes on disk) and later writes
	// succeed. The damaged writer must be abandoned: its tracked offsets
	// no longer match the file, so continuing to append and then
	// finalizing would produce an index pointing mid-record, and the
	// next load would reject the whole segment — losing every block it
	// held, not just the torn one. The failed block is retried in a
	// fresh segment, and a crash afterwards loses nothing.
	dir := t.TempDir()
	events := []string{"PAPI_TOT_CYC"}
	opts := noCompact(Options{Fsync: FsyncOff, SegmentBytes: 16 << 10})
	shared := &tearWriter{fail: 5} // shared across writers: tears once, globally
	opts.wrapSeg = func(w io.Writer) io.Writer { shared.w = w; return shared }

	cfg := tsdb.Config{BlockSamples: 64}
	l, store, _ := openPair(t, dir, opts, cfg)
	appendTicks(t, l, 13, events, 5000, 0, 100_000)
	st := l.Stats()
	if st.WriteErrors == 0 {
		t.Fatal("segment tear never fired")
	}
	if st.TruncatedWALFiles == 0 {
		t.Fatalf("test did not exercise WAL truncation: %+v", st)
	}
	want := queryAll(t, store, 13, 0, 1<<60)
	l.Abandon()

	opts.wrapSeg = nil
	l2, store2, rs := openPair(t, dir, opts, cfg)
	defer l2.Close()
	if got := queryAll(t, store2, 13, 0, 1<<60); got != want {
		t.Errorf("rows lost after torn segment write + crash (replay %+v)", rs)
	}
}

func TestUnreadableWALFileKeptForRecovery(t *testing.T) {
	// A WAL file replay cannot read must survive truncation — its
	// maxSeq of 0 must not read as "older than every pin" — so a
	// transient IO error never turns into silent deletion of rows that
	// were never replayed. Its survival also blocks the CLEAN marker.
	dir := t.TempDir()
	bad := walPath(dir, 1)
	if err := os.WriteFile(bad, []byte("garbage, not a wal header"), 0o644); err != nil {
		t.Fatal(err)
	}
	opts := noCompact(Options{Fsync: FsyncOff})
	l, _, rs := openPair(t, dir, opts, tsdb.Config{BlockSamples: 64})
	if rs.WALFiles != 1 {
		t.Fatalf("planted wal file not seen at startup: %+v", rs)
	}
	appendTicks(t, l, 4, []string{"PAPI_TOT_CYC"}, 640, 0, 50_000)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(bad); err != nil {
		t.Errorf("unreadable wal file deleted at shutdown: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, cleanMarker)); err == nil {
		t.Error("CLEAN marker written despite an unreadable wal file surviving")
	}
}
