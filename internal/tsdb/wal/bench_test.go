package wal

import (
	"testing"

	"repro/internal/tsdb"
)

// BenchmarkWALAppend measures the journaling cost of one tick row (4
// events) under each fsync policy. "always" is dominated by the fsync
// itself — the number to quote is rows/s, which bounds the tick rate a
// synchronous-durability papid can sustain. "interval" and "off" show
// the pure encode+write cost the default configuration adds per tick.
func BenchmarkWALAppend(b *testing.B) {
	events := []string{"PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_FP_OPS", "PAPI_L1_DCM"}
	for _, policy := range []string{FsyncAlways, FsyncInterval, FsyncOff} {
		b.Run(policy, func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{Fsync: policy, CompactEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			store := tsdb.New(tsdb.Config{Storage: l, MaxBytes: 1 << 30, MaxAge: -1})
			if _, err := l.Start(store); err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			vals := make([]int64, len(events))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ts := int64(i) * 10_000 // 10ms ticks
				for j := range vals {
					vals[j] += int64(j) + 5000
				}
				if err := l.AppendBatch(1, ts, events, vals); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkReplay measures crash-recovery speed: how fast a WAL of
// 20k tick rows (2 events each) rebuilds the in-memory store. The
// huge BlockSamples keeps replay from sealing blocks back to disk, so
// iterations see an identical directory and the number isolates
// decode + insert.
func BenchmarkReplay(b *testing.B) {
	dir := b.TempDir()
	const rows = 20_000
	events := []string{"PAPI_TOT_CYC", "PAPI_FP_OPS"}
	opts := Options{Fsync: FsyncOff, CompactEvery: -1}
	cfg := tsdb.Config{MaxBytes: 1 << 30, MaxAge: -1, BlockSamples: 1 << 20}

	l, err := Open(dir, opts)
	if err != nil {
		b.Fatal(err)
	}
	seedCfg := cfg
	seedCfg.Storage = l
	if _, err := l.Start(tsdb.New(seedCfg)); err != nil {
		b.Fatal(err)
	}
	vals := make([]int64, len(events))
	for i := 0; i < rows; i++ {
		for j := range vals {
			vals[j] += int64(j) + 5000
		}
		if err := l.AppendBatch(1, int64(i)*10_000, events, vals); err != nil {
			b.Fatal(err)
		}
	}
	l.Abandon() // crash shape: the WAL is the only copy

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := Open(dir, opts)
		if err != nil {
			b.Fatal(err)
		}
		c := cfg
		c.Storage = l
		rs, err := l.Start(tsdb.New(c))
		if err != nil {
			b.Fatal(err)
		}
		if rs.Rows != rows {
			b.Fatalf("replayed %d rows, want %d", rs.Rows, rows)
		}
		l.Abandon()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*rows/b.Elapsed().Seconds(), "rows/s")
}
