package wal

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/tsdb"
)

// Segment files hold sealed data: 'B' records (raw delta-of-delta
// blocks, written as the store seals them), and for compacted segments
// 'R' rollup runs plus 'W' watermarks. A segment being written is a
// plain append-only file; when it fills (or at graceful shutdown) it
// is finalized — an 'I' index record and a fixed footer are appended,
// the file is fsynced and memory-mapped, and every raw block the store
// still holds is remapped onto the mapping so the heap copies can be
// collected. A segment that was being written when the process died
// has no footer; loading falls back to a record scan that tolerates a
// torn tail, and the file is left as-is (new seals go to a new file).
//
// Footer layout, fixed 16 bytes at EOF:
//
//	[u64le offset of the 'I' index record][8-byte idxMagic]
//
// The 'I' payload is: 'I', uvarint record count, then delta-encoded
// uvarint offsets of every record. The index both proves the segment
// was cleanly finalized and lets loading slice records without
// re-scanning.

const footerLen = 16

// blockRef locates one raw block inside a loaded or written segment.
type blockRef struct {
	sb tsdb.SealedBlock // Buf aliases the segment mapping (or heap copy)
}

// segment is one immutable on-disk segment, loaded or just finalized.
type segment struct {
	path      string
	seq       uint64 // file sequence, from the name
	size      int64
	maxTS     int64 // newest sample covered, for age-based compaction
	raw       bool  // holds 'B' records (compaction input)
	finalized bool  // had a valid footer on load (or was finalized live)
	// replacedThrough, when non-zero, marks a compaction output: every
	// segment with seq at or below it is superseded by this one.
	replacedThrough uint64
	data            []byte
	mapped          bool
	blocks          []blockRef
	rollups         []rollupRecord
	marks           []watermarkRecord
	torn            int // records lost to a torn tail on load
}

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%08d.seg", seq))
}

func walPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", seq))
}

// parseSeq extracts the numeric sequence from seg-XXXXXXXX.seg /
// wal-XXXXXXXX.log names; ok=false for anything else.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if len(name) != len(prefix)+8+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	var seq uint64
	for _, c := range name[len(prefix) : len(prefix)+8] {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}

// loadSegment maps a segment file and parses its records — via the
// footer index when the segment was cleanly finalized, otherwise by
// scanning and stopping at the first torn record.
func loadSegment(path string, seq uint64) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	data, mapped, err := mmapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("wal: mmap %s: %w", path, err)
	}
	s := &segment{path: path, seq: seq, size: size, data: data, mapped: mapped}
	if err := checkHeader(data, segMagic); err != nil {
		// Not even a header: a crash right after create. Treat as empty.
		s.torn = 1
		return s, nil
	}
	offsets, finalized := s.indexOffsets()
	s.finalized = finalized
	if finalized {
		for _, off := range offsets {
			payload, _, err := readFrame(data, int(off))
			if err != nil || len(payload) == 0 {
				return nil, fmt.Errorf("wal: %s: corrupt record at %d in finalized segment", path, off)
			}
			if err := s.addRecord(payload); err != nil {
				return nil, fmt.Errorf("wal: %s: %w", path, err)
			}
		}
		return s, nil
	}
	// No footer: scan until torn tail.
	off := len(segMagic)
	for off < len(data) {
		payload, next, err := readFrame(data, off)
		if err != nil {
			s.torn = 1
			break
		}
		if len(payload) == 0 {
			s.torn = 1
			break
		}
		if err := s.addRecord(payload); err != nil {
			s.torn = 1
			break
		}
		off = next
	}
	return s, nil
}

// indexOffsets validates the footer and returns every record offset.
func (s *segment) indexOffsets() ([]uint64, bool) {
	if len(s.data) < footerLen {
		return nil, false
	}
	tail := s.data[len(s.data)-footerLen:]
	if string(tail[8:]) != idxMagic {
		return nil, false
	}
	idxOff := binary.LittleEndian.Uint64(tail[:8])
	if idxOff >= uint64(len(s.data)) {
		return nil, false
	}
	payload, _, err := readFrame(s.data, int(idxOff))
	if err != nil || len(payload) == 0 || payload[0] != recIndex {
		return nil, false
	}
	r := reader{buf: payload[1:]}
	n := r.uvarint()
	if r.err != nil || n > uint64(len(s.data)) {
		return nil, false
	}
	offsets := make([]uint64, 0, n)
	var off uint64
	for i := uint64(0); i < n; i++ {
		off += r.uvarint()
		offsets = append(offsets, off)
	}
	if r.err != nil {
		return nil, false
	}
	return offsets, true
}

func (s *segment) addRecord(payload []byte) error {
	switch payload[0] {
	case recBlock:
		sb, err := decodeBlock(payload)
		if err != nil {
			return err
		}
		s.raw = true
		s.blocks = append(s.blocks, blockRef{sb: sb})
		if sb.MaxTS > s.maxTS {
			s.maxTS = sb.MaxTS
		}
	case recRollup:
		rec, err := decodeRollup(payload)
		if err != nil {
			return err
		}
		s.rollups = append(s.rollups, rec)
		if n := len(rec.buckets); n > 0 {
			if end := rec.buckets[n-1].Start + rec.width; end > s.maxTS {
				s.maxTS = end
			}
		}
	case recWatermark:
		w, err := decodeWatermark(payload)
		if err != nil {
			return err
		}
		s.marks = append(s.marks, w)
	case recCompact:
		v, err := decodeCompactMeta(payload)
		if err != nil {
			return err
		}
		s.replacedThrough = v
	default:
		return fmt.Errorf("unknown segment record type %q", payload[0])
	}
	return nil
}

// segmentWriter accumulates sealed blocks into the active segment file.
type segmentWriter struct {
	f       *os.File
	wr      io.Writer // f, possibly wrapped by Options.wrapSeg (tests)
	path    string
	seq     uint64
	size    int64
	maxTS   int64
	raw     bool
	offsets []int64 // record offsets, for the finalize index
	// entries remembers where each raw block's encoded buffer landed in
	// the file, so finalize can hand the store mmap-backed replacements.
	entries []writerEntry
	dirty   bool // bytes written since last fsync
	scratch []byte
}

type writerEntry struct {
	key          tsdb.SeriesKey
	minTS, maxTS int64
	n            int
	lastSeq      uint64
	bufOff       int64
	bufLen       int
}

func createSegment(dir string, seq uint64) (*segmentWriter, error) {
	path := segPath(dir, seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(fileHeader(segMagic)); err != nil {
		f.Close()
		return nil, err
	}
	return &segmentWriter{f: f, wr: f, path: path, seq: seq, size: int64(len(segMagic)), dirty: true}, nil
}

// writeRecord frames and appends one payload, tracking its offset. On
// error the writer's size/offsets deliberately do not advance — but
// partial bytes may already be on disk, so the caller must abandon the
// writer (abandonWriterLocked) rather than keep appending records the
// finalize index would then locate at the wrong offsets.
func (w *segmentWriter) writeRecord(payload []byte) error {
	rec := appendFrame(w.scratch[:0], payload)
	w.scratch = rec[:0]
	if _, err := w.wr.Write(rec); err != nil {
		return err
	}
	w.offsets = append(w.offsets, w.size)
	w.size += int64(len(rec))
	w.dirty = true
	return nil
}

// writeBlock appends one sealed block record.
func (w *segmentWriter) writeBlock(sb tsdb.SealedBlock) error {
	payload, bufOff := appendBlock(nil, sb)
	recStart := w.size
	if err := w.writeRecord(payload); err != nil {
		return err
	}
	w.raw = true
	if sb.MaxTS > w.maxTS {
		w.maxTS = sb.MaxTS
	}
	w.entries = append(w.entries, writerEntry{
		key: sb.Key, minTS: sb.MinTS, maxTS: sb.MaxTS, n: sb.N, lastSeq: sb.LastSeq,
		bufOff: recStart + recHeaderLen + int64(bufOff), bufLen: len(sb.Buf),
	})
	return nil
}

// finalize writes the index record and footer, fsyncs, maps the file,
// and returns the resulting immutable segment. The caller remaps the
// store's raw blocks onto seg.blocks afterwards, outside any wal lock.
func (w *segmentWriter) finalize() (*segment, error) {
	idx := []byte{recIndex}
	idx = appendUvarint(idx, uint64(len(w.offsets)))
	var prev int64
	for _, off := range w.offsets {
		idx = appendUvarint(idx, uint64(off-prev))
		prev = off
	}
	idxOff := w.size
	if err := w.writeRecord(idx); err != nil {
		return nil, err
	}
	var footer [footerLen]byte
	binary.LittleEndian.PutUint64(footer[:8], uint64(idxOff))
	copy(footer[8:], idxMagic)
	if _, err := w.f.Write(footer[:]); err != nil {
		return nil, err
	}
	w.size += footerLen
	if err := w.f.Sync(); err != nil {
		return nil, err
	}
	// Reopen read-only for the mapping; the write handle closes either
	// way so a finalized segment can never be appended to again.
	data, mapped, err := func() ([]byte, bool, error) {
		rf, err := os.Open(w.path)
		if err != nil {
			return nil, false, err
		}
		defer rf.Close()
		return mmapFile(rf, int(w.size))
	}()
	closeErr := w.f.Close()
	if err != nil {
		return nil, err
	}
	if closeErr != nil {
		return nil, closeErr
	}
	seg := &segment{
		path: w.path, seq: w.seq, size: w.size, maxTS: w.maxTS,
		raw: w.raw, finalized: true, data: data, mapped: mapped,
	}
	for _, e := range w.entries {
		if e.bufOff+int64(e.bufLen) > int64(len(data)) {
			return nil, fmt.Errorf("wal: %s: entry past EOF after finalize", w.path)
		}
		buf := data[e.bufOff : e.bufOff+int64(e.bufLen) : e.bufOff+int64(e.bufLen)]
		seg.blocks = append(seg.blocks, blockRef{sb: tsdb.SealedBlock{
			Key: e.key, Buf: buf, N: e.n, MinTS: e.minTS, MaxTS: e.maxTS,
			LastSeq: e.lastSeq,
		}})
	}
	return seg, nil
}

// sortSegments orders by file sequence — creation order, which is also
// time order for any single series' blocks.
func sortSegments(segs []*segment) {
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
}
