package wal

import (
	"os"
	"sort"

	"repro/internal/tsdb"
)

// Compaction keeps disk bounded without losing queryable history: old
// raw segments (and earlier compaction outputs) are folded into a
// single rollup-resolution segment — the exact buckets the store's
// live rollup levels would hold for those samples — plus per-series
// watermarks preserving replay dedup. The output declares its inputs
// via a 'C' record, so a crash anywhere in the sequence either keeps
// the inputs (output torn → discarded) or keeps the output (inputs
// stale → pruned at Open); never both, never neither.
//
// After the output is durable, the store drops its in-memory raw
// blocks for exactly the compacted ranges (per series), so memory and
// a post-restart store answer queries identically.

// CompactStats describes one compaction pass.
type CompactStats struct {
	Deleted    int   // segments removed by retention age
	Compacted  int   // segments folded into the rollup output
	RawBlocks  int   // raw blocks folded
	BytesFreed int64 // input bytes removed from disk
}

// Compact runs one retention + compaction pass against the given
// current time (µs). Safe to call concurrently with appends; passes
// themselves are serialized.
func (l *Log) Compact(now int64) (CompactStats, error) {
	// Retry RAM-only sealed blocks first: once persisted they can be
	// compacted, and until then DropSealedUpTo refuses to evict them.
	l.OnSeal(nil)
	l.compactMu.Lock()
	defer l.compactMu.Unlock()
	var cs CompactStats

	// An active segment whose entire content has already aged past the
	// compaction (or retention) threshold would otherwise never become
	// eligible — low-traffic servers might not fill it for hours.
	// Finalize it so the passes below can see it.
	if cutoff := l.ageCutoff(now); cutoff != 0 {
		var finalized *segment
		l.segMu.Lock()
		if l.sw != nil && len(l.sw.offsets) > 0 && l.sw.maxTS < cutoff {
			finalized = l.finalizeWriterLocked()
		}
		l.segMu.Unlock()
		if finalized != nil {
			l.remapFinalized(finalized)
		}
	}

	// Retention: drop segments whose entire content has aged out. The
	// store's own sweep expires the same data from memory.
	if l.opts.RetainAge > 0 {
		cutoff := now - l.opts.RetainAge.Microseconds()
		var expired []*segment
		l.segMu.Lock()
		keep := l.segs[:0]
		for _, s := range l.segs {
			if s.maxTS < cutoff {
				expired = append(expired, s)
			} else {
				keep = append(keep, s)
			}
		}
		l.segs = append([]*segment(nil), keep...)
		l.segMu.Unlock()
		for _, s := range expired {
			cs.Deleted++
			cs.BytesFreed += s.size
			if err := os.Remove(s.path); err != nil {
				l.logger.Error("retention remove failed", "err", err, "path", s.path)
			}
		}
	}

	// Selection: the longest prefix (in file-sequence order) where each
	// segment is old enough or disk is over budget. Prefix-only keeps
	// the replaced-through invariant exact.
	l.segMu.Lock()
	total := int64(0)
	for _, s := range l.segs {
		total += s.size
	}
	if l.sw != nil {
		total += l.sw.size
	}
	var sel []*segment
	for _, s := range l.segs {
		aged := l.opts.CompactAfter > 0 && s.maxTS < now-l.opts.CompactAfter.Microseconds()
		over := l.opts.DiskBytes > 0 && total > l.opts.DiskBytes
		if !aged && !over {
			break
		}
		sel = append(sel, s)
		total -= s.size
	}
	l.segMu.Unlock()
	anyRaw := false
	for _, s := range sel {
		anyRaw = anyRaw || s.raw
	}
	if len(sel) == 0 || (!anyRaw && len(sel) < 2) {
		// Nothing to fold, or re-writing a single rollup segment would
		// churn bytes without shrinking anything.
		return cs, nil
	}

	out, cutoffs, err := l.buildCompacted(sel)
	if err != nil {
		return cs, err
	}

	l.segMu.Lock()
	selSet := make(map[*segment]bool, len(sel))
	for _, s := range sel {
		selSet[s] = true
	}
	keep := make([]*segment, 0, len(l.segs))
	for _, s := range l.segs {
		if !selSet[s] {
			keep = append(keep, s)
		}
	}
	l.segs = append(keep, out)
	sortSegments(l.segs)
	l.segMu.Unlock()

	// Memory follows disk: raw blocks now represented only as rollups
	// on disk leave the store too.
	if l.store != nil && len(cutoffs) > 0 {
		l.store.DropSealedUpTo(cutoffs)
	}
	for _, s := range sel {
		cs.Compacted++
		cs.BytesFreed += s.size
		for range s.blocks {
			cs.RawBlocks++
		}
		if err := os.Remove(s.path); err != nil {
			l.logger.Error("compacted input remove failed", "err", err, "path", s.path)
		}
	}
	cs.BytesFreed -= out.size
	l.compactions.Add(1)
	return cs, nil
}

// ageCutoff returns the newest µs timestamp at which data becomes
// eligible for age-driven compaction or retention, or 0 when neither
// is configured.
func (l *Log) ageCutoff(now int64) int64 {
	var cutoff int64
	if l.opts.CompactAfter > 0 {
		cutoff = now - l.opts.CompactAfter.Microseconds()
	}
	if l.opts.RetainAge > 0 {
		if c := now - l.opts.RetainAge.Microseconds(); cutoff == 0 || c > cutoff {
			cutoff = c
		}
	}
	return cutoff
}

// buildCompacted folds the selected segments into one finalized
// rollup segment, returning it plus per-series raw-drop cutoffs.
func (l *Log) buildCompacted(sel []*segment) (*segment, map[tsdb.SeriesKey]int64, error) {
	widths := l.rollupWidths()
	type perKey struct {
		folders map[int64]*tsdb.Folder
		water   uint64
		maxRaw  int64 // newest raw sample folded, 0 if none
	}
	acc := make(map[tsdb.SeriesKey]*perKey)
	keyOrder := []tsdb.SeriesKey{}
	at := func(key tsdb.SeriesKey) *perKey {
		pk := acc[key]
		if pk == nil {
			pk = &perKey{folders: make(map[int64]*tsdb.Folder, len(widths))}
			for _, w := range widths {
				pk.folders[w] = tsdb.NewFolder(w)
			}
			acc[key] = pk
			keyOrder = append(keyOrder, key)
		}
		return pk
	}
	// Prior rollup runs first (they hold the oldest data), then raw
	// blocks — segment order within each pass is time order per series.
	for _, s := range sel {
		for _, rr := range s.rollups {
			pk := at(rr.key)
			if f := pk.folders[rr.width]; f != nil {
				f.Install(rr.buckets)
			}
		}
		for _, w := range s.marks {
			pk := at(w.key)
			if w.seq > pk.water {
				pk.water = w.seq
			}
		}
	}
	for _, s := range sel {
		for _, ref := range s.blocks {
			sb := ref.sb
			pk := at(sb.Key)
			tsdb.IterBlock(sb.Buf, sb.N, func(ts, v int64) bool {
				for _, f := range pk.folders {
					f.Add(ts, v)
				}
				return true
			})
			if sb.LastSeq > pk.water {
				pk.water = sb.LastSeq
			}
			if sb.MaxTS > pk.maxRaw {
				pk.maxRaw = sb.MaxTS
			}
		}
	}
	sort.Slice(keyOrder, func(i, j int) bool {
		a, b := keyOrder[i], keyOrder[j]
		if a.Session != b.Session {
			return a.Session < b.Session
		}
		return a.Event < b.Event
	})

	l.segMu.Lock()
	seq := l.nextSegSeq
	l.nextSegSeq++
	l.segMu.Unlock()
	w, err := createSegment(l.dir, seq)
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*segment, map[tsdb.SeriesKey]int64, error) {
		w.f.Close()
		os.Remove(w.path)
		return nil, nil, err
	}
	replacedThrough := sel[len(sel)-1].seq
	if err := w.writeRecord(appendCompactMeta(nil, replacedThrough)); err != nil {
		return fail(err)
	}
	const bucketsPerRecord = 4096
	cutoffs := make(map[tsdb.SeriesKey]int64)
	for _, key := range keyOrder {
		pk := acc[key]
		for _, width := range widths {
			buckets := pk.folders[width].Buckets()
			if n := len(buckets); n > 0 {
				// Rollup-only segments still need an age for retention.
				if end := buckets[n-1].Start + width; end > w.maxTS {
					w.maxTS = end
				}
			}
			for len(buckets) > 0 {
				n := min(len(buckets), bucketsPerRecord)
				rec := rollupRecord{key: key, width: width, buckets: buckets[:n]}
				if err := w.writeRecord(appendRollup(nil, rec)); err != nil {
					return fail(err)
				}
				buckets = buckets[n:]
			}
		}
		if pk.water > 0 {
			if err := w.writeRecord(appendWatermark(nil, watermarkRecord{key: key, seq: pk.water})); err != nil {
				return fail(err)
			}
		}
		if pk.maxRaw > 0 {
			cutoffs[key] = pk.maxRaw
		}
	}
	out, err := w.finalize()
	if err != nil {
		w.f.Close() // finalize's early error paths leave the handle open
		os.Remove(w.path)
		return nil, nil, err
	}
	out.replacedThrough = replacedThrough
	return out, cutoffs, nil
}

// rollupWidths returns the store's configured rollup widths in µs —
// compaction output matches the live levels exactly.
func (l *Log) rollupWidths() []int64 {
	if l.store != nil {
		return l.store.RollupWidths()
	}
	return nil
}
