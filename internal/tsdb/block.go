package tsdb

import "encoding/binary"

// block is one append-only compressed run of (timestamp, value) samples
// for a single series. The layout is Gorilla-inspired, adapted to
// integer counters:
//
//   - timestamps: the first is a zigzag varint, the second a zigzag
//     varint delta, and every later one a zigzag varint
//     delta-of-delta — ticks arrive at a near-constant period, so the
//     double delta is almost always 0 or ±1 and costs one byte;
//   - values: the first is a zigzag varint, the second a zigzag varint
//     delta, and every later one a zigzag varint delta-of-delta — the
//     integer analogue of Gorilla's XOR float packing. Cumulative
//     counters grow by a near-constant amount per tick, so the double
//     delta is again small.
//
// A block is mutable only through append; once sealed (capacity
// reached) it is immutable and may be read without any lock by anyone
// holding a reference.
type block struct {
	buf []byte
	n   int // samples encoded

	minTS, maxTS int64 // inclusive sample time range

	// mapped marks a sealed block whose buf aliases a memory-mapped
	// segment file (internal/tsdb/wal): the kernel owns the pages, so
	// the block charges only its fixed overhead against the memory
	// budget and the buf must never be written.
	mapped bool

	// persisted marks a sealed block known to exist on disk — its
	// segment write succeeded (MarkPersisted) or it was installed from
	// a segment at replay. Compaction's DropSealedUpTo only evicts
	// persisted blocks: one whose segment write failed lives nowhere
	// but memory, and dropping it would lose its samples without any
	// crash having happened.
	persisted bool

	// Encoder state for the next append.
	lastTS, lastTSDelta int64
	lastV, lastVDelta   int64
}

// appendSample encodes one sample. Timestamps must be non-decreasing;
// the caller (series.append) enforces ordering.
func (b *block) appendSample(ts, v int64) {
	switch b.n {
	case 0:
		b.buf = appendZigzag(b.buf, ts)
		b.buf = appendZigzag(b.buf, v)
		b.minTS = ts
	case 1:
		b.lastTSDelta = ts - b.lastTS
		b.lastVDelta = v - b.lastV
		b.buf = appendZigzag(b.buf, b.lastTSDelta)
		b.buf = appendZigzag(b.buf, b.lastVDelta)
	default:
		tsDelta := ts - b.lastTS
		vDelta := v - b.lastV
		b.buf = appendZigzag(b.buf, tsDelta-b.lastTSDelta)
		b.buf = appendZigzag(b.buf, vDelta-b.lastVDelta)
		b.lastTSDelta = tsDelta
		b.lastVDelta = vDelta
	}
	b.lastTS, b.lastV = ts, v
	b.maxTS = ts
	b.n++
}

// bytes reports the block's memory footprint for the store's budget
// accounting: the backing array, not just the encoded length, since
// that is what the heap actually holds. Mapped blocks charge only the
// fixed overhead — their bytes live in file-backed pages, not on the
// heap.
func (b *block) bytes() int64 {
	if b.mapped {
		return blockOverhead
	}
	return int64(cap(b.buf)) + blockOverhead
}

// blockOverhead approximates the fixed per-block header cost (struct
// fields + slice header) charged against the memory budget.
const blockOverhead = 96

// blockIter decodes a block sequentially. Decoding state mirrors the
// encoder exactly; a sealed block can be iterated concurrently by any
// number of iterators.
type blockIter struct {
	buf []byte
	n   int // samples remaining
	i   int // decoded so far

	ts, tsDelta int64
	v, vDelta   int64
}

func (b *block) iter() blockIter {
	return blockIter{buf: b.buf, n: b.n}
}

// next returns the next sample; ok is false when the block is
// exhausted.
func (it *blockIter) next() (ts, v int64, ok bool) {
	if it.i >= it.n {
		return 0, 0, false
	}
	switch it.i {
	case 0:
		it.ts = it.readZigzag()
		it.v = it.readZigzag()
	case 1:
		it.tsDelta = it.readZigzag()
		it.vDelta = it.readZigzag()
		it.ts += it.tsDelta
		it.v += it.vDelta
	default:
		it.tsDelta += it.readZigzag()
		it.vDelta += it.readZigzag()
		it.ts += it.tsDelta
		it.v += it.vDelta
	}
	it.i++
	return it.ts, it.v, true
}

func (it *blockIter) readZigzag() int64 {
	u, n := binary.Uvarint(it.buf)
	it.buf = it.buf[n:]
	return unzigzag(u)
}

func appendZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, zigzag(v))
}

// IterBlock decodes a delta-of-delta encoded block buffer (the exact
// bytes a sealed block holds and the wal layer persists verbatim) and
// calls yield for each of the n samples in time order, stopping early
// if yield returns false. It is the exported twin of blockIter for the
// durability layer, which re-folds persisted blocks into rollups at
// replay and compaction time.
func IterBlock(buf []byte, n int, yield func(ts, v int64) bool) {
	it := blockIter{buf: buf, n: n}
	for {
		ts, v, ok := it.next()
		if !ok || !yield(ts, v) {
			return
		}
	}
}

// zigzag maps signed to unsigned so small negatives stay small on the
// varint wire: 0,-1,1,-2,2 → 0,1,2,3,4.
func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
