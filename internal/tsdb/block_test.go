package tsdb

import (
	"math/rand"
	"testing"
)

func TestBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var b block
	type sample struct{ ts, v int64 }
	var want []sample
	ts, v := int64(1_000_000), int64(0)
	for i := 0; i < 1000; i++ {
		ts += 1000 + rng.Int63n(5) // jittered 1ms tick
		v += rng.Int63n(2000) - 3  // occasionally negative delta
		b.appendSample(ts, v)
		want = append(want, sample{ts, v})
	}
	if b.n != len(want) || b.minTS != want[0].ts || b.maxTS != want[len(want)-1].ts {
		t.Fatalf("block header n=%d min=%d max=%d", b.n, b.minTS, b.maxTS)
	}
	it := b.iter()
	for i, w := range want {
		ts, v, ok := it.next()
		if !ok {
			t.Fatalf("iterator exhausted at %d/%d", i, len(want))
		}
		if ts != w.ts || v != w.v {
			t.Fatalf("sample %d: got (%d,%d), want (%d,%d)", i, ts, v, w.ts, w.v)
		}
	}
	if _, _, ok := it.next(); ok {
		t.Fatal("iterator returned a sample past the end")
	}
}

func TestBlockExtremes(t *testing.T) {
	var b block
	vals := []int64{0, 1<<62 - 1, -(1 << 62), 42, -1, 0}
	for i, v := range vals {
		b.appendSample(int64(i)*1000, v)
	}
	it := b.iter()
	for i, want := range vals {
		_, v, ok := it.next()
		if !ok || v != want {
			t.Fatalf("extreme %d: got (%d,%v), want %d", i, v, ok, want)
		}
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), 1<<63 - 1, -1 << 63} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag(%d) round-trips to %d", v, got)
		}
	}
	if zigzag(-1) != 1 || zigzag(1) != 2 {
		t.Errorf("zigzag ordering: zigzag(-1)=%d zigzag(1)=%d", zigzag(-1), zigzag(1))
	}
}

// TestBlockCompression pins the headline property: a steady counter
// stream compresses at least 4x against 16 raw bytes per sample.
func TestBlockCompression(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var b block
	ts, v := int64(0), int64(0)
	const n = 4096
	for i := 0; i < n; i++ {
		ts += 50_000                     // fixed 50ms tick
		v += 1_000_000 + rng.Int63n(999) // near-constant counter rate
		b.appendSample(ts, v)
	}
	raw := int64(n * 16)
	if ratio := float64(raw) / float64(len(b.buf)); ratio < 4 {
		t.Errorf("compression ratio %.2fx (encoded %d bytes for %d raw), want >= 4x",
			ratio, len(b.buf), raw)
	}
}
