package tsdb

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// benchSamples is a realistic papid stream: 50ms ticks, near-constant
// counter rate with jitter.
func benchSamples(n int) []sample {
	rng := rand.New(rand.NewSource(3))
	out := make([]sample, n)
	ts, v := int64(0), int64(0)
	for i := range out {
		ts += 50_000 + rng.Int63n(31)
		v += 1_000_000 + rng.Int63n(997)
		out[i] = sample{ts, v}
	}
	return out
}

// BenchmarkTSDBAppend measures ingest throughput: one sample per op,
// rollups included.
func BenchmarkTSDBAppend(b *testing.B) {
	st := New(Config{MaxBytes: 1 << 30, MaxAge: -1})
	samples := benchSamples(1 << 16)
	b.SetBytes(16) // one raw (ts, value) pair
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := samples[i&(1<<16-1)]
		// Keep timestamps monotone across wraps.
		st.Append(1, "PAPI_TOT_CYC", s.ts+int64(i>>16)*samples[len(samples)-1].ts, s.v)
	}
}

// BenchmarkTSDBCompress reports the headline compression ratio versus
// raw int64 (ts, value) pairs, as the x-compression metric.
func BenchmarkTSDBCompress(b *testing.B) {
	samples := benchSamples(1 << 16)
	var encoded int64
	for i := 0; i < b.N; i++ {
		var blk block
		for _, s := range samples {
			blk.appendSample(s.ts, s.v)
		}
		encoded = int64(len(blk.buf))
	}
	raw := int64(len(samples) * 16)
	b.SetBytes(raw)
	b.ReportMetric(float64(raw)/float64(encoded), "x-compression")
	b.ReportMetric(float64(encoded)/float64(len(samples)), "B/sample")
}

// BenchmarkTSDBDecode measures block decode throughput.
func BenchmarkTSDBDecode(b *testing.B) {
	samples := benchSamples(1 << 16)
	var blk block
	for _, s := range samples {
		blk.appendSample(s.ts, s.v)
	}
	b.SetBytes(int64(len(samples) * 16))
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		it := blk.iter()
		for {
			_, v, ok := it.next()
			if !ok {
				break
			}
			sink += v
		}
	}
	_ = sink
}

// BenchmarkTSDBAppendBatch measures papid's tick shape — one row of E
// events per op — batched (one lock round per shard) against the
// sequential per-event path it replaced.
func BenchmarkTSDBAppendBatch(b *testing.B) {
	events := []string{"PAPI_TOT_CYC", "PAPI_FP_OPS", "PAPI_L1_DCM", "PAPI_TOT_INS",
		"PAPI_BR_MSP", "PAPI_TLB_DM", "PAPI_L2_TCM", "PAPI_TOT_IIS"}
	for _, mode := range []string{"batched", "serial"} {
		for _, width := range []int{2, 8} {
			b.Run(fmt.Sprintf("%s/events-%d", mode, width), func(b *testing.B) {
				st := New(Config{MaxBytes: 1 << 30, MaxAge: -1})
				samples := benchSamples(1 << 16)
				row := make([]int64, width)
				b.SetBytes(int64(16 * width))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s := samples[i&(1<<16-1)]
					ts := s.ts + int64(i>>16)*samples[len(samples)-1].ts
					for e := range row {
						row[e] = s.v + int64(e)
					}
					if mode == "batched" {
						st.AppendBatch(1, ts, events[:width], row)
					} else {
						for e := 0; e < width; e++ {
							st.Append(1, events[e], ts, row[e])
						}
					}
				}
			})
		}
	}
}

// BenchmarkTSDBQuery measures query latency over a populated store at
// 1, 8 and 64 concurrent queriers mixing rollup- and raw-resolution
// reads.
func BenchmarkTSDBQuery(b *testing.B) {
	st := New(Config{MaxBytes: 1 << 30, MaxAge: -1})
	samples := benchSamples(200_000)
	events := []string{"PAPI_TOT_CYC", "PAPI_FP_OPS", "PAPI_L1_DCM", "PAPI_TOT_INS"}
	for _, ev := range events {
		for _, s := range samples {
			st.Append(1, ev, s.ts, s.v)
		}
	}
	last := samples[len(samples)-1].ts
	queries := []Query{
		{From: 0, To: last, Step: 60_000_000},                          // full range, 60s rollup
		{From: last / 2, To: last, Step: 10_000_000},                   // half range, 10s rollup
		{From: last - 2_000_000, To: last, Step: 100_000},              // recent 2s, raw decode
		{Events: events[:1], From: 0, To: last, Step: 10 * 60_000_000}, // coarse single event
	}
	for _, nq := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("queriers-%d", nq), func(b *testing.B) {
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < nq; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						q := queries[i%int64(len(queries))]
						if res := st.Query(1, q); len(res) == 0 {
							b.Error("empty query result")
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkTSDBEvictingAppend measures steady-state ingest with the
// budget eviction loop active — the worst-case hot path.
func BenchmarkTSDBEvictingAppend(b *testing.B) {
	st := New(Config{MaxBytes: 64 << 10, MaxAge: time.Hour})
	samples := benchSamples(1 << 16)
	b.SetBytes(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := samples[i&(1<<16-1)]
		st.Append(1, "PAPI_TOT_CYC", s.ts+int64(i>>16)*samples[len(samples)-1].ts, s.v)
	}
}
