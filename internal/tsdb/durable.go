package tsdb

// This file is the store's durability surface: the hook interface a
// persistence layer (internal/tsdb/wal) implements, and the ingestion
// APIs replay uses to rebuild in-memory state from disk. The store
// itself stays storage-agnostic — it reports seals and drops, and
// accepts reconstructed blocks and rollup buckets; everything about
// files, fsync and mmap lives behind the Storage interface.

// SealedBlock is one immutable sealed block handed to the storage
// layer (and handed back at replay): the delta-of-delta encoded buffer
// exactly as the in-memory block holds it, which is also exactly what
// goes on disk — sealing persists bytes, it never re-encodes.
type SealedBlock struct {
	Key          SeriesKey
	Buf          []byte // delta-of-delta encoding, immutable
	N            int    // samples encoded
	MinTS, MaxTS int64  // inclusive sample time range
	// LastSeq is the WAL row sequence of the newest sample the block
	// covers (0 without a durability layer). Replay skips WAL rows at
	// or below a series' highest persisted LastSeq — they are already
	// inside sealed segments.
	LastSeq uint64
}

// Storage receives the store's durability callbacks. Implementations
// must not call back into the store from these methods while assuming
// any lock state: callbacks always run outside the store's shard
// locks, on the goroutine whose append or sweep triggered them.
type Storage interface {
	// OnSeal delivers newly sealed blocks, in seal order. The store
	// guarantees it will not budget-evict a block before OnSeal for it
	// has returned.
	OnSeal(blocks []SealedBlock)
	// OnDropSeries reports series the store expired entirely, so the
	// storage layer can release per-series bookkeeping.
	OnDropSeries(keys []SeriesKey)
}

func sealedBlockOf(key SeriesKey, b *block, lastSeq uint64) SealedBlock {
	return SealedBlock{Key: key, Buf: b.buf[:len(b.buf):len(b.buf)], N: b.n,
		MinTS: b.minTS, MaxTS: b.maxTS, LastSeq: lastSeq}
}

func (s *Store) fireSeals(seals []SealedBlock) {
	if len(seals) > 0 && s.cfg.Storage != nil {
		s.cfg.Storage.OnSeal(seals)
	}
}

// SealAllActive seals every non-empty active block, firing the storage
// hook for each, and reports how many blocks it sealed. It is the
// graceful-shutdown flush: after it returns (and the storage layer has
// synced), every sample the store holds is inside a sealed, persisted
// block and a restart replays no WAL at all.
func (s *Store) SealAllActive() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		var seals []SealedBlock
		sh.mu.Lock()
		for key, sr := range sh.m {
			if sr.active == nil || sr.active.n == 0 {
				continue
			}
			sealed := sr.active
			sr.sealed = append(sr.sealed, sealed)
			sr.active = nil
			seals = append(seals, sealedBlockOf(key, sealed, sr.lastSeq))
		}
		sh.mu.Unlock()
		s.fireSeals(seals)
		total += len(seals)
	}
	return total
}

// InstallSealed inserts a persisted sealed block during replay. Blocks
// of one series must arrive in time order. mapped marks a buffer that
// aliases a memory-mapped segment file (charged at fixed overhead
// only); fold re-folds the block's samples into the series' rollup
// levels — true for raw blocks, false when the levels were already
// rebuilt from finer-grained persisted state.
func (s *Store) InstallSealed(sb SealedBlock, mapped, fold bool) {
	sh := s.shardFor(sb.Key)
	sh.mu.Lock()
	sr := sh.m[sb.Key]
	if sr == nil {
		sr = newSeries(sb.Key, s.widths)
		sh.m[sb.Key] = sr
		s.indexAdd(sb.Key)
	}
	before := sr.bytes()
	// Replay installs only blocks read back from segment files, so by
	// construction every installed block is persisted.
	b := &block{buf: sb.Buf, n: sb.N, minTS: sb.MinTS, maxTS: sb.MaxTS, mapped: mapped, persisted: true}
	sr.sealed = append(sr.sealed, b)
	sr.samples += uint64(sb.N)
	if sb.MaxTS > sr.lastTS {
		sr.lastTS = sb.MaxTS
	}
	if sb.LastSeq > sr.lastSeq {
		sr.lastSeq = sb.LastSeq
	}
	if fold {
		IterBlock(sb.Buf, sb.N, func(ts, v int64) bool {
			for i := range sr.levels {
				sr.levels[i].append(ts, v)
			}
			return true
		})
	}
	delta := sr.bytes() - before
	sh.mu.Unlock()
	s.samples.Add(uint64(sb.N))
	s.bytes.Add(delta)
}

// InstallRollup pre-populates one rollup level with persisted buckets
// during replay (the product of segment compaction). Buckets must be
// in time order and older than any raw sample folded afterwards. It
// reports false when the store has no level of that width — persisted
// rollups of a width no longer configured are skipped, not misfiled.
func (s *Store) InstallRollup(key SeriesKey, width int64, buckets []Bucket) bool {
	if len(buckets) == 0 {
		return true
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sr := sh.m[key]
	if sr == nil {
		sr = newSeries(key, s.widths)
		sh.m[key] = sr
		s.indexAdd(key)
	}
	for i := range sr.levels {
		if sr.levels[i].width != width {
			continue
		}
		before := sr.levels[i].bytes()
		sr.levels[i].install(buckets)
		last := buckets[len(buckets)-1]
		if last.Start > sr.lastTS {
			// Rollup-only history still positions the series in time so
			// retention sweeps age it correctly.
			sr.lastTS = last.Start
		}
		s.bytes.Add(sr.levels[i].bytes() - before)
		return true
	}
	return false
}

// Remap swaps a sealed block's heap buffer for a memory-mapped one
// holding identical bytes — the storage layer calls it after a segment
// file is finalized and mapped, releasing the heap copy. The block is
// matched by (minTS, n) and verified byte-equal; a block already
// evicted, already mapped, or not matching is left alone.
func (s *Store) Remap(key SeriesKey, minTS int64, n int, buf []byte) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sr := sh.m[key]
	if sr == nil {
		return false
	}
	for _, b := range sr.sealed {
		if b.mapped || b.minTS != minTS || b.n != n || len(b.buf) != len(buf) {
			continue
		}
		if !bytesEqual(b.buf, buf) {
			continue
		}
		old := b.bytes()
		b.buf = buf
		b.mapped = true
		s.bytes.Add(b.bytes() - old)
		return true
	}
	return false
}

// MarkPersisted flags a sealed block as durably written to a segment
// file. The storage layer calls it for exactly the blocks whose
// segment append succeeded; DropSealedUpTo refuses to evict the rest,
// so a block that degraded to RAM-only stays queryable until retention
// or the byte budget ages it out. Blocks are matched by (minTS, n) in
// seal order — the oldest unmarked match is the one whose write just
// completed, since seals and writes share one order.
func (s *Store) MarkPersisted(key SeriesKey, minTS int64, n int) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sr := sh.m[key]
	if sr == nil {
		return false
	}
	for _, b := range sr.sealed {
		if !b.persisted && b.minTS == minTS && b.n == n {
			b.persisted = true
			return true
		}
	}
	return false
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DropSealedOlder evicts every sealed block whose newest sample is at
// or before cutoff, across all series, leaving rollup levels intact.
// Compaction calls it after merging old raw segments into
// rollup-resolution segments: once raw data below the horizon exists
// only as rollups on disk, memory must stop serving it raw too, or a
// restart would change query answers.
func (s *Store) DropSealedOlder(cutoff int64) (blocks int) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, sr := range sh.m {
			for len(sr.sealed) > 0 && sr.sealed[0].maxTS <= cutoff {
				s.bytes.Add(-sr.evictOldestSealed())
				blocks++
			}
		}
		sh.mu.Unlock()
	}
	return blocks
}

// DropSealedUpTo is the per-series variant: cutoffs maps each series
// to the newest sample timestamp of its own compacted blocks, so a
// series whose blocks were not part of this compaction round keeps its
// raw data in memory. A global cutoff would evict a slow series' raw
// blocks that still exist raw on disk, and a restart would then serve
// them again — a pre/post-restart mismatch this avoids.
func (s *Store) DropSealedUpTo(cutoffs map[SeriesKey]int64) (blocks int) {
	for key, cutoff := range cutoffs {
		sh := s.shardFor(key)
		sh.mu.Lock()
		if sr := sh.m[key]; sr != nil {
			// Stop at the first non-persisted block: it exists nowhere
			// but memory (its segment write failed), so evicting it —
			// or anything behind it, to keep the ring time-ordered —
			// would lose samples without any crash.
			for len(sr.sealed) > 0 && sr.sealed[0].maxTS <= cutoff && sr.sealed[0].persisted {
				s.bytes.Add(-sr.evictOldestSealed())
				blocks++
			}
		}
		sh.mu.Unlock()
	}
	return blocks
}

// EnforceBudget applies the byte budget once — replay calls it after
// bulk installs instead of checking per block.
func (s *Store) EnforceBudget() {
	if s.bytes.Load() > s.cfg.MaxBytes {
		s.evictToBudget()
	}
}

// RollupWidths returns the configured rollup bucket widths in µs,
// coarsest last — the resolutions a compacting storage layer must
// reproduce.
func (s *Store) RollupWidths() []int64 {
	return append([]int64(nil), s.widths...)
}

// Folder incrementally folds time-ordered raw samples into
// grid-aligned buckets of one width — the same arithmetic the store's
// rollup levels apply on the hot path, exported so compaction produces
// buckets that are bit-identical to what replaying the raw samples
// would have built.
type Folder struct {
	level rollupLevel
}

// NewFolder returns a Folder producing width-µs buckets.
func NewFolder(width int64) *Folder {
	return &Folder{level: rollupLevel{width: width}}
}

// Add folds one sample; samples must arrive in non-decreasing time
// order.
func (f *Folder) Add(ts, v int64) { f.level.append(ts, v) }

// Install seeds the folder with already-folded buckets (the rollup
// runs of an earlier compaction) before newer runs or raw samples are
// added — the same continuation logic replay applies live.
func (f *Folder) Install(buckets []Bucket) { f.level.install(buckets) }

// Buckets returns every bucket folded so far, including the partial
// trailing one.
func (f *Folder) Buckets() []Bucket {
	out := append([]Bucket(nil), f.level.buckets...)
	if f.level.curSet {
		out = append(out, f.level.cur)
	}
	return out
}
