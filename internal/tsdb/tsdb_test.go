package tsdb

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

type sample struct{ ts, v int64 }

// bruteQuery is the reference implementation of Query's window
// semantics over an uncompressed sample log: every window on the
// absolute Step grid overlapping [from, to) aggregates all samples
// flooring into it.
func bruteQuery(samples []sample, from, to, step int64) []Bucket {
	effFrom := from - mod(from, step)
	var out []Bucket
	for _, s := range samples {
		w := s.ts - mod(s.ts, step)
		if w < effFrom || w >= to {
			continue
		}
		if n := len(out); n > 0 && out[n-1].Start == w {
			out[n-1].merge(s.v)
		} else {
			bk := Bucket{Start: w}
			bk.merge(s.v)
			out = append(out, bk)
		}
	}
	return out
}

func sameBuckets(t *testing.T, label string, got, want []Bucket) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d buckets, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g != w {
			t.Fatalf("%s: bucket %d = %+v, want %+v", label, i, g, w)
		}
	}
}

// genCounter builds a deterministic cumulative-counter stream: n ticks
// of period µs with jitter, near-constant increments with occasional
// bursts — the shape papid actually produces.
func genCounter(n int, period int64, seed int64) []sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]sample, n)
	ts, v := int64(0), int64(0)
	for i := range out {
		ts += period + rng.Int63n(7)
		inc := 10_000 + rng.Int63n(997)
		if rng.Intn(100) == 0 {
			inc *= 50 // burst
		}
		v += inc
		out[i] = sample{ts, v}
	}
	return out
}

// TestQueryAgainstBruteForce100k is the acceptance gate: a series fed
// 100k ticks answers QUERY with exactly the brute-force
// min/max/sum/count at every rollup level (raw, 10s, 60s) and at steps
// that aggregate rollup buckets further.
func TestQueryAgainstBruteForce100k(t *testing.T) {
	const nTicks = 100_000
	const period = 10_000 // 10ms ticks → ~1000s of data
	st := New(Config{
		MaxBytes: 64 << 20, // roomy: this test checks correctness, not eviction
		MaxAge:   -1,
	})
	samples := genCounter(nTicks, period, 42)
	for _, s := range samples {
		st.Append(7, "PAPI_TOT_CYC", s.ts, s.v)
	}
	if got := st.Stats().Samples; got != nTicks {
		t.Fatalf("store holds %d samples, want %d", got, nTicks)
	}

	from, to := samples[0].ts, samples[len(samples)-1].ts+1
	steps := []struct {
		name      string
		step      int64
		wantWidth int64
	}{
		{"raw-5ms", 5_000, 0},   // finer than any rollup → raw decode
		{"raw-35ms", 35_000, 0}, // no rollup divides it → raw decode
		{"rollup-10s", 10_000_000, 10_000_000},
		{"rollup-30s", 30_000_000, 10_000_000}, // 3 × 10s buckets per window
		{"rollup-60s", 60_000_000, 60_000_000},
		{"rollup-5m", 300_000_000, 60_000_000}, // 5 × 60s buckets per window
	}
	for _, tc := range steps {
		res := st.Query(7, Query{From: from, To: to, Step: tc.step})
		if len(res) != 1 || res[0].Event != "PAPI_TOT_CYC" {
			t.Fatalf("%s: got %d series", tc.name, len(res))
		}
		if res[0].Width != tc.wantWidth {
			t.Errorf("%s: answered from width %d, want %d", tc.name, res[0].Width, tc.wantWidth)
		}
		sameBuckets(t, tc.name, res[0].Buckets, bruteQuery(samples, from, to, tc.step))
	}

	// Sub-range query: a one-minute slice out of the middle.
	mid := samples[nTicks/2].ts
	res := st.Query(7, Query{From: mid, To: mid + 60_000_000, Step: 10_000_000})
	sameBuckets(t, "mid-slice", res[0].Buckets,
		bruteQuery(samples, mid, mid+60_000_000, 10_000_000))

	// Step 0 returns the raw samples themselves.
	lo, hi := samples[100].ts, samples[300].ts+1
	raw := st.Query(7, Query{From: lo, To: hi, Step: 0})
	if len(raw) != 1 || len(raw[0].Buckets) != 201 {
		t.Fatalf("raw query returned %d series / %d points, want 201 points",
			len(raw), len(raw[0].Buckets))
	}
	for i, bk := range raw[0].Buckets {
		s := samples[100+i]
		if bk.Start != s.ts || bk.Last != s.v || bk.Count != 1 {
			t.Fatalf("raw point %d = %+v, want ts=%d v=%d", i, bk, s.ts, s.v)
		}
	}
}

// TestEvictionBudget verifies the fixed memory budget: 100k ticks into
// a 48 KiB store must evict, stay under budget, keep the newest raw
// data intact, and keep rollups answering the full range.
// TestQueryValidRejectsBadWindows: an inverted range or negative step
// is refused outright — nil result, no scan — never an empty answer a
// caller could mistake for "no data in range". Step 0 stays valid: it
// is the documented raw-samples mode.
func TestQueryValidRejectsBadWindows(t *testing.T) {
	st := New(Config{})
	st.Append(1, "PAPI_TOT_CYC", 100, 42)

	cases := []struct {
		name  string
		q     Query
		valid bool
	}{
		{"inverted range", Query{From: 200, To: 100, Step: 10}, false},
		{"empty range", Query{From: 100, To: 100, Step: 10}, false},
		{"negative step", Query{From: 0, To: 200, Step: -1}, false},
		{"raw step zero", Query{From: 0, To: 200, Step: 0}, true},
		{"well-formed", Query{From: 0, To: 200, Step: 10}, true},
	}
	for _, tc := range cases {
		if got := tc.q.Valid(); got != tc.valid {
			t.Errorf("%s: Valid() = %v, want %v", tc.name, got, tc.valid)
		}
		res := st.Query(1, tc.q)
		if tc.valid && len(res) != 1 {
			t.Errorf("%s: Query returned %d series, want 1", tc.name, len(res))
		}
		if !tc.valid && res != nil {
			t.Errorf("%s: invalid query returned %v, want nil", tc.name, res)
		}
	}
}

func TestEvictionBudget(t *testing.T) {
	const nTicks = 100_000
	const budget = 48 << 10
	st := New(Config{MaxBytes: budget, MaxAge: -1})
	samples := genCounter(nTicks, 10_000, 99)
	for _, s := range samples {
		st.Append(1, "PAPI_FP_OPS", s.ts, s.v)
	}
	stats := st.Stats()
	if stats.Bytes > budget {
		t.Errorf("store holds %d bytes, budget %d", stats.Bytes, budget)
	}
	if stats.Evictions == 0 {
		t.Error("no evictions despite a budget 100x smaller than the data")
	}

	// Raw data must survive as a contiguous suffix of the stream.
	from, to := samples[0].ts, samples[len(samples)-1].ts+1
	raw := st.Query(1, Query{From: from, To: to, Step: 0})
	if len(raw) != 1 || len(raw[0].Buckets) == 0 {
		t.Fatal("no raw data retained")
	}
	got := raw[0].Buckets
	off := len(samples) - len(got)
	if off <= 0 {
		t.Fatalf("retained %d raw points out of %d without evicting", len(got), len(samples))
	}
	for i, bk := range got {
		s := samples[off+i]
		if bk.Start != s.ts || bk.Last != s.v {
			t.Fatalf("retained point %d = %+v, want ts=%d v=%d (suffix broken)",
				i, bk, s.ts, s.v)
		}
	}

	// Rollups are evicted only by age, so a 60s-step query still
	// answers the whole range exactly.
	res := st.Query(1, Query{From: from, To: to, Step: 60_000_000})
	sameBuckets(t, "rollup-after-evict", res[0].Buckets,
		bruteQuery(samples, from, to, 60_000_000))
}

// TestRetentionAge verifies age-based expiry on both append and Sweep.
func TestRetentionAge(t *testing.T) {
	st := New(Config{MaxBytes: 64 << 20, MaxAge: time.Second})
	// 3 seconds of 1ms ticks; retention 1s.
	samples := genCounter(3000, 1000, 5)
	for _, s := range samples {
		st.Append(2, "PAPI_TOT_INS", s.ts, s.v)
	}
	last := samples[len(samples)-1].ts
	cutoff := last - time.Second.Microseconds()
	raw := st.Query(2, Query{From: 0, To: last + 1, Step: 0})
	if len(raw) == 0 {
		t.Fatal("no raw data retained")
	}
	first := raw[0].Buckets[0].Start
	// Sealed blocks expire only when their whole range is past the
	// cutoff, so the oldest retained sample may precede the cutoff by
	// up to one block; it must never precede it by more.
	blockSpan := int64(512) * 1100 // BlockSamples × max tick period
	if first < cutoff-blockSpan {
		t.Errorf("oldest retained sample %d is more than a block before cutoff %d", first, cutoff)
	}
	if st.Stats().Evictions == 0 {
		t.Error("no age evictions after 3x the retention window")
	}

	// A Sweep far in the future drops everything, series included.
	st.Sweep(last + 10*time.Second.Microseconds())
	if stats := st.Stats(); stats.Series != 0 {
		t.Errorf("%d series survive a sweep past retention", stats.Series)
	}
	if res := st.Query(2, Query{From: 0, To: last + 1, Step: 0}); len(res) != 0 {
		t.Error("swept series still answers queries")
	}
}

// TestMultiSeries checks session/event addressing: AppendRow fans one
// tick into per-event series, queries filter and sort, and sessions
// are isolated.
func TestMultiSeries(t *testing.T) {
	st := New(Config{MaxAge: -1})
	events := []string{"PAPI_TOT_CYC", "PAPI_FP_OPS"}
	for i := int64(1); i <= 100; i++ {
		st.AppendRow(1, i*1000, events, []int64{i * 10, i * 3})
		st.AppendRow(2, i*1000, events[:1], []int64{i * 7})
	}
	if got := st.Stats().Series; got != 3 {
		t.Fatalf("%d series, want 3", got)
	}
	// Unfiltered query returns both events sorted by name.
	res := st.Query(1, Query{From: 0, To: 200_000, Step: 0})
	if len(res) != 2 || res[0].Event != "PAPI_FP_OPS" || res[1].Event != "PAPI_TOT_CYC" {
		t.Fatalf("unfiltered query: %+v", res)
	}
	// Filtered query returns only the named event.
	res = st.Query(1, Query{Events: []string{"PAPI_TOT_CYC"}, From: 0, To: 200_000, Step: 0})
	if len(res) != 1 || res[0].Event != "PAPI_TOT_CYC" || res[0].Buckets[99].Last != 1000 {
		t.Fatalf("filtered query: %+v", res)
	}
	// Sessions don't bleed into each other.
	res = st.Query(2, Query{From: 0, To: 200_000, Step: 0})
	if len(res) != 1 || res[0].Buckets[0].Last != 7 {
		t.Fatalf("session-2 query: %+v", res)
	}
	if res := st.Query(3, Query{From: 0, To: 200_000, Step: 0}); len(res) != 0 {
		t.Errorf("unknown session answered %d series", len(res))
	}
}

// TestOutOfOrderClamp: a timestamp stepping backwards is clamped, not
// corrupted.
func TestOutOfOrderClamp(t *testing.T) {
	st := New(Config{MaxAge: -1})
	st.Append(1, "E", 1000, 1)
	st.Append(1, "E", 2000, 2)
	st.Append(1, "E", 500, 3) // clock stepped back
	res := st.Query(1, Query{From: 0, To: 10_000, Step: 0})
	bks := res[0].Buckets
	if len(bks) != 3 || bks[2].Start != 2000 || bks[2].Last != 3 {
		t.Fatalf("clamped append: %+v", bks)
	}
}

// TestConcurrentAppendQuery races appenders against queriers and
// sweeps; run under -race this is the store's data-race gate.
func TestConcurrentAppendQuery(t *testing.T) {
	st := New(Config{MaxBytes: 256 << 10, MaxAge: -1, BlockSamples: 64})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(0); i < 20_000; i++ {
			st.Append(uint64(i%4), "PAPI_TOT_CYC", i*1000, i*i)
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
			st.Query(uint64(time.Now().UnixNano()%4), Query{From: 0, To: 1 << 40, Step: 10_000_000})
			st.Stats()
		}
	}
}

// TestAppendBatchEquivalence: a batched row must leave the store in
// exactly the state E sequential Appends would — same query results,
// same sample/byte accounting — including rows whose events collide
// into one shard and rows wider than the grouping bitmap.
func TestAppendBatchEquivalence(t *testing.T) {
	const sessions, ticks = 3, 400
	events := make([]string, 70) // > 64 forces the wide-row fallback too
	for i := range events {
		events[i] = fmt.Sprintf("PAPI_EV_%02d", i)
	}
	for _, width := range []int{1, 2, 8, len(events)} {
		batched := New(Config{MaxBytes: 1 << 30, MaxAge: -1})
		serial := New(Config{MaxBytes: 1 << 30, MaxAge: -1})
		row := make([]int64, width)
		for sess := uint64(1); sess <= sessions; sess++ {
			ts, rng := int64(0), rand.New(rand.NewSource(int64(sess)*7+int64(width)))
			for tick := 0; tick < ticks; tick++ {
				ts += 50_000 + rng.Int63n(31)
				for e := 0; e < width; e++ {
					row[e] += 1_000 + rng.Int63n(97)
				}
				batched.AppendBatch(sess, ts, events[:width], row)
				for e := 0; e < width; e++ {
					serial.Append(sess, events[e], ts, row[e])
				}
			}
		}
		bs, ss := batched.Stats(), serial.Stats()
		if bs != ss {
			t.Fatalf("width %d: stats diverge: batched %+v, serial %+v", width, bs, ss)
		}
		for sess := uint64(1); sess <= sessions; sess++ {
			for e := 0; e < width; e++ {
				q := Query{Events: []string{events[e]}, From: 0, To: 1 << 62, Step: 0}
				bq := batched.Query(sess, q)
				sq := serial.Query(sess, q)
				if len(bq) != 1 || len(sq) != 1 {
					t.Fatalf("width %d sess %d %s: %d/%d series", width, sess, events[e], len(bq), len(sq))
				}
				sameBuckets(t, fmt.Sprintf("width %d sess %d %s", width, sess, events[e]),
					bq[0].Buckets, sq[0].Buckets)
			}
		}
	}
}

// TestAppendBatchRaggedRow: extra values without names are ignored,
// mirroring AppendRow's historical min(len) contract.
func TestAppendBatchRaggedRow(t *testing.T) {
	st := New(Config{MaxBytes: 1 << 30, MaxAge: -1})
	st.AppendBatch(1, 100, []string{"A", "B"}, []int64{1, 2, 3})
	st.AppendBatch(1, 200, []string{"A", "B", "C"}, []int64{4, 5})
	st.AppendBatch(1, 300, nil, []int64{9})
	stats := st.Stats()
	if stats.Series != 2 || stats.Samples != 4 {
		t.Fatalf("ragged rows: %+v", stats)
	}
}

// TestDropSealedUpToSparesUnpersisted: compaction's eviction must not
// touch sealed blocks whose segment write failed — they exist nowhere
// but memory, so dropping them would lose samples without any crash.
func TestDropSealedUpToSparesUnpersisted(t *testing.T) {
	st := New(Config{BlockSamples: 4, MaxBytes: 1 << 30, MaxAge: -1})
	key := SeriesKey{Session: 1, Event: "E"}
	for i := 0; i < 12; i++ { // three sealed blocks of four samples
		st.AppendBatchSeq(1, int64(i)*1000, []string{"E"}, []int64{int64(i)}, uint64(i+1))
	}
	if n := st.DropSealedUpTo(map[SeriesKey]int64{key: 1 << 60}); n != 0 {
		t.Fatalf("dropped %d blocks no storage layer ever persisted", n)
	}
	if !st.MarkPersisted(key, 0, 4) || !st.MarkPersisted(key, 4000, 4) {
		t.Fatal("MarkPersisted did not match the sealed blocks")
	}
	if st.MarkPersisted(key, 0, 4) {
		t.Fatal("MarkPersisted re-matched an already-persisted block")
	}
	if n := st.DropSealedUpTo(map[SeriesKey]int64{key: 1 << 60}); n != 2 {
		t.Fatalf("dropped %d blocks, want exactly the 2 persisted ones", n)
	}
}
