package tsdb

// series holds one (session, event) stream: an active append block,
// the time-ordered ring of sealed blocks behind it, and one rollupLevel
// per configured resolution. All mutation happens under the owning
// shard's lock; sealed blocks are immutable and safe to decode after
// the lock is released.
type series struct {
	key     SeriesKey
	active  *block
	sealed  []*block
	levels  []rollupLevel
	lastTS  int64
	samples uint64
	// lastSeq is the WAL row sequence of the newest sample (0 when no
	// durability layer is attached). A seal event captures it so replay
	// knows exactly which WAL rows the sealed block already covers.
	lastSeq uint64
}

func newSeries(key SeriesKey, widths []int64) *series {
	sr := &series{key: key, levels: make([]rollupLevel, len(widths))}
	for i, w := range widths {
		sr.levels[i].width = w
	}
	return sr
}

// append adds one sample, sealing the active block at blockSamples. It
// returns the change in the series' budget charge and, when this
// sample filled the active block, the newly sealed block. Timestamps
// are monotonized: a sample older than the last one is clamped
// forward, so a clock step backwards degrades resolution instead of
// corrupting the delta chain.
func (sr *series) append(ts, v int64, blockSamples int, seq uint64) (deltaBytes int64, sealed *block) {
	if sr.samples > 0 && ts < sr.lastTS {
		ts = sr.lastTS
	}
	before := sr.bytes()
	if sr.active == nil {
		sr.active = &block{}
	}
	sr.active.appendSample(ts, v)
	if seq > sr.lastSeq {
		sr.lastSeq = seq
	}
	if sr.active.n >= blockSamples {
		sealed = sr.active
		sr.sealed = append(sr.sealed, sr.active)
		sr.active = nil
	}
	for i := range sr.levels {
		sr.levels[i].append(ts, v)
	}
	sr.lastTS = ts
	sr.samples++
	return sr.bytes() - before, sealed
}

// bytes is the series' total budget charge.
func (sr *series) bytes() int64 {
	var n int64
	if sr.active != nil {
		n += sr.active.bytes()
	}
	for _, b := range sr.sealed {
		n += b.bytes()
	}
	for i := range sr.levels {
		n += sr.levels[i].bytes()
	}
	return n
}

// oldestSealedTS returns the minimum timestamp of the oldest sealed
// block, or ok=false when none exists.
func (sr *series) oldestSealedTS() (int64, bool) {
	if len(sr.sealed) == 0 {
		return 0, false
	}
	return sr.sealed[0].minTS, true
}

// evictOldestSealed drops the oldest sealed block, returning the bytes
// freed.
func (sr *series) evictOldestSealed() int64 {
	if len(sr.sealed) == 0 {
		return 0
	}
	freed := sr.sealed[0].bytes()
	sr.sealed = append(sr.sealed[:0:0], sr.sealed[1:]...)
	return freed
}

// evictExpired drops raw blocks and rollup buckets that end at or
// before cutoff. It returns bytes freed and the number of eviction
// events (each dropped block, and each level that lost buckets).
func (sr *series) evictExpired(cutoff int64) (freed int64, events uint64) {
	for len(sr.sealed) > 0 && sr.sealed[0].maxTS < cutoff {
		freed += sr.evictOldestSealed()
		events++
	}
	for i := range sr.levels {
		before := sr.levels[i].bytes()
		if sr.levels[i].evictBefore(cutoff) > 0 {
			freed += before - sr.levels[i].bytes()
			events++
		}
	}
	return freed, events
}

// rawBuckets decodes the raw samples in [from, to) into single-sample
// buckets. sealedRefs and activeCopy come from snapshotBlocks, so no
// lock is held while decoding.
func rawBuckets(sealedRefs []*block, activeCopy *block, from, to int64) []Bucket {
	var out []Bucket
	scan := func(b *block) {
		if b.n == 0 || b.maxTS < from || b.minTS >= to {
			return
		}
		it := b.iter()
		for {
			ts, v, ok := it.next()
			if !ok || ts >= to {
				return
			}
			if ts < from {
				continue
			}
			out = append(out, Bucket{Start: ts, Count: 1, Min: v, Max: v, Sum: v, Last: v})
		}
	}
	for _, b := range sealedRefs {
		scan(b)
	}
	if activeCopy != nil {
		scan(activeCopy)
	}
	return out
}
