// Package tsdb is an embedded, dependency-free time-series store for
// counter samples — the layer that turns papid from a live fan-out
// service into an observability backend with history. The paper's
// end-user tools (perfometer §2, hpcview §3) exist to look at counter
// data over time; tsdb is where that time axis lives.
//
// Design, in one paragraph: each (session, event) pair is a series;
// samples append into Gorilla-style compressed blocks (delta-of-delta
// timestamps, double-delta zigzag-varint values — see block.go) that
// seal at a fixed sample count and form a time-ordered ring; every
// append also folds into pre-computed rollup levels (default 10s and
// 60s windows of min/max/sum/count/last), so a long-range query reads
// O(points returned) pre-aggregated buckets instead of decoding
// O(points stored) raw samples. A fixed byte budget is enforced by
// evicting the globally oldest sealed block (ring-buffer semantics),
// and a retention age expires both raw blocks and rollup buckets.
package tsdb

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// SeriesKey identifies one series: a papid session plus one of its
// event names.
type SeriesKey struct {
	Session uint64
	Event   string
}

// Config parameterizes a Store; the zero value selects the defaults.
type Config struct {
	// MaxBytes bounds the store's total memory charge (blocks + rollup
	// buckets). Default 8 MiB.
	MaxBytes int64
	// MaxAge expires samples older than this relative to the series'
	// newest timestamp (and to Sweep's now). Default 15 minutes;
	// negative disables age-based retention.
	MaxAge time.Duration
	// BlockSamples is the sealing threshold per block. Default 512.
	BlockSamples int
	// Rollups lists the pre-computed downsampling widths, finest first.
	// Default {10s, 60s}.
	Rollups []time.Duration
	// Registry, when set, receives the store's self-telemetry: append
	// and query latency histograms plus byte/series/sample gauges. Nil
	// keeps the store entirely uninstrumented (zero overhead).
	Registry *telemetry.Registry
	// Storage, when set, receives durability callbacks: every sealed
	// block (so it can be persisted) and every fully-expired series.
	// Callbacks run outside all store locks, on the goroutine whose
	// append/sweep triggered them. Nil keeps the store RAM-only.
	Storage Storage
}

func (c *Config) fill() {
	if c.MaxBytes <= 0 {
		c.MaxBytes = 8 << 20
	}
	if c.MaxAge == 0 {
		c.MaxAge = 15 * time.Minute
	}
	if c.BlockSamples <= 0 {
		c.BlockSamples = 512
	}
	if c.Rollups == nil {
		c.Rollups = []time.Duration{10 * time.Second, time.Minute}
	}
}

// Stats is a point-in-time view of the store.
type Stats struct {
	Bytes     int64  // current budget charge
	Series    int    // live series count
	Samples   uint64 // samples ever appended
	Evictions uint64 // eviction events (budget + retention)
}

const storeShards = 16

// Store is the embedded time-series database. All methods are safe for
// concurrent use.
type Store struct {
	cfg    Config
	widths []int64 // rollup widths in µs, ascending

	shards [storeShards]storeShard

	bytes     atomic.Int64
	samples   atomic.Uint64
	evictions atomic.Uint64

	// appendLat/queryLat, when non-nil, record per-call latency
	// (appendLat once per Append or AppendBatch row, not per sample).
	appendLat *telemetry.Histogram
	queryLat  *telemetry.Histogram

	// evictMu serializes budget-eviction scans so concurrent appenders
	// don't stampede the same candidate.
	evictMu sync.Mutex

	// sessMu guards sessions, the per-session sorted event-name index.
	// Before it existed, answering "which events does session N have
	// history for" meant taking every shard lock exclusively and
	// sorting — the scan every filterless QUERY paid, and the lock
	// papid's parallel queriers serialized on. Slices are copy-on-write
	// so a reader may keep a returned slice after the lock drops.
	// sessMu is a leaf lock: it is taken (briefly) while a shard lock
	// is held at series creation, and never the other way around.
	sessMu   sync.RWMutex
	sessions map[uint64][]string
}

type storeShard struct {
	mu sync.RWMutex
	m  map[SeriesKey]*series
}

// New builds a Store.
func New(cfg Config) *Store {
	cfg.fill()
	s := &Store{cfg: cfg, sessions: make(map[uint64][]string)}
	s.widths = make([]int64, len(cfg.Rollups))
	for i, d := range cfg.Rollups {
		s.widths[i] = d.Microseconds()
	}
	for i := range s.shards {
		s.shards[i].m = make(map[SeriesKey]*series)
	}
	if reg := cfg.Registry; reg != nil {
		s.appendLat = reg.NewLatencyHistogram(telemetry.Opts{
			Name: "papid_tsdb_append_seconds",
			Help: "History append latency per call (one call covers a whole tick row).",
			Key:  "tsdb/append"})
		s.queryLat = reg.NewLatencyHistogram(telemetry.Opts{
			Name: "papid_tsdb_query_seconds",
			Help: "History query latency per QUERY.",
			Key:  "tsdb/query"})
		reg.NewGaugeFunc(telemetry.Opts{Name: "papid_tsdb_bytes",
			Help: "History store budget charge in bytes."}, func() float64 {
			return float64(s.bytes.Load())
		})
		reg.NewGaugeFunc(telemetry.Opts{Name: "papid_tsdb_series",
			Help: "Live history series."}, func() float64 {
			n := 0
			for i := range s.shards {
				s.shards[i].mu.RLock()
				n += len(s.shards[i].m)
				s.shards[i].mu.RUnlock()
			}
			return float64(n)
		})
		reg.NewCounterFunc(telemetry.Opts{Name: "papid_tsdb_samples_total",
			Help: "Samples ever appended to the history store."}, func() uint64 {
			return s.samples.Load()
		})
		reg.NewCounterFunc(telemetry.Opts{Name: "papid_tsdb_evictions_total",
			Help: "History eviction events (budget and retention)."}, func() uint64 {
			return s.evictions.Load()
		})
	}
	return s
}

func (s *Store) shardFor(key SeriesKey) *storeShard {
	h := key.Session*0x9e3779b97f4a7c15 + 1
	for i := 0; i < len(key.Event); i++ {
		h = (h ^ uint64(key.Event[i])) * 0x100000001b3
	}
	return &s.shards[(h>>32)%storeShards]
}

// Append records one sample (timestamp in µs) for the series.
func (s *Store) Append(session uint64, event string, ts, v int64) {
	if s.appendLat != nil {
		defer func(t0 time.Time) { s.appendLat.Observe(telemetry.Since(t0)) }(time.Now())
	}
	s.appendOne(session, event, ts, v, 0)
}

func (s *Store) appendOne(session uint64, event string, ts, v int64, seq uint64) {
	key := SeriesKey{Session: session, Event: event}
	sh := s.shardFor(key)
	var seals []SealedBlock
	sh.mu.Lock()
	delta, evicted := s.appendLocked(sh, key, ts, v, seq, &seals)
	sh.mu.Unlock()
	s.samples.Add(1)
	if evicted > 0 {
		s.evictions.Add(evicted)
	}
	// Persist before any budget eviction can run: a sealed block must
	// reach the storage layer before the store is allowed to drop it.
	s.fireSeals(seals)
	if s.bytes.Add(delta) > s.cfg.MaxBytes {
		s.evictToBudget()
	}
}

// appendLocked is the per-sample core; the caller holds sh.mu. It
// returns the budget delta and the retention-eviction event count so
// batch callers can fold the atomics once per batch, and collects any
// block this sample sealed into seals — the caller fires the storage
// hook after releasing the lock.
func (s *Store) appendLocked(sh *storeShard, key SeriesKey, ts, v int64, seq uint64, seals *[]SealedBlock) (delta int64, evicted uint64) {
	sr := sh.m[key]
	if sr == nil {
		sr = newSeries(key, s.widths)
		sh.m[key] = sr
		s.indexAdd(key)
	}
	d, sealed := sr.append(ts, v, s.cfg.BlockSamples, seq)
	delta = d
	if sealed != nil {
		*seals = append(*seals, sealedBlockOf(key, sealed, sr.lastSeq))
	}
	if s.cfg.MaxAge > 0 {
		freed, events := sr.evictExpired(ts - s.cfg.MaxAge.Microseconds())
		delta -= freed
		evicted = events
	}
	return delta, evicted
}

// AppendRow records one timestamp's values for several events of one
// session — papid's per-tick shape. It is AppendBatch under its
// historical name.
func (s *Store) AppendRow(session uint64, ts int64, events []string, vals []int64) {
	s.AppendBatch(session, ts, events, vals)
}

// AppendBatch records one timestamp's values for several events of one
// session, taking each touched shard's lock exactly once instead of
// once per (session, event) — papid's tick loop appends every running
// session's whole row through here, so with E events per session the
// lock traffic drops E-fold. The batch is equivalent to E sequential
// Appends at the same timestamp.
func (s *Store) AppendBatch(session uint64, ts int64, events []string, vals []int64) {
	s.AppendBatchSeq(session, ts, events, vals, 0)
}

// AppendBatchSeq is AppendBatch carrying the WAL row sequence number
// of the batch (internal/tsdb/wal assigns it before handing the row
// down). Seal events capture the newest sequence a block covers, which
// is what lets replay skip exactly the WAL rows already persisted
// inside sealed segments. Seq 0 means "no durability layer".
func (s *Store) AppendBatchSeq(session uint64, ts int64, events []string, vals []int64, seq uint64) {
	n := len(events)
	if len(vals) < n {
		n = len(vals)
	}
	if n == 0 {
		return
	}
	if s.appendLat != nil {
		// One observation per batch call, not per sample: the
		// histogram answers "what does a tick row cost", matching how
		// papid calls in here.
		defer func(t0 time.Time) { s.appendLat.Observe(telemetry.Since(t0)) }(time.Now())
	}
	if n > 64 {
		// The grouping bitmap below covers 64 events; a row wider than
		// that (papid sessions hold a handful) degrades gracefully.
		for i := 0; i < n; i++ {
			s.appendOne(session, events[i], ts, vals[i], seq)
		}
		return
	}
	var shards [64]*storeShard
	for i := 0; i < n; i++ {
		shards[i] = s.shardFor(SeriesKey{Session: session, Event: events[i]})
	}
	var delta int64
	var evicted uint64
	var done uint64
	var seals []SealedBlock
	for i := 0; i < n; i++ {
		if done&(1<<i) != 0 {
			continue
		}
		sh := shards[i]
		sh.mu.Lock()
		for j := i; j < n; j++ {
			if done&(1<<j) != 0 || shards[j] != sh {
				continue
			}
			done |= 1 << j
			d, ev := s.appendLocked(sh, SeriesKey{Session: session, Event: events[j]}, ts, vals[j], seq, &seals)
			delta += d
			evicted += ev
		}
		sh.mu.Unlock()
	}
	s.samples.Add(uint64(n))
	if evicted > 0 {
		s.evictions.Add(evicted)
	}
	s.fireSeals(seals)
	if s.bytes.Add(delta) > s.cfg.MaxBytes {
		s.evictToBudget()
	}
}

// indexAdd records a freshly created series in the session event
// index. Copy-on-write: the slice a concurrent sessionEvents reader
// already holds is never mutated.
func (s *Store) indexAdd(key SeriesKey) {
	s.sessMu.Lock()
	names := s.sessions[key.Session]
	if i, found := slices.BinarySearch(names, key.Event); !found {
		grown := make([]string, 0, len(names)+1)
		grown = append(grown, names[:i]...)
		grown = append(grown, key.Event)
		grown = append(grown, names[i:]...)
		s.sessions[key.Session] = grown
	}
	s.sessMu.Unlock()
}

// indexRemove drops fully-expired series from the session event index
// (the counterpart of Sweep's series deletion).
func (s *Store) indexRemove(keys []SeriesKey) {
	s.sessMu.Lock()
	for _, key := range keys {
		names := s.sessions[key.Session]
		i, found := slices.BinarySearch(names, key.Event)
		if !found {
			continue
		}
		if len(names) == 1 {
			delete(s.sessions, key.Session)
			continue
		}
		pruned := make([]string, 0, len(names)-1)
		pruned = append(pruned, names[:i]...)
		pruned = append(pruned, names[i+1:]...)
		s.sessions[key.Session] = pruned
	}
	s.sessMu.Unlock()
}

// evictToBudget drops globally-oldest sealed blocks until the store is
// back under MaxBytes. If no sealed block exists anywhere (pathological
// budgets), the oldest series' active block is sealed and dropped so
// the loop always terminates.
func (s *Store) evictToBudget() {
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	for s.bytes.Load() > s.cfg.MaxBytes {
		var (
			victimShard *storeShard
			victimKey   SeriesKey
			oldest      int64
			found       bool
		)
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.RLock()
			for key, sr := range sh.m {
				if ts, ok := sr.oldestSealedTS(); ok && (!found || ts < oldest) {
					victimShard, victimKey, oldest, found = sh, key, ts, true
				}
			}
			sh.mu.RUnlock()
		}
		if !found {
			if !s.sealOldestActive() {
				return // nothing evictable; give up rather than spin
			}
			continue
		}
		victimShard.mu.Lock()
		if sr := victimShard.m[victimKey]; sr != nil {
			if freed := sr.evictOldestSealed(); freed > 0 {
				s.bytes.Add(-freed)
				s.evictions.Add(1)
			}
		}
		victimShard.mu.Unlock()
	}
}

// sealOldestActive force-seals the active block of the series with the
// oldest data so evictToBudget has a victim. Reports whether anything
// was sealed.
func (s *Store) sealOldestActive() bool {
	var (
		victimShard *storeShard
		victimKey   SeriesKey
		oldest      int64
		found       bool
	)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for key, sr := range sh.m {
			if sr.active != nil && sr.active.n > 0 && (!found || sr.active.minTS < oldest) {
				victimShard, victimKey, oldest, found = sh, key, sr.active.minTS, true
			}
		}
		sh.mu.RUnlock()
	}
	if !found {
		return false
	}
	victimShard.mu.Lock()
	sr := victimShard.m[victimKey]
	if sr == nil || sr.active == nil || sr.active.n == 0 {
		victimShard.mu.Unlock()
		return false
	}
	sealed := sr.active
	sr.sealed = append(sr.sealed, sealed)
	sr.active = nil
	sb := sealedBlockOf(victimKey, sealed, sr.lastSeq)
	victimShard.mu.Unlock()
	s.fireSeals([]SealedBlock{sb})
	return true
}

// Sweep applies age-based retention across every series relative to
// now (µs). papid calls this from its tick loop so series of finished
// sessions still expire. It reports the number of event-series blocks
// evicted, so the tick's trace can annotate what the sweep actually
// did.
func (s *Store) Sweep(now int64) (evicted int64) {
	if s.cfg.MaxAge <= 0 {
		return 0
	}
	cutoff := now - s.cfg.MaxAge.Microseconds()
	for i := range s.shards {
		sh := &s.shards[i]
		var seals []SealedBlock
		var dropped []SeriesKey
		sh.mu.Lock()
		for key, sr := range sh.m {
			if sr.active != nil && sr.active.maxTS < cutoff {
				// A finished session stops appending, so its last
				// partial block would otherwise never seal or expire.
				sealed := sr.active
				sr.sealed = append(sr.sealed, sealed)
				sr.active = nil
				seals = append(seals, sealedBlockOf(key, sealed, sr.lastSeq))
			}
			freed, events := sr.evictExpired(cutoff)
			s.bytes.Add(-freed)
			s.evictions.Add(events)
			evicted += int64(events)
			if sr.samples > 0 && sr.lastTS < cutoff && sr.active == nil &&
				len(sr.sealed) == 0 {
				// Fully expired: drop the series itself.
				s.bytes.Add(-sr.bytes())
				delete(sh.m, key)
				dropped = append(dropped, key)
			}
		}
		sh.mu.Unlock()
		s.fireSeals(seals)
		if len(dropped) > 0 {
			s.indexRemove(dropped)
			if s.cfg.Storage != nil {
				s.cfg.Storage.OnDropSeries(dropped)
			}
		}
	}
	return evicted
}

// Stats returns current counters.
func (s *Store) Stats() Stats {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		n += len(s.shards[i].m)
		s.shards[i].mu.RUnlock()
	}
	return Stats{
		Bytes:     s.bytes.Load(),
		Series:    n,
		Samples:   s.samples.Load(),
		Evictions: s.evictions.Load(),
	}
}
