package tsdb

import (
	"slices"
	"time"

	"repro/internal/telemetry"
)

// Query selects a downsampled range of one session's series.
//
// Window semantics: the output is a sequence of buckets on the
// absolute step grid (Start is a multiple of Step). Every window W
// with W+Step > From and W < To is eligible, and an eligible window
// aggregates ALL raw samples whose timestamp floors into it — i.e.
// From/To select windows, and a window is always aggregated whole.
// Grid alignment is what lets a window be answered exactly from
// pre-computed rollup buckets whose width divides Step.
type Query struct {
	Events []string // event filter; nil selects every series of the session
	From   int64    // µs, inclusive (window-aligned down)
	To     int64    // µs, exclusive
	Step   int64    // output window width in µs; 0 returns raw samples
}

// Series is one event's query result.
type Series struct {
	Event   string   `json:"event"`
	Width   int64    `json:"width"`   // source resolution used: 0 = raw decode
	Buckets []Bucket `json:"buckets"` // time order; empty windows omitted
}

// Valid reports whether q describes a well-formed window: From must
// precede To and Step must be non-negative (0 selects raw samples).
// Query refuses invalid windows, and papid's QUERY op turns them into
// wire ERROR frames rather than empty replies a client could mistake
// for "no data".
func (q Query) Valid() bool {
	return q.To > q.From && q.Step >= 0
}

// Query answers q against one session's series. Results are sorted by
// event name; windows with no samples are omitted. An invalid q (see
// Query.Valid) yields nil without scanning.
func (s *Store) Query(session uint64, q Query) []Series {
	if !q.Valid() {
		return nil
	}
	if s.queryLat != nil {
		defer func(t0 time.Time) { s.queryLat.Observe(telemetry.Since(t0)) }(time.Now())
	}
	events := q.Events
	if len(events) == 0 {
		events = s.sessionEvents(session)
	}
	out := make([]Series, 0, len(events))
	for _, ev := range events {
		if sr, ok := s.querySeries(SeriesKey{Session: session, Event: ev}, q); ok {
			out = append(out, sr)
		}
	}
	return out
}

// Events lists the event names the store holds history for under the
// session, sorted. papid's derive-mode QUERY uses it to reject — with
// a wire ERROR naming the gap — groups whose formulas reference events
// the session never recorded, instead of returning an empty reply the
// client could mistake for "no data".
func (s *Store) Events(session uint64) []string {
	return slices.Clone(s.sessionEvents(session))
}

// sessionEvents lists the session's series names, sorted, straight
// from the copy-on-write session index — one RLock, no shard locks, no
// sort. This used to scan all shards under exclusive locks per query,
// which is what made papid's filterless QUERY path *slower* with more
// concurrent queriers. The returned slice is shared and must not be
// mutated; Events clones for external callers.
func (s *Store) sessionEvents(session uint64) []string {
	s.sessMu.RLock()
	names := s.sessions[session]
	s.sessMu.RUnlock()
	return names
}

// pickWidth chooses the coarsest rollup width that divides step; 0
// means decode raw samples.
func (s *Store) pickWidth(step int64) int64 {
	var best int64
	for _, w := range s.widths {
		if w <= step && step%w == 0 && w > best {
			best = w
		}
	}
	return best
}

func (s *Store) querySeries(key SeriesKey, q Query) (Series, bool) {
	if !q.Valid() {
		return Series{}, false
	}
	sh := s.shardFor(key)

	if q.Step <= 0 {
		// Raw samples, no windowing.
		sealed, active, ok := s.snapshotBlocks(sh, key, q.From, q.To)
		if !ok {
			return Series{}, false
		}
		bks := rawBuckets(sealed, active, q.From, q.To)
		if len(bks) == 0 {
			return Series{}, false
		}
		return Series{Event: key.Event, Buckets: bks}, true
	}

	effFrom := q.From - mod(q.From, q.Step)           // align the first window down
	effTo := q.To + (q.Step-mod(q.To, q.Step))%q.Step // align the last window up:
	// a window starting before To is aggregated whole, even past To
	if effTo < q.To { // alignment overflowed (To near MaxInt64)
		effTo = 1<<63 - 1
	}
	width := s.pickWidth(q.Step)

	var src []Bucket
	if width > 0 {
		sh.mu.RLock()
		sr := sh.m[key]
		if sr == nil {
			sh.mu.RUnlock()
			return Series{}, false
		}
		for i := range sr.levels {
			if sr.levels[i].width == width {
				src = sr.levels[i].snapshotRange(effFrom, effTo)
				break
			}
		}
		sh.mu.RUnlock()
	} else {
		sealed, active, ok := s.snapshotBlocks(sh, key, effFrom, effTo)
		if !ok {
			return Series{}, false
		}
		src = rawBuckets(sealed, active, effFrom, effTo)
	}
	if len(src) == 0 {
		return Series{}, false
	}

	// Fold grid-aligned source buckets into step windows. Source
	// buckets arrive in time order and each lies wholly inside one
	// window, so this is a single merge pass.
	var out []Bucket
	for _, bk := range src {
		w := bk.Start - mod(bk.Start, q.Step)
		if w < effFrom || w >= q.To {
			continue
		}
		if n := len(out); n > 0 && out[n-1].Start == w {
			out[n-1].mergeBucket(bk)
		} else {
			win := Bucket{Start: w}
			win.mergeBucket(bk)
			out = append(out, win)
		}
	}
	if len(out) == 0 {
		return Series{}, false
	}
	return Series{Event: key.Event, Width: width, Buckets: out}, true
}

// snapshotBlocks captures, under the shard lock, immutable refs to the
// sealed blocks overlapping [from, to) plus a copy of the active block
// — decoding then happens lock-free.
func (s *Store) snapshotBlocks(sh *storeShard, key SeriesKey, from, to int64) (sealed []*block, active *block, ok bool) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	sr := sh.m[key]
	if sr == nil {
		return nil, nil, false
	}
	for _, b := range sr.sealed {
		if b.maxTS >= from && b.minTS < to {
			sealed = append(sealed, b)
		}
	}
	if a := sr.active; a != nil && a.n > 0 && a.maxTS >= from && a.minTS < to {
		active = &block{
			buf:   append([]byte(nil), a.buf...),
			n:     a.n,
			minTS: a.minTS,
			maxTS: a.maxTS,
		}
	}
	return sealed, active, true
}

// mod is a floor modulo for window alignment that behaves for negative
// timestamps too.
func mod(v, m int64) int64 {
	r := v % m
	if r < 0 {
		r += m
	}
	return r
}
