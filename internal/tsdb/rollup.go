package tsdb

// Bucket is one pre-aggregated window of a series: the min/max/sum/
// count of the raw samples whose timestamps fall in
// [Start, Start+width), plus the last sample (cumulative counters are
// monotone, so Last is what rate computations want). Buckets are
// aligned to the absolute grid — Start is always a multiple of the
// level width — so coarser steps that are multiples of the width
// aggregate buckets exactly, with no partial overlap.
type Bucket struct {
	Start int64  `json:"start"` // window start, series time units (µs)
	Count uint64 `json:"count"`
	Min   int64  `json:"min"`
	Max   int64  `json:"max"`
	Sum   int64  `json:"sum"`
	Last  int64  `json:"last"`
}

// merge folds a raw sample into the bucket.
func (bk *Bucket) merge(v int64) {
	if bk.Count == 0 {
		bk.Min, bk.Max = v, v
	} else {
		if v < bk.Min {
			bk.Min = v
		}
		if v > bk.Max {
			bk.Max = v
		}
	}
	bk.Sum += v
	bk.Last = v
	bk.Count++
}

// mergeBucket folds a finer-grained bucket into a coarser one; callers
// guarantee other arrives in time order, so Last is simply overwritten.
func (bk *Bucket) mergeBucket(other Bucket) {
	if bk.Count == 0 {
		bk.Min, bk.Max = other.Min, other.Max
	} else {
		if other.Min < bk.Min {
			bk.Min = other.Min
		}
		if other.Max > bk.Max {
			bk.Max = other.Max
		}
	}
	bk.Sum += other.Sum
	bk.Last = other.Last
	bk.Count += other.Count
}

const bucketBytes = 48 // sizeof(Bucket), charged against the budget

// rollupLevel maintains one pre-computed downsampling resolution for a
// series: sealed buckets in time order plus the in-progress current
// bucket. Appends are O(1); a range query copies only the buckets it
// returns.
type rollupLevel struct {
	width   int64 // bucket width in series time units (µs)
	buckets []Bucket
	cur     Bucket
	curSet  bool
}

// append folds one raw sample into the level, sealing the current
// bucket when the sample crosses into a new window.
func (rl *rollupLevel) append(ts, v int64) {
	start := ts - ts%rl.width
	if rl.curSet && start != rl.cur.Start {
		rl.buckets = append(rl.buckets, rl.cur)
		rl.cur = Bucket{}
		rl.curSet = false
	}
	if !rl.curSet {
		rl.cur = Bucket{Start: start}
		rl.curSet = true
	}
	rl.cur.merge(v)
}

// install pre-populates the level with persisted buckets (replay of a
// compacted rollup segment). Buckets arrive in time order and strictly
// precede any raw sample folded afterwards, except that the newest
// installed bucket may share its window with samples still to come —
// so it becomes the in-progress bucket, and a boundary window split
// across a compaction edge reassembles exactly. A bucket landing on
// the current window merges (two compactions may split one window).
func (rl *rollupLevel) install(buckets []Bucket) {
	for _, bk := range buckets {
		switch {
		case rl.curSet && bk.Start == rl.cur.Start:
			rl.cur.mergeBucket(bk)
		case rl.curSet && bk.Start > rl.cur.Start:
			rl.buckets = append(rl.buckets, rl.cur)
			rl.cur = bk
		case rl.curSet:
			// Out of order — persisted state predates the current
			// window. Drop rather than corrupt the time order.
		default:
			rl.cur, rl.curSet = bk, true
		}
	}
}

// snapshotRange copies the level's buckets overlapping [from, to),
// including the in-progress one.
func (rl *rollupLevel) snapshotRange(from, to int64) []Bucket {
	// Binary search would work; levels hold few buckets relative to raw
	// samples, and the scan is branch-predictable, so keep it simple.
	var out []Bucket
	for _, bk := range rl.buckets {
		if bk.Start+rl.width <= from {
			continue
		}
		if bk.Start >= to {
			break
		}
		out = append(out, bk)
	}
	if rl.curSet && rl.cur.Start+rl.width > from && rl.cur.Start < to {
		out = append(out, rl.cur)
	}
	return out
}

// bytes is the level's budget charge.
func (rl *rollupLevel) bytes() int64 {
	return int64(cap(rl.buckets)+1) * bucketBytes
}

// evictBefore drops sealed buckets whose window ends at or before
// cutoff, returning how many were dropped.
func (rl *rollupLevel) evictBefore(cutoff int64) int {
	i := 0
	for i < len(rl.buckets) && rl.buckets[i].Start+rl.width <= cutoff {
		i++
	}
	if i == 0 {
		return 0
	}
	rl.buckets = append(rl.buckets[:0:0], rl.buckets[i:]...)
	return i
}
