package derive

import (
	"strings"
	"testing"
)

// bindOn compiles and binds src against a layout built from the deltas
// table, returning the bound program and the delta slice in layout
// order.
func bindOn(t testing.TB, src string, table map[string]float64) (Bound, []float64) {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	index := make(map[string]int, len(table))
	deltas := make([]float64, 0, len(table))
	for name, v := range table {
		index[name] = len(deltas)
		deltas = append(deltas, v)
	}
	b, err := e.Bind(index)
	if err != nil {
		t.Fatal(err)
	}
	return b, deltas
}

func TestParseEval(t *testing.T) {
	ins := map[string]float64{"A": 100, "B": 40, "C": 0}
	cases := []struct {
		src  string
		dt   float64
		want float64
	}{
		{"A", 1, 100},
		{"A + B", 1, 140},
		{"A - B", 1, 60},
		{"A * B", 1, 4000},
		{"A / B", 1, 2.5},
		{"-A", 1, -100},
		{"A + B * 2", 1, 180},       // precedence
		{"(A + B) * 2", 1, 280},     // grouping
		{"A - B - B", 1, 20},        // left association
		{"A / B / 5", 1, 0.5},       // left association
		{"2 * -B", 1, -80},          // unary in term
		{"1e2 + 0.5", 1, 100.5},     // literals
		{"A / C", 1, 0},             // guarded division
		{"B / (A - 100)", 1, 0},     // guarded division, computed zero
		{"rate(A)", 4, 25},          // per-second
		{"rate(A)", 0, 0},           // rate needs an interval
		{"rate(A) / 1e6", 2, 50e-6}, // scaled rate
		{"A / B + C / A", 1, 2.5},   // zero-valued event still binds
		{" A\t/  B ", 1, 2.5},       // whitespace
		{"A*1000/B", 1, 2500},       // per-kilo idiom
		{"-(A - B) / 2", 1, -30},    // unary over group
		{"A - -B", 1, 140},          // double negative
	}
	for _, c := range cases {
		b, deltas := bindOn(t, c.src, ins)
		if got := b.Eval(deltas, c.dt); got != c.want {
			t.Errorf("%q (dt=%g) = %g, want %g", c.src, c.dt, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"A +",
		"+ A",
		"(A",
		"A)",
		"A B",
		"A // B",
		"rate()",
		"rate(A + B)", // rate takes a bare event
		"rate(A",
		"foo(A)", // unknown function
		"1.2.3",
		"A & B",
		// Right-nested addition grows the evaluation stack one slot per
		// level (parens alone do not — RPN flattens them).
		strings.Repeat("1+(", 20) + "1" + strings.Repeat(")", 20),
	}
	if _, err := Parse(strings.Repeat("(", 40) + "A" + strings.Repeat(")", 40)); err != nil {
		t.Errorf("flat parenthesizing rejected: %v", err)
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestExprEvents(t *testing.T) {
	e, err := Parse("A / B + rate(A) + C")
	if err != nil {
		t.Fatal(err)
	}
	got := e.Events()
	want := []string{"A", "B", "C"} // deduplicated, first-use order
	if len(got) != len(want) {
		t.Fatalf("Events() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Events() = %v, want %v", got, want)
		}
	}
	if !e.UsesRate() {
		t.Error("UsesRate() = false")
	}
	if e2 := MustParse("A / B"); e2.UsesRate() {
		t.Error("A/B UsesRate() = true")
	}
}

func TestBindMissingEvent(t *testing.T) {
	e := MustParse("A / B")
	if _, err := e.Bind(map[string]int{"A": 0}); err == nil {
		t.Fatal("bind with missing event accepted")
	}
	var b Bound
	if b.Valid() {
		t.Error("zero Bound claims valid")
	}
}

func TestEvalNonFinite(t *testing.T) {
	b, deltas := bindOn(t, "A * 1e308 * 1e308", map[string]float64{"A": 1})
	if got := b.Eval(deltas, 1); got != 0 {
		t.Errorf("overflowing product = %g, want clamped 0", got)
	}
}

func TestEvalAllocFree(t *testing.T) {
	b, deltas := bindOn(t, "(A - B) / (A + B) + rate(A) / 1e6",
		map[string]float64{"A": 1e9, "B": 3e8})
	var sink float64
	allocs := testing.AllocsPerRun(1000, func() {
		sink = b.Eval(deltas, 0.05)
	})
	if allocs != 0 {
		t.Errorf("Eval allocates %.1f objects/op, want 0", allocs)
	}
	_ = sink
}

// BenchmarkDeriveEval measures one compiled-formula evaluation — the
// per-metric cost papid pays per session per tick. Acceptance wants
// sub-microsecond per *group*; a group is a handful of these.
func BenchmarkDeriveEval(b *testing.B) {
	bd, deltas := bindOn(b, "(A - B) / (A + B) + rate(A) / 1e6",
		map[string]float64{"A": 1e9, "B": 3e8})
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = bd.Eval(deltas, 0.05)
	}
	_ = sink
}
