package derive

import (
	"sort"

	"repro/internal/tsdb"
)

// History evaluation: the same formulas, answered over tsdb QUERY
// results instead of live ticks — "what was the IPC over the last
// minute", not just "what is it now".
//
// The stored samples are *cumulative* counter values (EventSet.Read
// semantics), which dictates the bucket field choice: the delta over
// [t0, t1] is Last(t1) − Last(t0). Bucket Sum would re-add every
// intermediate cumulative reading (off by orders of magnitude) and
// Sum/Count is the mean cumulative level, not a delta — both are
// correct aggregates for gauge-like series but wrong for counters.
// Using Last makes raw and rollup evaluation agree exactly at shared
// step boundaries: a rollup bucket's Last is by construction the raw
// sample at the last raw timestamp inside the window, so the
// bucket-to-bucket delta telescopes to the sum of the raw deltas
// between the same anchors. rollup_test.go brute-force checks this
// equivalence, PR 2-style.
//
// Rate terms divide by the anchor spacing (bucket Start difference)
// in seconds. For raw buckets Start is the exact sample timestamp;
// for rollups it is the grid-aligned window start, so a rate over
// rollups is the window-averaged rate — the documented, tested
// semantics.

// Point is one evaluated value of a derived metric, anchored at the
// end of the interval it summarizes.
type Point struct {
	Start int64   // µs, timestamp of the closing sample/bucket
	Value float64 //
}

// HistorySeries is one derived metric evaluated over a query window.
type HistorySeries struct {
	Metric string
	Unit   string
	Points []Point
}

// EvalHistory evaluates the groups' metrics over one session's QUERY
// result. Evaluation anchors are the timestamps where *every* event a
// group needs has a bucket — events sampled together on the tick grid
// intersect fully; a series missing an event entirely contributes no
// points for the groups that need it. Intervals where any counter
// decreases (a STOP/START reset) are skipped rather than emitted as
// negative garbage.
func EvalHistory(groups []*Group, series []tsdb.Series) []HistorySeries {
	byEvent := make(map[string]map[int64]int64, len(series)) // event → start → Last
	for _, s := range series {
		m := make(map[int64]int64, len(s.Buckets))
		for _, bk := range s.Buckets {
			m[bk.Start] = bk.Last
		}
		byEvent[s.Event] = m
	}
	var out []HistorySeries
	for _, g := range groups {
		out = append(out, evalGroupHistory(g, byEvent)...)
	}
	return out
}

func evalGroupHistory(g *Group, byEvent map[string]map[int64]int64) []HistorySeries {
	needed := g.events
	maps := make([]map[int64]int64, len(needed))
	index := make(map[string]int, len(needed))
	for i, ev := range needed {
		m, ok := byEvent[ev]
		if !ok {
			return nil // server-side validation rejects this earlier
		}
		maps[i] = m
		index[ev] = i
	}
	// Anchor timestamps: starts present in every needed event's series.
	var starts []int64
	for ts := range maps[0] {
		ok := true
		for _, m := range maps[1:] {
			if _, hit := m[ts]; !hit {
				ok = false
				break
			}
		}
		if ok {
			starts = append(starts, ts)
		}
	}
	if len(starts) < 2 {
		return nil // one anchor gives no interval
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	bounds := make([]Bound, len(g.Metrics))
	for i := range g.Metrics {
		b, err := g.Metrics[i].expr.Bind(index)
		if err != nil {
			return nil // group events ⊆ needed by construction
		}
		bounds[i] = b
	}
	out := make([]HistorySeries, len(g.Metrics))
	for i := range g.Metrics {
		out[i] = HistorySeries{
			Metric: g.Metrics[i].Name,
			Unit:   g.Metrics[i].Unit,
			Points: make([]Point, 0, len(starts)-1),
		}
	}
	deltas := make([]float64, len(needed))
	for k := 1; k < len(starts); k++ {
		t0, t1 := starts[k-1], starts[k]
		reset := false
		for i, m := range maps {
			d := m[t1] - m[t0]
			if d < 0 {
				reset = true
				break
			}
			deltas[i] = float64(d)
		}
		if reset {
			continue
		}
		dtSec := float64(t1-t0) / 1e6
		for i, b := range bounds {
			out[i].Points = append(out[i].Points, Point{Start: t1, Value: b.Eval(deltas, dtSec)})
		}
	}
	return out
}
