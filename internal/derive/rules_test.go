package derive

import "testing"

func TestParseRule(t *testing.T) {
	cases := []struct {
		spec string
		want Rule
	}{
		{"ipc<0.5:3", Rule{Metric: "ipc", Above: false, Bound: 0.5, N: 3}},
		{"cpi>4", Rule{Metric: "cpi", Above: true, Bound: 4, N: DefaultRuleN}},
		{" mem_bw_mbs>1e3:1 ", Rule{Metric: "mem_bw_mbs", Above: true, Bound: 1000, N: 1}},
		{"l2_miss_ratio>0.9:10", Rule{Metric: "l2_miss_ratio", Above: true, Bound: 0.9, N: 10}},
	}
	for _, c := range cases {
		got, err := ParseRule(c.spec)
		if err != nil {
			t.Errorf("ParseRule(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseRule(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
	for _, bad := range []string{"", "ipc", "<0.5", "ipc<", "ipc<x", "ipc<0.5:0", "ipc<0.5:x", "ipc=0.5"} {
		if _, err := ParseRule(bad); err == nil {
			t.Errorf("ParseRule(%q) accepted", bad)
		}
	}
}

func TestParseRules(t *testing.T) {
	rs, err := ParseRules("ipc<0.5:3,cpi>4")
	if err != nil || len(rs) != 2 {
		t.Fatalf("ParseRules: %v, %d rules", err, len(rs))
	}
	if rs[0].String() != "ipc<0.5:3" || rs[1].String() != "cpi>4:3" {
		t.Errorf("round trip: %v / %v", rs[0], rs[1])
	}
	if rs, err := ParseRules(""); err != nil || rs != nil {
		t.Errorf("empty spec: %v, %v", rs, err)
	}
	if _, err := ParseRules("ipc<0.5,,cpi>4"); err == nil {
		t.Error("empty element accepted")
	}
}

// A rule fires once when the breach streak reaches N, stays latched
// through a sustained breach, and re-arms after one in-bounds value.
func TestRuleStreakLatch(t *testing.T) {
	r := Rule{Metric: "ipc", Above: false, Bound: 0.5, N: 3}
	var st ruleState
	seq := []struct {
		v    float64
		fire bool
	}{
		{0.4, false}, // streak 1
		{0.9, false}, // in bounds: reset
		{0.4, false}, // streak 1
		{0.3, false}, // streak 2
		{0.2, true},  // streak 3: fire
		{0.1, false}, // latched
		{0.1, false}, // latched
		{0.8, false}, // recover: re-arm
		{0.4, false},
		{0.4, false},
		{0.4, true}, // second alert
	}
	for i, s := range seq {
		if got := st.observe(r, s.v); got != s.fire {
			t.Fatalf("step %d (v=%g): fire=%v, want %v", i, s.v, got, s.fire)
		}
	}
}

func TestRuleAbove(t *testing.T) {
	r := Rule{Metric: "cpi", Above: true, Bound: 4, N: 1}
	var st ruleState
	if st.observe(r, 3.9) {
		t.Error("fired in bounds")
	}
	if !st.observe(r, 4.1) {
		t.Error("did not fire above bound")
	}
	if r.breached(4) {
		t.Error("bound itself counts as breach; want strict >")
	}
}
