package derive

// Röhl et al.'s verdict on raw counters is blunt: an event that has
// not been checked against a ground-truth workload must not feed a
// derived metric, because a plausible-looking ratio built on a
// miscounting event is worse than no number at all. This file is the
// certification ledger for that policy. An event appears here only
// when the validation campaign in validation_test.go (and EXPERIMENTS.md)
// asserts its counts against the analytic expectations of the
// `workload` kernels on the simulated substrates. Registry.Register
// refuses any group whose formulas reference an uncertified event —
// at registration time, never at tick time.
var validatedEvents = map[string]bool{
	// Certified directly against workload.Expected (exact on the
	// deterministic simulator): instruction, FP, load/store and branch
	// architectural counts.
	"PAPI_TOT_CYC": true,
	"PAPI_TOT_INS": true,
	"PAPI_LD_INS":  true,
	"PAPI_SR_INS":  true,
	"PAPI_LST_INS": true,
	"PAPI_FP_INS":  true,
	"PAPI_FP_OPS":  true,
	"PAPI_FMA_INS": true,
	"PAPI_FDV_INS": true,
	"PAPI_BR_INS":  true,
	"PAPI_BR_TKN":  true,
	"PAPI_BR_MSP":  true,
	// Certified behaviourally (ordering/bounds, not exact counts): the
	// cache-hierarchy events, checked via the blocked-vs-naive matmul
	// and hot/cold working-set contrasts.
	"PAPI_L1_DCA":  true,
	"PAPI_L1_DCM":  true,
	"PAPI_L1_ICM":  true,
	"PAPI_L2_TCA":  true,
	"PAPI_L2_TCM":  true,
	"PAPI_RES_STL": true,

	// PAPI_TLB_DM is deliberately absent: the campaign has no
	// ground-truth model for the simulated TLB yet, so groups that
	// reference it are rejected — the negative-path registration test
	// depends on exactly this gap.
}

// EventValidated reports whether the validation campaign has certified
// the named event for use in derived metrics.
func EventValidated(name string) bool { return validatedEvents[name] }

// ValidatedEvents lists the certified event names (copy, unsorted).
func ValidatedEvents() []string {
	out := make([]string, 0, len(validatedEvents))
	for n := range validatedEvents {
		out = append(out, n)
	}
	return out
}
