package derive

import (
	"io"
	"log/slog"
	"testing"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

var ipcLayout = []string{"PAPI_TOT_INS", "PAPI_TOT_CYC"}

// tickIPC drives one Tick with cumulative (ins, cyc) at ts and returns
// the emitted values, nil if nothing was emitted.
func tickIPC(e *Engine, session uint64, ins, cyc, tsUsec int64) (names []string, vals []float64) {
	e.Tick(session, ipcLayout, []int64{ins, cyc}, tsUsec, []string{"ipc"},
		func(m, u []string, v []float64) {
			names = append([]string(nil), m...)
			vals = append([]float64(nil), v...)
		})
	return
}

func TestEngineTickDeltas(t *testing.T) {
	e := NewEngine(nil, nil, quietLogger(), nil)
	if n, _ := tickIPC(e, 1, 1000, 2000, 0); n != nil {
		t.Fatal("first tick emitted; it should only prime the baseline")
	}
	names, vals := tickIPC(e, 1, 3000, 6000, 1_000_000)
	if names == nil {
		t.Fatal("second tick emitted nothing")
	}
	// deltas: ins 2000, cyc 4000, dt 1s → ipc 0.5, mips 0.002
	got := map[string]float64{}
	for i, n := range names {
		got[n] = vals[i]
	}
	if got["ipc"] != 0.5 {
		t.Errorf("ipc = %g, want 0.5 (cumulative deltas, not raw values)", got["ipc"])
	}
	if got["mips"] != 0.002 {
		t.Errorf("mips = %g, want 0.002", got["mips"])
	}
	if e.Evals() != 1 {
		t.Errorf("Evals() = %d, want 1", e.Evals())
	}
}

func TestEngineCounterReset(t *testing.T) {
	e := NewEngine(nil, nil, quietLogger(), nil)
	tickIPC(e, 1, 1000, 2000, 0)
	tickIPC(e, 1, 2000, 4000, 1e6)
	// STOP/START reset: counters drop. No emission, no garbage.
	if n, _ := tickIPC(e, 1, 50, 100, 2e6); n != nil {
		t.Fatal("emitted across a counter reset")
	}
	// Next tick deltas are measured from the post-reset values.
	names, vals := tickIPC(e, 1, 150, 300, 3e6)
	if names == nil || vals[0] != 0.5 {
		t.Fatalf("post-reset tick: %v %v, want ipc 0.5", names, vals)
	}
}

func TestEngineLayoutChange(t *testing.T) {
	e := NewEngine(nil, nil, quietLogger(), nil)
	tickIPC(e, 1, 1000, 2000, 0)
	// Session re-created with a wider layout: deltas against the old
	// baseline are meaningless, so the first tick only re-primes.
	wide := []string{"PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_L2_TCA", "PAPI_L2_TCM"}
	emitted := false
	e.Tick(1, wide, []int64{100, 200, 50, 5}, 1e6, []string{"ipc", "l2miss"},
		func(m, u []string, v []float64) { emitted = true })
	if emitted {
		t.Fatal("emitted on first tick after layout change")
	}
	var got map[string]float64
	e.Tick(1, wide, []int64{1100, 2200, 150, 25}, 2e6, []string{"ipc", "l2miss"},
		func(m, u []string, v []float64) {
			got = map[string]float64{}
			for i, n := range m {
				got[n] = v[i]
			}
		})
	if got == nil {
		t.Fatal("no emission after re-prime")
	}
	if got["ipc"] != 2.0 { // ins 2000 / cyc 1000 — note swapped layout order
		t.Errorf("ipc = %g, want 2 (layout order must come from the event list)", got["ipc"])
	}
	if got["l2_miss_ratio"] != 0.2 { // 20 misses / 100 accesses
		t.Errorf("l2_miss_ratio = %g, want 0.2", got["l2_miss_ratio"])
	}
}

func TestEngineUnknownGroup(t *testing.T) {
	e := NewEngine(nil, nil, quietLogger(), nil)
	called := false
	e.Tick(1, ipcLayout, []int64{1, 2}, 0, []string{"nonesuch"},
		func(m, u []string, v []float64) { called = true })
	e.Tick(1, ipcLayout, []int64{2, 4}, 1e6, []string{"nonesuch"},
		func(m, u []string, v []float64) { called = true })
	if called {
		t.Fatal("unknown group evaluated")
	}
	if e.SessionCount() != 0 {
		t.Fatal("failed binding left session state behind")
	}
}

func TestEngineRuleAlerts(t *testing.T) {
	rules, err := ParseRules("ipc<0.5:2")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(nil, rules, quietLogger(), nil)
	ins, cyc := int64(0), int64(0)
	step := func(dins, dcyc int64, ts int64) {
		ins += dins
		cyc += dcyc
		tickIPC(e, 7, ins, cyc, ts)
	}
	step(1000, 1000, 0)   // prime
	step(1000, 1000, 1e6) // ipc 1.0: in bounds
	if e.Alerts() != 0 {
		t.Fatalf("alerts = %d before any breach", e.Alerts())
	}
	step(100, 1000, 2e6) // ipc 0.1: streak 1
	step(100, 1000, 3e6) // streak 2: fire
	if e.Alerts() != 1 {
		t.Fatalf("alerts = %d after 2-breach streak, want 1", e.Alerts())
	}
	step(100, 1000, 4e6) // still breached: latched
	step(100, 1000, 5e6)
	if e.Alerts() != 1 {
		t.Fatalf("alerts = %d while latched, want 1", e.Alerts())
	}
	step(2000, 1000, 6e6) // ipc 2.0: re-arm
	step(100, 1000, 7e6)  // streak 1
	step(100, 1000, 8e6)  // streak 2: second alert
	if e.Alerts() != 2 {
		t.Fatalf("alerts = %d after recovery and second streak, want 2", e.Alerts())
	}
}

func TestEngineCloseSession(t *testing.T) {
	e := NewEngine(nil, nil, quietLogger(), nil)
	tickIPC(e, 1, 1, 2, 0)
	tickIPC(e, 2, 1, 2, 0)
	if e.SessionCount() != 2 {
		t.Fatalf("SessionCount = %d", e.SessionCount())
	}
	e.CloseSession(1)
	if e.SessionCount() != 1 {
		t.Fatalf("SessionCount after close = %d", e.SessionCount())
	}
	// Closing wipes the baseline: the next tick primes again.
	if n, _ := tickIPC(e, 1, 10, 20, 5e6); n != nil {
		t.Fatal("closed session kept its delta baseline")
	}
}

// Steady-state Tick must not allocate: bindings, scratch slices and
// rule state are all built on the first tick and reused.
func TestEngineTickAllocFree(t *testing.T) {
	e := NewEngine(nil, nil, quietLogger(), nil)
	groups := []string{"ipc", "l2miss"}
	layout := []string{"PAPI_TOT_INS", "PAPI_TOT_CYC", "PAPI_L2_TCA", "PAPI_L2_TCM"}
	vals := []int64{0, 0, 0, 0}
	ts := int64(0)
	emit := func(m, u []string, v []float64) {}
	tick := func() {
		for i := range vals {
			vals[i] += int64(1000 + i)
		}
		ts += 50_000
		e.Tick(9, layout, vals, ts, groups, emit)
	}
	tick() // prime + bind
	tick()
	allocs := testing.AllocsPerRun(500, tick)
	if allocs != 0 {
		t.Errorf("steady-state Tick allocates %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkEngineTick(b *testing.B) {
	e := NewEngine(nil, nil, quietLogger(), nil)
	groups := []string{"ipc", "cpi", "l1miss", "l2miss", "brmiss", "flops", "membw"}
	layout := []string{"PAPI_TOT_INS", "PAPI_TOT_CYC", "PAPI_RES_STL",
		"PAPI_L1_DCA", "PAPI_L1_DCM", "PAPI_L2_TCA", "PAPI_L2_TCM",
		"PAPI_BR_INS", "PAPI_BR_MSP", "PAPI_FP_OPS"}
	vals := make([]int64, len(layout))
	ts := int64(0)
	emit := func(m, u []string, v []float64) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range vals {
			vals[j] += int64(1000 + j)
		}
		ts += 50_000
		e.Tick(1, layout, vals, ts, groups, emit)
	}
}
