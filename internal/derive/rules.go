package derive

import (
	"fmt"
	"strconv"
	"strings"
)

// Rule watches one derived metric and trips after the value stays out
// of bounds for N consecutive evaluations — the hysteresis keeps a
// single noisy tick from paging anyone. Above selects the direction:
// true fires when value > Bound, false when value < Bound.
type Rule struct {
	Metric string
	Above  bool
	Bound  float64
	N      int
}

// String renders the rule in the -derive-rules flag syntax.
func (r Rule) String() string {
	op := "<"
	if r.Above {
		op = ">"
	}
	return fmt.Sprintf("%s%s%g:%d", r.Metric, op, r.Bound, r.N)
}

// DefaultRuleN is the consecutive-breach count when a rule spec omits
// the :N suffix.
const DefaultRuleN = 3

// ParseRule parses one "metric<bound[:N]" / "metric>bound[:N]" spec,
// e.g. "ipc<0.5:3" — warn when IPC stays below 0.5 for 3 straight
// evaluations.
func ParseRule(spec string) (Rule, error) {
	spec = strings.TrimSpace(spec)
	i := strings.IndexAny(spec, "<>")
	if i <= 0 {
		return Rule{}, fmt.Errorf("derive: rule %q: want metric<bound[:N] or metric>bound[:N]", spec)
	}
	r := Rule{Metric: spec[:i], Above: spec[i] == '>', N: DefaultRuleN}
	rest := spec[i+1:]
	if j := strings.IndexByte(rest, ':'); j >= 0 {
		n, err := strconv.Atoi(rest[j+1:])
		if err != nil || n < 1 {
			return Rule{}, fmt.Errorf("derive: rule %q: bad streak count %q", spec, rest[j+1:])
		}
		r.N = n
		rest = rest[:j]
	}
	bound, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return Rule{}, fmt.Errorf("derive: rule %q: bad bound %q", spec, rest)
	}
	r.Bound = bound
	return r, nil
}

// ParseRules parses a comma-separated rule list ("ipc<0.5:3,cpi>4").
// Empty input yields no rules.
func ParseRules(specs string) ([]Rule, error) {
	specs = strings.TrimSpace(specs)
	if specs == "" {
		return nil, nil
	}
	var out []Rule
	for _, part := range strings.Split(specs, ",") {
		r, err := ParseRule(part)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// breached reports whether the value is out of bounds for this rule.
func (r Rule) breached(v float64) bool {
	if r.Above {
		return v > r.Bound
	}
	return v < r.Bound
}

// ruleState tracks one rule's streak for one session. A rule fires
// once when the streak reaches N, then stays latched until the value
// returns in bounds, re-arming it — so a sustained breach produces one
// alert, not one per tick.
type ruleState struct {
	streak int
	fired  bool
}

// observe advances the state with one evaluation and reports whether
// the rule fires on this observation.
func (s *ruleState) observe(r Rule, v float64) bool {
	if !r.breached(v) {
		s.streak = 0
		s.fired = false
		return false
	}
	s.streak++
	if s.streak >= r.N && !s.fired {
		s.fired = true
		return true
	}
	return false
}
