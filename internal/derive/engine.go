package derive

import (
	"log/slog"
	"sync"

	"repro/internal/telemetry"
)

// Engine evaluates performance groups over live tick snapshots. It
// owns the per-session evaluation state the formulas need — previous
// counter values for deltas, previous timestamps for rates, compiled
// bindings against each session's event layout, and threshold-rule
// streaks — so the server's tick loop stays a single call:
//
//	eng.Tick(id, events, values, ts, groups, emit)
//
// Bindings are compiled once per (session, layout, group-set) and
// reused; steady-state evaluation does no parsing, no map lookups per
// instruction, and no allocation beyond the first tick's state build.
type Engine struct {
	reg   *Registry
	rules []Rule
	log   *slog.Logger

	evals  *telemetry.Counter // papid_derive_evals_total
	alerts *telemetry.Counter // papid_derive_alerts_total

	// Session state is striped by session ID so papid's parallel tick
	// workers evaluating distinct sessions never serialize on one
	// engine-wide lock. One session's Tick calls are still mutually
	// exclusive (its stripe's lock), which is all the per-session
	// delta/streak state needs.
	stripes [engineStripes]engineStripe
}

const engineStripes = 16

type engineStripe struct {
	mu       sync.Mutex
	sessions map[uint64]*sessionState
}

// stripeFor picks a session's stripe by Fibonacci-hashing its ID, like
// papid's registry shards, so sequential IDs spread out.
func (e *Engine) stripeFor(session uint64) *engineStripe {
	return &e.stripes[(session*0x9e3779b97f4a7c15)>>32%engineStripes]
}

// sessionState caches everything one session needs to evaluate its
// groups allocation-free: compiled bindings against the session's
// event layout, previous cumulative values for delta computation, and
// reusable output slices handed to the emit callback.
type sessionState struct {
	groups []string // group names the bindings were compiled for
	layout []string // event names the bindings were compiled for

	metrics []string // flattened metric names across groups
	units   []string
	bound   []Bound
	rules   []ruleBinding

	prev   []int64 // previous cumulative counter values
	prevTs int64   // previous snapshot timestamp (µs)
	have   bool    // prev is valid (at least one earlier tick seen)

	deltas []float64 // scratch: per-event deltas this interval
	vals   []float64 // scratch: per-metric outputs
}

// ruleBinding attaches one engine rule to a metric slot in this
// session's flattened metric list.
type ruleBinding struct {
	rule  Rule
	slot  int
	state ruleState
}

// NewEngine builds an engine over the given group registry (nil means
// the built-in library), threshold rules, and logger. Counters are
// registered on treg; pass nil to keep them private (tests).
func NewEngine(reg *Registry, rules []Rule, logger *slog.Logger, treg *telemetry.Registry) *Engine {
	if reg == nil {
		reg = NewRegistry()
	}
	if logger == nil {
		logger = slog.Default()
	}
	if treg == nil {
		treg = telemetry.NewRegistry()
	}
	e := &Engine{
		reg:   reg,
		rules: append([]Rule(nil), rules...),
		log:   logger,
		evals: treg.NewCounter(telemetry.Opts{Name: "papid_derive_evals_total",
			Help: "Derived-group evaluations completed (one per session per tick with groups registered)."}),
		alerts: treg.NewCounter(telemetry.Opts{Name: "papid_derive_alerts_total",
			Help: "Threshold-rule alerts fired on derived metrics."}),
	}
	for i := range e.stripes {
		e.stripes[i].sessions = make(map[uint64]*sessionState)
	}
	return e
}

// Registry returns the engine's group registry.
func (e *Engine) Registry() *Registry { return e.reg }

// Rules returns a copy of the engine's threshold rules.
func (e *Engine) Rules() []Rule { return append([]Rule(nil), e.rules...) }

// Alerts returns the number of threshold alerts fired so far.
func (e *Engine) Alerts() uint64 { return e.alerts.Value() }

// Evals returns the number of completed group evaluations.
func (e *Engine) Evals() uint64 { return e.evals.Value() }

// Tick evaluates the named groups over one snapshot of a session's
// cumulative counters. events/values is the session's counter layout
// for this snapshot, tsUsec its timestamp. The first snapshot after a
// session appears (or changes layout) only primes the delta baseline;
// from the second on, emit is called with parallel metric-name, unit,
// and value slices.
//
// emit runs with the session's stripe lock held and the slices are
// reused on the next call for the same session — consume them
// synchronously (encode or copy), do not retain them.
//
// Tick reports how many threshold alerts fired during this
// evaluation, so callers (papid's flight recorder) can mark the
// surrounding tick or request as errored and tail-retain its trace.
func (e *Engine) Tick(session uint64, events []string, values []int64, tsUsec int64,
	groups []string, emit func(metrics, units []string, vals []float64)) (alerts int) {
	if len(groups) == 0 || len(events) == 0 || len(events) != len(values) {
		return 0
	}
	stripe := e.stripeFor(session)
	stripe.mu.Lock()
	defer stripe.mu.Unlock()

	st := stripe.sessions[session]
	if st == nil {
		st = &sessionState{}
		stripe.sessions[session] = st
	}
	if !sameStrings(st.layout, events) || !sameStrings(st.groups, groups) {
		if err := e.rebind(st, events, groups); err != nil {
			// Groups that reference events outside this session's set are
			// caught at subscription/registration time; this is the
			// belt-and-braces path for layouts that shrank since.
			e.log.Warn("derive: session binding failed", "session", session, "err", err)
			delete(stripe.sessions, session)
			return
		}
	}
	if len(st.bound) == 0 {
		return
	}
	if !st.have {
		copy(st.prev, values)
		st.prevTs = tsUsec
		st.have = true
		return
	}
	dtSec := float64(tsUsec-st.prevTs) / 1e6
	if dtSec < 0 {
		dtSec = 0
	}
	reset := false
	for i, v := range values {
		d := v - st.prev[i]
		if d < 0 {
			// Counter went backwards: the session's event set was reset
			// (STOP/START cycle). Re-prime rather than emit garbage.
			reset = true
		}
		st.deltas[i] = float64(d)
	}
	copy(st.prev, values)
	st.prevTs = tsUsec
	if reset {
		return
	}
	for i, b := range st.bound {
		st.vals[i] = b.Eval(st.deltas, dtSec)
	}
	e.evals.Inc()
	for i := range st.rules {
		rb := &st.rules[i]
		v := st.vals[rb.slot]
		if rb.state.observe(rb.rule, v) {
			alerts++
			e.alerts.Inc()
			e.log.Warn("derive: threshold alert",
				"session", session,
				"metric", rb.rule.Metric,
				"value", v,
				"rule", rb.rule.String(),
				"streak", rb.state.streak)
		}
	}
	if emit != nil {
		emit(st.metrics, st.units, st.vals)
	}
	return alerts
}

// rebind recompiles the session's bindings for a new event layout or
// group set. Called under the session's stripe lock.
func (e *Engine) rebind(st *sessionState, events []string, groups []string) error {
	gs, err := e.reg.Resolve(groups)
	if err != nil {
		return err
	}
	index := make(map[string]int, len(events))
	for i, ev := range events {
		index[ev] = i
	}
	st.metrics = st.metrics[:0]
	st.units = st.units[:0]
	st.bound = st.bound[:0]
	for _, g := range gs {
		for i := range g.Metrics {
			m := &g.Metrics[i]
			b, err := m.expr.Bind(index)
			if err != nil {
				return err
			}
			st.metrics = append(st.metrics, m.Name)
			st.units = append(st.units, m.Unit)
			st.bound = append(st.bound, b)
		}
	}
	st.rules = st.rules[:0]
	for _, r := range e.rules {
		for slot, name := range st.metrics {
			if name == r.Metric {
				st.rules = append(st.rules, ruleBinding{rule: r, slot: slot})
			}
		}
	}
	st.layout = append(st.layout[:0], events...)
	st.groups = append(st.groups[:0], groups...)
	st.prev = resizeI64(st.prev, len(events))
	st.deltas = resizeF64(st.deltas, len(events))
	st.vals = resizeF64(st.vals, len(st.bound))
	st.have = false // deltas across a layout change are meaningless
	return nil
}

// CloseSession drops a session's evaluation state.
func (e *Engine) CloseSession(session uint64) {
	stripe := e.stripeFor(session)
	stripe.mu.Lock()
	delete(stripe.sessions, session)
	stripe.mu.Unlock()
}

// SessionCount returns the number of sessions with live state (tests,
// leak checks).
func (e *Engine) SessionCount() int {
	n := 0
	for i := range e.stripes {
		e.stripes[i].mu.Lock()
		n += len(e.stripes[i].sessions)
		e.stripes[i].mu.Unlock()
	}
	return n
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func resizeI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func resizeF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
