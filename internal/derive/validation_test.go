package derive_test

// The group-validation campaign, in the spirit of Röhl et al.: before
// a derived metric is trusted, the counters feeding it are measured
// over workload kernels with analytically known operation mixes, and
// the *derived* value is compared against the ground-truth arithmetic.
// An event without such a check stays out of validated.go and any
// group referencing it is rejected at registration — which
// TestUnvalidatedEventEndToEnd exercises end to end.
//
// The campaign runs on the simulated substrates through the public
// papi facade, exactly as papid's sessions do. Counts on the
// deterministic simulator are exact; the tolerance below absorbs only
// modeling slack between a kernel's analytic Expected() and the
// instruction stream actually generated (loop scaffolding, spill
// code), not measurement noise.

import (
	"fmt"
	"testing"

	"repro/internal/derive"
	"repro/papi"
	"repro/workload"
)

// groundTruthTol bounds metrics whose numerator and denominator both
// come straight from the analytic model (FLOP counts on a pure-FP
// kernel). scaffoldingTol additionally absorbs the loop scaffolding
// (index updates, back-branches) the instruction generator emits
// beyond a kernel's analytic Expected() — a modeling delta, not
// measurement noise; the simulator itself is deterministic and exact.
const (
	groundTruthTol = 0.02 // 2 % relative
	scaffoldingTol = 0.05 // 5 % relative
)

// runCounting measures prog on one platform, counting the named
// preset events from zero. ok=false means this platform cannot
// realize the event set (unavailable preset or counter conflict) —
// the caller moves on to the next substrate.
func runCounting(t *testing.T, platform string, prog workload.Program, events []string) ([]int64, bool) {
	t.Helper()
	sys, err := papi.Init(papi.Options{Platform: platform})
	if err != nil {
		t.Fatal(err)
	}
	th := sys.Main()
	es := th.NewEventSet()
	for _, name := range events {
		ev, ok := papi.PresetByName(name)
		if !ok {
			t.Fatalf("unknown preset %s", name)
		}
		if err := es.Add(ev); err != nil {
			return nil, false
		}
	}
	if err := es.Start(); err != nil {
		return nil, false
	}
	th.Run(prog)
	vals := make([]int64, len(events))
	if err := es.Stop(vals); err != nil {
		t.Fatal(err)
	}
	return vals, true
}

// measureGroup runs prog counting a group's full event set on the
// first substrate that can schedule it, failing the test if none can —
// every shipped group must be measurable somewhere.
func measureGroup(t *testing.T, g *derive.Group, mk func() workload.Program) ([]string, []int64, string) {
	t.Helper()
	events := g.Events()
	for _, platform := range papi.Platforms() {
		if vals, ok := runCounting(t, platform, mk(), events); ok {
			return events, vals, platform
		}
	}
	t.Fatalf("group %s (%v): no substrate can schedule it", g.Name, events)
	return nil, nil, ""
}

// metricValue evaluates one metric of a group over a single interval
// whose deltas are the measured cumulative values (counted from zero).
func metricValue(t *testing.T, g *derive.Group, metric string, events []string, vals []int64, dtSec float64) float64 {
	t.Helper()
	index := make(map[string]int, len(events))
	deltas := make([]float64, len(events))
	for i, ev := range events {
		index[ev] = i
		deltas[i] = float64(vals[i])
	}
	for i := range g.Metrics {
		if g.Metrics[i].Name != metric {
			continue
		}
		b, err := g.Metrics[i].Expr().Bind(index)
		if err != nil {
			t.Fatal(err)
		}
		return b.Eval(deltas, dtSec)
	}
	t.Fatalf("group %s has no metric %s", g.Name, metric)
	return 0
}

func within(got, want, tol float64) bool {
	if want == 0 {
		return got == 0
	}
	rel := (got - want) / want
	if rel < 0 {
		rel = -rel
	}
	return rel <= tol
}

func lookupGroup(t *testing.T, name string) *derive.Group {
	t.Helper()
	g := derive.NewRegistry().Lookup(name)
	if g == nil {
		t.Fatalf("no builtin group %s", name)
	}
	return g
}

func TestValidationFlops(t *testing.T) {
	g := lookupGroup(t, "flops")
	mk := func() workload.Program { return workload.MatMul(workload.MatMulConfig{N: 48}) }
	events, vals, platform := measureGroup(t, g, mk)
	exp := mk().Expected()

	fpPerInstr := metricValue(t, g, "fp_per_instr", events, vals, 1)
	truth := float64(exp.FLOPs()) / float64(exp.Instrs)
	if !within(fpPerInstr, truth, groundTruthTol) {
		t.Errorf("%s: fp_per_instr = %g, ground truth %g", platform, fpPerInstr, truth)
	}
	// With the whole run treated as a 1-second interval, MFLOPS is the
	// total FLOP count scaled — the paper's own calibration identity.
	mflops := metricValue(t, g, "mflops", events, vals, 1)
	if !within(mflops, float64(exp.FLOPs())/1e6, groundTruthTol) {
		t.Errorf("%s: mflops = %g, ground truth %g", platform, mflops, float64(exp.FLOPs())/1e6)
	}
}

func TestValidationBranches(t *testing.T) {
	g := lookupGroup(t, "brmiss")
	mk := func() workload.Program { return workload.Branchy(workload.BranchyConfig{N: 4096}) }
	events, vals, platform := measureGroup(t, g, mk)
	exp := mk().Expected()

	brPerInstr := metricValue(t, g, "br_per_instr", events, vals, 1)
	truth := float64(exp.Branches) / float64(exp.Instrs)
	if !within(brPerInstr, truth, scaffoldingTol) {
		t.Errorf("%s: br_per_instr = %g, ground truth %g", platform, brPerInstr, truth)
	}
	ratio := metricValue(t, g, "br_msp_ratio", events, vals, 1)
	if ratio <= 0 || ratio >= 1 {
		t.Errorf("%s: br_msp_ratio = %g on a data-dependent branch kernel, want (0,1)", platform, ratio)
	}
}

func TestValidationIPC(t *testing.T) {
	g := lookupGroup(t, "ipc")
	mk := func() workload.Program { return workload.HotColdLoop(workload.HotColdConfig{Iters: 2000}) }
	events, vals, platform := measureGroup(t, g, mk)
	exp := mk().Expected()

	// TOT_INS itself is certified against the analytic instruction count.
	for i, ev := range events {
		if ev == "PAPI_TOT_INS" && !within(float64(vals[i]), float64(exp.Instrs), scaffoldingTol) {
			t.Errorf("%s: TOT_INS = %d, ground truth %d", platform, vals[i], exp.Instrs)
		}
	}
	ipc := metricValue(t, g, "ipc", events, vals, 1)
	if ipc <= 0 || ipc > 16 {
		t.Errorf("%s: ipc = %g, want a plausible (0,16]", platform, ipc)
	}
	mips := metricValue(t, g, "mips", events, vals, 1)
	if !within(mips, float64(exp.Instrs)/1e6, scaffoldingTol) {
		t.Errorf("%s: mips over 1s = %g, ground truth %g", platform, mips, float64(exp.Instrs)/1e6)
	}
}

// Cache groups have no exact analytic count — misses depend on the
// simulated hierarchy — so they are certified behaviourally: the
// blocked matmul must show a far lower L1 miss ratio than the naive
// one on a machine whose L1 cannot hold the matrices (the whole point
// of blocking; both versions issue identical loads, so the ratio
// ordering is exactly the miss-count ordering), and a pointer chase
// over a working set far beyond L1 must miss more than a streaming
// triad that fits in it.
func TestValidationCacheBlocking(t *testing.T) {
	g := lookupGroup(t, "l1miss")
	var ratioEvents []string
	for i := range g.Metrics {
		if g.Metrics[i].Name == "l1d_miss_ratio" {
			ratioEvents = g.Metrics[i].Expr().Events()
		}
	}
	if ratioEvents == nil {
		t.Fatal("l1miss group lost its l1d_miss_ratio metric")
	}
	// The x86 model's 16K L1 versus three 72K matrices is the
	// documented contrast (see workload's blocked tests); its two
	// counters fit the ratio's two events.
	const platform = papi.PlatformLinuxX86
	naiveVals, ok := runCounting(t, platform,
		workload.MatMul(workload.MatMulConfig{N: 96}), ratioEvents)
	if !ok {
		t.Fatalf("%s cannot count %v", platform, ratioEvents)
	}
	blockedVals, ok := runCounting(t, platform,
		workload.BlockedMatMul(workload.BlockedMatMulConfig{N: 96, Block: 16}), ratioEvents)
	if !ok {
		t.Fatalf("%s scheduled naive but not blocked", platform)
	}
	naive := metricValue(t, g, "l1d_miss_ratio", ratioEvents, naiveVals, 1)
	blocked := metricValue(t, g, "l1d_miss_ratio", ratioEvents, blockedVals, 1)
	for name, v := range map[string]float64{"naive": naive, "blocked": blocked} {
		if v < 0 || v > 1 {
			t.Fatalf("%s: %s l1d_miss_ratio = %g outside [0,1]", platform, name, v)
		}
	}
	if 2*blocked > naive {
		t.Errorf("%s: blocked l1d_miss_ratio %g not well below naive %g; blocking must reduce misses", platform, blocked, naive)
	}
}

func TestValidationL1WorkingSet(t *testing.T) {
	g := lookupGroup(t, "l1miss")
	chaseEvents, chaseVals, platform := measureGroup(t, g, func() workload.Program {
		return workload.PointerChase(workload.ChaseConfig{Nodes: 1 << 14, Steps: 1 << 15})
	})
	triadVals, ok := runCounting(t, platform,
		workload.Triad(workload.TriadConfig{N: 256, Reps: 16}), chaseEvents)
	if !ok {
		t.Fatalf("%s scheduled chase but not triad", platform)
	}
	chase := metricValue(t, g, "l1d_miss_ratio", chaseEvents, chaseVals, 1)
	triad := metricValue(t, g, "l1d_miss_ratio", chaseEvents, triadVals, 1)
	if chase <= triad {
		t.Errorf("%s: chase l1d_miss_ratio %g <= triad %g; a 1 MiB random walk must out-miss an L1-resident stream", platform, chase, triad)
	}
}

func TestValidationMembw(t *testing.T) {
	g := lookupGroup(t, "membw")
	events, vals, platform := measureGroup(t, g, func() workload.Program {
		return workload.PointerChase(workload.ChaseConfig{Nodes: 1 << 14, Steps: 1 << 15})
	})
	bw := metricValue(t, g, "mem_bw_mbs", events, vals, 1)
	if bw <= 0 {
		t.Errorf("%s: mem_bw_mbs = %g for a cache-hostile chase, want > 0", platform, bw)
	}
	bpi := metricValue(t, g, "bytes_per_instr", events, vals, 1)
	if bpi <= 0 {
		t.Errorf("%s: bytes_per_instr = %g, want > 0", platform, bpi)
	}
}

// The negative path of the validation policy, end to end: PAPI_TLB_DM
// is measurable on some substrates but has no ground-truth model, so a
// group using it must be refused — at registration, with an error
// naming the policy, not at tick time.
func TestUnvalidatedEventEndToEnd(t *testing.T) {
	r := derive.NewRegistry()
	err := r.Register(derive.Group{Name: "tlbpressure", Metrics: []derive.Metric{
		{Name: "tlb_per_kinstr", Formula: "PAPI_TLB_DM / PAPI_TOT_INS * 1000"},
	}})
	if err == nil {
		t.Fatal("group over unvalidated PAPI_TLB_DM accepted")
	}
	if r.Lookup("tlbpressure") != nil {
		t.Fatal("rejected group still registered")
	}
}

// Every builtin group's event set must be schedulable on at least one
// substrate — a library entry nobody can run is dead weight.
func TestBuiltinGroupsSchedulable(t *testing.T) {
	r := derive.NewRegistry()
	for _, name := range r.Names() {
		g := r.Lookup(name)
		found := false
		for _, platform := range papi.Platforms() {
			sys := papi.MustInit(papi.Options{Platform: platform})
			es := sys.Main().NewEventSet()
			ok := true
			for _, evName := range g.Events() {
				ev, _ := papi.PresetByName(evName)
				if err := es.Add(ev); err != nil {
					ok = false
					break
				}
			}
			if ok {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("group %s (%v): not schedulable on any substrate", name, g.Events())
		}
	}
}

func ExampleRegistry() {
	r := derive.NewRegistry()
	g := r.Lookup("ipc")
	fmt.Println(g.Name, g.Events())
	// Output: ipc [PAPI_TOT_CYC PAPI_TOT_INS]
}
