package derive

import (
	"strings"
	"testing"
)

func TestBuiltinLibrary(t *testing.T) {
	r := NewRegistry()
	for _, want := range []string{"ipc", "cpi", "brmiss", "l1miss", "l2miss", "flops", "membw"} {
		g := r.Lookup(want)
		if g == nil {
			t.Fatalf("builtin group %s missing", want)
		}
		if len(g.Metrics) == 0 || len(g.Events()) == 0 {
			t.Fatalf("builtin group %s is empty", want)
		}
		for _, m := range g.Metrics {
			if m.Expr() == nil {
				t.Fatalf("group %s metric %s not compiled", want, m.Name)
			}
		}
	}
	names := r.Names()
	if len(names) < 7 {
		t.Fatalf("Names() = %v, want >= 7 groups", names)
	}
	gs, err := r.Resolve([]string{"ipc", "l2miss"})
	if err != nil || len(gs) != 2 {
		t.Fatalf("Resolve: %v, %d groups", err, len(gs))
	}
	evs := EventsFor(gs)
	wantEvs := map[string]bool{"PAPI_TOT_INS": true, "PAPI_TOT_CYC": true,
		"PAPI_L2_TCM": true, "PAPI_L2_TCA": true}
	for _, ev := range evs {
		if !wantEvs[ev] {
			t.Errorf("unexpected event %s in ipc+l2miss union", ev)
		}
		delete(wantEvs, ev)
	}
	if len(wantEvs) != 0 {
		t.Errorf("union missing %v", wantEvs)
	}
	if _, err := r.Resolve([]string{"ipc", "nonesuch"}); err == nil {
		t.Error("Resolve accepted unknown group")
	}
}

// Registration is the trust boundary: every rejection here must happen
// before a group can reach tick evaluation.
func TestRegisterRejections(t *testing.T) {
	cases := []struct {
		name    string
		group   Group
		errWant string
	}{
		{"unvalidated event", Group{Name: "tlb", Metrics: []Metric{
			{Name: "tlb_per_kinstr", Formula: "PAPI_TLB_DM / PAPI_TOT_INS * 1000"},
		}}, "not validated"},
		{"unknown event", Group{Name: "bogus", Metrics: []Metric{
			{Name: "x", Formula: "PAPI_NO_SUCH / PAPI_TOT_INS"},
		}}, "not a preset"},
		{"parse error", Group{Name: "syntax", Metrics: []Metric{
			{Name: "x", Formula: "PAPI_TOT_INS +"},
		}}, "formula"},
		{"empty group", Group{Name: "void"}, "no metrics"},
		{"unnamed group", Group{Metrics: []Metric{{Name: "x", Formula: "PAPI_TOT_INS"}}}, "needs a name"},
		{"unnamed metric", Group{Name: "g", Metrics: []Metric{{Formula: "PAPI_TOT_INS"}}}, "needs a name"},
		{"duplicate metric", Group{Name: "g", Metrics: []Metric{
			{Name: "x", Formula: "PAPI_TOT_INS"},
			{Name: "x", Formula: "PAPI_TOT_CYC"},
		}}, "duplicate"},
	}
	for _, c := range cases {
		r := NewRegistry()
		err := r.Register(c.group)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.errWant) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.errWant)
		}
	}
}

func TestRegisterDuplicateGroup(t *testing.T) {
	r := NewRegistry()
	g := Group{Name: "mine", Metrics: []Metric{{Name: "x", Formula: "PAPI_TOT_INS"}}}
	if err := r.Register(g); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(g); err == nil {
		t.Fatal("duplicate group name accepted")
	}
}

func TestRegisterCustomGroup(t *testing.T) {
	r := NewRegistry()
	err := r.Register(Group{Name: "loadstore", Desc: "memory op mix",
		Metrics: []Metric{
			{Name: "ld_ratio", Unit: "ratio", Formula: "PAPI_LD_INS / PAPI_LST_INS"},
			{Name: "st_per_sec", Unit: "ops/s", Formula: "rate(PAPI_SR_INS)"},
		}})
	if err != nil {
		t.Fatal(err)
	}
	g := r.Lookup("loadstore")
	evs := g.Events()
	if len(evs) != 3 { // LD, SR, LST — sorted union
		t.Fatalf("Events() = %v", evs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i-1] >= evs[i] {
			t.Fatalf("Events() not sorted: %v", evs)
		}
	}
}

func TestValidatedLedger(t *testing.T) {
	if EventValidated("PAPI_TLB_DM") {
		t.Error("PAPI_TLB_DM marked validated; the negative-path tests depend on the gap")
	}
	if !EventValidated("PAPI_TOT_INS") {
		t.Error("PAPI_TOT_INS not validated")
	}
	if len(ValidatedEvents()) < 15 {
		t.Errorf("only %d validated events", len(ValidatedEvents()))
	}
}
