package derive

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// NominalLineBytes is the cache-line size assumed by the memory
// bandwidth estimate. The simulated substrates use 32-, 64- and
// 128-byte lines depending on platform, so `membw` is an estimate in
// LIKWID's sense — a consistent, comparable figure, not a promise of
// bus-exact bytes. 64 is the dominant real-hardware line size and the
// documented nominal here.
const NominalLineBytes = 64

// Metric is one derived series inside a group: a display name, a unit
// for rendering, and the compiled formula.
type Metric struct {
	Name    string
	Unit    string
	Formula string
	expr    *Expr
}

// Expr returns the compiled formula.
func (m *Metric) Expr() *Expr { return m.expr }

// Group is a LIKWID-style performance group: a named bundle of derived
// metrics over a fixed set of counter events. Groups are immutable
// after registration.
type Group struct {
	Name    string
	Desc    string
	Metrics []Metric
	events  []string // union of metric event requirements, sorted
}

// Events returns the union of events the group's formulas need, sorted.
func (g *Group) Events() []string { return append([]string(nil), g.events...) }

// Registry maps group names to registered groups. The zero value is
// empty; NewRegistry pre-loads the built-in library.
type Registry struct {
	mu     sync.RWMutex
	groups map[string]*Group
}

// Builtin group definitions, LIKWID-style, over the validated preset
// events of internal/core. Formula semantics: bare events are
// per-interval deltas, rate() divides by interval seconds, division by
// zero yields zero.
func builtinGroups() []Group {
	return []Group{
		{
			Name: "ipc", Desc: "Instruction throughput",
			Metrics: []Metric{
				{Name: "ipc", Unit: "instr/cycle", Formula: "PAPI_TOT_INS / PAPI_TOT_CYC"},
				{Name: "mips", Unit: "Minstr/s", Formula: "rate(PAPI_TOT_INS) / 1e6"},
			},
		},
		{
			Name: "cpi", Desc: "Cycles per instruction",
			Metrics: []Metric{
				{Name: "cpi", Unit: "cycle/instr", Formula: "PAPI_TOT_CYC / PAPI_TOT_INS"},
				{Name: "stall_ratio", Unit: "ratio", Formula: "PAPI_RES_STL / PAPI_TOT_CYC"},
			},
		},
		{
			Name: "brmiss", Desc: "Branch prediction",
			Metrics: []Metric{
				{Name: "br_msp_ratio", Unit: "ratio", Formula: "PAPI_BR_MSP / PAPI_BR_INS"},
				{Name: "br_per_instr", Unit: "ratio", Formula: "PAPI_BR_INS / PAPI_TOT_INS"},
			},
		},
		{
			Name: "l1miss", Desc: "L1 data cache",
			Metrics: []Metric{
				{Name: "l1d_miss_ratio", Unit: "ratio", Formula: "PAPI_L1_DCM / PAPI_L1_DCA"},
				{Name: "l1d_miss_per_kinstr", Unit: "miss/kinstr", Formula: "PAPI_L1_DCM / PAPI_TOT_INS * 1000"},
			},
		},
		{
			Name: "l2miss", Desc: "L2 cache",
			Metrics: []Metric{
				{Name: "l2_miss_ratio", Unit: "ratio", Formula: "PAPI_L2_TCM / PAPI_L2_TCA"},
				{Name: "l2_miss_per_kinstr", Unit: "miss/kinstr", Formula: "PAPI_L2_TCM / PAPI_TOT_INS * 1000"},
			},
		},
		{
			Name: "flops", Desc: "Floating-point throughput",
			Metrics: []Metric{
				{Name: "mflops", Unit: "Mflop/s", Formula: "rate(PAPI_FP_OPS) / 1e6"},
				{Name: "fp_per_instr", Unit: "ratio", Formula: "PAPI_FP_OPS / PAPI_TOT_INS"},
			},
		},
		{
			Name: "membw", Desc: "Memory bandwidth estimate (L2 miss traffic, nominal 64B lines)",
			Metrics: []Metric{
				{Name: "mem_bw_mbs", Unit: "MB/s", Formula: "rate(PAPI_L2_TCM) * 64 / 1e6"},
				{Name: "bytes_per_instr", Unit: "B/instr", Formula: "PAPI_L2_TCM * 64 / PAPI_TOT_INS"},
			},
		},
	}
}

// NewRegistry builds a registry pre-loaded with the built-in group
// library. The builtins pass the same validation gate as user groups;
// a failure there is a programming error and panics.
func NewRegistry() *Registry {
	r := &Registry{groups: make(map[string]*Group)}
	for _, g := range builtinGroups() {
		if err := r.Register(g); err != nil {
			panic(fmt.Sprintf("derive: builtin group %s: %v", g.Name, err))
		}
	}
	return r
}

// Register validates and installs a group. Registration is the trust
// boundary: formulas must parse, every referenced event must be a
// known preset name AND certified by the validation campaign
// (validated.go), and names must be unique within the group and the
// registry. A group rejected here can never reach tick evaluation.
func (r *Registry) Register(g Group) error {
	if g.Name == "" {
		return fmt.Errorf("derive: group needs a name")
	}
	if len(g.Metrics) == 0 {
		return fmt.Errorf("derive: group %s has no metrics", g.Name)
	}
	evset := make(map[string]bool)
	seen := make(map[string]bool)
	metrics := make([]Metric, len(g.Metrics))
	for i, m := range g.Metrics {
		if m.Name == "" {
			return fmt.Errorf("derive: group %s: metric %d needs a name", g.Name, i)
		}
		if seen[m.Name] {
			return fmt.Errorf("derive: group %s: duplicate metric %s", g.Name, m.Name)
		}
		seen[m.Name] = true
		expr := m.expr
		if expr == nil {
			var err error
			expr, err = Parse(m.Formula)
			if err != nil {
				return fmt.Errorf("derive: group %s metric %s: %w", g.Name, m.Name, err)
			}
		}
		for _, ev := range expr.Events() {
			if _, ok := core.PresetByName(ev); !ok {
				return fmt.Errorf("derive: group %s metric %s: %s is not a preset event", g.Name, m.Name, ev)
			}
			if !EventValidated(ev) {
				return fmt.Errorf("derive: group %s metric %s: event %s is not validated against ground truth (see EXPERIMENTS.md)", g.Name, m.Name, ev)
			}
			evset[ev] = true
		}
		metrics[i] = Metric{Name: m.Name, Unit: m.Unit, Formula: m.Formula, expr: expr}
	}
	events := make([]string, 0, len(evset))
	for ev := range evset {
		events = append(events, ev)
	}
	sort.Strings(events)
	ng := &Group{Name: g.Name, Desc: g.Desc, Metrics: metrics, events: events}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.groups == nil {
		r.groups = make(map[string]*Group)
	}
	if _, dup := r.groups[g.Name]; dup {
		return fmt.Errorf("derive: group %s already registered", g.Name)
	}
	r.groups[g.Name] = ng
	return nil
}

// Lookup returns the named group, or nil.
func (r *Registry) Lookup(name string) *Group {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.groups[name]
}

// Names lists registered group names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.groups))
	for n := range r.groups {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Resolve maps group names to groups, failing on the first unknown
// name with the known names in the error for operator diagnostics.
func (r *Registry) Resolve(names []string) ([]*Group, error) {
	out := make([]*Group, 0, len(names))
	for _, n := range names {
		g := r.Lookup(n)
		if g == nil {
			return nil, fmt.Errorf("derive: unknown group %q (have %v)", n, r.Names())
		}
		out = append(out, g)
	}
	return out, nil
}

// EventsFor returns the sorted union of events required by the named
// groups.
func EventsFor(groups []*Group) []string {
	set := make(map[string]bool)
	for _, g := range groups {
		for _, ev := range g.events {
			set[ev] = true
		}
	}
	out := make([]string, 0, len(set))
	for ev := range set {
		out = append(out, ev)
	}
	sort.Strings(out)
	return out
}
