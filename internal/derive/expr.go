// Package derive turns raw counter streams into the metrics people
// actually reason about. The paper's own motivating examples — MFLOPS,
// instructions per cycle, cache-miss ratios — are *derived* metrics,
// yet the collection stack below this package ships raw per-event
// totals end to end. LIKWID's lesson (Treibig et al.) is that the
// winning interface is a curated library of "performance groups"
// (IPC, FLOPS, bandwidth, miss ratios) rather than raw events; Röhl et
// al.'s is that raw events must be validated against ground truth
// before any such pattern can be trusted. Both shape this package:
//
//   - a small expression engine over counter deltas — named formulas
//     with + - * /, a rate() per-second operator and guarded division,
//     compiled once at registration and evaluated allocation-free on
//     every tick;
//   - a shipped group library (groups.go) mapped onto the preset
//     events of internal/core, each group rejected at registration if
//     it references an event the validation campaign has not certified
//     (validated.go) — never at tick time;
//   - threshold rules (rules.go) that watch derived values and fire
//     structured log warnings plus telemetry counters after N
//     consecutive breaches;
//   - an Engine (engine.go) holding per-session evaluation state for
//     papid's tick loop, and a history evaluator (history.go) that
//     answers the same formulas over tsdb query results.
package derive

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Formula semantics: an identifier names a counter event and evaluates
// to that event's *delta* over the evaluation interval (the increase
// between two consecutive ticks, or between two history buckets).
// rate(EV) evaluates to the delta divided by the interval in seconds.
// Division is guarded: x/0 evaluates to 0, never Inf or NaN — a
// just-started counter or an idle interval yields a quiet zero instead
// of poisoning JSON encoding or threshold comparisons.

// opcode is one RPN instruction of a compiled formula.
type opcode uint8

const (
	opConst opcode = iota // push c
	opEvent               // push delta[idx]
	opRate                // push delta[idx]/dtSec (0 when dtSec == 0)
	opAdd
	opSub
	opMul
	opDiv // guarded: 0 when the divisor is 0
	opNeg
)

type instr struct {
	op  opcode
	idx int     // event slot for opEvent/opRate
	c   float64 // literal for opConst
}

// maxStack bounds a compiled formula's evaluation stack. Eval keeps
// the stack in a fixed-size local array so evaluation never allocates;
// Parse rejects formulas deeper than this at compile time.
const maxStack = 16

// Expr is one compiled formula. The zero value is invalid; build with
// Parse. An Expr references events by position in Events(); Bind maps
// those positions onto a concrete event layout (a session's event-name
// list) so evaluation is pure index arithmetic.
type Expr struct {
	src    string
	code   []instr
	events []string // deduplicated referenced event names, first-use order
	depth  int      // maximum evaluation stack depth
}

// Parse compiles a formula: identifiers are event names, rate(EV) is
// the per-second operator, and + - * / ( ) and numeric literals mean
// what they look like. The compiled form is immutable and safe for
// concurrent Bind/Eval use.
func Parse(src string) (*Expr, error) {
	p := &parser{input: src, e: &Expr{src: src}}
	if err := p.expr(); err != nil {
		return nil, fmt.Errorf("formula %q: %w", src, err)
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("formula %q: unexpected %q at offset %d", src, p.input[p.pos:], p.pos)
	}
	depth, err := p.e.stackDepth()
	if err != nil {
		return nil, fmt.Errorf("formula %q: %w", src, err)
	}
	p.e.depth = depth
	return p.e, nil
}

// MustParse is Parse for the built-in group tables, where a parse
// failure is a programming error.
func MustParse(src string) *Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

// String returns the source formula.
func (e *Expr) String() string { return e.src }

// Events lists the event names the formula references, deduplicated in
// first-use order.
func (e *Expr) Events() []string { return append([]string(nil), e.events...) }

// UsesRate reports whether any term divides by the interval — such a
// formula needs real timestamps, not just counter values.
func (e *Expr) UsesRate() bool {
	for _, in := range e.code {
		if in.op == opRate {
			return true
		}
	}
	return false
}

// stackDepth simulates the RPN program to find the maximum stack use,
// doubling as a structural sanity check on the compiler's output.
func (e *Expr) stackDepth() (int, error) {
	depth, max := 0, 0
	for _, in := range e.code {
		switch in.op {
		case opConst, opEvent, opRate:
			depth++
			if depth > max {
				max = depth
			}
		case opNeg:
			if depth < 1 {
				return 0, fmt.Errorf("internal: unary op on empty stack")
			}
		default:
			if depth < 2 {
				return 0, fmt.Errorf("internal: binary op on short stack")
			}
			depth--
		}
	}
	if depth != 1 {
		return 0, fmt.Errorf("internal: %d values left on stack", depth)
	}
	if max > maxStack {
		return 0, fmt.Errorf("formula nests deeper than %d", maxStack)
	}
	return max, nil
}

// eventSlot interns an event name, returning its slot.
func (e *Expr) eventSlot(name string) int {
	for i, ev := range e.events {
		if ev == name {
			return i
		}
	}
	e.events = append(e.events, name)
	return len(e.events) - 1
}

// Bound is an Expr whose event slots have been resolved against one
// concrete event layout — the form the tick loop evaluates. A Bound is
// a value; copies share the immutable instruction slice.
type Bound struct {
	code []instr
}

// Bind resolves the formula's event references through index (event
// name → position in the delta slice Eval will receive). Every
// referenced event must be present.
func (e *Expr) Bind(index map[string]int) (Bound, error) {
	code := make([]instr, len(e.code))
	copy(code, e.code)
	for i := range code {
		if code[i].op != opEvent && code[i].op != opRate {
			continue
		}
		name := e.events[code[i].idx]
		slot, ok := index[name]
		if !ok {
			return Bound{}, fmt.Errorf("formula %q: event %s not in layout", e.src, name)
		}
		code[i].idx = slot
	}
	return Bound{code: code}, nil
}

// Valid reports whether the Bound holds a compiled program.
func (b Bound) Valid() bool { return len(b.code) > 0 }

// Eval runs the program over one interval: deltas holds per-event
// counter increases in the bound layout, dtSec the interval length in
// seconds (only consulted by rate terms). Eval does not allocate.
func (b Bound) Eval(deltas []float64, dtSec float64) float64 {
	var stack [maxStack]float64
	sp := 0
	for _, in := range b.code {
		switch in.op {
		case opConst:
			stack[sp] = in.c
			sp++
		case opEvent:
			stack[sp] = deltas[in.idx]
			sp++
		case opRate:
			v := 0.0
			if dtSec > 0 {
				v = deltas[in.idx] / dtSec
			}
			stack[sp] = v
			sp++
		case opNeg:
			stack[sp-1] = -stack[sp-1]
		case opAdd:
			stack[sp-2] += stack[sp-1]
			sp--
		case opSub:
			stack[sp-2] -= stack[sp-1]
			sp--
		case opMul:
			stack[sp-2] *= stack[sp-1]
			sp--
		case opDiv:
			if stack[sp-1] == 0 {
				stack[sp-2] = 0
			} else {
				stack[sp-2] /= stack[sp-1]
			}
			sp--
		}
	}
	v := stack[0]
	if math.IsNaN(v) || math.IsInf(v, 0) {
		// Guarded division keeps ordinary formulas finite; this is the
		// backstop for pathological literals (1e308*1e308).
		return 0
	}
	return v
}

// parser is a recursive-descent compiler emitting RPN into e.code.
//
//	expr    := term (('+'|'-') term)*
//	term    := unary (('*'|'/') unary)*
//	unary   := '-' unary | primary
//	primary := NUMBER | IDENT | 'rate' '(' IDENT ')' | '(' expr ')'
type parser struct {
	input string
	pos   int
	e     *Expr
}

func (p *parser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.input) {
		return 0
	}
	return p.input[p.pos]
}

func (p *parser) expr() error {
	if err := p.term(); err != nil {
		return err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '+':
			p.pos++
			if err := p.term(); err != nil {
				return err
			}
			p.emit(instr{op: opAdd})
		case '-':
			p.pos++
			if err := p.term(); err != nil {
				return err
			}
			p.emit(instr{op: opSub})
		default:
			return nil
		}
	}
}

func (p *parser) term() error {
	if err := p.unary(); err != nil {
		return err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '*':
			p.pos++
			if err := p.unary(); err != nil {
				return err
			}
			p.emit(instr{op: opMul})
		case '/':
			p.pos++
			if err := p.unary(); err != nil {
				return err
			}
			p.emit(instr{op: opDiv})
		default:
			return nil
		}
	}
}

func (p *parser) unary() error {
	p.skipSpace()
	if p.peek() == '-' {
		p.pos++
		if err := p.unary(); err != nil {
			return err
		}
		p.emit(instr{op: opNeg})
		return nil
	}
	return p.primary()
}

func (p *parser) primary() error {
	p.skipSpace()
	c := p.peek()
	switch {
	case c == '(':
		p.pos++
		if err := p.expr(); err != nil {
			return err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return fmt.Errorf("missing ')' at offset %d", p.pos)
		}
		p.pos++
		return nil
	case c >= '0' && c <= '9' || c == '.':
		return p.number()
	case isIdentStart(c):
		return p.ident()
	case c == 0:
		return fmt.Errorf("unexpected end of formula")
	}
	return fmt.Errorf("unexpected %q at offset %d", string(c), p.pos)
}

func (p *parser) number() error {
	start := p.pos
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' ||
			((c == '+' || c == '-') && p.pos > start && (p.input[p.pos-1] == 'e' || p.input[p.pos-1] == 'E')) {
			p.pos++
			continue
		}
		break
	}
	v, err := strconv.ParseFloat(p.input[start:p.pos], 64)
	if err != nil {
		return fmt.Errorf("bad number %q", p.input[start:p.pos])
	}
	p.emit(instr{op: opConst, c: v})
	return nil
}

func (p *parser) ident() error {
	start := p.pos
	for p.pos < len(p.input) && isIdentChar(p.input[p.pos]) {
		p.pos++
	}
	name := p.input[start:p.pos]
	p.skipSpace()
	if p.peek() != '(' {
		p.emit(instr{op: opEvent, idx: p.e.eventSlot(name)})
		return nil
	}
	// Function call. rate is the only function; its argument must be a
	// bare event name — rate of a compound expression has no single
	// counter to difference.
	if !strings.EqualFold(name, "rate") {
		return fmt.Errorf("unknown function %q", name)
	}
	p.pos++ // '('
	p.skipSpace()
	if !isIdentStart(p.peek()) {
		return fmt.Errorf("rate() needs an event name at offset %d", p.pos)
	}
	astart := p.pos
	for p.pos < len(p.input) && isIdentChar(p.input[p.pos]) {
		p.pos++
	}
	arg := p.input[astart:p.pos]
	p.skipSpace()
	if p.peek() != ')' {
		return fmt.Errorf("missing ')' after rate(%s", arg)
	}
	p.pos++
	p.emit(instr{op: opRate, idx: p.e.eventSlot(arg)})
	return nil
}

func (p *parser) emit(in instr) { p.e.code = append(p.e.code, in) }

func isIdentStart(c byte) bool {
	return c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' || c == '_'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
