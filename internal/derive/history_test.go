package derive

import (
	"testing"
	"time"

	"repro/internal/tsdb"
)

// synthStore fills a store with cumulative counters for one session on
// a regular tick grid, returning the raw cumulative values per event
// for brute-force checking. Increments vary per tick so rollup windows
// are not trivially uniform.
func synthStore(t *testing.T, ticks int, tickUsec int64) (*tsdb.Store, []int64, []int64, []int64) {
	t.Helper()
	st := tsdb.New(tsdb.Config{MaxBytes: 64 << 20, MaxAge: -1, Rollups: []time.Duration{10 * time.Second}})
	events := []string{"PAPI_TOT_INS", "PAPI_TOT_CYC"}
	var ins, cyc int64
	insAt := make([]int64, 0, ticks)
	cycAt := make([]int64, 0, ticks)
	tsAt := make([]int64, 0, ticks)
	for i := 0; i < ticks; i++ {
		ins += int64(900 + (i%13)*37)
		cyc += int64(2100 + (i%7)*101)
		ts := int64(i+1) * tickUsec
		st.AppendBatch(1, ts, events, []int64{ins, cyc})
		insAt = append(insAt, ins)
		cycAt = append(cycAt, cyc)
		tsAt = append(tsAt, ts)
	}
	return st, insAt, cycAt, tsAt
}

func ipcGroup(t *testing.T) *Group {
	t.Helper()
	g := NewRegistry().Lookup("ipc")
	if g == nil {
		t.Fatal("no ipc group")
	}
	return g
}

func TestEvalHistoryRaw(t *testing.T) {
	const ticks, tickUsec = 120, int64(100_000) // 12s at 100ms
	st, insAt, cycAt, tsAt := synthStore(t, ticks, tickUsec)
	series := st.Query(1, tsdb.Query{From: 0, To: 1 << 62, Step: 0})
	if len(series) != 2 {
		t.Fatalf("query returned %d series", len(series))
	}
	out := EvalHistory([]*Group{ipcGroup(t)}, series)
	byName := map[string]HistorySeries{}
	for _, hs := range out {
		byName[hs.Metric] = hs
	}
	ipc := byName["ipc"]
	if len(ipc.Points) != ticks-1 {
		t.Fatalf("ipc over raw: %d points, want %d (one per consecutive sample pair)", len(ipc.Points), ticks-1)
	}
	for k, pt := range ipc.Points {
		dIns := float64(insAt[k+1] - insAt[k])
		dCyc := float64(cycAt[k+1] - cycAt[k])
		if pt.Start != tsAt[k+1] {
			t.Fatalf("point %d anchored at %d, want closing sample ts %d", k, pt.Start, tsAt[k+1])
		}
		if want := dIns / dCyc; pt.Value != want {
			t.Fatalf("point %d: ipc %g, want %g", k, pt.Value, want)
		}
	}
	// mips uses the real sample spacing.
	mips := byName["mips"]
	for k, pt := range mips.Points {
		dIns := float64(insAt[k+1] - insAt[k])
		if want := dIns / (float64(tickUsec) / 1e6) / 1e6; pt.Value != want {
			t.Fatalf("mips point %d: %g, want %g", k, pt.Value, want)
		}
	}
}

// The raw-vs-rollup equivalence this file's doc comment promises,
// brute-force checked: evaluating over Step-windowed buckets must
// agree exactly with evaluating over the raw cumulative series
// restricted to each window's last sample (the Last anchors). Bucket
// Sum or Sum/Count would fail this test by orders of magnitude —
// cumulative counters telescope through Last only.
func TestEvalHistoryRollupEquivalence(t *testing.T) {
	const ticks, tickUsec = 600, int64(100_000) // 60s at 100ms
	const stepUsec = int64(10_000_000)          // 10s windows → served from the 10s rollup
	st, insAt, cycAt, tsAt := synthStore(t, ticks, tickUsec)

	series := st.Query(1, tsdb.Query{From: 0, To: 1 << 62, Step: stepUsec})
	if len(series) != 2 {
		t.Fatalf("rollup query returned %d series", len(series))
	}
	for _, s := range series {
		if s.Width == 0 {
			t.Fatalf("series %s answered from raw; want the 10s rollup exercised", s.Event)
		}
	}
	out := EvalHistory([]*Group{ipcGroup(t)}, series)
	var ipc, mips HistorySeries
	for _, hs := range out {
		switch hs.Metric {
		case "ipc":
			ipc = hs
		case "mips":
			mips = hs
		}
	}

	// Brute force: anchor = last raw sample strictly inside each step
	// window; per-window cumulative value = raw value at the anchor.
	lastIn := map[int64]int{} // window start → raw index of its last sample
	var winStarts []int64
	for i, ts := range tsAt {
		w := ts - ts%stepUsec
		if _, seen := lastIn[w]; !seen {
			winStarts = append(winStarts, w)
		}
		lastIn[w] = i
	}
	if len(ipc.Points) != len(winStarts)-1 {
		t.Fatalf("ipc over rollup: %d points, want %d", len(ipc.Points), len(winStarts)-1)
	}
	for k := 1; k < len(winStarts); k++ {
		a0, a1 := lastIn[winStarts[k-1]], lastIn[winStarts[k]]
		dIns := float64(insAt[a1] - insAt[a0])
		dCyc := float64(cycAt[a1] - cycAt[a0])
		pt := ipc.Points[k-1]
		if pt.Start != winStarts[k] {
			t.Fatalf("rollup point %d at %d, want window start %d", k-1, pt.Start, winStarts[k])
		}
		if want := dIns / dCyc; pt.Value != want {
			t.Fatalf("rollup ipc point %d: %g, want %g (Last-anchor brute force)", k-1, pt.Value, want)
		}
		// Rate over rollups is window-averaged: delta over the Start
		// spacing (= Step on a full grid).
		dtSec := float64(winStarts[k]-winStarts[k-1]) / 1e6
		if want := dIns / dtSec / 1e6; mips.Points[k-1].Value != want {
			t.Fatalf("rollup mips point %d: %g, want %g", k-1, mips.Points[k-1].Value, want)
		}
	}
}

func TestEvalHistoryCounterReset(t *testing.T) {
	st := tsdb.New(tsdb.Config{MaxBytes: 1 << 20, MaxAge: -1})
	events := []string{"PAPI_TOT_INS", "PAPI_TOT_CYC"}
	rows := [][2]int64{{1000, 2000}, {2000, 4000}, {100, 200}, {1100, 2200}}
	for i, r := range rows {
		st.AppendBatch(1, int64(i+1)*1e6, events, []int64{r[0], r[1]})
	}
	series := st.Query(1, tsdb.Query{From: 0, To: 1 << 62})
	out := EvalHistory([]*Group{ipcGroup(t)}, series)
	for _, hs := range out {
		if hs.Metric != "ipc" {
			continue
		}
		// Interval 2→3 is a reset (values drop) and must be skipped:
		// intervals 1→2 and 3→4 survive.
		if len(hs.Points) != 2 {
			t.Fatalf("ipc points across reset = %d, want 2", len(hs.Points))
		}
		for _, pt := range hs.Points {
			if pt.Value != 0.5 {
				t.Fatalf("ipc = %g, want 0.5", pt.Value)
			}
		}
	}
}

func TestEvalHistoryMissingEvent(t *testing.T) {
	st := tsdb.New(tsdb.Config{MaxBytes: 1 << 20, MaxAge: -1})
	for i := int64(1); i <= 3; i++ {
		st.Append(1, "PAPI_TOT_INS", i*1e6, i*1000)
	}
	series := st.Query(1, tsdb.Query{From: 0, To: 1 << 62})
	if out := EvalHistory([]*Group{ipcGroup(t)}, series); len(out) != 0 {
		t.Fatalf("group evaluated without PAPI_TOT_CYC present: %d series", len(out))
	}
}
