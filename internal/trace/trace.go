// Package trace provides the event-tracing substrate the paper's §3
// describes third-party tools building on PAPI: timestamped
// enter/exit/sample records carrying hardware counter values, kept per
// node-context-thread, mergeable into a single time-ordered log and
// convertible to external formats — the role TAU's tracing layer and
// the Vampir converters play around the C library.
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Kind classifies a trace event.
type Kind uint8

// Trace event kinds.
const (
	KindEnter  Kind = iota // region entry
	KindExit               // region exit
	KindSample             // standalone counter sample
	KindMarker             // user annotation
)

var kindNames = [...]string{"ENTER", "EXIT", "SAMPLE", "MARKER"}

// String returns the kind's wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "UNKNOWN"
}

// Event is one trace record.
type Event struct {
	TimeUsec uint64  `json:"t"`
	Node     int     `json:"node"`
	Thread   int     `json:"thread"`
	Kind     Kind    `json:"kind"`
	Region   string  `json:"region"`
	Values   []int64 `json:"values,omitempty"` // counter values, in metric order
}

// Buffer collects one thread's events in time order.
type Buffer struct {
	Node   int
	Thread int
	Events []Event
}

// NewBuffer creates a buffer for one node-context-thread.
func NewBuffer(node, thread int) *Buffer {
	return &Buffer{Node: node, Thread: thread}
}

// Append records an event, stamping the buffer's node/thread.
func (b *Buffer) Append(t uint64, kind Kind, region string, values []int64) {
	ev := Event{TimeUsec: t, Node: b.Node, Thread: b.Thread, Kind: kind, Region: region}
	if len(values) > 0 {
		ev.Values = append([]int64(nil), values...)
	}
	b.Events = append(b.Events, ev)
}

// Len returns the number of buffered events.
func (b *Buffer) Len() int { return len(b.Events) }

// Merge interleaves per-thread buffers into one time-ordered log,
// breaking timestamp ties by (node, thread, original order) so merges
// are deterministic — the "individual node-context-thread event traces
// that can be merged" of §3.
func Merge(bufs ...*Buffer) []Event {
	total := 0
	for _, b := range bufs {
		total += len(b.Events)
	}
	out := make([]Event, 0, total)
	for _, b := range bufs {
		out = append(out, b.Events...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TimeUsec != out[j].TimeUsec {
			return out[i].TimeUsec < out[j].TimeUsec
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Thread < out[j].Thread
	})
	return out
}

// Validate checks the nesting discipline of a single thread's events:
// every exit matches the innermost open enter.
func Validate(events []Event) error {
	stacks := map[[2]int][]string{}
	for i, ev := range events {
		key := [2]int{ev.Node, ev.Thread}
		switch ev.Kind {
		case KindEnter:
			stacks[key] = append(stacks[key], ev.Region)
		case KindExit:
			st := stacks[key]
			if len(st) == 0 {
				return fmt.Errorf("trace: event %d: exit %q with empty stack", i, ev.Region)
			}
			if st[len(st)-1] != ev.Region {
				return fmt.Errorf("trace: event %d: exit %q but innermost region is %q",
					i, ev.Region, st[len(st)-1])
			}
			stacks[key] = st[:len(st)-1]
		}
	}
	for key, st := range stacks {
		if len(st) != 0 {
			return fmt.Errorf("trace: node %d thread %d: %d regions never exited (innermost %q)",
				key[0], key[1], len(st), st[len(st)-1])
		}
	}
	return nil
}

// WriteJSON writes events as JSON lines.
func WriteJSON(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("trace: writing event %d: %w", i, err)
		}
	}
	return nil
}

// ReadJSON reads a JSON-lines trace back.
func ReadJSON(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var out []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, fmt.Errorf("trace: reading: %w", err)
		}
		out = append(out, ev)
	}
}

// WriteVTF writes the merged trace in a simple Vampir-like text format:
// one line per event, tab-separated, suitable for the timeline viewers
// §3 describes feeding.
func WriteVTF(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# VTF3-like trace: time_usec\tnode\tthread\tkind\tregion\tvalues")
	for i := range events {
		ev := &events[i]
		fmt.Fprintf(bw, "%d\t%d\t%d\t%s\t%s", ev.TimeUsec, ev.Node, ev.Thread, ev.Kind, ev.Region)
		for _, v := range ev.Values {
			fmt.Fprintf(bw, "\t%d", v)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Interval is one region activation reconstructed from a trace.
type Interval struct {
	Node, Thread        int
	Region              string
	StartUsec, EndUsec  uint64
	EnterVals, ExitVals []int64
}

// DurationUsec returns the activation's wall time.
func (iv Interval) DurationUsec() uint64 { return iv.EndUsec - iv.StartUsec }

// Intervals reconstructs region activations from a (merged or single)
// trace, matching enters to exits per thread.
func Intervals(events []Event) ([]Interval, error) {
	stacks := map[[2]int][]int{}
	var out []Interval
	for i, ev := range events {
		key := [2]int{ev.Node, ev.Thread}
		switch ev.Kind {
		case KindEnter:
			stacks[key] = append(stacks[key], i)
		case KindExit:
			st := stacks[key]
			if len(st) == 0 {
				return nil, fmt.Errorf("trace: unmatched exit at event %d", i)
			}
			enter := events[st[len(st)-1]]
			stacks[key] = st[:len(st)-1]
			if enter.Region != ev.Region {
				return nil, fmt.Errorf("trace: exit %q does not match enter %q", ev.Region, enter.Region)
			}
			out = append(out, Interval{
				Node: ev.Node, Thread: ev.Thread, Region: ev.Region,
				StartUsec: enter.TimeUsec, EndUsec: ev.TimeUsec,
				EnterVals: enter.Values, ExitVals: ev.Values,
			})
		}
	}
	return out, nil
}
