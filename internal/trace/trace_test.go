package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestBufferAppendAndMerge(t *testing.T) {
	b0 := NewBuffer(0, 0)
	b1 := NewBuffer(0, 1)
	b0.Append(10, KindEnter, "main", []int64{1})
	b0.Append(40, KindExit, "main", []int64{5})
	b1.Append(20, KindEnter, "work", nil)
	b1.Append(30, KindExit, "work", nil)
	merged := Merge(b0, b1)
	if len(merged) != 4 {
		t.Fatalf("merged %d events", len(merged))
	}
	times := []uint64{10, 20, 30, 40}
	for i, ev := range merged {
		if ev.TimeUsec != times[i] {
			t.Errorf("event %d at %d, want %d", i, ev.TimeUsec, times[i])
		}
	}
	if b0.Len() != 2 {
		t.Error("buffer length wrong")
	}
}

func TestMergeTieBreaking(t *testing.T) {
	b0 := NewBuffer(1, 0)
	b1 := NewBuffer(0, 0)
	b0.Append(5, KindMarker, "a", nil)
	b1.Append(5, KindMarker, "b", nil)
	merged := Merge(b0, b1)
	if merged[0].Node != 0 || merged[1].Node != 1 {
		t.Error("ties must order by node")
	}
}

func TestValidateNesting(t *testing.T) {
	good := []Event{
		{TimeUsec: 1, Kind: KindEnter, Region: "a"},
		{TimeUsec: 2, Kind: KindEnter, Region: "b"},
		{TimeUsec: 3, Kind: KindExit, Region: "b"},
		{TimeUsec: 4, Kind: KindExit, Region: "a"},
	}
	if err := Validate(good); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	bad := []Event{
		{Kind: KindEnter, Region: "a"},
		{Kind: KindExit, Region: "b"},
	}
	if err := Validate(bad); err == nil {
		t.Error("mismatched exit accepted")
	}
	unclosed := []Event{{Kind: KindEnter, Region: "a"}}
	if err := Validate(unclosed); err == nil {
		t.Error("unclosed region accepted")
	}
	orphan := []Event{{Kind: KindExit, Region: "a"}}
	if err := Validate(orphan); err == nil {
		t.Error("orphan exit accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	events := []Event{
		{TimeUsec: 1, Node: 0, Thread: 2, Kind: KindEnter, Region: "solve", Values: []int64{10, 20}},
		{TimeUsec: 9, Node: 0, Thread: 2, Kind: KindExit, Region: "solve", Values: []int64{30, 40}},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Region != "solve" || back[1].Values[1] != 40 {
		t.Errorf("round trip mangled: %+v", back)
	}
}

func TestVTFFormat(t *testing.T) {
	events := []Event{
		{TimeUsec: 7, Node: 1, Thread: 0, Kind: KindEnter, Region: "io", Values: []int64{3}},
	}
	var buf bytes.Buffer
	if err := WriteVTF(&buf, events); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "7\t1\t0\tENTER\tio\t3") {
		t.Errorf("VTF output:\n%s", out)
	}
	if !strings.HasPrefix(out, "#") {
		t.Error("missing header comment")
	}
}

func TestIntervals(t *testing.T) {
	events := []Event{
		{TimeUsec: 10, Kind: KindEnter, Region: "outer", Values: []int64{100}},
		{TimeUsec: 20, Kind: KindEnter, Region: "inner"},
		{TimeUsec: 35, Kind: KindExit, Region: "inner"},
		{TimeUsec: 50, Kind: KindExit, Region: "outer", Values: []int64{900}},
	}
	ivs, err := Intervals(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 2 {
		t.Fatalf("%d intervals", len(ivs))
	}
	// Inner closes first.
	if ivs[0].Region != "inner" || ivs[0].DurationUsec() != 15 {
		t.Errorf("inner interval: %+v", ivs[0])
	}
	if ivs[1].Region != "outer" || ivs[1].DurationUsec() != 40 {
		t.Errorf("outer interval: %+v", ivs[1])
	}
	if ivs[1].EnterVals[0] != 100 || ivs[1].ExitVals[0] != 900 {
		t.Error("interval counter values lost")
	}
	if _, err := Intervals([]Event{{Kind: KindExit, Region: "x"}}); err == nil {
		t.Error("unmatched exit accepted")
	}
}

func TestMergePreservesAndOrdersEverything(t *testing.T) {
	// Property: merging K buffers keeps every event exactly once and
	// produces a non-decreasing time sequence.
	f := func(times [][]uint16) bool {
		if len(times) > 6 {
			times = times[:6]
		}
		var bufs []*Buffer
		total := 0
		for ti, ts := range times {
			b := NewBuffer(0, ti)
			// Per-thread events must be appended in time order.
			sorted := append([]uint16(nil), ts...)
			for i := 1; i < len(sorted); i++ {
				for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
					sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
				}
			}
			for _, tt := range sorted {
				b.Append(uint64(tt), KindMarker, "m", nil)
				total++
			}
			bufs = append(bufs, b)
		}
		merged := Merge(bufs...)
		if len(merged) != total {
			return false
		}
		for i := 1; i < len(merged); i++ {
			if merged[i].TimeUsec < merged[i-1].TimeUsec {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
