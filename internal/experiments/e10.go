package experiments

import (
	"repro/papi"
)

// E10Row is one platform's access-cost measurement.
type E10Row struct {
	Platform string
	Start    uint64
	Read     uint64
	Stop     uint64
	Reset    uint64
}

// E10Result is the papi_cost utility: the cycle cost of each counter
// operation per substrate, reflecting each platform's native access
// mechanism (§2: register-level operations on the T3E, a kernel patch
// on Linux/x86, vendor libraries elsewhere).
type E10Result struct {
	Rows []E10Row
}

// E10 measures the operations with the simulator's cycle oracle so the
// measurement itself adds nothing.
func E10() (*E10Result, error) {
	res := &E10Result{}
	for _, platform := range papi.Platforms() {
		sys, err := papi.Init(papi.Options{Platform: platform})
		if err != nil {
			return nil, err
		}
		th := sys.Main()
		es := th.NewEventSet()
		if err := es.AddAll(papi.FP_INS, papi.TOT_CYC); err != nil {
			return nil, err
		}
		cpu := th.CPU()
		vals := make([]int64, 2)
		row := E10Row{Platform: platform}

		c0 := cpu.Cycles()
		if err := es.Start(); err != nil {
			return nil, err
		}
		row.Start = cpu.Cycles() - c0

		c0 = cpu.Cycles()
		if err := es.Read(vals); err != nil {
			return nil, err
		}
		row.Read = cpu.Cycles() - c0

		c0 = cpu.Cycles()
		if err := es.Reset(); err != nil {
			return nil, err
		}
		row.Reset = cpu.Cycles() - c0

		c0 = cpu.Cycles()
		if err := es.Stop(vals); err != nil {
			return nil, err
		}
		row.Stop = cpu.Cycles() - c0

		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (r *E10Result) table() *Table {
	t := &Table{
		ID:      "E10",
		Title:   "papi_cost: cycles per counter operation",
		Claim:   "substrates use the most efficient native interface available on each platform (§2)",
		Columns: []string{"platform", "start", "read", "reset", "stop"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Platform, u64(row.Start), u64(row.Read), u64(row.Reset), u64(row.Stop))
	}
	return t
}
