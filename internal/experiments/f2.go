package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"repro/papi"
	"repro/tools/dynaprof"
	"repro/tools/perfometer"
	"repro/workload"
)

// F2Result regenerates Figure 2: perfometer's real-time FLOP-rate
// trace of a running application, here a phased program whose memory-
// bound middle phase shows up as the visible bottleneck dip. The
// application is attached through dynaprof's perfometer probe, so the
// section (color) labels change at function boundaries without source
// modification — exactly the workflow §2 describes.
type F2Result struct {
	Front     *perfometer.Frontend
	Sparkline string
	Buckets   []f2Bucket
}

type f2Bucket struct {
	usec    uint64
	mflops  float64
	section string
}

// F2 runs the phased program under a perfometer backend and collects
// the trace a frontend would display.
func F2() (*F2Result, error) {
	sys, err := papi.Init(papi.Options{Platform: papi.PlatformAIXPower3})
	if err != nil {
		return nil, err
	}
	th := sys.Main()
	exe, err := dynaprof.NewExecutable("app", "main",
		&dynaprof.Func{Name: "main", Body: []dynaprof.Stmt{
			dynaprof.CallStmt{Callee: "compute_a"},
			dynaprof.CallStmt{Callee: "gather"},
			dynaprof.CallStmt{Callee: "compute_b"},
		}},
		&dynaprof.Func{Name: "compute_a", Body: []dynaprof.Stmt{
			dynaprof.RunStmt{Prog: workload.MatMul(workload.MatMulConfig{N: 56, UseFMA: true})},
		}},
		&dynaprof.Func{Name: "gather", Body: []dynaprof.Stmt{
			dynaprof.RunStmt{Prog: workload.PointerChase(workload.ChaseConfig{Nodes: 1 << 14, Steps: 400_000})},
		}},
		&dynaprof.Func{Name: "compute_b", Body: []dynaprof.Stmt{
			dynaprof.RunStmt{Prog: workload.MatMul(workload.MatMulConfig{N: 56, UseFMA: true})},
		}},
	)
	if err != nil {
		return nil, err
	}
	backend := perfometer.NewBackend(th, papi.FP_OPS, 150_000)
	prof := dynaprof.Attach(exe)
	if err := prof.Instrument("*", &perfometer.SectionProbe{Backend: backend}); err != nil {
		return nil, err
	}
	var wire bytes.Buffer
	if err := backend.RunInstrumented(&wire, func() error { return prof.Run(th) }); err != nil {
		return nil, err
	}
	front := &perfometer.Frontend{}
	if err := front.Consume(bytes.NewReader(wire.Bytes())); err != nil {
		return nil, err
	}
	res := &F2Result{Front: front, Sparkline: front.Sparkline(64)}
	// Downsample the trace into ~16 display buckets.
	pts := front.Points
	const buckets = 16
	for i := 0; i < buckets && len(pts) > 0; i++ {
		lo, hi := i*len(pts)/buckets, (i+1)*len(pts)/buckets
		if hi == lo {
			hi = lo + 1
		}
		var sum float64
		for _, p := range pts[lo:hi] {
			sum += p.Rate
		}
		res.Buckets = append(res.Buckets, f2Bucket{
			usec:    pts[hi-1].RealUsec,
			mflops:  sum / float64(hi-lo) / 1e6,
			section: pts[hi-1].Section,
		})
	}
	return res, nil
}

func (r *F2Result) table() *Table {
	t := &Table{
		ID:      "F2",
		Title:   "perfometer: real-time FLOP-rate trace of a phased application",
		Claim:   "perfometer provides a runtime trace of a user-selected PAPI metric (Figure 2)",
		Columns: []string{"t (usec)", "MFLOP/s", "section"},
	}
	for _, b := range r.Buckets {
		bar := strings.Repeat("#", int(b.mflops/8)+1)
		t.AddRow(u64(b.usec), f2(b.mflops), fmt.Sprintf("%-10s %s", b.section, bar))
	}
	t.Notes = append(t.Notes,
		"trace: "+r.Sparkline,
		"the dip is the memory-bound gather phase — the bottleneck perfometer exists to expose")
	return t
}
