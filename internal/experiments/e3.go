package experiments

import (
	"fmt"

	"repro/internal/hwsim"
	"repro/papi"
	"repro/workload"
)

// E3Row is one (platform, granularity) overhead measurement.
type E3Row struct {
	Platform    string
	ReadCost    uint64 // the substrate's per-read cycle cost
	Granularity int    // instructions between counter reads
	Overhead    float64
}

// E3Result reproduces §4's observation that "the overhead of library
// calls to read the hardware counters can be excessive if the routines
// are called frequently — for example, on entry and exit of a small
// subroutine or basic block within a tight loop".
type E3Result struct {
	Rows []E3Row
}

// E3 sweeps instrumentation granularity across three substrates with
// very different read costs (register access vs vendor library vs
// kernel syscall).
func E3() (*E3Result, error) {
	res := &E3Result{}
	const totalIters = 40_000
	grains := []int{48, 240, 1200, 6000, 30_000}
	platforms := []string{papi.PlatformCrayT3E, papi.PlatformAIXPower3, papi.PlatformLinuxX86}
	for _, platform := range platforms {
		// Baseline: run without any reads.
		base, err := e3Run(platform, totalIters, 0)
		if err != nil {
			return nil, err
		}
		for _, g := range grains {
			mon, err := e3Run(platform, totalIters, g)
			if err != nil {
				return nil, err
			}
			sys, _ := papi.Init(papi.Options{Platform: platform})
			res.Rows = append(res.Rows, E3Row{
				Platform:    platform,
				ReadCost:    sys.Arch().ReadCost,
				Granularity: g,
				Overhead:    float64(mon-base) / float64(base),
			})
		}
	}
	return res, nil
}

// e3Run executes the triad, reading the counters every `grain`
// instructions (0 = never), and returns the cycles consumed.
func e3Run(platform string, iters, grain int) (uint64, error) {
	sys, err := papi.Init(papi.Options{Platform: platform})
	if err != nil {
		return 0, err
	}
	th := sys.Main()
	es := th.NewEventSet()
	if err := es.AddAll(papi.FP_INS, papi.TOT_CYC); err != nil {
		return 0, err
	}
	prog := workload.Triad(workload.TriadConfig{N: 4096, Reps: (iters + 4095) / 4096})
	start := th.CPU().Cycles()
	if err := es.Start(); err != nil {
		return 0, err
	}
	vals := make([]int64, 2)
	if grain <= 0 {
		th.Run(prog)
	} else {
		buf := make([]hwsim.Instr, grain)
		for {
			n := prog.Next(buf)
			if n == 0 {
				break
			}
			th.Exec(buf[:n])
			if err := es.Read(vals); err != nil {
				return 0, err
			}
		}
	}
	if err := es.Stop(vals); err != nil {
		return 0, err
	}
	return th.CPU().Cycles() - start, nil
}

func (r *E3Result) table() *Table {
	t := &Table{
		ID:      "E3",
		Title:   "per-read overhead vs instrumentation granularity",
		Claim:   "frequent counter reads (small routines, tight loops) impose excessive overhead (§4)",
		Columns: []string{"platform", "read cost (cyc)", "instrs/read", "overhead"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Platform, u64(row.ReadCost), fmt.Sprintf("%d", row.Granularity), pct(row.Overhead))
	}
	t.Notes = append(t.Notes, "the Cray T3E's register-level access is why its fine-grained overhead stays small")
	return t
}
