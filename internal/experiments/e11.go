package experiments

import (
	"fmt"

	"repro/internal/memsim"
	"repro/papi"
)

// E11Result exercises every memory-utilization item §5 enumerates for
// PAPI 3 against a scripted allocation scenario with a known answer.
type E11Result struct {
	Node   papi.MemNodeInfo
	Proc   papi.MemProcessInfo
	Thread papi.MemThreadInfo
	Local  []uint64
	ObjA   papi.MemObjectInfo
	rows   [][]string
}

// E11 allocates three matrices across NUMA domains on a small node,
// forces a swap, frees one, and reads every introspection call back.
func E11() (*E11Result, error) {
	sys, err := papi.Init(papi.Options{
		Platform: papi.PlatformAIXPower3,
		MemNode:  memsim.NodeConfig{TotalBytes: 64 << 20, SwapBytes: 128 << 20, PageBytes: 4096, Domains: 2},
	})
	if err != nil {
		return nil, err
	}
	proc := sys.Process()
	if _, err := proc.Alloc("matrix_a", 24<<20, 0); err != nil {
		return nil, err
	}
	if _, err := proc.Alloc("matrix_b", 24<<20, 1); err != nil {
		return nil, err
	}
	// Third matrix exceeds physical memory: something swaps out.
	if _, err := proc.Alloc("matrix_c", 24<<20, 0); err != nil {
		return nil, err
	}
	if err := proc.Free("matrix_b"); err != nil {
		return nil, err
	}
	// Thread-private scratch.
	if _, err := sys.Main().Arena().Alloc(1 << 20); err != nil {
		return nil, err
	}

	res := &E11Result{
		Node:   sys.MemNodeInfo(),
		Proc:   sys.MemProcessInfo(),
		Thread: sys.Main().MemThreadInfo(),
		Local:  sys.MemLocality(),
	}
	objA, ok := sys.MemObjectInfo("matrix_a")
	if !ok {
		return nil, fmt.Errorf("E11: matrix_a vanished")
	}
	res.ObjA = objA

	add := func(item, value string) { res.rows = append(res.rows, []string{item, value}) }
	add("memory available on node", fmt.Sprintf("%d MiB", res.Node.AvailBytes>>20))
	add("node total / used / high-water", fmt.Sprintf("%d / %d / %d MiB",
		res.Node.TotalBytes>>20, res.Node.UsedBytes>>20, res.Node.HighWaterBytes>>20))
	add("memory used by process (high-water)", fmt.Sprintf("%d (%d) MiB",
		res.Proc.UsedBytes>>20, res.Proc.HighWaterBytes>>20))
	add("memory used by thread (high-water)", fmt.Sprintf("%d (%d) KiB",
		res.Thread.UsedBytes>>10, res.Thread.HighWaterBytes>>10))
	add("disk swapping by process", fmt.Sprintf("%d swap-outs, %d swap-ins, %d MiB on swap",
		res.Proc.SwapOuts, res.Proc.SwapIns, res.Proc.SwappedBytes>>20))
	loc := ""
	for d, b := range res.Local {
		if d > 0 {
			loc += ", "
		}
		loc += fmt.Sprintf("domain %d: %d MiB", d, b>>20)
	}
	add("process/memory locality", loc)
	add("location of object matrix_a", fmt.Sprintf("[%#x,%#x) domain %d resident=%v",
		res.ObjA.Addr, res.ObjA.EndAddr, res.ObjA.Domain, res.ObjA.Resident))
	return res, nil
}

func (r *E11Result) table() *Table {
	t := &Table{
		ID:      "E11",
		Title:   "PAPI 3 memory utilization extensions",
		Claim:   "planned v3 extensions: node memory, high-water marks, per-process/thread usage, swapping, locality, object location (§5)",
		Columns: []string{"item", "value"},
	}
	t.Rows = r.rows
	return t
}
