package experiments

import (
	"fmt"

	"repro/papi"
	"repro/workload"
)

// The two ablations DESIGN.md calls out: the design knobs whose values
// the library bakes in (multiplex slice length, hardware sampling
// period) each trade measurement overhead against estimate quality.
// These sweeps justify the shipped defaults.

// A1Row is one multiplex-interval point.
type A1Row struct {
	IntervalCycles uint64
	Overhead       float64 // vs unmonitored run
	FPRelErr       float64 // FP_INS estimate vs analytic truth
	Unmeasured     int
}

// A1Result sweeps the multiplex slice length: short slices rotate
// often (fast convergence) but pay read+switch costs every slice; long
// slices are cheap but risk never scheduling an event.
type A1Result struct {
	Rows []A1Row
}

// A1 runs the multiplex-interval ablation.
func A1() (*A1Result, error) {
	res := &A1Result{}
	// Deliberately calibration-length, not huge: the point of the
	// sweep is that slice length must be chosen relative to run
	// length, and a 1.6M-cycle slice starves events on this run.
	prog := workload.MatMul(workload.MatMulConfig{N: 48})
	truth := float64(prog.Expected().FPInstrs())
	evs := []papi.Event{papi.TOT_CYC, papi.TOT_INS, papi.FP_INS, papi.LST_INS,
		papi.L1_DCM, papi.L2_TCM, papi.BR_INS, papi.TLB_DM}

	base, err := e1Baseline(papi.PlatformLinuxX86, prog)
	if err != nil {
		return nil, err
	}
	for _, interval := range []uint64{10_000, 25_000, 50_000, 100_000, 400_000, 1_600_000} {
		sys, err := papi.Init(papi.Options{Platform: papi.PlatformLinuxX86})
		if err != nil {
			return nil, err
		}
		th := sys.Main()
		es := th.NewEventSet()
		if err := es.SetMultiplex(interval); err != nil {
			return nil, err
		}
		if err := es.AddAll(evs...); err != nil {
			return nil, err
		}
		prog.Reset()
		start := th.CPU().Cycles()
		if err := es.Start(); err != nil {
			return nil, err
		}
		th.Run(prog)
		vals := make([]int64, len(evs))
		if err := es.Stop(vals); err != nil {
			return nil, err
		}
		cycles := th.CPU().Cycles() - start
		row := A1Row{
			IntervalCycles: interval,
			Overhead:       float64(cycles-base) / float64(base),
			FPRelErr:       relErr(float64(vals[2]), truth),
		}
		for _, v := range vals {
			if v == 0 {
				row.Unmeasured++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (r *A1Result) table() *Table {
	t := &Table{
		ID:      "A1",
		Title:   "ablation: multiplex slice length (8 events, 2 counters, matmul N=48)",
		Claim:   "design choice: slice length trades switching overhead against estimate convergence",
		Columns: []string{"slice (cycles)", "overhead", "FP_INS rel.err", "unmeasured"},
	}
	for _, row := range r.Rows {
		t.AddRow(u64(row.IntervalCycles), pct(row.Overhead), pct(row.FPRelErr), fmt.Sprintf("%d", row.Unmeasured))
	}
	t.Notes = append(t.Notes, "the shipped default (200k cycles) sits where overhead is ~1-3% and all events still converge")
	return t
}

// A2Row is one sampling-period point.
type A2Row struct {
	Period   int
	Overhead float64
	RelErr   float64
}

// A2Result sweeps the hardware sampling period on the DADD substrate:
// denser sampling converges faster but drains the sample buffer more
// often.
type A2Result struct {
	Rows []A2Row
}

// A2 runs the sampling-period ablation.
func A2() (*A2Result, error) {
	res := &A2Result{}
	prog := workload.MatMul(workload.MatMulConfig{N: 72})
	expected := float64(prog.Expected().FLOPs())
	base, err := e1Baseline(papi.PlatformTru64Alpha, prog)
	if err != nil {
		return nil, err
	}
	for _, period := range []int{64, 128, 256, 512, 1024, 4096} {
		sys, err := papi.Init(papi.Options{Platform: papi.PlatformTru64Alpha, SamplingPeriod: period})
		if err != nil {
			return nil, err
		}
		th := sys.Main()
		es := th.NewEventSet()
		if err := es.Add(papi.FP_OPS); err != nil {
			return nil, err
		}
		prog.Reset()
		start := th.CPU().Cycles()
		if err := es.Start(); err != nil {
			return nil, err
		}
		th.Run(prog)
		vals := make([]int64, 1)
		if err := es.Stop(vals); err != nil {
			return nil, err
		}
		cycles := th.CPU().Cycles() - start
		res.Rows = append(res.Rows, A2Row{
			Period:   period,
			Overhead: float64(cycles-base) / float64(base),
			RelErr:   relErr(float64(vals[0]), expected),
		})
	}
	return res, nil
}

func (r *A2Result) table() *Table {
	t := &Table{
		ID:      "A2",
		Title:   "ablation: hardware sampling period (tru64-alpha DADD, matmul N=72)",
		Claim:   "design choice: sampling density trades drain-interrupt overhead against estimate error",
		Columns: []string{"period (instrs)", "overhead", "FP_OPS rel.err"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", row.Period), pct(row.Overhead), pct(row.RelErr))
	}
	t.Notes = append(t.Notes, "the DADD default (512) keeps overhead in the paper's 1-2% band at sub-2% error on calibration-length runs")
	return t
}
