package experiments

import (
	"strings"
	"testing"

	"repro/papi"
)

// The tests assert the *shape* of each experiment against the paper's
// claims: who wins, by roughly what factor, where crossovers fall.

func TestE1Shape(t *testing.T) {
	r, err := E1()
	if err != nil {
		t.Fatal(err)
	}
	var alphaBig, x86Big *E1Row
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.N == 96 {
			if row.Platform == papi.PlatformTru64Alpha {
				alphaBig = row
			} else {
				x86Big = row
			}
		}
		if row.Platform == papi.PlatformLinuxX86 && row.RelErr > 0.001 {
			t.Errorf("direct counting must be exact; N=%d err %.4f", row.N, row.RelErr)
		}
	}
	if alphaBig == nil || x86Big == nil {
		t.Fatal("missing rows")
	}
	// Sampling converges on the long run...
	if alphaBig.RelErr > 0.03 {
		t.Errorf("alpha N=96 rel err %.4f, want < 3%%", alphaBig.RelErr)
	}
	// ...at 1-2(≤4)% overhead, versus >5x more for direct counting
	// with interrupt profiling.
	if alphaBig.Overhead > 0.04 {
		t.Errorf("alpha overhead %.4f, want ~1-2%%", alphaBig.Overhead)
	}
	if x86Big.Overhead < 0.10 {
		t.Errorf("x86 profiling overhead %.4f, want substantial (paper: up to 30%%)", x86Big.Overhead)
	}
	if x86Big.Overhead < 5*alphaBig.Overhead {
		t.Errorf("direct-counting overhead (%.3f) should dwarf sampling overhead (%.3f)",
			x86Big.Overhead, alphaBig.Overhead)
	}
}

func TestE2Shape(t *testing.T) {
	r, err := E2()
	if err != nil {
		t.Fatal(err)
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	// The short run is erroneous: unmeasured events or large error.
	if first.Unmeasured == 0 && first.MaxRelErr < 0.30 {
		t.Errorf("short run (N=%d, %.2f rotations) looks fine: unmeasured=%d max err %.3f",
			first.N, first.Rotations, first.Unmeasured, first.MaxRelErr)
	}
	// The long run converges.
	if last.Unmeasured != 0 {
		t.Errorf("long run left %d events unmeasured", last.Unmeasured)
	}
	// Convergence is what the paper claims — the residual comes from
	// bursty events (L2/TLB) whose activity correlates with the slice
	// schedule; it keeps shrinking with runtime.
	if last.MeanRelErr > 0.08 {
		t.Errorf("long run mean err %.4f, want < 8%%", last.MeanRelErr)
	}
	if last.MeanRelErr >= first.MeanRelErr && first.Unmeasured == 0 {
		t.Error("error should shrink with runtime")
	}
}

func TestE3Shape(t *testing.T) {
	r, err := E3()
	if err != nil {
		t.Fatal(err)
	}
	byPlat := map[string][]E3Row{}
	for _, row := range r.Rows {
		byPlat[row.Platform] = append(byPlat[row.Platform], row)
	}
	for plat, rows := range byPlat {
		// Overhead decreases monotonically with granularity.
		for i := 1; i < len(rows); i++ {
			if rows[i].Overhead > rows[i-1].Overhead+0.01 {
				t.Errorf("%s: overhead rose with coarser granularity: %v then %v",
					plat, rows[i-1], rows[i])
			}
		}
	}
	// Fine-grained instrumentation is excessive on syscall substrates…
	if byPlat[papi.PlatformLinuxX86][0].Overhead < 1.0 {
		t.Errorf("x86 at 48 instrs/read: overhead %.2f, want > 100%%",
			byPlat[papi.PlatformLinuxX86][0].Overhead)
	}
	// …but stays moderate with register-level access.
	if byPlat[papi.PlatformCrayT3E][0].Overhead > 0.5 {
		t.Errorf("t3e at 48 instrs/read: overhead %.2f, want modest", byPlat[papi.PlatformCrayT3E][0].Overhead)
	}
}

func TestE4Shape(t *testing.T) {
	r, err := E4()
	if err != nil {
		t.Fatal(err)
	}
	recoveredSomewhere := false
	for _, row := range r.Rows {
		if row.OptimalOK < row.GreedyOK {
			t.Errorf("%s: matching mapped fewer sets than first-fit", row.Platform)
		}
		if row.MeanMapOpt < row.MeanMapGreedy {
			t.Errorf("%s: matching mapped fewer events on average", row.Platform)
		}
		if row.Recovered > 0 {
			recoveredSomewhere = true
		}
	}
	if !recoveredSomewhere {
		t.Error("optimal matching never beat first-fit; constraint tables too lax")
	}
	if !strings.Contains(r.WeightDemo, "FLOPS (weight 5) wins") {
		t.Errorf("weight demo: %s", r.WeightDemo)
	}
}

func TestE5Shape(t *testing.T) {
	r, err := E5()
	if err != nil {
		t.Fatal(err)
	}
	byPlat := map[string]E5Row{}
	for _, row := range r.Rows {
		byPlat[row.Platform] = row
		if row.Hits == 0 {
			t.Errorf("%s: no profile hits", row.Platform)
		}
	}
	// Exact mechanisms: in-order interrupts and hardware sampling.
	for _, p := range []string{papi.PlatformCrayT3E, papi.PlatformTru64Alpha, papi.PlatformLinuxIA64} {
		if byPlat[p].PctCorrect < 0.98 {
			t.Errorf("%s: only %.1f%% correct attribution, want ~100%%", p, byPlat[p].PctCorrect*100)
		}
	}
	// Skidding OOO interrupts: badly wrong.
	for _, p := range []string{papi.PlatformLinuxX86, papi.PlatformIRIXMips} {
		if byPlat[p].PctCorrect > 0.50 {
			t.Errorf("%s: %.1f%% correct despite skid, want low", p, byPlat[p].PctCorrect*100)
		}
	}
}

func TestE6Shape(t *testing.T) {
	r, err := E6()
	if err != nil {
		t.Fatal(err)
	}
	byPlat := map[string]E6Row{}
	for _, row := range r.Rows {
		byPlat[row.Platform] = row
	}
	p3 := byPlat[papi.PlatformAIXPower3]
	x86 := byPlat[papi.PlatformLinuxX86]
	// POWER3 over-counts by the rounding instructions (kernel has one
	// frsp per 2 arith FP: 50% over).
	if p3.OverPct < 0.40 || p3.OverPct > 0.60 {
		t.Errorf("power3 over-count %.2f, want ~50%%", p3.OverPct)
	}
	if uint64(p3.Corrected) != p3.Expected {
		t.Errorf("power3 corrected %d != expected %d", p3.Corrected, p3.Expected)
	}
	if uint64(x86.Measured) != x86.Expected {
		t.Errorf("x86 measured %d != expected %d", x86.Measured, x86.Expected)
	}
}

func TestE7Shape(t *testing.T) {
	r, err := E7()
	if err != nil {
		t.Fatal(err)
	}
	n3 := int64(r.N * r.N * r.N)
	for _, row := range r.Rows {
		if row.FMA != n3 {
			t.Errorf("%s: FMA_INS %d, want %d", row.Platform, row.FMA, n3)
		}
		if row.FPOps != 2*n3 {
			t.Errorf("%s: FP_OPS %d, want %d (FMA x2)", row.Platform, row.FPOps, 2*n3)
		}
		if row.Ratio < 1.99 || row.Ratio > 2.01 {
			t.Errorf("%s: ratio %.3f, want 2.0", row.Platform, row.Ratio)
		}
		if row.FPIns != n3 {
			t.Errorf("%s: FP_INS %d, want %d (FMA is one instruction)", row.Platform, row.FPIns, n3)
		}
		if row.MFLOPS <= 0 {
			t.Errorf("%s: MFLOPS %.2f", row.Platform, row.MFLOPS)
		}
	}
}

func TestE8Shape(t *testing.T) {
	r, err := E8()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(papi.Platforms()) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.ResolutionUsec <= 0 || row.ResolutionUsec > 0.01 {
			t.Errorf("%s: resolution %.5f usec implausible", row.Platform, row.ResolutionUsec)
		}
		// Timers are the cheap path: never above a counter read, and
		// far below it wherever reads go through a syscall or library.
		if row.CostCycles > row.ReadCostCycles {
			t.Errorf("%s: timer cost %d above read cost %d", row.Platform, row.CostCycles, row.ReadCostCycles)
		}
		if row.ReadCostCycles >= 900 && row.CostCycles*10 > row.ReadCostCycles {
			t.Errorf("%s: timer cost %d not ≪ read cost %d", row.Platform, row.CostCycles, row.ReadCostCycles)
		}
		// 30% interference: real/virt ≈ 1.3.
		if row.RealOverVirt < 1.2 || row.RealOverVirt > 1.4 {
			t.Errorf("%s: real/virt %.3f, want ~1.3", row.Platform, row.RealOverVirt)
		}
	}
}

func TestE9Shape(t *testing.T) {
	r, err := E9()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatal("need both modes")
	}
	v3, v2 := r.Rows[0], r.Rows[1]
	if v2.Mode != "v2 overlapping" || v3.Mode != "v3 exclusive" {
		t.Fatalf("row order: %+v", r.Rows)
	}
	if v2.FootprintBytes <= v3.FootprintBytes {
		t.Errorf("v2 footprint %d should exceed v3 %d", v2.FootprintBytes, v3.FootprintBytes)
	}
	if v2.MgmtCycles <= v3.MgmtCycles {
		t.Errorf("v2 management cycles %d should exceed v3 %d", v2.MgmtCycles, v3.MgmtCycles)
	}
}

func TestE10Shape(t *testing.T) {
	r, err := E10()
	if err != nil {
		t.Fatal(err)
	}
	costs := map[string]E10Row{}
	for _, row := range r.Rows {
		costs[row.Platform] = row
		if row.Start == 0 || row.Read == 0 || row.Stop == 0 {
			t.Errorf("%s: zero-cost operation %+v", row.Platform, row)
		}
	}
	t3e, x86 := costs[papi.PlatformCrayT3E], costs[papi.PlatformLinuxX86]
	if t3e.Read*50 > x86.Read {
		t.Errorf("t3e read (%d) should be ≥50x cheaper than x86 syscall read (%d)", t3e.Read, x86.Read)
	}
}

func TestE11Shape(t *testing.T) {
	r, err := E11()
	if err != nil {
		t.Fatal(err)
	}
	if r.Proc.SwapOuts == 0 {
		t.Error("scenario should have forced a swap-out")
	}
	if r.Node.HighWaterBytes < r.Node.UsedBytes {
		t.Error("high water below current usage")
	}
	if r.Proc.HighWaterBytes < r.Proc.UsedBytes {
		t.Error("process high water below current usage")
	}
	if r.Thread.UsedBytes == 0 {
		t.Error("thread arena empty")
	}
	if r.ObjA.Bytes != 24<<20 {
		t.Errorf("matrix_a size %d", r.ObjA.Bytes)
	}
	sumLoc := uint64(0)
	for _, b := range r.Local {
		sumLoc += b
	}
	if sumLoc != r.Proc.UsedBytes {
		t.Errorf("locality sums to %d, process resident %d", sumLoc, r.Proc.UsedBytes)
	}
	if len(r.rows) < 7 {
		t.Errorf("table should cover all seven §5 items, has %d", len(r.rows))
	}
}

func TestF2Shape(t *testing.T) {
	r, err := F2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Front.Points) < 12 {
		t.Fatalf("only %d trace points", len(r.Front.Points))
	}
	rates := r.Front.SectionMeanRate()
	if rates["compute_a"] <= rates["gather"] || rates["compute_b"] <= rates["gather"] {
		t.Errorf("FLOP rate must dip in the gather phase: %v", rates)
	}
	secs := strings.Join(r.Front.Sections(), ",")
	for _, want := range []string{"compute_a", "gather", "compute_b"} {
		if !strings.Contains(secs, want) {
			t.Errorf("sections %q missing %s", secs, want)
		}
	}
	if r.Sparkline == "" {
		t.Error("no sparkline")
	}
}

func TestAllRunnersProduceTables(t *testing.T) {
	for _, runner := range All() {
		tab, err := runner.Run()
		if err != nil {
			t.Errorf("%s: %v", runner.ID, err)
			continue
		}
		if tab.ID != runner.ID {
			t.Errorf("runner %s produced table %s", runner.ID, tab.ID)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", runner.ID)
		}
		if !strings.Contains(tab.String(), tab.Title) {
			t.Errorf("%s: rendering broken", runner.ID)
		}
	}
}

func TestA1Shape(t *testing.T) {
	r, err := A1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 4 {
		t.Fatal("need a sweep")
	}
	// Overhead decreases monotonically with slice length.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Overhead > r.Rows[i-1].Overhead+0.005 {
			t.Errorf("overhead rose with longer slices: %+v -> %+v", r.Rows[i-1], r.Rows[i])
		}
	}
	// The extreme long slice leaves events unmeasured or badly off.
	last := r.Rows[len(r.Rows)-1]
	if last.Unmeasured == 0 && last.FPRelErr < 0.10 {
		t.Errorf("1.6M-cycle slices should hurt: %+v", last)
	}
	// A middle setting is both cheap and accurate.
	mid := r.Rows[2] // 50k
	if mid.Overhead > 0.25 || mid.FPRelErr > 0.10 || mid.Unmeasured > 0 {
		t.Errorf("mid interval should be a good tradeoff: %+v", mid)
	}
}

func TestA2Shape(t *testing.T) {
	r, err := A2()
	if err != nil {
		t.Fatal(err)
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	// Denser sampling costs more and errs less; sparser the reverse.
	if first.Overhead <= last.Overhead {
		t.Errorf("period 64 overhead %.4f should exceed period 4096 %.4f", first.Overhead, last.Overhead)
	}
	if first.RelErr > 0.02 {
		t.Errorf("densest sampling err %.4f, want < 2%%", first.RelErr)
	}
	if last.RelErr < first.RelErr {
		t.Errorf("sparsest sampling err %.4f should exceed densest %.4f", last.RelErr, first.RelErr)
	}
}

func TestE12Shape(t *testing.T) {
	r, err := E12()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]E12Row{}
	for _, row := range r.Rows {
		rows[row.Region] = row
		if row.Usec == 0 {
			t.Errorf("%s: no time", row.Region)
		}
	}
	fp, mem := rows["fp_kernel"], rows["mem_kernel"]
	if fp.FPRate <= mem.FPRate {
		t.Errorf("FP rate: fp_kernel %.2f should exceed mem_kernel %.2f", fp.FPRate, mem.FPRate)
	}
	if mem.MissRate <= fp.MissRate {
		t.Errorf("miss rate: mem_kernel %.2f should exceed fp_kernel %.2f", mem.MissRate, fp.MissRate)
	}
	if mem.TLBRate <= fp.TLBRate {
		t.Errorf("TLB rate: mem_kernel %.2f should exceed fp_kernel %.2f", mem.TLBRate, fp.TLBRate)
	}
}

func TestExperimentCatalogStable(t *testing.T) {
	// The catalog is part of the published interface: EXPERIMENTS.md,
	// the bench harness and the CLI all address experiments by ID.
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "F2", "E12", "A1", "A2"}
	runners := All()
	if len(runners) != len(want) {
		t.Fatalf("%d experiments, want %d", len(runners), len(want))
	}
	for i, r := range runners {
		if r.ID != want[i] {
			t.Errorf("slot %d: %s, want %s", i, r.ID, want[i])
		}
		if r.Name == "" {
			t.Errorf("%s: unnamed", r.ID)
		}
	}
	if _, err := Render("E99"); err == nil {
		t.Error("unknown experiment rendered")
	}
}
