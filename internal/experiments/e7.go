package experiments

import (
	"fmt"

	"repro/papi"
	"repro/workload"
)

// E7Row is one FMA platform's normalization measurement.
type E7Row struct {
	Platform string
	FMA      int64
	FPIns    int64
	FPOps    int64
	Ratio    float64 // FP_OPS / FMA_INS
	MFLOPS   float64 // from the high-level PAPI_flops call
}

// E7Result reproduces §4's PAPI_flops normalization: the high-level
// call "sometimes entails multiplying the measured counts by a factor
// of two to count floating-point multiply-add instructions as two
// floating point operations".
type E7Result struct {
	N    int
	Rows []E7Row
}

// E7 runs an FMA matmul on both FMA platforms and compares raw
// instruction counts with normalized operation counts.
func E7() (*E7Result, error) {
	const n = 24
	res := &E7Result{N: n}
	for _, platform := range []string{papi.PlatformAIXPower3, papi.PlatformLinuxIA64} {
		sys, err := papi.Init(papi.Options{Platform: platform})
		if err != nil {
			return nil, err
		}
		th := sys.Main()
		prog := workload.MatMul(workload.MatMulConfig{N: n, UseFMA: true})
		es := th.NewEventSet()
		if err := es.AddAll(papi.FMA_INS, papi.FP_INS, papi.FP_OPS); err != nil {
			return nil, err
		}
		if err := es.Start(); err != nil {
			return nil, err
		}
		th.Run(prog)
		vals := make([]int64, 3)
		if err := es.Stop(vals); err != nil {
			return nil, err
		}
		row := E7Row{Platform: platform, FMA: vals[0], FPIns: vals[1], FPOps: vals[2]}
		if vals[0] > 0 {
			row.Ratio = float64(vals[2]) / float64(vals[0])
		}
		// The high-level call on a fresh run.
		prog.Reset()
		if _, err := th.Flops(); err != nil {
			return nil, err
		}
		th.Run(prog)
		rr, err := th.Flops()
		if err != nil {
			return nil, err
		}
		if err := th.StopRate(); err != nil {
			return nil, err
		}
		row.MFLOPS = rr.Rate
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (r *E7Result) table() *Table {
	t := &Table{
		ID:      "E7",
		Title:   fmt.Sprintf("PAPI_flops normalization, FMA matmul N=%d (N³=%d FMAs)", r.N, r.N*r.N*r.N),
		Claim:   "PAPI_flops counts a fused multiply-add as two floating-point operations (§4)",
		Columns: []string{"platform", "FMA_INS", "FP_INS", "FP_OPS", "FP_OPS/FMA", "flops-call MFLOPS"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Platform, i64(row.FMA), i64(row.FPIns), i64(row.FPOps), f2(row.Ratio), f2(row.MFLOPS))
	}
	return t
}
