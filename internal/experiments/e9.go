package experiments

import (
	"fmt"

	"repro/papi"
	"repro/workload"
)

// E9Row is one mode of the overlap ablation.
type E9Row struct {
	Mode           string
	Sets           int
	FootprintBytes int
	MgmtCycles     uint64 // library cycles beyond the bare workload
}

// E9Result reproduces the §5 design decision: "some of the little used
// features of the previous versions, such as overlapping EventSets, are
// being eliminated in version 3 to reduce memory usage and runtime
// overhead and simplify the code". The ablation runs the same
// measurement schedule with v2 overlapping sets and with v3 exclusive
// sets and compares footprint and management cost.
type E9Result struct {
	Rows []E9Row
}

// E9 runs four 2-event sets over four program phases. In v2 mode the
// sets overlap (each spans two adjacent phases); in v3 mode the
// equivalent data is collected with exclusive sets started and stopped
// at phase boundaries.
func E9() (*E9Result, error) {
	res := &E9Result{}
	phase := func() workload.Program {
		return workload.Triad(workload.TriadConfig{N: 2048, Reps: 4})
	}
	pairs := [][2]papi.Event{
		{papi.FP_INS, papi.TOT_CYC},
		{papi.LD_INS, papi.TOT_INS},
		{papi.SR_INS, papi.L1_DCM},
		{papi.BR_INS, papi.FMA_INS},
	}

	// Bare baseline: the five phases with no measurement at all.
	base, err := e9Baseline(phase)
	if err != nil {
		return nil, err
	}

	for _, overlap := range []bool{false, true} {
		sys, err := papi.Init(papi.Options{Platform: papi.PlatformAIXPower3, AllowOverlap: overlap})
		if err != nil {
			return nil, err
		}
		th := sys.Main()
		sets := make([]*papi.EventSet, len(pairs))
		for i, pr := range pairs {
			sets[i] = th.NewEventSet()
			if err := sets[i].AddAll(pr[0], pr[1]); err != nil {
				return nil, err
			}
		}
		start := th.CPU().Cycles()
		vals := make([]int64, 2)
		if overlap {
			// v2 schedule: set i runs across phases i and i+1 —
			// genuinely overlapping lifetimes.
			for i := 0; i < len(sets)+1; i++ {
				if i < len(sets) {
					if err := sets[i].Start(); err != nil {
						return nil, err
					}
				}
				th.Run(phase())
				if i > 0 {
					if err := sets[i-1].Stop(vals); err != nil {
						return nil, err
					}
				}
			}
		} else {
			// v3 schedule: one exclusive set per phase boundary pair,
			// started and stopped back to back.
			for i := range sets {
				if err := sets[i].Start(); err != nil {
					return nil, err
				}
				th.Run(phase())
				if err := sets[i].Stop(vals); err != nil {
					return nil, err
				}
			}
			th.Run(phase())
		}
		elapsed := th.CPU().Cycles() - start
		foot := 0
		for _, s := range sets {
			foot += s.Footprint()
		}
		mode := "v3 exclusive"
		if overlap {
			mode = "v2 overlapping"
		}
		res.Rows = append(res.Rows, E9Row{
			Mode:           mode,
			Sets:           len(sets),
			FootprintBytes: foot,
			MgmtCycles:     elapsed - base,
		})
	}
	return res, nil
}

func e9Baseline(phase func() workload.Program) (uint64, error) {
	sys, err := papi.Init(papi.Options{Platform: papi.PlatformAIXPower3})
	if err != nil {
		return 0, err
	}
	th := sys.Main()
	start := th.CPU().Cycles()
	for i := 0; i < 5; i++ {
		th.Run(phase())
	}
	return th.CPU().Cycles() - start, nil
}

func (r *E9Result) table() *Table {
	t := &Table{
		ID:      "E9",
		Title:   "ablation: overlapping EventSets (PAPI 2) vs exclusive (PAPI 3)",
		Claim:   "overlapping EventSets were dropped in v3 to reduce memory usage and runtime overhead (§5)",
		Columns: []string{"mode", "sets", "footprint (bytes)", "library cycles"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Mode, fmt.Sprintf("%d", row.Sets), fmt.Sprintf("%d", row.FootprintBytes), u64(row.MgmtCycles))
	}
	t.Notes = append(t.Notes,
		"library cycles = run cycles minus the unmonitored baseline; overlap forces a stop/re-allocate/restart of the shared counters at every set boundary")
	return t
}
