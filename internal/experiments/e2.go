package experiments

import (
	"fmt"

	"repro/internal/hwsim"
	"repro/papi"
	"repro/workload"
)

// e2Events are the twelve events multiplexed onto the P6's two
// counters, with the signal sets that define their ground truth.
var e2Events = []struct {
	ev   papi.Event
	sigs []hwsim.Signal
}{
	{papi.TOT_CYC, []hwsim.Signal{hwsim.SigCycles}},
	{papi.TOT_INS, []hwsim.Signal{hwsim.SigInstrs}},
	{papi.FP_INS, []hwsim.Signal{hwsim.SigFPAdd, hwsim.SigFPMul, hwsim.SigFPDiv}},
	{papi.LST_INS, []hwsim.Signal{hwsim.SigLoads, hwsim.SigStores}},
	{papi.L1_DCA, []hwsim.Signal{hwsim.SigLoads, hwsim.SigStores}},
	{papi.L1_DCM, []hwsim.Signal{hwsim.SigL1DMiss}},
	{papi.L1_ICM, []hwsim.Signal{hwsim.SigL1IMiss}},
	{papi.L2_TCA, []hwsim.Signal{hwsim.SigL2Access}},
	{papi.L2_TCM, []hwsim.Signal{hwsim.SigL2Miss}},
	{papi.TLB_DM, []hwsim.Signal{hwsim.SigTLBDMiss}},
	{papi.BR_INS, []hwsim.Signal{hwsim.SigBranch}},
	{papi.BR_MSP, []hwsim.Signal{hwsim.SigBranchMiss}},
}

// E2Row is one runtime point of the multiplex-convergence sweep.
type E2Row struct {
	N          int
	Cycles     uint64
	Rotations  float64 // full passes over all slices
	MeanRelErr float64 // over events with substantial truth counts
	MaxRelErr  float64
	Unmeasured int // events whose slice never ran (estimate 0, truth > 0)
}

// E2Result reproduces §2's multiplexing lesson: estimates from runs too
// short to rotate through every slice are erroneous — which is why
// multiplexing is opt-in at the low level.
type E2Result struct {
	Interval uint64
	Slices   int
	Rows     []E2Row
}

// E2 runs the multiplex error-vs-runtime sweep.
func E2() (*E2Result, error) {
	const interval = 25_000
	res := &E2Result{Interval: interval}
	for _, n := range []int{12, 24, 48, 96, 160} {
		sys, err := papi.Init(papi.Options{Platform: papi.PlatformLinuxX86})
		if err != nil {
			return nil, err
		}
		th := sys.Main()
		es := th.NewEventSet()
		if err := es.SetMultiplex(interval); err != nil {
			return nil, err
		}
		evs := make([]papi.Event, len(e2Events))
		for i, e := range e2Events {
			evs[i] = e.ev
		}
		if err := es.AddAll(evs...); err != nil {
			return nil, err
		}
		prog := workload.MatMul(workload.MatMulConfig{N: n})

		cpu := th.CPU()
		before := make([]uint64, len(e2Events))
		snapshotTruth(cpu, before)
		startCyc := cpu.Cycles()
		if err := es.Start(); err != nil {
			return nil, err
		}
		th.Run(prog)
		vals := make([]int64, len(e2Events))
		if err := es.Stop(vals); err != nil {
			return nil, err
		}
		cycles := cpu.Cycles() - startCyc
		after := make([]uint64, len(e2Events))
		snapshotTruth(cpu, after)

		row := E2Row{N: n, Cycles: cycles}
		// 6 slices of 2 events at `interval` cycles each.
		nSlices := (len(e2Events) + 1) / 2
		row.Rotations = float64(cycles) / float64(uint64(nSlices)*interval)
		var sum float64
		var cnt int
		for i := range e2Events {
			truth := after[i] - before[i]
			// Truth for TOT_CYC/TOT_INS includes the library's own
			// perturbation, which the estimator legitimately sees too;
			// compare anyway — convergence dominates. Events too rare
			// to fire during any slice (a handful of cold I-cache
			// misses) cannot speak to convergence either way.
			if truth < 1000 {
				continue
			}
			if vals[i] == 0 {
				row.Unmeasured++
				continue
			}
			re := relErr(float64(vals[i]), float64(truth))
			sum += re
			cnt++
			if re > row.MaxRelErr {
				row.MaxRelErr = re
			}
		}
		if cnt > 0 {
			row.MeanRelErr = sum / float64(cnt)
		}
		res.Rows = append(res.Rows, row)
		res.Slices = nSlices
	}
	return res, nil
}

func snapshotTruth(cpu *hwsim.CPU, dst []uint64) {
	for i, e := range e2Events {
		var v uint64
		for _, s := range e.sigs {
			v += cpu.Truth(s)
		}
		dst[i] = v
	}
}

func (r *E2Result) table() *Table {
	t := &Table{
		ID:      "E2",
		Title:   fmt.Sprintf("multiplexing 12 events on 2 counters (slice=%d cycles, %d slices)", r.Interval, r.Slices),
		Claim:   "erroneous results occur when runtime is insufficient for estimates to converge (§2)",
		Columns: []string{"matmul N", "cycles", "rotations", "mean rel.err", "max rel.err", "unmeasured"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", row.N), u64(row.Cycles), f2(row.Rotations),
			pct(row.MeanRelErr), pct(row.MaxRelErr), fmt.Sprintf("%d", row.Unmeasured))
	}
	t.Notes = append(t.Notes, "unmeasured = events whose time slice never became active before the program ended")
	return t
}
