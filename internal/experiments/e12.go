package experiments

import (
	"fmt"

	"repro/papi"
	"repro/tools/tau"
	"repro/workload"
)

// E12Row is one region of the multi-metric comparison.
type E12Row struct {
	Region   string
	Usec     uint64
	FPRate   float64 // FP ops per usec
	MissRate float64 // L1 misses per usec
	TLBRate  float64 // TLB misses per usec
}

// E12Result reproduces §3's TAU claim: with the multiple-counters
// option, "up to 25 metrics may be specified and a separate profile
// generated for each. These profiles for the same run can then be
// compared to see important correlations, such as for example the
// correlation of time with operation counts and cache or TLB misses."
// The metrics exceed the machine's counters, so the toolkit opts into
// multiplexing — and, as the paper notes tools must, keeps the run
// long enough for the estimates to hold.
type E12Result struct {
	Rows []E12Row
}

// E12 profiles three contrasting kernels under four multiplexed
// metrics and derives the per-region rates.
func E12() (*E12Result, error) {
	sys, err := papi.Init(papi.Options{Platform: papi.PlatformLinuxX86})
	if err != nil {
		return nil, err
	}
	metrics := []papi.Event{papi.TOT_CYC, papi.FP_INS, papi.L1_DCM, papi.TLB_DM}
	prof, err := tau.New(sys, tau.Config{Metrics: metrics, Multiplex: true})
	if err != nil {
		return nil, err
	}
	th := sys.Main()
	tp, err := prof.Thread(th)
	if err != nil {
		return nil, err
	}
	// The FP kernel is cache-resident (three 24x24 matrices fit the
	// P6's 16K L1), repeated for runtime; the memory kernel is GUPS.
	fpProgs := make([]workload.Program, 12)
	for i := range fpProgs {
		fpProgs[i] = workload.MatMul(workload.MatMulConfig{N: 24})
	}
	regions := []struct {
		name string
		prog workload.Program
	}{
		{"fp_kernel", workload.NewConcat("fp", fpProgs...)},
		{"mem_kernel", workload.GUPS(workload.GUPSConfig{TableWords: 1 << 18, Updates: 600_000})},
		{"balanced", workload.Stencil(workload.StencilConfig{N: 160, Sweeps: 8})},
	}
	for _, r := range regions {
		if err := tp.Start(r.name); err != nil {
			return nil, err
		}
		th.Run(r.prog)
		if err := tp.Stop(r.name); err != nil {
			return nil, err
		}
	}
	if err := prof.Close(); err != nil {
		return nil, err
	}
	res := &E12Result{}
	for _, st := range tp.Stats() {
		row := E12Row{Region: st.Region, Usec: st.ExclUsec}
		if st.ExclUsec > 0 {
			row.FPRate = float64(st.Excl[1]) / float64(st.ExclUsec)
			row.MissRate = float64(st.Excl[2]) / float64(st.ExclUsec)
			row.TLBRate = float64(st.Excl[3]) / float64(st.ExclUsec)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (r *E12Result) table() *Table {
	t := &Table{
		ID:      "E12",
		Title:   "TAU multi-metric profiles: correlating time with operations and misses",
		Claim:   "separate profiles per metric for the same run expose correlations of time with op counts and cache/TLB misses (§3)",
		Columns: []string{"region", "excl usec", "FP/usec", "L1DCM/usec", "TLBDM/usec"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Region, fmt.Sprintf("%d", row.Usec), f2(row.FPRate), f2(row.MissRate), f2(row.TLBRate))
	}
	t.Notes = append(t.Notes,
		"four metrics on two counters: the toolkit enables multiplexing explicitly and keeps runs long (§2 lesson)")
	return t
}
