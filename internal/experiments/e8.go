package experiments

import (
	"repro/papi"
	"repro/workload"
)

// E8Row is one platform's timer characterization.
type E8Row struct {
	Platform       string
	ResolutionUsec float64
	CostCycles     uint64
	ReadCostCycles uint64 // counter-read cost, for contrast
	RealUsec       uint64 // loaded-machine run
	VirtUsec       uint64
	RealOverVirt   float64
}

// E8Result reproduces §3: "one of the most popular features of PAPI
// has proven to be the portable timing routines", implemented on the
// lowest-overhead, most accurate timers of each platform, with both
// wallclock and virtual variants.
type E8Result struct {
	Rows []E8Row
}

// E8 characterizes the timers on every platform and demonstrates the
// real/virtual split under simulated multi-user interference.
func E8() (*E8Result, error) {
	res := &E8Result{}
	for _, platform := range papi.Platforms() {
		sys, err := papi.Init(papi.Options{
			Platform:            platform,
			InterferenceQuantum: 20_000,
			InterferenceSteal:   6_000, // 30% competing load
		})
		if err != nil {
			return nil, err
		}
		th := sys.Main()
		r0, v0 := th.RealUsec(), th.VirtUsec()
		th.Run(workload.Triad(workload.TriadConfig{N: 4096, Reps: 20}))
		r1, v1 := th.RealUsec(), th.VirtUsec()
		row := E8Row{
			Platform:       platform,
			ResolutionUsec: th.TimerResolutionUsec(),
			CostCycles:     th.TimerCostCycles(),
			ReadCostCycles: sys.Arch().ReadCost,
			RealUsec:       r1 - r0,
			VirtUsec:       v1 - v0,
		}
		if row.VirtUsec > 0 {
			row.RealOverVirt = float64(row.RealUsec) / float64(row.VirtUsec)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (r *E8Result) table() *Table {
	t := &Table{
		ID:      "E8",
		Title:   "portable timers per platform (30% competing load)",
		Claim:   "lowest-overhead, most accurate timers per platform; wallclock and virtual variants (§3)",
		Columns: []string{"platform", "resolution (us)", "timer cost (cyc)", "counter read (cyc)", "real us", "virt us", "real/virt"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Platform, f2(row.ResolutionUsec*1000)+"e-3", u64(row.CostCycles),
			u64(row.ReadCostCycles), u64(row.RealUsec), u64(row.VirtUsec), f2(row.RealOverVirt))
	}
	t.Notes = append(t.Notes, "virtual time excludes the simulated competing processes; real time includes them")
	return t
}
