package experiments

import (
	"repro/papi"
	"repro/workload"
)

// E5Row is one platform's attribution accuracy.
type E5Row struct {
	Platform   string
	Mechanism  string // "ovf-interrupt" or "hw-sampling"
	Hits       uint64
	HotHits    uint64
	PctCorrect float64
}

// E5Result reproduces §4's attribution discussion: on out-of-order
// processors the program counter delivered with an overflow interrupt
// is several instructions or basic blocks removed from the event's true
// address; ProfileMe/EAR-style hardware sampling identifies the exact
// instruction.
type E5Result struct {
	Rows []E5Row
}

// E5 profiles a kernel whose floating-point instructions all live in
// one compact "hot" region and counts how many profile hits land there.
func E5() (*E5Result, error) {
	cases := []struct {
		platform string
		sampling bool
	}{
		{papi.PlatformCrayT3E, false},   // in-order, zero skid
		{papi.PlatformLinuxX86, false},  // OOO, deep skid
		{papi.PlatformIRIXMips, false},  // OOO, moderate skid
		{papi.PlatformTru64Alpha, true}, // ProfileMe via DADD
		{papi.PlatformLinuxIA64, true},  // event address registers
	}
	res := &E5Result{}
	for _, c := range cases {
		row, err := e5One(c.platform, c.sampling)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func e5One(platform string, sampling bool) (*E5Row, error) {
	opts := papi.Options{Platform: platform}
	mech := "ovf-interrupt"
	if sampling {
		opts.SamplingPeriod = 256
		mech = "hw-sampling"
	}
	sys, err := papi.Init(opts)
	if err != nil {
		return nil, err
	}
	th := sys.Main()
	prog := workload.HotColdLoop(workload.HotColdConfig{Iters: 60_000, Hot: 4, Cold: 16})
	regions := prog.Regions()
	hot := regions[0]
	lo, hi := regions[0].Lo, regions[len(regions)-1].Hi
	hist, err := papi.NewProfileCovering(lo, hi, 4) // one bucket per instruction
	if err != nil {
		return nil, err
	}
	es := th.NewEventSet()
	if err := es.Add(papi.FP_INS); err != nil {
		return nil, err
	}
	if err := es.Profil(hist, papi.FP_INS, 500); err != nil {
		return nil, err
	}
	if err := es.Start(); err != nil {
		return nil, err
	}
	th.Run(prog)
	if err := es.Stop(nil); err != nil {
		return nil, err
	}
	row := &E5Row{Platform: platform, Mechanism: mech}
	for i, h := range hist.Buckets {
		blo, _ := hist.AddrRange(i)
		row.Hits += h
		if hot.Contains(blo) {
			row.HotHits += h
		}
	}
	row.Hits += hist.Outside
	if row.Hits > 0 {
		row.PctCorrect = float64(row.HotHits) / float64(row.Hits)
	}
	return row, nil
}

func (r *E5Result) table() *Table {
	t := &Table{
		ID:      "E5",
		Title:   "profil attribution: hits landing on the true (FP) instructions",
		Claim:   "interrupt PCs skid on OOO processors; hardware sampling gives exact addresses (§4)",
		Columns: []string{"platform", "mechanism", "profile hits", "in hot region", "correct"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Platform, row.Mechanism, u64(row.Hits), u64(row.HotHits), pct(row.PctCorrect))
	}
	t.Notes = append(t.Notes,
		"the kernel's FP instructions occupy a 4-instruction hot region followed by 16 integer instructions")
	return t
}
