package experiments

import (
	"fmt"

	"repro/papi"
	"repro/workload"
)

// E1Row is one (substrate, size) calibration measurement.
type E1Row struct {
	Platform string
	Mode     string // "hw-sampling" or "direct+ovf"
	N        int
	Expected uint64
	Measured int64
	RelErr   float64
	Overhead float64 // monitored vs unmonitored runtime
}

// E1Result reproduces §4's calibration claim: on the sampling substrate
// (Tru64 DADD/ProfileMe) event counts converge to the expected value
// with only 1–2% overhead, versus up to ~30% on substrates that use
// direct counting with interrupt-driven profiling.
type E1Result struct {
	Rows []E1Row
}

// E1 runs the calibration experiment (the papi_calibrate utility).
func E1() (*E1Result, error) {
	res := &E1Result{}
	sizes := []int{16, 32, 64, 96}
	for _, n := range sizes {
		prog := workload.MatMul(workload.MatMulConfig{N: n})
		expected := prog.Expected().FLOPs()

		// Unmonitored baselines, one per platform (costs differ).
		baseAlpha, err := e1Baseline(papi.PlatformTru64Alpha, prog)
		if err != nil {
			return nil, err
		}
		baseX86, err := e1Baseline(papi.PlatformLinuxX86, prog)
		if err != nil {
			return nil, err
		}

		// Tru64 Alpha: counts estimated from ProfileMe samples; the
		// profiling histogram rides on the same samples.
		alphaCycles, alphaVal, err := e1Monitored(papi.PlatformTru64Alpha, papi.FP_OPS, 4096, prog)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, E1Row{
			Platform: papi.PlatformTru64Alpha,
			Mode:     "hw-sampling",
			N:        n,
			Expected: expected,
			Measured: alphaVal,
			RelErr:   relErr(float64(alphaVal), float64(expected)),
			Overhead: float64(alphaCycles-baseAlpha) / float64(baseAlpha),
		})

		// Linux/x86: direct counting, profiling via counter-overflow
		// interrupts. Counts are exact; the interrupts are not cheap.
		x86Cycles, x86Val, err := e1Monitored(papi.PlatformLinuxX86, papi.FP_OPS, 2048, prog)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, E1Row{
			Platform: papi.PlatformLinuxX86,
			Mode:     "direct+ovf",
			N:        n,
			Expected: expected,
			Measured: x86Val,
			RelErr:   relErr(float64(x86Val), float64(expected)),
			Overhead: float64(x86Cycles-baseX86) / float64(baseX86),
		})
	}
	return res, nil
}

func e1Baseline(platform string, prog workload.Program) (uint64, error) {
	sys, err := papi.Init(papi.Options{Platform: platform})
	if err != nil {
		return 0, err
	}
	th := sys.Main()
	prog.Reset()
	start := th.CPU().Cycles()
	th.Run(prog)
	return th.CPU().Cycles() - start, nil
}

// e1Monitored measures FP_OPS with an attached profiling histogram
// (threshold counts per hit) and returns (cycles consumed, measured
// count).
func e1Monitored(platform string, ev papi.Event, threshold uint64, prog workload.Program) (uint64, int64, error) {
	opts := papi.Options{Platform: platform}
	if platform == papi.PlatformTru64Alpha {
		// DCPI's default rate: dense enough to converge quickly, still
		// in the paper's 1-2% overhead band.
		opts.SamplingPeriod = 256
	}
	sys, err := papi.Init(opts)
	if err != nil {
		return 0, 0, err
	}
	th := sys.Main()
	es := th.NewEventSet()
	if err := es.Add(ev); err != nil {
		return 0, 0, err
	}
	regions := prog.Regions()
	lo, hi := regions[0].Lo, regions[0].Hi
	for _, r := range regions[1:] {
		if r.Lo < lo {
			lo = r.Lo
		}
		if r.Hi > hi {
			hi = r.Hi
		}
	}
	profHist, err := papi.NewProfileCovering(lo, hi, 16)
	if err != nil {
		return 0, 0, err
	}
	if err := es.Profil(profHist, ev, threshold); err != nil {
		return 0, 0, err
	}
	prog.Reset()
	start := th.CPU().Cycles()
	if err := es.Start(); err != nil {
		return 0, 0, err
	}
	th.Run(prog)
	vals := make([]int64, 1)
	if err := es.Stop(vals); err != nil {
		return 0, 0, err
	}
	return th.CPU().Cycles() - start, vals[0], nil
}

func (r *E1Result) table() *Table {
	t := &Table{
		ID:      "E1",
		Title:   "calibrate: measured vs expected FP ops and monitoring overhead",
		Claim:   "sampling substrate converges to expected counts at 1-2% overhead vs up to 30% for direct counting (§4)",
		Columns: []string{"platform", "mode", "N", "expected", "measured", "rel.err", "overhead"},
	}
	for _, r := range r.Rows {
		t.AddRow(r.Platform, r.Mode, fmt.Sprintf("%d", r.N),
			u64(r.Expected), i64(r.Measured), pct(r.RelErr), pct(r.Overhead))
	}
	t.Notes = append(t.Notes,
		"overhead = (monitored - unmonitored cycles)/unmonitored, profiling active in both modes")
	return t
}
