package experiments

import (
	"fmt"

	"repro/papi"
	"repro/workload"
)

// E6Row is one platform's FP-instruction discrepancy measurement.
type E6Row struct {
	Platform  string
	Expected  uint64 // analytic arithmetic FP instructions
	Measured  int64  // PAPI_FP_INS
	OverPct   float64
	Corrected int64 // after subtracting the rounding-instruction native
}

// E6Result reproduces the §4 POWER3 anecdote: a discrepancy in
// floating-point instruction counts was resolved when it was discovered
// that extra rounding instructions — introduced to convert between
// double and single precision — were being counted as floating-point
// instructions.
type E6Result struct {
	Rows []E6Row
}

// E6 measures PAPI_FP_INS over a mixed-precision kernel on POWER3 and
// x86 and reconstructs the corrected count from native events.
func E6() (*E6Result, error) {
	const n = 30_000
	res := &E6Result{}
	prog := workload.MixedPrecision(workload.MixedPrecisionConfig{N: n})
	expected := prog.Expected().FPInstrs() // 2n: adds + muls, rounding excluded

	for _, platform := range []string{papi.PlatformAIXPower3, papi.PlatformLinuxX86} {
		sys, err := papi.Init(papi.Options{Platform: platform})
		if err != nil {
			return nil, err
		}
		th := sys.Main()
		es := th.NewEventSet()
		if err := es.Add(papi.FP_INS); err != nil {
			return nil, err
		}
		prog.Reset()
		if err := es.Start(); err != nil {
			return nil, err
		}
		th.Run(prog)
		vals := make([]int64, 1)
		if err := es.Stop(vals); err != nil {
			return nil, err
		}
		row := E6Row{
			Platform: platform,
			Expected: expected,
			Measured: vals[0],
			OverPct:  relErr(float64(vals[0]), float64(expected)),
		}
		// The resolution: count the rounding-instruction native event
		// alongside and subtract — exactly how the discrepancy was
		// diagnosed with micro-benchmarks and native events.
		roundName := map[string]string{
			papi.PlatformAIXPower3: "PM_FPU_FRSP_FCONV",
			papi.PlatformLinuxX86:  "FP_ASSIST",
		}[platform]
		roundEv, ok := sys.NativeByName(roundName)
		if !ok {
			return nil, fmt.Errorf("E6: no %s on %s", roundName, platform)
		}
		es2 := th.NewEventSet()
		if err := es2.AddAll(papi.FP_INS, roundEv); err != nil {
			// On x86 both want counter 0; measure the rounding event
			// in a second pass over the deterministic workload.
			es2 = th.NewEventSet()
			if err := es2.Add(roundEv); err != nil {
				return nil, err
			}
		}
		prog.Reset()
		if err := es2.Start(); err != nil {
			return nil, err
		}
		th.Run(prog)
		vals2 := make([]int64, es2.NumEvents())
		if err := es2.Stop(vals2); err != nil {
			return nil, err
		}
		roundCount := vals2[len(vals2)-1]
		if platform == papi.PlatformAIXPower3 {
			row.Corrected = row.Measured - roundCount
		} else {
			// x86's FLOPS never included rounding; corrected == measured.
			row.Corrected = row.Measured
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (r *E6Result) table() *Table {
	t := &Table{
		ID:      "E6",
		Title:   "FP instruction counts on a mixed-precision kernel",
		Claim:   "POWER3 counted precision-conversion rounding instructions as FP instructions (§4)",
		Columns: []string{"platform", "expected FP_INS", "measured PAPI_FP_INS", "over-count", "corrected (native)"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Platform, u64(row.Expected), i64(row.Measured), pct(row.OverPct), i64(row.Corrected))
	}
	t.Notes = append(t.Notes,
		"corrected = PM_FPU_CMPL-based count minus PM_FPU_FRSP_FCONV on POWER3; x86's FLOPS event never included rounding")
	return t
}
