package experiments

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/hwsim"
)

// E4Row summarizes one architecture's allocation comparison.
type E4Row struct {
	Platform      string
	Counters      int
	Trials        int
	GreedyOK      int
	OptimalOK     int
	Recovered     int // sets only the optimal allocator could map fully
	MeanMapGreedy float64
	MeanMapOpt    float64
}

// E4Result reproduces §5: counter allocation cast as bipartite graph
// matching. The optimal matching algorithm shipped in PAPI 2.3 maps
// every event set a first-fit allocator can, plus the sets first-fit
// loses to placement mistakes.
type E4Result struct {
	Rows []E4Row
	// WeightDemo shows the max-weight variant preferring a
	// high-priority event under conflict.
	WeightDemo string
}

// E4 runs the allocation comparison on randomized event subsets of
// every architecture's real native-event tables.
func E4() (*E4Result, error) {
	res := &E4Result{}
	const trials = 3000
	rng := uint64(0xa110c)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	for _, a := range hwsim.Architectures() {
		if len(a.Groups) > 0 {
			continue // group-constrained platforms measured separately below
		}
		row := E4Row{Platform: a.Platform, Counters: a.NumCounters, Trials: trials}
		var mapG, mapO int
		for trial := 0; trial < trials; trial++ {
			k := 2 + next(a.NumCounters)
			items := make([]alloc.Item, 0, k)
			used := map[int]bool{}
			for len(items) < k {
				i := next(len(a.Events))
				if used[i] {
					continue
				}
				used[i] = true
				items = append(items, alloc.Item{ID: a.Events[i].Code, Mask: a.Events[i].CounterMask, Weight: 1})
			}
			grd, gok := alloc.GreedyFirstFit(items, a.NumCounters)
			opt := alloc.MaxCardinality(items, a.NumCounters)
			ook := opt.Mapped == len(items)
			if gok {
				row.GreedyOK++
			}
			if ook {
				row.OptimalOK++
			}
			if ook && !gok {
				row.Recovered++
			}
			if opt.Mapped < grd.Mapped {
				return nil, fmt.Errorf("E4: optimal mapped fewer than greedy on %s", a.Platform)
			}
			mapG += grd.Mapped
			mapO += opt.Mapped
		}
		row.MeanMapGreedy = float64(mapG) / trials
		row.MeanMapOpt = float64(mapO) / trials
		res.Rows = append(res.Rows, row)
	}
	// Max-weight demo: two counter-0-only events with unequal priority
	// on the P6; the heavy one must win the counter.
	x86, _ := hwsim.ArchByPlatform(hwsim.PlatformLinuxX86)
	flops, _ := x86.EventByName("FLOPS")
	assist, _ := x86.EventByName("FP_ASSIST")
	items := []alloc.Item{
		{ID: assist.Code, Mask: assist.CounterMask, Weight: 1},
		{ID: flops.Code, Mask: flops.CounterMask, Weight: 5},
	}
	w := alloc.MaxWeight(items, x86.NumCounters)
	winner := "FP_ASSIST"
	if w.Counter[1] == 0 {
		winner = "FLOPS"
	}
	res.WeightDemo = fmt.Sprintf("max-weight on P6 counter 0 conflict: %s (weight 5) wins over FP_ASSIST (weight 1), total weight %d", winner, w.Weight)
	return res, nil
}

func (r *E4Result) table() *Table {
	t := &Table{
		ID:      "E4",
		Title:   "counter allocation: optimal bipartite matching vs first-fit",
		Claim:   "the counter allocation problem is bipartite graph matching; an optimal algorithm shipped in PAPI 2.3 (§5)",
		Columns: []string{"platform", "ctrs", "trials", "first-fit ok", "matching ok", "recovered", "mean mapped ff", "mean mapped opt"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Platform, fmt.Sprintf("%d", row.Counters), fmt.Sprintf("%d", row.Trials),
			fmt.Sprintf("%d", row.GreedyOK), fmt.Sprintf("%d", row.OptimalOK),
			fmt.Sprintf("%d", row.Recovered), f2(row.MeanMapGreedy), f2(row.MeanMapOpt))
	}
	t.Notes = append(t.Notes,
		"recovered = event sets only the matching allocator maps fully",
		r.WeightDemo,
		"aix-power3 is excluded here: its group constraint is solved by the grouped allocator (see substrate tests)")
	return t
}
