// Package experiments regenerates every quantitative claim, table and
// figure of the paper's evaluation as a reproducible experiment. Each
// experiment returns a Table (the printable rows) plus a typed result
// the shape tests assert against; cmd/experiments prints them and the
// root bench harness wraps each in a testing.B benchmark. The index in
// DESIGN.md maps experiment IDs to paper sections.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's printable result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper statement being reproduced
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "paper: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func pct(x float64) string { return fmt.Sprintf("%.2f%%", x*100) }
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func u64(x uint64) string  { return fmt.Sprintf("%d", x) }
func i64(x int64) string   { return fmt.Sprintf("%d", x) }
func relErr(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}

// Runner produces one experiment.
type Runner struct {
	ID   string
	Name string
	Run  func() (*Table, error)
}

// All lists every experiment in presentation order.
func All() []Runner {
	return []Runner{
		{"E1", "calibration: sampling vs direct counting", func() (*Table, error) { r, err := E1(); return tbl(r, err) }},
		{"E2", "multiplexing error vs runtime", func() (*Table, error) { r, err := E2(); return tbl(r, err) }},
		{"E3", "read overhead vs instrumentation granularity", func() (*Table, error) { r, err := E3(); return tbl(r, err) }},
		{"E4", "counter allocation: optimal matching vs first-fit", func() (*Table, error) { r, err := E4(); return tbl(r, err) }},
		{"E5", "profiling attribution: interrupt skid vs hardware sampling", func() (*Table, error) { r, err := E5(); return tbl(r, err) }},
		{"E6", "POWER3 FP instruction discrepancy", func() (*Table, error) { r, err := E6(); return tbl(r, err) }},
		{"E7", "PAPI_flops normalization on FMA hardware", func() (*Table, error) { r, err := E7(); return tbl(r, err) }},
		{"E8", "portable timers: resolution, cost, real vs virtual", func() (*Table, error) { r, err := E8(); return tbl(r, err) }},
		{"E9", "ablation: overlapping EventSets (v2) vs exclusive (v3)", func() (*Table, error) { r, err := E9(); return tbl(r, err) }},
		{"E10", "papi_cost: start/read/stop/reset cycles per substrate", func() (*Table, error) { r, err := E10(); return tbl(r, err) }},
		{"E11", "PAPI 3 memory utilization extensions", func() (*Table, error) { r, err := E11(); return tbl(r, err) }},
		{"F2", "perfometer real-time FLOP-rate trace", func() (*Table, error) { r, err := F2(); return tbl(r, err) }},
		{"E12", "TAU multi-metric correlation per region", func() (*Table, error) { r, err := E12(); return tbl(r, err) }},
		{"A1", "ablation: multiplex slice length", func() (*Table, error) { r, err := A1(); return tbl(r, err) }},
		{"A2", "ablation: hardware sampling period", func() (*Table, error) { r, err := A2(); return tbl(r, err) }},
	}
}

// Render runs the experiment with the given ID (case-sensitive, e.g.
// "E4") and returns its rendered table.
func Render(id string) (string, error) {
	for _, r := range All() {
		if r.ID == id {
			t, err := r.Run()
			if err != nil {
				return "", err
			}
			return t.String(), nil
		}
	}
	return "", fmt.Errorf("experiments: unknown experiment %q", id)
}

// tabler is any typed experiment result carrying its printable table.
type tabler interface{ table() *Table }

func tbl(r tabler, err error) (*Table, error) {
	if err != nil {
		return nil, err
	}
	return r.table(), nil
}
