package multiplex

import (
	"testing"

	"repro/internal/hwsim"
	"repro/internal/substrate"
)

func newCtx(t *testing.T, platform string) (substrate.Context, *hwsim.CPU, *hwsim.Arch) {
	t.Helper()
	s, err := substrate.ForPlatform(platform)
	if err != nil {
		t.Fatal(err)
	}
	cpu := hwsim.MustNewCPU(s.Arch(), 17)
	return s.NewContext(cpu), cpu, s.Arch()
}

func codes(t *testing.T, a *hwsim.Arch, names ...string) []uint32 {
	t.Helper()
	out := make([]uint32, len(names))
	for i, n := range names {
		ev, ok := a.EventByName(n)
		if !ok {
			t.Fatalf("no event %s", n)
		}
		out[i] = ev.Code
	}
	return out
}

func mixedLoop(iters int) []hwsim.Instr {
	var out []hwsim.Instr
	mem := uint64(0x40000000)
	for i := 0; i < iters; i++ {
		out = append(out,
			hwsim.Instr{Op: hwsim.OpFPAdd, Addr: 0x400000},
			hwsim.Instr{Op: hwsim.OpLoad, Addr: 0x400004, Mem: mem},
			hwsim.Instr{Op: hwsim.OpInt, Addr: 0x400008},
			hwsim.Instr{Op: hwsim.OpBranch, Addr: 0x40000c, Taken: i != iters-1},
		)
		mem += 8
	}
	return out
}

func TestPartitioning(t *testing.T) {
	ctx, _, a := newCtx(t, hwsim.PlatformLinuxX86)
	// Six events on two counters: at least three slices.
	cs := codes(t, a, "CPU_CLK_UNHALTED", "INST_RETIRED", "FLOPS",
		"DATA_MEM_REFS", "BR_INST_RETIRED", "DCU_LINES_IN")
	e, err := New(ctx, cs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Slices() < 3 {
		t.Errorf("slices = %d, want >= 3", e.Slices())
	}
	// A single allocatable event needs exactly one slice.
	e1, err := New(ctx, cs[:2], 0)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Slices() != 1 {
		t.Errorf("two events on two counters should be one slice, got %d", e1.Slices())
	}
	if _, err := New(ctx, nil, 0); err == nil {
		t.Error("empty list accepted")
	}
}

func TestEstimatesConvergeOnLongRun(t *testing.T) {
	ctx, cpu, a := newCtx(t, hwsim.PlatformLinuxX86)
	cs := codes(t, a, "FLOPS", "INST_RETIRED", "DATA_MEM_REFS", "BR_INST_RETIRED", "CPU_CLK_UNHALTED")
	e, err := New(ctx, cs, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	fp0 := cpu.Truth(hwsim.SigFPAdd)
	br0 := cpu.Truth(hwsim.SigBranch)
	cpu.Run(&hwsim.SliceStream{Instrs: mixedLoop(300_000)})
	vals := make([]uint64, len(cs))
	if err := e.Stop(vals); err != nil {
		t.Fatal(err)
	}
	fpTruth := cpu.Truth(hwsim.SigFPAdd) - fp0
	brTruth := cpu.Truth(hwsim.SigBranch) - br0
	if rel := relErr(vals[0], fpTruth); rel > 0.08 {
		t.Errorf("FLOPS est %d vs %d (%.1f%%)", vals[0], fpTruth, rel*100)
	}
	if rel := relErr(vals[3], brTruth); rel > 0.08 {
		t.Errorf("branches est %d vs %d (%.1f%%)", vals[3], brTruth, rel*100)
	}
}

func TestShortRunsAreErroneous(t *testing.T) {
	// The paper's warning: insufficient runtime gives wrong estimates.
	// A run shorter than one full slice rotation leaves some events
	// never scheduled (estimate 0) — silently wrong without the
	// explicit opt-in the paper insisted on.
	ctx, cpu, a := newCtx(t, hwsim.PlatformLinuxX86)
	cs := codes(t, a, "FLOPS", "INST_RETIRED", "DATA_MEM_REFS",
		"BR_INST_RETIRED", "DCU_LINES_IN", "DTLB_MISSES")
	e, err := New(ctx, cs, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	cpu.Run(&hwsim.SliceStream{Instrs: mixedLoop(2_000)}) // ~14k cycles: first slice only
	vals := make([]uint64, len(cs))
	if err := e.Stop(vals); err != nil {
		t.Fatal(err)
	}
	zero := 0
	for _, v := range vals[1:] {
		if v == 0 {
			zero++
		}
	}
	if zero == 0 {
		t.Error("a sub-slice run should leave later events unmeasured (estimate 0)")
	}
}

func TestSnapshotAndReset(t *testing.T) {
	ctx, cpu, a := newCtx(t, hwsim.PlatformCrayT3E)
	cs := codes(t, a, "FP_INST", "LOADS", "BRANCHES", "STORES")
	e, err := New(ctx, cs, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	cpu.Run(&hwsim.SliceStream{Instrs: mixedLoop(100_000)})
	snap := make([]uint64, len(cs))
	if err := e.Snapshot(snap); err != nil {
		t.Fatal(err)
	}
	if snap[0] == 0 {
		t.Error("snapshot should see FP activity")
	}
	if err := e.Reset(); err != nil {
		t.Fatal(err)
	}
	post := make([]uint64, len(cs))
	if err := e.Snapshot(post); err != nil {
		t.Fatal(err)
	}
	if post[0] >= snap[0] && snap[0] > 0 {
		t.Errorf("after reset estimate %d should drop below %d", post[0], snap[0])
	}
	if err := e.Stop(nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Stop(nil); err == nil {
		t.Error("double stop accepted")
	}
	if err := e.Start(); err != nil {
		t.Fatalf("restart after stop: %v", err)
	}
	e.Stop(nil)
}

func TestStateErrors(t *testing.T) {
	ctx, _, a := newCtx(t, hwsim.PlatformCrayT3E)
	cs := codes(t, a, "FP_INST")
	e, _ := New(ctx, cs, 0)
	if err := e.Stop(nil); err == nil {
		t.Error("stop before start accepted")
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err == nil {
		t.Error("double start accepted")
	}
	short := make([]uint64, 0)
	if err := e.Snapshot(short); err == nil {
		t.Error("short destination accepted")
	}
	e.Stop(nil)
}

func relErr(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	d := float64(a) - float64(b)
	if d < 0 {
		d = -d
	}
	return d / float64(b)
}
