// Package multiplex implements software multiplexing of hardware
// counters: more events than physical counters are measured by
// time-slicing the counter hardware and extrapolating each event's
// count from the fraction of time its slice was active.
//
// The paper (§2) records the project's hardest-won lesson about this
// feature: estimates are only trustworthy when the run is long enough
// for them to converge, so multiplexing must be explicitly enabled
// through the low-level interface rather than silently applied. This
// package is that low-level machinery; the EventSet layer exposes it
// behind an explicit opt-in.
package multiplex

import (
	"fmt"
	"math"

	"repro/internal/substrate"
)

// DefaultIntervalCycles is the default slice length. It corresponds to
// a few hundred microseconds on the simulated machines — long enough to
// amortize the counter-switch cost, short enough to cycle all slices
// many times during any measurement worth multiplexing.
const DefaultIntervalCycles = 200_000

// Engine multiplexes one list of native events over one substrate
// context. It partitions the events into slices that each satisfy the
// platform's counter constraints, rotates the hardware through the
// slices on a cycle timer, and extrapolates totals.
type Engine struct {
	ctx      substrate.Context
	codes    []uint32
	interval uint64

	slices  [][]int // positions into codes, per slice
	assigns [][]int // physical assignment, per slice

	counts      []uint64 // accumulated raw counts per code position
	active      []uint64 // cycles each code position was actually counted
	activeTotal uint64   // cycles any slice was actively counting
	buf         []uint64
	last        []uint64 // raw value at previous flush, per position of current slice

	cur        int
	sliceStart uint64 // cycle stamp of current slice activation
	totalStart uint64 // cycle stamp of Start
	running    bool
	busy       bool // guards against the timer firing mid-flush
}

// New partitions codes into hardware-feasible slices on the given
// context. intervalCycles of 0 selects DefaultIntervalCycles. New fails
// if any single event cannot be counted at all.
func New(ctx substrate.Context, codes []uint32, intervalCycles uint64) (*Engine, error) {
	if len(codes) == 0 {
		return nil, fmt.Errorf("multiplex: empty event list")
	}
	if intervalCycles == 0 {
		intervalCycles = DefaultIntervalCycles
	}
	e := &Engine{
		ctx:      ctx,
		codes:    append([]uint32(nil), codes...),
		interval: intervalCycles,
		counts:   make([]uint64, len(codes)),
		active:   make([]uint64, len(codes)),
		buf:      make([]uint64, len(codes)),
		last:     make([]uint64, len(codes)),
	}
	if err := e.partition(); err != nil {
		return nil, err
	}
	return e, nil
}

// partition greedily packs event positions into allocatable slices.
func (e *Engine) partition() error {
	var cur []int
	flush := func() error {
		if len(cur) == 0 {
			return nil
		}
		slice := append([]int(nil), cur...)
		assign, err := e.ctx.Allocate(e.sliceCodes(slice))
		if err != nil {
			return err
		}
		e.slices = append(e.slices, slice)
		e.assigns = append(e.assigns, assign)
		cur = nil
		return nil
	}
	for pos := range e.codes {
		trial := append(cur, pos)
		if _, err := e.ctx.Allocate(e.sliceCodes(trial)); err == nil {
			cur = trial
			continue
		}
		if err := flush(); err != nil {
			return err
		}
		if _, err := e.ctx.Allocate(e.sliceCodes([]int{pos})); err != nil {
			return fmt.Errorf("multiplex: event %#x unallocatable even alone: %w", e.codes[pos], err)
		}
		cur = []int{pos}
	}
	return flush()
}

func (e *Engine) sliceCodes(slice []int) []uint32 {
	out := make([]uint32, len(slice))
	for i, pos := range slice {
		out[i] = e.codes[pos]
	}
	return out
}

// Slices reports how many time slices the event list needs. One slice
// means no multiplexing is actually necessary.
func (e *Engine) Slices() int { return len(e.slices) }

// Running reports whether the engine is counting.
func (e *Engine) Running() bool { return e.running }

// Start begins multiplexed counting from zero.
func (e *Engine) Start() error {
	if e.running {
		return fmt.Errorf("multiplex: already running")
	}
	clear(e.counts)
	clear(e.active)
	clear(e.last)
	e.activeTotal = 0
	e.cur = 0
	if err := e.ctx.Start(e.sliceCodes(e.slices[0]), e.assigns[0]); err != nil {
		return err
	}
	cpu := e.ctx.CPU()
	e.totalStart = cpu.Cycles()
	e.sliceStart = e.totalStart
	e.running = true
	cpu.SetTimer(e.interval, e.tick)
	return nil
}

// flush folds the current slice's live counts into the accumulators.
// The busy flag keeps the cycle timer from re-entering while the
// flush's own counter read advances simulated time.
func (e *Engine) flush() error {
	e.busy = true
	defer func() { e.busy = false }()
	slice := e.slices[e.cur]
	if err := e.ctx.Read(e.buf[:len(slice)]); err != nil {
		return err
	}
	cpu := e.ctx.CPU()
	now := cpu.Cycles()
	mask := e.ctx.WidthMask()
	window := now - e.sliceStart
	for i, pos := range slice {
		delta := (e.buf[i] - e.last[pos]) & mask
		e.counts[pos] += delta
		e.last[pos] = e.buf[i]
		e.active[pos] += window
	}
	e.activeTotal += window
	e.sliceStart = now
	return nil
}

// tick rotates to the next slice; runs from the CPU's cycle timer.
func (e *Engine) tick() {
	if !e.running || e.busy {
		return
	}
	if err := e.flush(); err != nil {
		return
	}
	if len(e.slices) == 1 {
		return
	}
	e.cur = (e.cur + 1) % len(e.slices)
	slice := e.slices[e.cur]
	if err := e.ctx.Switch(e.sliceCodes(slice), e.assigns[e.cur]); err != nil {
		return
	}
	for _, pos := range slice {
		e.last[pos] = 0 // hardware zeroed by reprogramming
	}
	e.sliceStart = e.ctx.CPU().Cycles()
}

// Snapshot writes the current extrapolated totals into dst without
// stopping. dst must hold one value per event.
func (e *Engine) Snapshot(dst []uint64) error {
	if len(dst) < len(e.codes) {
		return fmt.Errorf("multiplex: destination holds %d values, need %d", len(dst), len(e.codes))
	}
	if e.running {
		if err := e.flush(); err != nil {
			return err
		}
	}
	total := float64(e.activeTotal)
	for pos := range e.codes {
		dst[pos] = e.estimate(pos, total)
	}
	return nil
}

// estimate extrapolates the observed count over the time the engine
// was actively counting *any* slice. Extrapolating over raw wall time
// would also cover the counter-switch windows, during which the
// monitored program makes no progress, and systematically over-count.
func (e *Engine) estimate(pos int, total float64) uint64 {
	if e.active[pos] == 0 {
		return 0
	}
	est := float64(e.counts[pos]) * total / float64(e.active[pos])
	if est < 0 || math.IsNaN(est) {
		return 0
	}
	return uint64(est + 0.5)
}

// Stop halts counting and writes final extrapolated totals into dst
// (which may be nil).
func (e *Engine) Stop(dst []uint64) error {
	if !e.running {
		return fmt.Errorf("multiplex: not running")
	}
	cpu := e.ctx.CPU()
	cpu.SetTimer(0, nil)
	if err := e.flush(); err != nil {
		return err
	}
	e.running = false
	total := float64(e.activeTotal)
	if err := e.ctx.Stop(nil); err != nil {
		return err
	}
	if dst != nil {
		if len(dst) < len(e.codes) {
			return fmt.Errorf("multiplex: destination holds %d values, need %d", len(dst), len(e.codes))
		}
		for pos := range e.codes {
			dst[pos] = e.estimate(pos, total)
		}
	}
	return nil
}

// Reset zeroes the accumulated statistics (the engine keeps running).
func (e *Engine) Reset() error {
	if e.running {
		if err := e.flush(); err != nil {
			return err
		}
	}
	clear(e.counts)
	clear(e.active)
	e.activeTotal = 0
	now := e.ctx.CPU().Cycles()
	e.totalStart = now
	e.sliceStart = now
	return nil
}
