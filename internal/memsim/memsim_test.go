package memsim

import (
	"testing"
	"testing/quick"
)

func smallNode() *Node {
	return NewNode(NodeConfig{TotalBytes: 1 << 20, SwapBytes: 1 << 20, PageBytes: 4096, Domains: 2})
}

func TestNodeDefaults(t *testing.T) {
	n := NewNode(NodeConfig{})
	if n.TotalBytes() != 1<<30 || n.PageBytes() != 4096 || n.Domains() != 2 {
		t.Errorf("defaults wrong: %d %d %d", n.TotalBytes(), n.PageBytes(), n.Domains())
	}
}

func TestAllocAccounting(t *testing.T) {
	n := smallNode()
	p := n.NewProcess("app")
	obj, err := p.Alloc("a", 10_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Rounded to pages: 3 pages = 12288.
	if obj.Size != 12288 {
		t.Errorf("size = %d, want 12288", obj.Size)
	}
	if p.UsedBytes() != 12288 || n.UsedBytes() != 12288 {
		t.Errorf("used = %d/%d", p.UsedBytes(), n.UsedBytes())
	}
	if n.AvailBytes() != 1<<20-12288 {
		t.Errorf("avail = %d", n.AvailBytes())
	}
	if p.HighWater() != 12288 {
		t.Errorf("high water = %d", p.HighWater())
	}
	if err := p.Free("a"); err != nil {
		t.Fatal(err)
	}
	if p.UsedBytes() != 0 || n.UsedBytes() != 0 {
		t.Error("free did not release")
	}
	if p.HighWater() != 12288 {
		t.Error("high water must survive frees")
	}
}

func TestAllocErrors(t *testing.T) {
	p := smallNode().NewProcess("app")
	if _, err := p.Alloc("z", 0, 0); err == nil {
		t.Error("zero-size accepted")
	}
	p.Alloc("a", 4096, 0)
	if _, err := p.Alloc("a", 4096, 0); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := p.Alloc("b", 4096, 7); err == nil {
		t.Error("bad domain accepted")
	}
	if err := p.Free("nope"); err == nil {
		t.Error("freeing unknown object accepted")
	}
	if err := p.Touch("nope"); err == nil {
		t.Error("touching unknown object accepted")
	}
}

func TestNUMALocality(t *testing.T) {
	n := smallNode()
	p := n.NewProcess("app")
	p.Alloc("a", 8192, 0)
	p.Alloc("b", 4096, 1)
	p.Alloc("c", 4096, 1)
	loc := p.Locality()
	if loc[0] != 8192 || loc[1] != 8192 {
		t.Errorf("locality = %v", loc)
	}
	if n.DomainUsed(0) != 8192 || n.DomainUsed(1) != 8192 {
		t.Errorf("node domain usage = %d,%d", n.DomainUsed(0), n.DomainUsed(1))
	}
	// Round-robin placement for domain -1.
	p2 := n.NewProcess("app2")
	o1, _ := p2.Alloc("x", 4096, -1)
	o2, _ := p2.Alloc("y", 4096, -1)
	if o1.Domain == o2.Domain {
		t.Error("round-robin placement put both objects on one domain")
	}
}

func TestObjectLocation(t *testing.T) {
	p := smallNode().NewProcess("app")
	a, _ := p.Alloc("mat", 8192, 1)
	got, ok := p.Object("mat")
	if !ok || got.Addr != a.Addr || got.Domain != 1 || got.End() != a.Addr+8192 {
		t.Errorf("Object lookup: %+v", got)
	}
	objs := p.Objects()
	if len(objs) != 1 || objs[0].Name != "mat" {
		t.Errorf("Objects() = %v", objs)
	}
	// Distinct objects never overlap.
	b, _ := p.Alloc("vec", 4096, 0)
	if b.Addr < a.End() {
		t.Error("objects overlap")
	}
}

func TestSwapping(t *testing.T) {
	n := NewNode(NodeConfig{TotalBytes: 64 << 10, SwapBytes: 128 << 10, PageBytes: 4096, Domains: 1})
	p := n.NewProcess("app")
	if _, err := p.Alloc("big1", 48<<10, 0); err != nil {
		t.Fatal(err)
	}
	// Second allocation exceeds physical memory: big1 swaps out.
	if _, err := p.Alloc("big2", 48<<10, 0); err != nil {
		t.Fatalf("alloc with swap available failed: %v", err)
	}
	if p.SwapOuts() != 1 {
		t.Errorf("swap outs = %d, want 1", p.SwapOuts())
	}
	if p.SwappedBytes() != 48<<10 {
		t.Errorf("swapped bytes = %d", p.SwappedBytes())
	}
	o1, _ := p.Object("big1")
	if o1.Resident {
		t.Error("big1 should be swapped out")
	}
	// Touching big1 swaps it back in, pushing big2 out.
	if err := p.Touch("big1"); err != nil {
		t.Fatal(err)
	}
	if p.SwapIns() != 1 {
		t.Errorf("swap ins = %d, want 1", p.SwapIns())
	}
	o1, _ = p.Object("big1")
	if !o1.Resident {
		t.Error("big1 should be resident after touch")
	}
	// Free a swapped object: swap space released.
	o2, _ := p.Object("big2")
	if o2.Resident {
		t.Error("big2 should have been evicted by the touch")
	}
	if err := p.Free("big2"); err != nil {
		t.Fatal(err)
	}
	if n.SwapUsed() != 0 {
		t.Errorf("swap used = %d after free", n.SwapUsed())
	}
}

func TestOutOfMemoryAndSwap(t *testing.T) {
	n := NewNode(NodeConfig{TotalBytes: 16 << 10, SwapBytes: 8 << 10, PageBytes: 4096, Domains: 1})
	p := n.NewProcess("app")
	if _, err := p.Alloc("too-big", 32<<10, 0); err == nil {
		t.Error("allocation beyond physical memory accepted")
	}
	p.Alloc("a", 12<<10, 0)
	p.Alloc("b", 8<<10, 0) // a (12K) swaps out into 8K swap? no: 12K > 8K swap
	// Depending on eviction feasibility, either b fails or a swapped.
	if p.SwapOuts() == 0 {
		// a could not be swapped (12K > 8K swap space): b must have failed.
		if _, ok := p.Object("b"); ok {
			t.Error("b allocated without room")
		}
	}
}

func TestThreadArena(t *testing.T) {
	n := smallNode()
	p := n.NewProcess("app")
	a1 := p.NewThreadArena()
	a2 := p.NewThreadArena()
	o, err := a1.Alloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	if a1.UsedBytes() != 8192 || a2.UsedBytes() != 0 {
		t.Errorf("arena usage = %d/%d", a1.UsedBytes(), a2.UsedBytes())
	}
	if p.UsedBytes() != 8192 {
		t.Errorf("process usage = %d", p.UsedBytes())
	}
	if err := a1.Free(o); err != nil {
		t.Fatal(err)
	}
	if a1.UsedBytes() != 0 || a1.HighWater() != 8192 {
		t.Errorf("after free: used %d hw %d", a1.UsedBytes(), a1.HighWater())
	}
}

func TestAccountingInvariantsProperty(t *testing.T) {
	// Property: after any sequence of alloc/free/touch operations,
	// node.used == Σ resident object sizes, node.swapUsed == Σ swapped
	// sizes, per-domain usage sums to node usage, and high-water marks
	// never decrease.
	f := func(ops []uint16) bool {
		n := NewNode(NodeConfig{TotalBytes: 256 << 10, SwapBytes: 256 << 10, PageBytes: 4096, Domains: 3})
		p := n.NewProcess("prop")
		names := []string{"a", "b", "c", "d", "e"}
		var lastHW uint64
		for _, op := range ops {
			name := names[int(op)%len(names)]
			switch (op / 8) % 3 {
			case 0:
				size := uint64(op%31+1) * 4096
				p.Alloc(name, size, int(op)%3) // may fail: fine
			case 1:
				p.Free(name) // may fail: fine
			case 2:
				p.Touch(name) // may fail: fine
			}
			if p.HighWater() < lastHW {
				return false
			}
			lastHW = p.HighWater()

			var resident, swapped, domSum uint64
			for _, o := range p.Objects() {
				if o.Resident {
					resident += o.Size
				} else {
					swapped += o.Size
				}
			}
			for d := 0; d < n.Domains(); d++ {
				domSum += n.DomainUsed(d)
			}
			if n.UsedBytes() != resident || p.UsedBytes() != resident {
				return false
			}
			if n.SwapUsed() != swapped || p.SwappedBytes() != swapped {
				return false
			}
			if domSum != n.UsedBytes() {
				return false
			}
			if p.HighWater() < p.UsedBytes() || n.HighWater() < n.UsedBytes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
