// Package memsim simulates the node memory system behind the PAPI 3
// memory-utilization extensions the paper's §5 enumerates: memory
// available on a node, total used with high-water marks, per-process
// and per-thread usage, disk swapping, NUMA locality of a process's
// pages, and the location of individual objects (arrays, structures).
//
// Workloads allocate their arrays through this package so the papi
// memory API has something truthful to report.
package memsim

import (
	"fmt"
	"sort"
)

// NodeConfig sizes a simulated node.
type NodeConfig struct {
	TotalBytes uint64 // physical memory (default 1 GiB)
	SwapBytes  uint64 // swap space (default 2 GiB)
	PageBytes  uint64 // page size (default 4 KiB)
	Domains    int    // NUMA domains (default 2)
}

func (c *NodeConfig) fill() {
	if c.TotalBytes == 0 {
		c.TotalBytes = 1 << 30
	}
	if c.SwapBytes == 0 {
		c.SwapBytes = 2 << 30
	}
	if c.PageBytes == 0 {
		c.PageBytes = 4 << 10
	}
	if c.Domains <= 0 {
		c.Domains = 2
	}
}

// Node is one simulated shared-memory node.
type Node struct {
	cfg       NodeConfig
	used      uint64
	highWater uint64
	swapUsed  uint64
	perDomain []uint64
	procs     []*Process
}

// NewNode builds a node; zero-value config fields get defaults.
func NewNode(cfg NodeConfig) *Node {
	cfg.fill()
	return &Node{cfg: cfg, perDomain: make([]uint64, cfg.Domains)}
}

// TotalBytes returns the node's physical memory size.
func (n *Node) TotalBytes() uint64 { return n.cfg.TotalBytes }

// UsedBytes returns resident bytes across all processes.
func (n *Node) UsedBytes() uint64 { return n.used }

// AvailBytes returns free physical memory.
func (n *Node) AvailBytes() uint64 { return n.cfg.TotalBytes - n.used }

// HighWater returns the peak resident usage seen on the node.
func (n *Node) HighWater() uint64 { return n.highWater }

// SwapUsed returns bytes currently swapped out, node-wide.
func (n *Node) SwapUsed() uint64 { return n.swapUsed }

// PageBytes returns the node's page size.
func (n *Node) PageBytes() uint64 { return n.cfg.PageBytes }

// Domains returns the NUMA domain count.
func (n *Node) Domains() int { return n.cfg.Domains }

// DomainUsed returns resident bytes in one NUMA domain.
func (n *Node) DomainUsed(d int) uint64 {
	if d < 0 || d >= len(n.perDomain) {
		return 0
	}
	return n.perDomain[d]
}

// NewProcess registers a process on the node.
func (n *Node) NewProcess(name string) *Process {
	p := &Process{
		node:     n,
		name:     name,
		objects:  map[string]*Object{},
		nextAddr: 0x10000000 + uint64(len(n.procs))<<32,
	}
	n.procs = append(n.procs, p)
	return p
}

// Object is one named allocation (array, structure) with a known
// address range and NUMA placement — the paper's "location of memory
// used by an object".
type Object struct {
	Name     string
	Addr     uint64
	Size     uint64
	Domain   int
	Resident bool // false when swapped out
}

// End returns the first address past the object.
func (o *Object) End() uint64 { return o.Addr + o.Size }

// Process is one simulated address space.
type Process struct {
	node      *Node
	name      string
	used      uint64
	highWater uint64
	swapOuts  uint64 // swap-out events
	swapIns   uint64
	swapped   uint64 // bytes currently swapped out
	objects   map[string]*Object
	arenas    []*ThreadArena
	nextAddr  uint64
}

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// roundPages rounds a size up to whole pages.
func (p *Process) roundPages(size uint64) uint64 {
	pg := p.node.cfg.PageBytes
	return (size + pg - 1) / pg * pg
}

// Alloc reserves a named object of the given size on a NUMA domain
// (domain -1 places it round-robin by object count). When physical
// memory is exhausted the node swaps out this process's coldest
// resident objects; if swap is exhausted too, Alloc fails.
func (p *Process) Alloc(name string, size uint64, domain int) (*Object, error) {
	if size == 0 {
		return nil, fmt.Errorf("memsim: zero-size allocation %q", name)
	}
	if _, dup := p.objects[name]; dup {
		return nil, fmt.Errorf("memsim: object %q already allocated", name)
	}
	n := p.node
	if domain < 0 {
		domain = len(p.objects) % n.cfg.Domains
	}
	if domain >= n.cfg.Domains {
		return nil, fmt.Errorf("memsim: domain %d out of range (node has %d)", domain, n.cfg.Domains)
	}
	size = p.roundPages(size)
	if err := p.makeRoom(size); err != nil {
		return nil, fmt.Errorf("memsim: alloc %q (%d bytes): %w", name, size, err)
	}
	obj := &Object{Name: name, Addr: p.nextAddr, Size: size, Domain: domain, Resident: true}
	p.nextAddr += size + n.cfg.PageBytes // guard page
	p.objects[name] = obj
	p.used += size
	n.used += size
	n.perDomain[domain] += size
	if p.used > p.highWater {
		p.highWater = p.used
	}
	if n.used > n.highWater {
		n.highWater = n.used
	}
	return obj, nil
}

// makeRoom swaps out resident objects (largest first) until size bytes
// of physical memory are free.
func (p *Process) makeRoom(size uint64) error {
	n := p.node
	if size > n.cfg.TotalBytes {
		return fmt.Errorf("request exceeds physical memory (%d > %d)", size, n.cfg.TotalBytes)
	}
	if n.AvailBytes() >= size {
		return nil
	}
	var resident []*Object
	for _, o := range p.objects {
		if o.Resident {
			resident = append(resident, o)
		}
	}
	sort.Slice(resident, func(i, j int) bool {
		if resident[i].Size != resident[j].Size {
			return resident[i].Size > resident[j].Size
		}
		return resident[i].Addr < resident[j].Addr
	})
	for _, o := range resident {
		if n.AvailBytes() >= size {
			return nil
		}
		if n.swapUsed+o.Size > n.cfg.SwapBytes {
			continue
		}
		o.Resident = false
		p.swapOuts++
		p.swapped += o.Size
		n.swapUsed += o.Size
		n.used -= o.Size
		p.used -= o.Size
		n.perDomain[o.Domain] -= o.Size
	}
	if n.AvailBytes() >= size {
		return nil
	}
	return fmt.Errorf("out of memory: need %d, avail %d, swap full", size, n.AvailBytes())
}

// Touch marks an object as accessed, swapping it back in if needed.
func (p *Process) Touch(name string) error {
	o, ok := p.objects[name]
	if !ok {
		return fmt.Errorf("memsim: no object %q", name)
	}
	if o.Resident {
		return nil
	}
	if err := p.makeRoom(o.Size); err != nil {
		return err
	}
	o.Resident = true
	p.swapIns++
	p.swapped -= o.Size
	p.node.swapUsed -= o.Size
	p.node.used += o.Size
	p.used += o.Size
	p.node.perDomain[o.Domain] += o.Size
	if p.used > p.highWater {
		p.highWater = p.used
	}
	if p.node.used > p.node.highWater {
		p.node.highWater = p.node.used
	}
	return nil
}

// Free releases a named object.
func (p *Process) Free(name string) error {
	o, ok := p.objects[name]
	if !ok {
		return fmt.Errorf("memsim: no object %q", name)
	}
	delete(p.objects, name)
	if o.Resident {
		p.used -= o.Size
		p.node.used -= o.Size
		p.node.perDomain[o.Domain] -= o.Size
	} else {
		p.swapped -= o.Size
		p.node.swapUsed -= o.Size
	}
	return nil
}

// Object looks up a named object.
func (p *Process) Object(name string) (*Object, bool) {
	o, ok := p.objects[name]
	return o, ok
}

// Objects returns all live objects sorted by address.
func (p *Process) Objects() []*Object {
	out := make([]*Object, 0, len(p.objects))
	for _, o := range p.objects {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// UsedBytes returns the process's resident bytes.
func (p *Process) UsedBytes() uint64 { return p.used }

// HighWater returns the process's peak resident usage.
func (p *Process) HighWater() uint64 { return p.highWater }

// SwapOuts returns the number of swap-out events for the process.
func (p *Process) SwapOuts() uint64 { return p.swapOuts }

// SwapIns returns the number of swap-in events for the process.
func (p *Process) SwapIns() uint64 { return p.swapIns }

// SwappedBytes returns the process's bytes currently on swap.
func (p *Process) SwappedBytes() uint64 { return p.swapped }

// Locality returns the process's resident bytes per NUMA domain.
func (p *Process) Locality() []uint64 {
	out := make([]uint64, p.node.cfg.Domains)
	for _, o := range p.objects {
		if o.Resident {
			out[o.Domain] += o.Size
		}
	}
	return out
}

// NewThreadArena registers a per-thread allocation arena, giving the
// paper's "memory used by thread" a concrete meaning.
func (p *Process) NewThreadArena() *ThreadArena {
	a := &ThreadArena{proc: p}
	p.arenas = append(p.arenas, a)
	return a
}

// ThreadArena tracks one thread's share of the process heap.
type ThreadArena struct {
	proc      *Process
	used      uint64
	highWater uint64
	seq       int
}

// Alloc carves a thread-private object out of the process space.
func (a *ThreadArena) Alloc(size uint64) (*Object, error) {
	a.seq++
	name := fmt.Sprintf("%s/arena%p/%d", a.proc.name, a, a.seq)
	o, err := a.proc.Alloc(name, size, -1)
	if err != nil {
		return nil, err
	}
	a.used += o.Size
	if a.used > a.highWater {
		a.highWater = a.used
	}
	return o, nil
}

// Free releases a thread-private object.
func (a *ThreadArena) Free(o *Object) error {
	if err := a.proc.Free(o.Name); err != nil {
		return err
	}
	a.used -= o.Size
	return nil
}

// UsedBytes returns the thread's live bytes.
func (a *ThreadArena) UsedBytes() uint64 { return a.used }

// HighWater returns the thread's peak usage.
func (a *ThreadArena) HighWater() uint64 { return a.highWater }
