// Package faultnet wraps net.Conn and net.Listener with injectable
// transport faults — latency, chunked (partial) writes, stalls, and
// mid-frame connection cuts. The paper's position is that a counter
// interface must fail loudly and predictably rather than silently
// corrupt results (§3–§4); faultnet is how the papid test suite
// manufactures the adverse conditions that claim is checked against:
// half-dead peers, writers reset mid-JSON-frame, readers that stop
// draining, links that dribble one byte at a time.
//
// Faults are deterministic per connection (no hidden randomness): a
// test states exactly which pathology it injects, so a failure
// reproduces. Stalls honor the usual SetDeadline contract — a stalled
// Write under a write deadline returns a net.Error with Timeout()
// true, exactly like a blocked TCP send — which is what lets papid's
// deadline-based eviction be tested without filling real kernel
// buffers.
package faultnet

import (
	"errors"
	"net"
	"sync"
	"time"
)

// Faults configures the failure modes injected into one connection.
// The zero value injects nothing and behaves as the wrapped conn.
type Faults struct {
	// WriteLatency sleeps before each underlying write (and between
	// chunks when ChunkSize splits a write).
	WriteLatency time.Duration
	// ReadLatency sleeps before each underlying read.
	ReadLatency time.Duration
	// ChunkSize caps the bytes issued per underlying write, splitting
	// one caller Write into several socket writes — a frame crosses
	// the wire in pieces, exercising the reader's reassembly.
	// 0 leaves writes whole.
	ChunkSize int
	// CutAfter hard-closes the connection once this many bytes have
	// been written, possibly mid-frame — the write that crosses the
	// threshold sends only the bytes below it, then the conn resets.
	// 0 never cuts.
	CutAfter int64
	// StallAfter makes writes block (until Close or the write
	// deadline) once this many bytes have been written — a peer whose
	// receive window went to zero. 0 never stalls.
	StallAfter int64
	// StallReads makes every read block until Close or the read
	// deadline — a peer that sends nothing, forever.
	StallReads bool
}

// ErrCut is returned by writes after CutAfter severed the connection.
var ErrCut = errors.New("faultnet: connection cut")

// Conn is a net.Conn with fault injection layered on top.
type Conn struct {
	net.Conn
	f Faults

	mu      sync.Mutex
	written int64
	rd, wd  time.Time

	closed   chan struct{}
	closeOne sync.Once
}

var _ net.Conn = (*Conn)(nil)

// WrapConn layers f onto nc.
func WrapConn(nc net.Conn, f Faults) *Conn {
	return &Conn{Conn: nc, f: f, closed: make(chan struct{})}
}

// Pipe returns the two ends of an in-memory connection, each with its
// own fault set — the harness for deterministic protocol tests.
func Pipe(a, b Faults) (*Conn, *Conn) {
	ca, cb := net.Pipe()
	return WrapConn(ca, a), WrapConn(cb, b)
}

func (c *Conn) Write(p []byte) (int, error) {
	if err := c.pause(c.f.WriteLatency, c.writeDeadline); err != nil {
		return 0, err
	}
	total := 0
	for total < len(p) {
		c.mu.Lock()
		written := c.written
		c.mu.Unlock()
		if c.f.StallAfter > 0 && written >= c.f.StallAfter {
			return total, c.block(c.writeDeadline)
		}
		chunk := p[total:]
		if c.f.ChunkSize > 0 && len(chunk) > c.f.ChunkSize {
			chunk = chunk[:c.f.ChunkSize]
		}
		if c.f.CutAfter > 0 {
			remain := c.f.CutAfter - written
			if remain <= 0 {
				c.Close()
				return total, ErrCut
			}
			if int64(len(chunk)) > remain {
				chunk = chunk[:remain]
			}
		}
		n, err := c.Conn.Write(chunk)
		c.mu.Lock()
		c.written += int64(n)
		c.mu.Unlock()
		total += n
		if err != nil {
			return total, err
		}
		if total < len(p) {
			if err := c.pause(c.f.WriteLatency, c.writeDeadline); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

func (c *Conn) Read(p []byte) (int, error) {
	if c.f.StallReads {
		return 0, c.block(c.readDeadline)
	}
	if err := c.pause(c.f.ReadLatency, c.readDeadline); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

// Close unblocks any stalled operation and closes the wrapped conn.
// It is idempotent.
func (c *Conn) Close() error {
	c.closeOne.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// Written reports the bytes that reached the wrapped conn so far.
func (c *Conn) Written() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.written
}

func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.rd, c.wd = t, t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.rd = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.wd = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

func (c *Conn) readDeadline() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rd
}

func (c *Conn) writeDeadline() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wd
}

// block parks the calling op until Close or the deadline captured at
// entry; a deadline moved while blocked is not observed, matching how
// the papid server uses deadlines (set immediately before each op).
func (c *Conn) block(deadline func() time.Time) error {
	var expire <-chan time.Time
	if d := deadline(); !d.IsZero() {
		t := time.NewTimer(time.Until(d))
		defer t.Stop()
		expire = t.C
	}
	select {
	case <-c.closed:
		return net.ErrClosed
	case <-expire:
		return timeoutError{}
	}
}

// pause sleeps d, cut short by Close or the deadline.
func (c *Conn) pause(d time.Duration, deadline func() time.Time) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	var expire <-chan time.Time
	if dl := deadline(); !dl.IsZero() {
		dt := time.NewTimer(time.Until(dl))
		defer dt.Stop()
		expire = dt.C
	}
	select {
	case <-t.C:
		return nil
	case <-expire:
		return timeoutError{}
	case <-c.closed:
		return net.ErrClosed
	}
}

// timeoutError satisfies net.Error with Timeout() true, the same
// shape real sockets return on a deadline trip.
type timeoutError struct{}

var _ net.Error = timeoutError{}

func (timeoutError) Error() string   { return "faultnet: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// Listener wraps a net.Listener so every accepted connection comes
// back fault-injected. Plan chooses the faults per connection and
// receives the raw conn first, so a test can also tune the socket
// itself (e.g. (*net.TCPConn).SetWriteBuffer to make a stalled reader
// back-pressure quickly).
type Listener struct {
	net.Listener

	mu   sync.Mutex
	n    int
	plan func(i int, nc net.Conn) Faults
}

// Wrap layers plan onto ln; a nil plan injects nothing anywhere.
func Wrap(ln net.Listener, plan func(i int, nc net.Conn) Faults) *Listener {
	return &Listener{Listener: ln, plan: plan}
}

func (l *Listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.n
	l.n++
	l.mu.Unlock()
	var f Faults
	if l.plan != nil {
		f = l.plan(i, nc)
	}
	return WrapConn(nc, f), nil
}
