package faultnet

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// readAll drains r into a buffer on a goroutine, returning a channel
// that yields the collected bytes once r hits EOF/closure.
func readAll(r net.Conn) <-chan []byte {
	out := make(chan []byte, 1)
	go func() {
		var buf []byte
		tmp := make([]byte, 256)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				out <- buf
				return
			}
		}
	}()
	return out
}

func TestChunkedWritesReassemble(t *testing.T) {
	w, r := Pipe(Faults{ChunkSize: 3}, Faults{})
	got := readAll(r)
	msg := []byte(`{"op":"HELLO","version":2}` + "\n")
	n, err := w.Write(msg)
	if err != nil || n != len(msg) {
		t.Fatalf("chunked write: n=%d err=%v", n, err)
	}
	w.Close()
	if string(<-got) != string(msg) {
		t.Error("chunked frame did not reassemble")
	}
}

func TestCutSeversMidFrame(t *testing.T) {
	w, r := Pipe(Faults{CutAfter: 10}, Faults{})
	got := readAll(r)
	msg := []byte(`{"op":"HELLO","version":2}` + "\n")
	n, err := w.Write(msg)
	if n != 10 || !errors.Is(err, ErrCut) {
		t.Fatalf("cut write: n=%d err=%v, want 10 bytes then ErrCut", n, err)
	}
	if string(<-got) != string(msg[:10]) {
		t.Error("reader did not see exactly the pre-cut prefix")
	}
	// The conn is dead: further writes fail immediately.
	if _, err := w.Write([]byte("x")); err == nil {
		t.Error("write after cut succeeded")
	}
}

func TestStallHonorsWriteDeadline(t *testing.T) {
	w, r := Pipe(Faults{StallAfter: 1}, Faults{})
	defer r.Close()
	go io.Copy(io.Discard, r)
	if _, err := w.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	w.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err := w.Write([]byte("b"))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("stalled write returned %v, want a net.Error timeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("deadline trip took far longer than the deadline")
	}
}

func TestStallUnblockedByClose(t *testing.T) {
	w, r := Pipe(Faults{StallReads: true}, Faults{})
	defer r.Close()
	done := make(chan error, 1)
	go func() {
		_, err := w.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	w.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Errorf("stalled read returned %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the stalled read")
	}
}

func TestWriteLatencyDelays(t *testing.T) {
	w, r := Pipe(Faults{WriteLatency: 20 * time.Millisecond}, Faults{})
	got := readAll(r)
	start := time.Now()
	if _, err := w.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("latency write returned after %v, want >= 20ms", d)
	}
	w.Close()
	<-got
}

func TestListenerAppliesPlanPerConn(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := Wrap(ln, func(i int, nc net.Conn) Faults {
		if i == 0 {
			return Faults{CutAfter: 1}
		}
		return Faults{}
	})
	defer fln.Close()

	accepted := make(chan net.Conn, 2)
	go func() {
		for i := 0; i < 2; i++ {
			c, err := fln.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	for i := 0; i < 2; i++ {
		nc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
	}
	first, second := <-accepted, <-accepted
	defer first.Close()
	defer second.Close()
	if _, err := first.Write([]byte("ab")); !errors.Is(err, ErrCut) {
		t.Errorf("conn 0 write err %v, want ErrCut after 1 byte", err)
	}
	if _, err := second.Write([]byte("ab")); err != nil {
		t.Errorf("conn 1 write err %v, want fault-free", err)
	}
}
