package core

import (
	"testing"

	"repro/internal/hwsim"
)

// loop builds iters iterations of the given op body plus a backward
// branch, with loads/stores walking memory from base.
func loop(iters int, ops ...hwsim.Op) []hwsim.Instr {
	var out []hwsim.Instr
	mem := uint64(0x30000000)
	for it := 0; it < iters; it++ {
		pc := uint64(0x400000)
		for _, op := range ops {
			in := hwsim.Instr{Op: op, Addr: pc}
			if op == hwsim.OpLoad || op == hwsim.OpStore {
				in.Mem = mem
				mem += 8
			}
			pc += hwsim.InstrBytes
			out = append(out, in)
		}
		out = append(out, hwsim.Instr{Op: hwsim.OpBranch, Addr: pc, Taken: it != iters-1})
	}
	return out
}

func newSys(t *testing.T, platform string) *System {
	t.Helper()
	s, err := NewSystem(Options{Platform: platform})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEventSetBasicCounting(t *testing.T) {
	s := newSys(t, hwsim.PlatformCrayT3E)
	th := s.Main()
	es := th.NewEventSet()
	if err := es.AddAll(FP_INS, TOT_INS); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	th.Exec(loop(100, hwsim.OpFPAdd, hwsim.OpFPMul))
	vals := make([]int64, 2)
	if err := es.Stop(vals); err != nil {
		t.Fatal(err)
	}
	if vals[0] != 200 {
		t.Errorf("FP_INS = %d, want 200", vals[0])
	}
	if vals[1] < 300 {
		t.Errorf("TOT_INS = %d, want >= 300", vals[1])
	}
	if es.State() != StateStopped {
		t.Error("set should be stopped")
	}
}

func TestEventSetCountingAllPlatforms(t *testing.T) {
	for _, p := range hwsim.Platforms() {
		s := newSys(t, p)
		th := s.Main()
		es := th.NewEventSet()
		if err := es.AddAll(FP_INS, TOT_CYC); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if err := es.Start(); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		// Sampling substrates need enough instructions to estimate.
		th.Exec(loop(20_000, hwsim.OpFPAdd, hwsim.OpInt, hwsim.OpInt))
		vals := make([]int64, 2)
		if err := es.Stop(vals); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		const want = 20_000
		rel := relErr(vals[0], want)
		if rel > 0.05 {
			t.Errorf("%s: FP_INS = %d, want ~%d (rel %.2f%%)", p, vals[0], want, rel*100)
		}
		if vals[1] <= 0 {
			t.Errorf("%s: TOT_CYC = %d", p, vals[1])
		}
	}
}

func TestDerivedEventValues(t *testing.T) {
	// FP_OPS on POWER3 = FPU_CMPL - FRSP + FMA: FMA counts twice,
	// rounding instructions not at all.
	s := newSys(t, hwsim.PlatformAIXPower3)
	th := s.Main()
	es := th.NewEventSet()
	if err := es.AddAll(FP_INS, FP_OPS, FMA_INS); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	const iters = 500
	th.Exec(loop(iters, hwsim.OpFMA, hwsim.OpFPAdd, hwsim.OpFPRound))
	vals := make([]int64, 3)
	if err := es.Stop(vals); err != nil {
		t.Fatal(err)
	}
	// FP_INS (PM_FPU_CMPL) counts fma+add+round = 3*iters: the paper's
	// §4 discrepancy, visible as over-counting.
	if vals[0] != 3*iters {
		t.Errorf("FP_INS = %d, want %d (incl. rounding instructions)", vals[0], 3*iters)
	}
	// FP_OPS = add + 2*fma = 3*iters, rounding excluded.
	if vals[1] != 3*iters {
		t.Errorf("FP_OPS = %d, want %d", vals[1], 3*iters)
	}
	if vals[2] != iters {
		t.Errorf("FMA_INS = %d, want %d", vals[2], iters)
	}
}

func TestEventSetAddConflicts(t *testing.T) {
	s := newSys(t, hwsim.PlatformLinuxX86)
	es := s.Main().NewEventSet()
	// FLOPS and FP_ASSIST both only fit counter 0 on the P6.
	if err := es.Add(FP_INS); err != nil {
		t.Fatal(err)
	}
	fpAssist, ok := s.NativeByName("FP_ASSIST")
	if !ok {
		t.Fatal("no FP_ASSIST native")
	}
	if err := es.Add(fpAssist); !IsErr(err, ECNFLCT) {
		t.Errorf("expected ECNFLCT, got %v", err)
	}
	// The set must be unchanged by the failed add.
	if es.NumEvents() != 1 {
		t.Errorf("set has %d events after failed add", es.NumEvents())
	}
	// Duplicate adds are conflicts too.
	if err := es.Add(FP_INS); !IsErr(err, ECNFLCT) {
		t.Errorf("expected ECNFLCT for duplicate, got %v", err)
	}
	// Third distinct event on a 2-counter machine.
	if err := es.Add(TOT_CYC); err != nil {
		t.Fatal(err)
	}
	if err := es.Add(TOT_INS); !IsErr(err, ECNFLCT) {
		t.Errorf("expected ECNFLCT on third counter, got %v", err)
	}
}

func TestEventSetStateMachine(t *testing.T) {
	s := newSys(t, hwsim.PlatformLinuxX86)
	th := s.Main()
	es := th.NewEventSet()
	vals := make([]int64, 1)
	if err := es.Start(); !IsErr(err, EINVAL) {
		t.Errorf("Start on empty set: %v", err)
	}
	if err := es.Read(vals); !IsErr(err, ENOTRUN) {
		t.Errorf("Read while stopped: %v", err)
	}
	if err := es.Stop(nil); !IsErr(err, ENOTRUN) {
		t.Errorf("Stop while stopped: %v", err)
	}
	if err := es.Add(TOT_INS); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); !IsErr(err, EISRUN) {
		t.Errorf("double Start: %v", err)
	}
	if err := es.Add(TOT_CYC); !IsErr(err, EISRUN) {
		t.Errorf("Add while running: %v", err)
	}
	if err := es.Remove(TOT_INS); !IsErr(err, EISRUN) {
		t.Errorf("Remove while running: %v", err)
	}
	if err := es.Destroy(); !IsErr(err, EISRUN) {
		t.Errorf("Destroy while running: %v", err)
	}
	if err := es.Stop(vals); err != nil {
		t.Fatal(err)
	}
	if err := es.Cleanup(); err != nil {
		t.Fatal(err)
	}
	if es.NumEvents() != 0 {
		t.Error("Cleanup left events")
	}
	if err := es.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := es.Add(TOT_INS); !IsErr(err, ENOEVST) {
		t.Errorf("Add after Destroy: %v", err)
	}
}

func TestSecondSetRejectedWithoutOverlap(t *testing.T) {
	s := newSys(t, hwsim.PlatformAIXPower3)
	th := s.Main()
	es1, es2 := th.NewEventSet(), th.NewEventSet()
	if err := es1.Add(TOT_INS); err != nil {
		t.Fatal(err)
	}
	if err := es2.Add(TOT_CYC); err != nil {
		t.Fatal(err)
	}
	if err := es1.Start(); err != nil {
		t.Fatal(err)
	}
	if err := es2.Start(); !IsErr(err, EISRUN) {
		t.Errorf("v3 must reject overlapping running sets, got %v", err)
	}
	if err := es1.Stop(nil); err != nil {
		t.Fatal(err)
	}
	if err := es2.Start(); err != nil {
		t.Errorf("after stop, second set must start: %v", err)
	}
	es2.Stop(nil)
}

func TestOverlappingEventSetsV2(t *testing.T) {
	s := MustNewSystem(Options{Platform: hwsim.PlatformAIXPower3, AllowOverlap: true})
	th := s.Main()
	es1, es2 := th.NewEventSet(), th.NewEventSet()
	if err := es1.AddAll(FP_INS, TOT_INS); err != nil {
		t.Fatal(err)
	}
	if err := es2.AddAll(TOT_INS, LD_INS); err != nil {
		t.Fatal(err)
	}
	if err := es1.Start(); err != nil {
		t.Fatal(err)
	}
	th.Exec(loop(100, hwsim.OpFPAdd, hwsim.OpLoad))
	if err := es2.Start(); err != nil {
		t.Fatalf("v2 overlap start: %v", err)
	}
	th.Exec(loop(100, hwsim.OpFPAdd, hwsim.OpLoad))
	v1 := make([]int64, 2)
	v2 := make([]int64, 2)
	if err := es1.Stop(v1); err != nil {
		t.Fatal(err)
	}
	th.Exec(loop(100, hwsim.OpFPAdd, hwsim.OpLoad))
	if err := es2.Stop(v2); err != nil {
		t.Fatal(err)
	}
	// es1 saw phases 1+2 (200 FP adds); es2 saw phases 2+3 (200 loads).
	if v1[0] != 200 {
		t.Errorf("es1 FP_INS = %d, want 200", v1[0])
	}
	if v2[1] != 200 {
		t.Errorf("es2 LD_INS = %d, want 200", v2[1])
	}
	// Both saw TOT_INS > 0 over their own windows.
	if v1[1] <= 0 || v2[0] <= 0 {
		t.Errorf("TOT_INS windows: es1=%d es2=%d", v1[1], v2[0])
	}
}

func TestReadAccumReset(t *testing.T) {
	s := newSys(t, hwsim.PlatformCrayT3E)
	th := s.Main()
	es := th.NewEventSet()
	if err := es.Add(FP_INS); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	th.Exec(loop(50, hwsim.OpFPAdd))
	vals := make([]int64, 1)
	if err := es.Read(vals); err != nil {
		t.Fatal(err)
	}
	if vals[0] != 50 {
		t.Errorf("Read = %d, want 50", vals[0])
	}
	// Read must not reset.
	th.Exec(loop(25, hwsim.OpFPAdd))
	if err := es.Read(vals); err != nil {
		t.Fatal(err)
	}
	if vals[0] != 75 {
		t.Errorf("second Read = %d, want 75", vals[0])
	}
	// Accum adds and resets.
	acc := []int64{1000}
	if err := es.Accum(acc); err != nil {
		t.Fatal(err)
	}
	if acc[0] != 1075 {
		t.Errorf("Accum dst = %d, want 1075", acc[0])
	}
	th.Exec(loop(10, hwsim.OpFPAdd))
	if err := es.Read(vals); err != nil {
		t.Fatal(err)
	}
	if vals[0] != 10 {
		t.Errorf("Read after Accum = %d, want 10", vals[0])
	}
	if err := es.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := es.Read(vals); err != nil {
		t.Fatal(err)
	}
	if vals[0] != 0 {
		t.Errorf("Read after Reset = %d, want 0", vals[0])
	}
	es.Stop(nil)
}

func TestCounterWrapExtension(t *testing.T) {
	// Narrow 24-bit counters wrap every 16.7M counts; the sync layer
	// must extend them to 64 bits across reads.
	a := *archOf(t, hwsim.PlatformCrayT3E)
	a.CounterWidth = 24
	a.Platform = "test-narrow"
	s := MustNewSystem(Options{Arch: &a})
	th := s.Main()
	es := th.NewEventSet()
	if err := es.Add(TOT_CYC); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	const step = 10_000_000 // under the 16.7M wrap
	var want int64
	vals := make([]int64, 1)
	for i := 0; i < 5; i++ {
		th.CPU().Charge(step, 0)
		want += step
		if err := es.Read(vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := es.Stop(vals); err != nil {
		t.Fatal(err)
	}
	if vals[0] < want {
		t.Errorf("extended TOT_CYC = %d, want >= %d (counter wrapped %d times)",
			vals[0], want, want>>24)
	}
}

func TestMultiplexedEventSet(t *testing.T) {
	// 10 events on the 2-counter P6: impossible directly, fine
	// multiplexed, and estimates converge on a long run.
	s := newSys(t, hwsim.PlatformLinuxX86)
	th := s.Main()
	es := th.NewEventSet()
	if err := es.SetMultiplex(50_000); err != nil {
		t.Fatal(err)
	}
	evs := []Event{TOT_CYC, TOT_INS, FP_INS, LST_INS, L1_DCM, L1_ICM, L2_TCM, BR_INS, BR_MSP, TLB_DM}
	if err := es.AddAll(evs...); err != nil {
		t.Fatal(err)
	}
	if !es.Multiplexed() {
		t.Fatal("set should be multiplexed")
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	instrs := loop(400_000, hwsim.OpFPAdd, hwsim.OpLoad, hwsim.OpInt)
	before := th.CPU().Truth(hwsim.SigFPAdd)
	th.Exec(instrs)
	truthFP := int64(th.CPU().Truth(hwsim.SigFPAdd) - before)
	vals := make([]int64, len(evs))
	if err := es.Stop(vals); err != nil {
		t.Fatal(err)
	}
	// FP_INS estimate (index 2) within 10% of truth on this long run.
	rel := relErr(vals[2], truthFP)
	if rel > 0.10 {
		t.Errorf("multiplexed FP_INS = %d vs truth %d (rel %.1f%%)", vals[2], truthFP, rel*100)
	}
	// Events that fire steadily in this workload must all estimate > 0.
	// (L1_ICM and BR_MSP legitimately approach zero in a tight loop.)
	steady := map[Event]bool{TOT_CYC: true, TOT_INS: true, FP_INS: true, LST_INS: true, L1_DCM: true, L2_TCM: true, BR_INS: true, TLB_DM: true}
	for i, v := range vals {
		if steady[evs[i]] && v <= 0 {
			t.Errorf("event %s estimated %d", EventName(evs[i]), v)
		}
	}
}

func TestMultiplexRequiredForTooManyEvents(t *testing.T) {
	s := newSys(t, hwsim.PlatformLinuxX86)
	es := s.Main().NewEventSet()
	if err := es.AddAll(TOT_CYC, TOT_INS); err != nil {
		t.Fatal(err)
	}
	if err := es.Add(BR_INS); !IsErr(err, ECNFLCT) {
		t.Fatalf("third event must conflict without multiplexing: %v", err)
	}
	if err := es.SetMultiplex(0); err != nil {
		t.Fatal(err)
	}
	if err := es.Add(BR_INS); err != nil {
		t.Fatalf("multiplexed third event: %v", err)
	}
}

func TestOverflowAndProfilThroughCore(t *testing.T) {
	s := newSys(t, hwsim.PlatformCrayT3E)
	th := s.Main()
	es := th.NewEventSet()
	if err := es.Add(FP_INS); err != nil {
		t.Fatal(err)
	}
	var fires int
	var lastEv Event
	if err := es.SetOverflow(FP_INS, 100, func(_ *EventSet, addr uint64, ev Event) {
		fires++
		lastEv = ev
	}); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	th.Exec(loop(1000, hwsim.OpFPAdd))
	es.Stop(nil)
	if fires != 10 {
		t.Errorf("overflow fired %d times, want 10", fires)
	}
	if lastEv != FP_INS {
		t.Errorf("overflow event = %v", lastEv)
	}
}

func TestOverflowValidation(t *testing.T) {
	s := newSys(t, hwsim.PlatformLinuxX86)
	es := s.Main().NewEventSet()
	es.Add(TOT_INS)
	if err := es.SetOverflow(TOT_CYC, 10, func(*EventSet, uint64, Event) {}); !IsErr(err, ENOEVNT) {
		t.Errorf("overflow on absent event: %v", err)
	}
	if err := es.SetOverflow(TOT_INS, 10, nil); !IsErr(err, EINVAL) {
		t.Errorf("nil handler: %v", err)
	}
	if err := es.SetOverflow(TOT_INS, 10, func(*EventSet, uint64, Event) {}); err != nil {
		t.Fatal(err)
	}
	if err := es.SetOverflow(TOT_INS, 0, nil); err != nil {
		t.Fatalf("disarm: %v", err)
	}
}

func TestHighLevelCounters(t *testing.T) {
	s := newSys(t, hwsim.PlatformAIXPower3)
	th := s.Main()
	if err := th.StartCounters(FP_INS, TOT_INS); err != nil {
		t.Fatal(err)
	}
	if err := th.StartCounters(TOT_CYC); !IsErr(err, EISRUN) {
		t.Errorf("double StartCounters: %v", err)
	}
	th.Exec(loop(100, hwsim.OpFPAdd))
	vals := make([]int64, 2)
	if err := th.ReadCounters(vals); err != nil {
		t.Fatal(err)
	}
	if vals[0] != 100 {
		t.Errorf("FP_INS = %d, want 100", vals[0])
	}
	// ReadCounters resets: immediately reading again gives ~0.
	if err := th.ReadCounters(vals); err != nil {
		t.Fatal(err)
	}
	if vals[0] != 0 {
		t.Errorf("FP_INS after reset-read = %d, want 0", vals[0])
	}
	th.Exec(loop(50, hwsim.OpFPAdd))
	if err := th.StopCounters(vals); err != nil {
		t.Fatal(err)
	}
	if vals[0] != 50 {
		t.Errorf("final FP_INS = %d, want 50", vals[0])
	}
	if err := th.StopCounters(nil); !IsErr(err, ENOTRUN) {
		t.Errorf("double stop: %v", err)
	}
}

func TestFlopsCall(t *testing.T) {
	s := newSys(t, hwsim.PlatformAIXPower3)
	th := s.Main()
	if _, err := th.Flops(); err != nil {
		t.Fatal(err)
	}
	th.Exec(loop(1000, hwsim.OpFMA)) // 1000 FMA = 2000 flops
	res, err := th.Flops()
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 2000 {
		t.Errorf("flpops = %d, want 2000 (FMA counted twice)", res.Count)
	}
	if res.Rate <= 0 || res.VirtUsec == 0 {
		t.Errorf("rate = %f over %d usec", res.Rate, res.VirtUsec)
	}
	if err := th.StopRate(); err != nil {
		t.Fatal(err)
	}
}

func TestIPCCall(t *testing.T) {
	s := newSys(t, hwsim.PlatformCrayT3E)
	th := s.Main()
	if _, err := th.IPC(); err != nil {
		t.Fatal(err)
	}
	th.Exec(loop(1000, hwsim.OpInt, hwsim.OpInt))
	res, err := th.IPC()
	if err != nil {
		t.Fatal(err)
	}
	if res.Count < 3000 {
		t.Errorf("instructions = %d, want >= 3000", res.Count)
	}
	if res.Rate <= 0 || res.Rate > 1.2 {
		t.Errorf("IPC = %f implausible", res.Rate)
	}
	th.StopRate()
}

func TestTimers(t *testing.T) {
	s := MustNewSystem(Options{
		Platform:            hwsim.PlatformLinuxX86,
		InterferenceQuantum: 10_000,
		InterferenceSteal:   5_000,
	})
	th := s.Main()
	r0, v0 := th.RealUsec(), th.VirtUsec()
	th.Exec(loop(50_000, hwsim.OpInt, hwsim.OpInt))
	r1, v1 := th.RealUsec(), th.VirtUsec()
	if v1 <= v0 {
		t.Error("virtual time did not advance")
	}
	// Under 50% interference, real time advances ~1.5x virtual.
	dr, dv := r1-r0, v1-v0
	if dr <= dv {
		t.Errorf("real delta %d should exceed virtual delta %d under interference", dr, dv)
	}
	if th.TimerResolutionUsec() <= 0 || th.TimerCostCycles() == 0 {
		t.Error("timer metadata missing")
	}
	if th.RealCyc() <= th.VirtCyc() {
		t.Error("real cycles should exceed virtual cycles under interference")
	}
}

func TestThreadsIndependentCounters(t *testing.T) {
	s := newSys(t, hwsim.PlatformCrayT3E)
	t1 := s.Main()
	t2, err := s.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	if s.Threads() != 2 {
		t.Fatalf("Threads() = %d", s.Threads())
	}
	es1, es2 := t1.NewEventSet(), t2.NewEventSet()
	es1.Add(FP_INS)
	es2.Add(FP_INS)
	es1.Start()
	es2.Start()
	t1.Exec(loop(10, hwsim.OpFPAdd))
	t2.Exec(loop(30, hwsim.OpFPAdd))
	v1, v2 := make([]int64, 1), make([]int64, 1)
	es1.Stop(v1)
	es2.Stop(v2)
	if v1[0] != 10 || v2[0] != 30 {
		t.Errorf("per-thread counts = %d,%d want 10,30", v1[0], v2[0])
	}
}

func TestSystemQueries(t *testing.T) {
	s := newSys(t, hwsim.PlatformLinuxX86)
	if !s.QueryEvent(TOT_INS) {
		t.Error("TOT_INS should be countable")
	}
	if s.QueryEvent(LD_INS) {
		t.Error("LD_INS should be unavailable on x86")
	}
	if s.QueryEvent(Event(0x1234)) {
		t.Error("garbage event should not be countable")
	}
	ev, ok := s.NativeByName("FLOPS")
	if !ok || !s.QueryEvent(ev) {
		t.Error("FLOPS native lookup failed")
	}
	if s.EventName(ev) != "FLOPS" {
		t.Errorf("EventName(native) = %q", s.EventName(ev))
	}
	if s.Info().Platform != hwsim.PlatformLinuxX86 {
		t.Error("Info platform mismatch")
	}
	if _, err := s.Thread(5); !IsErr(err, EINVAL) {
		t.Errorf("Thread(5): %v", err)
	}
	if _, err := NewSystem(Options{Platform: "vax-vms"}); err == nil {
		t.Error("expected init failure for unknown platform")
	}
}

func TestRemoveEvent(t *testing.T) {
	s := newSys(t, hwsim.PlatformAIXPower3)
	es := s.Main().NewEventSet()
	es.AddAll(FP_INS, TOT_INS, TOT_CYC)
	if err := es.Remove(TOT_INS); err != nil {
		t.Fatal(err)
	}
	if es.NumEvents() != 2 {
		t.Errorf("NumEvents = %d, want 2", es.NumEvents())
	}
	if err := es.Remove(TOT_INS); !IsErr(err, ENOEVNT) {
		t.Errorf("remove absent: %v", err)
	}
	// Set still works after removal.
	th := s.Main()
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	th.Exec(loop(10, hwsim.OpFPAdd))
	vals := make([]int64, 2)
	if err := es.Stop(vals); err != nil {
		t.Fatal(err)
	}
	if vals[0] != 10 {
		t.Errorf("FP_INS after remove = %d", vals[0])
	}
}

func relErr(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	d := float64(a - b)
	if d < 0 {
		d = -d
	}
	return d / float64(b)
}

func TestCountingDomains(t *testing.T) {
	// PAPI_set_domain: user-domain counting excludes the measurement
	// library's own perturbation, kernel-domain counts only it.
	run := func(d hwsim.Domain) (int64, int64) {
		s := newSys(t, hwsim.PlatformLinuxX86)
		th := s.Main()
		es := th.NewEventSet()
		if err := es.AddAll(TOT_INS, TOT_CYC); err != nil {
			t.Fatal(err)
		}
		if d != 0 {
			if err := es.SetDomain(d); err != nil {
				t.Fatal(err)
			}
		}
		if err := es.Start(); err != nil {
			t.Fatal(err)
		}
		th.Exec(loop(100, hwsim.OpFPAdd, hwsim.OpInt))
		vals := make([]int64, 2)
		// Several reads: each perturbs the counters in kernel mode.
		for i := 0; i < 5; i++ {
			if err := es.Read(vals); err != nil {
				t.Fatal(err)
			}
		}
		if err := es.Stop(vals); err != nil {
			t.Fatal(err)
		}
		return vals[0], vals[1]
	}
	const progInstrs = 300 // 100 × (fpadd + int + branch)
	userIns, userCyc := run(hwsim.DomainUser)
	kernIns, kernCyc := run(hwsim.DomainKernel)
	allIns, allCyc := run(hwsim.DomainAll)
	if userIns != progInstrs {
		t.Errorf("user-domain TOT_INS = %d, want exactly %d (no library perturbation)", userIns, progInstrs)
	}
	if kernIns <= 0 {
		t.Errorf("kernel-domain TOT_INS = %d, want > 0 (the library's own instructions)", kernIns)
	}
	if allIns != userIns+kernIns {
		t.Errorf("all (%d) != user (%d) + kernel (%d)", allIns, userIns, kernIns)
	}
	if allCyc != userCyc+kernCyc {
		t.Errorf("cycles: all (%d) != user (%d) + kernel (%d)", allCyc, userCyc, kernCyc)
	}
}

func TestDomainValidation(t *testing.T) {
	s := newSys(t, hwsim.PlatformLinuxX86)
	es := s.Main().NewEventSet()
	es.Add(TOT_INS)
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	if err := es.SetDomain(hwsim.DomainUser); !IsErr(err, EISRUN) {
		t.Errorf("SetDomain while running: %v", err)
	}
	es.Stop(nil)
	if err := es.SetDomain(0); err != nil {
		t.Fatal(err)
	}
	if es.Domain() != hwsim.DomainAll {
		t.Error("zero domain should normalize to all")
	}
	// Sampling substrates cannot count kernel-only.
	s2 := MustNewSystem(Options{Platform: hwsim.PlatformTru64Alpha, SamplingPeriod: 256})
	es2 := s2.Main().NewEventSet()
	es2.Add(TOT_INS)
	if err := es2.SetDomain(hwsim.DomainKernel); err != nil {
		t.Fatal(err) // config itself is fine...
	}
	if err := es2.Start(); err == nil { // ...but starting must fail
		t.Error("kernel-only domain on a sampling substrate should fail at Start")
	}
}
