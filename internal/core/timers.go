package core

// Portable timer routines (§3: "one of the most popular features of
// PAPI"): real (wall-clock) and virtual (process) time in cycles and
// microseconds, implemented on each platform's cheapest, most accurate
// time base. Reading a timer charges the platform's timer-access cost,
// so the timers themselves are measurable — experiment E8 reports both
// resolution and cost per platform.

// chargeTimer accounts for one timer read on the thread's core.
func (t *Thread) chargeTimer() {
	c := t.sys.arch.TimerCost
	t.cpu.Charge(c, c/2)
}

// RealCyc returns total wall-clock cycles, including cycles consumed by
// competing processes on a loaded machine.
func (t *Thread) RealCyc() uint64 {
	t.chargeTimer()
	return t.cpu.RealCycles()
}

// RealUsec returns wall-clock microseconds.
func (t *Thread) RealUsec() uint64 {
	t.chargeTimer()
	return t.cpu.RealCycles() / uint64(t.sys.arch.ClockMHz)
}

// VirtCyc returns cycles consumed by this process only.
func (t *Thread) VirtCyc() uint64 {
	t.chargeTimer()
	return t.cpu.Cycles()
}

// VirtUsec returns process-virtual microseconds.
func (t *Thread) VirtUsec() uint64 {
	t.chargeTimer()
	return t.cpu.Cycles() / uint64(t.sys.arch.ClockMHz)
}

// TimerResolutionUsec returns the wall-clock timer's resolution: the
// paper's substrates use the finest time base available, which here is
// the cycle counter, so resolution is one cycle expressed in usec.
func (t *Thread) TimerResolutionUsec() float64 {
	return 1.0 / float64(t.sys.arch.ClockMHz)
}

// TimerCostCycles returns what one timer read costs on this platform.
func (t *Thread) TimerCostCycles() uint64 { return t.sys.arch.TimerCost }
