package core

// The high-level interface: start/read/accum/stop a list of events with
// no EventSet bookkeeping, plus the PAPI_flops and PAPI_ipc
// convenience calls. It is intended for "the acquisition of simple but
// accurate measurements by application engineers" (§1); everything here
// is sugar over the low-level EventSet API.

// hlState carries a thread's high-level interface state.
type hlState struct {
	counters *EventSet
	rate     *EventSet // Flops/IPC hidden set
	rateKind Event     // FP_OPS for Flops, TOT_INS for IPC
	rateReal uint64    // RealCyc at rate start
	rateVirt uint64    // VirtCyc at rate start
}

func (t *Thread) hlstate() *hlState {
	if t.hl == nil {
		t.hl = &hlState{}
	}
	return t.hl
}

// StartCounters starts counting the given events on the thread's
// hidden high-level EventSet.
func (t *Thread) StartCounters(evs ...Event) error {
	hl := t.hlstate()
	if hl.counters != nil {
		return errf(EISRUN, "high-level counters already started")
	}
	if len(evs) == 0 {
		return errf(EINVAL, "no events")
	}
	es := t.NewEventSet()
	if err := es.AddAll(evs...); err != nil {
		return err
	}
	if err := es.Start(); err != nil {
		return err
	}
	hl.counters = es
	return nil
}

// ReadCounters copies current counts into dst and resets the counters
// to zero, leaving them running (PAPI_read_counters semantics).
func (t *Thread) ReadCounters(dst []int64) error {
	hl := t.hlstate()
	if hl.counters == nil {
		return errf(ENOTRUN, "high-level counters not started")
	}
	clear(dst)
	return hl.counters.Accum(dst)
}

// AccumCounters adds current counts into dst and resets the counters,
// leaving them running (PAPI_accum_counters semantics).
func (t *Thread) AccumCounters(dst []int64) error {
	hl := t.hlstate()
	if hl.counters == nil {
		return errf(ENOTRUN, "high-level counters not started")
	}
	return hl.counters.Accum(dst)
}

// StopCounters stops the high-level counters, writing final values
// into dst (may be nil).
func (t *Thread) StopCounters(dst []int64) error {
	hl := t.hlstate()
	if hl.counters == nil {
		return errf(ENOTRUN, "high-level counters not started")
	}
	err := hl.counters.Stop(dst)
	hl.counters = nil
	return err
}

// NumCounters returns the number of physical counters, the high-level
// interface's capacity (PAPI_num_counters).
func (t *Thread) NumCounters() int { return t.sys.arch.NumCounters }

// RateResult is what Flops and IPC report.
type RateResult struct {
	RealUsec uint64  // wall time since the first call
	VirtUsec uint64  // process time since the first call
	Count    int64   // FP operations (Flops) or instructions (IPC)
	Rate     float64 // MFLOP/s over virtual time, or instructions/cycle
}

// Flops implements PAPI_flops: the first call starts a hidden FP_OPS
// measurement; subsequent calls report total floating-point operations
// and the MFLOP/s rate since the first call. The normalization quirks
// of §4 live in the FP_OPS preset mapping (FMA ×2, rounding
// instructions subtracted where the platform over-counts).
func (t *Thread) Flops() (RateResult, error) {
	return t.rateCall(FP_OPS)
}

// IPC implements PAPI_ipc: instructions completed and instructions per
// cycle since the first call.
func (t *Thread) IPC() (RateResult, error) {
	return t.rateCall(TOT_INS)
}

// StopRate tears down the hidden Flops/IPC measurement.
func (t *Thread) StopRate() error {
	hl := t.hlstate()
	if hl.rate == nil {
		return errf(ENOTRUN, "no rate measurement active")
	}
	err := hl.rate.Stop(nil)
	hl.rate = nil
	return err
}

func (t *Thread) rateCall(kind Event) (RateResult, error) {
	hl := t.hlstate()
	if hl.rate != nil && hl.rateKind != kind {
		return RateResult{}, errf(EISRUN, "another rate measurement (%s) is active", EventName(hl.rateKind))
	}
	if hl.rate == nil {
		es := t.NewEventSet()
		if err := es.Add(kind); err != nil {
			return RateResult{}, err
		}
		hl.rateReal = t.cpu.RealCycles()
		hl.rateVirt = t.cpu.Cycles()
		if err := es.Start(); err != nil {
			return RateResult{}, err
		}
		hl.rate = es
		hl.rateKind = kind
		return RateResult{}, nil
	}
	var vals [1]int64
	if err := hl.rate.Read(vals[:]); err != nil {
		return RateResult{}, err
	}
	mhz := uint64(t.sys.arch.ClockMHz)
	realUs := (t.cpu.RealCycles() - hl.rateReal) / mhz
	virtCyc := t.cpu.Cycles() - hl.rateVirt
	virtUs := virtCyc / mhz
	res := RateResult{RealUsec: realUs, VirtUsec: virtUs, Count: vals[0]}
	if kind == TOT_INS {
		if virtCyc > 0 {
			res.Rate = float64(vals[0]) / float64(virtCyc)
		}
	} else if virtUs > 0 {
		res.Rate = float64(vals[0]) / float64(virtUs) // MFLOP/s: ops per usec
	}
	return res, nil
}
