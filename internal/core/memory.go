package core

// The PAPI 3 memory-utilization extensions (§5 of the paper lists the
// requested items verbatim). All of them are served from the simulated
// node memory system the workloads allocate through.

// MemNodeInfo reports node-level memory state: "memory available on a
// node" and "total memory available/used (high-water-mark)".
type MemNodeInfo struct {
	TotalBytes     uint64
	AvailBytes     uint64
	UsedBytes      uint64
	HighWaterBytes uint64
	PageBytes      uint64
	Domains        int
}

// MemNodeInfo returns the node-level memory picture.
func (s *System) MemNodeInfo() MemNodeInfo {
	n := s.node
	return MemNodeInfo{
		TotalBytes:     n.TotalBytes(),
		AvailBytes:     n.AvailBytes(),
		UsedBytes:      n.UsedBytes(),
		HighWaterBytes: n.HighWater(),
		PageBytes:      n.PageBytes(),
		Domains:        n.Domains(),
	}
}

// MemProcessInfo reports "memory used by process" and "disk swapping by
// process".
type MemProcessInfo struct {
	UsedBytes      uint64
	HighWaterBytes uint64
	SwapOuts       uint64
	SwapIns        uint64
	SwappedBytes   uint64
}

// MemProcessInfo returns the process-level memory picture.
func (s *System) MemProcessInfo() MemProcessInfo {
	p := s.proc
	return MemProcessInfo{
		UsedBytes:      p.UsedBytes(),
		HighWaterBytes: p.HighWater(),
		SwapOuts:       p.SwapOuts(),
		SwapIns:        p.SwapIns(),
		SwappedBytes:   p.SwappedBytes(),
	}
}

// MemLocality reports "process/memory locality": resident bytes per
// NUMA domain.
func (s *System) MemLocality() []uint64 { return s.proc.Locality() }

// MemObjectInfo reports "location of memory used by an object": where a
// named array or structure lives.
type MemObjectInfo struct {
	Name     string
	Addr     uint64
	EndAddr  uint64
	Bytes    uint64
	Domain   int
	Resident bool
}

// MemObjectInfo looks up a named allocation.
func (s *System) MemObjectInfo(name string) (MemObjectInfo, bool) {
	o, ok := s.proc.Object(name)
	if !ok {
		return MemObjectInfo{}, false
	}
	return MemObjectInfo{
		Name:     o.Name,
		Addr:     o.Addr,
		EndAddr:  o.End(),
		Bytes:    o.Size,
		Domain:   o.Domain,
		Resident: o.Resident,
	}, true
}

// MemThreadInfo reports "memory used by thread".
type MemThreadInfo struct {
	UsedBytes      uint64
	HighWaterBytes uint64
}

// MemThreadInfo returns this thread's arena usage.
func (t *Thread) MemThreadInfo() MemThreadInfo {
	return MemThreadInfo{UsedBytes: t.mem.UsedBytes(), HighWaterBytes: t.mem.HighWater()}
}
