package core

import (
	"errors"

	"repro/internal/hwsim"
	"repro/internal/memsim"
	"repro/internal/substrate"
)

// Options configures a System.
type Options struct {
	// Platform selects the simulated machine (default linux-x86).
	Platform string
	// Arch, when non-nil, overrides Platform with a custom
	// architecture model — the hook through which new ports enter.
	Arch *hwsim.Arch
	// Seed drives all stochastic simulation choices (default 1).
	Seed uint64
	// AllowOverlap restores the PAPI v2 behaviour of allowing several
	// EventSets to run simultaneously on one thread, co-scheduled onto
	// the shared counters. PAPI 3 removed this to cut memory and
	// switching overhead; the E9 ablation measures why.
	AllowOverlap bool
	// MultiplexIntervalCycles overrides the multiplex slice length.
	MultiplexIntervalCycles uint64
	// SamplingPeriod overrides the hardware sampling period, in
	// instructions, on substrates that estimate counts from samples.
	SamplingPeriod int
	// InterferenceQuantum/InterferenceSteal simulate competing load:
	// every quantum cycles of process progress, steal wall-clock
	// cycles go to other processes (visible as real-vs-virtual timer
	// divergence).
	InterferenceQuantum uint64
	InterferenceSteal   uint64
	// MemNode configures the simulated node memory (zero: defaults).
	MemNode memsim.NodeConfig
}

// System is one initialized PAPI library instance bound to a simulated
// machine: the Go analogue of PAPI_library_init plus the process the
// library is linked into.
type System struct {
	opts    Options
	sub     substrate.Substrate
	arch    *hwsim.Arch
	maps    map[Event]mapping
	threads []*Thread
	node    *memsim.Node
	proc    *memsim.Process
}

// NewSystem initializes the library for a platform and creates the
// main thread.
func NewSystem(opts Options) (*System, error) {
	if opts.Platform == "" {
		opts.Platform = hwsim.PlatformLinuxX86
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	var sub substrate.Substrate
	var err error
	if opts.Arch != nil {
		sub, err = substrate.ForArch(opts.Arch)
	} else {
		sub, err = substrate.ForPlatform(opts.Platform)
	}
	if err != nil {
		return nil, errf(ENOEVNT, "init %q", opts.Platform)
	}
	node := memsim.NewNode(opts.MemNode)
	s := &System{
		opts: opts,
		sub:  sub,
		arch: sub.Arch(),
		maps: platformMappings(sub.Arch()),
		node: node,
		proc: node.NewProcess("main"),
	}
	if _, err := s.NewThread(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustNewSystem panics on error; for tests and examples.
func MustNewSystem(opts Options) *System {
	s, err := NewSystem(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Arch exposes the simulated architecture description.
func (s *System) Arch() *hwsim.Arch { return s.arch }

// Info returns the substrate's hardware summary.
func (s *System) Info() substrate.Info { return s.sub.Info() }

// Node returns the simulated node's memory system.
func (s *System) Node() *memsim.Node { return s.node }

// Process returns the simulated process's address space.
func (s *System) Process() *memsim.Process { return s.proc }

// Thread returns thread i (the main thread is 0).
func (s *System) Thread(i int) (*Thread, error) {
	if i < 0 || i >= len(s.threads) {
		return nil, errf(EINVAL, "thread %d", i)
	}
	return s.threads[i], nil
}

// Main returns the main thread.
func (s *System) Main() *Thread { return s.threads[0] }

// Threads returns the current thread count.
func (s *System) Threads() int { return len(s.threads) }

// NewThread registers a new simulated thread with its own core and
// counter context, mirroring PAPI's per-thread measurement model.
func (s *System) NewThread() (*Thread, error) {
	idx := len(s.threads)
	cpu, err := hwsim.NewCPU(s.arch, s.opts.Seed+uint64(idx)*0x9e37)
	if err != nil {
		return nil, errf(ESYS, "cpu for thread %d", idx)
	}
	if s.opts.InterferenceQuantum > 0 {
		cpu.SetInterference(s.opts.InterferenceQuantum, s.opts.InterferenceSteal)
	}
	var ctx substrate.Context
	if s.opts.SamplingPeriod > 0 && s.arch.HWSampling {
		ctx, err = s.sub.NewSamplingContext(cpu, s.opts.SamplingPeriod)
		if err != nil {
			return nil, errf(ESBSTR, "sampling context")
		}
	} else {
		ctx = s.sub.NewContext(cpu)
	}
	t := &Thread{
		sys:   s,
		index: idx,
		cpu:   cpu,
		ctx:   ctx,
		mem:   s.proc.NewThreadArena(),
	}
	s.threads = append(s.threads, t)
	return t, nil
}

// EventName resolves an event to its platform-specific name.
func (s *System) EventName(e Event) string {
	if e.IsNative() {
		if ev, ok := s.arch.EventByCode(uint32(e)); ok {
			return ev.Name
		}
	}
	return EventName(e)
}

// NativeByName resolves a platform native event name to its code.
func (s *System) NativeByName(name string) (Event, bool) {
	if ev, ok := s.arch.EventByName(name); ok {
		return Event(ev.Code), true
	}
	return 0, false
}

// ResolveEvent resolves a preset ("PAPI_TOT_INS") or platform-native
// event name, in that order — the name-resolution entry point shared by
// cmd/papirun and the papid counter-collection service.
func (s *System) ResolveEvent(name string) (Event, bool) {
	if ev, ok := PresetByName(name); ok {
		return ev, true
	}
	return s.NativeByName(name)
}

// QueryEvent reports whether an event can be counted on this platform.
func (s *System) QueryEvent(e Event) bool {
	if e.IsPreset() {
		_, ok := s.maps[e]
		return ok
	}
	if e.IsNative() {
		_, ok := s.arch.EventByCode(uint32(e))
		return ok
	}
	return false
}

// AvailPresets lists preset availability for papi_avail.
func (s *System) AvailPresets() []PresetAvail { return AvailPresets(s.arch) }

// resolve expands an event to its native terms.
func (s *System) resolve(e Event) ([]term, error) {
	if e.IsPreset() {
		mp, ok := s.maps[e]
		if !ok {
			return nil, errf(ENOEVNT, "preset %s unavailable on %s", EventName(e), s.arch.Platform)
		}
		return mp.terms, nil
	}
	if e.IsNative() {
		if _, ok := s.arch.EventByCode(uint32(e)); !ok {
			return nil, errf(ENOEVNT, "native event %#x unknown on %s", uint32(e), s.arch.Platform)
		}
		return []term{{code: uint32(e), coef: 1}}, nil
	}
	return nil, errf(EINVAL, "event %#x is neither preset nor native", uint32(e))
}

// IsErr reports whether err wraps the given PAPI error code.
func IsErr(err error, code Errno) bool { return errors.Is(err, code) }
