package core

import (
	"testing"

	"repro/internal/hwsim"
)

func archOf(t *testing.T, platform string) *hwsim.Arch {
	t.Helper()
	a, ok := hwsim.ArchByPlatform(platform)
	if !ok {
		t.Fatalf("no arch %s", platform)
	}
	return a
}

func availMap(t *testing.T, platform string) map[Event]PresetAvail {
	t.Helper()
	out := map[Event]PresetAvail{}
	for _, pa := range AvailPresets(archOf(t, platform)) {
		out[pa.Event] = pa
	}
	return out
}

func TestCorePresetsAvailableEverywhere(t *testing.T) {
	// TOT_CYC, TOT_INS, FP_INS, L1_DCM, BR_INS must map on all 7
	// platforms; they are the events every paper-era tool depended on.
	must := []Event{TOT_CYC, TOT_INS, FP_INS, L1_DCM, BR_INS}
	for _, p := range hwsim.Platforms() {
		av := availMap(t, p)
		for _, e := range must {
			if !av[e].Avail {
				t.Errorf("%s: %s unavailable", p, EventName(e))
			}
		}
	}
}

func TestPlatformSpecificAvailability(t *testing.T) {
	x86 := availMap(t, hwsim.PlatformLinuxX86)
	// The P6 counts combined memory refs but cannot separate loads.
	if x86[LD_INS].Avail {
		t.Error("linux-x86: LD_INS should be unavailable (only DATA_MEM_REFS exists)")
	}
	if !x86[LST_INS].Avail {
		t.Error("linux-x86: LST_INS should map to DATA_MEM_REFS")
	}
	if !x86[L1_DCA].Avail || x86[L1_DCA].Natives[0] != "DATA_MEM_REFS" {
		t.Errorf("linux-x86: L1_DCA override missing: %+v", x86[L1_DCA])
	}
	// FMA presets exist only on FMA hardware.
	if x86[FMA_INS].Avail {
		t.Error("linux-x86: FMA_INS should be unavailable")
	}
	p3 := availMap(t, hwsim.PlatformAIXPower3)
	if !p3[FMA_INS].Avail {
		t.Error("aix-power3: FMA_INS should be available")
	}
	ia64 := availMap(t, hwsim.PlatformLinuxIA64)
	if !ia64[FMA_INS].Avail {
		t.Error("linux-ia64: FMA_INS should be available")
	}
	// R10K has no taken-branch or stall event.
	mips := availMap(t, hwsim.PlatformIRIXMips)
	if mips[BR_TKN].Avail {
		t.Error("irix-mips: BR_TKN should be unavailable")
	}
	if mips[RES_STL].Avail {
		t.Error("irix-mips: RES_STL should be unavailable")
	}
}

func TestPower3FPInsIncludesRounding(t *testing.T) {
	// The §4 discrepancy must be preserved in the mapping.
	p3 := availMap(t, hwsim.PlatformAIXPower3)
	fp := p3[FP_INS]
	if !fp.Avail || len(fp.Natives) != 1 || fp.Natives[0] != "PM_FPU_CMPL" {
		t.Fatalf("power3 FP_INS mapping = %+v, want single PM_FPU_CMPL", fp)
	}
	if fp.Note == "" {
		t.Error("power3 FP_INS should carry the rounding-instruction note")
	}
}

func TestDerivedAddMappings(t *testing.T) {
	// LST_INS on POWER3 can come from the single LSU event or the
	// LD+ST pair; either realization must be exact.
	p3 := availMap(t, hwsim.PlatformAIXPower3)
	if !p3[LST_INS].Avail {
		t.Fatal("power3 LST_INS unavailable")
	}
	// Solaris splits FP adds and muls across PICs; FP_INS needs the
	// composite FPU_cmpl (single) rather than an incomplete pair.
	sol := availMap(t, hwsim.PlatformSolaris)
	if !sol[FP_INS].Avail {
		t.Fatal("solaris FP_INS unavailable")
	}
}

func TestDeriveMappingRejectsOvercounting(t *testing.T) {
	// A combination whose union exceeds the wanted mask must never be
	// chosen: derive against a mask that no event subset matches.
	a := archOf(t, hwsim.PlatformIRIXMips)
	if _, ok := deriveMapping(a, hwsim.Mask(hwsim.SigBranchTaken)); ok {
		t.Error("derived a taken-branch mapping on R10K, which has no such event")
	}
}

func TestEventNamesAndLookup(t *testing.T) {
	if EventName(TOT_INS) != "PAPI_TOT_INS" {
		t.Errorf("EventName(TOT_INS) = %q", EventName(TOT_INS))
	}
	e, ok := PresetByName("PAPI_FP_OPS")
	if !ok || e != FP_OPS {
		t.Error("PresetByName failed")
	}
	if _, ok := PresetByName("PAPI_NOT_REAL"); ok {
		t.Error("unexpected preset")
	}
	if !TOT_CYC.IsPreset() || TOT_CYC.IsNative() {
		t.Error("preset classification wrong")
	}
	native := Event(hwsim.NativeCodeBase | 3)
	if native.IsPreset() || !native.IsNative() {
		t.Error("native classification wrong")
	}
	if EventName(native) != "0x40000003" {
		t.Errorf("native fallback name = %q", EventName(native))
	}
	if EventDescription(TOT_CYC) == "" || EventDescription(native) != "" {
		t.Error("descriptions wrong")
	}
	if len(Presets()) != NumPresets {
		t.Error("Presets() length mismatch")
	}
}

func TestAvailListIsComplete(t *testing.T) {
	for _, p := range hwsim.Platforms() {
		list := AvailPresets(archOf(t, p))
		if len(list) != NumPresets {
			t.Errorf("%s: avail list has %d entries, want %d", p, len(list), NumPresets)
		}
		for _, pa := range list {
			if pa.Avail && len(pa.Natives) == 0 {
				t.Errorf("%s: %s available but no natives listed", p, pa.Name)
			}
		}
	}
}
