package core

import (
	"repro/internal/hwsim"
)

// Event identifies a countable event: either one of the standard PAPI
// presets (high bit 0x80000000 set) or a platform native event (bit
// 0x40000000 set, see hwsim.NativeCodeBase).
type Event uint32

// PresetBase is or'ed into preset event codes, following the C PAPI
// convention.
const PresetBase uint32 = 0x80000000

// IsPreset reports whether the event is a standard preset.
func (e Event) IsPreset() bool { return uint32(e)&PresetBase != 0 }

// IsNative reports whether the event is a platform native event.
func (e Event) IsNative() bool {
	return uint32(e)&PresetBase == 0 && uint32(e)&hwsim.NativeCodeBase != 0
}

// The standard preset events. The list is the subset of the PAPI
// specification's presets expressible in the simulated signal model.
const (
	TOT_CYC Event = Event(PresetBase | iota) // total cycles
	TOT_INS                                  // instructions completed
	LD_INS                                   // load instructions
	SR_INS                                   // store instructions
	LST_INS                                  // load/store instructions
	FP_INS                                   // floating-point instructions
	FP_OPS                                   // floating-point operations (FMA = 2)
	FMA_INS                                  // fused multiply-add instructions
	FDV_INS                                  // floating-point divides
	L1_DCA                                   // L1 data cache accesses
	L1_DCM                                   // L1 data cache misses
	L1_ICM                                   // L1 instruction cache misses
	L2_TCA                                   // L2 total cache accesses
	L2_TCM                                   // L2 total cache misses
	TLB_DM                                   // data TLB misses
	BR_INS                                   // branch instructions
	BR_TKN                                   // taken branches
	BR_MSP                                   // mispredicted branches
	RES_STL                                  // cycles stalled on resources

	presetEnd // sentinel
)

// NumPresets is the number of standard preset events.
const NumPresets = int(presetEnd &^ Event(PresetBase))

type presetInfo struct {
	name     string
	desc     string
	wanted   hwsim.SignalMask // exact signal semantics of the preset
	needsFMA bool             // preset only meaningful on FMA hardware
}

var presetTable = map[Event]presetInfo{
	TOT_CYC: {"PAPI_TOT_CYC", "Total cycles", hwsim.Mask(hwsim.SigCycles), false},
	TOT_INS: {"PAPI_TOT_INS", "Instructions completed", hwsim.Mask(hwsim.SigInstrs), false},
	LD_INS:  {"PAPI_LD_INS", "Load instructions", hwsim.Mask(hwsim.SigLoads), false},
	SR_INS:  {"PAPI_SR_INS", "Store instructions", hwsim.Mask(hwsim.SigStores), false},
	LST_INS: {"PAPI_LST_INS", "Load/store instructions", hwsim.Mask(hwsim.SigLoads, hwsim.SigStores), false},
	FP_INS:  {"PAPI_FP_INS", "Floating-point instructions", hwsim.Mask(hwsim.SigFPAdd, hwsim.SigFPMul, hwsim.SigFPDiv), false},
	FP_OPS:  {"PAPI_FP_OPS", "Floating-point operations", hwsim.Mask(hwsim.SigFPAdd, hwsim.SigFPMul, hwsim.SigFPDiv), false},
	FMA_INS: {"PAPI_FMA_INS", "Fused multiply-add instructions", hwsim.Mask(hwsim.SigFMA), true},
	FDV_INS: {"PAPI_FDV_INS", "Floating-point divide instructions", hwsim.Mask(hwsim.SigFPDiv), false},
	L1_DCA:  {"PAPI_L1_DCA", "L1 data cache accesses", hwsim.Mask(hwsim.SigL1DAccess), false},
	L1_DCM:  {"PAPI_L1_DCM", "L1 data cache misses", hwsim.Mask(hwsim.SigL1DMiss), false},
	L1_ICM:  {"PAPI_L1_ICM", "L1 instruction cache misses", hwsim.Mask(hwsim.SigL1IMiss), false},
	L2_TCA:  {"PAPI_L2_TCA", "L2 cache accesses", hwsim.Mask(hwsim.SigL2Access), false},
	L2_TCM:  {"PAPI_L2_TCM", "L2 cache misses", hwsim.Mask(hwsim.SigL2Miss), false},
	TLB_DM:  {"PAPI_TLB_DM", "Data TLB misses", hwsim.Mask(hwsim.SigTLBDMiss), false},
	BR_INS:  {"PAPI_BR_INS", "Branch instructions", hwsim.Mask(hwsim.SigBranch), false},
	BR_TKN:  {"PAPI_BR_TKN", "Taken branches", hwsim.Mask(hwsim.SigBranchTaken), false},
	BR_MSP:  {"PAPI_BR_MSP", "Mispredicted branches", hwsim.Mask(hwsim.SigBranchMiss), false},
	RES_STL: {"PAPI_RES_STL", "Cycles stalled on resources", hwsim.Mask(hwsim.SigStallCycles), false},
}

// Presets returns all standard preset events in declaration order.
func Presets() []Event {
	out := make([]Event, 0, NumPresets)
	for i := 0; i < NumPresets; i++ {
		out = append(out, Event(PresetBase|uint32(i)))
	}
	return out
}

// EventName returns the canonical name of an event: "PAPI_*" for
// presets; for natives the platform-independent fallback is the hex
// code (use System.EventName for the platform name).
func EventName(e Event) string {
	if info, ok := presetTable[e]; ok {
		return info.name
	}
	return eventHex(e)
}

func eventHex(e Event) string {
	const hexdigits = "0123456789abcdef"
	buf := []byte("0x00000000")
	v := uint32(e)
	for i := 9; i >= 2; i-- {
		buf[i] = hexdigits[v&0xf]
		v >>= 4
	}
	return string(buf)
}

// EventDescription returns the preset's description, or "" for natives.
func EventDescription(e Event) string {
	if info, ok := presetTable[e]; ok {
		return info.desc
	}
	return ""
}

// PresetByName resolves "PAPI_TOT_INS"-style names.
func PresetByName(name string) (Event, bool) {
	for e, info := range presetTable {
		if info.name == name {
			return e, true
		}
	}
	return 0, false
}
