// Package core implements the machine-independent layer of PAPI: the
// EventSet state machine, the preset-event table and its per-platform
// mapping onto native events, software extension of narrow hardware
// counters to 64 bits, per-thread contexts, opt-in multiplexing, the
// overflow/profiling dispatch, the portable timers, the high-level API
// and the PAPI 3 memory-utilization extensions. The public papi package
// re-exports this engine; substrates stay behind the
// internal/substrate interface (Figure 1's layering).
package core

import "fmt"

// Errno is a PAPI-style error code. The zero value (OK) is never
// returned as an error.
type Errno int

// PAPI error codes, matching the C library's names.
const (
	OK         Errno = 0
	EINVAL     Errno = -1  // invalid argument
	ENOMEM     Errno = -2  // insufficient memory
	ESYS       Errno = -3  // system/substrate call failed
	ESBSTR     Errno = -4  // substrate cannot implement the operation
	ECLOST     Errno = -5  // access to the counters was lost
	EBUG       Errno = -6  // internal error
	ENOEVNT    Errno = -7  // event does not exist or is unavailable
	ECNFLCT    Errno = -8  // event conflicts with an existing event
	ENOTRUN    Errno = -9  // EventSet is not running
	EISRUN     Errno = -10 // EventSet or context is already running
	ENOEVST    Errno = -11 // no such EventSet
	ENOTPRESET Errno = -12 // not a preset event
	ENOCNTR    Errno = -13 // hardware has too few counters
	EMISC      Errno = -14 // unspecified error
	ENOSUPP    Errno = -15 // feature unsupported on this platform
)

var errnoText = map[Errno]string{
	EINVAL:     "invalid argument",
	ENOMEM:     "insufficient memory",
	ESYS:       "system call failed",
	ESBSTR:     "substrate does not support the operation",
	ECLOST:     "access to the counters was lost",
	EBUG:       "internal error",
	ENOEVNT:    "event does not exist or is unavailable on this platform",
	ECNFLCT:    "event conflicts with another event in the set",
	ENOTRUN:    "EventSet is not running",
	EISRUN:     "EventSet or thread context is already running",
	ENOEVST:    "no such EventSet",
	ENOTPRESET: "not a preset event",
	ENOCNTR:    "hardware does not have enough counters",
	EMISC:      "unspecified error",
	ENOSUPP:    "feature not supported on this platform",
}

// Error implements the error interface.
func (e Errno) Error() string {
	if t, ok := errnoText[e]; ok {
		return "papi: " + t
	}
	return fmt.Sprintf("papi: error %d", int(e))
}

// errf wraps an Errno with context; errors.Is(err, code) holds for the
// wrapped error.
func errf(code Errno, format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, code)...)
}
