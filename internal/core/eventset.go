package core

import (
	"repro/internal/hwsim"
	"repro/internal/multiplex"
	"repro/internal/profil"
)

// State is an EventSet's lifecycle state.
type State int

// EventSet states.
const (
	StateStopped State = iota
	StateRunning
)

func (s State) String() string {
	switch s {
	case StateStopped:
		return "stopped"
	case StateRunning:
		return "running"
	}
	return "invalid"
}

// OverflowHandler receives counter-overflow notifications: the set, the
// reported instruction address (skidded on OOO direct-counting
// substrates, exact on sampling substrates) and the overflowed event.
type OverflowHandler func(es *EventSet, address uint64, event Event)

// EventSet is the low-level interface's unit of measurement: an ordered
// collection of events counted together, with explicit start/stop/read
// control, opt-in multiplexing, and overflow/profiling dispatch.
type EventSet struct {
	thread *Thread // the thread whose counters the set uses
	owner  *Thread // the thread that created the set
	state  State

	events  []Event  // in add order
	rows    [][]term // per event: weighted native terms
	natives []uint32 // deduped union of all terms' codes
	nidx    map[uint32]int

	vals []uint64 // 64-bit extended per-native counts since Start/Reset

	multiplexed bool
	mpxInterval uint64
	mpx         *multiplex.Engine

	domain hwsim.Domain // 0 = DomainAll

	ovfEvent     Event
	ovfNative    uint32
	ovfThreshold uint64
	ovfHandler   OverflowHandler

	prof      *profil.Profile
	destroyed bool
}

// NewEventSet creates an empty, stopped EventSet on the thread.
func (t *Thread) NewEventSet() *EventSet {
	return &EventSet{thread: t, owner: t, nidx: map[uint32]int{}}
}

// Attach rebinds a stopped EventSet to count on another thread
// (PAPI_attach): the controlling thread keeps driving the set while the
// hardware context measured is the target's. Third-party tools use this
// to monitor worker threads they did not create.
func (es *EventSet) Attach(target *Thread) error {
	if err := es.check(StateStopped); err != nil {
		return err
	}
	if target == nil {
		return errf(EINVAL, "nil target thread")
	}
	if target.sys != es.owner.sys {
		return errf(EINVAL, "target thread belongs to a different System")
	}
	es.thread = target
	return nil
}

// Detach rebinds the set to the thread that created it (PAPI_detach).
func (es *EventSet) Detach() error {
	if err := es.check(StateStopped); err != nil {
		return err
	}
	es.thread = es.owner
	return nil
}

// Attached reports whether the set currently measures a thread other
// than its creator.
func (es *EventSet) Attached() bool { return es.thread != es.owner }

// Thread returns the thread the set is bound to.
func (es *EventSet) Thread() *Thread { return es.thread }

// State returns the set's lifecycle state.
func (es *EventSet) State() State { return es.state }

// Events returns the set's events in add order.
func (es *EventSet) Events() []Event { return append([]Event(nil), es.events...) }

// NumEvents returns the number of events in the set.
func (es *EventSet) NumEvents() int { return len(es.events) }

// NativeCodes returns the deduplicated native event codes backing the
// set, in first-added order. This is the subset the allocator actually
// places on counters, so services memoizing allocation results (papid's
// cache keys on alloc.Key of exactly this slice) use it rather than the
// preset-level Events list.
func (es *EventSet) NativeCodes() []uint32 {
	return append([]uint32(nil), es.natives...)
}

func (es *EventSet) check(wantState State) error {
	if es.destroyed {
		return errf(ENOEVST, "EventSet destroyed")
	}
	if es.state != wantState {
		if wantState == StateStopped {
			return errf(EISRUN, "EventSet is running")
		}
		return errf(ENOTRUN, "EventSet is stopped")
	}
	return nil
}

// Add appends an event, verifying that the grown set remains countable
// on the platform (non-multiplexed sets must fit the counters; each
// event of a multiplexed set must at least fit alone). A conflicting
// event is rejected with ECNFLCT and the set is left unchanged.
func (es *EventSet) Add(ev Event) error {
	if err := es.check(StateStopped); err != nil {
		return err
	}
	for _, have := range es.events {
		if have == ev {
			return errf(ECNFLCT, "event %s already in set", EventName(ev))
		}
	}
	terms, err := es.thread.sys.resolve(ev)
	if err != nil {
		return err
	}
	// Tentatively merge natives.
	added := []uint32{}
	for _, t := range terms {
		if _, ok := es.nidx[t.code]; !ok {
			es.nidx[t.code] = len(es.natives)
			es.natives = append(es.natives, t.code)
			added = append(added, t.code)
		}
	}
	rollback := func() {
		for _, code := range added {
			delete(es.nidx, code)
		}
		es.natives = es.natives[:len(es.natives)-len(added)]
	}
	if es.multiplexed {
		codes := make([]uint32, len(terms))
		for i, t := range terms {
			codes[i] = t.code
		}
		if _, aerr := es.thread.ctx.Allocate(codes); aerr != nil {
			rollback()
			return errf(ECNFLCT, "event %s unallocatable alone: %v", EventName(ev), aerr)
		}
	} else if _, aerr := es.thread.ctx.Allocate(es.natives); aerr != nil {
		rollback()
		return errf(ECNFLCT, "adding %s: %v", EventName(ev), aerr)
	}
	es.events = append(es.events, ev)
	es.rows = append(es.rows, terms)
	es.vals = make([]uint64, len(es.natives))
	return nil
}

// AddAll adds several events, stopping at the first failure.
func (es *EventSet) AddAll(evs ...Event) error {
	for _, ev := range evs {
		if err := es.Add(ev); err != nil {
			return err
		}
	}
	return nil
}

// Remove deletes an event from a stopped set.
func (es *EventSet) Remove(ev Event) error {
	if err := es.check(StateStopped); err != nil {
		return err
	}
	idx := -1
	for i, have := range es.events {
		if have == ev {
			idx = i
			break
		}
	}
	if idx < 0 {
		return errf(ENOEVNT, "event %s not in set", EventName(ev))
	}
	es.events = append(es.events[:idx], es.events[idx+1:]...)
	es.rows = append(es.rows[:idx], es.rows[idx+1:]...)
	es.rebuildNatives()
	return nil
}

func (es *EventSet) rebuildNatives() {
	es.natives = es.natives[:0]
	clear(es.nidx)
	for _, row := range es.rows {
		for _, t := range row {
			if _, ok := es.nidx[t.code]; !ok {
				es.nidx[t.code] = len(es.natives)
				es.natives = append(es.natives, t.code)
			}
		}
	}
	es.vals = make([]uint64, len(es.natives))
}

// SetMultiplex opts the set into software multiplexing, allowing more
// events than physical counters at the price of estimated counts. Per
// the paper's lesson (§2) this is deliberately a low-level, explicit
// call: estimates from short runs are silently wrong, and the caller is
// expected to know it. interval 0 selects the default slice length.
func (es *EventSet) SetMultiplex(interval uint64) error {
	if err := es.check(StateStopped); err != nil {
		return err
	}
	if interval == 0 {
		interval = es.thread.sys.opts.MultiplexIntervalCycles
	}
	es.multiplexed = true
	es.mpxInterval = interval
	return nil
}

// Multiplexed reports whether the set has multiplexing enabled.
func (es *EventSet) Multiplexed() bool { return es.multiplexed }

// SetDomain selects the execution modes counted: user (the program
// itself), kernel (work the system performs on the program's behalf —
// here the measurement library's own overhead and interrupt handling),
// or both. PAPI_set_domain; the default is both.
func (es *EventSet) SetDomain(d hwsim.Domain) error {
	if err := es.check(StateStopped); err != nil {
		return err
	}
	if d == 0 {
		d = hwsim.DomainAll
	}
	es.domain = d
	return nil
}

// Domain returns the set's counting domain (0 means all).
func (es *EventSet) Domain() hwsim.Domain {
	if es.domain == 0 {
		return hwsim.DomainAll
	}
	return es.domain
}

// SetOverflow arms an overflow callback on an event of the set: every
// threshold occurrences, handler is invoked with the reported
// instruction address. threshold 0 disarms. Derived multi-native
// events dispatch on their first native term, like the C library.
func (es *EventSet) SetOverflow(ev Event, threshold uint64, handler OverflowHandler) error {
	if err := es.check(StateStopped); err != nil {
		return err
	}
	if threshold == 0 {
		es.ovfThreshold = 0
		es.ovfHandler = nil
		return nil
	}
	if handler == nil {
		return errf(EINVAL, "nil overflow handler")
	}
	if es.multiplexed {
		return errf(ENOSUPP, "overflow on a multiplexed EventSet")
	}
	idx := -1
	for i, have := range es.events {
		if have == ev {
			idx = i
			break
		}
	}
	if idx < 0 {
		return errf(ENOEVNT, "event %s not in set", EventName(ev))
	}
	es.ovfEvent = ev
	es.ovfNative = es.rows[idx][0].code
	es.ovfThreshold = threshold
	es.ovfHandler = handler
	return nil
}

// Profil attaches SVR4 profiling to an event: every threshold
// occurrences the reported PC is hashed into the histogram. It is
// sugar over SetOverflow, exactly as PAPI_profil sits on PAPI_overflow.
func (es *EventSet) Profil(p *profil.Profile, ev Event, threshold uint64) error {
	if p == nil {
		return errf(EINVAL, "nil profile")
	}
	es.prof = p
	return es.SetOverflow(ev, threshold, func(_ *EventSet, addr uint64, _ Event) {
		p.Hit(addr)
	})
}

// Profile returns the attached profil histogram, if any.
func (es *EventSet) Profile() *profil.Profile { return es.prof }

// Start begins counting from zero.
func (es *EventSet) Start() error {
	if err := es.check(StateStopped); err != nil {
		return err
	}
	if len(es.events) == 0 {
		return errf(EINVAL, "empty EventSet")
	}
	clear(es.vals)
	if err := es.thread.startSet(es); err != nil {
		return err
	}
	es.state = StateRunning
	return nil
}

func (es *EventSet) startMultiplexed() error {
	eng, err := multiplex.New(es.thread.ctx, es.natives, es.mpxInterval)
	if err != nil {
		return errf(ECNFLCT, "multiplex partition: %v", err)
	}
	if err := eng.Start(); err != nil {
		return errf(ESYS, "multiplex start: %v", err)
	}
	es.mpx = eng
	return nil
}

// refresh brings es.vals up to date with the hardware.
func (es *EventSet) refresh() error {
	if es.state != StateRunning {
		return nil
	}
	if es.mpx != nil {
		return es.mpx.Snapshot(es.vals)
	}
	return es.thread.sync()
}

// compute folds per-native values into per-event results.
func (es *EventSet) compute(dst []int64) error {
	if len(dst) < len(es.events) {
		return errf(EINVAL, "destination holds %d values, need %d", len(dst), len(es.events))
	}
	for i, row := range es.rows {
		var v int64
		for _, t := range row {
			v += t.coef * int64(es.vals[es.nidx[t.code]])
		}
		dst[i] = v
	}
	return nil
}

// Read writes current event values into dst without disturbing
// counting.
func (es *EventSet) Read(dst []int64) error {
	if err := es.check(StateRunning); err != nil {
		return err
	}
	if err := es.refresh(); err != nil {
		return err
	}
	return es.compute(dst)
}

// Accum adds current values into dst and resets the counters to zero,
// leaving the set running (PAPI_accum).
func (es *EventSet) Accum(dst []int64) error {
	if err := es.check(StateRunning); err != nil {
		return err
	}
	if err := es.refresh(); err != nil {
		return err
	}
	tmp := make([]int64, len(es.events))
	if err := es.compute(tmp); err != nil {
		return err
	}
	if len(dst) < len(tmp) {
		return errf(EINVAL, "destination holds %d values, need %d", len(dst), len(tmp))
	}
	for i, v := range tmp {
		dst[i] += v
	}
	return es.zero()
}

// Reset zeroes the counters (running or stopped).
func (es *EventSet) Reset() error {
	if es.destroyed {
		return errf(ENOEVST, "EventSet destroyed")
	}
	if es.state == StateRunning {
		if err := es.refresh(); err != nil {
			return err
		}
	}
	return es.zero()
}

func (es *EventSet) zero() error {
	clear(es.vals)
	if es.mpx != nil && es.state == StateRunning {
		if err := es.mpx.Reset(); err != nil {
			return errf(ESYS, "multiplex reset: %v", err)
		}
	}
	return nil
}

// Stop halts counting and writes final values into dst (may be nil).
func (es *EventSet) Stop(dst []int64) error {
	if err := es.check(StateRunning); err != nil {
		return err
	}
	// stopSet folds the final hardware deltas into es.vals itself.
	if err := es.thread.stopSet(es); err != nil {
		return err
	}
	es.state = StateStopped
	es.mpx = nil
	if dst != nil {
		return es.compute(dst)
	}
	return nil
}

// Cleanup removes all events from a stopped set (PAPI_cleanup_eventset).
func (es *EventSet) Cleanup() error {
	if err := es.check(StateStopped); err != nil {
		return err
	}
	es.events = es.events[:0]
	es.rows = es.rows[:0]
	es.rebuildNatives()
	es.ovfThreshold = 0
	es.ovfHandler = nil
	es.prof = nil
	es.multiplexed = false
	return nil
}

// Destroy releases the set; further use fails with ENOEVST.
func (es *EventSet) Destroy() error {
	if es.state == StateRunning {
		return errf(EISRUN, "destroying a running EventSet")
	}
	es.destroyed = true
	return nil
}

// Footprint estimates the set's memory footprint in bytes, counting its
// slices and maps. The E9 ablation compares footprints and switch
// costs with overlap support on and off.
func (es *EventSet) Footprint() int {
	bytes := cap(es.events)*4 + cap(es.natives)*4 + cap(es.vals)*8
	for _, row := range es.rows {
		bytes += cap(row) * 16
	}
	bytes += len(es.nidx) * 16
	// A thread co-scheduling N overlapping sets keeps union tables
	// whose cost is attributable to the sets that forced them.
	if es.thread.sys.opts.AllowOverlap {
		bytes += cap(es.thread.combined)*4 + cap(es.thread.lastRaw)*8 + cap(es.thread.rawBuf)*8
	}
	return bytes
}
