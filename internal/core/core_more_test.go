package core

import (
	"strings"
	"testing"

	"repro/internal/hwsim"
	"repro/internal/memsim"
	"repro/internal/profil"
)

func TestProfilThroughEventSet(t *testing.T) {
	s := newSys(t, hwsim.PlatformCrayT3E)
	th := s.Main()
	es := th.NewEventSet()
	if err := es.Add(FP_INS); err != nil {
		t.Fatal(err)
	}
	hist, err := profil.Covering(0x400000, 0x400040, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := es.Profil(hist, FP_INS, 50); err != nil {
		t.Fatal(err)
	}
	if es.Profile() != hist {
		t.Error("profile not attached")
	}
	if err := es.Profil(nil, FP_INS, 50); !IsErr(err, EINVAL) {
		t.Errorf("nil profile: %v", err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	th.Exec(loop(1000, hwsim.OpFPAdd))
	es.Stop(nil)
	if hist.Total() != 20 {
		t.Errorf("profil hits = %d, want 20 (1000 FP / 50)", hist.Total())
	}
}

func TestAccumAndResetMultiplexed(t *testing.T) {
	s := newSys(t, hwsim.PlatformLinuxX86)
	th := s.Main()
	es := th.NewEventSet()
	es.SetMultiplex(20_000)
	if err := es.AddAll(TOT_CYC, TOT_INS, FP_INS); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	th.Exec(loop(100_000, hwsim.OpFPAdd, hwsim.OpInt))
	acc := make([]int64, 3)
	if err := es.Accum(acc); err != nil {
		t.Fatal(err)
	}
	if acc[2] == 0 {
		t.Error("multiplexed accum saw no FP")
	}
	// After accum the estimates restart near zero.
	vals := make([]int64, 3)
	if err := es.Read(vals); err != nil {
		t.Fatal(err)
	}
	if vals[2] > acc[2]/2 {
		t.Errorf("post-accum estimate %d not reset (accumulated %d)", vals[2], acc[2])
	}
	if err := es.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := es.Stop(nil); err != nil {
		t.Fatal(err)
	}
	// Reset on a stopped set is legal.
	if err := es.Reset(); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryAPIFromCore(t *testing.T) {
	s := MustNewSystem(Options{
		Platform: hwsim.PlatformCrayT3E,
		MemNode:  memsim.NodeConfig{TotalBytes: 32 << 20, Domains: 2},
	})
	if _, err := s.Process().Alloc("buf", 4<<20, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Main().Arena().Alloc(1 << 20); err != nil {
		t.Fatal(err)
	}
	n := s.MemNodeInfo()
	if n.TotalBytes != 32<<20 || n.UsedBytes != 5<<20 {
		t.Errorf("node info %+v", n)
	}
	p := s.MemProcessInfo()
	if p.UsedBytes != 5<<20 || p.HighWaterBytes != 5<<20 {
		t.Errorf("proc info %+v", p)
	}
	tm := s.Main().MemThreadInfo()
	if tm.UsedBytes != 1<<20 {
		t.Errorf("thread info %+v", tm)
	}
	// buf went to domain 1 explicitly; the thread arena's round-robin
	// placement (second object) also landed on domain 1.
	loc := s.MemLocality()
	if loc[0] != 0 || loc[1] != 5<<20 {
		t.Errorf("locality %v", loc)
	}
	o, ok := s.MemObjectInfo("buf")
	if !ok || o.Bytes != 4<<20 || o.Domain != 1 || !o.Resident || o.EndAddr != o.Addr+o.Bytes {
		t.Errorf("object info %+v ok=%v", o, ok)
	}
	if _, ok := s.MemObjectInfo("ghost"); ok {
		t.Error("phantom object found")
	}
	if s.Node() == nil || s.Process() == nil || s.Arch() == nil {
		t.Error("accessors broken")
	}
}

func TestAccumCountersAndNumCounters(t *testing.T) {
	s := newSys(t, hwsim.PlatformCrayT3E)
	th := s.Main()
	if th.NumCounters() != 3 {
		t.Errorf("NumCounters = %d", th.NumCounters())
	}
	if err := th.AccumCounters(make([]int64, 1)); !IsErr(err, ENOTRUN) {
		t.Errorf("AccumCounters before start: %v", err)
	}
	if err := th.StartCounters(FP_INS); err != nil {
		t.Fatal(err)
	}
	if err := th.StartCounters(); err == nil {
		t.Error("second StartCounters accepted")
	}
	th.Exec(loop(10, hwsim.OpFPAdd))
	acc := []int64{100}
	if err := th.AccumCounters(acc); err != nil {
		t.Fatal(err)
	}
	if acc[0] != 110 {
		t.Errorf("AccumCounters = %d, want 110", acc[0])
	}
	th.StopCounters(nil)
	if err := th.ReadCounters(acc); !IsErr(err, ENOTRUN) {
		t.Errorf("ReadCounters after stop: %v", err)
	}
}

func TestRateCallErrors(t *testing.T) {
	s := newSys(t, hwsim.PlatformAIXPower3)
	th := s.Main()
	if err := th.StopRate(); !IsErr(err, ENOTRUN) {
		t.Errorf("StopRate without rate: %v", err)
	}
	if _, err := th.Flops(); err != nil {
		t.Fatal(err)
	}
	if _, err := th.IPC(); !IsErr(err, EISRUN) {
		t.Errorf("IPC while Flops active: %v", err)
	}
	if err := th.StopRate(); err != nil {
		t.Fatal(err)
	}
	// Flops needs FP_OPS; every built-in platform has it, so drive the
	// failure with a custom arch lacking FP events.
	a := *archOf(t, hwsim.PlatformCrayT3E)
	a.Platform = "test-no-fp"
	var evs []hwsim.NativeEvent
	for _, ev := range a.Events {
		if ev.Signals&hwsim.Mask(hwsim.SigFPAdd, hwsim.SigFPMul, hwsim.SigFPDiv) == 0 {
			evs = append(evs, ev)
		}
	}
	a.Events = evs
	s2 := MustNewSystem(Options{Arch: &a})
	if _, err := s2.Main().Flops(); !IsErr(err, ENOEVNT) {
		t.Errorf("Flops without FP_OPS: %v", err)
	}
}

func TestEventSetAccessors(t *testing.T) {
	s := newSys(t, hwsim.PlatformLinuxX86)
	th := s.Main()
	es := th.NewEventSet()
	es.AddAll(TOT_INS, TOT_CYC)
	if es.Thread() != th {
		t.Error("Thread() wrong")
	}
	evs := es.Events()
	if len(evs) != 2 || evs[0] != TOT_INS {
		t.Errorf("Events() = %v", evs)
	}
	// The returned slice is a copy.
	evs[0] = TOT_CYC
	if es.Events()[0] != TOT_INS {
		t.Error("Events() aliases internal state")
	}
	if es.Footprint() <= 0 {
		t.Error("Footprint = 0")
	}
	if StateStopped.String() != "stopped" || StateRunning.String() != "running" || State(9).String() != "invalid" {
		t.Error("State strings")
	}
	if th.Index() != 0 || th.System() != s || th.Arena() == nil {
		t.Error("thread accessors")
	}
}

func TestErrnoTexts(t *testing.T) {
	for _, code := range []Errno{EINVAL, ENOMEM, ESYS, ESBSTR, ECLOST, EBUG,
		ENOEVNT, ECNFLCT, ENOTRUN, EISRUN, ENOEVST, ENOTPRESET, ENOCNTR, EMISC, ENOSUPP} {
		if !strings.HasPrefix(code.Error(), "papi: ") {
			t.Errorf("%d: %q", code, code.Error())
		}
	}
	if Errno(-99).Error() != "papi: error -99" {
		t.Errorf("unknown code text: %q", Errno(-99).Error())
	}
}

func TestAvailPresetsFromSystem(t *testing.T) {
	s := newSys(t, hwsim.PlatformSolaris)
	av := s.AvailPresets()
	if len(av) != NumPresets {
		t.Errorf("avail entries = %d", len(av))
	}
}

func TestResolveErrors(t *testing.T) {
	s := newSys(t, hwsim.PlatformLinuxX86)
	es := s.Main().NewEventSet()
	if err := es.Add(Event(0x123)); !IsErr(err, EINVAL) {
		t.Errorf("garbage event: %v", err)
	}
	if err := es.Add(Event(hwsim.NativeCodeBase | 0x3fff)); !IsErr(err, ENOEVNT) {
		t.Errorf("unknown native: %v", err)
	}
}

func TestAttachDetach(t *testing.T) {
	s := newSys(t, hwsim.PlatformCrayT3E)
	main := s.Main()
	worker, err := s.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	es := main.NewEventSet()
	if err := es.Add(FP_INS); err != nil {
		t.Fatal(err)
	}
	if es.Attached() {
		t.Error("fresh set should not be attached")
	}
	if err := es.Attach(nil); !IsErr(err, EINVAL) {
		t.Errorf("nil attach: %v", err)
	}
	other := MustNewSystem(Options{Platform: hwsim.PlatformCrayT3E})
	if err := es.Attach(other.Main()); !IsErr(err, EINVAL) {
		t.Errorf("cross-system attach: %v", err)
	}
	if err := es.Attach(worker); err != nil {
		t.Fatal(err)
	}
	if !es.Attached() || es.Thread() != worker {
		t.Error("attach did not rebind")
	}
	// The attached set counts the worker's work, not the owner's.
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	main.Exec(loop(500, hwsim.OpFPAdd))  // owner's work: invisible
	worker.Exec(loop(70, hwsim.OpFPAdd)) // target's work: counted
	vals := make([]int64, 1)
	if err := es.Stop(vals); err != nil {
		t.Fatal(err)
	}
	if vals[0] != 70 {
		t.Errorf("attached FP_INS = %d, want 70", vals[0])
	}
	// Attach while running is rejected; detach restores the owner.
	es.Start()
	if err := es.Attach(main); !IsErr(err, EISRUN) {
		t.Errorf("attach while running: %v", err)
	}
	es.Stop(nil)
	if err := es.Detach(); err != nil {
		t.Fatal(err)
	}
	if es.Attached() || es.Thread() != main {
		t.Error("detach did not restore owner")
	}
}
