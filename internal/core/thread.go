package core

import (
	"repro/internal/hwsim"
	"repro/internal/memsim"
	"repro/internal/substrate"
)

// Thread is one simulated thread of execution with its own core and
// counter context — PAPI counts per thread, so every measurement hangs
// off one of these.
type Thread struct {
	sys   *System
	index int
	cpu   *hwsim.CPU
	ctx   substrate.Context
	mem   *memsim.ThreadArena

	running  []*EventSet // sets currently counting (≤1 unless AllowOverlap)
	mpxOwner *EventSet   // set that owns the context via multiplexing

	combined []uint32 // union of running sets' natives, as programmed
	lastRaw  []uint64 // last raw hardware values, per combined position
	rawBuf   []uint64
	armedOvf []int // combined positions with overflow armed

	hl *hlState
}

// Index returns the thread's index within its System.
func (t *Thread) Index() int { return t.index }

// CPU exposes the simulated core (workloads execute on it).
func (t *Thread) CPU() *hwsim.CPU { return t.cpu }

// Arena returns the thread's memory arena.
func (t *Thread) Arena() *memsim.ThreadArena { return t.mem }

// System returns the owning System.
func (t *Thread) System() *System { return t.sys }

// Run executes an instruction stream on this thread's core.
func (t *Thread) Run(s hwsim.Stream) { t.cpu.Run(s) }

// Exec executes a slice of instructions on this thread's core.
func (t *Thread) Exec(instrs []hwsim.Instr) { t.cpu.ExecSlice(instrs) }

// RunningSets returns how many EventSets are counting on this thread.
func (t *Thread) RunningSets() int { return len(t.running) }

// sync reads the live hardware and distributes the deltas since the
// previous sync to every running EventSet's 64-bit accumulators. This
// is also where narrow hardware counters get extended: deltas are
// computed modulo the substrate's width mask, so a counter may wrap at
// most once between syncs without losing counts.
func (t *Thread) sync() error {
	if len(t.running) == 0 || len(t.combined) == 0 {
		return nil
	}
	if err := t.ctx.Read(t.rawBuf[:len(t.combined)]); err != nil {
		return errf(ESYS, "read")
	}
	mask := t.ctx.WidthMask()
	for i, code := range t.combined {
		delta := (t.rawBuf[i] - t.lastRaw[i]) & mask
		if delta == 0 {
			continue
		}
		t.lastRaw[i] = t.rawBuf[i]
		for _, es := range t.running {
			if vi, ok := es.nidx[code]; ok {
				es.vals[vi] += delta
			}
		}
	}
	return nil
}

// reprogram stops the hardware (folding pending deltas first when it
// was running) and restarts it with the union of all running sets'
// native events. This is the v2 overlapping-EventSets machinery whose
// cost the E9 ablation measures; with a single running set it reduces
// to a plain start.
func (t *Thread) reprogram(wasRunning bool) error {
	if wasRunning {
		if err := t.sync(); err != nil {
			return err
		}
		t.disarmOverflow()
		if err := t.ctx.Stop(nil); err != nil {
			return errf(ESYS, "stop for reprogram")
		}
	}
	// Build the union, preserving first-seen order.
	t.combined = t.combined[:0]
	seen := map[uint32]bool{}
	for _, es := range t.running {
		for _, code := range es.natives {
			if !seen[code] {
				seen[code] = true
				t.combined = append(t.combined, code)
			}
		}
	}
	if len(t.combined) == 0 {
		return nil
	}
	assign, err := t.ctx.Allocate(t.combined)
	if err != nil {
		return errf(ECNFLCT, "co-scheduling %d events", len(t.combined))
	}
	// Domain: co-scheduled sets share the hardware, so they must agree.
	domain := hwsim.Domain(0)
	for _, es := range t.running {
		d := es.Domain()
		if domain == 0 {
			domain = d
		} else if d != domain {
			return errf(ECNFLCT, "overlapping EventSets with different counting domains")
		}
	}
	if err := t.ctx.SetDomain(domain); err != nil {
		return errf(ESBSTR, "set domain: %v", err)
	}
	if err := t.armOverflow(); err != nil {
		return err
	}
	if err := t.ctx.Start(t.combined, assign); err != nil {
		return errf(ESYS, "start")
	}
	if cap(t.lastRaw) < len(t.combined) {
		t.lastRaw = make([]uint64, len(t.combined))
		t.rawBuf = make([]uint64, len(t.combined))
	} else {
		t.lastRaw = t.lastRaw[:len(t.combined)]
		t.rawBuf = t.rawBuf[:len(t.combined)]
		clear(t.lastRaw)
	}
	return nil
}

// armOverflow translates running sets' overflow requests into substrate
// positions. Overflow is only supported for a solely-running set; the
// state checks happen before this is called.
func (t *Thread) armOverflow() error {
	t.armedOvf = t.armedOvf[:0]
	for _, es := range t.running {
		if es.ovfThreshold == 0 {
			continue
		}
		pos := -1
		for i, code := range t.combined {
			if code == es.ovfNative {
				pos = i
				break
			}
		}
		if pos < 0 {
			return errf(EBUG, "overflow native not programmed")
		}
		set, handler, ev := es, es.ovfHandler, es.ovfEvent
		err := t.ctx.SetOverflow(pos, es.ovfThreshold, func(pc uint64, _ int) {
			handler(set, pc, ev)
		})
		if err != nil {
			return errf(ESYS, "arm overflow")
		}
		t.armedOvf = append(t.armedOvf, pos)
	}
	return nil
}

func (t *Thread) disarmOverflow() {
	for _, pos := range t.armedOvf {
		_ = t.ctx.SetOverflow(pos, 0, nil)
	}
	t.armedOvf = t.armedOvf[:0]
}

// startSet transitions an EventSet to running on this thread.
func (t *Thread) startSet(es *EventSet) error {
	if t.mpxOwner != nil {
		return errf(EISRUN, "thread busy with a multiplexed EventSet")
	}
	if len(t.running) > 0 {
		if es.multiplexed {
			return errf(EISRUN, "cannot multiplex while other EventSets run")
		}
		if !t.sys.opts.AllowOverlap {
			return errf(EISRUN, "another EventSet is running (overlapping EventSets were removed in PAPI 3; set Options.AllowOverlap for v2 behaviour)")
		}
		if es.ovfThreshold != 0 {
			return errf(ENOSUPP, "overflow on overlapping EventSets")
		}
		for _, r := range t.running {
			if r.ovfThreshold != 0 {
				return errf(ENOSUPP, "overflow armed on an already-running EventSet")
			}
		}
	}
	if es.multiplexed {
		if err := es.startMultiplexed(); err != nil {
			return err
		}
		t.mpxOwner = es
		t.running = append(t.running, es)
		return nil
	}
	wasRunning := len(t.running) > 0
	t.running = append(t.running, es)
	if err := t.reprogram(wasRunning); err != nil {
		t.running = t.running[:len(t.running)-1]
		if wasRunning {
			// Restore the previous programming for the other sets.
			if rerr := t.reprogram(false); rerr != nil {
				return rerr
			}
		}
		return err
	}
	return nil
}

// stopSet folds final counts into es and removes it from the running
// list, reprogramming the remaining sets (if any).
func (t *Thread) stopSet(es *EventSet) error {
	idx := -1
	for i, r := range t.running {
		if r == es {
			idx = i
			break
		}
	}
	if idx < 0 {
		return errf(ENOTRUN, "EventSet not running")
	}
	if es == t.mpxOwner {
		if err := es.mpx.Stop(es.vals); err != nil {
			return errf(ESYS, "multiplex stop")
		}
		t.mpxOwner = nil
		t.running = append(t.running[:idx], t.running[idx+1:]...)
		return nil
	}
	if err := t.sync(); err != nil {
		return err
	}
	t.disarmOverflow()
	if err := t.ctx.Stop(nil); err != nil {
		return errf(ESYS, "stop")
	}
	t.running = append(t.running[:idx], t.running[idx+1:]...)
	t.combined = t.combined[:0]
	if len(t.running) > 0 {
		return t.reprogram(false)
	}
	return nil
}
