package core

import (
	"sync"

	"repro/internal/hwsim"
)

// term is one weighted native event in a preset mapping: the preset's
// value is the sum of coef × native-count over all terms.
type term struct {
	code uint32
	coef int64
}

// mapping describes how one event is realized on a platform.
type mapping struct {
	terms   []term
	derived string // "none", "derived_add", "derived_weighted"
	note    string // documented platform quirk, if any
}

// override hand-codes a platform's preset mapping where the automatic
// derivation would pick a different (or no) combination — exactly the
// per-substrate preset tables of the C implementation.
type override struct {
	names []string
	coefs []int64
	note  string
}

var presetOverrides = map[string]map[Event]override{
	hwsim.PlatformAIXPower3: {
		// The paper's §4 discrepancy, preserved deliberately: the
		// POWER3 FPU-completion event includes frsp/fconv rounding
		// instructions, so PAPI_FP_INS over-counts codes that convert
		// between single and double precision.
		FP_INS: {
			names: []string{"PM_FPU_CMPL"},
			coefs: []int64{1},
			note:  "includes frsp/fconv rounding instructions (paper §4 discrepancy)",
		},
		// FP_OPS corrects for rounding and counts FMA as 2 ops:
		// (add+mul+div+fma+frsp) - frsp + fma.
		FP_OPS: {
			names: []string{"PM_FPU_CMPL", "PM_FPU_FRSP_FCONV", "PM_FPU_FMA"},
			coefs: []int64{1, -1, 1},
			note:  "FMA counted as two FP operations",
		},
	},
	hwsim.PlatformLinuxIA64: {
		// FP_OPS_RETIRED counts an FMA once; add FMA again for ops.
		FP_OPS: {
			names: []string{"FP_OPS_RETIRED", "FP_FMA_RETIRED"},
			coefs: []int64{1, 1},
			note:  "FMA counted as two FP operations",
		},
	},
	hwsim.PlatformLinuxX86: {
		// Every load/store accesses the L1D on the P6; the memory-refs
		// event is numerically the access count.
		L1_DCA: {
			names: []string{"DATA_MEM_REFS"},
			coefs: []int64{1},
			note:  "counted via DATA_MEM_REFS (every reference accesses L1D)",
		},
	},
}

func init() {
	// Windows shares the P6 event table, so it shares its overrides.
	presetOverrides[hwsim.PlatformWindows] = presetOverrides[hwsim.PlatformLinuxX86]
}

var (
	mappingMu sync.Mutex
	// Keyed by Arch identity, not platform string: custom architecture
	// models may reuse a platform key while altering the event table.
	mappingCache = map[*hwsim.Arch]map[Event]mapping{}
)

// platformMappings returns (building and caching on first use) the
// preset→native mapping table for an architecture.
func platformMappings(a *hwsim.Arch) map[Event]mapping {
	mappingMu.Lock()
	defer mappingMu.Unlock()
	if m, ok := mappingCache[a]; ok {
		return m
	}
	m := buildMappings(a)
	mappingCache[a] = m
	return m
}

func buildMappings(a *hwsim.Arch) map[Event]mapping {
	out := make(map[Event]mapping, NumPresets)
	ov := presetOverrides[a.Platform]
	for _, e := range Presets() {
		info := presetTable[e]
		if info.needsFMA && !a.HasFMA {
			continue // preset meaningless on this hardware
		}
		if o, ok := ov[e]; ok {
			mp, ok := resolveOverride(a, o)
			if ok {
				out[e] = mp
			}
			continue
		}
		wanted := info.wanted
		if a.HasFMA && (e == FP_INS || e == FP_OPS) {
			// On FMA hardware an FMA is one FP instruction; FP_OPS
			// needs an override to count it twice (see table above).
			wanted |= hwsim.Mask(hwsim.SigFMA)
		}
		if mp, ok := deriveMapping(a, wanted); ok {
			out[e] = mp
		}
	}
	return out
}

func resolveOverride(a *hwsim.Arch, o override) (mapping, bool) {
	mp := mapping{derived: "derived_weighted", note: o.note}
	if len(o.names) == 1 && o.coefs[0] == 1 {
		mp.derived = "none"
	}
	for i, name := range o.names {
		ev, ok := a.EventByName(name)
		if !ok {
			return mapping{}, false
		}
		mp.terms = append(mp.terms, term{code: ev.Code, coef: o.coefs[i]})
	}
	return mp, true
}

// deriveMapping searches the native table for an exact realization of
// the wanted signal mask: a single event, or a sum of two or three
// events with pairwise-disjoint masks that union to exactly the wanted
// set. Combinations with stray signals would over-count and are never
// accepted — interpretation beyond that is left to the user (paper §4).
func deriveMapping(a *hwsim.Arch, wanted hwsim.SignalMask) (mapping, bool) {
	evs := a.Events
	// Single event.
	for i := range evs {
		if evs[i].Signals == wanted {
			return mapping{terms: []term{{code: evs[i].Code, coef: 1}}, derived: "none"}, true
		}
	}
	// Candidate components: events whose mask is a strict subset.
	var cand []int
	for i := range evs {
		if evs[i].Signals&^wanted == 0 && evs[i].Signals != 0 {
			cand = append(cand, i)
		}
	}
	// Pairs.
	for x := 0; x < len(cand); x++ {
		mx := evs[cand[x]].Signals
		for y := x + 1; y < len(cand); y++ {
			my := evs[cand[y]].Signals
			if mx&my == 0 && mx|my == wanted {
				return mapping{terms: []term{
					{code: evs[cand[x]].Code, coef: 1},
					{code: evs[cand[y]].Code, coef: 1},
				}, derived: "derived_add"}, true
			}
		}
	}
	// Triples.
	for x := 0; x < len(cand); x++ {
		mx := evs[cand[x]].Signals
		for y := x + 1; y < len(cand); y++ {
			my := evs[cand[y]].Signals
			if mx&my != 0 {
				continue
			}
			for z := y + 1; z < len(cand); z++ {
				mz := evs[cand[z]].Signals
				if mz&(mx|my) == 0 && mx|my|mz == wanted {
					return mapping{terms: []term{
						{code: evs[cand[x]].Code, coef: 1},
						{code: evs[cand[y]].Code, coef: 1},
						{code: evs[cand[z]].Code, coef: 1},
					}, derived: "derived_add"}, true
				}
			}
		}
	}
	return mapping{}, false
}

// PresetAvail describes one preset's availability on a platform, for
// papi_avail-style listings.
type PresetAvail struct {
	Event   Event
	Name    string
	Desc    string
	Avail   bool
	Derived string
	Natives []string
	Note    string
}

// AvailPresets lists every standard preset and how (whether) the given
// platform realizes it.
func AvailPresets(a *hwsim.Arch) []PresetAvail {
	maps := platformMappings(a)
	out := make([]PresetAvail, 0, NumPresets)
	for _, e := range Presets() {
		info := presetTable[e]
		pa := PresetAvail{Event: e, Name: info.name, Desc: info.desc}
		if mp, ok := maps[e]; ok {
			pa.Avail = true
			pa.Derived = mp.derived
			pa.Note = mp.note
			for _, t := range mp.terms {
				if ev, ok := a.EventByCode(t.code); ok {
					pa.Natives = append(pa.Natives, ev.Name)
				}
			}
		}
		out = append(out, pa)
	}
	return out
}
