package wire

import (
	"bytes"
	"encoding/binary"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/tsdb"
)

// binFrame encodes one frame the way Encoder would, for feeding raw
// streams to the decoder under test.
func binFrame(t *testing.T, v any) []byte {
	t.Helper()
	b, err := AppendFrame(nil, CodecBinary, v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBinaryRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{},
		{Op: OpHello, Version: 3, Codec: CodecNameBinary},
		{Op: OpCreate, Platform: "aix-power3", Events: []string{"PAPI_FP_INS", "PAPI_TOT_CYC"},
			Workload: "dot", N: 4096, Label: "run-1"},
		{Op: OpPublish, Session: 7, Values: []int64{0, -1, 1 << 62, -(1 << 62)}},
		{Op: OpQuery, Session: 9, From: -5, To: 1 << 40, Step: 10_000_000},
		{Op: OpQuery, Session: 9, To: 1 << 40, Step: 10_000_000, Derive: []string{"ipc", "l2miss"}},
		{Op: OpSubscribe, Session: 2, Derive: []string{"flops"}},
	}
	var stream []byte
	for i := range reqs {
		stream = append(stream, binFrame(t, &reqs[i])...)
	}
	dec := NewDecoder(bytes.NewReader(stream))
	dec.SetCodec(CodecBinary)
	for i := range reqs {
		var got Request
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, reqs[i]) {
			t.Errorf("frame %d: got %+v, want %+v", i, got, reqs[i])
		}
	}
	var extra Request
	if err := dec.Decode(&extra); !IsEOF(err) {
		t.Errorf("after last frame: err = %v, want EOF", err)
	}
}

func TestBinaryResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{},
		{Op: OpHello, OK: true, Protocol: 3, Platform: "linux-x86", Codec: CodecNameBinary},
		{Op: OpSnapshot, OK: true, Session: 12, Seq: 99, RealUsec: 1 << 50,
			Events: []string{"PAPI_TOT_CYC"}, Values: []int64{1234567890123}, Source: "live"},
		{Op: OpError, Error: "unknown event \"X\""},
		{Op: OpStats, OK: true, Stats: map[string]uint64{"ticks": 7, "evictions": 0, "bytes_sent_binary": 1 << 33}},
		{Op: OpStats, OK: true, Stats: map[string]uint64{"ticks": 7},
			Hists: map[string]telemetry.Summary{
				"op/READ/json": {Count: 120, Sum: 4_800_000, Min: 900, Max: 2 << 40,
					P50: 30_000, P90: 61_000, P99: 120_000},
				"tick": {Count: 3, Sum: -3, Min: -1, Max: -1, P50: -1, P90: -1, P99: -1},
			}},
		{Op: OpQuery, OK: true, Session: 3, Series: []tsdb.Series{{
			Event: "PAPI_FP_INS", Width: 10_000_000,
			Buckets: []tsdb.Bucket{{Start: -20, Count: 3, Min: -7, Max: 1 << 61, Sum: 42, Last: 41}},
		}}},
		{Op: OpDerived, OK: true, Session: 5, Seq: 17,
			Metrics: []string{"ipc", "mips"},
			Units:   []string{"", "Minstr/s"},
			DValues: []float64{0.5, -1.25e9}},
		{Op: OpQuery, OK: true, Session: 5, Derived: []DerivedSeries{
			{Metric: "ipc", Points: []DerivedPoint{{Start: 100, Value: 1.5}, {Start: 200, Value: 0}}},
			{Metric: "mem_bw_mbs", Unit: "MB/s", Points: []DerivedPoint{{Start: -1, Value: 3.14159}}},
		}},
		{Op: OpRead, OK: true, Session: 2, Values: []int64{1}, TraceID: 0xdeadbeefcafe},
		{Op: OpStats, OK: true, Stats: map[string]uint64{"ticks": 1}, TraceID: 1,
			Slow: []SlowSample{
				{Op: OpQuery, Session: 9, NS: 312_000_000, TraceID: 0xfeed},
				{Op: OpPublish, NS: 1, TraceID: 0},
			}},
	}
	var stream []byte
	for i := range resps {
		stream = append(stream, binFrame(t, &resps[i])...)
	}
	dec := NewDecoder(bytes.NewReader(stream))
	dec.SetCodec(CodecBinary)
	for i := range resps {
		var got Response
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		want := resps[i]
		// An empty map encodes as absent; normalize for the comparison.
		if len(want.Stats) == 0 {
			want.Stats = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("frame %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestBinarySmallerThanJSON pins the codec's reason to exist: a
// realistic snapshot frame must be substantially smaller in binary.
func TestBinarySmallerThanJSON(t *testing.T) {
	resp := Response{Op: OpSnapshot, OK: true, Session: 41, Seq: 100052,
		Events:   []string{"PAPI_TOT_CYC", "PAPI_FP_INS", "PAPI_L1_DCM", "PAPI_TLB_TL"},
		Values:   []int64{982451653000123, 17180131327, 6700417, 104729},
		RealUsec: 73_000_000, Source: "live"}
	bin := binFrame(t, &resp)
	js, err := AppendFrame(nil, CodecJSON, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin)*2 >= len(js) {
		t.Errorf("binary frame %dB not < half of JSON frame %dB", len(bin), len(js))
	}
}

// TestBinaryRecoverableMalformed: a garbage payload inside a correct
// length prefix poisons only its own frame — the next frame decodes.
func TestBinaryRecoverableMalformed(t *testing.T) {
	bad := binary.AppendUvarint(nil, 4)
	bad = append(bad, 0xff, 0xff, 0xff, 0xff) // bits varint says fields follow; nothing does
	stream := append(bad, binFrame(t, &Request{Op: OpBye})...)

	dec := NewDecoder(bytes.NewReader(stream))
	dec.SetCodec(CodecBinary)
	var req Request
	err := dec.Decode(&req)
	if !IsMalformed(err) || IsFatalMalformed(err) {
		t.Fatalf("bad payload: err = %v, want recoverable MalformedFrameError", err)
	}
	if err := dec.Decode(&req); err != nil || req.Op != OpBye {
		t.Fatalf("frame after recoverable error: %+v, %v", req, err)
	}
}

// TestBinaryUnknownFieldBits: a frame from a hypothetical newer peer
// with extra presence bits is rejected as recoverable, not misparsed.
func TestBinaryUnknownFieldBits(t *testing.T) {
	payload := binary.AppendUvarint(nil, reqKnown+1) // one bit past the known set
	stream := binary.AppendUvarint(nil, uint64(len(payload)))
	stream = append(stream, payload...)
	dec := NewDecoder(bytes.NewReader(stream))
	dec.SetCodec(CodecBinary)
	var req Request
	err := dec.Decode(&req)
	if !IsMalformed(err) || IsFatalMalformed(err) {
		t.Fatalf("unknown bits: err = %v, want recoverable MalformedFrameError", err)
	}
}

func TestBinaryFatalFraming(t *testing.T) {
	cases := []struct {
		name   string
		stream []byte
	}{
		{"oversized length prefix", binary.AppendUvarint(nil, MaxFrameBytes+1)},
		{"varint never terminates", bytes.Repeat([]byte{0x80}, binary.MaxVarintLen64+2)},
		{"varint overflows", append(bytes.Repeat([]byte{0xff}, 9), 0x7f, 0x00)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dec := NewDecoder(bytes.NewReader(tc.stream))
			dec.SetCodec(CodecBinary)
			var req Request
			err := dec.Decode(&req)
			if !IsFatalMalformed(err) {
				t.Fatalf("err = %v, want fatal MalformedFrameError", err)
			}
		})
	}
}

// TestBinaryTruncatedEOF: the stream ends mid-frame — fatal, because
// the promised bytes can never arrive.
func TestBinaryTruncatedEOF(t *testing.T) {
	whole := binFrame(t, &Request{Op: OpCreate, Events: []string{"PAPI_TOT_CYC"}})
	dec := NewDecoder(bytes.NewReader(whole[:len(whole)-2]))
	dec.SetCodec(CodecBinary)
	var req Request
	err := dec.Decode(&req)
	if !IsFatalMalformed(err) {
		t.Fatalf("truncated stream: err = %v, want fatal MalformedFrameError", err)
	}
}

// TestBinaryPartialFrameAcrossDeadline: a read deadline tripping
// mid-frame must surface as a timeout with the partial bytes kept, and
// the retry must complete the same frame — the slow-writer case.
func TestBinaryPartialFrameAcrossDeadline(t *testing.T) {
	cl, srv := net.Pipe()
	defer cl.Close()
	defer srv.Close()

	whole := binFrame(t, &Request{Op: OpPublish, Session: 5, Values: []int64{1, 2, 3}})
	half := len(whole) / 2
	go cl.Write(whole[:half])

	dec := NewDecoder(srv)
	dec.SetCodec(CodecBinary)
	var req Request
	srv.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if err := dec.Decode(&req); !IsTimeout(err) {
		t.Fatalf("mid-frame deadline: err = %v, want timeout", err)
	}

	go cl.Write(whole[half:])
	srv.SetReadDeadline(time.Now().Add(5 * time.Second))
	if err := dec.Decode(&req); err != nil {
		t.Fatalf("resumed frame: %v", err)
	}
	if req.Op != OpPublish || req.Session != 5 || len(req.Values) != 3 {
		t.Errorf("resumed frame decoded to %+v", req)
	}
}

// TestSetCodecKeepsPipelinedBytes: bytes the peer sent behind the
// negotiation frame, already sitting in the buffered reader, must
// survive the codec switch — the upgrade handshake's pipelining case.
func TestSetCodecKeepsPipelinedBytes(t *testing.T) {
	var stream []byte
	stream = append(stream, []byte(`{"op":"HELLO","version":3,"codec":"binary"}`+"\n")...)
	stream = append(stream, binFrame(t, &Request{Op: OpRead, Session: 2})...)

	dec := NewDecoder(bytes.NewReader(stream))
	var hello Request
	if err := dec.Decode(&hello); err != nil || hello.Op != OpHello {
		t.Fatalf("hello: %+v, %v", hello, err)
	}
	dec.SetCodec(CodecBinary)
	var read Request
	if err := dec.Decode(&read); err != nil || read.Op != OpRead || read.Session != 2 {
		t.Fatalf("pipelined binary frame: %+v, %v", read, err)
	}
}
