package wire

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/faultnet"
)

// FuzzDecode feeds arbitrary byte streams through the frame decoder.
// Properties: Decode never panics, every error is either a
// MalformedFrameError or an io error, and a malformed line never
// poisons the stream — a well-formed frame appended after the fuzz
// input must still decode.
func FuzzDecode(f *testing.F) {
	f.Add([]byte(`{"op":"HELLO"}` + "\n"))
	f.Add([]byte(`{"op":"CREATE_SESSION","events":["PAPI_TOT_CYC"],"n":8}` + "\n"))
	f.Add([]byte(`{"op":"QUERY","session":1,"from":0,"to":100,"step":10}` + "\n"))
	f.Add([]byte(`{"op":"QUERY","session":1,"to":100,"step":10,"derive":["ipc","l2miss"]}` + "\n"))
	f.Add([]byte(`{"op":"HELLO"`))           // truncated mid-object
	f.Add([]byte(`{"op":1234}` + "\n"))      // wrong field type
	f.Add([]byte("not json at all\n"))       // garbage line
	f.Add([]byte("\n\n\n"))                  // blank lines
	f.Add([]byte("{}\n{\n}\nnull\n[1,2]\n")) // mixed shapes
	f.Add([]byte(`{"values":[9223372036854775807,-1]}` + "\n"))
	f.Add(bytes.Repeat([]byte(`{"op":"x"}`+"\n"), 64))

	sentinel := `{"op":"AFTER_FUZZ","session":77}` + "\n"
	f.Fuzz(func(t *testing.T, data []byte) {
		// Ensure the fuzz payload ends at a frame boundary so the
		// sentinel sits on its own line.
		stream := append(append([]byte(nil), data...), '\n')
		stream = append(stream, sentinel...)
		dec := NewDecoder(bytes.NewReader(stream))
		sawSentinel := false
		for i := 0; i < len(stream)+2; i++ { // bounded: one line per iteration
			var req Request
			err := dec.Decode(&req)
			if err == nil {
				if req.Op == "AFTER_FUZZ" && req.Session == 77 {
					sawSentinel = true
				}
				continue
			}
			if IsMalformed(err) {
				continue // recoverable: keep reading
			}
			break // io error / EOF ends the stream
		}
		if !sawSentinel {
			t.Fatalf("valid frame after fuzz input %q never decoded", data)
		}
	})
}

// FuzzFaultnetResync drives the same resync property through a
// fault-injecting transport: the fuzz stream is delivered in arbitrary
// chunk sizes and optionally severed mid-byte by faultnet. The decoder
// must never panic, must only ever return malformed or io errors, and
// — whenever the connection is NOT cut before the stream completes —
// must still decode the well-formed sentinel frame at the end. A
// partial write is not a protocol error; only a newline commits a
// frame.
func FuzzFaultnetResync(f *testing.F) {
	f.Add([]byte(`{"op":"HELLO"}`+"\n"), uint8(1), uint16(0))
	f.Add([]byte(`{"op":"QUERY","from":0,"to":9}`+"\n"), uint8(3), uint16(0))
	f.Add([]byte(`{"op":"HELLO"`), uint8(2), uint16(7))     // cut mid-frame
	f.Add([]byte("not json at all\n"), uint8(5), uint16(0)) // garbage line
	f.Add([]byte("\n\n"), uint8(0), uint16(1))              // cut in blank lines
	f.Add(bytes.Repeat([]byte(`{"op":"x"}`+"\n"), 16), uint8(4), uint16(40))

	sentinel := `{"op":"AFTER_FUZZ","session":77}` + "\n"
	f.Fuzz(func(t *testing.T, data []byte, chunk uint8, cut uint16) {
		stream := append(append([]byte(nil), data...), '\n')
		stream = append(stream, sentinel...)

		faults := faultnet.Faults{ChunkSize: int(chunk % 16)} // 0 = unsplit writes
		if cut > 0 {
			faults.CutAfter = int64(cut)
		}
		w, r := faultnet.Pipe(faults, faultnet.Faults{})
		go func() {
			w.Write(stream) // ErrCut mid-way is the point, ignore it
			w.Close()
		}()

		dec := NewDecoder(r)
		sawSentinel := false
		for i := 0; i < len(stream)+2; i++ { // bounded: >= one byte per line
			var req Request
			err := dec.Decode(&req)
			if err == nil {
				if req.Op == "AFTER_FUZZ" && req.Session == 77 {
					sawSentinel = true
				}
				continue
			}
			if IsMalformed(err) {
				continue // recoverable: next line is a fresh frame
			}
			break // io error (EOF / cut) ends the stream
		}
		r.Close() // unblock the writer if the reader gave up first

		delivered := cut == 0 || int64(cut) >= int64(len(stream))
		if delivered && !sawSentinel {
			t.Fatalf("uncut stream (fuzz input %q, chunk %d): sentinel never decoded",
				data, chunk%16)
		}
	})
}

// FuzzBinaryDecode feeds arbitrary byte streams through the binary
// frame decoder. Properties: Decode never panics, never allocates
// beyond the frame cap for a hostile length prefix, classifies every
// failure as malformed (fatal or not) or an io error, and stops making
// progress only after a fatal framing error or the end of input.
func FuzzBinaryDecode(f *testing.F) {
	good, _ := AppendFrame(nil, CodecBinary, &Request{Op: OpHello, Version: 3, Codec: CodecNameBinary})
	snap, _ := AppendFrame(nil, CodecBinary, &Response{Op: OpSnapshot, OK: true,
		Events: []string{"PAPI_TOT_CYC"}, Values: []int64{12345}})
	drv, _ := AppendFrame(nil, CodecBinary, &Response{Op: OpDerived, OK: true,
		Session: 1, Seq: 9,
		Metrics: []string{"ipc", "mips"},
		Units:   []string{"", "Minstr/s"},
		DValues: []float64{1.5, 420.25},
		Derived: []DerivedSeries{{Metric: "ipc", Points: []DerivedPoint{{Start: 1000, Value: 0.5}}}}})
	delta, _ := AppendFrame(nil, CodecBinary, &Response{Op: OpDelta, OK: true,
		Session: 2, Seq: 12, Base: 10,
		Idx: []uint32{0, 3}, Values: []int64{99, -7}})
	key, _ := AppendFrame(nil, CodecBinary, &Response{Op: OpSnapshot, OK: true,
		Session: 2, Seq: 10, Events: []string{"a", "b", "c", "d"},
		Values: []int64{1, 2, 3, 4}})
	wild, _ := AppendFrame(nil, CodecBinary, &Request{Op: OpSubscribe, Version: 4,
		Sessions: []uint64{1, 2}, Labels: []string{"app-*"},
		Events: []string{"PAPI_TOT_CYC"}, Delta: true})
	f.Add(good)
	f.Add(snap)
	f.Add(drv)
	f.Add(delta)
	f.Add(key)
	f.Add(wild)
	f.Add(delta[:len(delta)-1])                                   // truncated delta payload
	f.Add(drv[:len(drv)-1])                                       // truncated float payload
	f.Add(good[:len(good)-1])                                     // truncated payload
	f.Add([]byte{0x05})                                           // prefix promising absent bytes
	f.Add(binary.AppendUvarint(nil, MaxFrameBytes+1))             // oversized prefix
	f.Add(bytes.Repeat([]byte{0x80}, binary.MaxVarintLen64))      // non-terminating varint
	f.Add(bytes.Repeat([]byte{0xff}, 16))                         // overflowing varint
	f.Add(append(binary.AppendUvarint(nil, 3), 0x07, 0x00, 0x00)) // count > remaining

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data))
		dec.SetCodec(CodecBinary)
		for i := 0; i < len(data)+2; i++ { // each iteration consumes ≥1 byte or ends
			var resp Response
			err := dec.Decode(&resp)
			if err == nil {
				continue
			}
			if IsFatalMalformed(err) {
				return // no resync point; a real caller evicts here
			}
			if IsMalformed(err) {
				continue // bad payload in a well-delimited frame
			}
			return // io error / EOF ends the stream
		}
		t.Fatalf("decoder made no progress on %q", data)
	})
}

// FuzzBinaryRoundTrip: any Request assembled from fuzzed fields must
// survive encode → decode unchanged, and a well-formed frame appended
// after it must still decode (the recoverable path never desyncs).
func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add("HELLO", uint64(0), "linux-x86", "ev1,ev2", int64(3), int64(-9), 7)
	f.Add("", uint64(1<<63), "", "", int64(0), int64(1<<62), 0)
	f.Add("CREATE_SESSION", uint64(42), "aix-power3", "PAPI_FP_INS", int64(-1), int64(1), -12)
	f.Fuzz(func(t *testing.T, op string, session uint64, platform, events string, v1, v2 int64, n int) {
		want := Request{Op: op, Session: session, Platform: platform,
			Values: []int64{v1, v2}, N: n}
		if events != "" {
			want.Events = strings.Split(events, ",")
		}
		stream, err := AppendFrame(nil, CodecBinary, &want)
		if err != nil {
			t.Fatal(err)
		}
		stream, err = AppendFrame(stream, CodecBinary, &Request{Op: OpBye})
		if err != nil {
			t.Fatal(err)
		}
		dec := NewDecoder(bytes.NewReader(stream))
		dec.SetCodec(CodecBinary)
		var got Request
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Op != want.Op || got.Session != want.Session || got.Platform != want.Platform ||
			got.N != want.N || len(got.Values) != len(want.Values) ||
			got.Values[0] != want.Values[0] || got.Values[1] != want.Values[1] ||
			len(got.Events) != len(want.Events) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
		}
		var bye Request
		if err := dec.Decode(&bye); err != nil || bye.Op != OpBye {
			t.Fatalf("frame after round trip: %+v, %v", bye, err)
		}
	})
}

func TestDecodeResyncAfterMalformed(t *testing.T) {
	input := strings.Join([]string{
		`{"op":"HELLO","version":2}`,
		`this is not json`,
		`{"op":"READ","session":3`,
		``,
		`{"op":"BYE"}`,
	}, "\n") + "\n"
	dec := NewDecoder(strings.NewReader(input))

	var req Request
	if err := dec.Decode(&req); err != nil || req.Op != OpHello || req.Version != 2 {
		t.Fatalf("frame 1: %+v, %v", req, err)
	}
	for i := 0; i < 2; i++ {
		err := dec.Decode(&req)
		if !IsMalformed(err) {
			t.Fatalf("malformed frame %d: err = %v, want MalformedFrameError", i, err)
		}
	}
	if err := dec.Decode(&req); err != nil || req.Op != OpBye {
		t.Fatalf("frame after resync: %+v, %v", req, err)
	}
	if err := dec.Decode(&req); !IsEOF(err) {
		t.Fatalf("end of stream: %v", err)
	}
}

func TestDecodeFinalLineWithoutNewline(t *testing.T) {
	dec := NewDecoder(strings.NewReader(`{"op":"BYE"}`))
	var req Request
	if err := dec.Decode(&req); err != nil || req.Op != OpBye {
		t.Fatalf("unterminated final frame: %+v, %v", req, err)
	}
	if err := dec.Decode(&req); !IsEOF(err) {
		t.Fatalf("after final frame: %v", err)
	}
}
