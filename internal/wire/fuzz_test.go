package wire

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode feeds arbitrary byte streams through the frame decoder.
// Properties: Decode never panics, every error is either a
// MalformedFrameError or an io error, and a malformed line never
// poisons the stream — a well-formed frame appended after the fuzz
// input must still decode.
func FuzzDecode(f *testing.F) {
	f.Add([]byte(`{"op":"HELLO"}` + "\n"))
	f.Add([]byte(`{"op":"CREATE_SESSION","events":["PAPI_TOT_CYC"],"n":8}` + "\n"))
	f.Add([]byte(`{"op":"QUERY","session":1,"from":0,"to":100,"step":10}` + "\n"))
	f.Add([]byte(`{"op":"HELLO"`))            // truncated mid-object
	f.Add([]byte(`{"op":1234}` + "\n"))       // wrong field type
	f.Add([]byte("not json at all\n"))        // garbage line
	f.Add([]byte("\n\n\n"))                   // blank lines
	f.Add([]byte("{}\n{\n}\nnull\n[1,2]\n"))  // mixed shapes
	f.Add([]byte(`{"values":[9223372036854775807,-1]}` + "\n"))
	f.Add(bytes.Repeat([]byte(`{"op":"x"}`+"\n"), 64))

	sentinel := `{"op":"AFTER_FUZZ","session":77}` + "\n"
	f.Fuzz(func(t *testing.T, data []byte) {
		// Ensure the fuzz payload ends at a frame boundary so the
		// sentinel sits on its own line.
		stream := append(append([]byte(nil), data...), '\n')
		stream = append(stream, sentinel...)
		dec := NewDecoder(bytes.NewReader(stream))
		sawSentinel := false
		for i := 0; i < len(stream)+2; i++ { // bounded: one line per iteration
			var req Request
			err := dec.Decode(&req)
			if err == nil {
				if req.Op == "AFTER_FUZZ" && req.Session == 77 {
					sawSentinel = true
				}
				continue
			}
			if IsMalformed(err) {
				continue // recoverable: keep reading
			}
			break // io error / EOF ends the stream
		}
		if !sawSentinel {
			t.Fatalf("valid frame after fuzz input %q never decoded", data)
		}
	})
}

func TestDecodeResyncAfterMalformed(t *testing.T) {
	input := strings.Join([]string{
		`{"op":"HELLO","version":2}`,
		`this is not json`,
		`{"op":"READ","session":3`,
		``,
		`{"op":"BYE"}`,
	}, "\n") + "\n"
	dec := NewDecoder(strings.NewReader(input))

	var req Request
	if err := dec.Decode(&req); err != nil || req.Op != OpHello || req.Version != 2 {
		t.Fatalf("frame 1: %+v, %v", req, err)
	}
	for i := 0; i < 2; i++ {
		err := dec.Decode(&req)
		if !IsMalformed(err) {
			t.Fatalf("malformed frame %d: err = %v, want MalformedFrameError", i, err)
		}
	}
	if err := dec.Decode(&req); err != nil || req.Op != OpBye {
		t.Fatalf("frame after resync: %+v, %v", req, err)
	}
	if err := dec.Decode(&req); !IsEOF(err) {
		t.Fatalf("end of stream: %v", err)
	}
}

func TestDecodeFinalLineWithoutNewline(t *testing.T) {
	dec := NewDecoder(strings.NewReader(`{"op":"BYE"}`))
	var req Request
	if err := dec.Decode(&req); err != nil || req.Op != OpBye {
		t.Fatalf("unterminated final frame: %+v, %v", req, err)
	}
	if err := dec.Decode(&req); !IsEOF(err) {
		t.Fatalf("after final frame: %v", err)
	}
}
