package wire

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/faultnet"
)

// FuzzDecode feeds arbitrary byte streams through the frame decoder.
// Properties: Decode never panics, every error is either a
// MalformedFrameError or an io error, and a malformed line never
// poisons the stream — a well-formed frame appended after the fuzz
// input must still decode.
func FuzzDecode(f *testing.F) {
	f.Add([]byte(`{"op":"HELLO"}` + "\n"))
	f.Add([]byte(`{"op":"CREATE_SESSION","events":["PAPI_TOT_CYC"],"n":8}` + "\n"))
	f.Add([]byte(`{"op":"QUERY","session":1,"from":0,"to":100,"step":10}` + "\n"))
	f.Add([]byte(`{"op":"HELLO"`))            // truncated mid-object
	f.Add([]byte(`{"op":1234}` + "\n"))       // wrong field type
	f.Add([]byte("not json at all\n"))        // garbage line
	f.Add([]byte("\n\n\n"))                   // blank lines
	f.Add([]byte("{}\n{\n}\nnull\n[1,2]\n"))  // mixed shapes
	f.Add([]byte(`{"values":[9223372036854775807,-1]}` + "\n"))
	f.Add(bytes.Repeat([]byte(`{"op":"x"}`+"\n"), 64))

	sentinel := `{"op":"AFTER_FUZZ","session":77}` + "\n"
	f.Fuzz(func(t *testing.T, data []byte) {
		// Ensure the fuzz payload ends at a frame boundary so the
		// sentinel sits on its own line.
		stream := append(append([]byte(nil), data...), '\n')
		stream = append(stream, sentinel...)
		dec := NewDecoder(bytes.NewReader(stream))
		sawSentinel := false
		for i := 0; i < len(stream)+2; i++ { // bounded: one line per iteration
			var req Request
			err := dec.Decode(&req)
			if err == nil {
				if req.Op == "AFTER_FUZZ" && req.Session == 77 {
					sawSentinel = true
				}
				continue
			}
			if IsMalformed(err) {
				continue // recoverable: keep reading
			}
			break // io error / EOF ends the stream
		}
		if !sawSentinel {
			t.Fatalf("valid frame after fuzz input %q never decoded", data)
		}
	})
}

// FuzzFaultnetResync drives the same resync property through a
// fault-injecting transport: the fuzz stream is delivered in arbitrary
// chunk sizes and optionally severed mid-byte by faultnet. The decoder
// must never panic, must only ever return malformed or io errors, and
// — whenever the connection is NOT cut before the stream completes —
// must still decode the well-formed sentinel frame at the end. A
// partial write is not a protocol error; only a newline commits a
// frame.
func FuzzFaultnetResync(f *testing.F) {
	f.Add([]byte(`{"op":"HELLO"}`+"\n"), uint8(1), uint16(0))
	f.Add([]byte(`{"op":"QUERY","from":0,"to":9}`+"\n"), uint8(3), uint16(0))
	f.Add([]byte(`{"op":"HELLO"`), uint8(2), uint16(7))    // cut mid-frame
	f.Add([]byte("not json at all\n"), uint8(5), uint16(0)) // garbage line
	f.Add([]byte("\n\n"), uint8(0), uint16(1))              // cut in blank lines
	f.Add(bytes.Repeat([]byte(`{"op":"x"}`+"\n"), 16), uint8(4), uint16(40))

	sentinel := `{"op":"AFTER_FUZZ","session":77}` + "\n"
	f.Fuzz(func(t *testing.T, data []byte, chunk uint8, cut uint16) {
		stream := append(append([]byte(nil), data...), '\n')
		stream = append(stream, sentinel...)

		faults := faultnet.Faults{ChunkSize: int(chunk % 16)} // 0 = unsplit writes
		if cut > 0 {
			faults.CutAfter = int64(cut)
		}
		w, r := faultnet.Pipe(faults, faultnet.Faults{})
		go func() {
			w.Write(stream) // ErrCut mid-way is the point, ignore it
			w.Close()
		}()

		dec := NewDecoder(r)
		sawSentinel := false
		for i := 0; i < len(stream)+2; i++ { // bounded: >= one byte per line
			var req Request
			err := dec.Decode(&req)
			if err == nil {
				if req.Op == "AFTER_FUZZ" && req.Session == 77 {
					sawSentinel = true
				}
				continue
			}
			if IsMalformed(err) {
				continue // recoverable: next line is a fresh frame
			}
			break // io error (EOF / cut) ends the stream
		}
		r.Close() // unblock the writer if the reader gave up first

		delivered := cut == 0 || int64(cut) >= int64(len(stream))
		if delivered && !sawSentinel {
			t.Fatalf("uncut stream (fuzz input %q, chunk %d): sentinel never decoded",
				data, chunk%16)
		}
	})
}

func TestDecodeResyncAfterMalformed(t *testing.T) {
	input := strings.Join([]string{
		`{"op":"HELLO","version":2}`,
		`this is not json`,
		`{"op":"READ","session":3`,
		``,
		`{"op":"BYE"}`,
	}, "\n") + "\n"
	dec := NewDecoder(strings.NewReader(input))

	var req Request
	if err := dec.Decode(&req); err != nil || req.Op != OpHello || req.Version != 2 {
		t.Fatalf("frame 1: %+v, %v", req, err)
	}
	for i := 0; i < 2; i++ {
		err := dec.Decode(&req)
		if !IsMalformed(err) {
			t.Fatalf("malformed frame %d: err = %v, want MalformedFrameError", i, err)
		}
	}
	if err := dec.Decode(&req); err != nil || req.Op != OpBye {
		t.Fatalf("frame after resync: %+v, %v", req, err)
	}
	if err := dec.Decode(&req); !IsEOF(err) {
		t.Fatalf("end of stream: %v", err)
	}
}

func TestDecodeFinalLineWithoutNewline(t *testing.T) {
	dec := NewDecoder(strings.NewReader(`{"op":"BYE"}`))
	var req Request
	if err := dec.Decode(&req); err != nil || req.Op != OpBye {
		t.Fatalf("unterminated final frame: %+v, %v", req, err)
	}
	if err := dec.Decode(&req); !IsEOF(err) {
		t.Fatalf("after final frame: %v", err)
	}
}
