package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func key(session, seq uint64, events []string, values []int64) Response {
	return Response{Op: OpSnapshot, OK: true, Session: session, Seq: seq,
		Events: events, Values: values}
}

func delta(session, seq, base uint64, idx []uint32, values []int64) Response {
	return Response{Op: OpDelta, OK: true, Session: session, Seq: seq, Base: base,
		Idx: idx, Values: values}
}

// TestDeltaTrackerMaterialize: keyframe then deltas; each Apply
// returns the complete snapshot the server would have sent unfiltered.
func TestDeltaTrackerMaterialize(t *testing.T) {
	var tr DeltaTracker
	events := []string{"a", "b", "c"}

	got, err := tr.Apply(key(1, 10, events, []int64{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != OpSnapshot || !reflect.DeepEqual(got.Values, []int64{1, 2, 3}) {
		t.Fatalf("keyframe passthrough mangled: %+v", got)
	}

	// A delta carries every counter that drifted from the keyframe,
	// so each one fully supersedes the last.
	got, err = tr.Apply(delta(1, 11, 10, []uint32{1}, []int64{20}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != OpSnapshot || got.Seq != 11 || got.Base != 0 || got.Idx != nil {
		t.Fatalf("materialized frame not a clean snapshot: %+v", got)
	}
	if !reflect.DeepEqual(got.Events, events) || !reflect.DeepEqual(got.Values, []int64{1, 20, 3}) {
		t.Fatalf("materialized %v=%v, want %v=[1 20 3]", got.Events, got.Values, events)
	}

	got, err = tr.Apply(delta(1, 12, 10, []uint32{0, 2}, []int64{100, 300}))
	if err != nil {
		t.Fatal(err)
	}
	// Counter b reverted to its keyframe value, so this delta omits it.
	if !reflect.DeepEqual(got.Values, []int64{100, 2, 300}) {
		t.Fatalf("second delta materialized %v, want [100 2 300]", got.Values)
	}

	// A fresh keyframe re-anchors: deltas against the old epoch gap out.
	if _, err := tr.Apply(key(1, 20, events, []int64{5, 6, 7})); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Apply(delta(1, 21, 10, []uint32{0}, []int64{9})); !errors.Is(err, ErrDeltaGap) {
		t.Fatalf("stale-epoch delta: err %v, want ErrDeltaGap", err)
	}
	// The failed Apply left the keyframe intact.
	got, err = tr.Apply(delta(1, 22, 20, []uint32{0}, []int64{50}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Values, []int64{50, 6, 7}) {
		t.Fatalf("post-gap delta materialized %v, want [50 6 7]", got.Values)
	}
}

// TestDeltaTrackerSessionsInterleaved: one tracker keeps independent
// keyframes per session.
func TestDeltaTrackerSessionsInterleaved(t *testing.T) {
	var tr DeltaTracker
	tr.Apply(key(1, 5, []string{"x"}, []int64{10}))
	tr.Apply(key(2, 8, []string{"y"}, []int64{20}))
	got, err := tr.Apply(delta(1, 6, 5, []uint32{0}, []int64{11}))
	if err != nil || got.Values[0] != 11 {
		t.Fatalf("session 1 delta: %v %+v", err, got)
	}
	got, err = tr.Apply(delta(2, 9, 8, []uint32{0}, []int64{21}))
	if err != nil || got.Values[0] != 21 {
		t.Fatalf("session 2 delta: %v %+v", err, got)
	}
}

// TestDeltaTrackerErrors: every malformed or out-of-order frame earns
// a loud error and leaves the tracker usable.
func TestDeltaTrackerErrors(t *testing.T) {
	var tr DeltaTracker
	if _, err := tr.Apply(delta(1, 2, 1, []uint32{0}, []int64{5})); !errors.Is(err, ErrNoKeyframe) {
		t.Fatalf("delta before any keyframe: err %v, want ErrNoKeyframe", err)
	}
	if _, err := tr.Apply(key(1, 10, []string{"a", "b"}, []int64{1, 2})); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Apply(delta(1, 11, 10, []uint32{7}, []int64{5})); err == nil {
		t.Fatal("out-of-range delta index accepted")
	}
	if _, err := tr.Apply(delta(1, 11, 10, []uint32{0, 1}, []int64{5})); err == nil {
		t.Fatal("idx/values length mismatch accepted")
	}
	// Still healthy after the rejects.
	got, err := tr.Apply(delta(1, 11, 10, []uint32{1}, []int64{9}))
	if err != nil || !reflect.DeepEqual(got.Values, []int64{1, 9}) {
		t.Fatalf("tracker poisoned by rejected frames: %v %+v", err, got)
	}
	// Non-stream ops pass through untouched.
	hello := Response{Op: OpHello, OK: true, Protocol: 4}
	if got, err := tr.Apply(hello); err != nil || !reflect.DeepEqual(got, hello) {
		t.Fatalf("passthrough mangled: %v %+v", err, got)
	}
}

// TestDeltaBinaryRoundTrip pins the v4 response fields (Idx, Base,
// Sessions) through the binary codec.
func TestDeltaBinaryRoundTrip(t *testing.T) {
	cases := []Response{
		delta(3, 15, 12, []uint32{0, 2, 9}, []int64{-1, 0, 1 << 40}),
		{Op: OpSubscribe, OK: true, Sessions: []uint64{1, 5, 1 << 33}},
	}
	for _, want := range cases {
		buf, err := AppendFrame(nil, CodecBinary, &want)
		if err != nil {
			t.Fatal(err)
		}
		dec := NewDecoder(bytes.NewReader(buf))
		dec.SetCodec(CodecBinary)
		var got Response
		if err := dec.Decode(&got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip:\n got %+v\nwant %+v", got, want)
		}
	}
}
