package wire

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	reqs := []Request{
		{Op: OpHello},
		{Op: OpCreate, Platform: "aix-power3", Events: []string{"PAPI_FP_INS", "PAPI_TOT_CYC"}},
		{Op: OpPublish, Session: 7, Values: []int64{1, 2, 3}},
	}
	for i := range reqs {
		if err := enc.Encode(&reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(&buf)
	for i := range reqs {
		var got Request
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Op != reqs[i].Op || got.Session != reqs[i].Session ||
			len(got.Events) != len(reqs[i].Events) || len(got.Values) != len(reqs[i].Values) {
			t.Errorf("frame %d: got %+v, want %+v", i, got, reqs[i])
		}
	}
	var extra Request
	if err := dec.Decode(&extra); !IsEOF(err) {
		t.Errorf("after last frame: err = %v, want EOF", err)
	}
}

func TestNewlineDelimited(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	enc.Encode(&Response{Op: OpSnapshot, OK: true, Seq: 1})
	enc.Encode(&Response{Op: OpSnapshot, OK: true, Seq: 2})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
}

// TestConcurrentEncode exercises the Encoder's mutex: many goroutines
// interleaving frames on one writer must yield only whole frames.
func TestConcurrentEncode(t *testing.T) {
	pr, pw := io.Pipe()
	enc := NewEncoder(pw)
	const writers, frames = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < frames; i++ {
				if err := enc.Encode(&Response{Op: OpSnapshot, OK: true, Session: uint64(w), Seq: uint64(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		pw.Close()
	}()
	dec := NewDecoder(pr)
	n := 0
	for {
		var resp Response
		err := dec.Decode(&resp)
		if IsEOF(err) {
			break
		}
		if err != nil {
			t.Fatalf("frame %d corrupted: %v", n, err)
		}
		if resp.Op != OpSnapshot {
			t.Fatalf("frame %d: op %q", n, resp.Op)
		}
		n++
	}
	if n != writers*frames {
		t.Errorf("decoded %d frames, want %d", n, writers*frames)
	}
}
