// Package wire implements the newline-delimited JSON framing shared by
// every network surface in the repository: perfometer's point stream
// (§2, Figure 2) and papid's counter-collection protocol. One frame is
// one JSON value terminated by a newline — trivially inspectable with
// nc/jq, resynchronizable by line, and cheap to produce.
//
// The framing layer is deliberately type-agnostic: perfometer streams
// perfometer.Point values, papid exchanges wire.Request/wire.Response
// pairs, and both go through the same Encoder/Decoder.
package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Encoder writes newline-delimited JSON frames. It is safe for
// concurrent use: papid's per-connection state interleaves request
// responses and subscription snapshots on one socket, each written by a
// different goroutine.
type Encoder struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewEncoder returns an Encoder framing onto w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{enc: json.NewEncoder(w)}
}

// Encode writes one frame.
func (e *Encoder) Encode(v any) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.enc.Encode(v)
}

// Decoder reads newline-delimited JSON frames one line at a time, so a
// malformed frame poisons only its own line: Decode returns a
// *MalformedFrameError and the next call resumes at the following
// newline. This is what lets papid answer garbage with an error frame
// instead of dropping the connection.
//
// A read-deadline trip mid-line is recoverable too: the partial line
// is stashed, the timeout surfaces unchanged, and the next Decode
// resumes the same frame where it left off. Without this, a slow but
// healthy writer whose frame straddled an idle-deadline check would
// have half its frame misread as garbage.
type Decoder struct {
	r       *bufio.Reader
	pending []byte // partial line held across a deadline trip
}

// NewDecoder returns a Decoder framing from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r)}
}

// Decode reads the next frame into v. Blank lines are skipped. A line
// that is not valid JSON for v yields a *MalformedFrameError; the
// Decoder remains usable. A timeout (net.Error with Timeout true)
// surfaces as-is with any partial line preserved for the next call.
func (d *Decoder) Decode(v any) error {
	for {
		line, err := d.r.ReadBytes('\n')
		if len(d.pending) > 0 {
			line = append(d.pending, line...)
			d.pending = nil
		}
		if err != nil && IsTimeout(err) {
			d.pending = line
			return err
		}
		frame := bytes.TrimSpace(line)
		if len(frame) == 0 {
			if err != nil {
				return err
			}
			continue
		}
		if jerr := json.Unmarshal(frame, v); jerr != nil {
			// A truncated final line (read error before the newline) is
			// malformed too; surfacing it as such lets servers reply
			// before the follow-up Decode reports the stream error.
			return &MalformedFrameError{Err: jerr}
		}
		return nil
	}
}

// MalformedFrameError reports one undecodable line; the stream itself
// is still healthy.
type MalformedFrameError struct {
	Err error
}

func (e *MalformedFrameError) Error() string {
	return fmt.Sprintf("wire: malformed frame: %v", e.Err)
}

func (e *MalformedFrameError) Unwrap() error { return e.Err }

// IsMalformed reports whether err is a single bad frame on an
// otherwise healthy stream — recoverable, unlike an io error.
func IsMalformed(err error) bool {
	var m *MalformedFrameError
	return errors.As(err, &m)
}

// IsEOF reports whether err marks the clean end of a frame stream.
func IsEOF(err error) bool {
	return errors.Is(err, io.EOF)
}

// IsTimeout reports whether err is a deadline trip (a net.Error with
// Timeout true) — the signal papid's idle/write eviction and the
// client's per-request deadline both key off.
func IsTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
