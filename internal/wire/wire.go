// Package wire implements the framing shared by every network surface
// in the repository: perfometer's point stream (§2, Figure 2) and
// papid's counter-collection protocol. The default framing is
// newline-delimited JSON — one JSON value per line, trivially
// inspectable with nc/jq, resynchronizable by line, and cheap to
// produce. Protocol v3 peers may negotiate the compact binary codec
// (binary.go) per connection; Encoder and Decoder switch codecs in
// place so the negotiation handshake and the upgraded stream share one
// buffered reader and writer.
//
// The framing layer is deliberately type-agnostic: perfometer streams
// perfometer.Point values, papid exchanges wire.Request/wire.Response
// pairs, and both go through the same Encoder/Decoder.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// bufPool recycles frame encode buffers across Encoder.Encode and
// AppendFrame's binary scratch — the per-frame []byte that would
// otherwise be the steady-state allocation of a busy connection.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(b *[]byte) {
	if cap(*b) > 1<<16 {
		return // oversized one-offs are not worth pinning
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// AppendFrame appends one complete frame for v — a JSON line or a
// length-prefixed binary frame — to dst and returns the extended
// slice. It is the bytes-producing core shared by Encoder and papid's
// encode-once snapshot fan-out, which serializes each tick's frame
// exactly once and hands the same immutable bytes to every subscriber.
func AppendFrame(dst []byte, codec Codec, v any) ([]byte, error) {
	if codec == CodecBinary {
		return appendBinaryFrame(dst, v)
	}
	b, err := json.Marshal(v)
	if err != nil {
		return dst, err
	}
	dst = append(dst, b...)
	return append(dst, '\n'), nil
}

// Encoder writes frames in the codec selected by SetCodec (JSON lines
// by default). It is safe for concurrent use: papid's per-connection
// state interleaves request responses and subscription snapshots on
// one socket, each written by a different goroutine.
type Encoder struct {
	mu    sync.Mutex
	w     io.Writer
	codec Codec
}

// NewEncoder returns an Encoder framing onto w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: w}
}

// SetCodec switches the encoding of every subsequent frame — the
// writer half of the HELLO codec negotiation. Callers sequence the
// switch against in-flight Encodes (the negotiation reply is written
// before the switch).
func (e *Encoder) SetCodec(c Codec) {
	e.mu.Lock()
	e.codec = c
	e.mu.Unlock()
}

// Encode writes one frame.
func (e *Encoder) Encode(v any) error {
	bp := getBuf()
	e.mu.Lock()
	buf, err := AppendFrame((*bp)[:0], e.codec, v)
	if err == nil {
		_, err = e.w.Write(buf)
	}
	e.mu.Unlock()
	*bp = buf[:0]
	putBuf(bp)
	return err
}

// Decoder reads frames one at a time in the codec selected by
// SetCodec. In JSON mode a malformed frame poisons only its own line:
// Decode returns a *MalformedFrameError and the next call resumes at
// the following newline. This is what lets papid answer garbage with
// an error frame instead of dropping the connection. In binary mode a
// bad payload inside a well-delimited frame is equally recoverable,
// but a broken length prefix is fatal (Fatal on the error): with no
// trustworthy frame boundary there is nothing to resynchronize on.
//
// A read-deadline trip mid-frame is recoverable in both codecs: the
// partial bytes are stashed, the timeout surfaces unchanged, and the
// next Decode resumes the same frame where it left off. Without this,
// a slow but healthy writer whose frame straddled an idle-deadline
// check would have half its frame misread as garbage.
type Decoder struct {
	r       *bufio.Reader
	codec   Codec
	pending []byte // partial frame held across a deadline trip
}

// NewDecoder returns a Decoder framing from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r)}
}

// SetCodec switches the decoding of every subsequent frame — the
// reader half of the HELLO codec negotiation. The underlying buffered
// reader is retained, so bytes the peer pipelined behind the
// negotiation frame are not lost.
func (d *Decoder) SetCodec(c Codec) { d.codec = c }

// Codec reports the current frame codec.
func (d *Decoder) Codec() Codec { return d.codec }

// Decode reads the next frame into v. A frame that cannot be decoded
// yields a *MalformedFrameError (check IsFatalMalformed for whether
// the stream can continue); the Decoder itself remains usable unless
// the error was fatal. A timeout (net.Error with Timeout true)
// surfaces as-is with any partial frame preserved for the next call.
func (d *Decoder) Decode(v any) error {
	if d.codec == CodecBinary {
		return d.decodeBinary(v)
	}
	for {
		line, err := d.r.ReadBytes('\n')
		if len(d.pending) > 0 {
			line = append(d.pending, line...)
			d.pending = nil
		}
		if err != nil && IsTimeout(err) {
			d.pending = line
			return err
		}
		frame := bytes.TrimSpace(line)
		if len(frame) == 0 {
			if err != nil {
				return err
			}
			continue
		}
		if jerr := json.Unmarshal(frame, v); jerr != nil {
			// A truncated final line (read error before the newline) is
			// malformed too; surfacing it as such lets servers reply
			// before the follow-up Decode reports the stream error.
			return &MalformedFrameError{Err: jerr}
		}
		return nil
	}
}

// decodeBinary accumulates bytes until one whole length-prefixed frame
// is pending, then decodes its payload. The pending buffer doubles as
// the decoder's scratch: it persists across calls (and deadline
// trips), so steady-state decoding reuses one grown buffer instead of
// allocating per frame.
func (d *Decoder) decodeBinary(v any) error {
	for {
		if len(d.pending) > 0 {
			size, n := binary.Uvarint(d.pending)
			switch {
			case n < 0:
				d.pending = nil
				return &MalformedFrameError{Fatal: true,
					Err: errors.New("binary frame length varint overflows")}
			case n > 0 && size > MaxFrameBytes:
				d.pending = nil
				return &MalformedFrameError{Fatal: true,
					Err: fmt.Errorf("binary frame of %d bytes exceeds the %d-byte cap", size, MaxFrameBytes)}
			case n > 0 && uint64(len(d.pending)-n) >= size:
				payload := d.pending[n : n+int(size)]
				err := decodeBinaryPayload(payload, v)
				d.pending = d.pending[:copy(d.pending, d.pending[n+int(size):])]
				if err != nil {
					// The frame boundary held; only the content is bad.
					return &MalformedFrameError{Err: err}
				}
				return nil
			case n == 0 && len(d.pending) >= binary.MaxVarintLen64:
				d.pending = nil
				return &MalformedFrameError{Fatal: true,
					Err: errors.New("binary frame length varint never terminates")}
			}
		}
		if err := d.fill(); err != nil {
			if IsTimeout(err) {
				return err // partial frame stays pending for the retry
			}
			if len(d.pending) > 0 && IsEOF(err) {
				d.pending = nil
				return &MalformedFrameError{Fatal: true, Err: io.ErrUnexpectedEOF}
			}
			return err
		}
	}
}

// fill appends at least one newly arrived byte to pending, draining
// whatever the buffered reader already holds in one copy.
func (d *Decoder) fill() error {
	if d.r.Buffered() == 0 {
		if _, err := d.r.Peek(1); err != nil && d.r.Buffered() == 0 {
			return err
		}
	}
	n := d.r.Buffered()
	chunk, _ := d.r.Peek(n)
	d.pending = append(d.pending, chunk...)
	d.r.Discard(n)
	return nil
}

// MalformedFrameError reports one undecodable frame. Unless Fatal is
// set, the stream itself is still healthy.
type MalformedFrameError struct {
	Err error
	// Fatal marks a framing-level failure (broken binary length
	// prefix) after which the stream has no resynchronization point;
	// callers should answer once and close.
	Fatal bool
}

func (e *MalformedFrameError) Error() string {
	return fmt.Sprintf("wire: malformed frame: %v", e.Err)
}

func (e *MalformedFrameError) Unwrap() error { return e.Err }

// IsMalformed reports whether err is a bad frame on an otherwise
// healthy stream — recoverable (unless IsFatalMalformed), unlike an io
// error.
func IsMalformed(err error) bool {
	var m *MalformedFrameError
	return errors.As(err, &m)
}

// IsFatalMalformed reports whether err is a malformed frame the stream
// cannot recover from — binary framing with an untrustworthy length
// prefix. papid answers these with one ERROR frame, then evicts.
func IsFatalMalformed(err error) bool {
	var m *MalformedFrameError
	return errors.As(err, &m) && m.Fatal
}

// IsEOF reports whether err marks the clean end of a frame stream.
func IsEOF(err error) bool {
	return errors.Is(err, io.EOF)
}

// IsTimeout reports whether err is a deadline trip (a net.Error with
// Timeout true) — the signal papid's idle/write eviction and the
// client's per-request deadline both key off.
func IsTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
