// Package wire implements the newline-delimited JSON framing shared by
// every network surface in the repository: perfometer's point stream
// (§2, Figure 2) and papid's counter-collection protocol. One frame is
// one JSON value terminated by a newline — trivially inspectable with
// nc/jq, resynchronizable by line, and cheap to produce.
//
// The framing layer is deliberately type-agnostic: perfometer streams
// perfometer.Point values, papid exchanges wire.Request/wire.Response
// pairs, and both go through the same Encoder/Decoder.
package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"sync"
)

// Encoder writes newline-delimited JSON frames. It is safe for
// concurrent use: papid's per-connection state interleaves request
// responses and subscription snapshots on one socket, each written by a
// different goroutine.
type Encoder struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewEncoder returns an Encoder framing onto w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{enc: json.NewEncoder(w)}
}

// Encode writes one frame.
func (e *Encoder) Encode(v any) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.enc.Encode(v)
}

// Decoder reads newline-delimited JSON frames.
type Decoder struct {
	dec *json.Decoder
}

// NewDecoder returns a Decoder framing from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{dec: json.NewDecoder(bufio.NewReader(r))}
}

// Decode reads the next frame into v.
func (d *Decoder) Decode(v any) error {
	return d.dec.Decode(v)
}

// IsEOF reports whether err marks the clean end of a frame stream.
func IsEOF(err error) bool {
	return errors.Is(err, io.EOF)
}
