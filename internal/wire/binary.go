// The binary codec (protocol v3): an opt-in replacement for the
// JSON-lines framing on connections where frame volume lives —
// snapshot fan-out and QUERY replies. One frame is a uvarint length
// prefix followed by that many payload bytes; the payload is a
// presence-bitmap struct encoding with strings length-prefixed and
// every integer a varint (counter values zigzag-encoded, so the large
// cumulative counts that dominate snapshot frames cost their
// information content instead of their decimal width).
//
// The codec is negotiated per connection: a HELLO request carrying
// `"codec":"binary"` (still JSON) is answered by a JSON HELLO reply
// echoing the codec, and both sides switch from the next frame on.
// Peers that never ask — or servers that never confirm — stay on JSON
// lines, so a v2 binary never meets a v3 binary frame.
//
// Framing errors are classified by recoverability: a payload that
// fails to decode inside a well-delimited frame is an ordinary
// MalformedFrameError (the next frame starts at a known offset), while
// a broken length prefix — truncated varint, oversized frame — is
// fatal, because without a trustworthy prefix there is no
// resynchronization point. Callers answer fatal errors with one wire
// ERROR and then close, papid's "clean eviction".
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/telemetry"
	"repro/internal/tsdb"
)

// Codec selects a frame encoding for Encoder, Decoder and AppendFrame.
type Codec uint8

const (
	// CodecJSON is the newline-delimited JSON default (protocol <= 2).
	CodecJSON Codec = iota
	// CodecBinary is the length-prefixed varint codec (protocol >= 3).
	CodecBinary
)

// CodecNameBinary is the HELLO negotiation token for CodecBinary.
const CodecNameBinary = "binary"

func (c Codec) String() string {
	if c == CodecBinary {
		return CodecNameBinary
	}
	return "json"
}

// MaxFrameBytes caps one binary frame. A length prefix above it is
// rejected before any allocation, so a hostile or corrupt prefix can
// demand at most a varint's worth of reading, never gigabytes.
const MaxFrameBytes = 4 << 20

// appendBinaryFrame appends one length-prefixed binary frame for v,
// which must be a *Request or *Response (the only types on the papid
// wire; perfometer's point stream stays on JSON).
func appendBinaryFrame(dst []byte, v any) ([]byte, error) {
	bp := getBuf()
	payload, err := appendBinaryPayload((*bp)[:0], v)
	if err == nil {
		dst = binary.AppendUvarint(dst, uint64(len(payload)))
		dst = append(dst, payload...)
	}
	*bp = payload[:0]
	putBuf(bp)
	return dst, err
}

func appendBinaryPayload(dst []byte, v any) ([]byte, error) {
	switch m := v.(type) {
	case *Request:
		return appendRequest(dst, m), nil
	case Request:
		return appendRequest(dst, &m), nil
	case *Response:
		return appendResponse(dst, m), nil
	case Response:
		return appendResponse(dst, &m), nil
	}
	return dst, fmt.Errorf("binary codec cannot encode %T", v)
}

// decodeBinaryPayload decodes one frame's payload into v. Any error is
// a content error within a known frame boundary — recoverable.
func decodeBinaryPayload(payload []byte, v any) error {
	r := binReader{buf: payload}
	var err error
	switch m := v.(type) {
	case *Request:
		err = readRequest(&r, m)
	case *Response:
		err = readResponse(&r, m)
	default:
		return fmt.Errorf("binary codec cannot decode into %T", v)
	}
	if err != nil {
		return err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("%d trailing bytes after payload", len(r.buf))
	}
	return nil
}

// Request field presence bits, in encoding order. reqDelta carries the
// boolean itself, like respOK: the bit set means Delta == true.
const (
	reqOp = 1 << iota
	reqSession
	reqPlatform
	reqEvents
	reqWorkload
	reqN
	reqValues
	reqLabel
	reqVersion
	reqCodec
	reqFrom
	reqTo
	reqStep
	reqDerive
	reqSessions
	reqLabels
	reqDelta

	reqKnown = reqDelta<<1 - 1
)

func appendRequest(dst []byte, r *Request) []byte {
	var bits uint64
	setIf := func(cond bool, bit uint64) {
		if cond {
			bits |= bit
		}
	}
	setIf(r.Op != "", reqOp)
	setIf(r.Session != 0, reqSession)
	setIf(r.Platform != "", reqPlatform)
	setIf(len(r.Events) > 0, reqEvents)
	setIf(r.Workload != "", reqWorkload)
	setIf(r.N != 0, reqN)
	setIf(len(r.Values) > 0, reqValues)
	setIf(r.Label != "", reqLabel)
	setIf(r.Version != 0, reqVersion)
	setIf(r.Codec != "", reqCodec)
	setIf(r.From != 0, reqFrom)
	setIf(r.To != 0, reqTo)
	setIf(r.Step != 0, reqStep)
	setIf(len(r.Derive) > 0, reqDerive)
	setIf(len(r.Sessions) > 0, reqSessions)
	setIf(len(r.Labels) > 0, reqLabels)
	setIf(r.Delta, reqDelta)

	dst = binary.AppendUvarint(dst, bits)
	if bits&reqOp != 0 {
		dst = appendStr(dst, r.Op)
	}
	if bits&reqSession != 0 {
		dst = binary.AppendUvarint(dst, r.Session)
	}
	if bits&reqPlatform != 0 {
		dst = appendStr(dst, r.Platform)
	}
	if bits&reqEvents != 0 {
		dst = appendStrs(dst, r.Events)
	}
	if bits&reqWorkload != 0 {
		dst = appendStr(dst, r.Workload)
	}
	if bits&reqN != 0 {
		dst = appendZigzag(dst, int64(r.N))
	}
	if bits&reqValues != 0 {
		dst = appendI64s(dst, r.Values)
	}
	if bits&reqLabel != 0 {
		dst = appendStr(dst, r.Label)
	}
	if bits&reqVersion != 0 {
		dst = appendZigzag(dst, int64(r.Version))
	}
	if bits&reqCodec != 0 {
		dst = appendStr(dst, r.Codec)
	}
	if bits&reqFrom != 0 {
		dst = appendZigzag(dst, r.From)
	}
	if bits&reqTo != 0 {
		dst = appendZigzag(dst, r.To)
	}
	if bits&reqStep != 0 {
		dst = appendZigzag(dst, r.Step)
	}
	if bits&reqDerive != 0 {
		dst = appendStrs(dst, r.Derive)
	}
	if bits&reqSessions != 0 {
		dst = appendU64s(dst, r.Sessions)
	}
	if bits&reqLabels != 0 {
		dst = appendStrs(dst, r.Labels)
	}
	return dst
}

func readRequest(r *binReader, m *Request) error {
	bits, err := r.uvarint()
	if err != nil {
		return err
	}
	if bits&^uint64(reqKnown) != 0 {
		return fmt.Errorf("unknown request field bits %#x", bits&^uint64(reqKnown))
	}
	*m = Request{Delta: bits&reqDelta != 0}
	if bits&reqOp != 0 {
		if m.Op, err = r.str(); err != nil {
			return err
		}
	}
	if bits&reqSession != 0 {
		if m.Session, err = r.uvarint(); err != nil {
			return err
		}
	}
	if bits&reqPlatform != 0 {
		if m.Platform, err = r.str(); err != nil {
			return err
		}
	}
	if bits&reqEvents != 0 {
		if m.Events, err = r.strs(); err != nil {
			return err
		}
	}
	if bits&reqWorkload != 0 {
		if m.Workload, err = r.str(); err != nil {
			return err
		}
	}
	if bits&reqN != 0 {
		n, err := r.zigzag()
		if err != nil {
			return err
		}
		m.N = int(n)
	}
	if bits&reqValues != 0 {
		if m.Values, err = r.i64s(); err != nil {
			return err
		}
	}
	if bits&reqLabel != 0 {
		if m.Label, err = r.str(); err != nil {
			return err
		}
	}
	if bits&reqVersion != 0 {
		v, err := r.zigzag()
		if err != nil {
			return err
		}
		m.Version = int(v)
	}
	if bits&reqCodec != 0 {
		if m.Codec, err = r.str(); err != nil {
			return err
		}
	}
	if bits&reqFrom != 0 {
		if m.From, err = r.zigzag(); err != nil {
			return err
		}
	}
	if bits&reqTo != 0 {
		if m.To, err = r.zigzag(); err != nil {
			return err
		}
	}
	if bits&reqStep != 0 {
		if m.Step, err = r.zigzag(); err != nil {
			return err
		}
	}
	if bits&reqDerive != 0 {
		if m.Derive, err = r.strs(); err != nil {
			return err
		}
	}
	if bits&reqSessions != 0 {
		if m.Sessions, err = r.u64s(); err != nil {
			return err
		}
	}
	if bits&reqLabels != 0 {
		if m.Labels, err = r.strs(); err != nil {
			return err
		}
	}
	return nil
}

// Response field presence bits, in encoding order. respOK carries the
// boolean itself: the bit set means OK == true.
const (
	respOp = 1 << iota
	respOK
	respError
	respSession
	respPlatform
	respEvents
	respValues
	respRealUsec
	respSeq
	respProtocol
	respSource
	respStats
	respSeries
	respCodec
	respHists
	respMetrics
	respUnits
	respDValues
	respDerived
	respSessions
	respIdx
	respBase
	respTrace
	respSlow

	respKnown = respSlow<<1 - 1
)

func appendResponse(dst []byte, m *Response) []byte {
	var bits uint64
	setIf := func(cond bool, bit uint64) {
		if cond {
			bits |= bit
		}
	}
	setIf(m.Op != "", respOp)
	setIf(m.OK, respOK)
	setIf(m.Error != "", respError)
	setIf(m.Session != 0, respSession)
	setIf(m.Platform != "", respPlatform)
	setIf(len(m.Events) > 0, respEvents)
	setIf(len(m.Values) > 0, respValues)
	setIf(m.RealUsec != 0, respRealUsec)
	setIf(m.Seq != 0, respSeq)
	setIf(m.Protocol != 0, respProtocol)
	setIf(m.Source != "", respSource)
	setIf(len(m.Stats) > 0, respStats)
	setIf(len(m.Series) > 0, respSeries)
	setIf(m.Codec != "", respCodec)
	setIf(len(m.Hists) > 0, respHists)
	setIf(len(m.Metrics) > 0, respMetrics)
	setIf(len(m.Units) > 0, respUnits)
	setIf(len(m.DValues) > 0, respDValues)
	setIf(len(m.Derived) > 0, respDerived)
	setIf(len(m.Sessions) > 0, respSessions)
	setIf(len(m.Idx) > 0, respIdx)
	setIf(m.Base != 0, respBase)
	setIf(m.TraceID != 0, respTrace)
	setIf(len(m.Slow) > 0, respSlow)

	dst = binary.AppendUvarint(dst, bits)
	if bits&respOp != 0 {
		dst = appendStr(dst, m.Op)
	}
	if bits&respError != 0 {
		dst = appendStr(dst, m.Error)
	}
	if bits&respSession != 0 {
		dst = binary.AppendUvarint(dst, m.Session)
	}
	if bits&respPlatform != 0 {
		dst = appendStr(dst, m.Platform)
	}
	if bits&respEvents != 0 {
		dst = appendStrs(dst, m.Events)
	}
	if bits&respValues != 0 {
		dst = appendI64s(dst, m.Values)
	}
	if bits&respRealUsec != 0 {
		dst = binary.AppendUvarint(dst, m.RealUsec)
	}
	if bits&respSeq != 0 {
		dst = binary.AppendUvarint(dst, m.Seq)
	}
	if bits&respProtocol != 0 {
		dst = appendZigzag(dst, int64(m.Protocol))
	}
	if bits&respSource != 0 {
		dst = appendStr(dst, m.Source)
	}
	if bits&respStats != 0 {
		dst = appendStats(dst, m.Stats)
	}
	if bits&respSeries != 0 {
		dst = appendSeries(dst, m.Series)
	}
	if bits&respCodec != 0 {
		dst = appendStr(dst, m.Codec)
	}
	if bits&respHists != 0 {
		dst = appendHists(dst, m.Hists)
	}
	if bits&respMetrics != 0 {
		dst = appendStrs(dst, m.Metrics)
	}
	if bits&respUnits != 0 {
		dst = appendStrs(dst, m.Units)
	}
	if bits&respDValues != 0 {
		dst = appendF64s(dst, m.DValues)
	}
	if bits&respDerived != 0 {
		dst = appendDerived(dst, m.Derived)
	}
	if bits&respSessions != 0 {
		dst = appendU64s(dst, m.Sessions)
	}
	if bits&respIdx != 0 {
		dst = appendU32s(dst, m.Idx)
	}
	if bits&respBase != 0 {
		dst = binary.AppendUvarint(dst, m.Base)
	}
	if bits&respTrace != 0 {
		dst = binary.AppendUvarint(dst, m.TraceID)
	}
	if bits&respSlow != 0 {
		dst = appendSlow(dst, m.Slow)
	}
	return dst
}

func readResponse(r *binReader, m *Response) error {
	bits, err := r.uvarint()
	if err != nil {
		return err
	}
	if bits&^uint64(respKnown) != 0 {
		return fmt.Errorf("unknown response field bits %#x", bits&^uint64(respKnown))
	}
	*m = Response{OK: bits&respOK != 0}
	if bits&respOp != 0 {
		if m.Op, err = r.str(); err != nil {
			return err
		}
	}
	if bits&respError != 0 {
		if m.Error, err = r.str(); err != nil {
			return err
		}
	}
	if bits&respSession != 0 {
		if m.Session, err = r.uvarint(); err != nil {
			return err
		}
	}
	if bits&respPlatform != 0 {
		if m.Platform, err = r.str(); err != nil {
			return err
		}
	}
	if bits&respEvents != 0 {
		if m.Events, err = r.strs(); err != nil {
			return err
		}
	}
	if bits&respValues != 0 {
		if m.Values, err = r.i64s(); err != nil {
			return err
		}
	}
	if bits&respRealUsec != 0 {
		if m.RealUsec, err = r.uvarint(); err != nil {
			return err
		}
	}
	if bits&respSeq != 0 {
		if m.Seq, err = r.uvarint(); err != nil {
			return err
		}
	}
	if bits&respProtocol != 0 {
		p, err := r.zigzag()
		if err != nil {
			return err
		}
		m.Protocol = int(p)
	}
	if bits&respSource != 0 {
		if m.Source, err = r.str(); err != nil {
			return err
		}
	}
	if bits&respStats != 0 {
		if m.Stats, err = r.stats(); err != nil {
			return err
		}
	}
	if bits&respSeries != 0 {
		if m.Series, err = r.series(); err != nil {
			return err
		}
	}
	if bits&respCodec != 0 {
		if m.Codec, err = r.str(); err != nil {
			return err
		}
	}
	if bits&respHists != 0 {
		if m.Hists, err = r.hists(); err != nil {
			return err
		}
	}
	if bits&respMetrics != 0 {
		if m.Metrics, err = r.strs(); err != nil {
			return err
		}
	}
	if bits&respUnits != 0 {
		if m.Units, err = r.strs(); err != nil {
			return err
		}
	}
	if bits&respDValues != 0 {
		if m.DValues, err = r.f64s(); err != nil {
			return err
		}
	}
	if bits&respDerived != 0 {
		if m.Derived, err = r.derived(); err != nil {
			return err
		}
	}
	if bits&respSessions != 0 {
		if m.Sessions, err = r.u64s(); err != nil {
			return err
		}
	}
	if bits&respIdx != 0 {
		if m.Idx, err = r.u32s(); err != nil {
			return err
		}
	}
	if bits&respBase != 0 {
		if m.Base, err = r.uvarint(); err != nil {
			return err
		}
	}
	if bits&respTrace != 0 {
		if m.TraceID, err = r.uvarint(); err != nil {
			return err
		}
	}
	if bits&respSlow != 0 {
		if m.Slow, err = r.slow(); err != nil {
			return err
		}
	}
	return nil
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendStrs(dst []byte, ss []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = appendStr(dst, s)
	}
	return dst
}

func appendI64s(dst []byte, vs []int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = appendZigzag(dst, v)
	}
	return dst
}

func appendU64s(dst []byte, vs []uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = binary.AppendUvarint(dst, v)
	}
	return dst
}

func appendU32s(dst []byte, vs []uint32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = binary.AppendUvarint(dst, uint64(v))
	}
	return dst
}

// appendStats writes the map key-sorted so identical responses encode
// identically — byte-for-byte determinism keeps tests and diffs sane.
func appendStats(dst []byte, st map[string]uint64) []byte {
	keys := make([]string, 0, len(st))
	for k := range st {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = appendStr(dst, k)
		dst = binary.AppendUvarint(dst, st[k])
	}
	return dst
}

// appendHists writes the histogram-summary map key-sorted, like
// appendStats: counts and sums as uvarints, quantiles zigzagged.
func appendHists(dst []byte, hists map[string]telemetry.Summary) []byte {
	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		h := hists[k]
		dst = appendStr(dst, k)
		dst = binary.AppendUvarint(dst, h.Count)
		dst = appendZigzag(dst, h.Sum)
		dst = appendZigzag(dst, h.Min)
		dst = appendZigzag(dst, h.Max)
		dst = appendZigzag(dst, h.P50)
		dst = appendZigzag(dst, h.P90)
		dst = appendZigzag(dst, h.P99)
	}
	return dst
}

func appendSeries(dst []byte, series []tsdb.Series) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(series)))
	for _, sr := range series {
		dst = appendStr(dst, sr.Event)
		dst = appendZigzag(dst, sr.Width)
		dst = binary.AppendUvarint(dst, uint64(len(sr.Buckets)))
		for _, bk := range sr.Buckets {
			dst = appendZigzag(dst, bk.Start)
			dst = binary.AppendUvarint(dst, bk.Count)
			dst = appendZigzag(dst, bk.Min)
			dst = appendZigzag(dst, bk.Max)
			dst = appendZigzag(dst, bk.Sum)
			dst = appendZigzag(dst, bk.Last)
		}
	}
	return dst
}

func appendZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64(v<<1)^uint64(v>>63))
}

// appendF64 writes a float64 as the uvarint of its IEEE-754 bit
// pattern. Varint offers no compression for arbitrary doubles (most
// cost 9–10 bytes), but derived values are the only float traffic and
// a handful per frame; reusing the varint reader keeps the decoder's
// bounds-checking uniform.
func appendF64(dst []byte, v float64) []byte {
	return binary.AppendUvarint(dst, math.Float64bits(v))
}

func appendF64s(dst []byte, vs []float64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = appendF64(dst, v)
	}
	return dst
}

func appendDerived(dst []byte, ds []DerivedSeries) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ds)))
	for _, sr := range ds {
		dst = appendStr(dst, sr.Metric)
		dst = appendStr(dst, sr.Unit)
		dst = binary.AppendUvarint(dst, uint64(len(sr.Points)))
		for _, p := range sr.Points {
			dst = appendZigzag(dst, p.Start)
			dst = appendF64(dst, p.Value)
		}
	}
	return dst
}

func appendSlow(dst []byte, ss []SlowSample) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = appendStr(dst, s.Op)
		dst = binary.AppendUvarint(dst, s.Session)
		dst = appendZigzag(dst, s.NS)
		dst = binary.AppendUvarint(dst, s.TraceID)
	}
	return dst
}

var errTruncated = errors.New("truncated binary payload")

// binReader is a bounds-checked cursor over one frame's payload. Every
// count it reads is sanity-checked against the bytes remaining (each
// element costs at least one byte), so a corrupt count cannot demand
// an allocation larger than the frame that carried it.
type binReader struct {
	buf []byte
}

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		return 0, errTruncated
	}
	r.buf = r.buf[n:]
	return v, nil
}

func (r *binReader) zigzag() (int64, error) {
	u, err := r.uvarint()
	return int64(u>>1) ^ -int64(u&1), err
}

func (r *binReader) count() (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(len(r.buf)) {
		return 0, fmt.Errorf("count %d exceeds %d payload bytes", n, len(r.buf))
	}
	return int(n), nil
}

func (r *binReader) str() (string, error) {
	n, err := r.count()
	if err != nil {
		return "", err
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s, nil
}

func (r *binReader) strs() ([]string, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	out := make([]string, n)
	for i := range out {
		if out[i], err = r.str(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *binReader) u64s() ([]uint64, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	out := make([]uint64, n)
	for i := range out {
		if out[i], err = r.uvarint(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *binReader) u32s() ([]uint32, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	for i := range out {
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if v > math.MaxUint32 {
			return nil, fmt.Errorf("index %d overflows uint32", v)
		}
		out[i] = uint32(v)
	}
	return out, nil
}

func (r *binReader) i64s() ([]int64, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	out := make([]int64, n)
	for i := range out {
		if out[i], err = r.zigzag(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *binReader) stats() (map[string]uint64, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	out := make(map[string]uint64, n)
	for i := 0; i < n; i++ {
		k, err := r.str()
		if err != nil {
			return nil, err
		}
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}

func (r *binReader) hists() (map[string]telemetry.Summary, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	out := make(map[string]telemetry.Summary, n)
	for i := 0; i < n; i++ {
		k, err := r.str()
		if err != nil {
			return nil, err
		}
		var h telemetry.Summary
		if h.Count, err = r.uvarint(); err != nil {
			return nil, err
		}
		if h.Sum, err = r.zigzag(); err != nil {
			return nil, err
		}
		if h.Min, err = r.zigzag(); err != nil {
			return nil, err
		}
		if h.Max, err = r.zigzag(); err != nil {
			return nil, err
		}
		if h.P50, err = r.zigzag(); err != nil {
			return nil, err
		}
		if h.P90, err = r.zigzag(); err != nil {
			return nil, err
		}
		if h.P99, err = r.zigzag(); err != nil {
			return nil, err
		}
		out[k] = h
	}
	return out, nil
}

func (r *binReader) series() ([]tsdb.Series, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	out := make([]tsdb.Series, n)
	for i := range out {
		if out[i].Event, err = r.str(); err != nil {
			return nil, err
		}
		if out[i].Width, err = r.zigzag(); err != nil {
			return nil, err
		}
		nb, err := r.count()
		if err != nil {
			return nil, err
		}
		buckets := make([]tsdb.Bucket, nb)
		for j := range buckets {
			bk := &buckets[j]
			if bk.Start, err = r.zigzag(); err != nil {
				return nil, err
			}
			if bk.Count, err = r.uvarint(); err != nil {
				return nil, err
			}
			if bk.Min, err = r.zigzag(); err != nil {
				return nil, err
			}
			if bk.Max, err = r.zigzag(); err != nil {
				return nil, err
			}
			if bk.Sum, err = r.zigzag(); err != nil {
				return nil, err
			}
			if bk.Last, err = r.zigzag(); err != nil {
				return nil, err
			}
		}
		out[i].Buckets = buckets
	}
	return out, nil
}

func (r *binReader) f64() (float64, error) {
	u, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(u), nil
}

func (r *binReader) f64s() ([]float64, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		if out[i], err = r.f64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *binReader) derived() ([]DerivedSeries, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	out := make([]DerivedSeries, n)
	for i := range out {
		if out[i].Metric, err = r.str(); err != nil {
			return nil, err
		}
		if out[i].Unit, err = r.str(); err != nil {
			return nil, err
		}
		np, err := r.count()
		if err != nil {
			return nil, err
		}
		points := make([]DerivedPoint, np)
		for j := range points {
			if points[j].Start, err = r.zigzag(); err != nil {
				return nil, err
			}
			if points[j].Value, err = r.f64(); err != nil {
				return nil, err
			}
		}
		out[i].Points = points
	}
	return out, nil
}

func (r *binReader) slow() ([]SlowSample, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	out := make([]SlowSample, n)
	for i := range out {
		if out[i].Op, err = r.str(); err != nil {
			return nil, err
		}
		if out[i].Session, err = r.uvarint(); err != nil {
			return nil, err
		}
		if out[i].NS, err = r.zigzag(); err != nil {
			return nil, err
		}
		if out[i].TraceID, err = r.uvarint(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
