package wire

import (
	"repro/internal/telemetry"
	"repro/internal/tsdb"
)

// The papid protocol: JSON-lines request/response over TCP, one
// Request per line from the client, one Response per line from the
// server. A connection that has issued SUBSCRIBE additionally receives
// asynchronous OpSnapshot responses interleaved with its request
// replies; clients distinguish them by the Op field.
//
// A typical exchange (client lines prefixed >, server lines <):
//
//	> {"op":"HELLO","version":2}
//	< {"op":"HELLO","ok":true,"protocol":2,"platform":"linux-x86"}
//	> {"op":"CREATE_SESSION","platform":"aix-power3","events":["PAPI_FP_INS","PAPI_TOT_CYC"]}
//	< {"op":"CREATE_SESSION","ok":true,"session":1,"events":["PAPI_FP_INS","PAPI_TOT_CYC"]}
//	> {"op":"START","session":1}
//	< {"op":"START","ok":true,"session":1}
//	> {"op":"SUBSCRIBE","session":1}
//	< {"op":"SUBSCRIBE","ok":true,"session":1}
//	< {"op":"SNAPSHOT","ok":true,"session":1,"seq":1,"values":[420,9001],...}
//	> {"op":"STOP","session":1}
//	< {"op":"STOP","ok":true,"session":1,"values":[1260,27003]}
//	> {"op":"BYE"}
//	< {"op":"BYE","ok":true}

// ProtocolVersion is echoed in the HELLO response; clients reject
// servers speaking a different major version. Since version 2 a client
// may also announce its own version in the HELLO request, and should
// compare the server's reply against the op-specific minimums below
// instead of failing on an unknown op.
//
// History: 1 = initial papid protocol; 2 = HELLO carries the client
// version and QUERY serves tsdb history; 3 = HELLO may negotiate the
// compact binary codec (see binary.go), STATS carries histogram
// summaries, and subscribers may receive DERIVED frames; 4 = SUBSCRIBE
// accepts filters (session IDs, label globs, event names) and delta
// mode, and filtered subscribers may receive DELTA frames (see
// delta.go).
const ProtocolVersion = 4

// MinProtocolQuery is the lowest server protocol that understands
// OpQuery; QUERY-aware clients check the HELLO reply against it to
// detect older servers.
const MinProtocolQuery = 2

// MinProtocolBinary is the lowest protocol whose HELLO can negotiate
// the binary codec. A client announces `"codec":"binary"` in its HELLO
// request; a server that agrees echoes the codec in its (still
// JSON-encoded) HELLO reply, and both sides switch every subsequent
// frame to binary framing. Either side omitting the field falls back
// to JSON lines transparently — a v2 peer never sees a binary byte.
const MinProtocolBinary = 3

// MinProtocolStatsHists is the lowest client protocol whose STATS
// replies carry histogram summaries (Response.Hists): the server's
// per-op latency quantiles, tick duration, and tsdb timings. A peer
// that announced an older version (or never sent HELLO) receives the
// plain counter map only, so a v2 JSON client's STATS reply stays
// exactly what older servers sent.
const MinProtocolStatsHists = 3

// MinProtocolDerived is the lowest client protocol that receives
// derived-metric traffic: asynchronous OpDerived frames after a
// SUBSCRIBE naming groups, and DerivedSeries in a derive-mode QUERY
// reply. The server never sends either to a peer that announced an
// older version (or never sent HELLO) — a v2 JSON client's stream
// stays exactly what older servers sent.
const MinProtocolDerived = 3

// MinProtocolFilter is the lowest client protocol that may subscribe
// with filters (Request.Sessions, Labels, Events on SUBSCRIBE) or
// request delta frames (Request.Delta). The server rejects filtered
// SUBSCRIBEs from older peers with a wire ERROR, and never sends a
// DELTA frame to a subscriber that did not ask for delta mode — an
// unfiltered v2/v3 peer's snapshot stream stays byte-identical to what
// older servers sent.
const MinProtocolFilter = 4

// MinProtocolTrace is the lowest client protocol whose replies carry
// the server-side trace ID (Response.TraceID) when papid traced the
// request, and whose STATS replies include recent slow-op samples
// (Response.Slow). The server never attaches either to a peer that
// announced an older version (or never sent HELLO) — a v2/v3 peer's
// replies stay byte-identical to what older servers sent (the binary
// codec rejects unknown presence bits, so these fields must never
// reach a v3 decoder).
const MinProtocolTrace = 4

// Request operations.
const (
	OpHello        = "HELLO"          // handshake; no arguments
	OpCreate       = "CREATE_SESSION" // platform, events?, workload?, n?
	OpAddEvents    = "ADD_EVENTS"     // session, events
	OpStart        = "START"          // session
	OpRead         = "READ"           // session
	OpSubscribe    = "SUBSCRIBE"      // session | sessions/labels, events?, delta?, derive?
	OpPublish      = "PUBLISH"        // session, values, events?
	OpStop         = "STOP"           // session
	OpCloseSession = "CLOSE_SESSION"  // session
	OpQuery        = "QUERY"          // session, events?, from, to, step — tsdb history
	OpStats        = "STATS"          // no arguments
	OpBye          = "BYE"            // close the connection
)

// OpSnapshot marks asynchronous fan-out frames pushed to subscribers;
// it never appears as a request. For a delta-mode subscriber a full
// SNAPSHOT is a keyframe: it resets the subscriber's view and anchors
// every following DELTA frame until the next keyframe.
const OpSnapshot = "SNAPSHOT"

// OpDelta marks asynchronous delta frames pushed to subscribers that
// requested delta mode (protocol >= MinProtocolFilter): Idx lists the
// counters whose values differ from the keyframe identified by Base,
// and Values carries their absolute current values (parallel slices,
// indices into the keyframe's Events order). Each delta is complete
// relative to its keyframe, so a dropped delta never corrupts client
// state — the next delta or keyframe fully supersedes it. Never
// appears as a request.
const OpDelta = "DELTA"

// OpDerived marks asynchronous derived-metric frames pushed to v3+
// subscribers whose session has performance groups registered: Metrics
// names the derived values, DValues carries them (parallel slices),
// Units their display units, and Seq echoes the source snapshot's
// sequence number. Never appears as a request and is never sent to
// pre-v3 peers (MinProtocolDerived).
const OpDerived = "DERIVED"

// OpError marks server-originated error frames that do not correspond
// to a decodable request — e.g. the reply to a malformed line. The
// connection stays open; JSON-lines framing resynchronizes on the next
// newline.
const OpError = "ERROR"

// Request is one client frame.
type Request struct {
	Op       string   `json:"op"`
	Session  uint64   `json:"session,omitempty"`
	Platform string   `json:"platform,omitempty"`
	Events   []string `json:"events,omitempty"`
	// Workload names the synthetic program papid advances on each tick
	// of a started session (workload.ByName); empty selects a small
	// default, "none" creates a publish-only session that papid never
	// drives itself.
	Workload string  `json:"workload,omitempty"`
	N        int     `json:"n,omitempty"`      // workload size parameter
	Values   []int64 `json:"values,omitempty"` // PUBLISH payload
	Label    string  `json:"label,omitempty"`  // optional client name
	// Version is the client's ProtocolVersion, announced in HELLO so
	// the server can adapt to older clients (0 means a pre-v2 client).
	Version int `json:"version,omitempty"`
	// Codec, in a HELLO request, asks the server to switch the
	// connection to the named frame codec ("binary"); empty keeps the
	// JSON-lines default. See MinProtocolBinary.
	Codec string `json:"codec,omitempty"`
	// QUERY range: [From, To) in µs with Step-wide output windows.
	// Step 0 returns raw samples; see tsdb.Query for the exact window
	// semantics.
	From int64 `json:"from,omitempty"`
	To   int64 `json:"to,omitempty"`
	Step int64 `json:"step,omitempty"`
	// Derive names performance groups. In a SUBSCRIBE it registers the
	// groups for per-tick evaluation on the session (the subscriber then
	// receives OpDerived frames); in a QUERY it switches the reply from
	// raw Series to Derived — the groups' formulas evaluated over the
	// history window. Requires protocol >= MinProtocolDerived.
	Derive []string `json:"derive,omitempty"`
	// Sessions, in a SUBSCRIBE with Session == 0, is a wildcard filter:
	// subscribe to every listed session that currently exists. Requires
	// protocol >= MinProtocolFilter.
	Sessions []uint64 `json:"sessions,omitempty"`
	// Labels, in a SUBSCRIBE with Session == 0, is a wildcard filter by
	// session label: path.Match-style globs against the Label each
	// CREATE_SESSION recorded. Requires protocol >= MinProtocolFilter.
	Labels []string `json:"labels,omitempty"`
	// Delta, in a SUBSCRIBE, requests delta mode: the subscriber
	// receives a full SNAPSHOT keyframe first and periodically, and
	// compact DELTA frames in between carrying only the counters that
	// changed since the keyframe. Requires protocol >= MinProtocolFilter.
	// (Events, on a SUBSCRIBE from a v4+ peer, narrows the stream to the
	// named counters; the same field names the events of a
	// CREATE_SESSION or PUBLISH.)
	Delta bool `json:"delta,omitempty"`
}

// DerivedPoint is one evaluated derived-metric value, anchored at the
// closing timestamp of the interval it summarizes (µs).
type DerivedPoint struct {
	Start int64   `json:"start"`
	Value float64 `json:"value"`
}

// DerivedSeries is one derived metric evaluated over a QUERY window.
type DerivedSeries struct {
	Metric string         `json:"metric"`
	Unit   string         `json:"unit,omitempty"`
	Points []DerivedPoint `json:"points"`
}

// Response is one server frame: the reply to a request (Op echoes the
// request) or an asynchronous snapshot (Op == OpSnapshot).
type Response struct {
	Op       string            `json:"op"`
	OK       bool              `json:"ok"`
	Error    string            `json:"error,omitempty"`
	Session  uint64            `json:"session,omitempty"`
	Platform string            `json:"platform,omitempty"`
	Events   []string          `json:"events,omitempty"`
	Values   []int64           `json:"values,omitempty"`
	RealUsec uint64            `json:"real_usec,omitempty"`
	Seq      uint64            `json:"seq,omitempty"`
	Protocol int               `json:"protocol,omitempty"`
	Source   string            `json:"source,omitempty"` // snapshot origin: "live" or "published"
	Stats    map[string]uint64 `json:"stats,omitempty"`
	// Hists carries the server's latency-histogram summaries in a
	// v3 STATS reply, keyed compactly: "op/<OP>/<codec>" for per-op
	// wire latency, "tick" for fan-out tick duration, "tsdb/append"
	// and "tsdb/query" for the history store. Values are nanoseconds.
	// Omitted entirely for pre-v3 peers (MinProtocolStatsHists).
	Hists map[string]telemetry.Summary `json:"hists,omitempty"`
	// Series carries a QUERY reply: one entry per event, each holding
	// the downsampled min/max/sum/count/last buckets for the range.
	Series []tsdb.Series `json:"series,omitempty"`
	// Codec, in a HELLO reply, confirms the codec the server will
	// speak from the next frame on; empty means JSON lines.
	Codec string `json:"codec,omitempty"`
	// Metrics, Units and DValues are the parallel payload of an
	// OpDerived frame: derived-metric names, display units and values
	// for one tick. v3+ subscribers only (MinProtocolDerived).
	Metrics []string  `json:"metrics,omitempty"`
	Units   []string  `json:"units,omitempty"`
	DValues []float64 `json:"dvalues,omitempty"`
	// Derived carries a derive-mode QUERY reply: one series per metric
	// of the requested groups, evaluated over the history window.
	Derived []DerivedSeries `json:"derived,omitempty"`
	// Sessions, in the reply to a wildcard SUBSCRIBE, lists the session
	// IDs the filters matched at subscribe time.
	Sessions []uint64 `json:"sessions,omitempty"`
	// Idx and Base are the OpDelta payload: Idx lists the positions (in
	// the keyframe's Events order) of counters whose values differ from
	// the keyframe whose Seq equals Base; Values (parallel to Idx)
	// carries their absolute current values. A client whose last
	// keyframe's Seq is not Base has missed a keyframe and must discard
	// the delta and wait for the next keyframe (see DeltaTracker).
	Idx  []uint32 `json:"idx,omitempty"`
	Base uint64   `json:"base,omitempty"`
	// TraceID identifies the server-side trace of this request's
	// handling (tracing enabled, v4+ peers only — MinProtocolTrace).
	// Rendered in hex it keys /debug/trace?id= on papid's admin
	// endpoint; the same ID appears in SlowOp warn lines, so a slow
	// reply, its log line and its flight-recorder trace all link up.
	TraceID uint64 `json:"trace,omitempty"`
	// Slow, in a v4 STATS reply, lists the server's most recent
	// SlowOp-threshold breaches with their trace IDs (newest first).
	Slow []SlowSample `json:"slow,omitempty"`
}

// SlowSample is one recent slow operation in a STATS reply: what ran,
// how long it took, and which retained trace shows where the time
// went.
type SlowSample struct {
	Op      string `json:"op"`
	Session uint64 `json:"session,omitempty"`
	NS      int64  `json:"ns"`
	TraceID uint64 `json:"trace,omitempty"`
}
