// Delta reassembly (protocol v4): a subscriber that asked for delta
// mode receives full SNAPSHOT keyframes interleaved with compact DELTA
// frames. Every delta is complete relative to its keyframe — Idx lists
// each counter whose value differs from the keyframe identified by
// Base, with the absolute current value in Values — so a dropped delta
// never corrupts client state: the next delta or keyframe fully
// supersedes it. The only unrecoverable gap is a missed keyframe, which
// a client detects by Base not matching the Seq of the keyframe it
// holds; it discards such deltas and waits for the next keyframe (the
// server re-keys on drops and on a periodic cadence, so the wait is
// bounded).
package wire

import (
	"errors"
	"fmt"
)

// ErrDeltaGap reports a DELTA frame whose Base does not name the
// keyframe the tracker holds — a keyframe was missed. The tracker's
// state is unchanged; the caller skips the frame and keeps feeding
// until the next keyframe re-anchors the stream.
var ErrDeltaGap = errors.New("delta chains from a missed keyframe")

// ErrNoKeyframe reports a DELTA frame for a session the tracker has no
// keyframe for yet (e.g. frames raced ahead of the subscribe reply).
// Like ErrDeltaGap it is skippable: the next keyframe recovers.
var ErrNoKeyframe = errors.New("delta precedes any keyframe")

// DeltaTracker materializes a delta-mode subscription stream back into
// full snapshots: feed every SNAPSHOT and DELTA frame to Apply and get
// a complete snapshot back for each. One tracker handles any number of
// interleaved sessions. Not safe for concurrent use.
type DeltaTracker struct {
	views map[uint64]*trackerView
}

type trackerView struct {
	keySeq uint64   // Seq of the keyframe held
	events []string // keyframe event order (deltas index into it)
	base   []int64  // keyframe values
	out    []int64  // reusable materialization buffer
}

// Apply consumes one frame. A SNAPSHOT (keyframe) is stored and
// returned unchanged; a DELTA is materialized against the stored
// keyframe and returned as a full OpSnapshot response (Events and
// Values complete, Idx and Base cleared). Frames of any other op pass
// through untouched. The returned response's Events and Values must
// not be retained across Apply calls — the tracker reuses them.
func (t *DeltaTracker) Apply(resp Response) (Response, error) {
	switch resp.Op {
	case OpSnapshot:
		if t.views == nil {
			t.views = make(map[uint64]*trackerView)
		}
		v := t.views[resp.Session]
		if v == nil {
			v = &trackerView{}
			t.views[resp.Session] = v
		}
		v.keySeq = resp.Seq
		v.events = resp.Events
		v.base = append(v.base[:0], resp.Values...)
		return resp, nil
	case OpDelta:
		v := t.views[resp.Session]
		if v == nil {
			return Response{}, fmt.Errorf("session %d: %w", resp.Session, ErrNoKeyframe)
		}
		if resp.Base != v.keySeq {
			return Response{}, fmt.Errorf("session %d: delta base seq %d, keyframe seq %d: %w",
				resp.Session, resp.Base, v.keySeq, ErrDeltaGap)
		}
		if len(resp.Idx) != len(resp.Values) {
			return Response{}, fmt.Errorf("session %d: delta carries %d indices but %d values",
				resp.Session, len(resp.Idx), len(resp.Values))
		}
		v.out = append(v.out[:0], v.base...)
		for i, idx := range resp.Idx {
			if int(idx) >= len(v.out) {
				return Response{}, fmt.Errorf("session %d: delta index %d out of range (keyframe has %d counters)",
					resp.Session, idx, len(v.out))
			}
			v.out[idx] = resp.Values[i]
		}
		resp.Op = OpSnapshot
		resp.Events = v.events
		resp.Values = v.out
		resp.Idx, resp.Base = nil, 0
		return resp, nil
	}
	return resp, nil
}
