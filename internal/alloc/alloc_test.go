package alloc

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func items(masks ...uint32) []Item {
	out := make([]Item, len(masks))
	for i, m := range masks {
		out[i] = Item{ID: uint32(i + 1), Mask: m, Weight: 1}
	}
	return out
}

func TestAssignSimple(t *testing.T) {
	it := items(0b11, 0b11)
	r, ok := Assign(it, 2)
	if !ok || !Verify(it, 2, r) || r.Mapped != 2 {
		t.Fatalf("Assign failed: %+v ok=%v", r, ok)
	}
	if r.Counter[0] == r.Counter[1] {
		t.Error("two items on one counter")
	}
}

func TestAssignRequiresAugmentingPath(t *testing.T) {
	// Item0 can use both counters; item1 only counter 0. First-fit
	// puts item0 on counter 0 and fails; matching must succeed.
	it := items(0b11, 0b01)
	r, ok := Assign(it, 2)
	if !ok || !Verify(it, 2, r) {
		t.Fatalf("matching failed on augmenting-path case: %+v", r)
	}
	if r.Counter[0] != 1 || r.Counter[1] != 0 {
		t.Errorf("unexpected assignment %v", r.Counter)
	}
	_, gok := GreedyFirstFit(it, 2)
	if gok {
		t.Error("greedy unexpectedly succeeded; this case exists to show it failing")
	}
}

func TestAssignImpossible(t *testing.T) {
	it := items(0b01, 0b01) // both need counter 0
	if _, ok := Assign(it, 2); ok {
		t.Error("expected failure: two events need the same single counter")
	}
}

func TestMaxCardinalityPartial(t *testing.T) {
	it := items(0b01, 0b01, 0b10)
	r := MaxCardinality(it, 2)
	if r.Mapped != 2 || !Verify(it, 2, r) {
		t.Errorf("mapped %d of 3, want 2: %+v", r.Mapped, r)
	}
}

func TestMaxWeightPrefersHeavyEvent(t *testing.T) {
	it := []Item{
		{ID: 1, Mask: 0b01, Weight: 1},
		{ID: 2, Mask: 0b01, Weight: 10}, // conflicts with ID 1; heavier
		{ID: 3, Mask: 0b10, Weight: 1},
	}
	r := MaxWeight(it, 2)
	if !Verify(it, 2, r) {
		t.Fatalf("invalid allocation %+v", r)
	}
	if r.Counter[1] != 0 {
		t.Errorf("heavy event not mapped: %v", r.Counter)
	}
	if r.Weight != 11 {
		t.Errorf("weight = %d, want 11", r.Weight)
	}
}

func TestMaxWeightTiebreaksTowardMoreMapped(t *testing.T) {
	it := []Item{
		{ID: 1, Mask: 0b11, Weight: 0},
		{ID: 2, Mask: 0b10, Weight: 0},
	}
	r := MaxWeight(it, 2)
	if r.Mapped != 2 {
		t.Errorf("mapped %d, want 2 (zero-weight events still worth mapping)", r.Mapped)
	}
}

func TestAssignGrouped(t *testing.T) {
	groups := [][]uint32{{1, 2}, {2, 3, 4}}
	it := []Item{{ID: 2, Mask: 0b11}, {ID: 3, Mask: 0b11}}
	r, gi, ok := AssignGrouped(it, 2, groups)
	if !ok || gi != 1 {
		t.Fatalf("grouped assign: ok=%v group=%d", ok, gi)
	}
	if !Verify(it, 2, r) {
		t.Error("invalid grouped allocation")
	}
	// Events spanning no single group must fail even though counters abound.
	it2 := []Item{{ID: 1, Mask: 0b11}, {ID: 4, Mask: 0b11}}
	if _, _, ok := AssignGrouped(it2, 2, groups); ok {
		t.Error("expected cross-group set to fail")
	}
}

func TestAssignGroupedNoGroupsFallsThrough(t *testing.T) {
	it := items(0b11, 0b11)
	r, gi, ok := AssignGrouped(it, 2, nil)
	if !ok || gi != -1 || r.Mapped != 2 {
		t.Errorf("ungrouped fallback failed: ok=%v gi=%d mapped=%d", ok, gi, r.Mapped)
	}
}

// bruteMaxCardinality tries all assignments; exact for tiny inputs.
func bruteMaxCardinality(it []Item, numCounters int) int {
	best := 0
	var rec func(i int, used uint32, mapped int)
	rec = func(i int, used uint32, mapped int) {
		if mapped > best {
			best = mapped
		}
		if i == len(it) {
			return
		}
		rec(i+1, used, mapped) // skip
		free := it[i].Mask & ^used & (uint32(1)<<numCounters - 1)
		for free != 0 {
			c := free & -free
			free &^= c
			rec(i+1, used|c, mapped+1)
		}
	}
	rec(0, 0, 0)
	return best
}

func TestMaxCardinalityMatchesBruteForce(t *testing.T) {
	f := func(masks []uint8, nc uint8) bool {
		numCounters := int(nc%5) + 1
		if len(masks) > 6 {
			masks = masks[:6]
		}
		it := make([]Item, len(masks))
		for i, m := range masks {
			it[i] = Item{ID: uint32(i + 1), Mask: uint32(m) & (uint32(1)<<numCounters - 1)}
			if it[i].Mask == 0 {
				it[i].Mask = 1 // keep graphs non-degenerate
			}
		}
		r := MaxCardinality(it, numCounters)
		return Verify(it, numCounters, r) && r.Mapped == bruteMaxCardinality(it, numCounters)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMaxWeightNeverWorseThanCardinalityWeight(t *testing.T) {
	f := func(masks []uint8, weights []uint8) bool {
		if len(masks) > 6 {
			masks = masks[:6]
		}
		const nc = 4
		it := make([]Item, len(masks))
		for i, m := range masks {
			w := 1
			if i < len(weights) {
				w = int(weights[i]%9) + 1
			}
			it[i] = Item{ID: uint32(i + 1), Mask: uint32(m)&0b1111 | 1, Weight: w}
		}
		rw := MaxWeight(it, nc)
		rc := MaxCardinality(it, nc)
		// Recompute cardinality result's weight.
		cw := 0
		for i, c := range rc.Counter {
			if c >= 0 {
				cw += it[i].Weight
			}
		}
		return Verify(it, nc, rw) && rw.Weight >= cw
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOptimalAlwaysAtLeastGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		nc := 2 + rng.Intn(6)
		n := 1 + rng.Intn(nc+2)
		it := make([]Item, n)
		for i := range it {
			m := uint32(rng.Intn(1<<nc-1) + 1)
			it[i] = Item{ID: uint32(i + 1), Mask: m, Weight: 1}
		}
		opt := MaxCardinality(it, nc)
		grd, _ := GreedyFirstFit(it, nc)
		if opt.Mapped < grd.Mapped {
			t.Fatalf("optimal (%d) worse than greedy (%d) on %+v", opt.Mapped, grd.Mapped, it)
		}
		if !Verify(it, nc, opt) || !Verify(it, nc, grd) {
			t.Fatal("invalid allocation produced")
		}
	}
}

func TestVerifyCatchesBadResults(t *testing.T) {
	it := items(0b01, 0b10)
	bad := Result{Counter: []int{1, 1}} // item0 not allowed on 1; duplicate
	if Verify(it, 2, bad) {
		t.Error("Verify accepted disallowed counter")
	}
	bad2 := Result{Counter: []int{0}}
	if Verify(it, 2, bad2) {
		t.Error("Verify accepted wrong length")
	}
	bad3 := Result{Counter: []int{0, 5}}
	if Verify(it, 2, bad3) {
		t.Error("Verify accepted out-of-range counter")
	}
}

func TestMaskPopcountSanity(t *testing.T) {
	// Guard against accidental mask truncation: an item allowed on all
	// of 8 counters has 8 placement options.
	it := Item{ID: 1, Mask: 0xff}
	if bits.OnesCount32(it.Mask) != 8 {
		t.Fatal("mask arithmetic broken")
	}
}

// bruteGrouped checks feasibility of the grouped problem exhaustively.
func bruteGrouped(items []Item, numCounters int, groups [][]uint32) bool {
	for _, g := range groups {
		in := map[uint32]bool{}
		for _, id := range g {
			in[id] = true
		}
		all := true
		for _, it := range items {
			if !in[it.ID] {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		if bruteMaxCardinality(items, numCounters) == len(items) {
			return true
		}
	}
	return false
}

func TestGroupedMatchesBruteForce(t *testing.T) {
	// Property: AssignGrouped succeeds exactly when some group admits a
	// perfect matching, and its result is always valid.
	groups := [][]uint32{{1, 2, 3}, {3, 4, 5}, {1, 5}}
	f := func(ids []uint8, masks []uint8) bool {
		const nc = 3
		n := len(ids)
		if n > 4 {
			n = 4
		}
		items := make([]Item, 0, n)
		seen := map[uint32]bool{}
		for i := 0; i < n; i++ {
			id := uint32(ids[i]%5) + 1
			if seen[id] {
				continue
			}
			seen[id] = true
			m := uint32(0b111)
			if i < len(masks) {
				m = uint32(masks[i])&0b111 | 1
			}
			items = append(items, Item{ID: id, Mask: m})
		}
		if len(items) == 0 {
			return true
		}
		r, gi, ok := AssignGrouped(items, nc, groups)
		want := bruteGrouped(items, nc, groups)
		if ok != want {
			return false
		}
		if ok {
			if gi < 0 || gi >= len(groups) {
				return false
			}
			if !Verify(items, nc, r) || r.Mapped != len(items) {
				return false
			}
			// Every item must be in the chosen group.
			in := map[uint32]bool{}
			for _, id := range groups[gi] {
				in[id] = true
			}
			for _, it := range items {
				if !in[it.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestKeyCanonical(t *testing.T) {
	a := Key([]uint32{3, 1, 2})
	b := Key([]uint32{2, 3, 1})
	if a != b {
		t.Errorf("order-sensitive key: %q vs %q", a, b)
	}
	if c := Key([]uint32{1, 2, 2, 3, 3}); c != a {
		t.Errorf("duplicate-sensitive key: %q vs %q", c, a)
	}
	if d := Key([]uint32{1, 2}); d == a {
		t.Errorf("distinct subsets share key %q", d)
	}
	if e := Key(nil); e != "" {
		t.Errorf("Key(nil) = %q, want empty", e)
	}
	// Hex encoding with separators must not collide across boundaries:
	// {0x12, 0x34} vs {0x1234}.
	if Key([]uint32{0x12, 0x34}) == Key([]uint32{0x1234}) {
		t.Error("boundary collision between {12,34} and {1234}")
	}
	// Key must not mutate its argument.
	in := []uint32{9, 4, 7}
	Key(in)
	if in[0] != 9 || in[1] != 4 || in[2] != 7 {
		t.Errorf("Key mutated its input: %v", in)
	}
}
