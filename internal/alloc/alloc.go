// Package alloc solves the counter-allocation problem the paper casts
// as bipartite graph matching (§5): one vertex set is the events to be
// mapped, the other the physical counters, with an edge wherever an
// event can be counted on a counter. The package provides
//
//   - Assign: a perfect matching covering every event, or failure;
//   - MaxCardinality: a maximum matching when not all events fit
//     (Hopcroft–Karp);
//   - MaxWeight: a maximum-weight matching when events carry
//     priorities (exact bitmask dynamic program over counters);
//   - GreedyFirstFit: the naive baseline PAPI used before 2.3, kept for
//     the E4 comparison;
//   - AssignGrouped: the AIX/POWER-style variant where all counted
//     events must additionally fit inside a single hardware group.
//
// This is the hardware-independent half of the PAPI 3 redesign: the
// substrate translates its platform's counter scheme into Items, and
// this package knows nothing about any platform.
package alloc

import (
	"math/bits"
	"sort"
	"strconv"
)

// Item is one event to place: Mask has bit i set when physical counter
// i can count the event; Weight is the event's priority for the
// max-weight variant (ignored elsewhere).
type Item struct {
	ID     uint32
	Mask   uint32
	Weight int
}

// Result describes an allocation. Counter[i] is the physical counter
// assigned to items[i], or -1 when the item was left unmapped. Mapped
// counts the assigned items and Weight sums their weights.
type Result struct {
	Counter []int
	Mapped  int
	Weight  int
}

func newResult(n int) Result {
	r := Result{Counter: make([]int, n)}
	for i := range r.Counter {
		r.Counter[i] = -1
	}
	return r
}

// complete finalizes bookkeeping from the Counter slice.
func (r *Result) complete(items []Item) {
	r.Mapped, r.Weight = 0, 0
	for i, c := range r.Counter {
		if c >= 0 {
			r.Mapped++
			r.Weight += items[i].Weight
		}
	}
}

// Assign finds an assignment of every item to a distinct counter, if
// one exists. It runs maximum-cardinality matching and succeeds only on
// a perfect matching.
func Assign(items []Item, numCounters int) (Result, bool) {
	r := MaxCardinality(items, numCounters)
	return r, r.Mapped == len(items)
}

// MaxCardinality computes a maximum-cardinality matching via
// Hopcroft–Karp. All event sets in practice are tiny (≤ 32 counters),
// but the algorithm is the textbook O(E·sqrt(V)) version regardless.
func MaxCardinality(items []Item, numCounters int) Result {
	r := newResult(len(items))
	hk := newHopcroftKarp(items, numCounters)
	hk.solve()
	copy(r.Counter, hk.matchL)
	r.complete(items)
	return r
}

const unmatched = -1

type hopcroftKarp struct {
	items  []Item
	nR     int
	matchL []int // item -> counter
	matchR []int // counter -> item
	dist   []int
	queue  []int
}

func newHopcroftKarp(items []Item, numCounters int) *hopcroftKarp {
	hk := &hopcroftKarp{
		items:  items,
		nR:     numCounters,
		matchL: make([]int, len(items)),
		matchR: make([]int, numCounters),
		dist:   make([]int, len(items)+1),
	}
	for i := range hk.matchL {
		hk.matchL[i] = unmatched
	}
	for i := range hk.matchR {
		hk.matchR[i] = unmatched
	}
	return hk
}

const infDist = int(^uint(0) >> 1)

// bfs layers the free left vertices; returns true if an augmenting path
// exists.
func (hk *hopcroftKarp) bfs() bool {
	hk.queue = hk.queue[:0]
	for u := range hk.items {
		if hk.matchL[u] == unmatched {
			hk.dist[u] = 0
			hk.queue = append(hk.queue, u)
		} else {
			hk.dist[u] = infDist
		}
	}
	found := false
	for qi := 0; qi < len(hk.queue); qi++ {
		u := hk.queue[qi]
		mask := hk.items[u].Mask
		for mask != 0 {
			v := bits.TrailingZeros32(mask)
			mask &= mask - 1
			if v >= hk.nR {
				continue
			}
			w := hk.matchR[v]
			if w == unmatched {
				found = true
			} else if hk.dist[w] == infDist {
				hk.dist[w] = hk.dist[u] + 1
				hk.queue = append(hk.queue, w)
			}
		}
	}
	return found
}

// dfs extends an augmenting path from left vertex u along BFS layers.
func (hk *hopcroftKarp) dfs(u int) bool {
	mask := hk.items[u].Mask
	for mask != 0 {
		v := bits.TrailingZeros32(mask)
		mask &= mask - 1
		if v >= hk.nR {
			continue
		}
		w := hk.matchR[v]
		if w == unmatched || (hk.dist[w] == hk.dist[u]+1 && hk.dfs(w)) {
			hk.matchL[u] = v
			hk.matchR[v] = u
			return true
		}
	}
	hk.dist[u] = infDist
	return false
}

func (hk *hopcroftKarp) solve() {
	for hk.bfs() {
		for u := range hk.items {
			if hk.matchL[u] == unmatched {
				hk.dfs(u)
			}
		}
	}
}

// MaxWeight computes a maximum-weight matching: among all matchings it
// maximizes total mapped weight (breaking ties toward more mapped
// events). Exact dynamic program over subsets of counters — valid for
// numCounters ≤ 20, far above any real PMU.
func MaxWeight(items []Item, numCounters int) Result {
	if numCounters > 20 {
		// Fall back to cardinality; no simulated PMU is this wide.
		return MaxCardinality(items, numCounters)
	}
	n := len(items)
	full := 1 << numCounters
	const neg = -1 << 40
	// best[s] = max (weight*K + mapped) using items[0..i) with counter
	// set s occupied; K large enough that weight dominates.
	const k = 1 << 20
	best := make([]int64, full)
	choice := make([][]int8, n) // choice[i][s]: counter picked for item i at state s, or -1
	for i := range choice {
		choice[i] = make([]int8, full)
	}
	cur := make([]int64, full)
	for s := 1; s < full; s++ {
		best[s] = neg
	}
	for i := 0; i < n; i++ {
		for s := 0; s < full; s++ {
			cur[s] = neg
		}
		it := items[i]
		for s := 0; s < full; s++ {
			if best[s] == neg {
				continue
			}
			// Skip item i.
			if best[s] > cur[s] {
				cur[s] = best[s]
				choice[i][s] = -1
			}
			// Place item i on each free allowed counter.
			free := it.Mask & ^uint32(s) & uint32(full-1)
			for free != 0 {
				c := bits.TrailingZeros32(free)
				free &= free - 1
				ns := s | 1<<c
				val := best[s] + int64(it.Weight)*k + 1
				if val > cur[ns] {
					cur[ns] = val
					choice[i][ns] = int8(c)
				}
			}
		}
		best, cur = cur, best
	}
	// Find best final state and backtrack.
	bestS, bestV := 0, best[0]
	for s := 1; s < full; s++ {
		if best[s] > bestV {
			bestS, bestV = s, best[s]
		}
	}
	r := newResult(n)
	s := bestS
	for i := n - 1; i >= 0; i-- {
		c := choice[i][s]
		if c >= 0 {
			r.Counter[i] = int(c)
			s &^= 1 << uint(c)
		}
	}
	r.complete(items)
	return r
}

// GreedyFirstFit is the naive allocator: walk the items in order and
// give each the lowest-numbered free counter it can use, failing the
// item if none is free. It can fail sets a matching would map — exactly
// the deficiency the paper's optimal algorithm fixed in PAPI 2.3.
func GreedyFirstFit(items []Item, numCounters int) (Result, bool) {
	r := newResult(len(items))
	var used uint32
	ok := true
	for i, it := range items {
		free := it.Mask & ^used & (uint32(1)<<numCounters - 1)
		if free == 0 {
			ok = false
			continue
		}
		c := bits.TrailingZeros32(free)
		used |= 1 << c
		r.Counter[i] = c
	}
	r.complete(items)
	return r, ok
}

// AssignGrouped solves the group-constrained variant: every item must
// additionally belong to a single hardware group (identified by event
// ID). It returns the allocation, the index of the chosen group, and
// whether a full mapping exists. Groups are tried in order; the first
// group admitting a perfect matching wins.
func AssignGrouped(items []Item, numCounters int, groups [][]uint32) (Result, int, bool) {
	if len(groups) == 0 {
		r, ok := Assign(items, numCounters)
		return r, -1, ok
	}
	for gi, g := range groups {
		inGroup := make(map[uint32]bool, len(g))
		for _, id := range g {
			inGroup[id] = true
		}
		all := true
		for _, it := range items {
			if !inGroup[it.ID] {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		if r, ok := Assign(items, numCounters); ok {
			return r, gi, true
		}
	}
	return newResult(len(items)), -1, false
}

// Key returns a canonical cache key for a native-event subset: the
// codes sorted, deduplicated and hex-encoded. Two requests that differ
// only in event order or duplication share a key, which is what makes
// memoizing matching results sound — a matching depends only on the
// subset of items, never on their arrival order. papid's allocation
// cache keys on (architecture, Key(codes)).
func Key(codes []uint32) string {
	sorted := append([]uint32(nil), codes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	buf := make([]byte, 0, 9*len(sorted))
	for i, c := range sorted {
		if i > 0 && c == sorted[i-1] {
			continue
		}
		buf = strconv.AppendUint(buf, uint64(c), 16)
		buf = append(buf, '.')
	}
	return string(buf)
}

// Verify checks that a Result is a valid allocation for the items: each
// mapped item sits on an allowed counter and no counter is used twice.
func Verify(items []Item, numCounters int, r Result) bool {
	if len(r.Counter) != len(items) {
		return false
	}
	var used uint32
	for i, c := range r.Counter {
		if c == -1 {
			continue
		}
		if c < 0 || c >= numCounters {
			return false
		}
		if items[i].Mask&(1<<uint(c)) == 0 {
			return false
		}
		if used&(1<<uint(c)) != 0 {
			return false
		}
		used |= 1 << uint(c)
	}
	return true
}
