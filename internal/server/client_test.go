package server

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

// silentListener accepts connections and never replies — the shape of
// a wedged or half-dead papid.
func silentListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			defer nc.Close()
		}
	}()
	return ln.Addr().String()
}

// TestDoTimeout: a Do against a server that never replies must return
// once the request deadline trips, not hang forever.
func TestDoTimeout(t *testing.T) {
	addr := silentListener(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Timeout = 50 * time.Millisecond

	start := time.Now()
	_, err = cl.Do(wire.Request{Op: wire.OpHello})
	if err == nil {
		t.Fatal("Do against a silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Do returned after %v; deadline not applied", elapsed)
	}
	if !IsTransport(err) {
		t.Errorf("timeout error %v is not a TransportError", err)
	}
	var terr *TransportError
	if errors.As(err, &terr) && !terr.Timeout() {
		t.Errorf("TransportError.Timeout() = false for %v", err)
	}
	if !strings.Contains(err.Error(), wire.OpHello) {
		t.Errorf("error %q does not name the op in flight", err)
	}
}

// TestCloseIdempotentAndPropagating: Close must be safe to call
// twice, and the first call must surface an in-flight transport error
// rather than silently discarding it.
func TestCloseIdempotentAndPropagating(t *testing.T) {
	_, addr := startServer(t, Config{TickInterval: time.Hour})

	// Clean lifecycle: both closes succeed, second is a no-op.
	cl := dialT(t, addr)
	if _, err := cl.Do(wire.Request{Op: wire.OpBye}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Errorf("clean Close: %v", err)
	}
	if err := cl.Close(); err != nil {
		t.Errorf("second Close not idempotent: %v", err)
	}

	// Failed lifecycle: kill the socket behind the client's back, let
	// a Do fail in flight, and check Close reports it.
	cl2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	cl2.nc.Close() // simulate the connection dying underneath
	if _, err := cl2.Do(wire.Request{Op: wire.OpHello}); err == nil {
		t.Fatal("Do on a dead socket succeeded")
	}
	// The socket is already closed, so this first Close's nc.Close
	// errors or the recorded transport error surfaces — either way it
	// must be non-nil, and the second call nil.
	if err := cl2.Close(); err == nil {
		t.Error("Close after in-flight failure returned nil")
	}
	if err := cl2.Close(); err != nil {
		t.Errorf("second Close not idempotent: %v", err)
	}
}

// TestDialRetryEventuallyConnects: a server that comes up late is
// reached by the backoff loop.
func TestDialRetryEventuallyConnects(t *testing.T) {
	// Reserve an address, close it, and re-listen after a delay.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	srv := New(Config{TickInterval: time.Hour})
	listening := make(chan struct{})
	go func() {
		time.Sleep(60 * time.Millisecond)
		srv.Listen(addr)
		close(listening)
	}()
	t.Cleanup(func() {
		<-listening // Shutdown only after Listen has installed the listener
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	cl, err := DialRetry(addr, RetryConfig{
		Attempts:  8,
		BaseDelay: 20 * time.Millisecond,
		Timeout:   5 * time.Second,
	})
	if err != nil {
		t.Fatalf("DialRetry never reached the late server: %v", err)
	}
	defer cl.Close()
	if _, err := cl.Hello(); err != nil {
		t.Fatal(err)
	}
}

// TestDialRetryGivesUp: a dead address fails after the configured
// attempts with an error naming the address and the attempt count.
func TestDialRetryGivesUp(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	_, err = DialRetry(addr, RetryConfig{Attempts: 2, BaseDelay: time.Millisecond})
	if err == nil {
		t.Fatal("DialRetry against a dead address succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, "unreachable after 2 attempts") || !strings.Contains(msg, addr) {
		t.Errorf("error %q does not name the address and attempt count", msg)
	}
}

// TestBackoffScheduleAndJitter: doubling, capping, and the jitter
// scale applied to each delay.
func TestBackoffScheduleAndJitter(t *testing.T) {
	rc := RetryConfig{BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond,
		jitter: func() float64 { return 1.0 }}
	rc.fill()
	want := []time.Duration{10, 20, 40, 40, 40} // ms: doubles, then caps
	for n, w := range want {
		if got := rc.backoff(n); got != w*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", n, got, w*time.Millisecond)
		}
	}
	rc.jitter = func() float64 { return 0.5 }
	if got := rc.backoff(0); got != 5*time.Millisecond {
		t.Errorf("jittered backoff(0) = %v, want 5ms", got)
	}
	// A huge retry index must not overflow into a negative sleep.
	if got := rc.backoff(1_000_000); got != 20*time.Millisecond { // MaxDelay * 0.5
		t.Errorf("overflow-guarded backoff = %v, want 20ms", got)
	}
}

// TestReconnReplaysIdempotentOps: killing the connection under a
// ReconnClient mid-conversation redials, re-handshakes, and replays a
// PUBLISH — papirun -serve surviving a papid connection blip.
func TestReconnReplaysIdempotentOps(t *testing.T) {
	_, addr := startServer(t, Config{TickInterval: time.Hour})
	rc, err := DialReconn(addr, RetryConfig{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if rc.Hello().Protocol != wire.ProtocolVersion {
		t.Fatalf("handshake protocol %d", rc.Hello().Protocol)
	}

	created, err := rc.Do(wire.Request{Op: wire.OpCreate, Workload: "none"})
	if err != nil {
		t.Fatal(err)
	}
	id := created.Session

	rc.cl.nc.Close() // sever the connection behind the client's back
	if _, err := rc.Do(wire.Request{Op: wire.OpPublish, Session: id,
		Events: []string{"PAPI_TOT_CYC"}, Values: []int64{7}}); err != nil {
		t.Fatalf("PUBLISH did not survive the reconnect: %v", err)
	}
	if rc.Reconnects != 1 {
		t.Errorf("Reconnects = %d, want 1", rc.Reconnects)
	}
	// The replayed PUBLISH really landed server-side.
	read, err := rc.Do(wire.Request{Op: wire.OpRead, Session: id})
	if err != nil {
		t.Fatal(err)
	}
	if len(read.Values) != 1 || read.Values[0] != 7 {
		t.Errorf("READ after replayed PUBLISH: %v", read.Values)
	}

	// Non-idempotent ops are not replayed: the failure surfaces with
	// the reconnect noted, and the caller decides.
	rc.cl.nc.Close()
	_, err = rc.Do(wire.Request{Op: wire.OpCreate, Workload: "none"})
	if err == nil {
		t.Fatal("CREATE_SESSION was silently replayed across a reconnect")
	}
	if !strings.Contains(err.Error(), "not replayable") {
		t.Errorf("error %q does not explain the no-replay policy", err)
	}
	if rc.Reconnects != 2 {
		t.Errorf("Reconnects = %d, want 2 (reconnect still happens)", rc.Reconnects)
	}
	// The client is healthy again after the non-replayed failure.
	if _, err := rc.Do(wire.Request{Op: wire.OpStats}); err != nil {
		t.Errorf("STATS after non-replayable failure: %v", err)
	}
}
