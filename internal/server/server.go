// Package server implements papid, a concurrent counter-collection
// service: the natural next step after perfometer's one-process,
// one-viewer stream (§3–§4 of the paper) is a long-running daemon that
// many tools share. Clients speak a JSON-lines protocol (internal/wire)
// over TCP; each session owns an EventSet on a private simulated
// machine of any supported architecture.
//
// The scaling machinery, in one place:
//
//   - a sharded session registry — sessions hash to one of N
//     mutex-guarded shards, so session lookup never serializes on a
//     single lock;
//   - an LRU allocation cache memoizing internal/alloc matching results
//     keyed by (architecture, sorted native-event subset), so repeated
//     identical EventSets skip the bipartite-matching solve;
//   - coalesced periodic reads — one tick goroutine snapshots each
//     running session's counters once and fans the frame out to all of
//     the session's subscribers, instead of every subscriber polling;
//   - bounded per-subscriber send queues with a drop-oldest policy, so
//     one slow consumer can neither block the tick loop nor grow memory
//     without bound;
//   - an embedded time-series store (internal/tsdb) recording every
//     tick's snapshot, so late subscribers and offline tools can QUERY
//     downsampled history instead of getting nothing;
//   - context-based graceful shutdown that stops accepting, folds final
//     counts into every running session, and drains all connections.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tsdb"
	"repro/internal/wire"
	"repro/papi"
	"repro/workload"
)

var errSessionClosed = errors.New("session closed")

// Config parameterizes a Server. The zero value selects sensible
// defaults throughout.
type Config struct {
	// DefaultPlatform is used by CREATE_SESSION requests that do not
	// name one (default linux-x86).
	DefaultPlatform string
	// Shards is the session-registry shard count (default 16).
	Shards int
	// CacheSize bounds the allocation cache (default 256 entries).
	CacheSize int
	// TickInterval is the coalesced snapshot/advance period
	// (default 50ms).
	TickInterval time.Duration
	// QueueDepth bounds each subscriber's send queue; when full the
	// oldest queued snapshot is dropped (default 32).
	QueueDepth int
	// TSDBMaxBytes bounds the embedded history store's memory
	// (default 8 MiB); negative disables history entirely.
	TSDBMaxBytes int64
	// TSDBRetention expires history older than this (default 15m);
	// negative keeps history until the byte budget evicts it.
	TSDBRetention time.Duration
	// TSDBRollups lists the pre-computed downsampling widths
	// (default 10s and 60s).
	TSDBRollups []time.Duration
	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)

	// now is the tick clock in µs, injectable by tests for
	// deterministic history timestamps.
	now func() int64
}

func (c *Config) fill() {
	if c.DefaultPlatform == "" {
		c.DefaultPlatform = papi.PlatformLinuxX86
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.TickInterval <= 0 {
		c.TickInterval = 50 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.TSDBMaxBytes == 0 {
		c.TSDBMaxBytes = 8 << 20
	}
	if c.TSDBRetention == 0 {
		c.TSDBRetention = 15 * time.Minute
	}
	if c.now == nil {
		c.now = func() int64 { return time.Now().UnixMicro() }
	}
}

// Stats is a point-in-time view of the server's counters.
type Stats struct {
	Sessions         int
	Connections      int
	CacheHits        uint64
	CacheMisses      uint64
	SnapshotsSent    uint64
	SnapshotsDropped uint64
	Ticks            uint64
	TSDB             tsdb.Stats // zero when history is disabled
}

// CacheHitRate returns hits/(hits+misses), or 0 before any lookup.
func (s Stats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Server is one papid instance.
type Server struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc
	ln     net.Listener
	wg     sync.WaitGroup

	reg    *registry
	cache  *allocCache
	hist   *tsdb.Store // nil when history is disabled
	nextID atomic.Uint64

	connsMu sync.Mutex
	conns   map[*conn]struct{}

	ticks       atomic.Uint64
	snapSent    atomic.Uint64
	snapDropped atomic.Uint64
}

// New builds a Server; call Listen to start serving.
func New(cfg Config) *Server {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		ctx:    ctx,
		cancel: cancel,
		reg:    newRegistry(cfg.Shards),
		cache:  newAllocCache(cfg.CacheSize),
		conns:  make(map[*conn]struct{}),
	}
	if cfg.TSDBMaxBytes > 0 {
		s.hist = tsdb.New(tsdb.Config{
			MaxBytes: cfg.TSDBMaxBytes,
			MaxAge:   cfg.TSDBRetention,
			Rollups:  cfg.TSDBRollups,
		})
	}
	return s
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts the accept and
// tick loops. It returns the bound address immediately.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.wg.Add(2)
	go s.acceptLoop()
	go s.tickLoop()
	s.logf("papid: listening on %s", ln.Addr())
	return ln.Addr(), nil
}

// Addr returns the bound address, or nil before Listen.
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Stats returns current counters.
func (s *Server) Stats() Stats {
	hits, misses := s.cache.counters()
	s.connsMu.Lock()
	nconns := len(s.conns)
	s.connsMu.Unlock()
	st := Stats{
		Sessions:         s.reg.count(),
		Connections:      nconns,
		CacheHits:        hits,
		CacheMisses:      misses,
		SnapshotsSent:    s.snapSent.Load(),
		SnapshotsDropped: s.snapDropped.Load(),
		Ticks:            s.ticks.Load(),
	}
	if s.hist != nil {
		st.TSDB = s.hist.Stats()
	}
	return st
}

// Shutdown gracefully stops the server: no new connections, every
// running session's final counts folded, every connection closed, all
// goroutines joined. ctx bounds the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.cancel()
	if s.ln != nil {
		s.ln.Close()
	}
	// Drain sessions first so no EventSet is abandoned mid-count.
	s.reg.forEach(func(sess *session) { sess.close() })
	// Closing the sockets unblocks every reader and subscriber loop.
	s.connsMu.Lock()
	for c := range s.conns {
		c.nc.Close()
	}
	s.connsMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.logf("papid: drained")
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.ctx.Done():
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.wg.Add(1)
		go s.handle(nc)
	}
}

// tickLoop drives the coalesced reads: every TickInterval each running
// session advances its workload one chunk, its counters are read once,
// and the single snapshot fans out to all of its subscribers.
func (s *Server) tickLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.TickInterval)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			s.tick()
		}
	}
}

func (s *Server) tick() {
	s.ticks.Add(1)
	now := s.cfg.now()
	s.reg.forEach(func(sess *session) {
		resp, subs, ok := sess.snapshot()
		if !ok {
			return
		}
		if s.hist != nil {
			s.hist.AppendRow(resp.Session, now, resp.Events, resp.Values)
		}
		s.fanout(resp, subs)
	})
	if s.hist != nil {
		// Age out history of idle and closed sessions too — appends
		// only sweep the series they touch.
		s.hist.Sweep(now)
	}
}

func (s *Server) fanout(resp wire.Response, subs []*subscriber) {
	for _, sub := range subs {
		s.snapSent.Add(1)
		if sub.push(resp) {
			s.snapDropped.Add(1)
		}
	}
}

// subscriber is one SUBSCRIBE registration: a bounded queue drained by
// a dedicated goroutine writing onto the owning connection. When the
// queue is full the oldest snapshot is dropped — a slow viewer sees a
// gappy stream, never a stalled server.
type subscriber struct {
	c    *conn
	ch   chan wire.Response
	done chan struct{}
}

// push enqueues resp, dropping the oldest queued frame if the queue is
// full. It reports whether anything was dropped.
func (sub *subscriber) push(resp wire.Response) (dropped bool) {
	select {
	case sub.ch <- resp:
		return false
	default:
	}
	// Full: evict the oldest, then retry once. The consumer may have
	// drained concurrently, in which case the eviction select falls
	// through and the send succeeds — either way one frame was lost
	// from this subscriber's point of view only if the final send
	// also fails.
	select {
	case <-sub.ch:
		dropped = true
	default:
	}
	select {
	case sub.ch <- resp:
	default:
		dropped = true
	}
	return dropped
}

func (sub *subscriber) loop() {
	defer sub.c.srv.wg.Done()
	for {
		select {
		case <-sub.done:
			return
		case resp := <-sub.ch:
			if err := sub.c.enc.Encode(&resp); err != nil {
				return
			}
		}
	}
}

// conn is one client connection: a reader loop dispatching requests
// plus any subscriber goroutines it registered. The wire.Encoder's own
// lock serializes response and snapshot frames onto the socket.
type conn struct {
	srv *Server
	nc  net.Conn
	enc *wire.Encoder

	mu   sync.Mutex
	subs []subRef
}

type subRef struct {
	sess *session
	sub  *subscriber
}

func (s *Server) handle(nc net.Conn) {
	defer s.wg.Done()
	c := &conn{srv: s, nc: nc, enc: wire.NewEncoder(nc)}
	s.connsMu.Lock()
	s.conns[c] = struct{}{}
	s.connsMu.Unlock()
	defer c.teardown()

	dec := wire.NewDecoder(nc)
	for {
		var req wire.Request
		if err := dec.Decode(&req); err != nil {
			if wire.IsMalformed(err) {
				// One bad line must not kill the connection: reply
				// with an error frame and resume at the next newline.
				errFrame := wire.Response{Op: wire.OpError, Error: err.Error()}
				if c.enc.Encode(&errFrame) != nil {
					return
				}
				continue
			}
			return // EOF or closed socket
		}
		resp := s.dispatch(c, &req)
		if err := c.enc.Encode(&resp); err != nil {
			return
		}
		if req.Op == wire.OpBye {
			return
		}
	}
}

// teardown unregisters the connection and its subscribers and closes
// the socket.
func (c *conn) teardown() {
	c.srv.connsMu.Lock()
	delete(c.srv.conns, c)
	c.srv.connsMu.Unlock()
	c.nc.Close()
	c.mu.Lock()
	subs := c.subs
	c.subs = nil
	c.mu.Unlock()
	for _, ref := range subs {
		ref.sess.removeSubscriber(ref.sub)
		close(ref.sub.done)
	}
}

func (s *Server) dispatch(c *conn, req *wire.Request) wire.Response {
	switch req.Op {
	case wire.OpHello:
		return wire.Response{Op: req.Op, OK: true,
			Protocol: wire.ProtocolVersion, Platform: s.cfg.DefaultPlatform}
	case wire.OpCreate:
		return s.createSession(req)
	case wire.OpAddEvents:
		return s.withSession(req, func(sess *session) wire.Response {
			names, err := sess.addEvents(s, req.Events)
			if err != nil {
				return errResp(req, err)
			}
			return wire.Response{Op: req.Op, OK: true, Session: sess.id, Events: names}
		})
	case wire.OpStart:
		return s.withSession(req, func(sess *session) wire.Response {
			if err := sess.start(); err != nil {
				return errResp(req, err)
			}
			return wire.Response{Op: req.Op, OK: true, Session: sess.id}
		})
	case wire.OpRead:
		return s.withSession(req, func(sess *session) wire.Response {
			resp, err := sess.read()
			if err != nil {
				return errResp(req, err)
			}
			resp.Op = req.Op
			return resp
		})
	case wire.OpSubscribe:
		return s.withSession(req, func(sess *session) wire.Response {
			sub := &subscriber{c: c, ch: make(chan wire.Response, s.cfg.QueueDepth), done: make(chan struct{})}
			names, err := sess.addSubscriber(sub)
			if err != nil {
				return errResp(req, err)
			}
			c.mu.Lock()
			c.subs = append(c.subs, subRef{sess: sess, sub: sub})
			c.mu.Unlock()
			s.wg.Add(1)
			go sub.loop()
			return wire.Response{Op: req.Op, OK: true, Session: sess.id, Events: names}
		})
	case wire.OpPublish:
		return s.withSession(req, func(sess *session) wire.Response {
			snap, subs, err := sess.publish(req.Events, req.Values)
			if err != nil {
				return errResp(req, err)
			}
			if s.hist != nil {
				s.hist.AppendRow(sess.id, s.cfg.now(), snap.Events, snap.Values)
			}
			s.fanout(snap, subs)
			return wire.Response{Op: req.Op, OK: true, Session: sess.id, Seq: snap.Seq}
		})
	case wire.OpStop:
		return s.withSession(req, func(sess *session) wire.Response {
			names, final, err := sess.stop()
			if err != nil {
				return errResp(req, err)
			}
			return wire.Response{Op: req.Op, OK: true, Session: sess.id,
				Events: names, Values: final}
		})
	case wire.OpCloseSession:
		sess, ok := s.reg.remove(req.Session)
		if !ok {
			return errResp(req, fmt.Errorf("no session %d", req.Session))
		}
		final := sess.close()
		return wire.Response{Op: req.Op, OK: true, Session: req.Session, Values: final}
	case wire.OpQuery:
		if s.hist == nil {
			return errResp(req, errors.New("history disabled (papid -tsdb-mem 0)"))
		}
		if req.To <= req.From {
			return errResp(req, fmt.Errorf("bad range [%d, %d)", req.From, req.To))
		}
		// No live-session check: history legitimately outlives its
		// session, which is half the point of keeping it.
		series := s.hist.Query(req.Session, tsdb.Query{
			Events: req.Events, From: req.From, To: req.To, Step: req.Step,
		})
		return wire.Response{Op: req.Op, OK: true, Session: req.Session, Series: series}
	case wire.OpStats:
		st := s.Stats()
		return wire.Response{Op: req.Op, OK: true, Stats: map[string]uint64{
			"sessions":          uint64(st.Sessions),
			"connections":       uint64(st.Connections),
			"cache_hits":        st.CacheHits,
			"cache_misses":      st.CacheMisses,
			"snapshots_sent":    st.SnapshotsSent,
			"snapshots_dropped": st.SnapshotsDropped,
			"ticks":             st.Ticks,
			"tsdb_bytes":        uint64(st.TSDB.Bytes),
			"tsdb_series":       uint64(st.TSDB.Series),
			"tsdb_samples":      st.TSDB.Samples,
			"tsdb_evictions":    st.TSDB.Evictions,
		}}
	case wire.OpBye:
		return wire.Response{Op: req.Op, OK: true}
	}
	return errResp(req, fmt.Errorf("unknown op %q", req.Op))
}

func (s *Server) withSession(req *wire.Request, f func(*session) wire.Response) wire.Response {
	sess, ok := s.reg.get(req.Session)
	if !ok {
		return errResp(req, fmt.Errorf("no session %d", req.Session))
	}
	return f(sess)
}

func errResp(req *wire.Request, err error) wire.Response {
	return wire.Response{Op: req.Op, OK: false, Session: req.Session, Error: err.Error()}
}

// createSession builds a session: a private System on the requested
// platform, its events resolved and admission-checked through the
// allocation cache, and the workload the tick loop will advance.
func (s *Server) createSession(req *wire.Request) wire.Response {
	platform := req.Platform
	if platform == "" {
		platform = s.cfg.DefaultPlatform
	}
	sys, err := papi.Init(papi.Options{Platform: platform})
	if err != nil {
		return errResp(req, err)
	}
	th := sys.Main()
	sess := &session{
		id:       s.nextID.Add(1),
		platform: platform,
		sys:      sys,
		th:       th,
		es:       th.NewEventSet(),
		subs:     make(map[*subscriber]struct{}),
	}
	names, err := sess.addEvents(s, req.Events)
	if err != nil {
		return errResp(req, err)
	}
	n := req.N
	if n <= 0 {
		n = 24
	}
	switch req.Workload {
	case "none":
		// Publish-only session; papid never drives it.
	case "":
		sess.prog, _ = workload.ByName("dot", n)
	default:
		prog, err := workload.ByName(req.Workload, n)
		if err != nil {
			return errResp(req, err)
		}
		sess.prog = prog
	}
	s.reg.put(sess)
	s.logf("papid: session %d created (%s, %d events)", sess.id, platform, len(names))
	return wire.Response{Op: req.Op, OK: true, Session: sess.id,
		Platform: platform, Events: names}
}
