// Package server implements papid, a concurrent counter-collection
// service: the natural next step after perfometer's one-process,
// one-viewer stream (§3–§4 of the paper) is a long-running daemon that
// many tools share. Clients speak a JSON-lines protocol (internal/wire)
// over TCP; each session owns an EventSet on a private simulated
// machine of any supported architecture.
//
// The scaling machinery, in one place:
//
//   - a sharded session registry — sessions hash to one of N
//     mutex-guarded shards, so session lookup never serializes on a
//     single lock;
//   - an LRU allocation cache memoizing internal/alloc matching results
//     keyed by (architecture, sorted native-event subset), so repeated
//     identical EventSets skip the bipartite-matching solve;
//   - coalesced periodic reads — one tick goroutine snapshots each
//     running session's counters once and fans the frame out to all of
//     the session's subscribers, instead of every subscriber polling;
//   - encode-once fan-out — each tick's snapshot is serialized to
//     bytes exactly once per codec in use and the shared immutable
//     []byte flows through every subscriber and write queue, so frame
//     serialization is a per-tick cost instead of a per-subscriber
//     cost (the paper's 1–2%-overhead lesson applied to the serving
//     path);
//   - an opt-in binary wire codec (protocol v3, internal/wire) cutting
//     frame bytes and encode/decode allocations for clients that
//     negotiate it, with JSON lines as the transparent fallback;
//   - bounded per-subscriber send queues with a drop-oldest policy, so
//     one slow consumer can neither block the tick loop nor grow memory
//     without bound;
//   - an embedded time-series store (internal/tsdb) recording every
//     tick's snapshot, so late subscribers and offline tools can QUERY
//     downsampled history instead of getting nothing;
//   - a hardened connection lifecycle — per-connection read-idle and
//     write deadlines, one bounded outbound write queue per connection
//     drained by a dedicated writer goroutine (snapshots dropped
//     oldest-first under pressure, the connection evicted when even
//     reply frames cannot make progress), with evictions, deadline
//     trips and protocol resyncs all counted in STATS;
//   - context-based graceful shutdown that stops accepting, folds final
//     counts into every running session, and drains all connections.
package server

import (
	"bufio"
	"cmp"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"path"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/derive"
	"repro/internal/telemetry"
	"repro/internal/telemetry/tracing"
	"repro/internal/tsdb"
	"repro/internal/tsdb/wal"
	"repro/internal/wire"
	"repro/papi"
	"repro/workload"
)

var errSessionClosed = errors.New("session closed")

// Config parameterizes a Server. The zero value selects sensible
// defaults throughout.
type Config struct {
	// DefaultPlatform is used by CREATE_SESSION requests that do not
	// name one (default linux-x86).
	DefaultPlatform string
	// Shards is the session-registry shard count (default 16).
	Shards int
	// CacheSize bounds the allocation cache (default 256 entries).
	CacheSize int
	// TickInterval is the coalesced snapshot/advance period
	// (default 50ms).
	TickInterval time.Duration
	// QueueDepth bounds each subscriber's send queue; when full the
	// oldest queued snapshot is dropped (default 32).
	QueueDepth int
	// TickWorkers is the parallel tick sweep width (papid
	// -tick-workers): registry shards are partitioned across this many
	// workers each tick, every worker running the full
	// snapshot→history→encode→fan-out unit for its shards' sessions.
	// Default min(GOMAXPROCS, Shards); 1 runs the exact serial
	// pipeline. See tick.go and DESIGN.md S31.
	TickWorkers int
	// WALQueueRows bounds the async WAL handoff queue on a durable
	// server (default 256): tick rows queue here and a dedicated
	// appender goroutine journals them in per-tick batches, off the
	// tick's critical path. A full queue stalls the tick (counted in
	// tick_stalls) rather than dropping rows.
	WALQueueRows int
	// KeyframeEvery is the delta-subscription keyframe cadence: every
	// Nth fan-out of a delta view is a full SNAPSHOT keyframe even
	// without drops, bounding both delta growth within an epoch and how
	// long a desynced subscriber waits to re-anchor (default 10).
	KeyframeEvery int
	// ReadIdleTimeout evicts a connection that sends no request for
	// this long and holds no subscription — a half-dead client cannot
	// pin a goroutine forever (default 2m; negative disables).
	// Connections with live subscriptions are exempt: snapshot
	// fan-out is their traffic.
	ReadIdleTimeout time.Duration
	// WriteTimeout bounds each outbound frame write; a trip means the
	// peer stopped reading and the connection is evicted
	// (default 10s; negative disables).
	WriteTimeout time.Duration
	// WriteQueueDepth bounds each connection's outbound frame queue
	// (default 64). Snapshot frames are dropped oldest-first when the
	// queue is full; a queue jammed with undroppable reply frames
	// evicts the connection instead of blocking the server.
	WriteQueueDepth int
	// TSDBMaxBytes bounds the embedded history store's memory
	// (default 8 MiB); negative disables history entirely.
	TSDBMaxBytes int64
	// TSDBRetention expires history older than this (default 15m);
	// negative keeps history until the byte budget evicts it.
	TSDBRetention time.Duration
	// TSDBRollups lists the pre-computed downsampling widths
	// (default 10s and 60s).
	TSDBRollups []time.Duration
	// DataDir, when set, makes history durable: every tick row is
	// journaled to a write-ahead log under this directory, sealed
	// blocks are persisted into memory-mapped segment files, and a
	// restart replays them (see internal/tsdb/wal). Empty keeps
	// history RAM-only.
	DataDir string
	// Fsync selects the WAL fsync policy: "always", "interval"
	// (default) or "off". Only meaningful with DataDir.
	Fsync string
	// FsyncInterval is the period of the "interval" policy
	// (default 100ms).
	FsyncInterval time.Duration
	// WALSegmentBytes is the WAL/segment rotation size (default 4 MiB).
	WALSegmentBytes int64
	// WALDiskBytes bounds raw segment bytes before compaction folds old
	// segments into rollup resolution (default 64 MiB; negative
	// disables compaction by budget).
	WALDiskBytes int64
	// WALRetainAge deletes segments wholly older than this
	// (default 0 = keep until compacted/evicted by budget).
	WALRetainAge time.Duration
	// WALCompactAfter compacts raw segments older than this into
	// rollup-resolution segments (default 0 = budget-driven only).
	WALCompactAfter time.Duration
	// SlowOp is the request-latency threshold above which a warn line
	// is logged with the op, session and duration (default 250ms;
	// negative disables).
	SlowOp time.Duration
	// TraceSample enables the pipeline flight recorder (papid
	// -trace-sample): 1 in TraceSample ticks/requests/WAL batches is
	// head-sampled into the /tracez ring with detailed per-session
	// stage spans. 0 disables tracing entirely — unlike the other
	// knobs, the zero value is off, so embedders and tests get exactly
	// the untraced pipeline unless they opt in. See DESIGN.md S32.
	TraceSample int
	// TraceSlow tail-retains any trace at least this slow regardless of
	// sampling (default: SlowOp; negative disables latency-based
	// retention — errors still retain). Only meaningful with
	// TraceSample > 0.
	TraceSlow time.Duration
	// TraceRing is the number of retained traces the flight recorder
	// keeps (default 64).
	TraceRing int
	// Groups names performance groups from the internal/derive library
	// (papid -groups). Each tick, every session whose event set covers a
	// named group's requirements gets that group evaluated and the
	// derived values fanned out to its v3+ subscribers as DERIVED
	// frames. Sessions may register further groups via SUBSCRIBE.
	// Unknown names are a startup error, surfaced by Listen.
	Groups []string
	// DeriveRules are threshold alert specs ("metric<bound[:N]", see
	// derive.ParseRule) armed on every evaluated session: N consecutive
	// breaches fire one structured warning and increment
	// papid_derive_alerts_total. Bad specs are a startup error.
	DeriveRules []string
	// Logf, when set, receives one line per lifecycle event. Lines are
	// rendered from the structured log stream, so printf-style
	// consumers see the same events as slog consumers.
	Logf func(format string, args ...any)
	// Logger, when set, receives the structured log stream directly
	// (per-connection IDs, ops, durations) and takes precedence over
	// Logf. Nil with a nil Logf silences logging.
	Logger *slog.Logger

	// now is the tick clock in µs, injectable by tests for
	// deterministic history timestamps.
	now func() int64
}

func (c *Config) fill() {
	if c.DefaultPlatform == "" {
		c.DefaultPlatform = papi.PlatformLinuxX86
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.TickInterval <= 0 {
		c.TickInterval = 50 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.TickWorkers == 0 {
		c.TickWorkers = min(runtime.GOMAXPROCS(0), c.Shards)
	}
	if c.TickWorkers < 1 {
		c.TickWorkers = 1
	}
	if c.WALQueueRows <= 0 {
		c.WALQueueRows = 256
	}
	if c.KeyframeEvery <= 0 {
		c.KeyframeEvery = 10
	}
	if c.ReadIdleTimeout == 0 {
		c.ReadIdleTimeout = 2 * time.Minute
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.WriteQueueDepth <= 0 {
		c.WriteQueueDepth = 64
	}
	if c.TSDBMaxBytes == 0 {
		c.TSDBMaxBytes = 8 << 20
	}
	if c.TSDBRetention == 0 {
		c.TSDBRetention = 15 * time.Minute
	}
	if c.SlowOp == 0 {
		c.SlowOp = 250 * time.Millisecond
	}
	if c.TraceSample > 0 {
		if c.TraceSlow == 0 {
			c.TraceSlow = c.SlowOp // may itself be negative = disabled
		}
		if c.TraceRing <= 0 {
			c.TraceRing = 64
		}
	}
	if c.now == nil {
		c.now = func() int64 { return time.Now().UnixMicro() }
	}
}

// Stats is a point-in-time view of the server's counters.
type Stats struct {
	Sessions         int
	Connections      int
	CacheHits        uint64
	CacheMisses      uint64
	SnapshotsSent    uint64
	SnapshotsDropped uint64
	Ticks            uint64
	// Evictions counts connections the server cut loose (read-idle or
	// write-deadline trips, jammed reply queues).
	Evictions uint64
	// DeadlineTrips counts read/write deadline expirations that led
	// to an eviction.
	DeadlineTrips uint64
	// Resyncs counts malformed frames answered with an ERROR frame
	// and skipped — per-line resynchronization events.
	Resyncs uint64
	// WriteDrops counts snapshot frames dropped from per-connection
	// write queues (socket-level backpressure, beyond the
	// per-subscriber SnapshotsDropped).
	WriteDrops uint64
	// DerivedSent/DerivedDropped count DERIVED fan-out frames — kept
	// apart from the snapshot counters, which count full SNAPSHOT
	// frames only (keyframes included; Keyframes tallies those again
	// separately). DeltasSent/DeltasDropped count DELTA frames, and
	// EncodeFailures counts fan-out frames that failed to serialize at
	// all (each also recorded in its kind's dropped counter, once per
	// subscriber on the failing codec).
	DerivedSent    uint64
	DerivedDropped uint64
	DeltasSent     uint64
	DeltasDropped  uint64
	Keyframes      uint64
	EncodeFailures uint64
	// FramesSentJSON/BytesSentJSON and their binary twins count
	// outbound frames and payload bytes per codec, so operators can
	// see which protocol their clients actually negotiated.
	FramesSentJSON   uint64
	FramesSentBinary uint64
	BytesSentJSON    uint64
	BytesSentBinary  uint64
	// TickStalls counts ticks that blocked handing a history row to
	// the async WAL appender because its queue was full (durable
	// servers only) — sustained growth means the disk cannot keep up
	// with the tick rate.
	TickStalls uint64
	TSDB       tsdb.Stats // zero when history is disabled
	// Durable reports whether a data directory is attached; WAL is its
	// durability layer's counters (zero otherwise).
	Durable bool
	WAL     wal.Stats
}

// CacheHitRate returns hits/(hits+misses), or 0 before any lookup.
func (s Stats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Server is one papid instance.
type Server struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc
	ln     net.Listener
	wg     sync.WaitGroup

	reg    *registry
	cache  *allocCache
	hist   *tsdb.Store // nil when history is disabled
	wal    *wal.Log    // nil unless DataDir is set (and hist != nil)
	walErr error       // deferred Open/Start failure, surfaced by Listen
	replay wal.ReplayStats
	nextID atomic.Uint64

	// derive is the derived-metric engine (never nil); defGroups are the
	// resolved Config.Groups defaults, deriveErr a deferred config
	// failure surfaced by Listen like walErr.
	derive    *derive.Engine
	defGroups []*derive.Group
	deriveErr error

	// m holds every registry-backed instrument; slog is the structured
	// log stream (never nil — a discard logger when unconfigured).
	m          *metrics
	slog       *slog.Logger
	nextConnID atomic.Uint64

	// trc is the pipeline flight recorder (nil unless
	// Config.TraceSample > 0); slowOps keeps the most recent SlowOp
	// breaches with their trace IDs for STATS and /statusz.
	trc     *tracing.Tracer
	slowOps slowRing

	connsMu sync.Mutex
	conns   map[*conn]struct{}

	// admin is the optional observability HTTP server (ServeAdmin); it
	// participates in the graceful drain.
	adminMu sync.Mutex
	admin   *http.Server

	// tickWork hands tick jobs to the pool of persistent sweep workers
	// (tick.go); unbuffered, so a worker either takes a job now or the
	// tick spawns an ephemeral helper instead.
	tickWork chan *tickJob

	// The async WAL handoff (tick.go): tick rows queue on histCh and
	// the histLoop appender journals them in batches. All nil/false on
	// non-durable servers and until Serve starts the appender; histOn
	// is the producers' switch, histStarted/histQuitOnce the shutdown
	// handshake.
	histCh       chan histRow
	histQuit     chan struct{}
	histDone     chan struct{}
	histQuitOnce sync.Once
	histOn       atomic.Bool
	histStarted  bool
}

// New builds a Server; call Listen to start serving.
func New(cfg Config) *Server {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	treg := telemetry.NewRegistry()
	s := &Server{
		cfg:    cfg,
		ctx:    ctx,
		cancel: cancel,
		reg:    newRegistry(cfg.Shards),
		cache:  newAllocCache(cfg.CacheSize),
		conns:  make(map[*conn]struct{}),
		m:      newMetrics(treg),
	}
	if cfg.TraceSample > 0 {
		slow := cfg.TraceSlow
		if slow < 0 {
			slow = 0 // tracing.Config treats 0 as "no latency retention"
		}
		s.trc = tracing.NewTracer(tracing.Config{
			Sample: cfg.TraceSample, Slow: slow, Ring: cfg.TraceRing})
	}
	switch {
	case cfg.Logger != nil:
		s.slog = cfg.Logger
	case cfg.Logf != nil:
		s.slog = telemetry.NewLogfLogger(cfg.Logf, slog.LevelDebug)
	default:
		s.slog = telemetry.Discard()
	}
	// The derived-metric engine is always live — SUBSCRIBE can register
	// groups on any session — but default groups and threshold rules
	// come from the config. A bad group name or rule spec is deferred to
	// Listen, like walErr: New stays infallible, startup fails loudly.
	dreg := derive.NewRegistry()
	var rules []derive.Rule
	for _, spec := range cfg.DeriveRules {
		r, err := derive.ParseRule(spec)
		if err != nil {
			s.deriveErr = err
			break
		}
		rules = append(rules, r)
	}
	s.derive = derive.NewEngine(dreg, rules, s.slog, treg)
	if s.deriveErr == nil {
		if s.defGroups, s.deriveErr = dreg.Resolve(cfg.Groups); s.deriveErr == nil && len(cfg.Groups) > 0 {
			s.slog.Info("papid: derived groups armed",
				"groups", cfg.Groups, "rules", len(rules))
		}
	}
	if cfg.TSDBMaxBytes > 0 {
		histCfg := tsdb.Config{
			MaxBytes: cfg.TSDBMaxBytes,
			MaxAge:   cfg.TSDBRetention,
			Rollups:  cfg.TSDBRollups,
			Registry: treg,
		}
		if cfg.DataDir != "" {
			// Durable history: the WAL opens first (it is the store's
			// Storage hook), the store builds against it, then Start
			// replays persisted state before anything can append.
			log, err := wal.Open(cfg.DataDir, wal.Options{
				Fsync:         cfg.Fsync,
				FsyncInterval: cfg.FsyncInterval,
				SegmentBytes:  cfg.WALSegmentBytes,
				DiskBytes:     cfg.WALDiskBytes,
				RetainAge:     cfg.WALRetainAge,
				CompactAfter:  cfg.WALCompactAfter,
				Registry:      treg,
				Logger:        s.slog,
				Now:           cfg.now,
			})
			if err != nil {
				s.walErr = err
			} else {
				histCfg.Storage = log
				s.hist = tsdb.New(histCfg)
				replay, err := log.Start(s.hist)
				if err != nil {
					s.walErr = err
				} else {
					s.wal = log
					s.replay = replay
					s.slog.Info("papid: durable history ready",
						"dir", cfg.DataDir, "clean_start", replay.CleanStart,
						"segments", replay.Segments, "blocks", replay.Blocks,
						"replayed_rows", replay.Rows, "torn_records", replay.TornRecords)
				}
			}
		}
		if s.hist == nil && s.walErr == nil {
			s.hist = tsdb.New(histCfg)
		}
	}
	s.tickWork = make(chan *tickJob)
	if s.wal != nil {
		s.histCh = make(chan histRow, cfg.WALQueueRows)
		s.histQuit = make(chan struct{})
		s.histDone = make(chan struct{})
	}
	s.registerServerFuncs()
	return s
}

// Replay reports what the durability layer reconstructed at startup
// (zero without a DataDir).
func (s *Server) Replay() wal.ReplayStats { return s.replay }

// Telemetry returns the server's metrics registry — what ServeAdmin
// exposes and embedders can scrape or extend.
func (s *Server) Telemetry() *telemetry.Registry { return s.m.reg }

// Listen binds addr (e.g. "127.0.0.1:0") and starts the accept and
// tick loops. It returns the bound address immediately.
func (s *Server) Listen(addr string) (net.Addr, error) {
	if s.walErr != nil {
		// A server that was asked for durability but could not get it
		// must not serve as if it had: fail loudly at startup.
		return nil, fmt.Errorf("durable history unavailable: %w", s.walErr)
	}
	if s.deriveErr != nil {
		// Same policy for derived metrics: a misspelled group or rule
		// must not silently serve without them.
		return nil, fmt.Errorf("derived-metric config invalid: %w", s.deriveErr)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return s.Serve(ln), nil
}

// Serve starts the accept and tick loops on a caller-provided
// listener and returns its address — the hook the fault-injection
// tests use to interpose internal/faultnet between papid and its
// peers. Listen is Serve on a fresh TCP listener.
func (s *Server) Serve(ln net.Listener) net.Addr {
	s.ln = ln
	// The WAL appender starts before the tick loop so the first tick
	// already sees histOn; it is deliberately not in s.wg — Shutdown
	// joins the producers first (wg.Wait), then tells it to drain and
	// exit (histQuit/histDone), then closes the WAL.
	if s.histCh != nil {
		s.histStarted = true
		s.histOn.Store(true)
		go s.histLoop()
	}
	for i := 1; i < s.cfg.TickWorkers; i++ {
		s.wg.Add(1)
		go s.tickWorker(i)
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.tickLoop()
	s.slog.Info("papid: listening", "addr", ln.Addr().String(),
		"tick_workers", s.cfg.TickWorkers)
	return ln.Addr()
}

// ListenAdmin binds addr and serves the observability endpoints —
// Prometheus /metrics, JSON /statusz, and /debug/pprof — returning the
// bound address. The admin server participates in the graceful drain:
// Shutdown closes it and waits for its goroutine.
func (s *Server) ListenAdmin(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return s.ServeAdmin(ln), nil
}

// ServeAdmin starts the observability HTTP server on a caller-provided
// listener (the testing hook, mirroring Serve). When the flight
// recorder is enabled, /tracez (the retained-trace list) and
// /debug/trace (single-trace export, native or Chrome trace-event
// JSON) join the mux.
func (s *Server) ServeAdmin(ln net.Listener) net.Addr {
	var extra map[string]http.Handler
	if s.trc != nil {
		extra = map[string]http.Handler{
			"/tracez":      tracing.TracezHandler(s.trc),
			"/debug/trace": tracing.TraceHandler(s.trc),
		}
	}
	hs := &http.Server{Handler: telemetry.HandlerWith(s.m.reg, s.statusz, extra),
		ReadHeaderTimeout: 5 * time.Second}
	s.adminMu.Lock()
	s.admin = hs
	s.adminMu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		hs.Serve(ln) // returns on Close during the drain
	}()
	s.slog.Info("papid: admin listening", "addr", ln.Addr().String())
	return ln.Addr()
}

// statusz builds the /statusz document: build identity (what binary is
// actually deployed, since when, at what width), the classic Stats
// view, every latency-histogram summary (nanoseconds, keyed like the
// wire STATS hists — "op/READ/json", "tick", "tsdb/append"), flight-
// recorder counters when tracing is on, and the recent slow-op
// samples with their trace IDs.
func (s *Server) statusz() any {
	doc := struct {
		Build       telemetry.BuildInfo          `json:"build"`
		TickWorkers int                          `json:"tick_workers"`
		Stats       Stats                        `json:"stats"`
		Hists       map[string]telemetry.Summary `json:"hists"`
		Trace       *tracing.Stats               `json:"trace,omitempty"`
		SlowOps     []wire.SlowSample            `json:"slow_ops,omitempty"`
	}{
		Build:       telemetry.ReadBuild(),
		TickWorkers: s.cfg.TickWorkers,
		Stats:       s.Stats(),
		Hists:       s.m.reg.Summaries(),
		SlowOps:     s.slowOps.samples(),
	}
	if s.trc != nil {
		ts := s.trc.TracerStats()
		doc.Trace = &ts
	}
	return doc
}

// Addr returns the bound address, or nil before Listen.
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Stats returns current counters, read back from the telemetry
// registry's instruments — one source of truth shared with /metrics.
func (s *Server) Stats() Stats {
	hits, misses := s.cache.counters()
	s.connsMu.Lock()
	nconns := len(s.conns)
	s.connsMu.Unlock()
	st := Stats{
		Sessions:         s.reg.count(),
		Connections:      nconns,
		CacheHits:        hits,
		CacheMisses:      misses,
		SnapshotsSent:    s.m.snapSent.Value(),
		SnapshotsDropped: s.m.snapDropped.Value(),
		Ticks:            s.m.ticks.Value(),
		Evictions:        s.m.evictions.Value(),
		DeadlineTrips:    s.m.deadlineTrips.Value(),
		Resyncs:          s.m.resyncs.Value(),
		WriteDrops:       s.m.writeDrops.Value(),
		TickStalls:       s.m.tickStalls.Value(),
		DerivedSent:      s.m.derivedSent.Value(),
		DerivedDropped:   s.m.derivedDropped.Value(),
		DeltasSent:       s.m.deltaSent.Value(),
		DeltasDropped:    s.m.deltaDropped.Value(),
		Keyframes:        s.m.keyframes.Value(),
		EncodeFailures:   s.m.encodeFailures.Value(),
		FramesSentJSON:   s.m.framesSent[wire.CodecJSON].Value(),
		FramesSentBinary: s.m.framesSent[wire.CodecBinary].Value(),
		BytesSentJSON:    s.m.bytesSent[wire.CodecJSON].Value(),
		BytesSentBinary:  s.m.bytesSent[wire.CodecBinary].Value(),
	}
	if s.hist != nil {
		st.TSDB = s.hist.Stats()
	}
	if s.wal != nil {
		st.Durable = true
		st.WAL = s.wal.Stats()
	}
	return st
}

// Shutdown gracefully stops the server: no new connections, every
// running session's final counts folded, every connection closed, the
// admin HTTP listener torn down, all goroutines joined. ctx bounds the
// drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.cancel()
	if s.ln != nil {
		s.ln.Close()
	}
	// The admin HTTP server joins the drain: Close (not Shutdown) so a
	// scraper mid-request cannot hold the drain past its deadline.
	s.adminMu.Lock()
	admin := s.admin
	s.adminMu.Unlock()
	if admin != nil {
		admin.Close()
	}
	// Drain sessions first so no EventSet is abandoned mid-count.
	s.reg.forEach(func(sess *session) { sess.close() })
	// Closing queues and sockets unblocks every reader, writer and
	// subscriber loop.
	s.connsMu.Lock()
	for c := range s.conns {
		c.q.close()
		c.nc.Close()
	}
	s.connsMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
		s.slog.Info("papid: drained")
	case <-ctx.Done():
		err = ctx.Err()
	}
	// The WAL appender quits after every producer has: the tick loop
	// and workers joined above, so closing histQuit lets histLoop
	// journal what is still queued and exit before the WAL closes
	// beneath it. Bounded by ctx like the drain itself.
	if s.histStarted {
		s.histQuitOnce.Do(func() { close(s.histQuit) })
		select {
		case <-s.histDone:
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
		}
	}
	// The durability layer closes last, after the tick loop has joined
	// (clean drain) so no append races the final flush: every active
	// block is sealed into the current segment, the segment finalized,
	// the WAL deleted and the clean-shutdown marker written — the next
	// start takes the sealed-marker fast path and replays nothing. On a
	// drain timeout the close still runs: a best-effort seal beats
	// leaving the WAL as the only copy.
	if s.wal != nil {
		if cerr := s.wal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.ctx.Done():
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.wg.Add(1)
		go s.handle(nc)
	}
}

// tickLoop drives the coalesced reads: every TickInterval each running
// session advances its workload one chunk, its counters are read once,
// and the single snapshot fans out to all of its subscribers.
func (s *Server) tickLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.TickInterval)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			s.tick()
		}
	}
}

func (s *Server) tick() {
	t0 := time.Now()
	defer func() { s.m.tickDur.Observe(telemetry.Since(t0)) }()
	s.m.ticks.Inc()
	// Every tick is a traced unit while the recorder is on: coarse
	// shard spans always, per-session stage spans when head-sampled,
	// tail retention when the tick was slow or errored (WAL stall,
	// derive alert). t is nil with tracing off — every span call
	// no-ops.
	t := s.trc.Start("tick", "tick")
	now := s.cfg.now()
	if s.cfg.TickWorkers > 1 {
		s.tickParallel(now, t)
	} else {
		sp := t.StartSpan(tracing.NoSpan, "sweep")
		n := 0
		s.reg.forEach(func(sess *session) { n++; s.tickSession(sess, now, t, sp) })
		if t != nil {
			t.AnnotateInt(sp, "sessions", int64(n))
			t.EndSpan(sp)
		}
	}
	if s.hist != nil {
		// Age out history of idle and closed sessions too — appends
		// only sweep the series they touch.
		sw := t.StartSpan(tracing.NoSpan, "tsdb.sweep")
		evicted := s.hist.Sweep(now)
		if t != nil {
			t.AnnotateInt(sw, "evicted", evicted)
			t.EndSpan(sw)
		}
	}
	s.trc.Finish(t)
}

// appendHistory records one tick row, through the WAL when history is
// durable (write-ahead: the row hits the journal before the store) and
// directly into the store otherwise.
func (s *Server) appendHistory(session uint64, ts int64, events []string, vals []int64) {
	switch {
	case s.wal != nil:
		s.wal.AppendBatch(session, ts, events, vals)
	case s.hist != nil:
		s.hist.AppendBatch(session, ts, events, vals)
	}
}

// appendFrameFn is wire.AppendFrame behind a seam so tests can force
// an encode failure and pin the negative-cache behavior.
var appendFrameFn = wire.AppendFrame

// encCache lazily serializes one response at most once per codec and
// hands out the shared bytes — the encode-once fan-out path. The
// buffers are pooled, reference-counted sharedBufs (tick.go): the
// cache holds one reference across the fan-out, each enqueued frame
// takes its own, and done() drops the cache's when the fan-out ends.
// A failed encode is negative-cached for the rest of the fan-out:
// logged and counted once, with every later subscriber on that codec
// just recording its dropped frame instead of re-attempting the
// encode and re-logging each tick.
type encCache struct {
	resp   *wire.Response
	shared [2]*sharedBuf // indexed by wire.Codec
	failed [2]bool

	// trc/parent, when trc is non-nil, wrap each first-per-codec encode
	// in an "encode" span (codec + byte count). Set only for detailed
	// (head-sampled) traces — encode spans on every tail-candidate tick
	// would be waste.
	trc    *tracing.Trace
	parent tracing.SpanRef
}

// get returns the encoded frame for codec, serializing on first use.
// ok is false when the encode failed (now or earlier this fan-out);
// the caller counts the drop for its frame kind. An ok buffer stays
// valid until done(); a caller enqueuing it must sb.ref() first.
func (e *encCache) get(s *Server, what string, codec wire.Codec) (sb *sharedBuf, ok bool) {
	if e.failed[codec] {
		return nil, false
	}
	if sb := e.shared[codec]; sb != nil {
		return sb, true
	}
	sb = newSharedBuf()
	var sp tracing.SpanRef = tracing.NoSpan
	if e.trc != nil {
		sp = e.trc.StartSpan(e.parent, "encode")
		e.trc.Annotate(sp, "codec", codec.String())
	}
	p, err := appendFrameFn(sb.buf[:0], codec, e.resp)
	if err != nil {
		if e.trc != nil {
			e.trc.Annotate(sp, "error", err.Error())
			e.trc.EndSpan(sp)
			e.trc.SetError(what + " encode failed")
		}
		sb.release()
		e.failed[codec] = true
		s.m.encodeFailures.Inc()
		s.slog.Error("papid: "+what+" encode failed",
			"codec", codec.String(), "session", e.resp.Session, "err", err)
		return nil, false
	}
	if e.trc != nil {
		e.trc.AnnotateInt(sp, "bytes", int64(len(p)))
		e.trc.EndSpan(sp)
	}
	sb.buf = p
	e.shared[codec] = sb
	return sb, true
}

// done drops the cache's own reference on every buffer it encoded.
// Call exactly once, after the fan-out loop that used the cache — a
// buffer no subscriber queue took goes straight back to the pool.
func (e *encCache) done() {
	for i, sb := range e.shared {
		if sb != nil {
			sb.release()
			e.shared[i] = nil
		}
	}
}

// fanout serializes one snapshot at most once per codec in use and
// hands the shared bytes to every subscriber — the encode-once path.
// With N subscribers on one codec the tick pays for one Marshal, not
// N; the bytes are never mutated while shared, and the refcount on
// each buffer (see sharedBuf) returns it to the pool once the cache
// and every queue are done with it. Filtered and delta subscribers
// peel off to fanoutViews (filter.go), which applies the same
// encode-once discipline per distinct view; their scratch slice is
// pooled too — fan-out runs every tick for every session, so even
// small per-call allocations are worth retiring.
//
// t/parent thread the enclosing trace (tick or PUBLISH request) so
// detailed traces record per-codec encode spans; both may be nil/zero.
func (s *Server) fanout(t *tracing.Trace, parent tracing.SpanRef, sess *session, resp wire.Response, subs []*subscriber) {
	enc := encCache{resp: &resp}
	if t.Detailed() {
		enc.trc, enc.parent = t, parent
	}
	vp := viewSubsPool.Get().(*[]*subscriber)
	viewSubs := (*vp)[:0]
	for _, sub := range subs {
		if sub.sig != "" {
			viewSubs = append(viewSubs, sub)
			continue
		}
		s.pushSnapshot(&enc, sub)
	}
	if len(viewSubs) > 0 {
		s.fanoutViews(t, parent, sess, &resp, viewSubs)
	}
	enc.done()
	for i := range viewSubs {
		viewSubs[i] = nil // no subscriber outlives its tick via the pool
	}
	*vp = viewSubs[:0]
	viewSubsPool.Put(vp)
}

// pushSnapshot enqueues one full snapshot frame, counting it sent or
// dropped (an encode failure counts as a drop for this subscriber).
func (s *Server) pushSnapshot(enc *encCache, sub *subscriber) {
	codec := sub.c.codecNow()
	sb, ok := enc.get(s, "snapshot", codec)
	if !ok {
		s.m.snapDropped.Inc()
		return
	}
	s.m.snapSent.Inc()
	sb.ref()
	if sub.push(frame{payload: sb.buf, codec: codec, droppable: true, shared: sb}) {
		s.m.snapDropped.Inc()
	}
}

// fanoutDerived evaluates the session's performance groups over one
// snapshot and pushes the resulting DERIVED frame to its v3+
// subscribers, encode-once like fanout. Evaluation runs even with no
// eligible subscriber — threshold rules alert server-side regardless
// of who is watching — but pre-v3 peers never receive the frame
// (wire.MinProtocolDerived): their stream stays exactly what older
// servers sent.
func (s *Server) fanoutDerived(t *tracing.Trace, parent tracing.SpanRef, sess *session, snap wire.Response, subs []*subscriber, ts int64) {
	groups := sess.derivedGroups(s.defGroups)
	if len(groups) == 0 {
		return
	}
	alerts := s.derive.Tick(sess.id, snap.Events, snap.Values, ts, groups,
		func(metrics, units []string, vals []float64) {
			// The emit slices are engine-owned and reused next tick;
			// AppendFrame serializes them before this callback returns,
			// so nothing engine-owned escapes.
			resp := wire.Response{Op: wire.OpDerived, OK: true, Session: snap.Session,
				Seq: snap.Seq, Metrics: metrics, Units: units, DValues: vals}
			enc := encCache{resp: &resp}
			if t.Detailed() {
				enc.trc, enc.parent = t, parent
			}
			for _, sub := range subs {
				if sub.c == nil || sub.c.version.Load() < wire.MinProtocolDerived {
					continue
				}
				codec := sub.c.codecNow()
				sb, ok := enc.get(s, "derived", codec)
				if !ok {
					s.m.derivedDropped.Inc()
					continue
				}
				s.m.derivedSent.Inc()
				sb.ref()
				if sub.push(frame{payload: sb.buf, codec: codec, droppable: true, shared: sb}) {
					s.m.derivedDropped.Inc()
				}
			}
			enc.done()
		})
	if alerts > 0 && t != nil {
		// A fired threshold alert makes the surrounding tick/request
		// trace an error — tail retention keeps the flight-recorder
		// evidence of what the pipeline was doing when it fired.
		t.AnnotateInt(parent, "alerts", int64(alerts))
		t.SetError(fmt.Sprintf("derive: %d threshold alert(s) fired", alerts))
	}
}

// queryDerived answers a derive-mode QUERY: the named groups' formulas
// evaluated over the session's history window. Validation is loud on
// purpose: an unknown group, a pre-v3 peer, or a formula referencing
// an event the session never recorded earns a wire ERROR naming the
// gap — never an empty reply a client could mistake for "no data".
func (s *Server) queryDerived(c *conn, req *wire.Request) wire.Response {
	if s.hist == nil {
		// Defense in depth: dispatch already rejects QUERY on a
		// history-less server, but this path dereferences s.hist twice
		// below — a future caller must get the wire ERROR, not a panic.
		return errResp(req, errors.New("history disabled (papid -tsdb-mem 0)"))
	}
	if c != nil && c.version.Load() < wire.MinProtocolDerived {
		return errResp(req, fmt.Errorf(
			"derive requires protocol >= %d (announce your version in HELLO)", wire.MinProtocolDerived))
	}
	groups, err := s.derive.Registry().Resolve(req.Derive)
	if err != nil {
		return errResp(req, err)
	}
	need := derive.EventsFor(groups)
	have := s.hist.Events(req.Session)
	for _, ev := range need {
		if !slices.Contains(have, ev) {
			return errResp(req, fmt.Errorf(
				"derive: groups %v need event %s, but session %d recorded no history for it (have %v)",
				req.Derive, ev, req.Session, have))
		}
	}
	series := s.hist.Query(req.Session, tsdb.Query{
		Events: need, From: req.From, To: req.To, Step: req.Step,
	})
	hs := derive.EvalHistory(groups, series)
	out := make([]wire.DerivedSeries, len(hs))
	for i, h := range hs {
		pts := make([]wire.DerivedPoint, len(h.Points))
		for j, p := range h.Points {
			pts[j] = wire.DerivedPoint{Start: p.Start, Value: p.Value}
		}
		out[i] = wire.DerivedSeries{Metric: h.Metric, Unit: h.Unit, Points: pts}
	}
	return wire.Response{Op: req.Op, OK: true, Session: req.Session, Derived: out}
}

// frame is one pre-serialized outbound frame: the bytes on the wire,
// ready for a plain socket write. Snapshot frames are droppable and
// may share their payload with other connections' queues; request
// replies are not droppable — a client must never miss the answer to a
// request it is waiting on — and may carry a pooled buffer returned
// after the write.
type frame struct {
	payload   []byte
	codec     wire.Codec
	droppable bool
	// poolBuf, when non-nil, owns payload's backing array; the writer
	// returns it to framePool after the socket write. Only
	// single-owner reply frames set it.
	poolBuf *[]byte
	// shared, when non-nil, is the reference-counted fan-out buffer
	// backing payload; this frame holds one reference and release
	// drops it. Mutually exclusive with poolBuf.
	shared *sharedBuf
	// trace, when non-nil, carries a request trace whose "write" span
	// stays open until this frame is consumed: release ends the span
	// and finishes the trace, so a traced reply's duration includes
	// its queue wait and socket write.
	trace *traceDone
}

// traceDone defers a request trace's completion to whoever consumes
// its reply frame — the writer after the socket write, or any discard
// path (queue eviction, jam, closed queue). After handing one to a
// frame, the producing goroutine must not touch the trace again: the
// writer may finish and recycle it concurrently.
type traceDone struct {
	tr *tracing.Tracer
	t  *tracing.Trace
	sp tracing.SpanRef
}

func (td *traceDone) done() {
	td.t.EndSpan(td.sp)
	td.tr.Finish(td.t)
}

// framePool recycles reply-frame encode buffers. Replies are encoded
// at enqueue time and consumed exactly once by the connection's writer
// goroutine, so the buffer's lifetime is precisely enqueue→write.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// release returns a frame's pooled reply buffer or drops its shared
// fan-out reference, whichever it holds. Every path that is done with
// a frame — socket write, queue eviction, jam, closed queue — calls
// it; a frame simply abandoned (e.g. stuck in a torn-down channel) is
// never released and its buffer falls to the GC, which is a pool miss
// but never a reuse-while-referenced.
func (f *frame) release() {
	if f.poolBuf != nil {
		if cap(f.payload) <= maxPooledFrame {
			*f.poolBuf = f.payload[:0]
			framePool.Put(f.poolBuf)
		}
		f.poolBuf = nil
	}
	if f.shared != nil {
		f.shared.release()
		f.shared = nil
	}
	if f.trace != nil {
		f.trace.done()
		f.trace = nil
	}
}

// subscriber is one SUBSCRIBE registration: a bounded queue drained by
// a dedicated goroutine feeding the owning connection's write queue.
// When the queue is full the oldest snapshot is dropped — a slow
// viewer sees a gappy stream, never a stalled server. A wildcard
// SUBSCRIBE registers one subscriber on every matched session.
type subscriber struct {
	c    *conn
	ch   chan frame
	done chan struct{}

	// The v4 filter, immutable after subscribe: events is the canonical
	// event-name filter (nil = all), delta requests delta frames, and
	// sig is the filter signature fanout partitions by ("" = the
	// unfiltered, non-delta fast path). See filter.go.
	events []string
	delta  bool
	sig    string
	// needKey, on a delta subscriber, requests a keyframe at the next
	// fan-out: set at subscribe (the first frame anchors the stream)
	// and on any dropped frame — a drop may have taken a keyframe with
	// it, and re-keying is cheap next to silently corrupt state.
	needKey atomic.Bool
}

// push enqueues f, dropping the oldest queued frame if the queue is
// full. It reports whether anything was dropped.
func (sub *subscriber) push(f frame) (dropped bool) {
	select {
	case sub.ch <- f:
		return false
	default:
	}
	// Full: evict the oldest, then retry once. The consumer may have
	// drained concurrently, in which case the eviction select falls
	// through and the send succeeds — either way one frame was lost
	// from this subscriber's point of view only if the final send
	// also fails. Discarded frames release their shared buffers here;
	// a frame the channel accepted is released downstream.
	select {
	case old := <-sub.ch:
		old.release()
		dropped = true
	default:
	}
	select {
	case sub.ch <- f:
	default:
		f.release()
		dropped = true
	}
	return dropped
}

func (sub *subscriber) loop() {
	defer sub.c.srv.wg.Done()
	for {
		select {
		case <-sub.done:
			return
		case f := <-sub.ch:
			dropped, ok := sub.c.q.push(f)
			if dropped {
				sub.c.srv.m.writeDrops.Inc()
				if sub.delta {
					// The write queue evicts oldest-droppable without
					// saying which frame went; it could have been a
					// keyframe, so resync.
					sub.needKey.Store(true)
				}
			}
			if !ok {
				return
			}
		}
	}
}

// writeQueue is the bounded per-connection outbound frame queue,
// drained by exactly one writer goroutine per connection. It extends
// the drop-oldest subscriber policy down to the socket: when the queue
// is full the oldest droppable frame is evicted first, and a queue
// jammed with undroppable reply frames reports failure so the
// connection is evicted instead of wedging the server.
type writeQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	frames []frame
	max    int
	closed bool
}

func newWriteQueue(depth int) *writeQueue {
	q := &writeQueue{max: depth}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues one frame. dropped reports that a droppable frame (the
// oldest queued one, or the new frame itself) was discarded to respect
// the bound; ok is false when the queue is closed or jammed with
// undroppable frames.
func (q *writeQueue) push(f frame) (dropped, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		f.release()
		return false, false
	}
	if len(q.frames) >= q.max {
		evicted := false
		for i := range q.frames {
			if q.frames[i].droppable {
				q.frames[i].release()
				q.frames = append(q.frames[:i], q.frames[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			if f.droppable {
				f.release()
				return true, true // every queued frame outranks the new one
			}
			f.release()
			return false, false // jammed: replies cannot make progress
		}
		dropped = true
	}
	q.frames = append(q.frames, f)
	q.cond.Signal()
	return dropped, true
}

// pop blocks until a frame is available; after close it drains the
// backlog, then reports done.
func (q *writeQueue) pop() (frame, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.frames) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.frames) == 0 {
		return frame{}, false
	}
	f := q.frames[0]
	q.frames = q.frames[1:]
	return f, true
}

// tryPop dequeues without blocking — the writer uses it to batch every
// already-queued frame into one buffered flush.
func (q *writeQueue) tryPop() (frame, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.frames) == 0 {
		return frame{}, false
	}
	f := q.frames[0]
	q.frames = q.frames[1:]
	return f, true
}

// close stops accepting frames and wakes the writer; already-queued
// frames still drain.
func (q *writeQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *writeQueue) isClosed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// len reports the frames currently queued — the scrape-time depth
// gauge's view.
func (q *writeQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.frames)
}

// conn is one client connection: a reader loop dispatching requests, a
// writer loop draining the bounded outbound queue, and any subscriber
// goroutines it registered. All socket writes funnel through the
// writer loop, so one write deadline governs them uniformly. Frames
// are serialized at enqueue time (replies) or at fan-out time
// (snapshots, shared across subscribers); the writer only moves bytes.
type conn struct {
	srv *Server
	nc  net.Conn
	q   *writeQueue

	// id is the per-server connection number; every structured log
	// line this connection emits carries it.
	id  uint64
	log *slog.Logger

	// codec is the negotiated frame encoding (wire.Codec); it flips
	// from JSON to binary exactly once, after the HELLO reply that
	// confirmed the upgrade was enqueued.
	codec   atomic.Uint32
	evicted atomic.Bool
	// version is the protocol version the peer announced at HELLO
	// (0 until then). It gates version-dependent reply content: STATS
	// histogram summaries go only to v3+ peers, so a v2 JSON client
	// never sees a field it does not know.
	version atomic.Int32

	// trc is the in-flight request's trace, set by handle around
	// dispatch so deep dispatch paths (PUBLISH fan-out) can hang stage
	// spans on it without changing the dispatch signature. Requests on
	// a connection are handled serially by the reader goroutine, so a
	// plain field suffices.
	trc *tracing.Trace

	mu   sync.Mutex
	subs []subRef
}

// codecNow reports the connection's negotiated codec. Nil-safe:
// detached subscribers (tests drive fanout without a conn) read as
// JSON.
func (c *conn) codecNow() wire.Codec {
	if c == nil {
		return wire.CodecJSON
	}
	return wire.Codec(c.codec.Load())
}

// reqTrace is the in-flight request's trace. Nil-safe: tests drive
// dispatch without a conn, and tracing may be off.
func (c *conn) reqTrace() *tracing.Trace {
	if c == nil {
		return nil
	}
	return c.trc
}

// subRef ties one subscriber to the sessions it is registered on —
// several for a wildcard SUBSCRIBE — so teardown unregisters it
// everywhere but closes its done channel exactly once.
type subRef struct {
	sessions []*session
	sub      *subscriber
}

func (s *Server) handle(nc net.Conn) {
	defer s.wg.Done()
	c := &conn{srv: s, nc: nc, q: newWriteQueue(s.cfg.WriteQueueDepth),
		id: s.nextConnID.Add(1)}
	c.log = s.slog.With("conn", c.id, "remote", nc.RemoteAddr().String())
	c.log.Debug("papid: connection open")
	s.connsMu.Lock()
	s.conns[c] = struct{}{}
	s.connsMu.Unlock()
	s.wg.Add(1)
	go c.writeLoop()
	defer c.teardown()

	dec := wire.NewDecoder(nc)
	for {
		if d := s.cfg.ReadIdleTimeout; d > 0 {
			nc.SetReadDeadline(time.Now().Add(d))
		}
		var req wire.Request
		if err := dec.Decode(&req); err != nil {
			switch {
			case wire.IsMalformed(err):
				// One bad frame must not kill the connection: reply
				// with an error frame and resume at the next boundary.
				s.m.resyncs.Inc()
				c.log.Warn("papid: malformed frame", "err", err)
				if !c.send(wire.Response{Op: wire.OpError, Error: err.Error()}) {
					return
				}
				if wire.IsFatalMalformed(err) {
					// Binary framing with a broken length prefix has no
					// resynchronization point: answer once, then cut the
					// connection loose cleanly (teardown drains the
					// ERROR frame before the socket closes).
					if c.evicted.CompareAndSwap(false, true) {
						s.m.evictions.Inc()
					}
					return
				}
				continue
			case wire.IsTimeout(err):
				if c.subscribing() {
					// A subscriber stream legitimately sends nothing:
					// the fan-out writes are its liveness, and the
					// write deadline evicts it if it stops reading.
					continue
				}
				c.evict("read idle", err)
				return
			}
			return // EOF or closed socket
		}
		// Service latency clock: decode done → reply enqueued. The
		// socket write happens on the writer goroutine; what this
		// histogram isolates is the dispatch cost itself, per op and
		// codec, so a regressed allocator solve or tsdb query shows up
		// under its own op instead of smearing into socket noise.
		t0 := time.Now()
		// Each valid request is a traced unit: dispatch and write spans
		// always; deep stage spans (PUBLISH history/fan-out/derive) hang
		// off c.trc. Only the ID is read after the frame is enqueued —
		// the writer goroutine finishes (and may recycle) the trace.
		t := s.trc.Start("request", req.Op)
		var tid uint64
		var ok bool
		var resp wire.Response
		if t == nil {
			resp = s.dispatch(c, &req)
			ok = c.send(resp)
		} else {
			tid = t.ID()
			t.AnnotateInt(tracing.NoSpan, "conn", int64(c.id))
			if req.Session != 0 {
				t.AnnotateInt(tracing.NoSpan, "session", int64(req.Session))
			}
			c.trc = t
			dsp := t.StartSpan(tracing.NoSpan, "dispatch")
			resp = s.dispatch(c, &req)
			t.EndSpan(dsp)
			c.trc = nil
			if !resp.OK && resp.Error != "" {
				t.SetError(resp.Error)
			}
			// The reply names its trace for v4+ peers only: older binary
			// decoders reject unknown presence bits, older JSON clients
			// reject unknown fields in strict harnesses.
			if c.version.Load() >= int32(wire.MinProtocolTrace) {
				resp.TraceID = tid
			}
			wr := t.StartSpan(tracing.NoSpan, "write")
			ok = c.sendTraced(resp, t, wr)
		}
		s.m.observeOp(req.Op, c.codecNow(), t0)
		if d := s.cfg.SlowOp; d > 0 {
			if elapsed := time.Since(t0); elapsed >= d {
				if tid != 0 {
					c.log.Warn("papid: slow op", "op", req.Op,
						"session", req.Session, "dur", elapsed.String(),
						"trace", tracing.FormatID(tid))
				} else {
					c.log.Warn("papid: slow op", "op", req.Op,
						"session", req.Session, "dur", elapsed.String())
				}
				s.slowOps.record(req.Op, req.Session, elapsed.Nanoseconds(), tid)
			}
		}
		if !ok {
			return
		}
		if req.Op == wire.OpBye {
			return
		}
		if resp.Op == wire.OpHello && resp.Codec == wire.CodecNameBinary {
			// The upgrade confirmation was enqueued (in JSON, by the
			// send above); every frame from here on — ours and the
			// peer's — is binary. The peer cannot have pipelined binary
			// bytes earlier: it switches only after reading our reply.
			c.codec.Store(uint32(wire.CodecBinary))
			dec.SetCodec(wire.CodecBinary)
		}
	}
}

// writeLoop is the connection's single socket writer: it drains the
// outbound queue of pre-serialized frames, bounding each write by
// WriteTimeout, and batches every already-queued frame into one
// buffered flush so a burst of snapshots costs one syscall, not one
// per frame. A deadline trip or write error evicts the connection — a
// peer that stopped reading is cut loose rather than wedging a
// goroutine and unbounded memory behind it. Closing the socket on exit
// also unblocks the reader.
func (c *conn) writeLoop() {
	defer c.srv.wg.Done()
	defer c.nc.Close()
	bw := bufio.NewWriterSize(c.nc, 4096)
	for {
		f, ok := c.q.pop()
		if !ok {
			bw.Flush() // best-effort: the BYE reply of a clean teardown
			return
		}
		for {
			if d := c.srv.cfg.WriteTimeout; d > 0 {
				c.nc.SetWriteDeadline(time.Now().Add(d))
			}
			_, err := bw.Write(f.payload)
			if err == nil {
				c.srv.m.framesSent[f.codec].Inc()
				c.srv.m.bytesSent[f.codec].Add(uint64(len(f.payload)))
			}
			f.release()
			if err != nil {
				c.evict("write", err)
				return
			}
			if next, more := c.q.tryPop(); more {
				f = next
				continue
			}
			break
		}
		if err := bw.Flush(); err != nil {
			c.evict("write", err)
			return
		}
	}
}

// send serializes a reply frame with the connection's codec and
// enqueues it; replies are never dropped under pressure. false means
// the connection is closed or was evicted for jamming. The encode
// buffer is pooled: the writer returns it after the socket write.
func (c *conn) send(resp wire.Response) bool {
	return c.sendTraced(resp, nil, tracing.NoSpan)
}

// sendTraced is send carrying a request trace: the open write span wr
// rides the frame (traceDone) and whoever consumes the frame ends it
// and finishes the trace. The caller must not touch t after this
// returns — the writer goroutine may already have finished and
// recycled it. A nil t is plain send.
func (c *conn) sendTraced(resp wire.Response, t *tracing.Trace, wr tracing.SpanRef) bool {
	codec := c.codecNow()
	bp := framePool.Get().(*[]byte)
	payload, err := wire.AppendFrame((*bp)[:0], codec, &resp)
	if err != nil {
		*bp = (*bp)[:0]
		framePool.Put(bp)
		if t != nil {
			t.SetError("reply encode: " + err.Error())
			c.srv.trc.Finish(t)
		}
		c.evict("reply encode", err)
		return false
	}
	*bp = payload
	f := frame{payload: payload, codec: codec, poolBuf: bp}
	if t != nil {
		t.AnnotateInt(wr, "bytes", int64(len(payload)))
		f.trace = &traceDone{tr: c.srv.trc, t: t, sp: wr}
	}
	if _, ok := c.q.push(f); ok {
		return true
	}
	if !c.q.isClosed() {
		c.evict("reply queue jammed", nil)
	}
	return false
}

// subscribing reports whether the connection holds live
// subscriptions, which exempts it from the read-idle deadline.
func (c *conn) subscribing() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.subs) > 0
}

// evict cuts the connection loose: the queue closes (stopping the
// writer), the socket closes (unblocking the reader), and the
// eviction is counted exactly once regardless of which side — reader
// deadline, writer deadline, or jammed queue — tripped first.
func (c *conn) evict(why string, err error) {
	if !c.evicted.CompareAndSwap(false, true) {
		return
	}
	c.srv.m.evictions.Inc()
	if wire.IsTimeout(err) {
		c.srv.m.deadlineTrips.Inc()
	}
	c.q.close()
	c.nc.Close()
	c.log.Warn("papid: evicting connection", "why", why, "err", err)
}

// teardown unregisters the connection and its subscribers and lets
// the writer drain its backlog (e.g. the BYE reply) before the socket
// closes.
func (c *conn) teardown() {
	c.srv.connsMu.Lock()
	delete(c.srv.conns, c)
	c.srv.connsMu.Unlock()
	c.q.close()
	c.mu.Lock()
	subs := c.subs
	c.subs = nil
	c.mu.Unlock()
	for _, ref := range subs {
		for _, sess := range ref.sessions {
			sess.removeSubscriber(ref.sub)
		}
		close(ref.sub.done)
	}
}

func (s *Server) dispatch(c *conn, req *wire.Request) wire.Response {
	switch req.Op {
	case wire.OpHello:
		if c != nil {
			c.version.Store(int32(req.Version))
		}
		resp := wire.Response{Op: req.Op, OK: true,
			Protocol: wire.ProtocolVersion, Platform: s.cfg.DefaultPlatform}
		// Confirm the binary upgrade only for v3+ peers that asked, and
		// only before any subscription exists: a snapshot encoded
		// concurrently with the codec flip could otherwise straddle the
		// negotiation. (Clients negotiate first; this enforces it.)
		if req.Codec == wire.CodecNameBinary && req.Version >= wire.MinProtocolBinary &&
			(c == nil || !c.subscribing()) {
			resp.Codec = wire.CodecNameBinary
		}
		return resp
	case wire.OpCreate:
		return s.createSession(req)
	case wire.OpAddEvents:
		return s.withSession(req, func(sess *session) wire.Response {
			names, err := sess.addEvents(s, req.Events)
			if err != nil {
				return errResp(req, err)
			}
			return wire.Response{Op: req.Op, OK: true, Session: sess.id, Events: names}
		})
	case wire.OpStart:
		return s.withSession(req, func(sess *session) wire.Response {
			if err := sess.start(); err != nil {
				return errResp(req, err)
			}
			return wire.Response{Op: req.Op, OK: true, Session: sess.id}
		})
	case wire.OpRead:
		return s.withSession(req, func(sess *session) wire.Response {
			resp, err := sess.read()
			if err != nil {
				return errResp(req, err)
			}
			resp.Op = req.Op
			return resp
		})
	case wire.OpSubscribe:
		return s.subscribe(c, req)
	case wire.OpPublish:
		return s.withSession(req, func(sess *session) wire.Response {
			snap, subs, err := sess.publish(req.Events, req.Values)
			if err != nil {
				return errResp(req, err)
			}
			now := s.cfg.now()
			// Stage spans on the request trace (all no-ops untraced): a
			// slow PUBLISH shows whether the synchronous WAL append, the
			// fan-out encodes, or the derive evaluation ate the budget.
			t := c.reqTrace()
			hs := t.StartSpan(tracing.NoSpan, "tsdb.append")
			s.appendHistory(sess.id, now, snap.Events, snap.Values)
			t.EndSpan(hs)
			fs := t.StartSpan(tracing.NoSpan, "fanout")
			t.AnnotateInt(fs, "subs", int64(len(subs)))
			s.fanout(t, fs, sess, snap, subs)
			t.EndSpan(fs)
			ds := t.StartSpan(tracing.NoSpan, "derive")
			s.fanoutDerived(t, ds, sess, snap, subs, now)
			t.EndSpan(ds)
			return wire.Response{Op: req.Op, OK: true, Session: sess.id, Seq: snap.Seq}
		})
	case wire.OpStop:
		return s.withSession(req, func(sess *session) wire.Response {
			names, final, err := sess.stop()
			if err != nil {
				return errResp(req, err)
			}
			return wire.Response{Op: req.Op, OK: true, Session: sess.id,
				Events: names, Values: final}
		})
	case wire.OpCloseSession:
		sess, ok := s.reg.remove(req.Session)
		if !ok {
			return errResp(req, fmt.Errorf("no session %d", req.Session))
		}
		final := sess.close()
		s.derive.CloseSession(req.Session)
		return wire.Response{Op: req.Op, OK: true, Session: req.Session, Values: final}
	case wire.OpQuery:
		if s.hist == nil {
			return errResp(req, errors.New("history disabled (papid -tsdb-mem 0)"))
		}
		// Validate the window before touching the store: a reversed
		// range or negative step is a client bug that deserves a loud
		// ERROR, not an empty series it might mistake for no data.
		if req.To <= req.From {
			return errResp(req, fmt.Errorf("bad range [%d, %d): from must precede to", req.From, req.To))
		}
		if req.Step < 0 {
			return errResp(req, fmt.Errorf("bad step %d: must be >= 0 (0 returns raw samples)", req.Step))
		}
		if len(req.Derive) > 0 {
			return s.queryDerived(c, req)
		}
		// No live-session check: history legitimately outlives its
		// session, which is half the point of keeping it.
		series := s.hist.Query(req.Session, tsdb.Query{
			Events: req.Events, From: req.From, To: req.To, Step: req.Step,
		})
		return wire.Response{Op: req.Op, OK: true, Session: req.Session, Series: series}
	case wire.OpStats:
		st := s.Stats()
		resp := wire.Response{Op: req.Op, OK: true, Stats: map[string]uint64{
			"sessions":           uint64(st.Sessions),
			"connections":        uint64(st.Connections),
			"cache_hits":         st.CacheHits,
			"cache_misses":       st.CacheMisses,
			"snapshots_sent":     st.SnapshotsSent,
			"snapshots_dropped":  st.SnapshotsDropped,
			"ticks":              st.Ticks,
			"evictions":          st.Evictions,
			"deadline_trips":     st.DeadlineTrips,
			"resyncs":            st.Resyncs,
			"write_drops":        st.WriteDrops,
			"tick_stalls":        st.TickStalls,
			"frames_sent_json":   st.FramesSentJSON,
			"frames_sent_binary": st.FramesSentBinary,
			"bytes_sent_json":    st.BytesSentJSON,
			"bytes_sent_binary":  st.BytesSentBinary,
			"tsdb_bytes":         uint64(st.TSDB.Bytes),
			"tsdb_series":        uint64(st.TSDB.Series),
			"tsdb_samples":       st.TSDB.Samples,
			"tsdb_evictions":     st.TSDB.Evictions,
			"derive_evals":       s.derive.Evals(),
			"derive_alerts":      s.derive.Alerts(),
			"derived_sent":       st.DerivedSent,
			"derived_dropped":    st.DerivedDropped,
			"deltas_sent":        st.DeltasSent,
			"deltas_dropped":     st.DeltasDropped,
			"keyframes_sent":     st.Keyframes,
			"encode_failures":    st.EncodeFailures,
		}}
		// wal_* keys appear only on durable servers; RAM-only STATS
		// replies stay byte-identical to what earlier PRs sent.
		if st.Durable {
			w := st.WAL
			resp.Stats["wal_rows"] = w.Rows
			resp.Stats["wal_fsyncs"] = w.Fsyncs
			resp.Stats["wal_sealed_blocks"] = w.SealedBlocks
			resp.Stats["wal_compactions"] = w.Compactions
			resp.Stats["wal_truncated_files"] = w.TruncatedWALFiles
			resp.Stats["wal_write_errors"] = w.WriteErrors
			resp.Stats["wal_files"] = uint64(w.WALFiles)
			resp.Stats["wal_segments"] = uint64(w.Segments)
			resp.Stats["wal_disk_bytes"] = uint64(w.DiskBytes)
			resp.Stats["wal_replayed_rows"] = w.Replay.Rows
			resp.Stats["wal_replayed_blocks"] = uint64(w.Replay.Blocks)
			resp.Stats["wal_torn_records"] = uint64(w.Replay.TornRecords)
			if w.Replay.CleanStart {
				resp.Stats["wal_clean_start"] = 1
			} else {
				resp.Stats["wal_clean_start"] = 0
			}
		}
		// trace_* keys appear only when the flight recorder is on, so a
		// server with tracing off answers byte-identically to earlier
		// releases.
		if s.trc != nil {
			ts := s.trc.TracerStats()
			resp.Stats["trace_started"] = ts.Started
			resp.Stats["trace_retained"] = ts.Retained
			resp.Stats["trace_kept_slow"] = ts.KeptSlow
			resp.Stats["trace_kept_err"] = ts.KeptErr
		}
		// Histogram summaries are a v3 addition: only peers that
		// announced version >= 3 at HELLO receive them, so a v2 JSON
		// client's STATS reply stays byte-compatible with what PR 2's
		// server sent (see wire.MinProtocolStatsHists).
		if c != nil && c.version.Load() >= wire.MinProtocolStatsHists {
			resp.Hists = s.m.reg.Summaries()
		}
		// Recent slow-op samples (op, session, duration, trace ID) are a
		// v4 addition, gated like TraceID itself.
		if c != nil && c.version.Load() >= wire.MinProtocolTrace {
			resp.Slow = s.slowOps.samples()
		}
		return resp
	case wire.OpBye:
		return wire.Response{Op: req.Op, OK: true}
	}
	return errResp(req, fmt.Errorf("unknown op %q", req.Op))
}

func (s *Server) withSession(req *wire.Request, f func(*session) wire.Response) wire.Response {
	sess, ok := s.reg.get(req.Session)
	if !ok {
		return errResp(req, fmt.Errorf("no session %d", req.Session))
	}
	return f(sess)
}

func errResp(req *wire.Request, err error) wire.Response {
	return wire.Response{Op: req.Op, OK: false, Session: req.Session, Error: err.Error()}
}

// subscribe answers an OpSubscribe: the classic single-session form
// (Session != 0) with optional derive groups, or the v4 wildcard form
// (Sessions / Labels) that registers one shared subscriber on every
// matched session. Both forms accept the v4 event filter and delta
// mode; every v4 feature is gated on the peer having announced
// protocol >= wire.MinProtocolFilter at HELLO, so pre-v4 peers keep
// the exact streams earlier servers sent.
func (s *Server) subscribe(c *conn, req *wire.Request) wire.Response {
	filtered := len(req.Events) > 0 || req.Delta || len(req.Sessions) > 0 || len(req.Labels) > 0
	if filtered && c != nil && c.version.Load() < wire.MinProtocolFilter {
		return errResp(req, fmt.Errorf(
			"filtered/delta subscriptions require protocol >= %d (announce your version in HELLO)",
			wire.MinProtocolFilter))
	}
	if len(req.Sessions) == 0 && len(req.Labels) == 0 {
		return s.withSession(req, func(sess *session) wire.Response {
			if len(req.Derive) > 0 {
				// Validate the derive registration before the subscriber
				// exists: a rejected group must leave no half-registered
				// state and no subscription behind.
				if c != nil && c.version.Load() < wire.MinProtocolDerived {
					return errResp(req, fmt.Errorf(
						"derive requires protocol >= %d (announce your version in HELLO)", wire.MinProtocolDerived))
				}
				if err := sess.registerDerive(s.derive.Registry(), req.Derive); err != nil {
					return errResp(req, err)
				}
			}
			sub := s.newSubscriber(c, req)
			names, err := sess.addSubscriber(sub)
			if err != nil {
				return errResp(req, err)
			}
			s.attachSub(c, sub, sess)
			return wire.Response{Op: req.Op, OK: true, Session: sess.id, Events: names}
		})
	}
	// Wildcard form. Validate everything before touching any session: a
	// rejected request must leave no partial registration behind.
	if req.Session != 0 {
		return errResp(req, errors.New(
			"wildcard SUBSCRIBE: leave session 0 when listing sessions or labels"))
	}
	if len(req.Derive) > 0 {
		return errResp(req, errors.New("derive groups need a single-session SUBSCRIBE"))
	}
	for _, g := range req.Labels {
		if _, err := path.Match(g, ""); err != nil {
			return errResp(req, fmt.Errorf("bad label glob %q: %v", g, err))
		}
	}
	var matched []*session
	s.reg.forEach(func(sess *session) {
		if sess.matches(req.Sessions, req.Labels) {
			matched = append(matched, sess)
		}
	})
	slices.SortFunc(matched, func(a, b *session) int { return cmp.Compare(a.id, b.id) })
	sub := s.newSubscriber(c, req)
	var ids []uint64
	var attached []*session
	for _, sess := range matched {
		if _, err := sess.addSubscriber(sub); err != nil {
			continue // closed between the registry scan and here
		}
		attached = append(attached, sess)
		ids = append(ids, sess.id)
	}
	if len(attached) == 0 {
		return errResp(req, errors.New("wildcard SUBSCRIBE matched no live session"))
	}
	s.attachSub(c, sub, attached...)
	return wire.Response{Op: req.Op, OK: true, Sessions: ids}
}

// newSubscriber builds a subscriber carrying the request's filter. A
// delta subscriber starts with needKey set: its first frame must be a
// keyframe to anchor the stream.
func (s *Server) newSubscriber(c *conn, req *wire.Request) *subscriber {
	sig, canon := filterSig(req.Events, req.Delta)
	sub := &subscriber{c: c, ch: make(chan frame, s.cfg.QueueDepth),
		done: make(chan struct{}), events: canon, delta: req.Delta, sig: sig}
	if req.Delta {
		sub.needKey.Store(true)
	}
	return sub
}

// attachSub records the subscriber on its connection and starts its
// drain loop. A nil conn (direct dispatch in tests) gets neither: the
// caller owns the channel and drains it itself.
func (s *Server) attachSub(c *conn, sub *subscriber, sessions ...*session) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.subs = append(c.subs, subRef{sessions: slices.Clone(sessions), sub: sub})
	c.mu.Unlock()
	s.wg.Add(1)
	go sub.loop()
}

// createSession builds a session: a private System on the requested
// platform, its events resolved and admission-checked through the
// allocation cache, and the workload the tick loop will advance.
func (s *Server) createSession(req *wire.Request) wire.Response {
	platform := req.Platform
	if platform == "" {
		platform = s.cfg.DefaultPlatform
	}
	sys, err := papi.Init(papi.Options{Platform: platform})
	if err != nil {
		return errResp(req, err)
	}
	th := sys.Main()
	sess := &session{
		id:       s.nextID.Add(1),
		label:    req.Label,
		platform: platform,
		sys:      sys,
		th:       th,
		es:       th.NewEventSet(),
		subs:     make(map[*subscriber]struct{}),
	}
	names, err := sess.addEvents(s, req.Events)
	if err != nil {
		return errResp(req, err)
	}
	n := req.N
	if n <= 0 {
		n = 24
	}
	switch req.Workload {
	case "none":
		// Publish-only session; papid never drives it.
	case "":
		sess.prog, _ = workload.ByName("dot", n)
	default:
		prog, err := workload.ByName(req.Workload, n)
		if err != nil {
			return errResp(req, err)
		}
		sess.prog = prog
	}
	s.reg.put(sess)
	s.slog.Info("papid: session created", "session", sess.id,
		"platform", platform, "events", len(names))
	return wire.Response{Op: req.Op, OK: true, Session: sess.id,
		Platform: platform, Events: names}
}
