package server

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// ipcEvents is the event set the built-in `ipc` group needs; it fits
// every platform's counter budget, including linux-x86's two.
var ipcEvents = []string{"PAPI_TOT_INS", "PAPI_TOT_CYC"}

// TestDerivedSubscribeStream is the live end-to-end path: a v3 client
// registers the ipc group at SUBSCRIBE time and must receive DERIVED
// frames carrying finite, plausible values alongside its snapshots.
func TestDerivedSubscribeStream(t *testing.T) {
	_, addr := startServer(t, Config{TickInterval: 2 * time.Millisecond})
	cl := dialT(t, addr)
	if _, err := cl.Hello(); err != nil {
		t.Fatal(err)
	}
	created, err := cl.Do(wire.Request{Op: wire.OpCreate,
		Events: ipcEvents, Workload: "dot", N: 16})
	if err != nil {
		t.Fatal(err)
	}
	id := created.Session
	if _, err := cl.Do(wire.Request{Op: wire.OpStart, Session: id}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Do(wire.Request{Op: wire.OpSubscribe, Session: id,
		Derive: []string{"ipc"}}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no DERIVED frame within deadline")
		}
		resp, err := cl.Next()
		if err != nil {
			t.Fatal(err)
		}
		if resp.Op != wire.OpDerived {
			continue
		}
		if len(resp.Metrics) != 2 || resp.Metrics[0] != "ipc" || resp.Metrics[1] != "mips" {
			t.Fatalf("DERIVED metrics = %v, want [ipc mips]", resp.Metrics)
		}
		if len(resp.DValues) != 2 || len(resp.Units) != 2 {
			t.Fatalf("DERIVED parallel slices: %d values, %d units", len(resp.DValues), len(resp.Units))
		}
		ipc := resp.DValues[0]
		if math.IsNaN(ipc) || math.IsInf(ipc, 0) || ipc <= 0 || ipc > 32 {
			t.Fatalf("ipc = %v, want finite positive and plausible", ipc)
		}
		if resp.Session != id || resp.Seq == 0 {
			t.Fatalf("DERIVED session/seq = %d/%d", resp.Session, resp.Seq)
		}
		return
	}
}

// TestDerivedV2Isolation pins the mixed-version contract: with default
// groups armed server-side, a v2 subscriber's stream must carry no
// DERIVED frame and no derived field — while a concurrent v3
// subscriber on the same session proves evaluation was actually live.
func TestDerivedV2Isolation(t *testing.T) {
	_, addr := startServer(t, Config{
		TickInterval: 2 * time.Millisecond,
		Groups:       []string{"ipc"},
	})

	ctl := dialT(t, addr)
	created, err := ctl.Do(wire.Request{Op: wire.OpCreate,
		Events: ipcEvents, Workload: "dot", N: 16})
	if err != nil {
		t.Fatal(err)
	}
	id := created.Session
	if _, err := ctl.Do(wire.Request{Op: wire.OpStart, Session: id}); err != nil {
		t.Fatal(err)
	}

	// v3 witness: subscribes and must see DERIVED traffic.
	v3 := dialT(t, addr)
	if _, err := v3.Hello(); err != nil {
		t.Fatal(err)
	}
	if _, err := v3.Do(wire.Request{Op: wire.OpSubscribe, Session: id}); err != nil {
		t.Fatal(err)
	}

	// v2 peer: announces version 2 and subscribes plainly.
	v2 := dialT(t, addr)
	if _, err := v2.Do(wire.Request{Op: wire.OpHello, Version: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := v2.Do(wire.Request{Op: wire.OpSubscribe, Session: id}); err != nil {
		t.Fatal(err)
	}

	sawDerived := false
	deadline := time.Now().Add(10 * time.Second)
	for !sawDerived {
		if time.Now().After(deadline) {
			t.Fatal("v3 witness saw no DERIVED frame — default groups never evaluated")
		}
		resp, err := v3.Next()
		if err != nil {
			t.Fatal(err)
		}
		if resp.Op == wire.OpDerived {
			sawDerived = true
		}
	}

	// Evaluation is provably live; now audit a window of the v2 stream.
	for i := 0; i < 50; i++ {
		resp, err := v2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if resp.Op == wire.OpDerived {
			t.Fatalf("v2 peer received a DERIVED frame: %+v", resp)
		}
		if len(resp.Metrics) != 0 || len(resp.DValues) != 0 || len(resp.Derived) != 0 {
			t.Fatalf("v2 frame carries derived fields: %+v", resp)
		}
	}
}

// TestSubscribeDeriveValidation: a derive registration naming an
// unknown group, needing events the session does not count, or coming
// from a pre-v3 peer is a wire ERROR — and leaves no subscription
// behind.
func TestSubscribeDeriveValidation(t *testing.T) {
	srv, addr := startServer(t, Config{TickInterval: time.Hour})
	cl := dialT(t, addr)
	if _, err := cl.Hello(); err != nil {
		t.Fatal(err)
	}
	created, err := cl.Do(wire.Request{Op: wire.OpCreate, Events: ipcEvents, Workload: "dot"})
	if err != nil {
		t.Fatal(err)
	}
	id := created.Session

	_, err = cl.Do(wire.Request{Op: wire.OpSubscribe, Session: id, Derive: []string{"nope"}})
	if err == nil || !strings.Contains(err.Error(), "unknown group") {
		t.Errorf("unknown group error = %v", err)
	}
	// flops needs PAPI_FP_OPS, which this session does not count.
	_, err = cl.Do(wire.Request{Op: wire.OpSubscribe, Session: id, Derive: []string{"flops"}})
	if err == nil || !strings.Contains(err.Error(), "does not count") {
		t.Errorf("uncovered group error = %v", err)
	}
	// Neither failed registration may have left a subscriber attached.
	srv.reg.forEach(func(sess *session) {
		sess.mu.Lock()
		defer sess.mu.Unlock()
		if len(sess.subs) != 0 {
			t.Errorf("rejected SUBSCRIBE left %d subscribers", len(sess.subs))
		}
		if len(sess.deriveGroups) != 0 {
			t.Errorf("rejected SUBSCRIBE left groups %v registered", sess.deriveGroups)
		}
	})

	// A peer that never announced v3 cannot register derive groups.
	old := dialT(t, addr)
	if _, err := old.Do(wire.Request{Op: wire.OpHello, Version: 2}); err != nil {
		t.Fatal(err)
	}
	_, err = old.Do(wire.Request{Op: wire.OpSubscribe, Session: id, Derive: []string{"ipc"}})
	if err == nil || !strings.Contains(err.Error(), "protocol") {
		t.Errorf("pre-v3 derive error = %v", err)
	}
}

// publishTicks drives a publish-only session through n evenly spaced
// cumulative snapshots under the injected clock.
func publishTicks(t *testing.T, srv *Server, id uint64, clock *atomic.Int64,
	events []string, start []int64, step []int64, n int, dtUsec int64) {
	t.Helper()
	vals := append([]int64(nil), start...)
	for i := 0; i < n; i++ {
		clock.Add(dtUsec)
		if resp := srv.dispatch(nil, &wire.Request{Op: wire.OpPublish, Session: id,
			Events: events, Values: vals}); !resp.OK {
			t.Fatal(resp.Error)
		}
		for j := range vals {
			vals[j] += step[j]
		}
	}
}

// TestQueryDerived checks the derive-mode QUERY against a
// deterministic published history: constant per-interval deltas must
// come back as constant derived values, raw and rolled up.
func TestQueryDerived(t *testing.T) {
	var clock atomic.Int64
	clock.Store(1_000_000)
	srv, addr := startServer(t, Config{
		TickInterval: time.Hour, // history driven by PUBLISH below
		now:          func() int64 { return clock.Load() },
	})
	created := srv.dispatch(nil, &wire.Request{Op: wire.OpCreate, Workload: "none"})
	if !created.OK {
		t.Fatal(created.Error)
	}
	id := created.Session
	// 20 snapshots, 100ms apart: +500 instructions, +1000 cycles each.
	publishTicks(t, srv, id, &clock, []string{"PAPI_TOT_CYC", "PAPI_TOT_INS"},
		[]int64{0, 0}, []int64{1000, 500}, 20, 100_000)

	cl := dialT(t, addr)
	if _, err := cl.Hello(); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Do(wire.Request{Op: wire.OpQuery, Session: id,
		From: 0, To: clock.Load() + 1, Derive: []string{"ipc"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Derived) != 2 {
		t.Fatalf("derived series = %d, want 2 (ipc, mips)", len(resp.Derived))
	}
	ipc := resp.Derived[0]
	if ipc.Metric != "ipc" || ipc.Unit != "instr/cycle" {
		t.Fatalf("series 0 = %s (%s), want ipc (instr/cycle)", ipc.Metric, ipc.Unit)
	}
	if len(ipc.Points) != 19 {
		t.Fatalf("ipc points = %d, want 19 (20 samples, consecutive pairs)", len(ipc.Points))
	}
	for _, p := range ipc.Points {
		if p.Value != 0.5 {
			t.Fatalf("ipc point at %d = %v, want 0.5", p.Start, p.Value)
		}
	}
	mips := resp.Derived[1]
	// rate(TOT_INS)/1e6 = (500 / 0.1s) / 1e6.
	for _, p := range mips.Points {
		if math.Abs(p.Value-0.005) > 1e-12 {
			t.Fatalf("mips point at %d = %v, want 0.005", p.Start, p.Value)
		}
	}

	// The rollup path (Step aligned to a configured width) must agree.
	rolled, err := cl.Do(wire.Request{Op: wire.OpQuery, Session: id,
		From: 0, To: clock.Load() + 1, Step: 1_000_000, Derive: []string{"ipc"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rolled.Derived) != 2 || len(rolled.Derived[0].Points) == 0 {
		t.Fatalf("rollup derive reply: %+v", rolled.Derived)
	}
	for _, p := range rolled.Derived[0].Points {
		if p.Value != 0.5 {
			t.Fatalf("rollup ipc at %d = %v, want 0.5", p.Start, p.Value)
		}
	}
}

// TestQueryDeriveErrors pins the loud-validation satellite: unknown
// groups, missing history, and pre-v3 peers all earn a wire ERROR —
// never an empty reply.
func TestQueryDeriveErrors(t *testing.T) {
	var clock atomic.Int64
	clock.Store(1_000_000)
	srv, addr := startServer(t, Config{
		TickInterval: time.Hour,
		now:          func() int64 { return clock.Load() },
	})
	created := srv.dispatch(nil, &wire.Request{Op: wire.OpCreate, Workload: "none"})
	id := created.Session
	// Only TOT_INS recorded: ipc also needs TOT_CYC.
	publishTicks(t, srv, id, &clock, []string{"PAPI_TOT_INS"},
		[]int64{0}, []int64{500}, 5, 100_000)

	cl := dialT(t, addr)
	if _, err := cl.Hello(); err != nil {
		t.Fatal(err)
	}
	_, err := cl.Do(wire.Request{Op: wire.OpQuery, Session: id,
		From: 0, To: clock.Load() + 1, Derive: []string{"ipc"}})
	if err == nil || !strings.Contains(err.Error(), "PAPI_TOT_CYC") {
		t.Errorf("missing-event derive QUERY error = %v, want mention of PAPI_TOT_CYC", err)
	}
	_, err = cl.Do(wire.Request{Op: wire.OpQuery, Session: id,
		From: 0, To: clock.Load() + 1, Derive: []string{"bogus"}})
	if err == nil || !strings.Contains(err.Error(), "unknown group") {
		t.Errorf("unknown-group derive QUERY error = %v", err)
	}

	old := dialT(t, addr)
	if _, err := old.Do(wire.Request{Op: wire.OpHello, Version: 2}); err != nil {
		t.Fatal(err)
	}
	_, err = old.Do(wire.Request{Op: wire.OpQuery, Session: id,
		From: 0, To: clock.Load() + 1, Derive: []string{"ipc"}})
	if err == nil || !strings.Contains(err.Error(), "protocol") {
		t.Errorf("pre-v3 derive QUERY error = %v", err)
	}
}

// TestDeriveConfigErrors: a bad -groups or -derive-rules value must
// fail Listen loudly, not serve without the requested metrics.
func TestDeriveConfigErrors(t *testing.T) {
	srv := New(Config{Groups: []string{"no-such-group"}})
	if _, err := srv.Listen("127.0.0.1:0"); err == nil ||
		!strings.Contains(err.Error(), "unknown group") {
		t.Errorf("Listen with bad group = %v", err)
	}
	srv = New(Config{DeriveRules: []string{"ipc<"}})
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Error("Listen with bad rule spec succeeded")
	}
}

// TestReconnReplaysDeriveSubscription: a severed subscriber connection
// redials, re-handshakes, and replays its recorded SUBSCRIBE including
// the derive groups — the DERIVED stream resumes without caller help.
func TestReconnReplaysDeriveSubscription(t *testing.T) {
	_, addr := startServer(t, Config{TickInterval: 2 * time.Millisecond})

	ctl := dialT(t, addr)
	created, err := ctl.Do(wire.Request{Op: wire.OpCreate,
		Events: ipcEvents, Workload: "dot", N: 16})
	if err != nil {
		t.Fatal(err)
	}
	id := created.Session
	if _, err := ctl.Do(wire.Request{Op: wire.OpStart, Session: id}); err != nil {
		t.Fatal(err)
	}

	rc, err := DialReconn(addr, RetryConfig{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	var derived atomic.Uint64
	rc.OnDerived = func(wire.Response) { derived.Add(1) }
	if _, err := rc.Subscribe(id, "ipc"); err != nil {
		t.Fatal(err)
	}

	// DERIVED frames arrive interleaved while Do waits for STATS.
	waitDerived := func(min uint64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for derived.Load() < min {
			if time.Now().After(deadline) {
				t.Fatalf("derived frames stuck at %d, want >= %d", derived.Load(), min)
			}
			if _, err := rc.Do(wire.Request{Op: wire.OpStats}); err != nil {
				t.Fatal(err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitDerived(1)

	rc.cl.nc.Close() // sever behind the client's back
	before := derived.Load()
	waitDerived(before + 2)
	if rc.Reconnects != 1 {
		t.Errorf("Reconnects = %d, want 1", rc.Reconnects)
	}
}
